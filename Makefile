GO ?= go

.PHONY: build test vet race bench bench-regress bench-go profile verify smoke crashtest plandiff

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Sharded-executor throughput bench: the same fixed-seed campaign at 1
# worker and at >=2 workers (GOMAXPROCS forced to >=2 for the parallel
# leg), plus the prepared-vs-text parse-share micro-comparison, the
# compiled-plan-vs-interpreter plan-exec micro-comparison, the
# COW-vs-clone snapshot-reset micro-comparison, and the durable-campaign
# checkpoint-overhead comparison (min of 3 reps per leg), and the
# large-graph leg (bulk-load rate, per-hop match latency, hub expansion
# index vs scan); writes BENCH_pr10.json — including the
# parallel_efficiency (speedup / workers) and
# campaign_allocs_per_iteration the regression gate tracks — and fails
# if the two campaign runs report different bug sets.
bench:
	$(GO) run ./cmd/gqs-bench -exp bench -iterations 20 -bench-out BENCH_pr10.json

# Regression gate: compares BENCH_pr10.json against every other
# BENCH_*.json and fails on >10% parallel-throughput regression, a
# parallel-efficiency regression vs a baseline at the same worker count
# (annotated instead on single-CPU hosts), a like-for-like bug-set or
# allocs-per-iteration (+10%) regression, checkpoint-journal write time
# or total durable overhead above 1% of the campaign, a
# durable-vs-plain bug-report mismatch, a plan-vs-interpreter result
# mismatch, an index-vs-scan result mismatch on the large-graph leg, or
# a >1.5x per-hop p95 latency regression vs any baseline carrying the
# large_graph block.
bench-regress:
	$(GO) run ./cmd/gqs-bench -exp bench-regress -bench-out BENCH_pr10.json

# Planned-vs-interpreted differential under the race detector: every
# query of a fixed-seed synthesized corpus (plus a curated construct
# list) must produce byte-identical results — or the identical error —
# on the compiled-plan path and the tree-walking interpreter, on every
# dialect configuration.
plandiff:
	$(GO) test -race -count=1 -run 'TestPlanDiff' ./internal/engine/

# Go micro-benchmarks (the pre-existing bench target).
bench-go:
	$(GO) test -bench=. -benchmem ./...

# CPU + heap profiles of the fixed-seed campaign; inspect with
# `go tool pprof cpu.out` / `go tool pprof mem.out`.
profile:
	$(GO) run ./cmd/gqs-bench -exp bench -iterations 20 -cpuprofile cpu.out -memprofile mem.out

# Kill-and-resume differential under the race detector, repeated: a
# campaign killed at a checkpoint boundary (journal tail torn on top)
# must resume into the byte-identical bug report of an uninterrupted run.
crashtest:
	$(GO) test -race -count=3 -run 'TestKillResumeDifferential|TestMidWriteKillResume' ./internal/experiments/

# Tier-1 verification gate (see ROADMAP.md), plus the crash-safety
# differential, the planned-vs-interpreted differential, and the
# perf-regression gate over the recorded BENCH_*.json history.
verify: build vet test race crashtest plandiff bench-regress

# Short resilient-campaign smoke under the race detector: live faults,
# flaky connection, watchdog timeouts — the hardened-runner acceptance.
smoke:
	$(GO) test -race -run 'TestResilientCampaign' -count=1 ./internal/experiments/
