GO ?= go

.PHONY: build test vet race bench verify smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Tier-1 verification gate (see ROADMAP.md).
verify: build vet test race

# Short resilient-campaign smoke under the race detector: live faults,
# flaky connection, watchdog timeouts — the hardened-runner acceptance.
smoke:
	$(GO) test -race -run 'TestResilientCampaign' -count=1 ./internal/experiments/
