GO ?= go

.PHONY: build test vet race bench bench-regress bench-go profile verify smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Sharded-executor throughput bench: the same fixed-seed campaign at 1
# worker and at >=2 workers (GOMAXPROCS forced to >=2 for the parallel
# leg), plus the prepared-vs-text parse-share micro-comparison and the
# COW-vs-clone snapshot-reset micro-comparison; writes BENCH_pr5.json
# and fails if the two campaign runs report different bug sets.
bench:
	$(GO) run ./cmd/gqs-bench -exp bench -iterations 20 -bench-out BENCH_pr5.json

# Regression gate: compares BENCH_pr5.json against every other
# BENCH_*.json and fails on >10% parallel-throughput regression or a
# like-for-like bug-set mismatch.
bench-regress:
	$(GO) run ./cmd/gqs-bench -exp bench-regress -bench-out BENCH_pr5.json

# Go micro-benchmarks (the pre-existing bench target).
bench-go:
	$(GO) test -bench=. -benchmem ./...

# CPU + heap profiles of the fixed-seed campaign; inspect with
# `go tool pprof cpu.out` / `go tool pprof mem.out`.
profile:
	$(GO) run ./cmd/gqs-bench -exp bench -iterations 20 -cpuprofile cpu.out -memprofile mem.out

# Tier-1 verification gate (see ROADMAP.md), plus the perf-regression
# gate over the recorded BENCH_*.json history.
verify: build vet test race bench-regress

# Short resilient-campaign smoke under the race detector: live faults,
# flaky connection, watchdog timeouts — the hardened-runner acceptance.
smoke:
	$(GO) test -race -run 'TestResilientCampaign' -count=1 ./internal/experiments/
