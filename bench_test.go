package gqs

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation (regenerating the underlying measurement at bench
// scale) plus the ablation benchmarks of DESIGN.md §4. Run with
//
//	go test -bench=. -benchmem
//
// The full-size regenerations live behind `go run ./cmd/gqs-bench`.

import (
	"context"
	"io"
	"math/rand"
	"testing"

	"gqs/internal/baselines"
	"gqs/internal/core"
	"gqs/internal/cypher/parser"
	"gqs/internal/engine"
	"gqs/internal/experiments"
	"gqs/internal/gdb"
	"gqs/internal/graph"
	"gqs/internal/metrics"
)

// ---- substrate benchmarks ----

// BenchmarkEngineSimpleMatch measures the executor on the Figure 2 query.
func BenchmarkEngineSimpleMatch(b *testing.B) {
	db := NewDB()
	LoadExample(db)
	q := `MATCH (p:USER)-[r:LIKE]->(m:MOVIE) WHERE p.name = 'Alice' AND r.rating >= 8 RETURN m.name, m.year`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineComplexPipeline measures a multi-clause pipeline with
// UNWIND, aggregation, and ORDER BY.
func BenchmarkEngineComplexPipeline(b *testing.B) {
	db := NewDB()
	LoadExample(db)
	q := `MATCH (p:USER)-[l:LIKE]->(m:MOVIE)
		UNWIND m.genre AS g
		WITH p.name AS user, g, count(*) AS n
		RETURN user, collect(g) AS genres, sum(n) AS total ORDER BY user`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphGeneration measures step ① (initialization).
func BenchmarkGraphGeneration(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	cfg := graph.GenConfig{MaxNodes: 13, MaxRels: 500}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.Generate(r, cfg)
	}
}

// BenchmarkSynthesis measures steps ②–③ (ground truth + query synthesis)
// without execution.
func BenchmarkSynthesis(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 10, MaxRels: 40})
	syn := core.NewSynthesizer(r, g, schema, core.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gt := core.SelectGroundTruth(r, g, 6)
		if _, err := syn.Synthesize(gt); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- per-table benchmarks ----

// BenchmarkTable2Registry renders the tested-GDB summary.
func BenchmarkTable2Registry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2(io.Discard)
	}
}

// BenchmarkTable3CampaignIteration measures one full GQS workflow
// iteration (graph, restart, 12 queries) against the FalkorDB simulacrum
// — the unit of the Table 3 campaign.
func BenchmarkTable3CampaignIteration(b *testing.B) {
	sim := gdb.NewFalkorDBSim()
	cfg := core.DefaultRunnerConfig()
	cfg.Graph = graph.GenConfig{MaxNodes: 10, MaxRels: 40}
	rn := core.NewRunner(sim, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rn.RunIteration(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Latency measures the latency analysis over a fixed
// campaign.
func BenchmarkTable4Latency(b *testing.B) {
	c := experiments.QuickCampaign(1, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table4(io.Discard, c)
	}
}

// BenchmarkTable5Complexity measures the query-complexity comparison at
// 50 queries per tester per iteration.
func BenchmarkTable5Complexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table5(io.Discard, 50, int64(i)+1)
	}
}

// BenchmarkTable6Round measures one oracle round of each tester against
// the FalkorDB simulacrum.
func BenchmarkTable6Round(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 10, MaxRels: 30})
	for _, tester := range baselines.All() {
		tester := tester
		b.Run(tester.Name(), func(b *testing.B) {
			sim := gdb.NewFalkorDBSim()
			if err := sim.Reset(g, schema); err != nil {
				b.Fatal(err)
			}
			if gds, ok := tester.(*baselines.GDsmith); ok {
				peer := gdb.NewReference()
				peer.Reset(g, schema)
				gds.Peers = []core.Target{peer}
				defer func() { gds.Peers = nil }()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tester.Test(r, sim, g, schema)
			}
		})
	}
}

// BenchmarkOracleReplay measures the §5.4.3 replay (TLP + GRev) on one
// bug-triggering query.
func BenchmarkOracleReplay(b *testing.B) {
	c := experiments.QuickCampaign(2, 10)
	logic := c.LogicFindings()
	if len(logic) == 0 {
		b.Skip("no logic findings at this seed")
	}
	f := logic[0]
	sim, _ := gdb.ByName(f.GDB)
	sim.Reset(f.Graph, f.Schema)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baselines.TLPCheck(sim, f.Query)
		baselines.GRevCheck(sim, f.Query)
	}
}

// ---- per-figure benchmarks ----

// BenchmarkFig10ThroughputBySteps reproduces Figure 10's throughput
// analysis: synthesis+execution cost as the step budget grows (the paper
// reports 6.6x slower at 9 steps than at 3).
func BenchmarkFig10ThroughputBySteps(b *testing.B) {
	for _, steps := range []int{1, 3, 5, 7, 9} {
		steps := steps
		b.Run(benchName("steps", steps), func(b *testing.B) {
			r := rand.New(rand.NewSource(int64(steps)))
			g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 10, MaxRels: 40})
			ref := gdb.NewReference()
			ref.Reset(g, schema)
			cfg := core.DefaultConfig()
			cfg.MaxSteps = steps
			syn := core.NewSynthesizer(r, g, schema, cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gt := core.SelectGroundTruth(r, g, 4)
				sq, err := syn.Synthesize(gt)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ref.Execute(sq.Text); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11to15FeatureAnalysis measures the feature extraction that
// Figures 11-15 bucket.
func BenchmarkFig11to15FeatureAnalysis(b *testing.B) {
	q, _, err := Synthesize(9, 10, 40)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if metrics.Analyze(q) == nil {
			b.Fatal("analysis failed")
		}
	}
}

// BenchmarkFig18TimelineRound measures one GQS timeline round (the
// Figure 18 cumulative-curve unit).
func BenchmarkFig18TimelineRound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunGQSTimeline("neo4j", 5, int64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- ablation benchmarks (DESIGN.md §4) ----

// BenchmarkAblationPatternMutation compares synthesis with and without
// the §3.4 pattern mutation.
func BenchmarkAblationPatternMutation(b *testing.B) {
	for _, mut := range []bool{true, false} {
		mut := mut
		name := "with-mutation"
		if !mut {
			name = "no-mutation"
		}
		b.Run(name, func(b *testing.B) {
			r := rand.New(rand.NewSource(3))
			g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 10, MaxRels: 40})
			cfg := core.DefaultConfig()
			cfg.DisableMutation = !mut
			syn := core.NewSynthesizer(r, g, schema, cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gt := core.SelectGroundTruth(r, g, 4)
				if _, err := syn.Synthesize(gt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationComplexExprs compares nested pin predicates (§3.5)
// against plain `var.id = c` pins.
func BenchmarkAblationComplexExprs(b *testing.B) {
	for _, complexExprs := range []bool{true, false} {
		complexExprs := complexExprs
		name := "nested-exprs"
		if !complexExprs {
			name = "plain-pins"
		}
		b.Run(name, func(b *testing.B) {
			r := rand.New(rand.NewSource(4))
			g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 10, MaxRels: 40})
			cfg := core.DefaultConfig()
			cfg.DisableComplexExprs = !complexExprs
			syn := core.NewSynthesizer(r, g, schema, cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gt := core.SelectGroundTruth(r, g, 4)
				if _, err := syn.Synthesize(gt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPlanner compares the engine with and without its
// optimization passes (index scans, traversal-start selection, predicate
// pushdown) on a pin-predicated pattern query.
func BenchmarkAblationPlanner(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 12, MaxRels: 120})
	rels := g.RelIDs()
	q := `MATCH (a)-[r1]->(b)-[r2]->(c) WHERE r1.id = ` +
		itoa(rels[0]) + ` AND r2.id = ` + itoa(rels[1]) + ` RETURN a.id, c.id`
	for _, planner := range []bool{true, false} {
		planner := planner
		name := "planner-on"
		if !planner {
			name = "planner-off"
		}
		b.Run(name, func(b *testing.B) {
			eng := engine.New(engine.Options{DisablePlanner: !planner})
			eng.LoadGraph(g, schema)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Execute(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGraphSize sweeps the graph size (Figure 10's
// efficiency discussion: larger graphs slow the campaign).
func BenchmarkAblationGraphSize(b *testing.B) {
	for _, rels := range []int{20, 60, 150} {
		rels := rels
		b.Run(benchName("rels", rels), func(b *testing.B) {
			r := rand.New(rand.NewSource(int64(rels)))
			g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 12, MaxRels: rels})
			ref := gdb.NewReference()
			ref.Reset(g, schema)
			syn := core.NewSynthesizer(r, g, schema, core.DefaultConfig())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gt := core.SelectGroundTruth(r, g, 4)
				sq, err := syn.Synthesize(gt)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ref.Execute(sq.Text); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- prepared-execution benchmarks (DESIGN.md §8) ----

// benchCorpusQuery synthesizes one representative campaign query over a
// generated graph, retrying until synthesis succeeds.
func benchCorpusQuery(b *testing.B, seed int64) (*graph.Graph, *graph.Schema, string) {
	b.Helper()
	r := rand.New(rand.NewSource(seed))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 12, MaxRels: 40})
	syn := core.NewSynthesizer(r, g, schema, core.DefaultConfig())
	for tries := 0; tries < 200; tries++ {
		gt := core.SelectGroundTruth(r, g, 6)
		if sq, err := syn.Synthesize(gt); err == nil {
			return g, schema, sq.Text
		}
	}
	b.Fatal("synthesis never succeeded")
	return nil, nil, ""
}

// BenchmarkPrepare measures the one-time cost Prepare pays per
// synthesized query: parse plus feature analysis.
func BenchmarkPrepare(b *testing.B) {
	_, _, q := benchCorpusQuery(b, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Prepare(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOracleCheck compares one oracle check — a synthesized query
// validated on all five dialects — through the text path (every dialect
// re-parses and re-analyzes the query) and the prepared path (one parse,
// shared AST). The parses/check metric is the measured parser-invocation
// count per iteration: the text path pays 2 per dialect (feature
// analysis + engine parse) for 10 in total, the prepared path exactly 1.
func BenchmarkOracleCheck(b *testing.B) {
	g, schema, q := benchCorpusQuery(b, 9)
	conns := append(gdb.All(), gdb.NewReference())
	for _, c := range conns {
		if err := c.Reset(g, schema); err != nil {
			b.Fatal(err)
		}
	}
	ctx := context.Background()
	b.Run("text", func(b *testing.B) {
		b.ReportAllocs()
		start := parser.Parses()
		for i := 0; i < b.N; i++ {
			for _, c := range conns {
				c.ExecuteCtx(ctx, q)
			}
		}
		b.ReportMetric(float64(parser.Parses()-start)/float64(b.N), "parses/check")
	})
	b.Run("prepared", func(b *testing.B) {
		b.ReportAllocs()
		start := parser.Parses()
		for i := 0; i < b.N; i++ {
			pq, err := Prepare(q)
			if err != nil {
				b.Fatal(err)
			}
			for _, c := range conns {
				c.ExecutePrepared(ctx, pq)
			}
		}
		b.ReportMetric(float64(parser.Parses()-start)/float64(b.N), "parses/check")
	})
}

// BenchmarkMatchExpansion measures the row pipeline on a two-hop
// unlabeled pattern — the binding-expansion path whose row clones and
// eval contexts dominate hot-path allocations.
func BenchmarkMatchExpansion(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 12, MaxRels: 120})
	eng := engine.New(engine.Options{})
	eng.LoadGraph(g, schema)
	pq, err := engine.Prepare(`MATCH (a)-[r1]->(b)-[r2]->(c) WHERE a.id <> c.id RETURN a.id, c.id`)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.ExecutePrepared(ctx, pq); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(prefix string, n int) string {
	return prefix + "-" + itoa(int64(n))
}

func itoa(i int64) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var buf []byte
	for i > 0 {
		buf = append([]byte{byte('0' + i%10)}, buf...)
		i /= 10
	}
	if neg {
		return "-" + string(buf)
	}
	return string(buf)
}
