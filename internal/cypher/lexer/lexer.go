// Package lexer tokenizes Cypher query text.
package lexer

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"gqs/internal/cypher/token"
)

// Error is a lexical error with its byte offset.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("lex error at %d: %s", e.Pos, e.Msg) }

// Lexer produces tokens from Cypher source text.
type Lexer struct {
	src string
	pos int
	err *Error
}

// New returns a lexer over src.
func New(src string) *Lexer { return &Lexer{src: src} }

// Err returns the first lexical error encountered, if any.
func (l *Lexer) Err() error {
	if l.err == nil {
		return nil
	}
	return l.err
}

// All tokenizes the entire input, returning the token stream ending with
// EOF, and the first error if any.
func All(src string) ([]token.Token, error) {
	l := New(src)
	// Tokens average a handful of source bytes each; sizing up front keeps
	// the append loop out of growslice for typical queries.
	ts := make([]token.Token, 0, len(src)/4+8)
	for {
		t := l.Next()
		ts = append(ts, t)
		if t.Type == token.EOF || t.Type == token.Illegal {
			break
		}
	}
	return ts, l.Err()
}

func (l *Lexer) fail(pos int, format string, args ...any) token.Token {
	if l.err == nil {
		l.err = &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
	}
	return token.Token{Type: token.Illegal, Pos: pos}
}

func (l *Lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekByteAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

// Next returns the next token.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	start := l.pos
	if l.pos >= len(l.src) {
		return token.Token{Type: token.EOF, Pos: start}
	}
	c := l.src[l.pos]
	switch {
	case isDigit(c):
		return l.number()
	case c == '\'' || c == '"':
		return l.str(c)
	case isIdentStart(rune(c)) || c >= utf8.RuneSelf:
		return l.ident()
	case c == '`':
		return l.quotedIdent()
	}
	l.pos++
	two := func(t token.Type) token.Token {
		l.pos++
		return token.Token{Type: t, Pos: start}
	}
	one := func(t token.Type) token.Token {
		return token.Token{Type: t, Pos: start}
	}
	switch c {
	case '(':
		return one(token.LParen)
	case ')':
		return one(token.RParen)
	case '[':
		return one(token.LBracket)
	case ']':
		return one(token.RBracket)
	case '{':
		return one(token.LBrace)
	case '}':
		return one(token.RBrace)
	case ',':
		return one(token.Comma)
	case ':':
		return one(token.Colon)
	case ';':
		return one(token.Semi)
	case '$':
		return one(token.Dollar)
	case '|':
		return one(token.Pipe)
	case '.':
		if l.peekByte() == '.' {
			return two(token.DotDot)
		}
		return one(token.Dot)
	case '+':
		return one(token.Plus)
	case '-':
		return one(token.Minus)
	case '*':
		return one(token.Star)
	case '/':
		return one(token.Slash)
	case '%':
		return one(token.Percent)
	case '^':
		return one(token.Caret)
	case '=':
		if l.peekByte() == '~' {
			return two(token.Regex)
		}
		return one(token.Eq)
	case '<':
		switch l.peekByte() {
		case '>':
			return two(token.Neq)
		case '=':
			return two(token.Le)
		}
		return one(token.Lt)
	case '>':
		if l.peekByte() == '=' {
			return two(token.Ge)
		}
		return one(token.Gt)
	}
	return l.fail(start, "unexpected character %q", c)
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '/' && l.peekByteAt(1) == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.peekByteAt(1) == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
				return
			}
			l.pos += 2 + end + 2
		default:
			return
		}
	}
}

func (l *Lexer) number() token.Token {
	start := l.pos
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	isFloat := false
	// Fraction, but not a ".." range or a ".prop" access on an int.
	if l.peekByte() == '.' && isDigit(l.peekByteAt(1)) {
		isFloat = true
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	if c := l.peekByte(); c == 'e' || c == 'E' {
		save := l.pos
		l.pos++
		if c := l.peekByte(); c == '+' || c == '-' {
			l.pos++
		}
		if isDigit(l.peekByte()) {
			isFloat = true
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		} else {
			l.pos = save
		}
	}
	typ := token.Int
	if isFloat {
		typ = token.Float
	}
	return token.Token{Type: typ, Lit: l.src[start:l.pos], Pos: start}
}

func (l *Lexer) str(quote byte) token.Token {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return token.Token{Type: token.String, Lit: sb.String(), Pos: start}
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return l.fail(start, "unterminated string")
			}
			e := l.src[l.pos]
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '\\', '\'', '"', '`':
				sb.WriteByte(e)
			default:
				return l.fail(l.pos, "unknown escape \\%c", e)
			}
			l.pos++
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return l.fail(start, "unterminated string")
}

func (l *Lexer) ident() token.Token {
	start := l.pos
	for l.pos < len(l.src) {
		if c := l.src[l.pos]; c < utf8.RuneSelf {
			if !isIdentPartASCII(c) {
				break
			}
			l.pos++
			continue
		}
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentPart(r) {
			break
		}
		l.pos += size
	}
	lit := l.src[start:l.pos]
	return token.Token{Type: token.Lookup(lit), Lit: lit, Pos: start}
}

func isIdentPartASCII(c byte) bool {
	return c == '_' || 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9'
}

func (l *Lexer) quotedIdent() token.Token {
	start := l.pos
	l.pos++ // opening backtick
	end := strings.IndexByte(l.src[l.pos:], '`')
	if end < 0 {
		return l.fail(start, "unterminated quoted identifier")
	}
	lit := l.src[l.pos : l.pos+end]
	l.pos += end + 1
	return token.Token{Type: token.Ident, Lit: lit, Pos: start}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
