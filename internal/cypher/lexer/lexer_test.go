package lexer

import (
	"testing"

	"gqs/internal/cypher/token"
)

func types(t *testing.T, src string) []token.Type {
	t.Helper()
	toks, err := All(src)
	if err != nil {
		t.Fatalf("%q: %v", src, err)
	}
	out := make([]token.Type, len(toks))
	for i, tk := range toks {
		out[i] = tk.Type
	}
	return out
}

func TestPunctuation(t *testing.T) {
	got := types(t, `()[]{},:;.$|`)
	want := []token.Type{
		token.LParen, token.RParen, token.LBracket, token.RBracket,
		token.LBrace, token.RBrace, token.Comma, token.Colon, token.Semi,
		token.Dot, token.Dollar, token.Pipe, token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	got := types(t, `+ - * / % ^ = <> < <= > >= =~ ..`)
	want := []token.Type{
		token.Plus, token.Minus, token.Star, token.Slash, token.Percent,
		token.Caret, token.Eq, token.Neq, token.Lt, token.Le, token.Gt,
		token.Ge, token.Regex, token.DotDot, token.EOF,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	toks, err := All(`42 1.5 1e3 2.5e-2 7..9 1.k0`)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		typ token.Type
		lit string
	}{
		{token.Int, "42"}, {token.Float, "1.5"}, {token.Float, "1e3"},
		{token.Float, "2.5e-2"},
		{token.Int, "7"}, {token.DotDot, ""}, {token.Int, "9"},
		{token.Int, "1"}, {token.Dot, ""}, {token.Ident, "k0"},
	}
	for i, w := range want {
		if toks[i].Type != w.typ {
			t.Errorf("token %d = %v, want %v", i, toks[i].Type, w.typ)
		}
		if w.lit != "" && toks[i].Lit != w.lit {
			t.Errorf("token %d lit = %q, want %q", i, toks[i].Lit, w.lit)
		}
	}
}

func TestStrings(t *testing.T) {
	toks, err := All(`'abc' "def" 'a\'b' 'x\ny'`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"abc", "def", "a'b", "x\ny"}
	for i, w := range want {
		if toks[i].Type != token.String || toks[i].Lit != w {
			t.Errorf("string %d = %q (%v), want %q", i, toks[i].Lit, toks[i].Type, w)
		}
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	toks, _ := All(`MATCH match Match oPtIoNaL`)
	for i := 0; i < 3; i++ {
		if toks[i].Type != token.KwMatch {
			t.Errorf("token %d: %v", i, toks[i].Type)
		}
	}
	if toks[3].Type != token.KwOptional {
		t.Error("case-insensitive keyword lookup broken")
	}
}

func TestQuotedIdent(t *testing.T) {
	toks, err := All("`weird name`")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Type != token.Ident || toks[0].Lit != "weird name" {
		t.Errorf("quoted ident = %+v", toks[0])
	}
}

func TestComments(t *testing.T) {
	got := types(t, "a // rest of line\nb /* multi\nline */ c")
	want := []token.Type{token.Ident, token.Ident, token.Ident, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "`unterminated", `'bad \q escape'`, "@"} {
		if _, err := All(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestTokenNames(t *testing.T) {
	if token.KwMatch.String() != "MATCH" || token.Neq.String() != "<>" {
		t.Error("token names broken")
	}
	if token.Lookup("not_a_keyword") != token.Ident {
		t.Error("Lookup must default to Ident")
	}
}

func TestUnicodeIdent(t *testing.T) {
	toks, err := All("pät")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Type != token.Ident || toks[0].Lit != "pät" {
		t.Errorf("unicode ident = %+v", toks[0])
	}
}
