package parser

import (
	"testing"

	"gqs/internal/cypher/ast"
)

func TestParseListComprehension(t *testing.T) {
	e, err := ParseExpr(`[x IN [1, 2, 3] WHERE x > 1 | x * 2]`)
	if err != nil {
		t.Fatal(err)
	}
	lc, ok := e.(*ast.ListComprehension)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if lc.Var != "x" || lc.Where == nil || lc.Map == nil {
		t.Errorf("comprehension parts: %+v", lc)
	}
	// Optional parts.
	e, err = ParseExpr(`[x IN l]`)
	if err != nil {
		t.Fatal(err)
	}
	lc = e.(*ast.ListComprehension)
	if lc.Where != nil || lc.Map != nil {
		t.Error("bare comprehension must have nil Where/Map")
	}
	// A plain list literal is unaffected.
	e, err = ParseExpr(`[1, x, 'a']`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*ast.ListLit); !ok {
		t.Fatalf("got %T, want ListLit", e)
	}
	// Round trip.
	src := `[x IN [1, 2] WHERE (x > 1) | (x * 2)]`
	e, err = ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := ast.ExprString(e); got != src {
		t.Errorf("round trip: %q vs %q", got, src)
	}
}

func TestParseQuantifiers(t *testing.T) {
	for _, src := range []string{
		`all(x IN [1, 2] WHERE x > 0)`,
		`any(x IN l WHERE x = 1)`,
		`none(x IN l WHERE x IS NULL)`,
		`single(x IN l WHERE x = 2)`,
	} {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if _, ok := e.(*ast.Quantifier); !ok {
			t.Fatalf("%s: got %T", src, e)
		}
		// Round trip through the printer.
		if _, err := ParseExpr(ast.ExprString(e)); err != nil {
			t.Errorf("%s: reparse failed: %v", src, err)
		}
	}
	// A function also named "all" with normal args stays a call.
	e, err := ParseExpr(`size([1])`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*ast.FuncCall); !ok {
		t.Fatalf("got %T", e)
	}
	// Quantifiers require WHERE.
	if _, err := ParseExpr(`all(x IN l)`); err == nil {
		t.Error("quantifier without WHERE must error")
	}
}

func TestComprehensionFreeVariables(t *testing.T) {
	e, _ := ParseExpr(`[x IN ys WHERE x > lo | x + add]`)
	vars := ast.Variables(e)
	want := map[string]bool{"ys": true, "lo": true, "add": true}
	if len(vars) != 3 {
		t.Fatalf("Variables = %v", vars)
	}
	for _, v := range vars {
		if !want[v] {
			t.Errorf("unexpected free variable %q", v)
		}
	}
	e, _ = ParseExpr(`any(x IN x WHERE x = 1)`)
	// The list expression is outside the binding: x is free there.
	vars = ast.Variables(e)
	if len(vars) != 1 || vars[0] != "x" {
		t.Errorf("Variables = %v, want [x]", vars)
	}
}
