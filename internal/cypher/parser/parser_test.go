package parser

import (
	"strings"
	"testing"

	"gqs/internal/cypher/ast"
	"gqs/internal/value"
)

// paperQueries are queries lifted from the figures of the GQS paper; the
// parser must accept all of them.
var paperQueries = []string{
	// Figure 1 (FalkorDB logic bug).
	`MATCH (n2)<-[r1]->(n0), (n3)-[r2]->(n4)-[r3]->(n5) WHERE r1.id=13
	 UNWIND [n5.k2 <> r3.id, false] as a1
	 WITH DISTINCT n2, r3, n3, n4, n5, endNode(r1) as a2, n0
	 MATCH (n2)<-[r4:T10]->(n0), (n3)-[r5]->(n4)-[r6]->(n5)
	 WHERE (((r6.k85)+(n2.k11)) ENDS WITH 'q11cZH6h') AND
	   ((n2.k9) = -1982025281) AND (n5.k2<=-881779936)
	 RETURN n2.id as a3, r6.id as a4`,
	// Figure 2 (movie examples).
	`MATCH (p:USER)-[r:LIKE]->(m:MOVIE) RETURN m.name, m.year`,
	`MATCH (p :USER)-[r :LIKE]->(m :MOVIE)
	 WHERE p.name = 'Alice' AND r.rating >= 8
	 UNWIND m.genre AS LikedGenre
	 WITH DISTINCT m.name AS MovieName, LikedGenre
	 RETURN MovieName, LikedGenre`,
	// Figure 7 (Neo4j logic bug), abridged as printed.
	`MATCH (n0 :L11)<-[r0 :T3]-(n1) WHERE (NOT (NOT true))
	 UNWIND [(r0.k186), 557243387] AS a0
	 MATCH (n2 :L11 :L5)-[r1 :T3]->(n3 :L11), (n7 :L11 :L5)-[r4 :T3]->(n8 :L11 :L5 :L4) WHERE n2.id = 1
	 RETURN (r4.k190) AS a3, (r4.k191) AS a4`,
	// Figure 8 (Memgraph logic bug), abridged.
	`MATCH (n0 :L0 :L6 :L11)<-[r0 :T2]-(n1), (n2 :L6)<-[r1 :T2]-(n3 :L0) WHERE n0.id = 2
	 UNWIND [-1465465557] AS a0
	 MATCH (n4 :L0)<-[r2 :T2]-(n5 :L0 :L6) WHERE n4.id = 0
	 UNWIND [(n0.k65)] AS a1
	 RETURN (r1.k86) AS a2, (n3.k4) AS a3, (r1.k87) AS a4
	 ORDER BY a4 DESC`,
	// Figure 9 (Memgraph memory leak).
	`WITH replace('ts15G', '', 'U11sWFvRw') AS a0 RETURN a0`,
	// Figure 16 (GDBMeter rewrites).
	`MATCH (n0)-[r0]->(n1) WITH r0, n0 WHERE ("1" <> n0.k99) RETURN r0.id AS a0`,
	`MATCH (n0)-[r0]->(n1) WITH r0, n0 WHERE NOT ("1" <> n0.k99) RETURN r0.id AS a0`,
	`MATCH (n0)-[r0]->(n1) WITH r0, n0 WHERE ("1" <> n0.k99) IS NULL RETURN r0.id AS a0`,
	// Figure 17 (FalkorDB UNWIND bug).
	`UNWIND [1,2,3] AS a0
	 MATCH (n2 :L12)-[r1]-(n3) WHERE (((r1.id) = 13) AND true)
	 RETURN a0`,
}

func TestParsePaperQueries(t *testing.T) {
	for i, q := range paperQueries {
		if _, err := Parse(q); err != nil {
			t.Errorf("paper query %d: %v\n%s", i, err, q)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for i, q := range paperQueries {
		q1, err := Parse(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		text := q1.String()
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("query %d reparse: %v\n%s", i, err, text)
		}
		if got := q2.String(); got != text {
			t.Errorf("query %d: print/parse/print not a fixpoint:\n%s\n%s", i, text, got)
		}
	}
}

func TestParseMatchStructure(t *testing.T) {
	q, err := Parse(`MATCH (a:L0:L1 {k0: 1})-[r:T0|T1 {k1: 'x'}]->(b) WHERE a.id = 1 RETURN a`)
	if err != nil {
		t.Fatal(err)
	}
	m := q.Parts[0].Clauses[0].(*ast.MatchClause)
	if m.Optional {
		t.Error("not optional")
	}
	p := m.Patterns[0]
	if len(p.Nodes) != 2 || len(p.Rels) != 1 {
		t.Fatalf("pattern shape: %d nodes %d rels", len(p.Nodes), len(p.Rels))
	}
	n := p.Nodes[0]
	if n.Variable != "a" || len(n.Labels) != 2 || n.Props == nil {
		t.Errorf("node pattern: %+v", n)
	}
	r := p.Rels[0]
	if r.Variable != "r" || len(r.Types) != 2 || r.Direction != ast.DirRight || r.Props == nil {
		t.Errorf("rel pattern: %+v", r)
	}
	if m.Where == nil {
		t.Error("WHERE missing")
	}
}

func TestParseDirections(t *testing.T) {
	q, err := Parse(`MATCH (a)<-[r1]-(b)-[r2]->(c)-[r3]-(d) RETURN a`)
	if err != nil {
		t.Fatal(err)
	}
	p := q.Parts[0].Clauses[0].(*ast.MatchClause).Patterns[0]
	want := []ast.Direction{ast.DirLeft, ast.DirRight, ast.DirBoth}
	for i, r := range p.Rels {
		if r.Direction != want[i] {
			t.Errorf("rel %d direction %v, want %v", i, r.Direction, want[i])
		}
	}
}

func TestParseOptionalMatch(t *testing.T) {
	q, err := Parse(`OPTIONAL MATCH (a) RETURN a`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Parts[0].Clauses[0].(*ast.MatchClause).Optional {
		t.Error("OPTIONAL not set")
	}
}

func TestParseProjection(t *testing.T) {
	q, err := Parse(`MATCH (a) RETURN DISTINCT a.k0 AS x, count(*) AS c ORDER BY x DESC, c SKIP 1 LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	r := q.Parts[0].Clauses[1].(*ast.ReturnClause)
	if !r.Distinct || len(r.Items) != 2 {
		t.Error("projection head broken")
	}
	if r.Items[0].Alias != "x" {
		t.Error("alias broken")
	}
	f := r.Items[1].Expr.(*ast.FuncCall)
	if f.Name != "count" || !f.Star {
		t.Error("count(*) broken")
	}
	if len(r.OrderBy) != 2 || !r.OrderBy[0].Desc || r.OrderBy[1].Desc {
		t.Error("ORDER BY broken")
	}
	if r.Skip == nil || r.Limit == nil {
		t.Error("SKIP/LIMIT broken")
	}
}

func TestParseWithWhere(t *testing.T) {
	q, err := Parse(`MATCH (a) WITH a.k0 AS x WHERE x > 1 RETURN x`)
	if err != nil {
		t.Fatal(err)
	}
	w := q.Parts[0].Clauses[1].(*ast.WithClause)
	if w.Where == nil {
		t.Error("WITH ... WHERE broken")
	}
}

func TestParseReturnStar(t *testing.T) {
	q, err := Parse(`MATCH (a) RETURN *`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Parts[0].Clauses[1].(*ast.ReturnClause).Star {
		t.Error("RETURN * broken")
	}
}

func TestParseUnion(t *testing.T) {
	q, err := Parse(`RETURN 1 AS x UNION ALL RETURN 2 AS x UNION RETURN 3 AS x`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Parts) != 3 || !q.All[0] || q.All[1] {
		t.Errorf("UNION structure broken: %d parts, %v", len(q.Parts), q.All)
	}
}

func TestParseCall(t *testing.T) {
	q, err := Parse(`CALL db.labels() YIELD label RETURN label`)
	if err != nil {
		t.Fatal(err)
	}
	c := q.Parts[0].Clauses[0].(*ast.CallClause)
	if c.Procedure != "db.labels" || len(c.Yield) != 1 || c.Yield[0] != "label" {
		t.Errorf("CALL broken: %+v", c)
	}
}

func TestParseWriteClauses(t *testing.T) {
	cases := []string{
		`CREATE (a:L0 {k0: 1})-[:T0]->(b)`,
		`MATCH (a) SET a.k0 = 1, a:L1:L2`,
		`MATCH (a) DELETE a`,
		`MATCH (a) DETACH DELETE a`,
		`MATCH (a) REMOVE a.k0, a:L1`,
		`MERGE (a:L0 {k0: 1}) ON CREATE SET a.k1 = 2 ON MATCH SET a.k2 = 3`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err != nil {
			t.Errorf("%s: %v", src, err)
		}
	}
	q, _ := Parse(`MATCH (a) DETACH DELETE a`)
	if !q.Parts[0].Clauses[1].(*ast.DeleteClause).Detach {
		t.Error("DETACH flag broken")
	}
}

func TestParseExpressions(t *testing.T) {
	cases := []string{
		`1 + 2 * 3 ^ 2 % 4 - 5 / 6`,
		`'a' + toString(1)`,
		`[1, 2, 3][0]`,
		`[1, 2, 3][0..2]`,
		`[1, 2, 3][..2]`,
		`[1, 2, 3][1..]`,
		`{a: 1, b: 'x'}`,
		`CASE WHEN x > 1 THEN 'big' ELSE 'small' END`,
		`CASE x WHEN 1 THEN 'one' WHEN 2 THEN 'two' END`,
		`x IS NULL AND y IS NOT NULL`,
		`x IN [1, 2] OR y STARTS WITH 'a' XOR z ENDS WITH 'b'`,
		`NOT NOT x CONTAINS 'c'`,
		`n.k0 =~ 'ab.*'`,
		`count(DISTINCT x)`,
		`coalesce(n.k0, -1)`,
		`size(split('a,b', ','))`,
		`$param + 1`,
	}
	for _, src := range cases {
		if _, err := ParseExpr(src); err != nil {
			t.Errorf("%s: %v", src, err)
		}
	}
}

func TestExprPrecedence(t *testing.T) {
	e, err := ParseExpr(`1 + 2 * 3`)
	if err != nil {
		t.Fatal(err)
	}
	b := e.(*ast.Binary)
	if b.Op != ast.OpAdd {
		t.Fatalf("top op %v", b.Op)
	}
	if b.R.(*ast.Binary).Op != ast.OpMul {
		t.Error("* must bind tighter than +")
	}
	e, _ = ParseExpr(`NOT a AND b`)
	if e.(*ast.Binary).Op != ast.OpAnd {
		t.Error("AND must bind looser than NOT")
	}
	e, _ = ParseExpr(`a OR b AND c`)
	if e.(*ast.Binary).Op != ast.OpOr {
		t.Error("OR must bind loosest")
	}
}

func TestNegativeLiteralFold(t *testing.T) {
	e, err := ParseExpr(`-5`)
	if err != nil {
		t.Fatal(err)
	}
	lit, ok := e.(*ast.Literal)
	if !ok || lit.Val.AsInt() != -5 {
		t.Errorf("negative literal not folded: %#v", e)
	}
}

func TestParseLiterals(t *testing.T) {
	for src, want := range map[string]value.Value{
		`42`:     value.Int(42),
		`1.5`:    value.Float(1.5),
		`1e3`:    value.Float(1000),
		`'a\'b'`: value.Str("a'b"),
		`"dq"`:   value.Str("dq"),
		`true`:   value.True,
		`FALSE`:  value.False,
		`null`:   value.Null,
	} {
		e, err := ParseExpr(src)
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		lit, ok := e.(*ast.Literal)
		if !ok || !value.Equivalent(lit.Val, want) && !(lit.Val.IsNull() && want.IsNull()) {
			t.Errorf("%s => %v, want %v", src, e, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`MATCH`,
		`MATCH (a`,
		`MATCH (a) RETURN`,
		`RETURN 1 +`,
		`RETURN [1, 2`,
		`RETURN CASE END`,
		`MATCH (a)-[r]`,
		`UNWIND [1] RETURN 1`,
		`FOO (a)`,
		`RETURN 'unterminated`,
		`MATCH (a) RETURN a extra_token ,`,
		`SET a = 1`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	q, err := Parse("MATCH (a) // line comment\n /* block\ncomment */ RETURN a")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Parts[0].Clauses) != 2 {
		t.Error("comments must be skipped")
	}
}

func TestKeywordsAsNames(t *testing.T) {
	// Property names and labels that collide with keywords must parse.
	if _, err := Parse("MATCH (a:Match) RETURN a.end, a.`quoted name`"); err != nil {
		t.Fatal(err)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse(`match (a) where a.id = 1 return a order by a.id desc`); err != nil {
		t.Fatal(err)
	}
}

func TestPathVariable(t *testing.T) {
	q, err := Parse(`MATCH p = (a)-[r]->(b) RETURN p`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Parts[0].Clauses[0].(*ast.MatchClause).Patterns[0].Variable != "p" {
		t.Error("path variable broken")
	}
}

func TestASTHelpers(t *testing.T) {
	e, _ := ParseExpr(`left(m.name, n.id) + x`)
	vars := ast.Variables(e)
	if strings.Join(vars, ",") != "m,n,x" {
		t.Errorf("Variables = %v", vars)
	}
	if d := ast.Depth(e); d != 4 {
		// Binary(FuncCall(PropAccess(Var))) + Var: depth 4.
		t.Errorf("Depth = %d, want 4", d)
	}
	q, _ := Parse(`MATCH (a) WHERE a.id = 1 RETURN a.k0 AS x`)
	names := []string{}
	for _, c := range q.AllClauses() {
		names = append(names, ast.ClauseName(c))
	}
	if strings.Join(names, ",") != "MATCH,RETURN" {
		t.Errorf("ClauseName = %v", names)
	}
	count := 0
	ast.ClauseExprs(q.AllClauses()[0], func(ast.Expr) { count++ })
	if count != 1 {
		t.Errorf("ClauseExprs visited %d exprs, want 1 (WHERE)", count)
	}
}
