package ast

import (
	"strings"
	"testing"

	"gqs/internal/value"
)

func TestBinOpStrings(t *testing.T) {
	cases := map[BinOp]string{
		OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
		OpPow: "^", OpEq: "=", OpNeq: "<>", OpLt: "<", OpLe: "<=",
		OpGt: ">", OpGe: ">=", OpAnd: "AND", OpOr: "OR", OpXor: "XOR",
		OpStartsWith: "STARTS WITH", OpEndsWith: "ENDS WITH",
		OpContains: "CONTAINS", OpIn: "IN", OpRegex: "=~",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("op %d = %q, want %q", op, got, want)
		}
	}
}

func TestExprPrinting(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Lit(value.Int(5)), "5"},
		{Lit(value.Null), "null"},
		{Var("n"), "n"},
		{Prop("n", "k0"), "n.k0"},
		{Bin(OpAdd, Lit(value.Int(1)), Lit(value.Int(2))), "(1 + 2)"},
		{Bin(OpPow, Var("x"), Lit(value.Int(2))), "(x^2)"},
		{&Unary{Op: OpNot, X: Var("b")}, "(NOT b)"},
		{&Unary{Op: OpNeg, X: Var("x")}, "(-x)"},
		{&Unary{Op: OpIsNull, X: Var("x")}, "(x IS NULL)"},
		{&Unary{Op: OpIsNotNull, X: Var("x")}, "(x IS NOT NULL)"},
		{&FuncCall{Name: "count", Star: true}, "count(*)"},
		{&FuncCall{Name: "collect", Distinct: true, Args: []Expr{Var("x")}}, "collect(DISTINCT x)"},
		{&ListLit{Elems: []Expr{Lit(value.Int(1)), Var("y")}}, "[1, y]"},
		{&MapLit{Keys: []string{"a"}, Vals: []Expr{Lit(value.Int(1))}}, "{a: 1}"},
		{&IndexExpr{Subject: Var("l"), Index: Lit(value.Int(0))}, "l[0]"},
		{&SliceExpr{Subject: Var("l"), From: Lit(value.Int(1))}, "l[1..]"},
		{&SliceExpr{Subject: Var("l"), To: Lit(value.Int(2))}, "l[..2]"},
		{&CaseExpr{Test: Var("x"), Whens: []Expr{Lit(value.Int(1))}, Thens: []Expr{Lit(value.Str("one"))}, Else: Lit(value.Str("other"))},
			"CASE x WHEN 1 THEN 'one' ELSE 'other' END"},
		{&Parameter{Name: "p"}, "$p"},
	}
	for _, c := range cases {
		if got := ExprString(c.e); got != c.want {
			t.Errorf("ExprString = %q, want %q", got, c.want)
		}
	}
}

func TestQueryPrinting(t *testing.T) {
	q := &Query{Parts: []*SingleQuery{
		{Clauses: []Clause{
			&MatchClause{
				Optional: true,
				Patterns: []*PatternPart{{
					Nodes: []*NodePattern{
						{Variable: "a", Labels: []string{"L0", "L1"}},
						{Variable: "b"},
					},
					Rels: []*RelPattern{{Variable: "r", Types: []string{"T0", "T1"}, Direction: DirRight}},
				}},
				Where: Bin(OpEq, Prop("a", "id"), Lit(value.Int(1))),
			},
			&UnwindClause{Expr: &ListLit{Elems: []Expr{Lit(value.Int(1))}}, Alias: "u"},
			&WithClause{Projection: Projection{
				Distinct: true,
				Items:    []*ProjectionItem{{Expr: Var("a")}, {Expr: Prop("a", "k0"), Alias: "x"}},
				OrderBy:  []*SortItem{{Expr: Var("x"), Desc: true}},
				Skip:     Lit(value.Int(1)),
				Limit:    Lit(value.Int(2)),
			}, Where: &Unary{Op: OpIsNotNull, X: Var("x")}},
			&ReturnClause{Projection: Projection{Star: true}},
		}},
		{Clauses: []Clause{
			&ReturnClause{Projection: Projection{Items: []*ProjectionItem{{Expr: Lit(value.Int(1)), Alias: "one"}}}},
		}},
	}, All: []bool{true}}
	got := q.String()
	for _, want := range []string{
		"OPTIONAL MATCH (a:L0:L1)-[r:T0|T1]->(b) WHERE (a.id = 1)",
		"UNWIND [1] AS u",
		"WITH DISTINCT a, a.k0 AS x ORDER BY x DESC SKIP 1 LIMIT 2 WHERE (x IS NOT NULL)",
		"RETURN *",
		"UNION ALL RETURN 1 AS one",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
}

func TestWriteClausePrinting(t *testing.T) {
	q := &SingleQuery{Clauses: []Clause{
		&CreateClause{Patterns: []*PatternPart{{
			Nodes: []*NodePattern{{Variable: "a", Labels: []string{"X"},
				Props: &MapLit{Keys: []string{"k"}, Vals: []Expr{Lit(value.Int(1))}}}},
		}}},
		&MergeClause{
			Pattern:  &PatternPart{Nodes: []*NodePattern{{Variable: "m", Labels: []string{"Y"}}}},
			OnCreate: []*SetItem{{Subject: Var("m"), Property: "c", Value: Lit(value.True)}},
			OnMatch:  []*SetItem{{Variable: "m", Labels: []string{"Z"}}},
		},
		&SetClause{Items: []*SetItem{{Subject: Var("a"), Property: "k", Value: Lit(value.Int(2))}}},
		&RemoveClause{Items: []*RemoveItem{
			{Subject: Var("a"), Property: "k"},
			{Variable: "a", Labels: []string{"X"}},
		}},
		&DeleteClause{Detach: true, Exprs: []Expr{Var("a")}},
		&CallClause{Procedure: "db.labels", Yield: []string{"label"}},
	}}
	got := q.String()
	for _, want := range []string{
		"CREATE (a:X {k: 1})",
		"MERGE (m:Y) ON CREATE SET m.c = true ON MATCH SET m:Z",
		"SET a.k = 2",
		"REMOVE a.k, a:X",
		"DETACH DELETE a",
		"CALL db.labels() YIELD label",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
}

func TestClauseNames(t *testing.T) {
	cases := map[string]Clause{
		"MATCH":          &MatchClause{},
		"OPTIONAL MATCH": &MatchClause{Optional: true},
		"UNWIND":         &UnwindClause{},
		"WITH":           &WithClause{},
		"RETURN":         &ReturnClause{},
		"CALL":           &CallClause{},
		"CREATE":         &CreateClause{},
		"SET":            &SetClause{},
		"MERGE":          &MergeClause{Pattern: &PatternPart{}},
		"DELETE":         &DeleteClause{},
		"DETACH DELETE":  &DeleteClause{Detach: true},
		"REMOVE":         &RemoveClause{},
	}
	for want, c := range cases {
		if got := ClauseName(c); got != want {
			t.Errorf("ClauseName = %q, want %q", got, want)
		}
	}
}

func TestAndHelper(t *testing.T) {
	if And() != nil {
		t.Error("And() must be nil")
	}
	p := Var("p")
	if And(p) != p {
		t.Error("And(p) must be p itself")
	}
	e := And(p, nil, Var("q"))
	b, ok := e.(*Binary)
	if !ok || b.Op != OpAnd {
		t.Fatalf("And(p, q) = %#v", e)
	}
}

func TestDepth(t *testing.T) {
	if Depth(nil) != 0 {
		t.Error("Depth(nil) must be 0")
	}
	if Depth(Var("x")) != 1 {
		t.Error("leaf depth must be 1")
	}
	e := Bin(OpAdd, Prop("n", "k"), Lit(value.Int(1))) // Binary(PropAccess(Var), Lit)
	if Depth(e) != 3 {
		t.Errorf("Depth = %d, want 3", Depth(e))
	}
	deep := &FuncCall{Name: "abs", Args: []Expr{e}}
	if Depth(deep) != 4 {
		t.Errorf("Depth = %d, want 4", Depth(deep))
	}
	c := &CaseExpr{Whens: []Expr{deep}, Thens: []Expr{Var("x")}}
	if Depth(c) != 5 {
		t.Errorf("case Depth = %d, want 5", Depth(c))
	}
}

func TestVariablesDedup(t *testing.T) {
	e := Bin(OpAdd, Var("x"), Bin(OpMul, Var("y"), Var("x")))
	vs := Variables(e)
	if len(vs) != 2 || vs[0] != "x" || vs[1] != "y" {
		t.Errorf("Variables = %v", vs)
	}
}

func TestWalkExprsPruning(t *testing.T) {
	e := Bin(OpAdd, Var("x"), Var("y"))
	count := 0
	WalkExprs(e, func(Expr) bool {
		count++
		return false // prune at the root
	})
	if count != 1 {
		t.Errorf("pruned walk visited %d nodes", count)
	}
	count = 0
	WalkExprs(e, func(Expr) bool { count++; return true })
	if count != 3 {
		t.Errorf("full walk visited %d nodes, want 3", count)
	}
}

func TestAllClauses(t *testing.T) {
	q := &Query{Parts: []*SingleQuery{
		{Clauses: []Clause{&MatchClause{}, &ReturnClause{}}},
		{Clauses: []Clause{&ReturnClause{}}},
	}, All: []bool{false}}
	if len(q.AllClauses()) != 3 {
		t.Errorf("AllClauses = %d", len(q.AllClauses()))
	}
}

func TestClauseExprsCoverage(t *testing.T) {
	count := func(c Clause) int {
		n := 0
		ClauseExprs(c, func(Expr) { n++ })
		return n
	}
	m := &MatchClause{
		Patterns: []*PatternPart{{
			Nodes: []*NodePattern{{Props: &MapLit{Keys: []string{"k"}, Vals: []Expr{Lit(value.Int(1))}}}, {}},
			Rels:  []*RelPattern{{Props: &MapLit{Keys: []string{"j"}, Vals: []Expr{Lit(value.Int(2))}}}},
		}},
		Where: Var("p"),
	}
	if count(m) != 3 {
		t.Errorf("match exprs = %d, want 3", count(m))
	}
	w := &WithClause{Projection: Projection{
		Items:   []*ProjectionItem{{Expr: Var("a")}},
		OrderBy: []*SortItem{{Expr: Var("b")}},
		Skip:    Lit(value.Int(0)),
		Limit:   Lit(value.Int(1)),
	}, Where: Var("c")}
	if count(w) != 5 {
		t.Errorf("with exprs = %d, want 5", count(w))
	}
	d := &DeleteClause{Exprs: []Expr{Var("a"), Var("b")}}
	if count(d) != 2 {
		t.Errorf("delete exprs = %d", count(d))
	}
}
