// Package ast defines the abstract syntax tree for the Cypher subset used
// throughout this repository: the eleven data-retrieval clauses and
// subclauses plus the six update clauses of openCypher 9 (§2.2 of the GQS
// paper), together with a printer that renders trees back to Cypher text
// and a walker used by the complexity metrics of Table 5.
package ast

import (
	"strconv"

	"gqs/internal/value"
)

// Query is a full Cypher query: one or more single queries combined with
// UNION / UNION ALL.
type Query struct {
	Parts []*SingleQuery
	// All[i] reports whether the UNION between Parts[i] and Parts[i+1]
	// is UNION ALL. Its length is len(Parts)-1.
	All []bool
}

// SingleQuery is a sequence of clauses.
type SingleQuery struct {
	Clauses []Clause
}

// Clause is implemented by all clause nodes.
type Clause interface {
	Node
	clause()
}

// Node is implemented by every AST node.
type Node interface {
	node()
}

// Direction is the direction of a relationship pattern.
type Direction int

// Relationship directions: left (<-[]-), right (-[]->), or undirected (-[]-).
const (
	DirBoth Direction = iota
	DirLeft
	DirRight
)

// NodePattern is a node element of a pattern, e.g. (n:L0 {k: 1}).
type NodePattern struct {
	Variable string // "" if anonymous
	Labels   []string
	Props    *MapLit // nil if absent
}

// RelPattern is a relationship element of a pattern, e.g. -[r:T0]->.
type RelPattern struct {
	Variable  string
	Types     []string
	Props     *MapLit
	Direction Direction
}

// PatternPart is one comma-separated pattern: an alternating chain of
// node and relationship patterns, optionally bound to a path variable.
type PatternPart struct {
	Variable string // path variable, usually ""
	Nodes    []*NodePattern
	Rels     []*RelPattern // len(Rels) == len(Nodes)-1
}

// MatchClause is MATCH or OPTIONAL MATCH with an optional WHERE subclause.
type MatchClause struct {
	Optional bool
	Patterns []*PatternPart
	Where    Expr // nil if absent
}

// UnwindClause is UNWIND expr AS alias.
type UnwindClause struct {
	Expr  Expr
	Alias string
}

// SortItem is one ORDER BY key.
type SortItem struct {
	Expr Expr
	Desc bool
}

// ProjectionItem is one item of a WITH/RETURN projection list.
type ProjectionItem struct {
	Expr  Expr
	Alias string // "" means no AS; the item must then be re-renderable
}

// Projection is the shared body of WITH and RETURN.
type Projection struct {
	Distinct bool
	Star     bool // RETURN * / WITH *
	Items    []*ProjectionItem
	OrderBy  []*SortItem
	Skip     Expr // nil if absent
	Limit    Expr // nil if absent
}

// WithClause is WITH ... [WHERE ...].
type WithClause struct {
	Projection
	Where Expr // nil if absent
}

// ReturnClause is the final RETURN.
type ReturnClause struct {
	Projection
}

// CallClause is CALL proc(args) [YIELD items].
type CallClause struct {
	Procedure string
	Args      []Expr
	Yield     []string
}

// CreateClause is CREATE pattern[, pattern]*.
type CreateClause struct {
	Patterns []*PatternPart
}

// SetItem is one assignment of a SET clause: either a property set
// (subject.prop = expr) or a label set (variable:Label).
type SetItem struct {
	// Property assignment.
	Subject  Expr
	Property string
	Value    Expr
	// Label assignment (when Labels is non-empty, the others are unset).
	Variable string
	Labels   []string
}

// SetClause is SET item[, item]*.
type SetClause struct {
	Items []*SetItem
}

// MergeClause is MERGE pattern [ON CREATE SET ...] [ON MATCH SET ...].
type MergeClause struct {
	Pattern  *PatternPart
	OnCreate []*SetItem
	OnMatch  []*SetItem
}

// DeleteClause is [DETACH] DELETE expr[, expr]*.
type DeleteClause struct {
	Detach bool
	Exprs  []Expr
}

// RemoveItem is one item of a REMOVE clause: a property removal
// (subject.prop) or a label removal (variable:Label).
type RemoveItem struct {
	Subject  Expr
	Property string
	Variable string
	Labels   []string
}

// RemoveClause is REMOVE item[, item]*.
type RemoveClause struct {
	Items []*RemoveItem
}

func (*MatchClause) clause()  {}
func (*UnwindClause) clause() {}
func (*WithClause) clause()   {}
func (*ReturnClause) clause() {}
func (*CallClause) clause()   {}
func (*CreateClause) clause() {}
func (*SetClause) clause()    {}
func (*MergeClause) clause()  {}
func (*DeleteClause) clause() {}
func (*RemoveClause) clause() {}

func (*MatchClause) node()  {}
func (*UnwindClause) node() {}
func (*WithClause) node()   {}
func (*ReturnClause) node() {}
func (*CallClause) node()   {}
func (*CreateClause) node() {}
func (*SetClause) node()    {}
func (*MergeClause) node()  {}
func (*DeleteClause) node() {}
func (*RemoveClause) node() {}

// ClauseName returns the display name of a clause, as used by the
// Figure 11/12 analyses.
func ClauseName(c Clause) string {
	switch c := c.(type) {
	case *MatchClause:
		if c.Optional {
			return "OPTIONAL MATCH"
		}
		return "MATCH"
	case *UnwindClause:
		return "UNWIND"
	case *WithClause:
		return "WITH"
	case *ReturnClause:
		return "RETURN"
	case *CallClause:
		return "CALL"
	case *CreateClause:
		return "CREATE"
	case *SetClause:
		return "SET"
	case *MergeClause:
		return "MERGE"
	case *DeleteClause:
		if c.Detach {
			return "DETACH DELETE"
		}
		return "DELETE"
	case *RemoveClause:
		return "REMOVE"
	default:
		return "?"
	}
}

// ---- Expressions ----

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	expr()
}

// BinOp is a binary operator.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpPow
	OpEq
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpXor
	OpStartsWith
	OpEndsWith
	OpContains
	OpIn
	OpRegex
)

var binOpNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpPow: "^", OpEq: "=", OpNeq: "<>", OpLt: "<", OpLe: "<=",
	OpGt: ">", OpGe: ">=", OpAnd: "AND", OpOr: "OR", OpXor: "XOR",
	OpStartsWith: "STARTS WITH", OpEndsWith: "ENDS WITH",
	OpContains: "CONTAINS", OpIn: "IN", OpRegex: "=~",
}

// String returns the Cypher spelling of the operator.
func (op BinOp) String() string {
	if int(op) < len(binOpNames) {
		return binOpNames[op]
	}
	return "?"
}

// UnOp is a unary operator.
type UnOp int

// Unary operators. IS NULL and IS NOT NULL are postfix in the syntax but
// modelled as unary nodes.
const (
	OpNot UnOp = iota
	OpNeg
	OpIsNull
	OpIsNotNull
)

// Literal is a constant value.
type Literal struct {
	Val value.Value
}

// Variable is a reference to a bound variable.
type Variable struct {
	Name string
}

// PropAccess is subject.prop.
type PropAccess struct {
	Subject Expr
	Name    string
}

// Binary is a binary operator application.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// Unary is a unary operator application.
type Unary struct {
	Op UnOp
	X  Expr
}

// FuncCall is a function invocation. Star marks count(*).
type FuncCall struct {
	Name     string
	Distinct bool
	Star     bool
	Args     []Expr
}

// ListLit is a list literal.
type ListLit struct {
	Elems []Expr
}

// MapLit is a map literal with deterministic key order.
type MapLit struct {
	Keys []string
	Vals []Expr
}

// IndexExpr is subject[index].
type IndexExpr struct {
	Subject Expr
	Index   Expr
}

// SliceExpr is subject[from..to]; From and To may be nil.
type SliceExpr struct {
	Subject Expr
	From    Expr
	To      Expr
}

// CaseExpr is either a simple CASE (Test non-nil) or a generic CASE.
type CaseExpr struct {
	Test  Expr // nil for generic CASE
	Whens []Expr
	Thens []Expr
	Else  Expr // nil if absent
}

// Parameter is $name (parsed for completeness; evaluation resolves it
// against the execution parameters).
type Parameter struct {
	Name string
}

// ListComprehension is [v IN list WHERE pred | mapExpr]; Where and Map
// may be nil.
type ListComprehension struct {
	Var   string
	List  Expr
	Where Expr
	Map   Expr
}

// QuantKind selects a list quantifier.
type QuantKind int

// The four Cypher quantifiers.
const (
	QuantAll QuantKind = iota
	QuantAny
	QuantNone
	QuantSingle
)

// String returns the Cypher spelling of the quantifier.
func (k QuantKind) String() string {
	switch k {
	case QuantAll:
		return "all"
	case QuantAny:
		return "any"
	case QuantNone:
		return "none"
	default:
		return "single"
	}
}

// Quantifier is all/any/none/single(v IN list WHERE pred).
type Quantifier struct {
	Kind QuantKind
	Var  string
	List Expr
	Pred Expr
}

func (*Literal) expr()           {}
func (*Variable) expr()          {}
func (*PropAccess) expr()        {}
func (*Binary) expr()            {}
func (*Unary) expr()             {}
func (*FuncCall) expr()          {}
func (*ListLit) expr()           {}
func (*MapLit) expr()            {}
func (*IndexExpr) expr()         {}
func (*SliceExpr) expr()         {}
func (*CaseExpr) expr()          {}
func (*Parameter) expr()         {}
func (*ListComprehension) expr() {}
func (*Quantifier) expr()        {}

func (*Literal) node()           {}
func (*Variable) node()          {}
func (*PropAccess) node()        {}
func (*Binary) node()            {}
func (*Unary) node()             {}
func (*FuncCall) node()          {}
func (*ListLit) node()           {}
func (*MapLit) node()            {}
func (*IndexExpr) node()         {}
func (*SliceExpr) node()         {}
func (*CaseExpr) node()          {}
func (*Parameter) node()         {}
func (*ListComprehension) node() {}
func (*Quantifier) node()        {}

// Leaf interning. Parsing and synthesis construct enormous numbers of
// identical Variable and Literal leaves (the same few variable names and
// small constants recur in every query). Expression trees are immutable
// after construction — the PreparedQuery sharing contract already depends
// on that — so identical leaves can be one shared node. Only leaf types
// are interned, and only through lock-free precomputed tables: a shared
// map (even sync.Map) costs more per lookup on these paths than the
// allocation it saves. Interior nodes keep distinct identity, so walks
// that compare an interior node against its children by pointer still
// work.
const (
	internIntLo = -16
	internIntHi = 256
	// internVarMax bounds the per-prefix nN/rN/aN variable table; names
	// past it simply allocate.
	internVarMax = 64
)

var (
	litNull  = &Literal{Val: value.Null}
	litTrue  = &Literal{Val: value.Bool(true)}
	litFalse = &Literal{Val: value.Bool(false)}
	litInts  [internIntHi - internIntLo + 1]*Literal
	// varTab holds the nN/rN/aN names every synthesized query is built
	// from, indexed by prefix (n, r, a) and sequence number.
	varTab [3][internVarMax]*Variable
)

func init() {
	for i := range litInts {
		litInts[i] = &Literal{Val: value.Int(int64(i + internIntLo))}
	}
	for p, c := range [3]byte{'n', 'r', 'a'} {
		for i := range varTab[p] {
			varTab[p][i] = &Variable{Name: string(c) + strconv.Itoa(i)}
		}
	}
}

// Lit is a convenience constructor for literal expressions. Null, bools,
// and small integers return shared interned nodes.
func Lit(v value.Value) *Literal {
	switch v.Kind() {
	case value.KindNull:
		return litNull
	case value.KindBool:
		if v.AsBool() {
			return litTrue
		}
		return litFalse
	case value.KindInt:
		if i := v.AsInt(); i >= internIntLo && i <= internIntHi {
			return litInts[i-internIntLo]
		}
	}
	return &Literal{Val: v}
}

// Var is a convenience constructor for variable references. The
// canonical nN/rN/aN names of plan and synthesis return shared interned
// nodes; anything else allocates.
func Var(name string) *Variable {
	if n := len(name); n >= 2 && n <= 3 && (n == 2 || name[1] != '0') {
		p := -1
		switch name[0] {
		case 'n':
			p = 0
		case 'r':
			p = 1
		case 'a':
			p = 2
		}
		if p >= 0 {
			i := 0
			for j := 1; j < n; j++ {
				d := int(name[j]) - '0'
				if d < 0 || d > 9 {
					i = internVarMax
					break
				}
				i = i*10 + d
			}
			if i < internVarMax {
				return varTab[p][i]
			}
		}
	}
	return &Variable{Name: name}
}

// Prop is a convenience constructor for variable.property accesses.
func Prop(varName, prop string) *PropAccess {
	return &PropAccess{Subject: Var(varName), Name: prop}
}

// Bin is a convenience constructor for binary applications.
func Bin(op BinOp, l, r Expr) *Binary { return &Binary{Op: op, L: l, R: r} }

// And builds a conjunction of the given predicates, returning nil for an
// empty input and the single predicate for one input.
func And(preds ...Expr) Expr {
	var out Expr
	for _, p := range preds {
		if p == nil {
			continue
		}
		if out == nil {
			out = p
		} else {
			out = Bin(OpAnd, out, p)
		}
	}
	return out
}
