package ast

import (
	"strings"
)

// String renders the query back to Cypher text. Binary and unary
// subexpressions are fully parenthesized, which sidesteps precedence
// pitfalls and matches the style of the paper's synthesized queries.
func (q *Query) String() string {
	var sb strings.Builder
	sb.Grow(256)
	for i, p := range q.Parts {
		if i > 0 {
			sb.WriteString(" UNION ")
			if q.All[i-1] {
				sb.WriteString("ALL ")
			}
		}
		p.print(&sb)
	}
	return sb.String()
}

// String renders the single query as Cypher text.
func (s *SingleQuery) print(sb *strings.Builder) {
	for i, c := range s.Clauses {
		if i > 0 {
			sb.WriteByte(' ')
		}
		printClause(sb, c)
	}
}

// String renders a single query.
func (s *SingleQuery) String() string {
	var sb strings.Builder
	s.print(&sb)
	return sb.String()
}

func printClause(sb *strings.Builder, c Clause) {
	switch c := c.(type) {
	case *MatchClause:
		if c.Optional {
			sb.WriteString("OPTIONAL ")
		}
		sb.WriteString("MATCH ")
		printPatterns(sb, c.Patterns)
		if c.Where != nil {
			sb.WriteString(" WHERE ")
			printExpr(sb, c.Where)
		}
	case *UnwindClause:
		sb.WriteString("UNWIND ")
		printExpr(sb, c.Expr)
		sb.WriteString(" AS ")
		sb.WriteString(c.Alias)
	case *WithClause:
		sb.WriteString("WITH ")
		printProjection(sb, &c.Projection)
		if c.Where != nil {
			sb.WriteString(" WHERE ")
			printExpr(sb, c.Where)
		}
	case *ReturnClause:
		sb.WriteString("RETURN ")
		printProjection(sb, &c.Projection)
	case *CallClause:
		sb.WriteString("CALL ")
		sb.WriteString(c.Procedure)
		sb.WriteByte('(')
		for i, a := range c.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			printExpr(sb, a)
		}
		sb.WriteByte(')')
		if len(c.Yield) > 0 {
			sb.WriteString(" YIELD ")
			sb.WriteString(strings.Join(c.Yield, ", "))
		}
	case *CreateClause:
		sb.WriteString("CREATE ")
		printPatterns(sb, c.Patterns)
	case *SetClause:
		sb.WriteString("SET ")
		for i, it := range c.Items {
			if i > 0 {
				sb.WriteString(", ")
			}
			printSetItem(sb, it)
		}
	case *MergeClause:
		sb.WriteString("MERGE ")
		printPattern(sb, c.Pattern)
		if len(c.OnCreate) > 0 {
			sb.WriteString(" ON CREATE SET ")
			for i, it := range c.OnCreate {
				if i > 0 {
					sb.WriteString(", ")
				}
				printSetItem(sb, it)
			}
		}
		if len(c.OnMatch) > 0 {
			sb.WriteString(" ON MATCH SET ")
			for i, it := range c.OnMatch {
				if i > 0 {
					sb.WriteString(", ")
				}
				printSetItem(sb, it)
			}
		}
	case *DeleteClause:
		if c.Detach {
			sb.WriteString("DETACH ")
		}
		sb.WriteString("DELETE ")
		for i, e := range c.Exprs {
			if i > 0 {
				sb.WriteString(", ")
			}
			printExpr(sb, e)
		}
	case *RemoveClause:
		sb.WriteString("REMOVE ")
		for i, it := range c.Items {
			if i > 0 {
				sb.WriteString(", ")
			}
			if len(it.Labels) > 0 {
				sb.WriteString(it.Variable)
				for _, l := range it.Labels {
					sb.WriteByte(':')
					sb.WriteString(l)
				}
			} else {
				printExpr(sb, it.Subject)
				sb.WriteByte('.')
				sb.WriteString(it.Property)
			}
		}
	}
}

func printSetItem(sb *strings.Builder, it *SetItem) {
	if len(it.Labels) > 0 {
		sb.WriteString(it.Variable)
		for _, l := range it.Labels {
			sb.WriteByte(':')
			sb.WriteString(l)
		}
		return
	}
	printExpr(sb, it.Subject)
	sb.WriteByte('.')
	sb.WriteString(it.Property)
	sb.WriteString(" = ")
	printExpr(sb, it.Value)
}

func printProjection(sb *strings.Builder, p *Projection) {
	if p.Distinct {
		sb.WriteString("DISTINCT ")
	}
	if p.Star {
		sb.WriteByte('*')
		if len(p.Items) > 0 {
			sb.WriteString(", ")
		}
	}
	for i, it := range p.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		printExpr(sb, it.Expr)
		if it.Alias != "" {
			sb.WriteString(" AS ")
			sb.WriteString(it.Alias)
		}
	}
	if len(p.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, s := range p.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			printExpr(sb, s.Expr)
			if s.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if p.Skip != nil {
		sb.WriteString(" SKIP ")
		printExpr(sb, p.Skip)
	}
	if p.Limit != nil {
		sb.WriteString(" LIMIT ")
		printExpr(sb, p.Limit)
	}
}

func printPatterns(sb *strings.Builder, ps []*PatternPart) {
	for i, p := range ps {
		if i > 0 {
			sb.WriteString(", ")
		}
		printPattern(sb, p)
	}
}

func printPattern(sb *strings.Builder, p *PatternPart) {
	if p.Variable != "" {
		sb.WriteString(p.Variable)
		sb.WriteString(" = ")
	}
	for i, n := range p.Nodes {
		if i > 0 {
			r := p.Rels[i-1]
			if r.Direction == DirLeft {
				sb.WriteByte('<')
			}
			sb.WriteByte('-')
			if r.Variable != "" || len(r.Types) > 0 || r.Props != nil {
				sb.WriteByte('[')
				sb.WriteString(r.Variable)
				for j, t := range r.Types {
					if j == 0 {
						sb.WriteByte(':')
					} else {
						sb.WriteByte('|')
					}
					sb.WriteString(t)
				}
				if r.Props != nil {
					sb.WriteByte(' ')
					printExpr(sb, r.Props)
				}
				sb.WriteByte(']')
			}
			sb.WriteByte('-')
			if r.Direction == DirRight {
				sb.WriteByte('>')
			}
		}
		sb.WriteByte('(')
		sb.WriteString(n.Variable)
		for _, l := range n.Labels {
			sb.WriteByte(':')
			sb.WriteString(l)
		}
		if n.Props != nil {
			if n.Variable != "" || len(n.Labels) > 0 {
				sb.WriteByte(' ')
			}
			printExpr(sb, n.Props)
		}
		sb.WriteByte(')')
	}
}

// ExprString renders an expression as Cypher text.
func ExprString(e Expr) string {
	var sb strings.Builder
	printExpr(&sb, e)
	return sb.String()
}

func printExpr(sb *strings.Builder, e Expr) {
	switch e := e.(type) {
	case *Literal:
		if e.Val.IsNull() {
			sb.WriteString("null")
		} else {
			e.Val.Format(sb)
		}
	case *Variable:
		sb.WriteString(e.Name)
	case *Parameter:
		sb.WriteByte('$')
		sb.WriteString(e.Name)
	case *PropAccess:
		printExpr(sb, e.Subject)
		sb.WriteByte('.')
		sb.WriteString(e.Name)
	case *Binary:
		sb.WriteByte('(')
		printExpr(sb, e.L)
		if e.Op == OpPow {
			// No surrounding spaces keeps ^ compact, like the paper's output.
			sb.WriteString(e.Op.String())
		} else {
			sb.WriteByte(' ')
			sb.WriteString(e.Op.String())
			sb.WriteByte(' ')
		}
		printExpr(sb, e.R)
		sb.WriteByte(')')
	case *Unary:
		switch e.Op {
		case OpNot:
			sb.WriteString("(NOT ")
			printExpr(sb, e.X)
			sb.WriteByte(')')
		case OpNeg:
			sb.WriteString("(-")
			printExpr(sb, e.X)
			sb.WriteByte(')')
		case OpIsNull:
			sb.WriteByte('(')
			printExpr(sb, e.X)
			sb.WriteString(" IS NULL)")
		case OpIsNotNull:
			sb.WriteByte('(')
			printExpr(sb, e.X)
			sb.WriteString(" IS NOT NULL)")
		}
	case *FuncCall:
		sb.WriteString(e.Name)
		sb.WriteByte('(')
		if e.Distinct {
			sb.WriteString("DISTINCT ")
		}
		if e.Star {
			sb.WriteByte('*')
		}
		for i, a := range e.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			printExpr(sb, a)
		}
		sb.WriteByte(')')
	case *ListLit:
		sb.WriteByte('[')
		for i, el := range e.Elems {
			if i > 0 {
				sb.WriteString(", ")
			}
			printExpr(sb, el)
		}
		sb.WriteByte(']')
	case *MapLit:
		sb.WriteByte('{')
		for i, k := range e.Keys {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(k)
			sb.WriteString(": ")
			printExpr(sb, e.Vals[i])
		}
		sb.WriteByte('}')
	case *IndexExpr:
		printExpr(sb, e.Subject)
		sb.WriteByte('[')
		printExpr(sb, e.Index)
		sb.WriteByte(']')
	case *SliceExpr:
		printExpr(sb, e.Subject)
		sb.WriteByte('[')
		if e.From != nil {
			printExpr(sb, e.From)
		}
		sb.WriteString("..")
		if e.To != nil {
			printExpr(sb, e.To)
		}
		sb.WriteByte(']')
	case *CaseExpr:
		sb.WriteString("CASE")
		if e.Test != nil {
			sb.WriteByte(' ')
			printExpr(sb, e.Test)
		}
		for i := range e.Whens {
			sb.WriteString(" WHEN ")
			printExpr(sb, e.Whens[i])
			sb.WriteString(" THEN ")
			printExpr(sb, e.Thens[i])
		}
		if e.Else != nil {
			sb.WriteString(" ELSE ")
			printExpr(sb, e.Else)
		}
		sb.WriteString(" END")
	case *ListComprehension:
		sb.WriteByte('[')
		sb.WriteString(e.Var)
		sb.WriteString(" IN ")
		printExpr(sb, e.List)
		if e.Where != nil {
			sb.WriteString(" WHERE ")
			printExpr(sb, e.Where)
		}
		if e.Map != nil {
			sb.WriteString(" | ")
			printExpr(sb, e.Map)
		}
		sb.WriteByte(']')
	case *Quantifier:
		sb.WriteString(e.Kind.String())
		sb.WriteByte('(')
		sb.WriteString(e.Var)
		sb.WriteString(" IN ")
		printExpr(sb, e.List)
		sb.WriteString(" WHERE ")
		printExpr(sb, e.Pred)
		sb.WriteByte(')')
	}
}
