package ast

// WalkExprs calls f for every expression node reachable from e, in
// pre-order. If f returns false the node's children are skipped.
func WalkExprs(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch e := e.(type) {
	case *PropAccess:
		WalkExprs(e.Subject, f)
	case *Binary:
		WalkExprs(e.L, f)
		WalkExprs(e.R, f)
	case *Unary:
		WalkExprs(e.X, f)
	case *FuncCall:
		for _, a := range e.Args {
			WalkExprs(a, f)
		}
	case *ListLit:
		for _, el := range e.Elems {
			WalkExprs(el, f)
		}
	case *MapLit:
		for _, v := range e.Vals {
			WalkExprs(v, f)
		}
	case *IndexExpr:
		WalkExprs(e.Subject, f)
		WalkExprs(e.Index, f)
	case *SliceExpr:
		WalkExprs(e.Subject, f)
		WalkExprs(e.From, f)
		WalkExprs(e.To, f)
	case *CaseExpr:
		WalkExprs(e.Test, f)
		for i := range e.Whens {
			WalkExprs(e.Whens[i], f)
			WalkExprs(e.Thens[i], f)
		}
		WalkExprs(e.Else, f)
	case *ListComprehension:
		WalkExprs(e.List, f)
		WalkExprs(e.Where, f)
		WalkExprs(e.Map, f)
	case *Quantifier:
		WalkExprs(e.List, f)
		WalkExprs(e.Pred, f)
	}
}

// ClauseExprs calls f for every top-level expression appearing in the
// clause (WHERE predicates, projection items, pattern property maps, ...).
func ClauseExprs(c Clause, f func(Expr)) {
	visit := func(e Expr) {
		if e != nil {
			f(e)
		}
	}
	patterns := func(ps []*PatternPart) {
		for _, p := range ps {
			for _, n := range p.Nodes {
				if n.Props != nil {
					visit(n.Props)
				}
			}
			for _, r := range p.Rels {
				if r.Props != nil {
					visit(r.Props)
				}
			}
		}
	}
	projection := func(p *Projection) {
		for _, it := range p.Items {
			visit(it.Expr)
		}
		for _, s := range p.OrderBy {
			visit(s.Expr)
		}
		visit(p.Skip)
		visit(p.Limit)
	}
	switch c := c.(type) {
	case *MatchClause:
		patterns(c.Patterns)
		visit(c.Where)
	case *UnwindClause:
		visit(c.Expr)
	case *WithClause:
		projection(&c.Projection)
		visit(c.Where)
	case *ReturnClause:
		projection(&c.Projection)
	case *CallClause:
		for _, a := range c.Args {
			visit(a)
		}
	case *CreateClause:
		patterns(c.Patterns)
	case *SetClause:
		for _, it := range c.Items {
			visit(it.Subject)
			visit(it.Value)
		}
	case *MergeClause:
		patterns([]*PatternPart{c.Pattern})
		for _, it := range append(append([]*SetItem{}, c.OnCreate...), c.OnMatch...) {
			visit(it.Subject)
			visit(it.Value)
		}
	case *DeleteClause:
		for _, e := range c.Exprs {
			visit(e)
		}
	case *RemoveClause:
		for _, it := range c.Items {
			visit(it.Subject)
		}
	}
}

// Clauses returns all clauses of the query across UNION parts.
func (q *Query) AllClauses() []Clause {
	var out []Clause
	for _, p := range q.Parts {
		out = append(out, p.Clauses...)
	}
	return out
}

// Variables returns the names of the free variables referenced by the
// expression, in first-occurrence order. Variables bound by list
// comprehensions or quantifiers are not free within their scope.
// It sits on hot paths (clause planning, predicate synthesis), so the
// collector walks the tree directly with a scope stack and linear-scan
// dedup — the variable counts involved are far too small for maps to
// pay for themselves.
func Variables(e Expr) []string {
	var c varCollector
	c.walk(e)
	return c.out
}

// varCollector accumulates free variables in first-occurrence order.
// bound is the stack of comprehension/quantifier bindings in scope.
type varCollector struct {
	out   []string
	bound []string
}

func (c *varCollector) add(name string) {
	for _, b := range c.bound {
		if b == name {
			return
		}
	}
	for _, s := range c.out {
		if s == name {
			return
		}
	}
	c.out = append(c.out, name)
}

func (c *varCollector) walk(e Expr) {
	switch e := e.(type) {
	case nil:
	case *Variable:
		c.add(e.Name)
	case *Literal, *Parameter:
	case *PropAccess:
		c.walk(e.Subject)
	case *Binary:
		c.walk(e.L)
		c.walk(e.R)
	case *Unary:
		c.walk(e.X)
	case *FuncCall:
		for _, a := range e.Args {
			c.walk(a)
		}
	case *ListLit:
		for _, el := range e.Elems {
			c.walk(el)
		}
	case *MapLit:
		for _, v := range e.Vals {
			c.walk(v)
		}
	case *IndexExpr:
		c.walk(e.Subject)
		c.walk(e.Index)
	case *SliceExpr:
		c.walk(e.Subject)
		c.walk(e.From)
		c.walk(e.To)
	case *CaseExpr:
		c.walk(e.Test)
		for i := range e.Whens {
			c.walk(e.Whens[i])
			c.walk(e.Thens[i])
		}
		c.walk(e.Else)
	case *ListComprehension:
		c.walk(e.List) // the list is evaluated outside the binding
		c.bound = append(c.bound, e.Var)
		c.walk(e.Where)
		c.walk(e.Map)
		c.bound = c.bound[:len(c.bound)-1]
	case *Quantifier:
		c.walk(e.List)
		c.bound = append(c.bound, e.Var)
		c.walk(e.Pred)
		c.bound = c.bound[:len(c.bound)-1]
	}
}

// Depth returns the maximum nesting depth of the expression tree, where a
// leaf has depth 1. It is the Table 5 "Expression" metric for one
// expression.
func Depth(e Expr) int {
	if e == nil {
		return 0
	}
	max := 0
	children := func(ds ...int) {
		for _, d := range ds {
			if d > max {
				max = d
			}
		}
	}
	switch e := e.(type) {
	case *PropAccess:
		children(Depth(e.Subject))
	case *Binary:
		children(Depth(e.L), Depth(e.R))
	case *Unary:
		children(Depth(e.X))
	case *FuncCall:
		for _, a := range e.Args {
			children(Depth(a))
		}
	case *ListLit:
		for _, el := range e.Elems {
			children(Depth(el))
		}
	case *MapLit:
		for _, v := range e.Vals {
			children(Depth(v))
		}
	case *IndexExpr:
		children(Depth(e.Subject), Depth(e.Index))
	case *SliceExpr:
		children(Depth(e.Subject), Depth(e.From), Depth(e.To))
	case *CaseExpr:
		children(Depth(e.Test), Depth(e.Else))
		for i := range e.Whens {
			children(Depth(e.Whens[i]), Depth(e.Thens[i]))
		}
	case *ListComprehension:
		children(Depth(e.List), Depth(e.Where), Depth(e.Map))
	case *Quantifier:
		children(Depth(e.List), Depth(e.Pred))
	}
	return max + 1
}

// VarsSatisfy reports whether every free variable of the expression
// satisfies pred, short-circuiting on the first that does not. It is the
// allocation-free form of "are all of Variables(e) in this scope" for
// the clause planner's conjunct scheduling, where materializing the
// variable list per conjunct per scope would dominate the compile cost.
// Variables bound by list comprehensions or quantifiers are not free
// within their scope, exactly as in Variables.
func VarsSatisfy(e Expr, pred func(string) bool) bool {
	return varsSatisfy(e, pred, nil)
}

// varsSatisfy mirrors varCollector's traversal with an early-exit
// predicate. bound is the binder stack, threaded as a parameter so the
// common binder-free walk allocates nothing.
func varsSatisfy(e Expr, pred func(string) bool, bound []string) bool {
	switch e := e.(type) {
	case nil:
	case *Variable:
		for _, b := range bound {
			if b == e.Name {
				return true // bound locally, not free: always satisfied
			}
		}
		return pred(e.Name)
	case *Literal, *Parameter:
	case *PropAccess:
		return varsSatisfy(e.Subject, pred, bound)
	case *Binary:
		return varsSatisfy(e.L, pred, bound) && varsSatisfy(e.R, pred, bound)
	case *Unary:
		return varsSatisfy(e.X, pred, bound)
	case *FuncCall:
		for _, a := range e.Args {
			if !varsSatisfy(a, pred, bound) {
				return false
			}
		}
	case *ListLit:
		for _, el := range e.Elems {
			if !varsSatisfy(el, pred, bound) {
				return false
			}
		}
	case *MapLit:
		for _, v := range e.Vals {
			if !varsSatisfy(v, pred, bound) {
				return false
			}
		}
	case *IndexExpr:
		return varsSatisfy(e.Subject, pred, bound) && varsSatisfy(e.Index, pred, bound)
	case *SliceExpr:
		return varsSatisfy(e.Subject, pred, bound) && varsSatisfy(e.From, pred, bound) && varsSatisfy(e.To, pred, bound)
	case *CaseExpr:
		if !varsSatisfy(e.Test, pred, bound) {
			return false
		}
		for i := range e.Whens {
			if !varsSatisfy(e.Whens[i], pred, bound) || !varsSatisfy(e.Thens[i], pred, bound) {
				return false
			}
		}
		return varsSatisfy(e.Else, pred, bound)
	case *ListComprehension:
		if !varsSatisfy(e.List, pred, bound) { // the list is evaluated outside the binding
			return false
		}
		inner := append(bound, e.Var)
		return varsSatisfy(e.Where, pred, inner) && varsSatisfy(e.Map, pred, inner)
	case *Quantifier:
		if !varsSatisfy(e.List, pred, bound) {
			return false
		}
		return varsSatisfy(e.Pred, pred, append(bound, e.Var))
	}
	return true
}
