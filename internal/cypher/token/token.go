// Package token defines the lexical tokens of the Cypher query language
// subset implemented by this repository (openCypher 9 data retrieval and
// update clauses).
package token

import "strings"

// Type identifies a lexical token class.
type Type int

// Token types.
const (
	Illegal Type = iota
	EOF

	Ident  // variable and function names, labels, property names
	Int    // integer literal
	Float  // float literal
	String // string literal (quotes removed, escapes resolved)

	// Punctuation and operators.
	LParen   // (
	RParen   // )
	LBracket // [
	RBracket // ]
	LBrace   // {
	RBrace   // }
	Comma    // ,
	Colon    // :
	Semi     // ;
	Dot      // .
	DotDot   // ..
	Plus     // +
	Minus    // -
	Star     // *
	Slash    // /
	Percent  // %
	Caret    // ^
	Eq       // =
	Neq      // <>
	Lt       // <
	Le       // <=
	Gt       // >
	Ge       // >=
	Pipe     // |
	Regex    // =~
	Dollar   // $

	// Keywords.
	KwMatch
	KwOptional
	KwMandatory
	KwUnwind
	KwWith
	KwReturn
	KwWhere
	KwOrder
	KwBy
	KwSkip
	KwLimit
	KwAsc
	KwAscending
	KwDesc
	KwDescending
	KwDistinct
	KwAs
	KwUnion
	KwAll
	KwCall
	KwYield
	KwCreate
	KwSet
	KwMerge
	KwDelete
	KwDetach
	KwRemove
	KwOn
	KwAnd
	KwOr
	KwXor
	KwNot
	KwIn
	KwStarts
	KwEnds
	KwContains
	KwIs
	KwNull
	KwTrue
	KwFalse
	KwCase
	KwWhen
	KwThen
	KwElse
	KwEnd
	KwExists
	KwCount
)

var names = map[Type]string{
	Illegal: "ILLEGAL", EOF: "EOF", Ident: "IDENT", Int: "INT",
	Float: "FLOAT", String: "STRING",
	LParen: "(", RParen: ")", LBracket: "[", RBracket: "]",
	LBrace: "{", RBrace: "}", Comma: ",", Colon: ":", Semi: ";",
	Dot: ".", DotDot: "..", Plus: "+", Minus: "-", Star: "*",
	Slash: "/", Percent: "%", Caret: "^", Eq: "=", Neq: "<>",
	Lt: "<", Le: "<=", Gt: ">", Ge: ">=", Pipe: "|", Regex: "=~",
	Dollar:  "$",
	KwMatch: "MATCH", KwOptional: "OPTIONAL", KwMandatory: "MANDATORY",
	KwUnwind: "UNWIND", KwWith: "WITH", KwReturn: "RETURN",
	KwWhere: "WHERE", KwOrder: "ORDER", KwBy: "BY", KwSkip: "SKIP",
	KwLimit: "LIMIT", KwAsc: "ASC", KwAscending: "ASCENDING",
	KwDesc: "DESC", KwDescending: "DESCENDING", KwDistinct: "DISTINCT",
	KwAs: "AS", KwUnion: "UNION", KwAll: "ALL", KwCall: "CALL",
	KwYield: "YIELD", KwCreate: "CREATE", KwSet: "SET", KwMerge: "MERGE",
	KwDelete: "DELETE", KwDetach: "DETACH", KwRemove: "REMOVE",
	KwOn: "ON", KwAnd: "AND", KwOr: "OR", KwXor: "XOR", KwNot: "NOT",
	KwIn: "IN", KwStarts: "STARTS", KwEnds: "ENDS",
	KwContains: "CONTAINS", KwIs: "IS", KwNull: "NULL", KwTrue: "TRUE",
	KwFalse: "FALSE", KwCase: "CASE", KwWhen: "WHEN", KwThen: "THEN",
	KwElse: "ELSE", KwEnd: "END", KwExists: "EXISTS", KwCount: "COUNT",
}

// String returns the display name of the token type.
func (t Type) String() string {
	if s, ok := names[t]; ok {
		return s
	}
	return "TOKEN(?)"
}

var (
	keywords      = map[string]Type{}
	keywordsLower = map[string]Type{}
)

func init() {
	for t := KwMatch; t <= KwCount; t++ {
		keywords[names[t]] = t
		keywordsLower[strings.ToLower(names[t])] = t
	}
}

// Lookup maps an identifier to its keyword type, or returns Ident.
// Cypher keywords are case-insensitive. The all-upper and all-lower
// spellings hit a map directly so the overwhelmingly common identifiers
// (lowercase variables and properties, uppercase keywords) never pay
// ToUpper's allocation; only mixed-case spellings normalize.
func Lookup(ident string) Type {
	if t, ok := keywords[ident]; ok {
		return t
	}
	if t, ok := keywordsLower[ident]; ok {
		return t
	}
	for i := 0; i < len(ident); i++ {
		if c := ident[i]; c >= 'A' && c <= 'Z' {
			if t, ok := keywords[strings.ToUpper(ident)]; ok {
				return t
			}
			break
		}
	}
	return Ident
}

// Token is one lexical token with its source position (byte offset).
type Token struct {
	Type Type
	Lit  string // literal text for Ident/Int/Float/String
	Pos  int
}
