// Package metrics computes the query-complexity metrics of Table 5 of
// the GQS paper from Cypher ASTs: the number of search patterns, the
// maximum expression nesting depth, the number of clauses, and the number
// of cross-clause data references. The same feature vector drives the
// trigger predicates of the injected-fault catalog.
package metrics

import (
	"hash/fnv"
	"strings"

	"gqs/internal/cypher/ast"
	"gqs/internal/cypher/parser"
	"gqs/internal/value"
)

// Features is the feature vector of one query.
type Features struct {
	// The four Table 5 metrics.
	Patterns     int // search patterns (pattern parts across MATCH/MERGE/CREATE)
	MaxExprDepth int // deepest expression nesting
	Clauses      int // clauses including subclauses usage via ClauseCounts
	CrossRefs    int // references to variables introduced in earlier clauses

	// Supporting detail.
	ClauseCounts map[string]int // per clause name, WHERE and ORDER BY included
	Functions    map[string]int // function invocation counts
	Hash         uint64         // FNV-1a of the query text (deterministic gating)

	// Special triggers observed in the paper's bugs.
	HasReplaceEmptyString bool // replace(s, '', r) — the Figure 9 Memgraph hang
	UnwindBeforeMatch     bool // UNWIND preceding a MATCH — the Figure 17 shape
	HasOrderBy            bool
	HasDistinct           bool
	HasLimit              bool
	HasUnion              bool
}

// Analyze parses and measures a query; it returns nil for unparsable text.
func Analyze(text string) *Features {
	q, err := parser.Parse(text)
	if err != nil {
		return nil
	}
	f := AnalyzeAST(q)
	h := fnv.New64a()
	h.Write([]byte(text))
	f.Hash = h.Sum64()
	return f
}

// AnalyzeAST measures a parsed query. The Hash field is left zero;
// Analyze fills it from the text.
func AnalyzeAST(q *ast.Query) *Features {
	f := &Features{
		ClauseCounts: map[string]int{},
		Functions:    map[string]int{},
	}
	introduced := map[string]int{} // variable -> clause index of introduction
	clauseIdx := 0

	noteExprs := func(e ast.Expr) {
		if e == nil {
			return
		}
		if d := ast.Depth(e); d > f.MaxExprDepth {
			f.MaxExprDepth = d
		}
		ast.WalkExprs(e, func(x ast.Expr) bool {
			switch x := x.(type) {
			case *ast.FuncCall:
				name := strings.ToLower(x.Name)
				f.Functions[name]++
				if name == "replace" && len(x.Args) == 3 {
					if lit, ok := x.Args[1].(*ast.Literal); ok && lit.Val.Kind() == value.KindString && lit.Val.AsString() == "" {
						f.HasReplaceEmptyString = true
					}
				}
			case *ast.Variable:
				if at, ok := introduced[x.Name]; ok && at < clauseIdx {
					f.CrossRefs++
				}
			}
			return true
		})
	}

	intro := func(v string) {
		if v == "" {
			return
		}
		if _, ok := introduced[v]; !ok {
			introduced[v] = clauseIdx
		}
	}

	patterns := func(ps []*ast.PatternPart) {
		f.Patterns += len(ps)
		for _, p := range ps {
			intro(p.Variable)
			for i, n := range p.Nodes {
				// A reference to a variable introduced earlier is a
				// cross-clause dependency even inside a pattern.
				if at, ok := introduced[n.Variable]; ok && at < clauseIdx {
					f.CrossRefs++
				}
				intro(n.Variable)
				if n.Props != nil {
					noteExprs(n.Props)
				}
				if i < len(p.Rels) {
					r := p.Rels[i]
					if at, ok := introduced[r.Variable]; ok && at < clauseIdx {
						f.CrossRefs++
					}
					intro(r.Variable)
					if r.Props != nil {
						noteExprs(r.Props)
					}
				}
			}
		}
	}

	projection := func(p *ast.Projection) {
		for _, it := range p.Items {
			noteExprs(it.Expr)
			if it.Alias != "" {
				intro(it.Alias)
			} else if v, ok := it.Expr.(*ast.Variable); ok {
				intro(v.Name)
			}
		}
		if p.Distinct {
			f.HasDistinct = true
			f.ClauseCounts["DISTINCT"]++
		}
		if len(p.OrderBy) > 0 {
			f.HasOrderBy = true
			f.ClauseCounts["ORDER BY"]++
			for _, s := range p.OrderBy {
				noteExprs(s.Expr)
			}
		}
		if p.Skip != nil {
			f.ClauseCounts["SKIP"]++
			noteExprs(p.Skip)
		}
		if p.Limit != nil {
			f.HasLimit = true
			f.ClauseCounts["LIMIT"]++
			noteExprs(p.Limit)
		}
	}

	if len(q.Parts) > 1 {
		f.HasUnion = true
		f.ClauseCounts["UNION"] = len(q.Parts) - 1
	}
	sawMatch := false
	for _, part := range q.Parts {
		for _, c := range part.Clauses {
			f.Clauses++
			f.ClauseCounts[ast.ClauseName(c)]++
			switch c := c.(type) {
			case *ast.MatchClause:
				if !sawMatch && f.ClauseCounts["UNWIND"] > 0 {
					f.UnwindBeforeMatch = true
				}
				sawMatch = true
				patterns(c.Patterns)
				if c.Where != nil {
					f.ClauseCounts["WHERE"]++
					noteExprs(c.Where)
				}
			case *ast.UnwindClause:
				noteExprs(c.Expr)
				intro(c.Alias)
			case *ast.WithClause:
				projection(&c.Projection)
				if c.Where != nil {
					f.ClauseCounts["WHERE"]++
					noteExprs(c.Where)
				}
			case *ast.ReturnClause:
				projection(&c.Projection)
			case *ast.CallClause:
				for _, a := range c.Args {
					noteExprs(a)
				}
				for _, y := range c.Yield {
					intro(y)
				}
			case *ast.CreateClause:
				patterns(c.Patterns)
			case *ast.MergeClause:
				patterns([]*ast.PatternPart{c.Pattern})
			case *ast.SetClause:
				for _, it := range c.Items {
					noteExprs(it.Subject)
					noteExprs(it.Value)
				}
			case *ast.DeleteClause:
				for _, e := range c.Exprs {
					noteExprs(e)
				}
			case *ast.RemoveClause:
				for _, it := range c.Items {
					noteExprs(it.Subject)
				}
			}
			clauseIdx++
		}
	}
	return f
}

// CoarseSeed derives a stable value from the coarse feature vector
// (patterns, depth, clauses, cross-references). Unlike Hash it survives
// semantics-preserving rewrites of the query text, which makes it the
// right key for modelling root-cause-determined behaviour.
func (f *Features) CoarseSeed() uint64 {
	var h uint64 = 1469598103934665603
	mix := func(x int) {
		h = (h ^ uint64(x)) * 1099511628211
	}
	mix(f.Patterns)
	mix(f.MaxExprDepth)
	mix(f.Clauses)
	mix(f.CrossRefs)
	return h
}

// Aggregate sums feature vectors and reports the Table 5 row: averages of
// patterns, expression depth, clauses, and dependencies.
type Aggregate struct {
	N                                      int
	Patterns, Depth, Clauses, Dependencies float64
}

// Add accumulates one query's features.
func (a *Aggregate) Add(f *Features) {
	if f == nil {
		return
	}
	a.N++
	a.Patterns += float64(f.Patterns)
	a.Depth += float64(f.MaxExprDepth)
	a.Clauses += float64(f.Clauses)
	a.Dependencies += float64(f.CrossRefs)
}

// Averages returns the four Table 5 columns.
func (a *Aggregate) Averages() (patterns, depth, clauses, deps float64) {
	if a.N == 0 {
		return 0, 0, 0, 0
	}
	n := float64(a.N)
	return a.Patterns / n, a.Depth / n, a.Clauses / n, a.Dependencies / n
}
