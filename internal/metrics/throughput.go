package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Meter is a goroutine-safe throughput meter for parallel campaigns: the
// worker pool's shards bump its atomic counters and anyone (a progress
// printer, the final summary) can take a consistent-enough Snapshot at
// any time without stopping the pool.
type Meter struct {
	start       time.Time
	iterations  atomic.Int64
	queries     atomic.Int64
	bugs        atomic.Int64
	checkpoints atomic.Int64
}

// NewMeter starts a meter; rates are measured from this instant.
func NewMeter() *Meter { return &Meter{start: time.Now()} }

// AddIterations records completed workflow iterations.
func (m *Meter) AddIterations(n int) { m.iterations.Add(int64(n)) }

// AddQuery records one executed test case.
func (m *Meter) AddQuery() { m.queries.Add(1) }

// AddBug records one distinct-bug detection.
func (m *Meter) AddBug() { m.bugs.Add(1) }

// AddCheckpoints records checkpoint snapshots flushed to the journal
// during the campaign.
func (m *Meter) AddCheckpoints(n int) { m.checkpoints.Add(int64(n)) }

// Throughput is a point-in-time reading of a Meter.
type Throughput struct {
	Iterations  int64
	Queries     int64
	Bugs        int64
	Checkpoints int64
	Elapsed     time.Duration
}

// Snapshot reads the counters.
func (m *Meter) Snapshot() Throughput {
	return Throughput{
		Iterations:  m.iterations.Load(),
		Queries:     m.queries.Load(),
		Bugs:        m.bugs.Load(),
		Checkpoints: m.checkpoints.Load(),
		Elapsed:     time.Since(m.start),
	}
}

// IterationsPerSec is the wall-clock iteration rate.
func (t Throughput) IterationsPerSec() float64 { return rate(t.Iterations, t.Elapsed) }

// QueriesPerSec is the wall-clock query rate.
func (t Throughput) QueriesPerSec() float64 { return rate(t.Queries, t.Elapsed) }

func rate(n int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// String renders the throughput summary line campaigns print. The
// checkpoint count appears only on durable campaigns, keeping the
// plain-campaign line unchanged.
func (t Throughput) String() string {
	s := fmt.Sprintf("%.1f iterations/s, %.1f queries/s (%d iterations, %d queries, %d bugs in %.1fs)",
		t.IterationsPerSec(), t.QueriesPerSec(), t.Iterations, t.Queries, t.Bugs, t.Elapsed.Seconds())
	if t.Checkpoints > 0 {
		s += fmt.Sprintf(" [%d checkpoints]", t.Checkpoints)
	}
	return s
}

// LatencySummary summarizes per-shard bug latencies (time from shard
// start to each distinct detection): min, mean, and max.
func LatencySummary(ds []time.Duration) (min, mean, max time.Duration) {
	if len(ds) == 0 {
		return 0, 0, 0
	}
	min, max = ds[0], ds[0]
	var sum time.Duration
	for _, d := range ds {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
		sum += d
	}
	return min, sum / time.Duration(len(ds)), max
}
