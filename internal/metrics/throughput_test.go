package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMeterCountsConcurrently(t *testing.T) {
	m := NewMeter()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.AddQuery()
			}
			m.AddIterations(2)
			m.AddBug()
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.Queries != 800 || s.Iterations != 16 || s.Bugs != 8 {
		t.Fatalf("snapshot = %+v, want 800 queries, 16 iterations, 8 bugs", s)
	}
	if s.Elapsed <= 0 {
		t.Fatal("elapsed must be positive")
	}
}

func TestThroughputRates(t *testing.T) {
	tp := Throughput{Iterations: 10, Queries: 50, Elapsed: 2 * time.Second}
	if got := tp.IterationsPerSec(); got != 5 {
		t.Errorf("IterationsPerSec = %v, want 5", got)
	}
	if got := tp.QueriesPerSec(); got != 25 {
		t.Errorf("QueriesPerSec = %v, want 25", got)
	}
	zero := Throughput{}
	if zero.IterationsPerSec() != 0 || zero.QueriesPerSec() != 0 {
		t.Error("zero elapsed must not divide by zero")
	}
	if !strings.Contains(tp.String(), "iterations/s") {
		t.Errorf("String() = %q missing rate", tp.String())
	}
}

func TestLatencySummary(t *testing.T) {
	lo, mean, hi := LatencySummary([]time.Duration{3 * time.Second, time.Second, 2 * time.Second})
	if lo != time.Second || hi != 3*time.Second || mean != 2*time.Second {
		t.Fatalf("summary = %v/%v/%v", lo, mean, hi)
	}
	if lo, mean, hi = LatencySummary(nil); lo != 0 || mean != 0 || hi != 0 {
		t.Fatal("empty summary must be zero")
	}
}
