package metrics

import "testing"

func TestAnalyzeFigure1(t *testing.T) {
	// The Figure 1 FalkorDB bug query.
	q := `MATCH (n2)<-[r1]->(n0), (n3)-[r2]->(n4)-[r3]->(n5) WHERE r1.id=13
	 UNWIND [n5.k2 <> r3.id, false] as a1
	 WITH DISTINCT n2, r3, n3, n4, n5, endNode(r1) as a2, n0
	 MATCH (n2)<-[r4:T10]->(n0), (n3)-[r5]->(n4)-[r6]->(n5)
	 WHERE (((r6.k85)+(n2.k11)) ENDS WITH 'q11cZH6h') AND
	   ((n2.k9) = -1982025281) AND (n5.k2<=-881779936)
	 RETURN n2.id as a3, r6.id as a4`
	f := Analyze(q)
	if f == nil {
		t.Fatal("Figure 1 query must parse")
	}
	if f.Patterns != 4 {
		t.Errorf("patterns = %d, want 4", f.Patterns)
	}
	if f.Clauses != 5 {
		t.Errorf("clauses = %d, want 5 (MATCH, UNWIND, WITH, MATCH, RETURN)", f.Clauses)
	}
	if f.ClauseCounts["MATCH"] != 2 || f.ClauseCounts["UNWIND"] != 1 || f.ClauseCounts["WHERE"] != 2 {
		t.Errorf("clause counts: %v", f.ClauseCounts)
	}
	if !f.HasDistinct {
		t.Error("DISTINCT not detected")
	}
	if f.Functions["endnode"] != 1 {
		t.Errorf("functions: %v", f.Functions)
	}
	// n5 is referenced in four different clauses (§1); plenty of
	// cross-clause references must be counted.
	if f.CrossRefs < 8 {
		t.Errorf("cross refs = %d, expected many", f.CrossRefs)
	}
	if f.MaxExprDepth < 3 {
		t.Errorf("depth = %d", f.MaxExprDepth)
	}
	if f.Hash == 0 {
		t.Error("hash must be set")
	}
}

func TestAnalyzeSpecialShapes(t *testing.T) {
	f := Analyze(`WITH replace('ts15G', '', 'U11sWFvRw') AS a0 RETURN a0`)
	if !f.HasReplaceEmptyString {
		t.Error("Figure 9 replace-empty shape not detected")
	}
	f = Analyze(`UNWIND [1,2,3] AS a0 MATCH (n) RETURN a0`)
	if !f.UnwindBeforeMatch {
		t.Error("Figure 17 UNWIND-before-MATCH shape not detected")
	}
	f = Analyze(`MATCH (n) UNWIND [1] AS a0 RETURN a0`)
	if f.UnwindBeforeMatch {
		t.Error("UNWIND after MATCH must not count")
	}
	f = Analyze(`MATCH (n) RETURN n.id ORDER BY n.id LIMIT 2 UNION MATCH (n) RETURN n.id`)
	if !f.HasOrderBy || !f.HasLimit || !f.HasUnion {
		t.Errorf("modifier flags wrong: %+v", f)
	}
}

func TestAnalyzeCrossRefs(t *testing.T) {
	// x introduced in clause 0, referenced twice in clause 1 and once in
	// clause 2.
	f := Analyze(`MATCH (x) MATCH (y) WHERE y.id = x.id AND x.k0 = 1 RETURN x.k1`)
	if f.CrossRefs != 3 {
		t.Errorf("cross refs = %d, want 3", f.CrossRefs)
	}
	// Same-clause references do not count.
	f = Analyze(`MATCH (x) WHERE x.id = 1 RETURN 1`)
	if f.CrossRefs != 0 {
		t.Errorf("same-clause refs counted: %d", f.CrossRefs)
	}
	// Pattern reuse of an earlier variable counts, as does the RETURN
	// of a variable introduced by an earlier clause.
	f = Analyze(`MATCH (x) MATCH (x)-[r]->(y) RETURN y`)
	if f.CrossRefs != 2 {
		t.Errorf("pattern cross refs = %d, want 2 (x in pattern, y in RETURN)", f.CrossRefs)
	}
}

func TestAnalyzeUnparsable(t *testing.T) {
	if Analyze(`NOT CYPHER AT ALL (`) != nil {
		t.Error("unparsable query must yield nil")
	}
}

func TestAggregate(t *testing.T) {
	var a Aggregate
	a.Add(Analyze(`MATCH (x), (y) RETURN x`))
	a.Add(Analyze(`MATCH (x) RETURN x`))
	a.Add(nil) // ignored
	p, _, c, _ := a.Averages()
	if a.N != 2 || p != 1.5 || c != 2 {
		t.Errorf("aggregate: n=%d patterns=%v clauses=%v", a.N, p, c)
	}
	var empty Aggregate
	if p, d, c, deps := empty.Averages(); p != 0 || d != 0 || c != 0 || deps != 0 {
		t.Error("empty aggregate must be zero")
	}
}

func TestDepthMetric(t *testing.T) {
	shallow := Analyze(`MATCH (n) WHERE n.id = 1 RETURN n.k0`)
	deep := Analyze(`MATCH (n) WHERE toString(abs((n.id + 1) * 2)) = '4' RETURN n.k0`)
	if deep.MaxExprDepth <= shallow.MaxExprDepth {
		t.Errorf("deep %d vs shallow %d", deep.MaxExprDepth, shallow.MaxExprDepth)
	}
}
