package value

import (
	"math"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindBool: "BOOLEAN", KindInt: "INTEGER",
		KindFloat: "FLOAT", KindString: "STRING", KindList: "LIST",
		KindMap: "MAP", KindNode: "NODE", KindRel: "RELATIONSHIP",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Error("Null must be null")
	}
	if v := Bool(true); v.Kind() != KindBool || !v.AsBool() {
		t.Error("Bool(true) broken")
	}
	if v := Int(42); v.Kind() != KindInt || v.AsInt() != 42 {
		t.Error("Int(42) broken")
	}
	if v := Float(1.5); v.Kind() != KindFloat || v.AsFloat() != 1.5 {
		t.Error("Float(1.5) broken")
	}
	if v := Int(3); v.AsFloat() != 3.0 {
		t.Error("Int AsFloat conversion broken")
	}
	if v := Str("x"); v.Kind() != KindString || v.AsString() != "x" {
		t.Error("Str broken")
	}
	if v := List(Int(1), Int(2)); v.Kind() != KindList || len(v.AsList()) != 2 {
		t.Error("List broken")
	}
	if v := Map(map[string]Value{"a": Int(1)}); v.Kind() != KindMap || len(v.AsMap()) != 1 {
		t.Error("Map broken")
	}
	if v := Node(7); v.Kind() != KindNode || v.EntityID() != 7 || !v.IsEntity() {
		t.Error("Node broken")
	}
	if v := Rel(9); v.Kind() != KindRel || v.EntityID() != 9 || !v.IsEntity() {
		t.Error("Rel broken")
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value must be null")
	}
}

func TestTriLogicTables(t *testing.T) {
	T, F, U := TriTrue, TriFalse, TriUnknown
	and := [][3]Tri{
		{T, T, T}, {T, F, F}, {T, U, U},
		{F, T, F}, {F, F, F}, {F, U, F},
		{U, T, U}, {U, F, F}, {U, U, U},
	}
	for _, c := range and {
		if got := c[0].And(c[1]); got != c[2] {
			t.Errorf("%v AND %v = %v, want %v", c[0], c[1], got, c[2])
		}
	}
	or := [][3]Tri{
		{T, T, T}, {T, F, T}, {T, U, T},
		{F, T, T}, {F, F, F}, {F, U, U},
		{U, T, T}, {U, F, U}, {U, U, U},
	}
	for _, c := range or {
		if got := c[0].Or(c[1]); got != c[2] {
			t.Errorf("%v OR %v = %v, want %v", c[0], c[1], got, c[2])
		}
	}
	xor := [][3]Tri{
		{T, T, F}, {T, F, T}, {T, U, U},
		{F, F, F}, {F, U, U}, {U, U, U},
	}
	for _, c := range xor {
		if got := c[0].Xor(c[1]); got != c[2] {
			t.Errorf("%v XOR %v = %v, want %v", c[0], c[1], got, c[2])
		}
	}
	if T.Not() != F || F.Not() != T || U.Not() != U {
		t.Error("NOT table broken")
	}
}

func TestTruth(t *testing.T) {
	if tr, ok := True.Truth(); !ok || tr != TriTrue {
		t.Error("True.Truth broken")
	}
	if tr, ok := Null.Truth(); !ok || tr != TriUnknown {
		t.Error("Null.Truth broken")
	}
	if _, ok := Int(1).Truth(); ok {
		t.Error("Int truthiness must be a type error")
	}
}

func TestAdd(t *testing.T) {
	cases := []struct {
		a, b, want Value
	}{
		{Int(2), Int(3), Int(5)},
		{Int(2), Float(0.5), Float(2.5)},
		{Float(1.5), Float(1.5), Float(3)},
		{Str("a"), Str("b"), Str("ab")},
		{Str("a"), Int(1), Str("a1")},
		{Int(1), Str("a"), Str("1a")},
		{Str("v"), Float(1.5), Str("v1.5")},
		{List(Int(1)), List(Int(2)), List(Int(1), Int(2))},
		{List(Int(1)), Int(2), List(Int(1), Int(2))},
		{Int(0), List(Int(2)), List(Int(0), Int(2))},
		{Null, Int(1), Null},
		{Int(1), Null, Null},
	}
	for _, c := range cases {
		got, err := Add(c.a, c.b)
		if err != nil {
			t.Errorf("Add(%v,%v) error: %v", c.a, c.b, err)
			continue
		}
		if !Equivalent(got, c.want) {
			t.Errorf("Add(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if _, err := Add(Bool(true), Int(1)); err == nil {
		t.Error("Add(bool,int) must be a type error")
	}
}

func TestArithmetic(t *testing.T) {
	if v, _ := Sub(Int(5), Int(3)); v.AsInt() != 2 {
		t.Error("Sub int broken")
	}
	if v, _ := Mul(Int(4), Float(0.5)); v.AsFloat() != 2 {
		t.Error("Mul mixed broken")
	}
	if v, _ := Div(Int(7), Int(2)); v.AsInt() != 3 {
		t.Error("integer Div must truncate")
	}
	if _, err := Div(Int(1), Int(0)); err != ErrDivisionByZero {
		t.Error("int div by zero must error")
	}
	if v, _ := Div(Float(1), Float(0)); !math.IsInf(v.AsFloat(), 1) {
		t.Error("float div by zero must be +Inf")
	}
	if v, _ := Mod(Int(7), Int(3)); v.AsInt() != 1 {
		t.Error("Mod broken")
	}
	if v, _ := Pow(Int(2), Int(10)); v.Kind() != KindFloat || v.AsFloat() != 1024 {
		t.Error("Pow must yield float")
	}
	if v, _ := Neg(Int(3)); v.AsInt() != -3 {
		t.Error("Neg broken")
	}
	if v, _ := Neg(Null); !v.IsNull() {
		t.Error("Neg(null) must be null")
	}
	if v, _ := Sub(Null, Int(1)); !v.IsNull() {
		t.Error("Sub null propagation broken")
	}
}

func TestIndexAndSlice(t *testing.T) {
	l := List(Int(10), Int(20), Int(30))
	if v, _ := Index(l, Int(1)); v.AsInt() != 20 {
		t.Error("Index broken")
	}
	if v, _ := Index(l, Int(-1)); v.AsInt() != 30 {
		t.Error("negative Index broken")
	}
	if v, _ := Index(l, Int(9)); !v.IsNull() {
		t.Error("out of range Index must be null")
	}
	m := Map(map[string]Value{"k": Str("v")})
	if v, _ := Index(m, Str("k")); v.AsString() != "v" {
		t.Error("map Index broken")
	}
	if v, _ := Index(m, Str("zz")); !v.IsNull() {
		t.Error("missing map key must be null")
	}
	if v, _ := Slice(l, Int(1), Int(3)); len(v.AsList()) != 2 || v.AsList()[0].AsInt() != 20 {
		t.Error("Slice broken")
	}
	if v, _ := Slice(l, Null, Int(-1)); len(v.AsList()) != 2 {
		t.Error("open/negative Slice broken")
	}
	if v, _ := Slice(l, Int(2), Int(1)); len(v.AsList()) != 0 {
		t.Error("inverted Slice must be empty")
	}
	if v, _ := Index(Null, Int(0)); !v.IsNull() {
		t.Error("Index on null must be null")
	}
}

func TestStringPredicates(t *testing.T) {
	if StartsWith(Str("abcdef"), Str("abc")) != TriTrue {
		t.Error("StartsWith broken")
	}
	if EndsWith(Str("abcdef"), Str("def")) != TriTrue {
		t.Error("EndsWith broken")
	}
	if Contains(Str("abcdef"), Str("cde")) != TriTrue {
		t.Error("Contains broken")
	}
	if Contains(Str("abc"), Str("zz")) != TriFalse {
		t.Error("Contains negative broken")
	}
	if StartsWith(Null, Str("a")) != TriUnknown {
		t.Error("null StartsWith must be unknown")
	}
	if StartsWith(Int(1), Str("a")) != TriUnknown {
		t.Error("non-string StartsWith must be unknown")
	}
	if Contains(Str("abc"), Str("")) != TriTrue {
		t.Error("empty substring is contained")
	}
}

func TestIn(t *testing.T) {
	l := List(Int(1), Int(2), Int(3))
	if In(Int(2), l) != TriTrue {
		t.Error("In broken")
	}
	if In(Int(9), l) != TriFalse {
		t.Error("In negative broken")
	}
	if In(Null, l) != TriUnknown {
		t.Error("null IN non-empty must be unknown")
	}
	if In(Null, List()) != TriFalse {
		t.Error("null IN empty list must be false")
	}
	if In(Int(1), List(Null, Int(1))) != TriTrue {
		t.Error("match beats unknown")
	}
	if In(Int(9), List(Null, Int(1))) != TriUnknown {
		t.Error("unknown element poisons miss")
	}
	if In(Int(1), Null) != TriUnknown {
		t.Error("IN null must be unknown")
	}
}

func TestEqual(t *testing.T) {
	if Equal(Int(1), Float(1)) != TriTrue {
		t.Error("1 = 1.0 must be true")
	}
	if Equal(Int(1), Str("1")) != TriFalse {
		t.Error("1 = '1' must be false")
	}
	if Equal(Null, Null) != TriUnknown {
		t.Error("null = null must be unknown")
	}
	if Equal(List(Int(1), Null), List(Int(1), Int(2))) != TriUnknown {
		t.Error("list with null element must compare unknown")
	}
	if Equal(List(Int(1), Null), List(Int(2), Int(2))) != TriFalse {
		t.Error("definite mismatch dominates unknown")
	}
	if Equal(Node(3), Node(3)) != TriTrue || Equal(Node(3), Node(4)) != TriFalse {
		t.Error("node identity equality broken")
	}
	if Equal(Node(3), Rel(3)) != TriFalse {
		t.Error("node vs rel must be false")
	}
	m1 := Map(map[string]Value{"a": Int(1)})
	m2 := Map(map[string]Value{"a": Int(1)})
	m3 := Map(map[string]Value{"a": Int(2)})
	if Equal(m1, m2) != TriTrue || Equal(m1, m3) != TriFalse {
		t.Error("map equality broken")
	}
	if Equal(Float(math.NaN()), Float(math.NaN())) != TriFalse {
		t.Error("NaN = NaN must be false")
	}
	if NotEqual(Int(1), Int(2)) != TriTrue {
		t.Error("NotEqual broken")
	}
}

func TestCompare(t *testing.T) {
	if Less(Int(1), Int(2)) != TriTrue {
		t.Error("1 < 2 broken")
	}
	if Less(Str("a"), Str("b")) != TriTrue {
		t.Error("string compare broken")
	}
	if Less(Int(1), Str("a")) != TriUnknown {
		t.Error("cross-type compare must be unknown")
	}
	if Less(Null, Int(1)) != TriUnknown {
		t.Error("null compare must be unknown")
	}
	if LessEq(Int(2), Int(2)) != TriTrue || Greater(Int(3), Int(2)) != TriTrue || GreaterEq(Int(2), Int(3)) != TriFalse {
		t.Error("comparison operators broken")
	}
	if Less(Float(math.NaN()), Float(1)) != TriUnknown {
		t.Error("NaN compare must be unknown")
	}
	if Less(Bool(false), Bool(true)) != TriTrue {
		t.Error("bool compare broken")
	}
	if Less(List(Int(1)), List(Int(1), Int(2))) != TriTrue {
		t.Error("list prefix compare broken")
	}
}

func TestEquivalent(t *testing.T) {
	if !Equivalent(Null, Null) {
		t.Error("null ≡ null")
	}
	if !Equivalent(Float(math.NaN()), Float(math.NaN())) {
		t.Error("NaN ≡ NaN")
	}
	if !Equivalent(Int(1), Float(1)) {
		t.Error("1 ≡ 1.0")
	}
	if Equivalent(Int(1), Str("1")) {
		t.Error("1 !≡ '1'")
	}
	if !Equivalent(List(Null), List(Null)) {
		t.Error("[null] ≡ [null]")
	}
	big := int64(1) << 55
	if Equivalent(Int(big+1), Float(float64(big))) {
		t.Error("inexact large float must not be equivalent to nearby int")
	}
}

func TestOrderCompareTotalOrder(t *testing.T) {
	// null sorts last; numbers sort before strings? No: rank order is
	// map < node < rel < list < string < bool < number < null.
	seq := []Value{
		Map(map[string]Value{}), Node(1), Rel(1), List(), Str("a"),
		Bool(false), Int(0), Null,
	}
	for i := 0; i < len(seq)-1; i++ {
		if OrderCompare(seq[i], seq[i+1]) >= 0 {
			t.Errorf("rank order broken at %v vs %v", seq[i], seq[i+1])
		}
	}
	if OrderCompare(Float(math.NaN()), Float(math.Inf(1))) <= 0 {
		t.Error("NaN must sort after +Inf")
	}
	if OrderCompare(Int(1), Int(2)) >= 0 {
		t.Error("int order broken")
	}
	if OrderCompare(Null, Null) != 0 {
		t.Error("null ties with null")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "null"},
		{Bool(true), "true"},
		{Int(-3), "-3"},
		{Float(2.5), "2.5"},
		{Float(3), "3.0"},
		{Str("a'b"), `'a\'b'`},
		{List(Int(1), Str("x")), "[1, 'x']"},
		{Map(map[string]Value{"b": Int(2), "a": Int(1)}), "{a: 1, b: 2}"},
		{Node(5), "(#5)"},
		{Rel(6), "[#6]"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
}

func TestKeyMatchesEquivalence(t *testing.T) {
	vals := []Value{
		Null, Bool(true), Bool(false), Int(1), Int(2), Float(1), Float(1.5),
		Float(math.NaN()), Str("1"), Str(""), List(), List(Int(1)),
		List(Null), Map(map[string]Value{}), Map(map[string]Value{"a": Int(1)}),
		Node(1), Rel(1), Node(2), Int(1 << 55), Float(float64(int64(1) << 55)),
	}
	for _, a := range vals {
		for _, b := range vals {
			eq := Equivalent(a, b)
			keq := a.Key() == b.Key()
			if eq != keq {
				t.Errorf("Key/Equivalent mismatch: %v vs %v (equiv=%v, keyEq=%v)", a, b, eq, keq)
			}
		}
	}
}
