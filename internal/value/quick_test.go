package value

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomValue produces an arbitrary Cypher value of bounded depth for
// property-based tests.
func randomValue(r *rand.Rand, depth int) Value {
	max := 9
	if depth <= 0 {
		max = 6 // leaves only
	}
	switch r.Intn(max) {
	case 0:
		return Null
	case 1:
		return Bool(r.Intn(2) == 0)
	case 2:
		return Int(int64(r.Intn(21) - 10))
	case 3:
		return Float(float64(r.Intn(21)-10) / 2)
	case 4:
		return Str(string(rune('a' + r.Intn(4))))
	case 5:
		if r.Intn(2) == 0 {
			return Node(int64(r.Intn(5)))
		}
		return Rel(int64(r.Intn(5)))
	case 6:
		n := r.Intn(3)
		vs := make([]Value, n)
		for i := range vs {
			vs[i] = randomValue(r, depth-1)
		}
		return ListOf(vs)
	case 7:
		n := r.Intn(3)
		m := make(map[string]Value, n)
		for i := 0; i < n; i++ {
			m[string(rune('a'+i))] = randomValue(r, depth-1)
		}
		return Map(m)
	default:
		return Int(int64(r.Intn(5)))
	}
}

func qc(t *testing.T, f func(a, b Value) bool) {
	t.Helper()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := randomValue(r, 3), randomValue(r, 3)
		if !f(a, b) {
			t.Fatalf("property violated for a=%v b=%v", a, b)
		}
	}
}

func TestQuickEqualSymmetric(t *testing.T) {
	qc(t, func(a, b Value) bool { return Equal(a, b) == Equal(b, a) })
}

func TestQuickEquivalentSymmetricReflexive(t *testing.T) {
	qc(t, func(a, b Value) bool {
		return Equivalent(a, a) && Equivalent(b, b) && Equivalent(a, b) == Equivalent(b, a)
	})
}

func TestQuickKeyConsistentWithEquivalence(t *testing.T) {
	qc(t, func(a, b Value) bool {
		return Equivalent(a, b) == (a.Key() == b.Key())
	})
}

func TestQuickOrderCompareAntisymmetric(t *testing.T) {
	qc(t, func(a, b Value) bool { return OrderCompare(a, b) == -OrderCompare(b, a) })
}

func TestQuickOrderCompareTransitive(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a, b, c := randomValue(r, 2), randomValue(r, 2), randomValue(r, 2)
		// Sort the triple by OrderCompare and verify consistency.
		if OrderCompare(a, b) <= 0 && OrderCompare(b, c) <= 0 && OrderCompare(a, c) > 0 {
			t.Fatalf("transitivity violated: %v %v %v", a, b, c)
		}
	}
}

func TestQuickCompareAgreesWithEqual(t *testing.T) {
	qc(t, func(a, b Value) bool {
		c, ok := Compare(a, b)
		if ok != TriTrue || c != 0 {
			return true
		}
		// Comparable and equal under ordering implies = is true,
		// except NaN corner cases which Compare already reports unknown.
		return Equal(a, b) == TriTrue
	})
}

func TestQuickAddIntCommutes(t *testing.T) {
	f := func(x, y int32) bool {
		a, err1 := Add(Int(int64(x)), Int(int64(y)))
		b, err2 := Add(Int(int64(y)), Int(int64(x)))
		return err1 == nil && err2 == nil && Equivalent(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickInMembership(t *testing.T) {
	f := func(xs []int16, x int16) bool {
		vs := make([]Value, len(xs))
		found := false
		for i, e := range xs {
			vs[i] = Int(int64(e))
			if e == x {
				found = true
			}
		}
		return In(Int(int64(x)), ListOf(vs)) == TriOf(found)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSliceWithinBounds(t *testing.T) {
	f := func(xs []int8, lo, hi int8) bool {
		vs := make([]Value, len(xs))
		for i, e := range xs {
			vs[i] = Int(int64(e))
		}
		out, err := Slice(ListOf(vs), Int(int64(lo)), Int(int64(hi)))
		if err != nil {
			return false
		}
		return len(out.AsList()) <= len(vs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
