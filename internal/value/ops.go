package value

import (
	"fmt"
	"math"
)

// TypeError is returned when an operator is applied to operands of
// incompatible types, mirroring the runtime type errors Cypher raises.
type TypeError struct {
	Op    string
	Left  Kind
	Right Kind
}

func (e *TypeError) Error() string {
	return fmt.Sprintf("type error: cannot apply %s to %s and %s", e.Op, e.Left, e.Right)
}

func typeErr(op string, a, b Value) error {
	return &TypeError{Op: op, Left: a.kind, Right: b.kind}
}

// Add implements the Cypher + operator: numeric addition, string
// concatenation (a string operand stringifies the other operand, matching
// Neo4j), and list concatenation (a list operand absorbs the other side).
func Add(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	switch {
	case a.kind == KindList && b.kind == KindList:
		out := make([]Value, 0, len(a.list)+len(b.list))
		out = append(out, a.list...)
		out = append(out, b.list...)
		return ListOf(out), nil
	case a.kind == KindList:
		out := make([]Value, 0, len(a.list)+1)
		out = append(out, a.list...)
		return ListOf(append(out, b)), nil
	case b.kind == KindList:
		out := make([]Value, 0, len(b.list)+1)
		out = append(out, a)
		return ListOf(append(out, b.list...)), nil
	case a.kind == KindString && b.kind == KindString:
		return Str(a.s + b.s), nil
	case a.kind == KindString && (b.IsNumber() || b.kind == KindBool):
		return Str(a.s + plainString(b)), nil
	case b.kind == KindString && (a.IsNumber() || a.kind == KindBool):
		return Str(plainString(a) + b.s), nil
	case a.kind == KindInt && b.kind == KindInt:
		return Int(a.i + b.i), nil
	case a.IsNumber() && b.IsNumber():
		return Float(a.AsFloat() + b.AsFloat()), nil
	}
	return Null, typeErr("+", a, b)
}

// plainString renders a value without string quoting, for concatenation.
func plainString(v Value) string {
	if v.kind == KindString {
		return v.s
	}
	return v.String()
}

// Sub implements the Cypher - operator.
func Sub(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	switch {
	case a.kind == KindInt && b.kind == KindInt:
		return Int(a.i - b.i), nil
	case a.IsNumber() && b.IsNumber():
		return Float(a.AsFloat() - b.AsFloat()), nil
	}
	return Null, typeErr("-", a, b)
}

// Mul implements the Cypher * operator.
func Mul(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	switch {
	case a.kind == KindInt && b.kind == KindInt:
		return Int(a.i * b.i), nil
	case a.IsNumber() && b.IsNumber():
		return Float(a.AsFloat() * b.AsFloat()), nil
	}
	return Null, typeErr("*", a, b)
}

// ErrDivisionByZero is returned for integer division or modulo by zero.
var ErrDivisionByZero = fmt.Errorf("division by zero")

// Div implements the Cypher / operator. Integer division truncates;
// integer division by zero is an error while float division by zero
// follows IEEE-754.
func Div(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	switch {
	case a.kind == KindInt && b.kind == KindInt:
		if b.i == 0 {
			return Null, ErrDivisionByZero
		}
		return Int(a.i / b.i), nil
	case a.IsNumber() && b.IsNumber():
		return Float(a.AsFloat() / b.AsFloat()), nil
	}
	return Null, typeErr("/", a, b)
}

// Mod implements the Cypher % operator.
func Mod(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	switch {
	case a.kind == KindInt && b.kind == KindInt:
		if b.i == 0 {
			return Null, ErrDivisionByZero
		}
		return Int(a.i % b.i), nil
	case a.IsNumber() && b.IsNumber():
		return Float(math.Mod(a.AsFloat(), b.AsFloat())), nil
	}
	return Null, typeErr("%", a, b)
}

// Pow implements the Cypher ^ operator. The result is always a float,
// matching openCypher.
func Pow(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if a.IsNumber() && b.IsNumber() {
		return Float(math.Pow(a.AsFloat(), b.AsFloat())), nil
	}
	return Null, typeErr("^", a, b)
}

// Neg implements unary minus.
func Neg(a Value) (Value, error) {
	switch a.kind {
	case KindNull:
		return Null, nil
	case KindInt:
		return Int(-a.i), nil
	case KindFloat:
		return Float(-a.f), nil
	}
	return Null, typeErr("-", a, a)
}

// Index implements list and map subscripting: list[int] (negative indexes
// count from the end, out-of-range yields null) and map[string].
func Index(c, idx Value) (Value, error) {
	if c.IsNull() || idx.IsNull() {
		return Null, nil
	}
	switch c.kind {
	case KindList:
		if idx.kind != KindInt {
			return Null, typeErr("[]", c, idx)
		}
		i := idx.i
		n := int64(len(c.list))
		if i < 0 {
			i += n
		}
		if i < 0 || i >= n {
			return Null, nil
		}
		return c.list[i], nil
	case KindMap:
		if idx.kind != KindString {
			return Null, typeErr("[]", c, idx)
		}
		if v, ok := c.m[idx.s]; ok {
			return v, nil
		}
		return Null, nil
	}
	return Null, typeErr("[]", c, idx)
}

// Slice implements list slicing list[from..to]. Either bound may be null
// (Value with KindNull) meaning "open". Bounds are clamped; negative bounds
// count from the end.
func Slice(c, from, to Value) (Value, error) {
	if c.IsNull() {
		return Null, nil
	}
	if c.kind != KindList {
		return Null, typeErr("[..]", c, from)
	}
	n := int64(len(c.list))
	lo, hi := int64(0), n
	if !from.IsNull() {
		if from.kind != KindInt {
			return Null, typeErr("[..]", c, from)
		}
		lo = from.i
		if lo < 0 {
			lo += n
		}
	}
	if !to.IsNull() {
		if to.kind != KindInt {
			return Null, typeErr("[..]", c, to)
		}
		hi = to.i
		if hi < 0 {
			hi += n
		}
	}
	lo = clamp(lo, 0, n)
	hi = clamp(hi, 0, n)
	if lo >= hi {
		return List(), nil
	}
	return ListOf(c.list[lo:hi]), nil
}

func clamp(x, lo, hi int64) int64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// StartsWith implements the STARTS WITH operator.
func StartsWith(a, b Value) Tri { return stringPredicate(a, b, hasPrefix) }

// EndsWith implements the ENDS WITH operator.
func EndsWith(a, b Value) Tri { return stringPredicate(a, b, hasSuffix) }

// Contains implements the CONTAINS operator.
func Contains(a, b Value) Tri { return stringPredicate(a, b, containsSub) }

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }
func hasSuffix(s, p string) bool { return len(s) >= len(p) && s[len(s)-len(p):] == p }
func containsSub(s, p string) bool {
	for i := 0; i+len(p) <= len(s); i++ {
		if s[i:i+len(p)] == p {
			return true
		}
	}
	return false
}

// stringPredicate applies a string predicate with Cypher null semantics:
// null operands yield unknown, non-string operands yield unknown (Neo4j
// returns null when an operand of STARTS WITH is not a string).
func stringPredicate(a, b Value, f func(s, sub string) bool) Tri {
	if a.IsNull() || b.IsNull() || a.kind != KindString || b.kind != KindString {
		return TriUnknown
	}
	return TriOf(f(a.s, b.s))
}

// In implements the IN operator with its subtle null semantics: if any
// element compares unknown and no element compares true, the result is
// unknown; a null needle against a non-empty list is unknown, against an
// empty list is false.
func In(needle, haystack Value) Tri {
	if haystack.IsNull() {
		return TriUnknown
	}
	if haystack.kind != KindList {
		return TriUnknown
	}
	sawUnknown := false
	for _, e := range haystack.list {
		switch Equal(needle, e) {
		case TriTrue:
			return TriTrue
		case TriUnknown:
			sawUnknown = true
		}
	}
	if sawUnknown {
		return TriUnknown
	}
	return TriFalse
}
