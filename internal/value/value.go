// Package value implements the Cypher value model: the dynamically typed
// values that flow through query evaluation, together with Cypher's
// three-valued logic, its comparability rules (used by predicates), its
// equivalence rules (used by DISTINCT and grouping), and its orderability
// rules (used by ORDER BY).
//
// The model follows the openCypher 9 reference. Values are immutable once
// constructed; lists and maps must not be mutated after being wrapped.
package value

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind int

// The Cypher value kinds. Node and Rel values hold only the element
// identifier; resolving properties or labels requires the graph, which the
// evaluator carries.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindList
	KindMap
	KindNode
	KindRel
)

// String returns the Cypher-facing name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindList:
		return "LIST"
	case KindMap:
		return "MAP"
	case KindNode:
		return "NODE"
	case KindRel:
		return "RELATIONSHIP"
	default:
		return fmt.Sprintf("KIND(%d)", int(k))
	}
}

// Value is a Cypher runtime value. The zero Value is null.
type Value struct {
	kind Kind
	b    bool
	i    int64 // integers and node/relationship identifiers
	f    float64
	s    string
	list []Value
	m    map[string]Value
}

// Null is the null value.
var Null = Value{kind: KindNull}

// True and False are the boolean constants.
var (
	True  = Value{kind: KindBool, b: true}
	False = Value{kind: KindBool, b: false}
)

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a float value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// String_ returns a string value. (Named with a trailing underscore because
// String is the Stringer method.)
func String_(s string) Value { return Value{kind: KindString, s: s} }

// Str is a shorter alias for String_.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// List returns a list value wrapping vs. The slice is not copied.
func List(vs ...Value) Value { return Value{kind: KindList, list: vs} }

// ListOf returns a list value wrapping the given slice without copying.
func ListOf(vs []Value) Value { return Value{kind: KindList, list: vs} }

// Map returns a map value wrapping m. The map is not copied.
func Map(m map[string]Value) Value { return Value{kind: KindMap, m: m} }

// Node returns a node reference with the given element identifier.
func Node(id int64) Value { return Value{kind: KindNode, i: id} }

// Rel returns a relationship reference with the given element identifier.
func Rel(id int64) Value { return Value{kind: KindRel, i: id} }

// Kind reports the value's dynamic type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsNumber reports whether the value is an integer or a float.
func (v Value) IsNumber() bool { return v.kind == KindInt || v.kind == KindFloat }

// IsEntity reports whether the value is a node or relationship reference.
func (v Value) IsEntity() bool { return v.kind == KindNode || v.kind == KindRel }

// AsBool returns the boolean payload; it must only be called when Kind is KindBool.
func (v Value) AsBool() bool { return v.b }

// AsInt returns the integer payload; it must only be called when Kind is KindInt.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the float payload; for integers it returns the converted value.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the string payload; it must only be called when Kind is KindString.
func (v Value) AsString() string { return v.s }

// AsList returns the list payload; it must only be called when Kind is KindList.
func (v Value) AsList() []Value { return v.list }

// AsMap returns the map payload; it must only be called when Kind is KindMap.
func (v Value) AsMap() map[string]Value { return v.m }

// EntityID returns the node or relationship identifier; it must only be
// called when Kind is KindNode or KindRel.
func (v Value) EntityID() int64 { return v.i }

// Tri is Cypher's three-valued logic: true, false, or unknown (null).
type Tri int

// The three truth values.
const (
	TriFalse Tri = iota
	TriTrue
	TriUnknown
)

// TriOf converts a Go bool to a Tri.
func TriOf(b bool) Tri {
	if b {
		return TriTrue
	}
	return TriFalse
}

// String returns "true", "false", or "null".
func (t Tri) String() string {
	switch t {
	case TriTrue:
		return "true"
	case TriFalse:
		return "false"
	default:
		return "null"
	}
}

// Value converts the Tri back to a Cypher value (null for unknown).
func (t Tri) Value() Value {
	switch t {
	case TriTrue:
		return True
	case TriFalse:
		return False
	default:
		return Null
	}
}

// And is three-valued conjunction.
func (t Tri) And(o Tri) Tri {
	if t == TriFalse || o == TriFalse {
		return TriFalse
	}
	if t == TriUnknown || o == TriUnknown {
		return TriUnknown
	}
	return TriTrue
}

// Or is three-valued disjunction.
func (t Tri) Or(o Tri) Tri {
	if t == TriTrue || o == TriTrue {
		return TriTrue
	}
	if t == TriUnknown || o == TriUnknown {
		return TriUnknown
	}
	return TriFalse
}

// Xor is three-valued exclusive or.
func (t Tri) Xor(o Tri) Tri {
	if t == TriUnknown || o == TriUnknown {
		return TriUnknown
	}
	return TriOf((t == TriTrue) != (o == TriTrue))
}

// Not is three-valued negation.
func (t Tri) Not() Tri {
	switch t {
	case TriTrue:
		return TriFalse
	case TriFalse:
		return TriTrue
	default:
		return TriUnknown
	}
}

// Truth interprets a value as a predicate result: booleans map to
// themselves, null maps to unknown. Any other kind is a type error in
// Cypher; callers surface that via the returned ok flag.
func (v Value) Truth() (t Tri, ok bool) {
	switch v.kind {
	case KindNull:
		return TriUnknown, true
	case KindBool:
		return TriOf(v.b), true
	default:
		return TriUnknown, false
	}
}

// String renders the value in Cypher literal notation, e.g. 'abc', [1, 2],
// {k: 1}. Nodes and relationships render as (#id) and [#id].
func (v Value) String() string {
	var sb strings.Builder
	v.format(&sb)
	return sb.String()
}

// Format renders the value in the same Cypher literal notation as String,
// appending to the caller's builder. Printers that assemble whole queries
// or rows use it to avoid materializing an intermediate string per value.
func (v Value) Format(sb *strings.Builder) {
	v.format(sb)
}

func (v Value) format(sb *strings.Builder) {
	switch v.kind {
	case KindNull:
		sb.WriteString("null")
	case KindBool:
		sb.WriteString(strconv.FormatBool(v.b))
	case KindInt:
		sb.WriteString(strconv.FormatInt(v.i, 10))
	case KindFloat:
		formatFloat(sb, v.f)
	case KindString:
		sb.WriteByte('\'')
		sb.WriteString(escapeString(v.s))
		sb.WriteByte('\'')
	case KindList:
		sb.WriteByte('[')
		for i, e := range v.list {
			if i > 0 {
				sb.WriteString(", ")
			}
			e.format(sb)
		}
		sb.WriteByte(']')
	case KindMap:
		sb.WriteByte('{')
		for i, k := range sortedKeys(v.m) {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(k)
			sb.WriteString(": ")
			v.m[k].format(sb)
		}
		sb.WriteByte('}')
	case KindNode:
		fmt.Fprintf(sb, "(#%d)", v.i)
	case KindRel:
		fmt.Fprintf(sb, "[#%d]", v.i)
	}
}

func formatFloat(sb *strings.Builder, f float64) {
	switch {
	case math.IsNaN(f):
		sb.WriteString("NaN")
	case math.IsInf(f, 1):
		sb.WriteString("Infinity")
	case math.IsInf(f, -1):
		sb.WriteString("-Infinity")
	default:
		s := strconv.FormatFloat(f, 'g', -1, 64)
		sb.WriteString(s)
		// Keep floats visually distinct from integers.
		if !strings.ContainsAny(s, ".eE") {
			sb.WriteString(".0")
		}
	}
}

func escapeString(s string) string {
	if !strings.ContainsAny(s, `'\`) {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		if r == '\'' || r == '\\' {
			sb.WriteByte('\\')
		}
		sb.WriteRune(r)
	}
	return sb.String()
}

func sortedKeys(m map[string]Value) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
