package value

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

// Equal implements Cypher's = operator (comparability): three-valued
// equality. Null operands yield unknown; values of different type families
// are not equal (false, not unknown); numbers compare across int and float;
// lists and maps compare structurally with unknown propagation; nodes and
// relationships compare by identity.
func Equal(a, b Value) Tri {
	if a.IsNull() || b.IsNull() {
		return TriUnknown
	}
	switch {
	case a.IsNumber() && b.IsNumber():
		return TriOf(numericEqual(a, b))
	case a.kind != b.kind:
		return TriFalse
	}
	switch a.kind {
	case KindBool:
		return TriOf(a.b == b.b)
	case KindString:
		return TriOf(a.s == b.s)
	case KindNode, KindRel:
		return TriOf(a.i == b.i)
	case KindList:
		if len(a.list) != len(b.list) {
			return TriFalse
		}
		result := TriTrue
		for i := range a.list {
			switch Equal(a.list[i], b.list[i]) {
			case TriFalse:
				return TriFalse
			case TriUnknown:
				result = TriUnknown
			}
		}
		return result
	case KindMap:
		if len(a.m) != len(b.m) {
			return TriFalse
		}
		result := TriTrue
		for k, av := range a.m {
			bv, ok := b.m[k]
			if !ok {
				return TriFalse
			}
			switch Equal(av, bv) {
			case TriFalse:
				return TriFalse
			case TriUnknown:
				result = TriUnknown
			}
		}
		return result
	}
	return TriFalse
}

func numericEqual(a, b Value) bool {
	if a.kind == KindInt && b.kind == KindInt {
		return a.i == b.i
	}
	return a.AsFloat() == b.AsFloat()
}

// NotEqual implements <>.
func NotEqual(a, b Value) Tri { return Equal(a, b).Not() }

// Compare implements the ordering comparisons (<, <=, >, >=). It returns
// (-1|0|1, TriTrue) when the operands are comparable, and (0, TriUnknown)
// when the comparison is undefined (null operands or incomparable types).
func Compare(a, b Value) (int, Tri) {
	if a.IsNull() || b.IsNull() {
		return 0, TriUnknown
	}
	switch {
	case a.IsNumber() && b.IsNumber():
		af, bf := a.AsFloat(), b.AsFloat()
		if math.IsNaN(af) || math.IsNaN(bf) {
			return 0, TriUnknown
		}
		if a.kind == KindInt && b.kind == KindInt {
			return cmpInt(a.i, b.i), TriTrue
		}
		return cmpFloat(af, bf), TriTrue
	case a.kind == KindString && b.kind == KindString:
		return strings.Compare(a.s, b.s), TriTrue
	case a.kind == KindBool && b.kind == KindBool:
		return cmpBool(a.b, b.b), TriTrue
	case a.kind == KindList && b.kind == KindList:
		// Lists compare lexicographically when every paired element is
		// comparable; otherwise the comparison is undefined.
		n := len(a.list)
		if len(b.list) < n {
			n = len(b.list)
		}
		for i := 0; i < n; i++ {
			c, ok := Compare(a.list[i], b.list[i])
			if ok != TriTrue {
				return 0, TriUnknown
			}
			if c != 0 {
				return c, TriTrue
			}
		}
		return cmpInt(int64(len(a.list)), int64(len(b.list))), TriTrue
	}
	return 0, TriUnknown
}

// Less implements the < operator in three-valued logic.
func Less(a, b Value) Tri {
	c, ok := Compare(a, b)
	if ok != TriTrue {
		return TriUnknown
	}
	return TriOf(c < 0)
}

// LessEq implements <=.
func LessEq(a, b Value) Tri {
	c, ok := Compare(a, b)
	if ok != TriTrue {
		return TriUnknown
	}
	return TriOf(c <= 0)
}

// Greater implements >.
func Greater(a, b Value) Tri { return Less(b, a) }

// GreaterEq implements >=.
func GreaterEq(a, b Value) Tri { return LessEq(b, a) }

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpBool(a, b bool) int {
	switch {
	case a == b:
		return 0
	case !a:
		return -1
	default:
		return 1
	}
}

// Equivalent implements Cypher's equivalence relation, used by DISTINCT,
// grouping keys, and aggregation: like Equal but null is equivalent to
// null and NaN is equivalent to NaN.
func Equivalent(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	switch {
	case a.IsNumber() && b.IsNumber():
		return numericEquivalent(a, b)
	case a.kind != b.kind:
		return false
	}
	switch a.kind {
	case KindBool:
		return a.b == b.b
	case KindString:
		return a.s == b.s
	case KindNode, KindRel:
		return a.i == b.i
	case KindList:
		if len(a.list) != len(b.list) {
			return false
		}
		for i := range a.list {
			if !Equivalent(a.list[i], b.list[i]) {
				return false
			}
		}
		return true
	case KindMap:
		if len(a.m) != len(b.m) {
			return false
		}
		for k, av := range a.m {
			bv, ok := b.m[k]
			if !ok || !Equivalent(av, bv) {
				return false
			}
		}
		return true
	}
	return false
}

// numericEquivalent compares numbers under the equivalence relation:
// NaN is equivalent to NaN, same-kind numbers compare exactly, and a
// mixed int/float pair is equivalent only when the float is integral and
// exactly representable as that int64. This definition is consistent with
// the canonical encoding produced by Key.
func numericEquivalent(a, b Value) bool {
	if a.kind == b.kind {
		if a.kind == KindInt {
			return a.i == b.i
		}
		if math.IsNaN(a.f) || math.IsNaN(b.f) {
			return math.IsNaN(a.f) && math.IsNaN(b.f)
		}
		return a.f == b.f
	}
	// Mixed int/float: normalize so a is the int.
	if a.kind == KindFloat {
		a, b = b, a
	}
	i, ok := exactInt(b.f)
	return ok && i == a.i
}

// exactInt reports whether f is an integral float exactly representable as
// an int64, returning that integer.
func exactInt(f float64) (int64, bool) {
	if math.IsNaN(f) || math.IsInf(f, 0) || f != math.Trunc(f) {
		return 0, false
	}
	if f < -9.007199254740992e15 || f > 9.007199254740992e15 {
		return 0, false
	}
	return int64(f), true
}

// orderRank defines the global type order used by orderability. Following
// openCypher, ascending order sorts maps, then nodes, then relationships,
// then lists, then strings, then booleans, then numbers, with null last.
func orderRank(k Kind) int {
	switch k {
	case KindMap:
		return 0
	case KindNode:
		return 1
	case KindRel:
		return 2
	case KindList:
		return 3
	case KindString:
		return 4
	case KindBool:
		return 5
	case KindInt, KindFloat:
		return 6
	case KindNull:
		return 7
	default:
		return 8
	}
}

// OrderCompare implements Cypher's orderability: a total order over all
// values, used by ORDER BY. It never fails; incomparable types order by
// their type rank, null sorts last, and NaN sorts after all other numbers.
func OrderCompare(a, b Value) int {
	ra, rb := orderRank(a.kind), orderRank(b.kind)
	if ra != rb {
		return cmpInt(int64(ra), int64(rb))
	}
	switch {
	case a.kind == KindNull:
		return 0
	case a.IsNumber():
		af, bf := a.AsFloat(), b.AsFloat()
		an, bn := math.IsNaN(af), math.IsNaN(bf)
		switch {
		case an && bn:
			return 0
		case an:
			return 1
		case bn:
			return -1
		}
		if a.kind == KindInt && b.kind == KindInt {
			return cmpInt(a.i, b.i)
		}
		if c := cmpFloat(af, bf); c != 0 {
			return c
		}
		// Equal numeric value: order int before float for determinism.
		return cmpInt(int64(a.kind), int64(b.kind))
	case a.kind == KindString:
		return strings.Compare(a.s, b.s)
	case a.kind == KindBool:
		return cmpBool(a.b, b.b)
	case a.kind == KindNode || a.kind == KindRel:
		return cmpInt(a.i, b.i)
	case a.kind == KindList:
		n := len(a.list)
		if len(b.list) < n {
			n = len(b.list)
		}
		for i := 0; i < n; i++ {
			if c := OrderCompare(a.list[i], b.list[i]); c != 0 {
				return c
			}
		}
		return cmpInt(int64(len(a.list)), int64(len(b.list)))
	case a.kind == KindMap:
		ak, bk := sortedKeys(a.m), sortedKeys(b.m)
		n := len(ak)
		if len(bk) < n {
			n = len(bk)
		}
		for i := 0; i < n; i++ {
			if c := strings.Compare(ak[i], bk[i]); c != 0 {
				return c
			}
			if c := OrderCompare(a.m[ak[i]], b.m[bk[i]]); c != 0 {
				return c
			}
		}
		return cmpInt(int64(len(ak)), int64(len(bk)))
	}
	return 0
}

// Key returns a canonical string encoding of the value under the
// equivalence relation: two values are Equivalent iff their keys are
// equal. It is used for hash-based DISTINCT and grouping.
func (v Value) Key() string {
	var sb strings.Builder
	v.writeKey(&sb)
	return sb.String()
}

// AppendKey writes the Key encoding into the caller's builder, for row-key
// assembly without an intermediate string per value.
func (v Value) AppendKey(sb *strings.Builder) {
	v.writeKey(sb)
}

func (v Value) writeKey(sb *strings.Builder) {
	switch v.kind {
	case KindNull:
		sb.WriteByte('_')
	case KindBool:
		if v.b {
			sb.WriteString("bT")
		} else {
			sb.WriteString("bF")
		}
	case KindInt:
		// Integers and exactly-integral floats are equivalent; both encode
		// as the decimal integer.
		sb.WriteByte('n')
		sb.WriteString(strconv.FormatInt(v.i, 10))
	case KindFloat:
		sb.WriteByte('n')
		switch {
		case math.IsNaN(v.f):
			sb.WriteString("NaN")
		default:
			if i, ok := exactInt(v.f); ok {
				sb.WriteString(strconv.FormatInt(i, 10))
			} else {
				sb.WriteString(strconv.FormatFloat(v.f, 'g', -1, 64))
			}
		}
	case KindString:
		sb.WriteByte('s')
		sb.WriteString(strconv.Itoa(len(v.s)))
		sb.WriteByte(':')
		sb.WriteString(v.s)
	case KindNode:
		sb.WriteByte('N')
		sb.WriteString(strconv.FormatInt(v.i, 10))
	case KindRel:
		sb.WriteByte('R')
		sb.WriteString(strconv.FormatInt(v.i, 10))
	case KindList:
		sb.WriteByte('[')
		for _, e := range v.list {
			e.writeKey(sb)
			sb.WriteByte(',')
		}
		sb.WriteByte(']')
	case KindMap:
		sb.WriteByte('{')
		ks := make([]string, 0, len(v.m))
		for k := range v.m {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		for _, k := range ks {
			sb.WriteString(k)
			sb.WriteByte('=')
			v.m[k].writeKey(sb)
			sb.WriteByte(',')
		}
		sb.WriteByte('}')
	}
}
