package experiments

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"gqs/internal/core"
	"gqs/internal/journal"
)

func reportDigest(c *Campaign) string {
	h := fnv.New64a()
	h.Write([]byte(c.CanonicalBugReport()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// killResumeConfig sizes a campaign small enough for -race yet long
// enough to hold several kill points. The sharded legs keep the flaky
// injector on (its per-shard streams reseed deterministically on
// resume); the sequential leg must not (a single campaign-wide flaky
// stream cannot be fast-forwarded — DESIGN.md §10).
func killResumeConfig(workers int) CampaignConfig {
	cfg := DefaultCampaignConfig()
	cfg.Iterations = 6
	cfg.Workers = workers
	if workers >= 1 {
		cfg.FlakyRate = 0.05
	}
	return cfg
}

// TestKillResumeDifferential is the tentpole's proof obligation: a
// campaign killed at a checkpoint boundary — with the journal tail torn
// on top — resumes into the byte-identical canonical bug report of an
// uninterrupted run, for the sequential executor and the sharded one at
// 1 and GOMAXPROCS workers.
func TestKillResumeDifferential(t *testing.T) {
	legs := []struct {
		name      string
		workers   int
		killAfter int // cancel at this checkpoint flush
	}{
		{"sequential", 0, 5},
		{"workers1", 1, 3},
		{"workersN", runtime.GOMAXPROCS(0), 7},
	}
	for _, leg := range legs {
		leg := leg
		t.Run(leg.name, func(t *testing.T) {
			cfg := killResumeConfig(leg.workers)
			fp := CampaignFingerprint(cfg)
			want := reportDigest(RunGQSCampaign(cfg))
			path := filepath.Join(t.TempDir(), "campaign.journal")

			// The interrupted run: canceled at the killAfter-th flush and
			// abandoned without a final flush or close — the hard-kill
			// shape. Its partial campaign result is discarded, like a
			// killed process's memory.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			flushes := 0
			ck, err := core.OpenCheckpoint(core.CheckpointConfig{
				Path: path, Every: 1,
				OnFlush: func(int) {
					if flushes++; flushes == leg.killAfter {
						cancel()
					}
				},
			}, fp)
			if err != nil {
				t.Fatal(err)
			}
			RunGQSCampaignDurable(ctx, cfg, ck)

			// A kill can also land mid-append: tear the journal tail and
			// let the recovery scan absorb it.
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			f.Write([]byte{0x00, 0x00, 0x01, 0x00, 0xba, 0xad}) //nolint:errcheck
			f.Close()

			re, err := core.OpenCheckpoint(core.CheckpointConfig{Path: path, Every: 1, Resume: true}, fp)
			if err != nil {
				t.Fatal(err)
			}
			if re.Stats().ResumedUnits == 0 {
				t.Fatalf("kill point left nothing to resume (flushes=%d)", flushes)
			}
			resumed := RunGQSCampaignDurable(context.Background(), cfg, re)
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
			if resumed.Robust.ResumeFastForwarded == 0 {
				t.Fatal("resume re-ran the whole campaign from scratch")
			}
			if got := reportDigest(resumed); got != want {
				t.Errorf("resumed digest %s != uninterrupted %s\nresumed report:\n%s",
					got, want, resumed.CanonicalBugReport())
			}
		})
	}
}

// TestMidWriteKillResume kills the journal — not the campaign — midway
// through an append (fault-injected torn write). The campaign must
// finish unperturbed, and a later resume from the torn journal must
// restore the valid prefix and converge on the same report.
func TestMidWriteKillResume(t *testing.T) {
	cfg := killResumeConfig(1)
	fp := CampaignFingerprint(cfg)
	want := reportDigest(RunGQSCampaign(cfg))
	path := filepath.Join(t.TempDir(), "campaign.journal")

	first := true
	opts := journal.Options{OpenFile: func(p string) (journal.File, error) {
		f, err := os.OpenFile(p, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
		if err != nil {
			return nil, err
		}
		if !first {
			return f, nil
		}
		first = false
		// Big enough that the first few snapshot records (fingerprint +
		// unit stats + query-text payloads) land durably, small enough to
		// die long before the campaign's ~24 units finish.
		return journal.NewFaultFile(f, journal.FaultConfig{KillAfterBytes: 48 << 10}), nil
	}}
	ck, err := core.OpenCheckpoint(core.CheckpointConfig{Path: path, Every: 1, Journal: opts}, fp)
	if err != nil {
		t.Fatal(err)
	}
	got := RunGQSCampaignDurable(context.Background(), cfg, ck)
	if d := reportDigest(got); d != want {
		t.Errorf("a dying journal perturbed the campaign: %s != %s", d, want)
	}
	if st := ck.Stats(); st.Failures == 0 {
		t.Fatalf("the mid-write kill never fired: %+v", st)
	}
	// No Close: the handle died mid-write. Resume from the torn file.
	re, err := core.OpenCheckpoint(core.CheckpointConfig{Path: path, Every: 1, Resume: true}, fp)
	if err != nil {
		t.Fatal(err)
	}
	if re.Stats().ResumedUnits == 0 {
		t.Fatal("no valid snapshot survived the torn write")
	}
	resumed := RunGQSCampaignDurable(context.Background(), cfg, re)
	re.Close()
	if d := reportDigest(resumed); d != want {
		t.Errorf("resume from torn journal diverged: %s != %s\n%s", d, want, resumed.CanonicalBugReport())
	}
}

// TestResumeRefusesChangedConfig: the fingerprint guard — resuming under
// any configuration change that alters the deterministic stream must be
// refused, not spliced.
func TestResumeRefusesChangedConfig(t *testing.T) {
	cfg := killResumeConfig(0)
	cfg.Iterations = 2
	path := filepath.Join(t.TempDir(), "campaign.journal")
	ck, err := core.OpenCheckpoint(core.CheckpointConfig{Path: path, Every: 1}, CampaignFingerprint(cfg))
	if err != nil {
		t.Fatal(err)
	}
	RunGQSCampaignDurable(context.Background(), cfg, ck)
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	changed := cfg
	changed.Seed++
	_, err = core.OpenCheckpoint(core.CheckpointConfig{Path: path, Resume: true}, CampaignFingerprint(changed))
	if !errors.Is(err, core.ErrFingerprintMismatch) {
		t.Fatalf("resume with a changed seed: err = %v, want ErrFingerprintMismatch", err)
	}
	// Same config resumes fine (a completed campaign simply has nothing
	// left to run).
	re, err := core.OpenCheckpoint(core.CheckpointConfig{Path: path, Resume: true}, CampaignFingerprint(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	done := RunGQSCampaignDurable(context.Background(), cfg, re)
	if done.Robust.ResumeFastForwarded == 0 || done.Queries == 0 {
		t.Fatalf("completed campaign did not restore: %+v", done.Robust)
	}
}
