package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// smallCampaign runs a reduced GQS campaign once per test binary.
var cachedCampaign *Campaign

func smallCampaign(t *testing.T) *Campaign {
	t.Helper()
	if cachedCampaign == nil {
		cfg := DefaultCampaignConfig()
		cfg.Iterations = 25
		cachedCampaign = RunGQSCampaign(cfg)
	}
	return cachedCampaign
}

func TestTable2(t *testing.T) {
	var buf bytes.Buffer
	Table2(&buf)
	out := buf.String()
	for _, want := range []string{"neo4j", "memgraph", "kuzu", "falkordb", "2007"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestCampaignFindsBugsOnAllGDBs(t *testing.T) {
	c := smallCampaign(t)
	if len(c.Findings) < 8 {
		t.Fatalf("campaign found only %d bugs: %v", len(c.Findings), c.SortedBugIDs())
	}
	byGDB := c.ByGDB()
	for _, g := range []string{"neo4j", "memgraph", "kuzu", "falkordb"} {
		if len(byGDB[g]) == 0 {
			t.Errorf("no bugs found on %s", g)
		}
	}
	// FalkorDB must yield the most (13 logic + 4 other injected).
	if len(byGDB["falkordb"]) < len(byGDB["neo4j"]) {
		t.Errorf("falkordb (%d) should out-bug neo4j (%d)", len(byGDB["falkordb"]), len(byGDB["neo4j"]))
	}
	if len(c.LogicFindings()) == 0 {
		t.Error("no logic bugs found")
	}
	// No duplicate findings.
	seen := map[string]bool{}
	for _, id := range c.SortedBugIDs() {
		if seen[id] {
			t.Errorf("duplicate finding %s", id)
		}
		seen[id] = true
	}
}

func TestTable3Rendering(t *testing.T) {
	var buf bytes.Buffer
	cfg := DefaultCampaignConfig()
	cfg.Iterations = 4
	Table3(&buf, cfg)
	if !strings.Contains(buf.String(), "Table 3") || !strings.Contains(buf.String(), "total") {
		t.Errorf("Table 3 rendering broken:\n%s", buf.String())
	}
}

func TestTable4Latency(t *testing.T) {
	c := smallCampaign(t)
	var buf bytes.Buffer
	Table4(&buf, c)
	out := buf.String()
	if !strings.Contains(out, "gdsmith") || !strings.Contains(out, "avg latency") {
		t.Errorf("Table 4 broken:\n%s", out)
	}
	// GDBMeter/Gamera/GQT must show "-" for Memgraph.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "gdbmeter") && !strings.Contains(line, "-") {
			t.Errorf("gdbmeter memgraph column must be '-': %s", line)
		}
	}
}

func TestOracleReplayShape(t *testing.T) {
	c := smallCampaign(t)
	var buf bytes.Buffer
	gm, gr, total := OracleReplay(&buf, c)
	if total == 0 {
		t.Skip("no logic bugs in the small campaign")
	}
	if gm > total || gr > total {
		t.Fatalf("caught more than total: %d/%d/%d", gm, gr, total)
	}
	// The headline claim: both oracles miss bugs that GQS exposes.
	if gm == total && gr == total {
		t.Errorf("prior oracles caught everything (%d/%d and %d/%d); blind spots not reproduced",
			gm, total, gr, total)
	}
}

func TestTable5Shape(t *testing.T) {
	var buf bytes.Buffer
	rows := Table5(&buf, 60, 7)
	byName := map[string]Table5Row{}
	for _, r := range rows {
		byName[r.Tester] = r
	}
	gqs, gdbmeter, grev := byName["gqs"], byName["gdbmeter"], byName["grev"]
	if gqs.Patterns <= gdbmeter.Patterns || gqs.Deps <= gdbmeter.Deps || gqs.Depth <= gdbmeter.Depth {
		t.Errorf("GQS must dominate GDBMeter: %+v vs %+v", gqs, gdbmeter)
	}
	if gqs.Deps <= grev.Deps {
		t.Errorf("GQS dependencies (%.1f) must exceed GRev (%.1f)", gqs.Deps, grev.Deps)
	}
	if gqs.Patterns < 3 || gqs.Depth < 5 {
		t.Errorf("GQS complexity too low: %+v", gqs)
	}
}

func TestTable6AndFig18(t *testing.T) {
	var buf bytes.Buffer
	campaigns := Table6(&buf, 200, 3)
	gqsTotal, bestBaseline := 0, 0
	for tester, per := range campaigns {
		n := 0
		for _, tc := range per {
			n += len(tc.Found)
		}
		if tester == "gqs" {
			gqsTotal = n
		} else if n > bestBaseline {
			bestBaseline = n
		}
	}
	if gqsTotal == 0 {
		t.Fatalf("GQS found nothing:\n%s", buf.String())
	}
	if gqsTotal < bestBaseline {
		t.Errorf("GQS (%d) must lead the baselines (best %d):\n%s", gqsTotal, bestBaseline, buf.String())
	}
	Fig18(&buf, campaigns, 200)
	if !strings.Contains(buf.String(), "Figure 18") {
		t.Error("Fig18 rendering broken")
	}
}

func TestFalseAlarms(t *testing.T) {
	var buf bytes.Buffer
	reports, fps := FalseAlarms(&buf, 150, 5)
	if reports == 0 {
		t.Fatalf("differential testing produced no reports:\n%s", buf.String())
	}
	if float64(fps)/float64(reports) < 0.5 {
		t.Errorf("false-positive rate %.0f%% too low to reproduce the ~98%% finding (%d/%d)",
			100*float64(fps)/float64(reports), fps, reports)
	}
}

func TestFigures(t *testing.T) {
	c := smallCampaign(t)
	var buf bytes.Buffer
	bySteps := Fig10(&buf, c)
	if len(bySteps) == 0 {
		t.Error("Fig10 empty")
	}
	if agg := Fig11(&buf, c); agg["MATCH"] == 0 {
		t.Error("Fig11: MATCH must appear")
	}
	if agg := Fig12(&buf, c); agg["WHERE"] == 0 {
		t.Error("Fig12: WHERE must appear")
	}
	Fig13(&buf, c)
	Fig14(&buf, c)
	Fig15(&buf, c)
	for _, want := range []string{"Figure 10", "Figure 11", "Figure 12", "Figure 13", "Figure 14", "Figure 15"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing %s in output", want)
		}
	}
}

func TestAblationOrdering(t *testing.T) {
	var buf bytes.Buffer
	results := Ablation(&buf, 12, 9)
	byName := map[string]AblationResult{}
	for _, r := range results {
		byName[r.Name] = r
	}
	full := byName["full"]
	if full.Bugs == 0 {
		t.Fatalf("full variant found nothing:\n%s", buf.String())
	}
	// The robust ablation claim: packing the plan into the fewest steps
	// reduces the bug yield. (The other knobs are within per-seed noise
	// at small budgets; see EXPERIMENTS.md.)
	if two := byName["two-steps"]; two.Bugs >= full.Bugs {
		t.Errorf("two-step synthesis (%d) should find fewer bugs than full (%d)", two.Bugs, full.Bugs)
	}
}
