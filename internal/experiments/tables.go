package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"gqs/internal/baselines"
	"gqs/internal/core"
	"gqs/internal/faults"
	"gqs/internal/gdb"
	"gqs/internal/graph"
	"gqs/internal/metrics"
)

// writeTable renders rows with aligned columns.
func writeTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

// Table2 renders the tested-GDB summary.
func Table2(w io.Writer) {
	fmt.Fprintln(w, "Table 2: Summary of the tested GDBs (simulated substrates)")
	var rows [][]string
	for _, info := range gdb.Registry() {
		rows = append(rows, []string{
			info.Name, info.GitHubStars, fmt.Sprint(info.InitialRelease),
			info.TestedVersion, info.LoC,
		})
	}
	writeTable(w, []string{"GDB", "GitHub stars", "Initial release", "Tested version", "LoC"}, rows)
}

// Table3 runs the GQS campaign and renders the per-GDB bug counts
// (detected from the campaign; confirmed/fixed from the catalog
// metadata, as those reflect developer responses).
func Table3(w io.Writer, cfg CampaignConfig) *Campaign {
	c := RunGQSCampaign(cfg)
	fmt.Fprintln(w, "Table 3: Summary of the bugs detected by GQS")
	byGDB := c.ByGDB()
	var rows [][]string
	totL, totLC, totLF, totO, totOC, totOF := 0, 0, 0, 0, 0, 0
	for _, info := range gdb.Registry() {
		var l, lc, lf, o, oc, of int
		for _, f := range byGDB[info.Name] {
			if f.Bug.Kind.IsLogic() {
				l++
				if f.Bug.Confirmed {
					lc++
				}
				if f.Bug.Fixed {
					lf++
				}
			} else {
				o++
				if f.Bug.Confirmed {
					oc++
				}
				if f.Bug.Fixed {
					of++
				}
			}
		}
		totL, totLC, totLF, totO, totOC, totOF = totL+l, totLC+lc, totLF+lf, totO+o, totOC+oc, totOF+of
		rows = append(rows, []string{info.Name,
			fmt.Sprint(l), fmt.Sprint(lc), fmt.Sprint(lf),
			fmt.Sprint(o), fmt.Sprint(oc), fmt.Sprint(of)})
	}
	rows = append(rows, []string{"total",
		fmt.Sprint(totL), fmt.Sprint(totLC), fmt.Sprint(totLF),
		fmt.Sprint(totO), fmt.Sprint(totOC), fmt.Sprint(totOF)})
	writeTable(w, []string{"GDB", "logic detected", "confirmed", "fixed", "other detected", "confirmed", "fixed"}, rows)
	fmt.Fprintf(w, "(campaign: %d queries, %d skipped)\n", c.Queries, c.Skips)
	return c
}

// toolCampaignAge records, per tool and GDB, how many years ago that
// tool's published campaign tested the system (the versions it covered).
var toolCampaignAge = map[string]map[string]float64{
	"gdsmith":  {"neo4j": 2.3, "memgraph": 2.3, "falkordb": 2.3},
	"gdbmeter": {"neo4j": 2.4, "falkordb": 2.4},
	"gamera":   {"neo4j": 1.1, "falkordb": 1.1},
	"gqt":      {"neo4j": 1.6, "falkordb": 1.3},
	"grev":     {"neo4j": 1.0, "memgraph": 1.0, "falkordb": 1.0},
}

// Table4 reproduces the latency analysis: for each prior tester, how
// many of the campaign's bugs were already present in versions predating
// the ones it tested (Kùzu is excluded as in the paper).
func Table4(w io.Writer, c *Campaign) {
	fmt.Fprintln(w, "Table 4: Bugs missed by existing testers and their latencies")
	gdbs := []string{"neo4j", "memgraph", "falkordb"}
	var rows [][]string
	missedUnion := map[string]map[string]*faults.Bug{}
	for _, tool := range []string{"gdsmith", "gdbmeter", "gamera", "gqt", "grev"} {
		row := []string{tool}
		total := 0
		for _, g := range gdbs {
			age, supported := toolCampaignAge[tool][g]
			if !supported {
				row = append(row, "-")
				continue
			}
			n := 0
			for _, f := range c.ByGDB()[g] {
				if f.Bug.IntroducedYearsAgo > age {
					n++
					if missedUnion[g] == nil {
						missedUnion[g] = map[string]*faults.Bug{}
					}
					missedUnion[g][f.Bug.ID] = f.Bug
				}
			}
			row = append(row, fmt.Sprint(n))
			total += n
		}
		row = append(row, fmt.Sprint(total))
		rows = append(rows, row)
	}
	avgRow := []string{"avg latency (yrs)"}
	maxRow := []string{"max latency (yrs)"}
	for _, g := range gdbs {
		var sum, max float64
		var n int
		for _, b := range missedUnion[g] {
			sum += b.IntroducedYearsAgo
			if b.IntroducedYearsAgo > max {
				max = b.IntroducedYearsAgo
			}
			n++
		}
		if n == 0 {
			avgRow = append(avgRow, "-")
			maxRow = append(maxRow, "-")
			continue
		}
		avgRow = append(avgRow, fmt.Sprintf("%.1f", sum/float64(n)))
		maxRow = append(maxRow, fmt.Sprintf("%.1f", max))
	}
	rows = append(rows, append(avgRow, "-"), append(maxRow, "-"))
	writeTable(w, []string{"Tester", "Neo4j", "Memgraph", "FalkorDB*", "Total"}, rows)
	fmt.Fprintln(w, "* tested as RedisGraph by the prior tools")
}

// OracleReplay reproduces §5.4.3: feed the GQS bug-triggering logic-bug
// queries to GDBMeter's and GRev's oracles and count how many injected
// bugs each oracle can still expose.
func OracleReplay(w io.Writer, c *Campaign) (gdbmeterCaught, grevCaught, total int) {
	fmt.Fprintln(w, "Oracle replay (§5.4.3): bugs exposed when prior oracles run the GQS bug-triggering queries")
	for _, f := range c.LogicFindings() {
		total++
		sim, err := gdb.ByName(f.GDB)
		if err != nil {
			continue
		}
		if rerr := sim.Reset(f.Graph, f.Schema); rerr != nil {
			fmt.Fprintf(w, "skipping replay of %s: reset %s: %v\n", f.Bug.ID, sim.Name(), rerr)
			continue
		}
		if applied, violated, _, err := baselines.TLPCheck(sim, f.Query); err == nil && applied && violated {
			gdbmeterCaught++
		}
		sim2, _ := gdb.ByName(f.GDB)
		if rerr := sim2.Reset(f.Graph, f.Schema); rerr != nil {
			fmt.Fprintf(w, "skipping GRev replay of %s: reset %s: %v\n", f.Bug.ID, sim2.Name(), rerr)
			continue
		}
		if applied, violated, _, err := baselines.GRevCheck(sim2, f.Query); err == nil && applied && violated {
			grevCaught++
		}
	}
	fmt.Fprintf(w, "GDBMeter (TLP) exposed %d / %d logic bugs\n", gdbmeterCaught, total)
	fmt.Fprintf(w, "GRev (equivalent rewriting) exposed %d / %d logic bugs\n", grevCaught, total)
	fmt.Fprintln(w, "(paper: 11/26 and 3/26)")
	return
}

// Table5Row is one tester's complexity profile.
type Table5Row struct {
	Tester   string
	Patterns float64
	Depth    float64
	Clauses  float64
	Deps     float64
}

// Table5 measures query complexity for every generator (Table 5): n
// queries per tester, parsed and measured with the AST metrics.
func Table5(w io.Writer, n int, seed int64) []Table5Row {
	paper := map[string][4]float64{
		"gdsmith":  {4.96, 3.68, 6.39, 21.75},
		"gdbmeter": {0.86, 2.24, 1.94, 1.97},
		"gamera":   {0.83, 1.39, 1.92, 1.89},
		"gqt":      {1.03, 2.87, 3.39, 3.43},
		"grev":     {6.69, 5.26, 6.49, 28.41},
		"gqs":      {8.14, 7.82, 6.50, 56.02},
	}
	r := rand.New(rand.NewSource(seed))
	var out []Table5Row

	measure := func(name string, gen func(g *graph.Graph, schema *graph.Schema) string) {
		var agg metrics.Aggregate
		for agg.N < n {
			g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 10, MaxRels: 40})
			for i := 0; i < 20 && agg.N < n; i++ {
				q := gen(g, schema)
				if q == "" {
					continue
				}
				agg.Add(metrics.Analyze(q))
			}
		}
		p, d, cl, deps := agg.Averages()
		out = append(out, Table5Row{Tester: name, Patterns: p, Depth: d, Clauses: cl, Deps: deps})
	}

	for _, t := range baselines.All() {
		tester := t
		measure(tester.Name(), func(g *graph.Graph, schema *graph.Schema) string {
			return tester.Generate(r, g, schema)
		})
	}
	var syn *core.Synthesizer
	var lastG *graph.Graph
	measure("gqs", func(g *graph.Graph, schema *graph.Schema) string {
		if g != lastG {
			syn = core.NewSynthesizer(r, g, schema, core.DefaultConfig())
			lastG = g
		}
		gt := core.SelectGroundTruth(r, g, 6)
		sq, err := syn.Synthesize(gt)
		if err != nil {
			return ""
		}
		return sq.Text
	})

	fmt.Fprintf(w, "Table 5: Comparison on test query complexity (%d queries per tester)\n", n)
	var rows [][]string
	for _, row := range out {
		p := paper[row.Tester]
		rows = append(rows, []string{
			row.Tester, fmtF(row.Patterns), fmtF(row.Depth), fmtF(row.Clauses), fmtF(row.Deps),
			fmt.Sprintf("(paper: %.2f/%.2f/%.2f/%.2f)", p[0], p[1], p[2], p[3]),
		})
	}
	writeTable(w, []string{"Tester", "Pattern", "Expression", "Clause", "Dependency", "Reference"}, rows)
	return out
}

// Table6 runs the scaled-down 24-hour campaign: every tester with its own
// generator and oracle, for a fixed number of rounds per GDB.
func Table6(w io.Writer, rounds int, seed int64) map[string]map[string]*TesterCampaign {
	gdbs := []string{"neo4j", "memgraph", "falkordb"}
	out := map[string]map[string]*TesterCampaign{}
	run := func(name string, f func(g string) (*TesterCampaign, error)) {
		out[name] = map[string]*TesterCampaign{}
		for _, g := range gdbs {
			tc, err := f(g)
			if err != nil {
				fmt.Fprintf(w, "%s on %s: error %v\n", name, g, err)
				continue
			}
			out[name][g] = tc
		}
	}
	for _, t := range baselines.All() {
		tester := t
		run(tester.Name(), func(g string) (*TesterCampaign, error) {
			return RunBaselineCampaign(tester, g, rounds, seed)
		})
	}
	run("gqs", func(g string) (*TesterCampaign, error) {
		return RunGQSTimeline(g, rounds, seed)
	})

	fmt.Fprintf(w, "Table 6: Bugs detected over a budgeted campaign (%d rounds per GDB; X (Y) = total (logic))\n", rounds)
	var rows [][]string
	order := []string{"gdsmith", "gdbmeter", "gamera", "gqt", "grev", "gqs"}
	for _, name := range order {
		row := []string{name}
		total, logic := 0, 0
		for _, g := range gdbs {
			tc := out[name][g]
			if tc == nil || tc.Rounds == 0 || (name != "gdsmith" && name != "grev" && name != "gqs" && g == "memgraph") {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%d (%d)", len(tc.Found), tc.LogicCount()))
			total += len(tc.Found)
			logic += tc.LogicCount()
		}
		row = append(row, fmt.Sprintf("%d (%d)", total, logic))
		rows = append(rows, row)
	}
	writeTable(w, []string{"Tester", "Neo4j", "Memgraph", "FalkorDB", "Total"}, rows)
	return out
}

// FalseAlarms reproduces the §5.4.3 false-positive analysis: GDsmith
// differentially comparing the Neo4j and Memgraph simulacra (both healthy
// graphs, real dialect differences) over a budget of rounds.
func FalseAlarms(w io.Writer, rounds int, seed int64) (reports, falsePositives int) {
	tester := baselines.NewGDsmith()
	tc, err := RunBaselineCampaign(tester, "neo4j", rounds, seed)
	if err != nil {
		fmt.Fprintf(w, "error: %v\n", err)
		return 0, 0
	}
	reports = len(tc.Found) + tc.FalsePositives
	falsePositives = tc.FalsePositives
	fmt.Fprintf(w, "GDsmith false alarms: %d reports over %d rounds, %d false positives (%.0f%%)\n",
		reports, rounds, falsePositives, 100*float64(falsePositives)/float64(maxInt(reports, 1)))
	fmt.Fprintln(w, "(paper: 1192 reports, 1160 false positives, ~98%)")
	return
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Bench helpers used by the root benchmark suite.

// QuickCampaign runs a small fixed campaign (for benchmarks).
func QuickCampaign(seed int64, iterations int) *Campaign {
	cfg := DefaultCampaignConfig()
	cfg.Seed = seed
	cfg.Iterations = iterations
	return RunGQSCampaign(cfg)
}

// SortedBugIDs lists the distinct bug IDs of a campaign.
func (c *Campaign) SortedBugIDs() []string {
	var ids []string
	for _, f := range c.Findings {
		ids = append(ids, f.Bug.ID)
	}
	sort.Strings(ids)
	return ids
}
