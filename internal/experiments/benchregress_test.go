package experiments

import (
	"io"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, dir, name string, r BenchResult) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := r.WriteJSON(p); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBenchRegressGates(t *testing.T) {
	dir := t.TempDir()
	prev := BenchResult{
		Seed: 1, Iterations: 20,
		BaselineIterSec: 100, ParallelWorkers: 2, ParallelIterSec: 90,
		Findings: 35, IdenticalBugSets: true, BugReportFNV: "abc",
	}
	prevPath := writeBench(t, dir, "BENCH_a.json", prev)

	cur := prev
	curPath := writeBench(t, dir, "BENCH_b.json", cur)
	if err := BenchRegress(io.Discard, curPath, []string{prevPath}); err != nil {
		t.Fatalf("identical results must pass: %v", err)
	}

	// >10% parallel regression at the same worker count fails.
	slow := prev
	slow.ParallelIterSec = 70
	slowPath := writeBench(t, dir, "BENCH_slow.json", slow)
	err := BenchRegress(io.Discard, slowPath, []string{prevPath})
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("parallel regression must fail, got %v", err)
	}

	// A different worker count gates on the baseline leg instead: the
	// same slow parallel number passes when it isn't like-for-like...
	otherWorkers := slow
	otherWorkers.ParallelWorkers = 1
	owPath := writeBench(t, dir, "BENCH_ow.json", otherWorkers)
	if err := BenchRegress(io.Discard, owPath, []string{prevPath}); err != nil {
		t.Fatalf("cross-worker-count parallel delta must not fail: %v", err)
	}
	// ...but a baseline regression still fails.
	slowBase := otherWorkers
	slowBase.BaselineIterSec = 50
	sbPath := writeBench(t, dir, "BENCH_sb.json", slowBase)
	if err := BenchRegress(io.Discard, sbPath, []string{prevPath}); err == nil {
		t.Fatal("baseline regression must fail")
	}

	// A bug-report digest change at the same seed/iterations fails.
	drift := prev
	drift.BugReportFNV = "different"
	driftPath := writeBench(t, dir, "BENCH_drift.json", drift)
	err = BenchRegress(io.Discard, driftPath, []string{prevPath})
	if err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("bug-set drift must fail, got %v", err)
	}

	// A different seed is not bug-set comparable; only throughput gates.
	otherSeed := drift
	otherSeed.Seed = 2
	osPath := writeBench(t, dir, "BENCH_os.json", otherSeed)
	if err := BenchRegress(io.Discard, osPath, []string{prevPath}); err != nil {
		t.Fatalf("different seed must not gate the bug set: %v", err)
	}

	// The current run's own determinism cross-check fails the gate.
	nondet := prev
	nondet.IdenticalBugSets = false
	ndPath := writeBench(t, dir, "BENCH_nd.json", nondet)
	if err := BenchRegress(io.Discard, ndPath, nil); err == nil {
		t.Fatal("IdenticalBugSets=false must fail")
	}
}

func TestBenchRegressLargeGraphGates(t *testing.T) {
	dir := t.TempDir()
	lg := func(p95 ...float64) *LargeGraphBenchResult {
		r := &LargeGraphBenchResult{NodesPerSec: 150000, IndexVsScan: 30, IdenticalResults: true}
		for i, v := range p95 {
			r.Hops = append(r.Hops, HopLatency{Hops: i + 1, Queries: 48, P50Micros: v / 2, P95Micros: v})
		}
		return r
	}
	prev := BenchResult{
		Seed: 1, Iterations: 20,
		BaselineIterSec: 100, ParallelWorkers: 2, ParallelIterSec: 90,
		Findings: 35, IdenticalBugSets: true, BugReportFNV: "abc",
		LargeGraph: lg(3, 5, 9),
	}
	prevPath := writeBench(t, dir, "BENCH_lg.json", prev)

	// Matching latencies pass.
	same := prev
	samePath := writeBench(t, dir, "BENCH_same.json", same)
	if err := BenchRegress(io.Discard, samePath, []string{prevPath}); err != nil {
		t.Fatalf("matching large-graph results must pass: %v", err)
	}

	// A >1.5x p95 regression at any hop depth fails.
	slow := prev
	slow.LargeGraph = lg(3, 5, 15)
	slowPath := writeBench(t, dir, "BENCH_lgslow.json", slow)
	err := BenchRegress(io.Discard, slowPath, []string{prevPath})
	if err == nil || !strings.Contains(err.Error(), "3-hop match p95 regressed") {
		t.Fatalf("hop-latency regression must fail, got %v", err)
	}

	// Latencies inside the margin pass, and a baseline without the
	// block never gates hops.
	near := prev
	near.LargeGraph = lg(4.4, 7.4, 13.4)
	nearPath := writeBench(t, dir, "BENCH_lgnear.json", near)
	if err := BenchRegress(io.Discard, nearPath, []string{prevPath}); err != nil {
		t.Fatalf("in-margin latency drift must pass: %v", err)
	}
	old := prev
	old.LargeGraph = nil
	oldPath := writeBench(t, dir, "BENCH_old.json", old)
	if err := BenchRegress(io.Discard, slowPath, []string{oldPath}); err != nil {
		t.Fatalf("baseline without large-graph block must not gate hops: %v", err)
	}

	// The current run's own index-vs-scan differential is absolute.
	div := prev
	div.LargeGraph = lg(3, 5, 9)
	div.LargeGraph.IdenticalResults = false
	divPath := writeBench(t, dir, "BENCH_lgdiv.json", div)
	err = BenchRegress(io.Discard, divPath, nil)
	if err == nil || !strings.Contains(err.Error(), "index-backed expansion results differ") {
		t.Fatalf("index-vs-scan divergence must fail, got %v", err)
	}
}

func TestBenchRegressSingleCPUEfficiencyAnnotated(t *testing.T) {
	dir := t.TempDir()
	prev := BenchResult{
		Seed: 1, Iterations: 20, GOMAXPROCS: 2,
		BaselineIterSec: 100, ParallelWorkers: 2, ParallelIterSec: 180,
		Speedup: 1.8, ParallelEfficiency: 0.9,
		Findings: 35, IdenticalBugSets: true, BugReportFNV: "abc",
	}
	prevPath := writeBench(t, dir, "BENCH_eff.json", prev)

	// Halved efficiency on a multi-CPU host fails...
	cur := prev
	cur.ParallelIterSec = 95
	cur.Speedup = 0.95
	cur.ParallelEfficiency = 0.475
	curPath := writeBench(t, dir, "BENCH_effcur.json", cur)
	err := BenchRegress(io.Discard, curPath, []string{prevPath})
	if err == nil || !strings.Contains(err.Error(), "parallel efficiency regressed") {
		t.Fatalf("multi-CPU efficiency regression must fail, got %v", err)
	}

	// ...but on a single-CPU host it is annotated, not gated. The
	// throughput leg is kept inside its own gate so only efficiency
	// could fail.
	oneCPU := cur
	oneCPU.GOMAXPROCS = 1
	oneCPU.ParallelIterSec = 163
	ocPath := writeBench(t, dir, "BENCH_effoc.json", oneCPU)
	var buf strings.Builder
	if err := BenchRegress(&buf, ocPath, []string{prevPath}); err != nil {
		t.Fatalf("single-CPU efficiency drop must not gate: %v", err)
	}
	if !strings.Contains(buf.String(), "single-CPU host") {
		t.Fatalf("expected a single-CPU annotation, got:\n%s", buf.String())
	}
}
