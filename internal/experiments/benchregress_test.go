package experiments

import (
	"io"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, dir, name string, r BenchResult) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := r.WriteJSON(p); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBenchRegressGates(t *testing.T) {
	dir := t.TempDir()
	prev := BenchResult{
		Seed: 1, Iterations: 20,
		BaselineIterSec: 100, ParallelWorkers: 2, ParallelIterSec: 90,
		Findings: 35, IdenticalBugSets: true, BugReportFNV: "abc",
	}
	prevPath := writeBench(t, dir, "BENCH_a.json", prev)

	cur := prev
	curPath := writeBench(t, dir, "BENCH_b.json", cur)
	if err := BenchRegress(io.Discard, curPath, []string{prevPath}); err != nil {
		t.Fatalf("identical results must pass: %v", err)
	}

	// >10% parallel regression at the same worker count fails.
	slow := prev
	slow.ParallelIterSec = 70
	slowPath := writeBench(t, dir, "BENCH_slow.json", slow)
	err := BenchRegress(io.Discard, slowPath, []string{prevPath})
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("parallel regression must fail, got %v", err)
	}

	// A different worker count gates on the baseline leg instead: the
	// same slow parallel number passes when it isn't like-for-like...
	otherWorkers := slow
	otherWorkers.ParallelWorkers = 1
	owPath := writeBench(t, dir, "BENCH_ow.json", otherWorkers)
	if err := BenchRegress(io.Discard, owPath, []string{prevPath}); err != nil {
		t.Fatalf("cross-worker-count parallel delta must not fail: %v", err)
	}
	// ...but a baseline regression still fails.
	slowBase := otherWorkers
	slowBase.BaselineIterSec = 50
	sbPath := writeBench(t, dir, "BENCH_sb.json", slowBase)
	if err := BenchRegress(io.Discard, sbPath, []string{prevPath}); err == nil {
		t.Fatal("baseline regression must fail")
	}

	// A bug-report digest change at the same seed/iterations fails.
	drift := prev
	drift.BugReportFNV = "different"
	driftPath := writeBench(t, dir, "BENCH_drift.json", drift)
	err = BenchRegress(io.Discard, driftPath, []string{prevPath})
	if err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("bug-set drift must fail, got %v", err)
	}

	// A different seed is not bug-set comparable; only throughput gates.
	otherSeed := drift
	otherSeed.Seed = 2
	osPath := writeBench(t, dir, "BENCH_os.json", otherSeed)
	if err := BenchRegress(io.Discard, osPath, []string{prevPath}); err != nil {
		t.Fatalf("different seed must not gate the bug set: %v", err)
	}

	// The current run's own determinism cross-check fails the gate.
	nondet := prev
	nondet.IdenticalBugSets = false
	ndPath := writeBench(t, dir, "BENCH_nd.json", nondet)
	if err := BenchRegress(io.Discard, ndPath, nil); err == nil {
		t.Fatal("IdenticalBugSets=false must fail")
	}
}
