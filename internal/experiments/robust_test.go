package experiments

import (
	"testing"
	"time"

	"gqs/internal/core"
	"gqs/internal/faults"
)

// TestResilientCampaign is the acceptance scenario for the hardened
// harness: a full campaign with live hang/crash faults and a flaky
// connector (>10% transient rate) must complete in-process — hangs are
// canceled at the deadline, crashes are recovered from panics, the
// instances are restarted, and no transient error ever counts as a bug.
func TestResilientCampaign(t *testing.T) {
	cfg := DefaultCampaignConfig()
	// 25 iterations discover every hang and crash in the catalog; each
	// live hang costs one full timeout, so the deadline stays short.
	cfg.Iterations = 25
	cfg.Live = true
	cfg.FlakyRate = 0.12
	cfg.Robust = core.RobustnessConfig{Timeout: 25 * time.Millisecond}
	c := RunGQSCampaign(cfg)

	// Reaching this line is the headline assertion: zero process deaths
	// despite every fault manifesting for real.
	if c.Queries == 0 {
		t.Fatal("campaign executed no queries")
	}
	rb := c.Robust
	if rb.Timeouts == 0 {
		t.Errorf("live hangs must produce watchdog timeouts: %+v", rb)
	}
	if rb.PanicsRecovered == 0 {
		t.Errorf("live crashes must be recovered as panics: %+v", rb)
	}
	if rb.Retries == 0 || rb.TransientErrors == 0 {
		t.Errorf("flaky connector must force retries: %+v", rb)
	}
	if rb.Restarts == 0 {
		t.Errorf("crash/hang recovery must restart instances: %+v", rb)
	}

	// Hang and crash faults are still attributed as error-bug findings.
	kinds := map[faults.Kind]int{}
	for _, f := range c.Findings {
		kinds[f.Bug.Kind]++
	}
	if kinds[faults.Hang] == 0 {
		t.Errorf("no hang fault attributed: %v", kinds)
	}
	if kinds[faults.Crash] == 0 {
		t.Errorf("no crash fault attributed: %v", kinds)
	}

	// A transient error never reaches a verdict: every give-up is a skip
	// and every finding carries real fault attribution (enforced by
	// construction in runOn — a Finding requires TriggeredBug).
	if rb.TransientGiveUps > c.Skips {
		t.Errorf("give-ups (%d) must be classified as skips (%d)", rb.TransientGiveUps, c.Skips)
	}
}

// TestLiveCampaignStillFindsLogicBugs: manifesting faults live must not
// cost logic-bug coverage relative to the simulated baseline.
func TestLiveCampaignStillFindsLogicBugs(t *testing.T) {
	cfg := DefaultCampaignConfig()
	cfg.Iterations = 20
	cfg.Live = true
	cfg.Robust = core.RobustnessConfig{Timeout: 25 * time.Millisecond}
	c := RunGQSCampaign(cfg)
	if len(c.LogicFindings()) == 0 {
		t.Errorf("live campaign found no logic bugs in %d queries", c.Queries)
	}
}
