package experiments

import (
	"fmt"
	"io"

	"gqs/internal/core"
	"gqs/internal/gdb"
	"gqs/internal/graph"
)

// AblationResult is the bug yield of one synthesizer configuration.
type AblationResult struct {
	Name    string
	Bugs    int
	Logic   int
	Queries int
}

// Ablation measures how the key design choices of §3 contribute to bug
// detection (the DESIGN.md §4 ablations): the full synthesizer versus
// variants with pattern mutation disabled, expression nesting disabled,
// a plain MATCH–RETURN step budget, and a tiny expected result set.
func Ablation(w io.Writer, iterations int, seed int64) []AblationResult {
	variants := []struct {
		name string
		mod  func(*core.Config)
	}{
		{"full", func(*core.Config) {}},
		{"no-mutation", func(c *core.Config) { c.DisableMutation = true }},
		{"plain-pins", func(c *core.Config) { c.DisableComplexExprs = true }},
		{"two-steps", func(c *core.Config) { c.MaxSteps = 2 }},
		{"small-result-set", func(c *core.Config) { c.Plan.MaxResultSet = 1 }},
	}
	var out []AblationResult
	for _, v := range variants {
		cfg := core.DefaultConfig()
		v.mod(&cfg)
		res := runAblationVariant(v.name, cfg, iterations, seed)
		out = append(out, res)
	}
	fmt.Fprintf(w, "Ablation: distinct bugs found per synthesizer variant (%d iterations per GDB)\n", iterations)
	var rows [][]string
	for _, r := range out {
		rows = append(rows, []string{r.Name, fmt.Sprint(r.Bugs), fmt.Sprint(r.Logic), fmt.Sprint(r.Queries)})
	}
	writeTable(w, []string{"Variant", "Bugs", "Logic", "Queries"}, rows)
	return out
}

func runAblationVariant(name string, synth core.Config, iterations int, seed int64) AblationResult {
	res := AblationResult{Name: name}
	for _, sim := range gdb.All() {
		cfg := core.RunnerConfig{
			Seed:            seed,
			Graph:           graph.GenConfig{MaxNodes: 10, MaxRels: 40},
			Synth:           synth,
			QueriesPerGraph: 5,
			QueriesPerGT:    2,
		}
		rn := core.NewRunner(sim, cfg)
		found := map[string]bool{}
		rn.Run(iterations, func(tc *core.TestCase) {
			res.Queries++
			if tc.Verdict != core.VerdictLogicBug && tc.Verdict != core.VerdictErrorBug {
				return
			}
			b := sim.TriggeredBug()
			if b == nil || found[b.ID] {
				return
			}
			found[b.ID] = true
			res.Bugs++
			if b.Kind.IsLogic() {
				res.Logic++
			}
		})
	}
	return res
}
