package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"gqs/internal/core"
	"gqs/internal/gdb"
	"gqs/internal/graph"
)

// histogram renders counts as an ASCII bar chart.
func histogram(w io.Writer, title string, labels []string, counts []int) {
	fmt.Fprintln(w, title)
	max := 1
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	for i, l := range labels {
		bar := ""
		n := counts[i] * 40 / max
		for j := 0; j < n; j++ {
			bar += "#"
		}
		fmt.Fprintf(w, "%-12s %3d %s\n", l, counts[i], bar)
	}
}

// Fig10 reproduces Figure 10: the distribution of detected bugs by the
// number of synthesis steps of the triggering query, plus the
// queries-per-second throughput for each step budget.
func Fig10(w io.Writer, c *Campaign) (bySteps map[int]int) {
	bySteps = map[int]int{}
	for _, f := range c.Findings {
		bySteps[f.Steps]++
	}
	var labels []string
	var counts []int
	maxStep := 0
	for s := range bySteps {
		if s > maxStep {
			maxStep = s
		}
	}
	atLeast3 := 0
	for s := 1; s <= maxStep; s++ {
		labels = append(labels, fmt.Sprintf("%d steps", s))
		counts = append(counts, bySteps[s])
		if s >= 3 {
			atLeast3 += bySteps[s]
		}
	}
	histogram(w, "Figure 10: bugs by synthesis steps of the triggering query", labels, counts)
	if len(c.Findings) > 0 {
		fmt.Fprintf(w, "bugs from ≥3-step queries: %d/%d (%.0f%%; paper: 80%%)\n",
			atLeast3, len(c.Findings), 100*float64(atLeast3)/float64(len(c.Findings)))
	}

	// Throughput sweep: queries per second as the step budget grows.
	fmt.Fprintln(w, "throughput by step budget (queries/second):")
	for _, steps := range []int{3, 5, 7, 9} {
		qps := ThroughputForSteps(steps, 40)
		fmt.Fprintf(w, "  %d steps: %.0f q/s\n", steps, qps)
	}
	return bySteps
}

// ThroughputForSteps measures synthesis+execution throughput at a given
// step budget on the reference engine.
func ThroughputForSteps(maxSteps, queries int) float64 {
	r := rand.New(rand.NewSource(int64(maxSteps)))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 10, MaxRels: 40})
	ref := gdb.NewReference()
	if err := ref.Reset(g, schema); err != nil {
		// The reference connector has no schema requirement; a failed
		// Reset means the harness itself is broken, not the measurement.
		panic(fmt.Errorf("reset %s: %w", ref.Name(), err))
	}
	cfg := core.DefaultConfig()
	cfg.MaxSteps = maxSteps
	syn := core.NewSynthesizer(r, g, schema, cfg)
	start := time.Now()
	done := 0
	for done < queries {
		gt := core.SelectGroundTruth(r, g, 4)
		sq, err := syn.Synthesize(gt)
		if err != nil {
			continue
		}
		ref.Execute(sq.Text)
		done++
	}
	return float64(done) / time.Since(start).Seconds()
}

// Fig11 reproduces Figure 11: aggregated clause counts across the
// bug-triggering queries.
func Fig11(w io.Writer, c *Campaign) map[string]int {
	agg := map[string]int{}
	for _, f := range c.Findings {
		if f.Features == nil {
			continue
		}
		for name, n := range f.Features.ClauseCounts {
			agg[name] += n
		}
	}
	names := sortedKeysByCount(agg)
	var labels []string
	var counts []int
	for _, n := range names {
		labels = append(labels, n)
		counts = append(counts, agg[n])
	}
	histogram(w, "Figure 11: aggregated clause occurrences in bug-triggering queries", labels, counts)
	return agg
}

// Fig12 reproduces Figure 12: the number of bugs whose triggering query
// involves each clause type.
func Fig12(w io.Writer, c *Campaign) map[string]int {
	agg := map[string]int{}
	for _, f := range c.Findings {
		if f.Features == nil {
			continue
		}
		for name, n := range f.Features.ClauseCounts {
			if n > 0 {
				agg[name]++
			}
		}
	}
	names := sortedKeysByCount(agg)
	var labels []string
	var counts []int
	for _, n := range names {
		labels = append(labels, n)
		counts = append(counts, agg[n])
	}
	histogram(w, "Figure 12: bugs related to each clause type", labels, counts)
	orderByOrWith := 0
	for _, f := range c.Findings {
		if f.Features != nil && (f.Features.ClauseCounts["ORDER BY"] > 0 || f.Features.ClauseCounts["WITH"] > 0) {
			orderByOrWith++
		}
	}
	fmt.Fprintf(w, "bugs with ORDER BY or WITH: %d/%d (paper: 24/36)\n", orderByOrWith, len(c.Findings))
	return agg
}

// bucketCounts buckets finding feature values.
func bucketCounts(c *Campaign, val func(*Finding) int, bounds []int) []int {
	counts := make([]int, len(bounds)+1)
	for _, f := range c.Findings {
		v := val(f)
		placed := false
		for i, b := range bounds {
			if v <= b {
				counts[i]++
				placed = true
				break
			}
		}
		if !placed {
			counts[len(bounds)]++
		}
	}
	return counts
}

func bucketLabels(bounds []int) []string {
	var out []string
	prev := 0
	for _, b := range bounds {
		out = append(out, fmt.Sprintf("%d-%d", prev, b))
		prev = b + 1
	}
	out = append(out, fmt.Sprintf(">%d", bounds[len(bounds)-1]))
	return out
}

// Fig13 reproduces Figure 13: bug distribution by cross-clause
// dependency count.
func Fig13(w io.Writer, c *Campaign) []int {
	bounds := []int{10, 20, 30, 40}
	counts := bucketCounts(c, func(f *Finding) int { return f.Features.CrossRefs }, bounds)
	histogram(w, "Figure 13: bugs by number of cross-clause dependencies", bucketLabels(bounds), counts)
	over20 := 0
	for _, f := range c.Findings {
		if f.Features.CrossRefs > 20 {
			over20++
		}
	}
	if len(c.Findings) > 0 {
		fmt.Fprintf(w, "bugs with >20 dependencies: %d/%d (%.0f%%; paper: >61%%)\n",
			over20, len(c.Findings), 100*float64(over20)/float64(len(c.Findings)))
	}
	return counts
}

// Fig14 reproduces Figure 14: bug distribution by pattern count.
func Fig14(w io.Writer, c *Campaign) []int {
	bounds := []int{1, 3, 5, 7}
	counts := bucketCounts(c, func(f *Finding) int { return f.Features.Patterns }, bounds)
	histogram(w, "Figure 14: bugs by number of search patterns", bucketLabels(bounds), counts)
	over3 := 0
	for _, f := range c.Findings {
		if f.Features.Patterns > 3 {
			over3++
		}
	}
	if len(c.Findings) > 0 {
		fmt.Fprintf(w, "bugs with >3 patterns: %d/%d (%.0f%%; paper: two-thirds)\n",
			over3, len(c.Findings), 100*float64(over3)/float64(len(c.Findings)))
	}
	return counts
}

// Fig15 reproduces Figure 15: bug distribution by maximum expression
// nesting depth.
func Fig15(w io.Writer, c *Campaign) []int {
	bounds := []int{3, 5, 8, 11}
	counts := bucketCounts(c, func(f *Finding) int { return f.Features.MaxExprDepth }, bounds)
	histogram(w, "Figure 15: bugs by expression nesting depth", bucketLabels(bounds), counts)
	over5 := 0
	for _, f := range c.Findings {
		if f.Features.MaxExprDepth > 5 {
			over5++
		}
	}
	if len(c.Findings) > 0 {
		fmt.Fprintf(w, "bugs with >5 nesting levels: %d/%d (%.0f%%; paper: 83%%)\n",
			over5, len(c.Findings), 100*float64(over5)/float64(len(c.Findings)))
	}
	return counts
}

// Fig18 reproduces Figure 18: cumulative distinct bugs over the campaign
// timeline for Neo4j and FalkorDB, per tester.
func Fig18(w io.Writer, campaigns map[string]map[string]*TesterCampaign, rounds int) {
	fmt.Fprintln(w, "Figure 18: cumulative bugs over the campaign (rounds on the x axis)")
	for _, gdbName := range []string{"neo4j", "falkordb"} {
		fmt.Fprintf(w, "-- %s --\n", gdbName)
		for _, tester := range []string{"gdsmith", "gdbmeter", "gamera", "gqt", "grev", "gqs"} {
			tc := campaigns[tester][gdbName]
			if tc == nil {
				continue
			}
			// Render the cumulative count at 10 checkpoints.
			line := fmt.Sprintf("%-9s", tester)
			for i := 1; i <= 10; i++ {
				cut := rounds * i / 10
				n := 0
				for _, ev := range tc.Events {
					if ev.Round <= cut {
						n++
					}
				}
				line += fmt.Sprintf(" %2d", n)
			}
			fmt.Fprintln(w, line)
		}
	}
}

func sortedKeysByCount(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if m[keys[i]] != m[keys[j]] {
			return m[keys[i]] > m[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}
