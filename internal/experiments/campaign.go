// Package experiments implements the harness that regenerates every
// table and figure of the GQS paper's evaluation (§5) against the
// simulated GDBs. Each experiment returns a structured result and can
// render itself as a text table; the gqs-bench command and the root
// benchmark suite drive them.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"gqs/internal/baselines"
	"gqs/internal/core"
	"gqs/internal/engine"
	"gqs/internal/faults"
	"gqs/internal/gdb"
	"gqs/internal/graph"
	"gqs/internal/metrics"
)

// Finding is one distinct bug discovered during a campaign, with the
// first query that triggered it.
type Finding struct {
	Bug      *faults.Bug
	GDB      string
	Query    string
	Features *metrics.Features
	Steps    int // synthesis steps (GQS findings only)
	AtQuery  int // canonical campaign query index of first detection
	Graph    *graph.Graph
	Schema   *graph.Schema
	// Shard is the logical shard (iteration) of first detection; 0 in
	// the legacy sequential executor.
	Shard int
	// Latency is the wall-clock time from campaign start to the
	// detection — the time-to-bug metric. Excluded from the canonical
	// report: it depends on the hardware, not the seed.
	Latency time.Duration
}

// Campaign is the outcome of one GQS testing campaign across the four
// simulated GDBs — the raw material for Table 3 and Figures 10–15.
type Campaign struct {
	Findings []*Finding
	Queries  int
	Skips    int
	// Robust sums what the resilience layer absorbed across all targets
	// (timeouts, retries, restarts, breaker trips, downtime).
	Robust core.RobustnessStats
	// Workers is the worker-pool size the campaign ran with (0 = legacy
	// sequential executor); Wall is its wall-clock time and Throughput
	// the final meter reading (sharded campaigns only).
	Workers    int
	Wall       time.Duration
	Throughput metrics.Throughput
}

// CampaignConfig bounds a GQS campaign.
type CampaignConfig struct {
	Seed       int64
	Iterations int // graph generations per GDB
	Graph      graph.GenConfig
	Synth      core.Config
	// Live makes injected faults manifest for real — hangs block until
	// the watchdog cancels them, crashes panic inside the connector —
	// instead of returning simulated errors.
	Live bool
	// FlakyRate wraps each target in a gdb.Flaky injector dropping this
	// fraction of calls with transient errors (0 disables).
	FlakyRate float64
	// Robust bounds the runner's resilience layer (zero ⇒ defaults).
	Robust core.RobustnessConfig
	// Workers selects the executor: 0 keeps the legacy sequential
	// single-RNG-stream runner; >= 1 runs the sharded parallel executor
	// (core.RunParallel), whose merged bug set is identical for every
	// worker count at the same seed. Workers == 1 is the sharded
	// executor on one worker, not the legacy runner.
	Workers int
	// Batch is the sharded executor's work-unit size: each unit a worker
	// drains is Batch contiguous logical iterations. 0 selects an
	// automatic size from Iterations and Workers (see ResolvedBatch);
	// results are byte-identical for every batch size.
	Batch int
}

// ResolvedBatch is the effective work-unit size of the sharded
// executor. The automatic choice aims at ~4 units per worker — coarse
// enough to amortize per-unit scheduling and checkpoint costs, fine
// enough that a straggler unit cannot idle the pool — and is a pure
// function of the config (it feeds the checkpoint fingerprint, which
// must not depend on the machine).
func (cfg CampaignConfig) ResolvedBatch() int {
	if cfg.Batch > 0 {
		return cfg.Batch
	}
	if cfg.Workers < 1 {
		return 1
	}
	b := cfg.Iterations / (cfg.Workers * 4)
	if b < 1 {
		b = 1
	}
	if b > 16 {
		b = 16
	}
	return b
}

// DefaultCampaignConfig is sized so the full Table 3 campaign runs in
// seconds while exercising the same parameter ranges as §5.1.
func DefaultCampaignConfig() CampaignConfig {
	return CampaignConfig{
		Seed:       1,
		Iterations: 60,
		Graph:      graph.GenConfig{MaxNodes: 13, MaxRels: 60},
		Synth:      core.DefaultConfig(),
	}
}

// RunGQSCampaign runs GQS against every simulated GDB, deduplicating
// findings by injected-fault identity (the ground truth the paper's
// manual deduplication approximates). With cfg.Workers >= 1 the campaign
// runs on the sharded parallel executor (see parallel.go).
func RunGQSCampaign(cfg CampaignConfig) *Campaign {
	if cfg.Workers >= 1 {
		return runShardedCampaign(cfg)
	}
	c := &Campaign{}
	for _, sim := range gdb.All() {
		c.runOn(sim, cfg)
	}
	return c
}

// campaignRunnerConfig is the one runner configuration every campaign
// executor — sequential, sharded, durable — derives from a
// CampaignConfig. Keeping it single-sourced is what lets the checkpoint
// fingerprint and the RNG fast-forward agree with the live executors.
func campaignRunnerConfig(cfg CampaignConfig) core.RunnerConfig {
	return core.RunnerConfig{
		Seed:            cfg.Seed,
		Graph:           cfg.Graph,
		Synth:           cfg.Synth,
		QueriesPerGraph: 6,
		QueriesPerGT:    2,
		Robust:          cfg.Robust,
	}
}

func (c *Campaign) runOn(sim *gdb.Sim, cfg CampaignConfig) {
	seen := map[string]bool{}
	for _, f := range c.Findings {
		seen[f.Bug.ID] = true
	}
	rcfg := campaignRunnerConfig(cfg)
	sim.SetLiveFaults(cfg.Live)
	var tgt gdb.Connector = sim
	if cfg.FlakyRate > 0 {
		tgt = gdb.NewFlaky(sim, gdb.FlakyConfig{
			Seed:           cfg.Seed + 0x5eed,
			ErrorRate:      cfg.FlakyRate,
			ResetErrorRate: cfg.FlakyRate / 2,
		})
	}
	rn := core.NewRunner(tgt, rcfg)
	rn.Run(cfg.Iterations, func(tc *core.TestCase) {
		c.Queries++
		switch tc.Verdict {
		case core.VerdictSkip:
			c.Skips++
			return
		case core.VerdictPass:
			return
		}
		b := tgt.TriggeredBug()
		if b == nil || seen[b.ID] {
			return
		}
		seen[b.ID] = true
		c.Findings = append(c.Findings, &Finding{
			Bug:      b,
			GDB:      sim.Name(),
			Query:    tc.Query,
			Features: featuresOf(tc),
			Steps:    tc.Steps,
			AtQuery:  c.Queries,
			Graph:    tc.Graph,
			Schema:   tc.Schema,
		})
	})
	c.Robust.Add(rn.Stats().Robust)
}

// featuresOf returns the test case's feature vector: the one the
// prepared execution path already computed when available, a fresh
// analysis only for text-path targets. The prepared vector is the same
// one the target's fault triggers evaluated, so findings are reported
// with exactly the features that selected their bug.
func featuresOf(tc *core.TestCase) *metrics.Features {
	if tc.Features != nil {
		return tc.Features
	}
	return metrics.Analyze(tc.Query)
}

// ByGDB groups findings per GDB.
func (c *Campaign) ByGDB() map[string][]*Finding {
	out := map[string][]*Finding{}
	for _, f := range c.Findings {
		out[f.GDB] = append(out[f.GDB], f)
	}
	return out
}

// LogicFindings returns the logic-bug findings only.
func (c *Campaign) LogicFindings() []*Finding {
	var out []*Finding
	for _, f := range c.Findings {
		if f.Bug.Kind.IsLogic() {
			out = append(out, f)
		}
	}
	return out
}

// recordingTarget wraps a connector and records every injected fault any
// executed query triggered — the ground-truth attribution used when a
// baseline tester's oracle runs several queries per round.
type recordingTarget struct {
	sim  *gdb.Sim
	bugs map[string]*faults.Bug
}

func newRecordingTarget(sim *gdb.Sim) *recordingTarget {
	return &recordingTarget{sim: sim, bugs: map[string]*faults.Bug{}}
}

func (rt *recordingTarget) Name() string           { return rt.sim.Name() }
func (rt *recordingTarget) RelUniqueness() bool    { return rt.sim.RelUniqueness() }
func (rt *recordingTarget) ProvidesDBLabels() bool { return rt.sim.ProvidesDBLabels() }

func (rt *recordingTarget) Reset(g *graph.Graph, schema *graph.Schema) error {
	return rt.sim.Reset(g, schema)
}

func (rt *recordingTarget) Execute(q string) (*engine.Result, error) {
	return rt.ExecuteCtx(context.Background(), q)
}

func (rt *recordingTarget) ExecuteCtx(ctx context.Context, q string) (*engine.Result, error) {
	res, err := rt.sim.ExecuteCtx(ctx, q)
	if b := rt.sim.TriggeredBug(); b != nil {
		rt.bugs[b.ID] = b
	}
	return res, err
}

func (rt *recordingTarget) drain() []*faults.Bug {
	var out []*faults.Bug
	for _, b := range rt.bugs {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	rt.bugs = map[string]*faults.Bug{}
	return out
}

// TesterEvent is one detection during a baseline (or GQS) campaign, for
// the Figure 18 cumulative curves.
type TesterEvent struct {
	Round int
	Bug   *faults.Bug
}

// TesterCampaign is the outcome of one tester × GDB budgeted campaign.
type TesterCampaign struct {
	Tester         string
	GDB            string
	Rounds         int
	Found          map[string]*faults.Bug
	Events         []TesterEvent
	FalsePositives int
}

// LogicCount returns the number of distinct logic bugs found.
func (tc *TesterCampaign) LogicCount() int {
	n := 0
	for _, b := range tc.Found {
		if b.Kind.IsLogic() {
			n++
		}
	}
	return n
}

// RunBaselineCampaign runs one baseline tester against one simulated GDB
// for a fixed number of oracle rounds, regenerating the graph every
// graphEvery rounds (the instance restarts with it, as all these tools
// do between databases).
func RunBaselineCampaign(tester baselines.Tester, gdbName string, rounds int, seed int64) (*TesterCampaign, error) {
	sim, err := gdb.ByName(gdbName)
	if err != nil {
		return nil, err
	}
	out := &TesterCampaign{Tester: tester.Name(), GDB: gdbName, Rounds: rounds, Found: map[string]*faults.Bug{}}
	if !tester.Supports(gdbName) {
		return out, nil
	}
	r := rand.New(rand.NewSource(seed))
	rt := newRecordingTarget(sim)

	// GDsmith compares against the other systems; give it the pristine
	// reference plus one other dialect, like its multi-GDB setup.
	if gds, ok := tester.(*baselines.GDsmith); ok {
		peerName := "memgraph"
		if gdbName == "memgraph" {
			peerName = "falkordb"
		}
		peer, _ := gdb.ByName(peerName)
		gds.Peers = []core.Target{newRecordingPeer(peer)}
		defer func() { gds.Peers = nil }()
	}

	const graphEvery = 10
	var g *graph.Graph
	var schema *graph.Schema
	for round := 0; round < rounds; round++ {
		if round%graphEvery == 0 {
			g, schema = graph.Generate(r, graph.GenConfig{MaxNodes: 10, MaxRels: 30})
			if err := rt.Reset(g, schema); err != nil {
				return nil, fmt.Errorf("reset %s: %w", rt.Name(), err)
			}
			if gds, ok := tester.(*baselines.GDsmith); ok {
				for _, p := range gds.Peers {
					if err := p.Reset(g, schema); err != nil {
						return nil, fmt.Errorf("reset peer %s: %w", p.Name(), err)
					}
				}
			}
		}
		rep := tester.Test(r, rt, g, schema)
		triggered := rt.drain()
		// Discard peer-side triggers: the Table 6 columns count bugs of
		// the GDB under test. (A peer-only discrepancy is a true report
		// about another system, but not a find for this column.)
		if gds, ok := tester.(*baselines.GDsmith); ok {
			for _, p := range gds.Peers {
				if rp, ok := p.(*recordingPeer); ok {
					rp.rt.drain()
				}
			}
		}
		detected := rep.Violated || hasBugError(rep.Err)
		if !detected {
			continue
		}
		var own []*faults.Bug
		for _, b := range triggered {
			if b.GDB == gdbName {
				own = append(own, b)
			}
		}
		if len(own) == 0 {
			out.FalsePositives++
			continue
		}
		for _, b := range own {
			if _, dup := out.Found[b.ID]; !dup {
				out.Found[b.ID] = b
				out.Events = append(out.Events, TesterEvent{Round: round, Bug: b})
			}
		}
	}
	return out, nil
}

// recordingPeer adapts a recording target for the GDsmith peer slot.
type recordingPeer struct{ rt *recordingTarget }

func newRecordingPeer(sim *gdb.Sim) *recordingPeer {
	return &recordingPeer{rt: newRecordingTarget(sim)}
}

func (p *recordingPeer) Name() string           { return p.rt.Name() }
func (p *recordingPeer) RelUniqueness() bool    { return p.rt.RelUniqueness() }
func (p *recordingPeer) ProvidesDBLabels() bool { return p.rt.ProvidesDBLabels() }
func (p *recordingPeer) Reset(g *graph.Graph, s *graph.Schema) error {
	return p.rt.Reset(g, s)
}
func (p *recordingPeer) Execute(q string) (*engine.Result, error) { return p.rt.Execute(q) }
func (p *recordingPeer) ExecuteCtx(ctx context.Context, q string) (*engine.Result, error) {
	return p.rt.ExecuteCtx(ctx, q)
}

func hasBugError(err error) bool {
	if err == nil {
		return false
	}
	var be interface{ BugID() string }
	if asErr(err, &be) {
		return true
	}
	return false
}

func asErr(err error, target *interface{ BugID() string }) bool {
	for err != nil {
		if b, ok := err.(interface{ BugID() string }); ok {
			*target = b
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// RunGQSTimeline runs GQS against one GDB with a round budget, emitting
// detection events comparable to the baseline campaigns (one "round" is
// one synthesized query).
func RunGQSTimeline(gdbName string, rounds int, seed int64) (*TesterCampaign, error) {
	sim, err := gdb.ByName(gdbName)
	if err != nil {
		return nil, err
	}
	out := &TesterCampaign{Tester: "gqs", GDB: gdbName, Rounds: rounds, Found: map[string]*faults.Bug{}}
	cfg := core.RunnerConfig{
		Seed:            seed,
		Graph:           graph.GenConfig{MaxNodes: 10, MaxRels: 30},
		Synth:           core.DefaultConfig(),
		QueriesPerGraph: 5,
		QueriesPerGT:    2,
	}
	rn := core.NewRunner(sim, cfg)
	round := 0
	// Stall guard: RunIteration no longer errors on a dead target (it
	// records a failed iteration and returns), so a permanently-down
	// instance must not spin this budget loop forever.
	const maxStalls = 25
	stalls := 0
	for round < rounds && stalls < maxStalls {
		before := round
		err := rn.RunIteration(func(tc *core.TestCase) {
			round++
			if round > rounds {
				return
			}
			if tc.Verdict != core.VerdictLogicBug && tc.Verdict != core.VerdictErrorBug {
				return
			}
			b := sim.TriggeredBug()
			if b == nil {
				return
			}
			if _, dup := out.Found[b.ID]; !dup {
				out.Found[b.ID] = b
				out.Events = append(out.Events, TesterEvent{Round: round, Bug: b})
			}
		})
		if err != nil {
			return nil, err
		}
		if round == before {
			stalls++
		} else {
			stalls = 0
		}
	}
	return out, nil
}

// fmtF is a compact float formatter for the rendered tables.
func fmtF(v float64) string { return fmt.Sprintf("%.2f", v) }
