package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"
)

// BenchResult is the machine-readable outcome of the sharded-executor
// throughput bench: the same fixed-seed campaign at 1 worker and at N
// workers, plus the cross-check that both found the identical bug set
// (the determinism contract, measured rather than assumed).
type BenchResult struct {
	Seed       int64 `json:"seed"`
	Iterations int   `json:"iterations"`
	GOMAXPROCS int   `json:"gomaxprocs"`

	BaselineWorkers int     `json:"baseline_workers"`
	BaselineSeconds float64 `json:"baseline_seconds"`
	BaselineIterSec float64 `json:"baseline_iterations_per_sec"`

	ParallelWorkers int     `json:"parallel_workers"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	ParallelIterSec float64 `json:"parallel_iterations_per_sec"`

	Speedup          float64 `json:"speedup"`
	Findings         int     `json:"findings"`
	IdenticalBugSets bool    `json:"identical_bug_sets"`
}

// RunThroughputBench runs the bench and renders a short human summary to
// w. workers <= 0 selects GOMAXPROCS. Note the speedup is bounded by the
// machine: on a single-core runner it hovers around 1.0 by construction.
func RunThroughputBench(w io.Writer, seed int64, iterations, workers int) BenchResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cfg := DefaultCampaignConfig()
	cfg.Seed = seed
	cfg.Iterations = iterations
	run := func(n int) (*Campaign, float64) {
		c := cfg
		c.Workers = n
		start := time.Now()
		out := RunGQSCampaign(c)
		return out, time.Since(start).Seconds()
	}
	base, baseSec := run(1)
	par, parSec := run(workers)

	res := BenchResult{
		Seed:             seed,
		Iterations:       iterations,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		BaselineWorkers:  1,
		BaselineSeconds:  baseSec,
		ParallelWorkers:  workers,
		ParallelSeconds:  parSec,
		Findings:         len(par.Findings),
		IdenticalBugSets: base.CanonicalBugReport() == par.CanonicalBugReport(),
	}
	// Per-GDB iterations: the campaign runs Iterations shards against
	// each of the four sims, so rate totals use the meter's count.
	if baseSec > 0 {
		res.BaselineIterSec = float64(base.Throughput.Iterations) / baseSec
	}
	if parSec > 0 {
		res.ParallelIterSec = float64(par.Throughput.Iterations) / parSec
	}
	if parSec > 0 {
		res.Speedup = baseSec / parSec
	}

	fmt.Fprintf(w, "== Sharded-executor throughput (seed %d, %d iterations/GDB, GOMAXPROCS %d) ==\n",
		seed, iterations, res.GOMAXPROCS)
	fmt.Fprintf(w, "workers=1:  %6.2fs  %7.1f iterations/s\n", baseSec, res.BaselineIterSec)
	fmt.Fprintf(w, "workers=%d:  %6.2fs  %7.1f iterations/s\n", workers, parSec, res.ParallelIterSec)
	fmt.Fprintf(w, "speedup: %.2fx; identical bug sets: %v (%d findings)\n",
		res.Speedup, res.IdenticalBugSets, res.Findings)
	return res
}

// WriteJSON writes the bench result to path, pretty-printed.
func (r BenchResult) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
