package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"gqs/internal/core"
	"gqs/internal/cypher/parser"
	"gqs/internal/engine"
	"gqs/internal/gdb"
	"gqs/internal/graph"
)

// BenchResult is the machine-readable outcome of the sharded-executor
// throughput bench: the same fixed-seed campaign at 1 worker and at N
// workers, plus the cross-check that both found the identical bug set
// (the determinism contract, measured rather than assumed), plus the
// parse-share micro-comparison of the prepared-execution layer
// (DESIGN.md §8).
type BenchResult struct {
	Seed       int64 `json:"seed"`
	Iterations int   `json:"iterations"`
	GOMAXPROCS int   `json:"gomaxprocs"`

	BaselineWorkers int     `json:"baseline_workers"`
	BaselineSeconds float64 `json:"baseline_seconds"`
	BaselineIterSec float64 `json:"baseline_iterations_per_sec"`

	ParallelWorkers int     `json:"parallel_workers"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	ParallelIterSec float64 `json:"parallel_iterations_per_sec"`

	// ParallelGOMAXPROCS is the GOMAXPROCS the parallel leg ran under;
	// it is forced to at least 2 so the sharded executor's determinism
	// and throughput are always exercised with real goroutine
	// interleaving, even on single-CPU runners.
	ParallelGOMAXPROCS int `json:"parallel_gomaxprocs,omitempty"`

	Speedup          float64 `json:"speedup"`
	Findings         int     `json:"findings"`
	IdenticalBugSets bool    `json:"identical_bug_sets"`

	// ParallelEfficiency is Speedup divided by ParallelWorkers: the
	// fraction of ideal linear scaling the sharded executor achieves.
	// bench-regress gates this against prior results recorded at the same
	// worker count, so executor-overhead regressions show up even when
	// absolute throughput moves with the hardware.
	ParallelEfficiency float64 `json:"parallel_efficiency,omitempty"`

	// CampaignNsPerIter and CampaignAllocsPerIter are the wall-clock and
	// heap-allocation cost of one campaign iteration on the single-worker
	// leg — the numbers the perf-regression gate tracks across PRs.
	CampaignNsPerIter     float64 `json:"campaign_ns_per_iteration,omitempty"`
	CampaignAllocsPerIter float64 `json:"campaign_allocs_per_iteration,omitempty"`

	// BugReportFNV is a 64-bit FNV-1a digest of the campaign's canonical
	// bug report, so bench-regress can compare bug sets across result
	// files without embedding every finding.
	BugReportFNV string `json:"bug_report_fnv,omitempty"`

	// ParseShare is the micro-comparison of one oracle check (one
	// synthesized query validated on all five dialects) through the text
	// path versus the prepared path.
	ParseShare *ParseShareResult `json:"parse_share,omitempty"`

	// PlanExec is the micro-comparison of prepared execution on compiled
	// physical plans versus the tree-walking interpreter (DESIGN.md §12).
	PlanExec *PlanExecResult `json:"plan_exec,omitempty"`

	// Snapshot is the micro-comparison of the copy-on-write Reset path
	// against the legacy deep-clone Reset (DESIGN.md §9).
	Snapshot *SnapshotBenchResult `json:"snapshot,omitempty"`

	// Checkpoint is the durable-campaign overhead comparison: the same
	// single-worker campaign with and without a checkpoint journal
	// (DESIGN.md §10).
	Checkpoint *CheckpointBenchResult `json:"checkpoint,omitempty"`

	// LargeGraph is the bulk-generation and index-backed-expansion leg:
	// a 100k-node power-law graph bulk-loaded in one pass, anchored
	// per-hop match latency, and hub expansion index vs scan
	// (DESIGN.md §13).
	LargeGraph *LargeGraphBenchResult `json:"large_graph,omitempty"`
}

// CheckpointBenchResult quantifies what crash-safe checkpointing costs a
// campaign. The legs run as Reps adjacent plain/durable pairs and
// OverheadPct is the median of the per-pair wall-clock ratios: machine
// load hits both halves of a pair alike, so the common mode cancels
// where a lone plain-then-durable measurement once booked 16.8% of
// scheduling noise as "overhead" next to 0.24% of attributed write
// time. With Reps >= 2 the median is tight enough that bench-regress
// gates the total OverheadPct directly (alongside the attributed-I/O
// WritePct, which has always been gated).
type CheckpointBenchResult struct {
	Every           int     `json:"every"`
	Reps            int     `json:"reps,omitempty"`
	PlainSeconds    float64 `json:"plain_seconds"`
	DurableSeconds  float64 `json:"durable_seconds"`
	OverheadPct     float64 `json:"overhead_pct"`
	WriteSeconds    float64 `json:"write_seconds"`
	WritePct        float64 `json:"write_pct"`
	Checkpoints     int     `json:"checkpoints"`
	CheckpointBytes int64   `json:"checkpoint_bytes"`
	// DigestOK is the durability cross-check: the durable campaign's
	// canonical bug report equals the plain campaign's, on every rep.
	DigestOK bool `json:"digest_ok"`
}

// measureCheckpointOverhead times the same single-worker campaign plain
// and under a checkpoint journal flushing every 100 units, several
// adjacent plain/durable pairs. The recorded seconds are the per-leg
// minima (for context); the gated OverheadPct is the median per-pair
// ratio. Journal I/O stats come from the fastest durable rep (each rep
// writes an identical journal to a fresh file, so any rep's byte and
// checkpoint counts are canonical).
func measureCheckpointOverhead(seed int64, iterations int) *CheckpointBenchResult {
	cfg := DefaultCampaignConfig()
	cfg.Seed = seed
	cfg.Iterations = iterations
	cfg.Workers = 1

	dir, err := os.MkdirTemp("", "gqs-bench-ck")
	if err != nil {
		return nil
	}
	defer os.RemoveAll(dir)

	const every = 100
	const reps = 5

	res := &CheckpointBenchResult{Every: every, Reps: reps, DigestOK: true}
	var plainReport string
	var ratios []float64
	plainSec, durableSec := 0.0, 0.0
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		plain := RunGQSCampaign(cfg)
		psec := time.Since(start).Seconds()
		if rep == 0 || psec < plainSec {
			plainSec = psec
		}
		plainReport = plain.CanonicalBugReport()

		ck, err := core.OpenCheckpoint(core.CheckpointConfig{
			Path: fmt.Sprintf("%s/bench-%d.journal", dir, rep), Every: every,
		}, CampaignFingerprint(cfg))
		if err != nil {
			return nil
		}
		start = time.Now()
		durable := RunGQSCampaignDurable(context.Background(), cfg, ck)
		ck.Flush() //nolint:errcheck // stats below carry any failure
		dsec := time.Since(start).Seconds()
		st := ck.Stats()
		ck.Close()
		if rep == 0 || dsec < durableSec {
			durableSec = dsec
			res.WriteSeconds = st.WriteTime.Seconds()
			res.Checkpoints = st.Written
			res.CheckpointBytes = st.Bytes
		}
		if psec > 0 {
			ratios = append(ratios, dsec/psec)
		}
		if durable.CanonicalBugReport() != plainReport {
			res.DigestOK = false
		}
	}

	res.PlainSeconds = plainSec
	res.DurableSeconds = durableSec
	res.OverheadPct = (median(ratios) - 1) * 100
	if durableSec > 0 {
		res.WritePct = res.WriteSeconds / durableSec * 100
	}
	return res
}

// median of a small sample; 0 on an empty one.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// SnapshotBenchResult quantifies what copy-on-write snapshots buy the
// campaign's hottest operation: resetting a target between oracle
// checks. Three reset flavors are timed on the same generated graph:
// the read-only path (clean overlay, the common case — O(1) by
// construction), the after-write path (a SET clause dirtied the
// overlay, reset drops only the touched entries), and the legacy
// deep-clone Reset after the same write.
type SnapshotBenchResult struct {
	GraphNodes int `json:"graph_nodes"`
	GraphRels  int `json:"graph_rels"`
	Reps       int `json:"reps"`

	ResetReadOnlyNs   float64 `json:"reset_readonly_ns"`
	ResetAfterWriteNs float64 `json:"reset_after_write_ns"`
	ResetCloneNs      float64 `json:"reset_clone_ns"`

	// OverlayCopiesPerWriteReset is how many elements the overlay
	// promoted (copied) per write+reset cycle — the COW working set,
	// versus GraphNodes+GraphRels the clone path copies unconditionally.
	OverlayCopiesPerWriteReset float64 `json:"overlay_copies_per_write_reset"`

	// CloneVsCOWSpeedup is reset_clone_ns / reset_after_write_ns: the
	// factor the COW path wins by even when the overlay is dirty.
	CloneVsCOWSpeedup float64 `json:"clone_vs_cow_speedup"`
}

// measureSnapshotReset runs the reset micro-comparison on a generated
// graph sized like a campaign graph.
func measureSnapshotReset(seed int64) *SnapshotBenchResult {
	r := rand.New(rand.NewSource(seed))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 24, MaxRels: 80})
	snap := g.Seal()
	cow := gdb.NewReference()
	legacy := gdb.NewReference()
	if cow.ResetSnapshot(snap, schema) != nil || legacy.Reset(g, schema) != nil {
		return nil
	}
	const reps = 200
	// A write clause that touches every node, dirtying the overlay the
	// way a synthesized updating query would.
	const write = "MATCH (n) SET n.bench_touch = 1"

	res := &SnapshotBenchResult{
		GraphNodes: snap.NumNodes(),
		GraphRels:  snap.NumRels(),
		Reps:       reps,
	}

	// Read-only path: clean overlay, reset is a pointer swap.
	start := time.Now()
	for i := 0; i < reps; i++ {
		cow.ResetSnapshot(snap, schema) //nolint:errcheck // same snapshot as above
	}
	res.ResetReadOnlyNs = float64(time.Since(start).Nanoseconds()) / reps

	// After-write path: dirty the overlay each cycle, time only the reset.
	copies0 := cow.Engine().Store().COWCopies().Total()
	var resetTime time.Duration
	for i := 0; i < reps; i++ {
		cow.Execute(write) //nolint:errcheck // write is well-formed by construction
		t0 := time.Now()
		cow.ResetSnapshot(snap, schema) //nolint:errcheck // as above
		resetTime += time.Since(t0)
	}
	res.ResetAfterWriteNs = float64(resetTime.Nanoseconds()) / reps
	res.OverlayCopiesPerWriteReset =
		float64(cow.Engine().Store().COWCopies().Total()-copies0) / reps

	// Legacy path: the same write, then the deep-clone Reset. (The write
	// is required — a clean store short-circuits Reset entirely.)
	resetTime = 0
	for i := 0; i < reps; i++ {
		legacy.Execute(write) //nolint:errcheck // as above
		t0 := time.Now()
		legacy.Reset(g, schema) //nolint:errcheck // same graph as above
		resetTime += time.Since(t0)
	}
	res.ResetCloneNs = float64(resetTime.Nanoseconds()) / reps
	if res.ResetAfterWriteNs > 0 {
		res.CloneVsCOWSpeedup = res.ResetCloneNs / res.ResetAfterWriteNs
	}
	return res
}

// PlanExecResult quantifies what compiled plans save per oracle check
// (one prepared query executed on all five dialects): wall-clock and
// allocations with plan execution on versus off, over the identical
// synthesized corpus. IdenticalResults is the differential cross-check —
// every query produced byte-equal results (or the same error) on both
// paths, on every dialect.
type PlanExecResult struct {
	Queries int `json:"queries"`
	Reps    int `json:"reps"`
	// PlannedQueries counts corpus queries that compiled to a physical
	// plan (the rest fall back to the interpreter on both legs).
	PlannedQueries int `json:"planned_queries"`

	InterpNsPerCheck  float64 `json:"interp_ns_per_check"`
	PlannedNsPerCheck float64 `json:"planned_ns_per_check"`
	// Speedup is interpreted/planned wall-clock per oracle check.
	Speedup float64 `json:"speedup"`

	InterpAllocsPerCheck  float64 `json:"interp_allocs_per_check"`
	PlannedAllocsPerCheck float64 `json:"planned_allocs_per_check"`

	IdenticalResults bool `json:"identical_results"`
}

// measurePlanExec runs the plan-vs-interpreter micro-comparison on a
// synthesized corpus. Both legs drive the same five connectors over the
// same prepared queries in the same order; only the engines'
// plan-execution switch differs.
func measurePlanExec(seed int64) *PlanExecResult {
	r := rand.New(rand.NewSource(seed))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 12, MaxRels: 40})
	syn := core.NewSynthesizer(r, g, schema, core.DefaultConfig())
	var pqs []*engine.PreparedQuery
	planned := 0
	for tries := 0; len(pqs) < 24 && tries < 2000; tries++ {
		gt := core.SelectGroundTruth(r, g, 6)
		sq, err := syn.Synthesize(gt)
		if err != nil {
			continue
		}
		pq, err := engine.Prepare(sq.Text)
		if err != nil {
			continue
		}
		pqs = append(pqs, pq)
		if pq.Planned() {
			planned++
		}
	}
	if len(pqs) == 0 {
		return nil
	}
	snap := g.Seal()
	conns := append(gdb.All(), gdb.NewReference())
	for _, c := range conns {
		if err := c.ResetSnapshot(snap, schema); err != nil {
			return nil
		}
	}
	ctx := context.Background()
	const reps = 20
	checks := float64(reps * len(pqs))

	// One pre-pass per leg records a canonical rendering of every
	// (query, dialect) outcome; the legs must agree exactly.
	outcomes := func() []string {
		var out []string
		for _, pq := range pqs {
			for _, c := range conns {
				res, err := c.ExecutePrepared(ctx, pq)
				if err != nil {
					out = append(out, "error: "+err.Error())
				} else {
					out = append(out, strings.Join(res.Canonical(), "\n"))
				}
			}
		}
		return out
	}

	var ms runtime.MemStats
	measure := func() (sec float64, allocs uint64) {
		runtime.ReadMemStats(&ms)
		m0 := ms.Mallocs
		start := time.Now()
		for rep := 0; rep < reps; rep++ {
			for _, pq := range pqs {
				for _, c := range conns {
					c.ExecutePrepared(ctx, pq) //nolint:errcheck // fault-injected errors are part of the workload
				}
			}
		}
		sec = time.Since(start).Seconds()
		runtime.ReadMemStats(&ms)
		return sec, ms.Mallocs - m0
	}

	setPlan := func(on bool) {
		for _, c := range conns {
			c.SetPlanExecution(on)
		}
	}
	setPlan(false)
	interpOut := outcomes()
	interpSec, interpAllocs := measure()
	setPlan(true)
	plannedOut := outcomes()
	plannedSec, plannedAllocs := measure()

	identical := len(interpOut) == len(plannedOut)
	for i := 0; identical && i < len(interpOut); i++ {
		identical = interpOut[i] == plannedOut[i]
	}

	res := &PlanExecResult{
		Queries:               len(pqs),
		Reps:                  reps,
		PlannedQueries:        planned,
		InterpNsPerCheck:      interpSec * 1e9 / checks,
		PlannedNsPerCheck:     plannedSec * 1e9 / checks,
		InterpAllocsPerCheck:  float64(interpAllocs) / checks,
		PlannedAllocsPerCheck: float64(plannedAllocs) / checks,
		IdenticalResults:      identical,
	}
	if plannedSec > 0 {
		res.Speedup = interpSec / plannedSec
	}
	return res
}

// ParseShareResult quantifies what the prepared-execution layer saves
// per oracle check: an oracle check here is one synthesized query
// executed on all five dialects (reference + 4 simulated GDBs). The
// text path re-parses and re-analyzes the query on every dialect; the
// prepared path parses once and shares the AST.
type ParseShareResult struct {
	Queries int `json:"queries"`
	Reps    int `json:"reps"`

	TextNsPerCheck     float64 `json:"text_ns_per_check"`
	PreparedNsPerCheck float64 `json:"prepared_ns_per_check"`
	// Speedup is text/prepared wall-clock per oracle check — the
	// parse-share speedup make bench records.
	Speedup float64 `json:"speedup"`

	TextParsesPerCheck     float64 `json:"text_parses_per_check"`
	PreparedParsesPerCheck float64 `json:"prepared_parses_per_check"`

	TextAllocsPerCheck     float64 `json:"text_allocs_per_check"`
	PreparedAllocsPerCheck float64 `json:"prepared_allocs_per_check"`
}

// measureParseShare runs the micro-comparison on a synthesized corpus.
// Both paths drive the same five connectors over the same queries in the
// same order, so the comparison isolates parsing and per-execution
// allocation cost, not workload differences.
func measureParseShare(seed int64) *ParseShareResult {
	r := rand.New(rand.NewSource(seed))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 12, MaxRels: 40})
	syn := core.NewSynthesizer(r, g, schema, core.DefaultConfig())
	var texts []string
	for tries := 0; len(texts) < 24 && tries < 2000; tries++ {
		gt := core.SelectGroundTruth(r, g, 6)
		if sq, err := syn.Synthesize(gt); err == nil {
			texts = append(texts, sq.Text)
		}
	}
	if len(texts) == 0 {
		return nil
	}
	// All five dialects share one immutable snapshot — the COW load
	// pattern the campaign itself uses.
	snap := g.Seal()
	conns := append(gdb.All(), gdb.NewReference())
	for _, c := range conns {
		if err := c.ResetSnapshot(snap, schema); err != nil {
			return nil
		}
	}
	ctx := context.Background()
	const reps = 20
	checks := float64(reps * len(texts))

	var ms runtime.MemStats
	measure := func(run func(text string)) (sec float64, parses int64, allocs uint64) {
		runtime.ReadMemStats(&ms)
		m0 := ms.Mallocs
		p0 := parser.Parses()
		start := time.Now()
		for rep := 0; rep < reps; rep++ {
			for _, q := range texts {
				run(q)
			}
		}
		sec = time.Since(start).Seconds()
		runtime.ReadMemStats(&ms)
		return sec, parser.Parses() - p0, ms.Mallocs - m0
	}

	textSec, textParses, textAllocs := measure(func(q string) {
		for _, c := range conns {
			c.ExecuteCtx(ctx, q) //nolint:errcheck // fault-injected errors are part of the workload
		}
	})
	prepSec, prepParses, prepAllocs := measure(func(q string) {
		pq, err := engine.Prepare(q)
		if err != nil {
			return
		}
		for _, c := range conns {
			c.ExecutePrepared(ctx, pq) //nolint:errcheck // as above
		}
	})

	res := &ParseShareResult{
		Queries:                len(texts),
		Reps:                   reps,
		TextNsPerCheck:         textSec * 1e9 / checks,
		PreparedNsPerCheck:     prepSec * 1e9 / checks,
		TextParsesPerCheck:     float64(textParses) / checks,
		PreparedParsesPerCheck: float64(prepParses) / checks,
		TextAllocsPerCheck:     float64(textAllocs) / checks,
		PreparedAllocsPerCheck: float64(prepAllocs) / checks,
	}
	if prepSec > 0 {
		res.Speedup = textSec / prepSec
	}
	return res
}

// RunThroughputBench runs the bench and renders a short human summary to
// w. workers <= 0 selects GOMAXPROCS. Note the speedup is bounded by the
// machine: on a single-core runner it hovers around 1.0 by construction.
//
// The two throughput legs run as benchReps adjacent baseline/parallel
// pairs: the per-leg rates use the minimum wall-clock (least scheduler
// noise) and the speedup is the median per-pair ratio, so machine load
// that hits both halves of a pair cancels instead of landing on
// whichever leg drew the noisier run — on a shared runner a single
// campaign run can land 20% slow purely from scheduling, which is
// regression-gate poison. The campaign outcome is deterministic, so
// reps agree on everything but time and any rep's Campaign is
// canonical.
func RunThroughputBench(w io.Writer, seed int64, iterations, workers int) BenchResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cfg := DefaultCampaignConfig()
	cfg.Seed = seed
	cfg.Iterations = iterations
	const benchReps = 3
	run := func(n int) (*Campaign, float64) {
		c := cfg
		c.Workers = n
		start := time.Now()
		out := RunGQSCampaign(c)
		return out, time.Since(start).Seconds()
	}
	// The parallel leg always runs with GOMAXPROCS >= 2 and >= 2 workers,
	// so shard interleaving (and the determinism cross-check) is real even
	// on single-CPU runners.
	if workers < 2 {
		workers = 2
	}
	prevProcs := runtime.GOMAXPROCS(0)
	parProcs := prevProcs
	if parProcs < 2 {
		parProcs = 2
	}
	var base, par *Campaign
	var baseMallocs uint64
	var ratios []float64
	baseSec, parSec := 0.0, 0.0
	var ms runtime.MemStats
	for rep := 0; rep < benchReps; rep++ {
		runtime.ReadMemStats(&ms)
		mallocs0 := ms.Mallocs
		var bsec float64
		base, bsec = run(1)
		runtime.ReadMemStats(&ms)
		if rep == 0 || bsec < baseSec {
			baseSec = bsec
			baseMallocs = ms.Mallocs - mallocs0
		}

		runtime.GOMAXPROCS(parProcs)
		var psec float64
		par, psec = run(workers)
		runtime.GOMAXPROCS(prevProcs)
		if rep == 0 || psec < parSec {
			parSec = psec
		}
		if psec > 0 {
			ratios = append(ratios, bsec/psec)
		}
	}

	res := BenchResult{
		Seed:               seed,
		Iterations:         iterations,
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		BaselineWorkers:    1,
		BaselineSeconds:    baseSec,
		ParallelWorkers:    workers,
		ParallelSeconds:    parSec,
		ParallelGOMAXPROCS: parProcs,
		Findings:           len(par.Findings),
		IdenticalBugSets:   base.CanonicalBugReport() == par.CanonicalBugReport(),
	}
	if n := base.Throughput.Iterations; n > 0 {
		res.CampaignNsPerIter = baseSec * 1e9 / float64(n)
		res.CampaignAllocsPerIter = float64(baseMallocs) / float64(n)
	}
	h := fnv.New64a()
	h.Write([]byte(par.CanonicalBugReport()))
	res.BugReportFNV = fmt.Sprintf("%016x", h.Sum64())
	// Per-GDB iterations: the campaign runs Iterations shards against
	// each of the four sims, so rate totals use the meter's count.
	if baseSec > 0 {
		res.BaselineIterSec = float64(base.Throughput.Iterations) / baseSec
	}
	if parSec > 0 {
		res.ParallelIterSec = float64(par.Throughput.Iterations) / parSec
	}
	res.Speedup = median(ratios)
	if res.ParallelWorkers > 0 {
		res.ParallelEfficiency = res.Speedup / float64(res.ParallelWorkers)
	}
	res.ParseShare = measureParseShare(seed)
	res.PlanExec = measurePlanExec(seed)
	res.Snapshot = measureSnapshotReset(seed)
	res.Checkpoint = measureCheckpointOverhead(seed, iterations)
	res.LargeGraph = measureLargeGraph(seed)

	fmt.Fprintf(w, "== Sharded-executor throughput (seed %d, %d iterations/GDB, GOMAXPROCS %d, min of %d reps) ==\n",
		seed, iterations, res.GOMAXPROCS, benchReps)
	fmt.Fprintf(w, "workers=1:  %6.2fs  %7.1f iterations/s  (%.0f allocs/iteration)\n",
		baseSec, res.BaselineIterSec, res.CampaignAllocsPerIter)
	fmt.Fprintf(w, "workers=%d:  %6.2fs  %7.1f iterations/s  (GOMAXPROCS %d)\n",
		workers, parSec, res.ParallelIterSec, parProcs)
	fmt.Fprintf(w, "speedup: %.2fx (%.0f%% parallel efficiency); identical bug sets: %v (%d findings)\n",
		res.Speedup, res.ParallelEfficiency*100, res.IdenticalBugSets, res.Findings)
	if ps := res.ParseShare; ps != nil {
		fmt.Fprintf(w, "parse share (%d queries x %d reps x 5 dialects):\n", ps.Queries, ps.Reps)
		fmt.Fprintf(w, "  text:     %8.0f ns/check  %5.1f parses/check  %7.0f allocs/check\n",
			ps.TextNsPerCheck, ps.TextParsesPerCheck, ps.TextAllocsPerCheck)
		fmt.Fprintf(w, "  prepared: %8.0f ns/check  %5.1f parses/check  %7.0f allocs/check\n",
			ps.PreparedNsPerCheck, ps.PreparedParsesPerCheck, ps.PreparedAllocsPerCheck)
		fmt.Fprintf(w, "  parse-share speedup: %.2fx\n", ps.Speedup)
	}
	if pe := res.PlanExec; pe != nil {
		fmt.Fprintf(w, "plan exec (%d queries [%d planned] x %d reps x 5 dialects):\n",
			pe.Queries, pe.PlannedQueries, pe.Reps)
		fmt.Fprintf(w, "  interpreter: %8.0f ns/check  %7.0f allocs/check\n",
			pe.InterpNsPerCheck, pe.InterpAllocsPerCheck)
		fmt.Fprintf(w, "  planned:     %8.0f ns/check  %7.0f allocs/check\n",
			pe.PlannedNsPerCheck, pe.PlannedAllocsPerCheck)
		fmt.Fprintf(w, "  plan-exec speedup: %.2fx; identical results: %v\n",
			pe.Speedup, pe.IdenticalResults)
	}
	if sb := res.Snapshot; sb != nil {
		fmt.Fprintf(w, "snapshot reset (%d nodes, %d rels, %d reps):\n",
			sb.GraphNodes, sb.GraphRels, sb.Reps)
		fmt.Fprintf(w, "  read-only:   %8.0f ns/reset\n", sb.ResetReadOnlyNs)
		fmt.Fprintf(w, "  after-write: %8.0f ns/reset  (%.1f overlay copies)\n",
			sb.ResetAfterWriteNs, sb.OverlayCopiesPerWriteReset)
		fmt.Fprintf(w, "  deep-clone:  %8.0f ns/reset  (%.2fx slower than COW)\n",
			sb.ResetCloneNs, sb.CloneVsCOWSpeedup)
	}
	if cb := res.Checkpoint; cb != nil {
		fmt.Fprintf(w, "checkpoint overhead (every %d units, workers=1, min of %d reps):\n",
			cb.Every, cb.Reps)
		fmt.Fprintf(w, "  plain:   %6.2fs   durable: %6.2fs  (%+.2f%% wall-clock, gate <= 1%%)\n",
			cb.PlainSeconds, cb.DurableSeconds, cb.OverheadPct)
		fmt.Fprintf(w, "  journal: %d snapshots, %d bytes, %.4fs write time (%.2f%% of campaign, gate <= 1%%)\n",
			cb.Checkpoints, cb.CheckpointBytes, cb.WriteSeconds, cb.WritePct)
		fmt.Fprintf(w, "  identical bug report plain vs durable: %v\n", cb.DigestOK)
	}
	if lg := res.LargeGraph; lg != nil {
		fmt.Fprintf(w, "large graph (%d nodes, %d rels, power-law):\n", lg.Nodes, lg.Rels)
		fmt.Fprintf(w, "  bulk load: %.2fs gen, %.2fs with indexes => %.0f nodes/s\n",
			lg.GenSeconds, lg.LoadSeconds, lg.NodesPerSec)
		for _, h := range lg.Hops {
			fmt.Fprintf(w, "  %d-hop match: p50 %8.1f us  p95 %8.1f us  (%d anchored queries)\n",
				h.Hops, h.P50Micros, h.P95Micros, h.Queries)
		}
		fmt.Fprintf(w, "  hub expansion (%d arms x %d reps): index %8.0f ns  scan %8.0f ns  => %.1fx; identical results: %v\n",
			lg.HubArms, lg.HubReps, lg.IndexNsPerExec, lg.ScanNsPerExec, lg.IndexVsScan, lg.IdenticalResults)
	}
	return res
}

// HopLatency is one per-hop latency row of the large-graph leg: k-hop
// MATCH chains anchored through the k0 property index at randomly drawn
// nodes, each prepared once and executed a few times with the best run
// kept (the steady-state cost), percentiles taken over the anchor set.
type HopLatency struct {
	Hops      int     `json:"hops"`
	Queries   int     `json:"queries"`
	P50Micros float64 `json:"p50_micros"`
	P95Micros float64 `json:"p95_micros"`
}

// LargeGraphBenchResult is the machine-readable outcome of the
// large-graph leg: how fast a Scale-node power-law graph stands up
// (bulk generation + sealing + the one-shot label/property and
// adjacency index builds), what an anchored match costs per hop depth
// on it, and how index-backed expansion compares against the
// adjacency-list scan on the graph's hubs — the workload the index
// exists for, since a typed expansion from a hub touches one bucket
// instead of walking thousands of entries.
type LargeGraphBenchResult struct {
	Nodes int `json:"nodes"`
	Rels  int `json:"rels"`

	// GenSeconds is graph synthesis alone; LoadSeconds adds sealing and
	// both index builds — the full cost of standing the graph up for
	// querying. NodesPerSec is Nodes / LoadSeconds.
	GenSeconds  float64 `json:"gen_seconds"`
	LoadSeconds float64 `json:"load_seconds"`
	NodesPerSec float64 `json:"bulk_load_nodes_per_sec"`

	Hops []HopLatency `json:"hops"`

	// The hub leg: one UNION ALL query whose arms each probe one of the
	// highest-degree hubs and expand a rare relationship type
	// undirected. The union amortizes fixed per-execution cost over
	// HubArms expansions, so the ratio reflects expansion work, not
	// dispatch overhead. Scan numbers come from the same engine with
	// the adjacency index switched off.
	HubArms          int     `json:"hub_arms"`
	HubReps          int     `json:"hub_reps"`
	IndexNsPerExec   float64 `json:"index_ns_per_exec"`
	ScanNsPerExec    float64 `json:"scan_ns_per_exec"`
	IndexVsScan      float64 `json:"index_vs_scan_speedup"`
	IdenticalResults bool    `json:"identical_results"`
}

const (
	// largeGraphScale/largeGraphRels size the bench graph: 100k nodes,
	// 4 relationships per node (hubs then reach degree in the low
	// thousands under the generator's preferential attachment).
	largeGraphScale = 100_000
	largeGraphRels  = 400_000
	// largeGraphAnchors is how many random anchors each hop depth
	// samples; largeGraphHubArms how many top-degree hubs the
	// index-vs-scan union covers.
	largeGraphAnchors = 48
	largeGraphHubArms = 16
)

// measureLargeGraph runs the large-graph leg. Everything is anchored:
// per-hop chains probe a random node by its indexed k0 property and
// expand typed hops from it, which is the access pattern synthesized
// queries on large graphs must hit to stay fast.
func measureLargeGraph(seed int64) *LargeGraphBenchResult {
	// Best of a few builds: generation is deterministic per seed, so
	// every rep stands up the identical graph and the minimum wall
	// clock is the least-noise measurement (this leg shares a core with
	// the GC on small hosts).
	var genSec, loadSec float64
	var g *graph.Graph
	var snap *graph.Snapshot
	var schema *graph.Schema
	for rep := 0; rep < 3; rep++ {
		runtime.GC()
		r := rand.New(rand.NewSource(seed))
		t0 := time.Now()
		gr, sch := graph.Generate(r, graph.GenConfig{Scale: largeGraphScale, MaxRels: largeGraphRels})
		gs := time.Since(t0).Seconds()
		sn := gr.Seal()
		sn.Index(sch)
		sn.AdjIndex()
		ls := time.Since(t0).Seconds()
		if rep == 0 || ls < loadSec {
			genSec, loadSec = gs, ls
			g, snap, schema = gr, sn, sch
		}
	}

	r := rand.New(rand.NewSource(seed + 1))
	sim := gdb.NewReference()
	if err := sim.ResetSnapshot(snap, schema); err != nil {
		return nil
	}
	ctx := context.Background()
	res := &LargeGraphBenchResult{
		Nodes:       snap.NumNodes(),
		Rels:        snap.NumRels(),
		GenSeconds:  genSec,
		LoadSeconds: loadSec,
	}
	if loadSec > 0 {
		res.NodesPerSec = float64(res.Nodes) / loadSec
	}

	// Per-hop latency at 1..3 hops. T1 is the second-commonest type
	// under the generator's Zipf skew: common enough that chains find
	// matches, rare enough that deep chains don't explode.
	chain := func(id graph.ID, hops int) string {
		var sb strings.Builder
		fmt.Fprintf(&sb, "MATCH (n0:%s {k0: %d})", snap.Node(id).Labels[0], id)
		for h := 1; h <= hops; h++ {
			fmt.Fprintf(&sb, "-[:T1]->(n%d)", h)
		}
		sb.WriteString(" RETURN count(*)")
		return sb.String()
	}
	for hops := 1; hops <= 3; hops++ {
		var lat []float64
		for q := 0; q < largeGraphAnchors; q++ {
			pq, err := engine.Prepare(chain(graph.ID(r.Intn(largeGraphScale)), hops))
			if err != nil {
				return nil
			}
			best := 0.0
			for rep := 0; rep < 3; rep++ {
				start := time.Now()
				sim.ExecutePrepared(ctx, pq) //nolint:errcheck // latency leg; a limit trip is a real outcome
				if d := time.Since(start).Seconds(); rep == 0 || d < best {
					best = d
				}
			}
			lat = append(lat, best*1e6)
		}
		sort.Float64s(lat)
		res.Hops = append(res.Hops, HopLatency{
			Hops:      hops,
			Queries:   len(lat),
			P50Micros: lat[len(lat)/2],
			P95Micros: lat[len(lat)*95/100],
		})
	}

	// Hub leg: rank nodes by total degree, take the top arms, expand
	// the rarest relationship type undirected from each.
	type hub struct {
		id  graph.ID
		deg int
	}
	hubs := make([]hub, 0, 256)
	for _, id := range snap.NodeIDs() {
		if d := len(g.Out(id)) + len(g.In(id)); d > 0 {
			hubs = append(hubs, hub{id, d})
		}
	}
	sort.Slice(hubs, func(i, j int) bool {
		if hubs[i].deg != hubs[j].deg {
			return hubs[i].deg > hubs[j].deg
		}
		return hubs[i].id < hubs[j].id
	})
	if len(hubs) > largeGraphHubArms {
		hubs = hubs[:largeGraphHubArms]
	}
	rare := schema.RelTypes[len(schema.RelTypes)-1]
	arms := make([]string, len(hubs))
	for i, h := range hubs {
		arms[i] = fmt.Sprintf("MATCH (a:%s {k0: %d})-[r:%s]-(b) RETURN count(r) AS c",
			snap.Node(h.id).Labels[0], h.id, rare)
	}
	pq, err := engine.Prepare(strings.Join(arms, " UNION ALL "))
	if err != nil || !pq.Planned() {
		return res
	}
	res.HubArms = len(hubs)
	const hubReps = 50
	res.HubReps = hubReps
	leg := func() (string, float64) {
		out, err := sim.ExecutePrepared(ctx, pq)
		if err != nil {
			return "error: " + err.Error(), 0
		}
		canon := strings.Join(out.Canonical(), "\n")
		start := time.Now()
		for rep := 0; rep < hubReps; rep++ {
			sim.ExecutePrepared(ctx, pq) //nolint:errcheck // identical query; outcome pinned above
		}
		return canon, time.Since(start).Seconds() * 1e9 / hubReps
	}
	idxOut, idxNs := leg()
	sim.Engine().SetAdjIndex(false)
	scanOut, scanNs := leg()
	sim.Engine().SetAdjIndex(true)
	res.IndexNsPerExec = idxNs
	res.ScanNsPerExec = scanNs
	res.IdenticalResults = idxOut == scanOut && !strings.HasPrefix(idxOut, "error:")
	if idxNs > 0 {
		res.IndexVsScan = scanNs / idxNs
	}
	return res
}

// WriteJSON writes the bench result to path, pretty-printed.
func (r BenchResult) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadBenchJSON loads a bench result previously written by WriteJSON —
// the input of the bench-regress gate.
func ReadBenchJSON(path string) (BenchResult, error) {
	var r BenchResult
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
