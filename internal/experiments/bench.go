package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"gqs/internal/core"
	"gqs/internal/cypher/parser"
	"gqs/internal/engine"
	"gqs/internal/gdb"
	"gqs/internal/graph"
)

// BenchResult is the machine-readable outcome of the sharded-executor
// throughput bench: the same fixed-seed campaign at 1 worker and at N
// workers, plus the cross-check that both found the identical bug set
// (the determinism contract, measured rather than assumed), plus the
// parse-share micro-comparison of the prepared-execution layer
// (DESIGN.md §8).
type BenchResult struct {
	Seed       int64 `json:"seed"`
	Iterations int   `json:"iterations"`
	GOMAXPROCS int   `json:"gomaxprocs"`

	BaselineWorkers int     `json:"baseline_workers"`
	BaselineSeconds float64 `json:"baseline_seconds"`
	BaselineIterSec float64 `json:"baseline_iterations_per_sec"`

	ParallelWorkers int     `json:"parallel_workers"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	ParallelIterSec float64 `json:"parallel_iterations_per_sec"`

	Speedup          float64 `json:"speedup"`
	Findings         int     `json:"findings"`
	IdenticalBugSets bool    `json:"identical_bug_sets"`

	// BugReportFNV is a 64-bit FNV-1a digest of the campaign's canonical
	// bug report, so bench-regress can compare bug sets across result
	// files without embedding every finding.
	BugReportFNV string `json:"bug_report_fnv,omitempty"`

	// ParseShare is the micro-comparison of one oracle check (one
	// synthesized query validated on all five dialects) through the text
	// path versus the prepared path.
	ParseShare *ParseShareResult `json:"parse_share,omitempty"`
}

// ParseShareResult quantifies what the prepared-execution layer saves
// per oracle check: an oracle check here is one synthesized query
// executed on all five dialects (reference + 4 simulated GDBs). The
// text path re-parses and re-analyzes the query on every dialect; the
// prepared path parses once and shares the AST.
type ParseShareResult struct {
	Queries int `json:"queries"`
	Reps    int `json:"reps"`

	TextNsPerCheck     float64 `json:"text_ns_per_check"`
	PreparedNsPerCheck float64 `json:"prepared_ns_per_check"`
	// Speedup is text/prepared wall-clock per oracle check — the
	// parse-share speedup make bench records.
	Speedup float64 `json:"speedup"`

	TextParsesPerCheck     float64 `json:"text_parses_per_check"`
	PreparedParsesPerCheck float64 `json:"prepared_parses_per_check"`

	TextAllocsPerCheck     float64 `json:"text_allocs_per_check"`
	PreparedAllocsPerCheck float64 `json:"prepared_allocs_per_check"`
}

// measureParseShare runs the micro-comparison on a synthesized corpus.
// Both paths drive the same five connectors over the same queries in the
// same order, so the comparison isolates parsing and per-execution
// allocation cost, not workload differences.
func measureParseShare(seed int64) *ParseShareResult {
	r := rand.New(rand.NewSource(seed))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 12, MaxRels: 40})
	syn := core.NewSynthesizer(r, g, schema, core.DefaultConfig())
	var texts []string
	for tries := 0; len(texts) < 24 && tries < 2000; tries++ {
		gt := core.SelectGroundTruth(r, g, 6)
		if sq, err := syn.Synthesize(gt); err == nil {
			texts = append(texts, sq.Text)
		}
	}
	if len(texts) == 0 {
		return nil
	}
	conns := append(gdb.All(), gdb.NewReference())
	for _, c := range conns {
		if err := c.Reset(g, schema); err != nil {
			return nil
		}
	}
	ctx := context.Background()
	const reps = 20
	checks := float64(reps * len(texts))

	var ms runtime.MemStats
	measure := func(run func(text string)) (sec float64, parses int64, allocs uint64) {
		runtime.ReadMemStats(&ms)
		m0 := ms.Mallocs
		p0 := parser.Parses()
		start := time.Now()
		for rep := 0; rep < reps; rep++ {
			for _, q := range texts {
				run(q)
			}
		}
		sec = time.Since(start).Seconds()
		runtime.ReadMemStats(&ms)
		return sec, parser.Parses() - p0, ms.Mallocs - m0
	}

	textSec, textParses, textAllocs := measure(func(q string) {
		for _, c := range conns {
			c.ExecuteCtx(ctx, q) //nolint:errcheck // fault-injected errors are part of the workload
		}
	})
	prepSec, prepParses, prepAllocs := measure(func(q string) {
		pq, err := engine.Prepare(q)
		if err != nil {
			return
		}
		for _, c := range conns {
			c.ExecutePrepared(ctx, pq) //nolint:errcheck // as above
		}
	})

	res := &ParseShareResult{
		Queries:                len(texts),
		Reps:                   reps,
		TextNsPerCheck:         textSec * 1e9 / checks,
		PreparedNsPerCheck:     prepSec * 1e9 / checks,
		TextParsesPerCheck:     float64(textParses) / checks,
		PreparedParsesPerCheck: float64(prepParses) / checks,
		TextAllocsPerCheck:     float64(textAllocs) / checks,
		PreparedAllocsPerCheck: float64(prepAllocs) / checks,
	}
	if prepSec > 0 {
		res.Speedup = textSec / prepSec
	}
	return res
}

// RunThroughputBench runs the bench and renders a short human summary to
// w. workers <= 0 selects GOMAXPROCS. Note the speedup is bounded by the
// machine: on a single-core runner it hovers around 1.0 by construction.
func RunThroughputBench(w io.Writer, seed int64, iterations, workers int) BenchResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cfg := DefaultCampaignConfig()
	cfg.Seed = seed
	cfg.Iterations = iterations
	run := func(n int) (*Campaign, float64) {
		c := cfg
		c.Workers = n
		start := time.Now()
		out := RunGQSCampaign(c)
		return out, time.Since(start).Seconds()
	}
	base, baseSec := run(1)
	par, parSec := run(workers)

	res := BenchResult{
		Seed:             seed,
		Iterations:       iterations,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		BaselineWorkers:  1,
		BaselineSeconds:  baseSec,
		ParallelWorkers:  workers,
		ParallelSeconds:  parSec,
		Findings:         len(par.Findings),
		IdenticalBugSets: base.CanonicalBugReport() == par.CanonicalBugReport(),
	}
	h := fnv.New64a()
	h.Write([]byte(par.CanonicalBugReport()))
	res.BugReportFNV = fmt.Sprintf("%016x", h.Sum64())
	// Per-GDB iterations: the campaign runs Iterations shards against
	// each of the four sims, so rate totals use the meter's count.
	if baseSec > 0 {
		res.BaselineIterSec = float64(base.Throughput.Iterations) / baseSec
	}
	if parSec > 0 {
		res.ParallelIterSec = float64(par.Throughput.Iterations) / parSec
	}
	if parSec > 0 {
		res.Speedup = baseSec / parSec
	}
	res.ParseShare = measureParseShare(seed)

	fmt.Fprintf(w, "== Sharded-executor throughput (seed %d, %d iterations/GDB, GOMAXPROCS %d) ==\n",
		seed, iterations, res.GOMAXPROCS)
	fmt.Fprintf(w, "workers=1:  %6.2fs  %7.1f iterations/s\n", baseSec, res.BaselineIterSec)
	fmt.Fprintf(w, "workers=%d:  %6.2fs  %7.1f iterations/s\n", workers, parSec, res.ParallelIterSec)
	fmt.Fprintf(w, "speedup: %.2fx; identical bug sets: %v (%d findings)\n",
		res.Speedup, res.IdenticalBugSets, res.Findings)
	if ps := res.ParseShare; ps != nil {
		fmt.Fprintf(w, "parse share (%d queries x %d reps x 5 dialects):\n", ps.Queries, ps.Reps)
		fmt.Fprintf(w, "  text:     %8.0f ns/check  %5.1f parses/check  %7.0f allocs/check\n",
			ps.TextNsPerCheck, ps.TextParsesPerCheck, ps.TextAllocsPerCheck)
		fmt.Fprintf(w, "  prepared: %8.0f ns/check  %5.1f parses/check  %7.0f allocs/check\n",
			ps.PreparedNsPerCheck, ps.PreparedParsesPerCheck, ps.PreparedAllocsPerCheck)
		fmt.Fprintf(w, "  parse-share speedup: %.2fx\n", ps.Speedup)
	}
	return res
}

// WriteJSON writes the bench result to path, pretty-printed.
func (r BenchResult) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadBenchJSON loads a bench result previously written by WriteJSON —
// the input of the bench-regress gate.
func ReadBenchJSON(path string) (BenchResult, error) {
	var r BenchResult
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
