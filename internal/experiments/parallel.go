package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"gqs/internal/core"
	"gqs/internal/faults"
	"gqs/internal/gdb"
	"gqs/internal/graph"
	"gqs/internal/metrics"
)

// This file is the sharded campaign front-end: it fans the campaign's
// iterations across core.RunParallel and merges the per-shard
// detections into a canonical, order-independent report.
//
// The merge is the half of the determinism contract that lives above the
// executor. Work units complete in wall-clock order, which varies run to
// run; the merge therefore never looks at completion order. Detections
// are buffered per shard during the run and *streamed* into a dedicated
// merger goroutine as each unit completes: the merger holds completed
// ranges in a pending set and folds them strictly in ascending shard
// order, deduplicating against a campaign-wide seen-set exactly like
// the sequential path does. Folding unit [s, s+c) therefore always
// happens after every shard < s has been folded and before any shard
// ≥ s+c — the same total order the old end-of-run barrier produced,
// minus the barrier: early shards merge while late shards still run. A
// finding's canonical AtQuery index is its shard-local query index plus
// the query counts of every earlier shard — the index it would have had
// in a purely sequential replay of the shards — so `seed S, workers 1,
// batch 1` and `seed S, workers N, batch K` produce byte-identical
// CanonicalBugReport output.

// shardEvent is one shard-local bug detection, buffered until the merge.
type shardEvent struct {
	bug      *faults.Bug
	query    string
	features *metrics.Features // the vector the target's triggers saw
	steps    int
	atLocal  int // 1-based query index within the shard
	graph    *graph.Graph
	schema   *graph.Schema
	latency  time.Duration
}

// shardLog is everything one shard reports: its test-case tallies and
// its first-detection events, in shard-local execution order.
type shardLog struct {
	queries int
	skips   int
	events  []shardEvent
}

// runShardedCampaign is the Workers >= 1 executor behind RunGQSCampaign.
func runShardedCampaign(cfg CampaignConfig) *Campaign {
	return runShardedCampaignCtx(context.Background(), cfg, nil)
}

// runShardedCampaignCtx is the sharded executor under a cancelable
// context and an optional checkpointer (nil ⇒ plain run): completed
// shards are journaled, restored shards are skipped, and cancellation
// stops between shards. A canceled campaign's merge covers only what
// completed — callers resuming later discard it.
func runShardedCampaignCtx(ctx context.Context, cfg CampaignConfig, ck *core.Checkpointer) *Campaign {
	meter := metrics.NewMeter()
	c := &Campaign{Workers: cfg.Workers}
	seen := map[string]bool{}
	// One snapshot share for the whole campaign: shard i's generated
	// graph is identical in every per-GDB leg (its RNG seed depends only
	// on the campaign seed and i), so the seal and the snapshot's index
	// build happen once per shard instead of once per shard per GDB.
	share := core.NewSnapshotShare(cfg.Iterations, len(gdb.All()))
	for _, sim := range gdb.All() {
		if ctx.Err() != nil {
			break
		}
		runShardedOn(ctx, c, sim.Name(), cfg, seen, meter, ck, share)
	}
	for range c.Findings {
		meter.AddBug()
	}
	c.Throughput = meter.Snapshot()
	c.Wall = c.Throughput.Elapsed
	return c
}

// runShardedOn runs the sharded campaign against one GDB, streaming
// completed work units into the canonical ascending-shard merge.
func runShardedOn(ctx context.Context, c *Campaign, gdbName string, cfg CampaignConfig, seen map[string]bool, meter *metrics.Meter, ck *core.Checkpointer, share *core.SnapshotShare) {
	n := cfg.Iterations
	if n <= 0 {
		return
	}
	pcfg := core.ParallelConfig{
		Workers:    cfg.Workers,
		Iterations: n,
		Batch:      cfg.ResolvedBatch(),
		Runner:     campaignRunnerConfig(cfg),
		Share:      share,
	}
	connect := gdb.NewFactory(gdb.FactoryConfig{
		GDB:       gdbName,
		Live:      cfg.Live,
		FlakyRate: cfg.FlakyRate,
		Seed:      cfg.Seed,
	})
	factory := func(shard int) (core.Target, error) { return connect(shard) }

	// Shard slots are disjoint and observer calls per shard are
	// sequential, so the logs need no locking (see RunParallel's
	// observer contract). The checkpoint hooks obey the same slotting:
	// Payload runs on the worker that just finished the unit, Restore on
	// the single-threaded feed loop before any worker starts.
	logs := make([]shardLog, n)

	// The streaming merge: completed unit ranges arrive on a channel (a
	// restored unit's range from the feed loop, a live unit's from the
	// worker that ran it — both after the unit's log slots are final, so
	// the channel send orders the slot writes before the merger's reads)
	// and the merger folds them strictly in ascending shard order,
	// holding out-of-order ranges in a pending set. Only the merger
	// goroutine touches c and seen until it is joined below. Units
	// canceled mid-flight are never announced and never merged — exactly
	// the units a resume discards and re-runs.
	type unitRange struct{ start, count int }
	merge := make(chan unitRange, 64)
	merged := make(chan struct{})
	go func() {
		defer close(merged)
		pending := make(map[int]int)
		next := 0
		for u := range merge {
			pending[u.start] = u.count
			for {
				count, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				mergeShardLogs(c, gdbName, logs[next:next+count], seen, next)
				next += count
			}
		}
	}()

	hooks := core.DurableHooks{
		Payload: func(_ string, start, count int) json.RawMessage {
			return encodeShardLogs(logs[start : start+count])
		},
		Restore: func(u core.UnitRecord) {
			count := u.UnitCount()
			if u.Shard >= 0 && u.Shard+count <= n {
				copy(logs[u.Shard:u.Shard+count], decodeShardLogs(gdbName, u.Payload, count))
				merge <- unitRange{start: u.Shard, count: count}
			}
		},
	}
	pcfg.UnitDone = func(start, count int, _ core.Stats) {
		merge <- unitRange{start: start, count: count}
	}
	start := time.Now()
	ps := core.RunCheckpointedParallel(ctx, pcfg, gdbName, factory, func(shard int, target core.Target, tc *core.TestCase) {
		log := &logs[shard]
		log.queries++
		meter.AddQuery()
		switch tc.Verdict {
		case core.VerdictSkip:
			log.skips++
			return
		case core.VerdictPass:
			return
		}
		tb, ok := target.(interface{ TriggeredBug() *faults.Bug })
		if !ok {
			return
		}
		b := tb.TriggeredBug()
		if b == nil {
			return
		}
		// Shard-local first-detection filter; the cross-shard (and
		// cross-GDB) dedup happens at merge time against `seen`.
		for _, ev := range log.events {
			if ev.bug.ID == b.ID {
				return
			}
		}
		log.events = append(log.events, shardEvent{
			bug:      b,
			query:    tc.Query,
			features: featuresOf(tc),
			steps:    tc.Steps,
			atLocal:  log.queries,
			graph:    tc.Graph,
			schema:   tc.Schema,
			latency:  time.Since(start),
		})
	}, ck, hooks)
	close(merge)
	<-merged
	// Only iterations that actually ran count toward live throughput; a
	// resumed campaign's restored units were another run's work.
	meter.AddIterations(ps.Ran)
	c.Robust.Add(ps.Robust)
}

// mergeShardLogs folds buffered per-shard detections into the campaign
// in canonical order: ascending shard index, AtQuery = campaign queries
// so far + earlier shards' query counts + the shard-local index. The
// sharded executor streams contiguous ranges through here in ascending
// order (startShard is the range's first logical shard); the sequential
// executor passes its whole iteration list at once with startShard < 0,
// meaning "not shard-indexed" — its findings report Shard 0 (see
// Finding.Shard).
func mergeShardLogs(c *Campaign, gdbName string, logs []shardLog, seen map[string]bool, startShard int) {
	base := c.Queries
	for i := range logs {
		log := logs[i]
		for _, ev := range log.events {
			if seen[ev.bug.ID] {
				continue
			}
			seen[ev.bug.ID] = true
			f := &Finding{
				Bug:      ev.bug,
				GDB:      gdbName,
				Query:    ev.query,
				Features: ev.features,
				Steps:    ev.steps,
				AtQuery:  base + ev.atLocal,
				Graph:    ev.graph,
				Schema:   ev.schema,
				Latency:  ev.latency,
			}
			if startShard >= 0 {
				f.Shard = startShard + i
			}
			c.Findings = append(c.Findings, f)
		}
		base += log.queries
		c.Skips += log.skips
	}
	c.Queries = base
}

// CanonicalBugReport renders the campaign's merged outcome with every
// hardware-dependent field (wall time, latency, throughput) stripped:
// two campaigns at the same seed must produce byte-identical reports
// regardless of worker count. The determinism tests and the bench's
// identical_bug_sets check compare exactly this string.
func (c *Campaign) CanonicalBugReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "queries=%d skips=%d findings=%d\n", c.Queries, c.Skips, len(c.Findings))
	for _, f := range c.Findings {
		fmt.Fprintf(&b, "%s %s kind=%v manifest=%v shard=%d at=%d steps=%d query=%s\n",
			f.GDB, f.Bug.ID, f.Bug.Kind, f.Bug.Manifest, f.Shard, f.AtQuery, f.Steps, f.Query)
	}
	return b.String()
}
