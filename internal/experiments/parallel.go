package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"gqs/internal/core"
	"gqs/internal/faults"
	"gqs/internal/gdb"
	"gqs/internal/graph"
	"gqs/internal/metrics"
)

// This file is the sharded campaign front-end: it fans the campaign's
// iterations across core.RunParallel and then merges the per-shard
// detections into a canonical, order-independent report.
//
// The merge is the half of the determinism contract that lives above the
// executor. Shards complete in wall-clock order, which varies run to
// run; the merge therefore never looks at completion order. Detections
// are buffered per shard during the run and folded in ascending shard
// order afterwards, deduplicating against a campaign-wide seen-set
// exactly like the sequential path does. A finding's canonical AtQuery
// index is its shard-local query index plus the query counts of every
// earlier shard — the index it would have had in a purely sequential
// replay of the shards — so `seed S, workers 1` and `seed S, workers N`
// produce byte-identical CanonicalBugReport output.

// shardEvent is one shard-local bug detection, buffered until the merge.
type shardEvent struct {
	bug      *faults.Bug
	query    string
	features *metrics.Features // the vector the target's triggers saw
	steps    int
	atLocal  int // 1-based query index within the shard
	graph    *graph.Graph
	schema   *graph.Schema
	latency  time.Duration
}

// shardLog is everything one shard reports: its test-case tallies and
// its first-detection events, in shard-local execution order.
type shardLog struct {
	queries int
	skips   int
	events  []shardEvent
}

// runShardedCampaign is the Workers >= 1 executor behind RunGQSCampaign.
func runShardedCampaign(cfg CampaignConfig) *Campaign {
	return runShardedCampaignCtx(context.Background(), cfg, nil)
}

// runShardedCampaignCtx is the sharded executor under a cancelable
// context and an optional checkpointer (nil ⇒ plain run): completed
// shards are journaled, restored shards are skipped, and cancellation
// stops between shards. A canceled campaign's merge covers only what
// completed — callers resuming later discard it.
func runShardedCampaignCtx(ctx context.Context, cfg CampaignConfig, ck *core.Checkpointer) *Campaign {
	meter := metrics.NewMeter()
	c := &Campaign{Workers: cfg.Workers}
	seen := map[string]bool{}
	for _, sim := range gdb.All() {
		if ctx.Err() != nil {
			break
		}
		runShardedOn(ctx, c, sim.Name(), cfg, seen, meter, ck)
	}
	for range c.Findings {
		meter.AddBug()
	}
	c.Throughput = meter.Snapshot()
	c.Wall = c.Throughput.Elapsed
	return c
}

// runShardedOn runs the sharded campaign against one GDB and merges the
// shard logs into c in canonical order.
func runShardedOn(ctx context.Context, c *Campaign, gdbName string, cfg CampaignConfig, seen map[string]bool, meter *metrics.Meter, ck *core.Checkpointer) {
	n := cfg.Iterations
	if n <= 0 {
		return
	}
	pcfg := core.ParallelConfig{
		Workers:    cfg.Workers,
		Iterations: n,
		Runner:     campaignRunnerConfig(cfg),
	}
	connect := gdb.NewFactory(gdb.FactoryConfig{
		GDB:       gdbName,
		Live:      cfg.Live,
		FlakyRate: cfg.FlakyRate,
		Seed:      cfg.Seed,
	})
	factory := func(shard int) (core.Target, error) { return connect(shard) }

	// Shard slots are disjoint and observer calls per shard are
	// sequential, so the logs need no locking (see RunParallel's
	// observer contract). The checkpoint hooks obey the same slotting:
	// Payload runs on the worker that just finished the shard, Restore on
	// the single-threaded feed loop before any worker starts.
	logs := make([]shardLog, n)
	hooks := core.DurableHooks{
		Payload: func(_ string, shard int) json.RawMessage { return encodeShardLog(&logs[shard]) },
		Restore: func(u core.UnitRecord) {
			if u.Shard >= 0 && u.Shard < n {
				logs[u.Shard] = decodeShardLog(gdbName, u.Payload)
			}
		},
	}
	start := time.Now()
	ps := core.RunCheckpointedParallel(ctx, pcfg, gdbName, factory, func(shard int, target core.Target, tc *core.TestCase) {
		log := &logs[shard]
		log.queries++
		meter.AddQuery()
		switch tc.Verdict {
		case core.VerdictSkip:
			log.skips++
			return
		case core.VerdictPass:
			return
		}
		tb, ok := target.(interface{ TriggeredBug() *faults.Bug })
		if !ok {
			return
		}
		b := tb.TriggeredBug()
		if b == nil {
			return
		}
		// Shard-local first-detection filter; the cross-shard (and
		// cross-GDB) dedup happens at merge time against `seen`.
		for _, ev := range log.events {
			if ev.bug.ID == b.ID {
				return
			}
		}
		log.events = append(log.events, shardEvent{
			bug:      b,
			query:    tc.Query,
			features: featuresOf(tc),
			steps:    tc.Steps,
			atLocal:  log.queries,
			graph:    tc.Graph,
			schema:   tc.Schema,
			latency:  time.Since(start),
		})
	}, ck, hooks)
	meter.AddIterations(n)
	c.Robust.Add(ps.Robust)
	mergeShardLogs(c, gdbName, logs, seen, true)
}

// mergeShardLogs folds buffered per-shard detections into the campaign
// in canonical order: ascending shard index, AtQuery = campaign queries
// so far + earlier shards' query counts + the shard-local index. With
// shardIndexed false the logs are sequential iterations of the legacy
// executor, whose findings report Shard 0 (see Finding.Shard).
func mergeShardLogs(c *Campaign, gdbName string, logs []shardLog, seen map[string]bool, shardIndexed bool) {
	base := c.Queries
	for shard := range logs {
		log := logs[shard]
		for _, ev := range log.events {
			if seen[ev.bug.ID] {
				continue
			}
			seen[ev.bug.ID] = true
			f := &Finding{
				Bug:      ev.bug,
				GDB:      gdbName,
				Query:    ev.query,
				Features: ev.features,
				Steps:    ev.steps,
				AtQuery:  base + ev.atLocal,
				Graph:    ev.graph,
				Schema:   ev.schema,
				Latency:  ev.latency,
			}
			if shardIndexed {
				f.Shard = shard
			}
			c.Findings = append(c.Findings, f)
		}
		base += log.queries
		c.Skips += log.skips
	}
	c.Queries = base
}

// CanonicalBugReport renders the campaign's merged outcome with every
// hardware-dependent field (wall time, latency, throughput) stripped:
// two campaigns at the same seed must produce byte-identical reports
// regardless of worker count. The determinism tests and the bench's
// identical_bug_sets check compare exactly this string.
func (c *Campaign) CanonicalBugReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "queries=%d skips=%d findings=%d\n", c.Queries, c.Skips, len(c.Findings))
	for _, f := range c.Findings {
		fmt.Fprintf(&b, "%s %s kind=%v manifest=%v shard=%d at=%d steps=%d query=%s\n",
			f.GDB, f.Bug.ID, f.Bug.Kind, f.Bug.Manifest, f.Shard, f.AtQuery, f.Steps, f.Query)
	}
	return b.String()
}
