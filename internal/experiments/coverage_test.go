package experiments

import (
	"testing"

	"gqs/internal/faults"
)

// TestFullCatalogDiscoverable is the Table 3 headline: a sufficiently
// long GQS campaign discovers every injected fault — all 36 bugs, as in
// the paper.
func TestFullCatalogDiscoverable(t *testing.T) {
	if testing.Short() {
		t.Skip("long campaign")
	}
	cfg := DefaultCampaignConfig()
	cfg.Iterations = 150
	c := RunGQSCampaign(cfg)
	found := map[string]bool{}
	for _, f := range c.Findings {
		found[f.Bug.ID] = true
	}
	missing := 0
	for _, set := range faults.Catalogs() {
		for _, b := range set.Bugs {
			if !found[b.ID] {
				missing++
				t.Errorf("bug %s (%s) not discovered: trigger %+v", b.ID, b.Description, b.Trigger)
			}
		}
	}
	if missing == 0 && len(c.Findings) != 36 {
		t.Errorf("found %d findings, want 36", len(c.Findings))
	}
}
