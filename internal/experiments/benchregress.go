package experiments

import (
	"fmt"
	"io"
	"strings"
)

// BenchRegress is the regression gate behind `make bench-regress`: it
// compares the current bench result against every previous BENCH_*.json
// baseline and fails on a >10% parallel-throughput regression or a
// bug-set mismatch. Baselines recorded at a different seed or iteration
// count still gate throughput (the campaign workload is the same shape)
// but not the bug set, which is only comparable like-for-like.
func BenchRegress(w io.Writer, currentPath string, previousPaths []string) error {
	cur, err := ReadBenchJSON(currentPath)
	if err != nil {
		return fmt.Errorf("current result: %w", err)
	}
	var failures []string
	if !cur.IdenticalBugSets {
		failures = append(failures, fmt.Sprintf(
			"%s: bug sets differ across worker counts — determinism contract broken", currentPath))
	}
	fmt.Fprintf(w, "== bench-regress: %s (%.1f iterations/s, %d findings) ==\n",
		currentPath, cur.ParallelIterSec, cur.Findings)
	for _, p := range previousPaths {
		prev, err := ReadBenchJSON(p)
		if err != nil {
			failures = append(failures, fmt.Sprintf("baseline %v", err))
			continue
		}
		ratio := 0.0
		if prev.ParallelIterSec > 0 {
			ratio = cur.ParallelIterSec / prev.ParallelIterSec
		}
		comparable := prev.Seed == cur.Seed && prev.Iterations == cur.Iterations
		fmt.Fprintf(w, "vs %-18s %6.1f -> %6.1f iterations/s (%.2fx)", p,
			prev.ParallelIterSec, cur.ParallelIterSec, ratio)
		if ratio > 0 && ratio < 0.9 {
			failures = append(failures, fmt.Sprintf(
				"%s: throughput regressed to %.2fx of %s (%.1f vs %.1f iterations/s)",
				currentPath, ratio, p, cur.ParallelIterSec, prev.ParallelIterSec))
			fmt.Fprint(w, "  REGRESSION")
		}
		if comparable {
			if prev.Findings != cur.Findings {
				failures = append(failures, fmt.Sprintf(
					"%s: findings changed vs %s at the same seed/iterations (%d vs %d)",
					currentPath, p, cur.Findings, prev.Findings))
				fmt.Fprint(w, "  BUG-SET MISMATCH")
			} else if prev.BugReportFNV != "" && cur.BugReportFNV != "" && prev.BugReportFNV != cur.BugReportFNV {
				failures = append(failures, fmt.Sprintf(
					"%s: bug report digest changed vs %s at the same seed/iterations",
					currentPath, p))
				fmt.Fprint(w, "  BUG-SET MISMATCH")
			} else {
				fmt.Fprint(w, "  bug set ok")
			}
		}
		fmt.Fprintln(w)
	}
	if len(previousPaths) == 0 {
		fmt.Fprintln(w, "(no previous BENCH_*.json baselines found)")
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench-regress failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Fprintln(w, "bench-regress: ok")
	return nil
}
