package experiments

import (
	"fmt"
	"io"
	"strings"
)

// BenchRegress is the regression gate behind `make bench-regress`: it
// compares the current bench result against every previous BENCH_*.json
// baseline and fails on a >10% parallel-throughput regression or a
// bug-set mismatch. Baselines recorded at a different seed or iteration
// count still gate throughput (the campaign workload is the same shape)
// but not the bug set, which is only comparable like-for-like.
func BenchRegress(w io.Writer, currentPath string, previousPaths []string) error {
	cur, err := ReadBenchJSON(currentPath)
	if err != nil {
		return fmt.Errorf("current result: %w", err)
	}
	var failures []string
	if !cur.IdenticalBugSets {
		failures = append(failures, fmt.Sprintf(
			"%s: bug sets differ across worker counts — determinism contract broken", currentPath))
	}
	fmt.Fprintf(w, "== bench-regress: %s (%.1f iterations/s, %d findings) ==\n",
		currentPath, cur.ParallelIterSec, cur.Findings)
	// The durable-campaign gates are absolute, not baseline-relative:
	// journal writes must stay under 1% of the campaign's wall-clock, and
	// the durable run must reproduce the plain run's bug report. When the
	// bench measured multiple reps per leg (min-of-N, Reps >= 2), the
	// total wall-clock overhead is noise-robust enough to gate at 1% too —
	// that closes the gap a single-rep measurement left between attributed
	// write time and unattributed scheduling noise.
	if cb := cur.Checkpoint; cb != nil {
		fmt.Fprintf(w, "checkpoint: %.2f%% write time, %+.2f%% total overhead (gates <= 1%%), digest ok: %v\n",
			cb.WritePct, cb.OverheadPct, cb.DigestOK)
		if cb.WritePct > 1.0 {
			failures = append(failures, fmt.Sprintf(
				"%s: checkpoint journal writes cost %.2f%% of the campaign, gate is 1%%",
				currentPath, cb.WritePct))
		}
		if cb.Reps >= 2 && cb.OverheadPct > 1.0 {
			failures = append(failures, fmt.Sprintf(
				"%s: durable campaign is %.2f%% slower than plain (min of %d reps), gate is 1%%",
				currentPath, cb.OverheadPct, cb.Reps))
		}
		if !cb.DigestOK {
			failures = append(failures, fmt.Sprintf(
				"%s: durable campaign's bug report differs from the plain campaign's", currentPath))
		}
	}
	// The plan-vs-interpreter differential is absolute: compiled plans
	// must be observationally identical to the interpreter on the bench
	// corpus, every dialect, every query.
	if pe := cur.PlanExec; pe != nil && !pe.IdenticalResults {
		failures = append(failures, fmt.Sprintf(
			"%s: compiled-plan results differ from the interpreter's", currentPath))
	}
	// So is the index-vs-scan differential of the large-graph leg:
	// index-backed expansion must reproduce the scan path's results.
	if lg := cur.LargeGraph; lg != nil {
		fmt.Fprintf(w, "large graph: %.0f nodes/s bulk load, index vs scan %.1fx, identical results: %v\n",
			lg.NodesPerSec, lg.IndexVsScan, lg.IdenticalResults)
		if !lg.IdenticalResults {
			failures = append(failures, fmt.Sprintf(
				"%s: index-backed expansion results differ from the scan path's", currentPath))
		}
	}
	for _, p := range previousPaths {
		prev, err := ReadBenchJSON(p)
		if err != nil {
			failures = append(failures, fmt.Sprintf("baseline %v", err))
			continue
		}
		// Throughput is gated like-for-like: the parallel legs when both
		// results ran the same worker count, the single-worker baseline
		// legs otherwise (a 2-worker leg on a 1-CPU runner pays scheduling
		// overhead a 1-worker leg doesn't — that delta is configuration,
		// not regression).
		prevRate, curRate, leg := prev.ParallelIterSec, cur.ParallelIterSec, "parallel"
		if prev.ParallelWorkers != cur.ParallelWorkers {
			prevRate, curRate, leg = prev.BaselineIterSec, cur.BaselineIterSec, "baseline"
		}
		// Parallel efficiency (speedup / workers) is gated only against
		// baselines recorded at the same worker count — efficiency at 2
		// workers and at 8 workers are different quantities. Baselines
		// predating the field derive it from their recorded speedup.
		if prev.ParallelWorkers == cur.ParallelWorkers && prev.ParallelWorkers > 0 {
			prevEff := prev.ParallelEfficiency
			if prevEff == 0 {
				prevEff = prev.Speedup / float64(prev.ParallelWorkers)
			}
			curEff := cur.ParallelEfficiency
			if curEff == 0 && cur.ParallelWorkers > 0 {
				curEff = cur.Speedup / float64(cur.ParallelWorkers)
			}
			if prevEff > 0 && curEff < 0.9*prevEff {
				// On a single-CPU host the parallel leg is pure
				// scheduling overhead — efficiency there measures the
				// kernel, not the executor. Annotate, don't gate.
				if cur.GOMAXPROCS == 1 {
					fmt.Fprintf(w, "note: parallel efficiency %.0f%% vs %.0f%% in %s — single-CPU host, annotated but not gated\n",
						curEff*100, prevEff*100, p)
				} else {
					failures = append(failures, fmt.Sprintf(
						"%s: parallel efficiency regressed to %.0f%% vs %.0f%% in %s (%d workers)",
						currentPath, curEff*100, prevEff*100, p, cur.ParallelWorkers))
				}
			}
		}
		ratio := 0.0
		if prevRate > 0 {
			ratio = curRate / prevRate
		}
		comparable := prev.Seed == cur.Seed && prev.Iterations == cur.Iterations
		fmt.Fprintf(w, "vs %-18s %6.1f -> %6.1f %s iterations/s (%.2fx)", p,
			prevRate, curRate, leg, ratio)
		if ratio > 0 && ratio < 0.9 {
			failures = append(failures, fmt.Sprintf(
				"%s: %s throughput regressed to %.2fx of %s (%.1f vs %.1f iterations/s)",
				currentPath, leg, ratio, p, curRate, prevRate))
			fmt.Fprint(w, "  REGRESSION")
		}
		// Allocations per iteration are gated like the bug set: only
		// like-for-like (same seed and iteration count — a different
		// workload allocates differently by construction). Unlike
		// wall-clock, the allocation count is deterministic, so the gate
		// margin covers only runtime-internal noise.
		if prev.CampaignAllocsPerIter > 0 && cur.CampaignAllocsPerIter > 0 {
			fmt.Fprintf(w, "  %.0f -> %.0f allocs/iteration",
				prev.CampaignAllocsPerIter, cur.CampaignAllocsPerIter)
			if comparable && cur.CampaignAllocsPerIter > 1.10*prev.CampaignAllocsPerIter {
				failures = append(failures, fmt.Sprintf(
					"%s: campaign allocations regressed to %.0f/iteration vs %.0f in %s (gate is +10%%)",
					currentPath, cur.CampaignAllocsPerIter, prev.CampaignAllocsPerIter, p))
				fmt.Fprint(w, "  ALLOC REGRESSION")
			}
		}
		// Per-hop p95 latency gates against any baseline carrying the
		// large-graph block: the leg builds the same fixed-seed graph
		// regardless of campaign seed/iterations, so latencies are
		// comparable across all baselines. The 1.5x margin absorbs
		// shared-runner noise on microsecond quantities.
		if prev.LargeGraph != nil && cur.LargeGraph != nil {
			for _, ph := range prev.LargeGraph.Hops {
				if ph.P95Micros <= 0 {
					continue
				}
				for _, ch := range cur.LargeGraph.Hops {
					if ch.Hops == ph.Hops && ch.P95Micros > 1.5*ph.P95Micros {
						failures = append(failures, fmt.Sprintf(
							"%s: %d-hop match p95 regressed to %.1fus vs %.1fus in %s (gate is 1.5x)",
							currentPath, ch.Hops, ch.P95Micros, ph.P95Micros, p))
						fmt.Fprint(w, "  HOP-LATENCY REGRESSION")
					}
				}
			}
		}
		if comparable {
			if prev.Findings != cur.Findings {
				failures = append(failures, fmt.Sprintf(
					"%s: findings changed vs %s at the same seed/iterations (%d vs %d)",
					currentPath, p, cur.Findings, prev.Findings))
				fmt.Fprint(w, "  BUG-SET MISMATCH")
			} else if prev.BugReportFNV != "" && cur.BugReportFNV != "" && prev.BugReportFNV != cur.BugReportFNV {
				failures = append(failures, fmt.Sprintf(
					"%s: bug report digest changed vs %s at the same seed/iterations",
					currentPath, p))
				fmt.Fprint(w, "  BUG-SET MISMATCH")
			} else {
				fmt.Fprint(w, "  bug set ok")
			}
		}
		fmt.Fprintln(w)
	}
	if len(previousPaths) == 0 {
		fmt.Fprintln(w, "(no previous BENCH_*.json baselines found)")
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench-regress failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Fprintln(w, "bench-regress: ok")
	return nil
}
