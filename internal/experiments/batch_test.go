package experiments

import (
	"context"
	"path/filepath"
	"testing"

	"gqs/internal/core"
	"gqs/internal/gdb"
)

// TestBatchDeterminismDifferential is the batching acceptance test: the
// canonical bug report is a pure function of the seed — not of the
// worker count and not of the work-unit size. "Sequential" here is the
// sharded executor's serial order (workers=1, batch=1); the legacy
// workers=0 runner draws from one campaign-wide RNG stream and reports
// a different (internally consistent) stream by design.
func TestBatchDeterminismDifferential(t *testing.T) {
	run := func(workers, batch int) *Campaign {
		cfg := shardedTestConfig(workers)
		cfg.Batch = batch
		return RunGQSCampaign(cfg)
	}
	want := reportDigest(run(1, 1))
	for _, leg := range []struct{ workers, batch int }{
		{4, 1}, {4, 3}, {2, 100}, // batch > Iterations: one unit per GDB
	} {
		c := run(leg.workers, leg.batch)
		if got := reportDigest(c); got != want {
			t.Errorf("workers=%d batch=%d: digest %s != sequential %s\n%s",
				leg.workers, leg.batch, got, want, c.CanonicalBugReport())
		}
		if len(c.Findings) == 0 {
			t.Fatalf("workers=%d batch=%d found no bugs; the differential is vacuous",
				leg.workers, leg.batch)
		}
	}

	// The kill/resume leg: a batched campaign canceled mid-flight — after
	// its second unit checkpoint, with other units still mid-batch on the
	// second worker — must resume into the byte-identical report. Partial
	// units are never journaled, so the resume re-runs them whole.
	cfg := shardedTestConfig(2)
	cfg.Batch = 3
	fp := CampaignFingerprint(cfg)
	path := filepath.Join(t.TempDir(), "campaign.journal")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	flushes := 0
	ck, err := core.OpenCheckpoint(core.CheckpointConfig{Path: path, Every: 1,
		OnFlush: func(int) {
			if flushes++; flushes == 2 {
				cancel()
			}
		}}, fp)
	if err != nil {
		t.Fatal(err)
	}
	RunGQSCampaignDurable(ctx, cfg, ck)
	ck.Close()

	re, err := core.OpenCheckpoint(core.CheckpointConfig{Path: path, Every: 1, Resume: true}, fp)
	if err != nil {
		t.Fatal(err)
	}
	if re.Stats().ResumedUnits == 0 {
		t.Fatal("kill point left nothing to resume")
	}
	resumed := RunGQSCampaignDurable(context.Background(), cfg, re)
	re.Close()
	if resumed.Robust.ResumeFastForwarded == 0 {
		t.Fatal("resume re-ran the whole campaign from scratch")
	}
	if got := reportDigest(resumed); got != want {
		t.Errorf("mid-batch kill/resume diverged: %s != %s\n%s",
			got, want, resumed.CanonicalBugReport())
	}
}

// TestResumedCampaignThroughputExcludesRestored is the throughput
// regression test: a resumed campaign's iteration rate must count only
// the iterations this run executed — restoring a finished campaign and
// claiming its shards as live speed inflated IterationsPerSec by the
// whole restored prefix.
func TestResumedCampaignThroughputExcludesRestored(t *testing.T) {
	cfg := shardedTestConfig(2)
	cfg.Batch = 2
	fp := CampaignFingerprint(cfg)
	path := filepath.Join(t.TempDir(), "campaign.journal")
	perGDB := len(gdb.All())

	ck, err := core.OpenCheckpoint(core.CheckpointConfig{Path: path, Every: 1}, fp)
	if err != nil {
		t.Fatal(err)
	}
	first := RunGQSCampaignDurable(context.Background(), cfg, ck)
	ck.Close()
	if got, want := first.Throughput.Iterations, int64(cfg.Iterations*perGDB); got != want {
		t.Fatalf("uninterrupted campaign metered %d iterations, want %d", got, want)
	}

	re, err := core.OpenCheckpoint(core.CheckpointConfig{Path: path, Every: 1, Resume: true}, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	resumed := RunGQSCampaignDurable(context.Background(), cfg, re)
	if got, want := resumed.Robust.ResumeFastForwarded, cfg.Iterations*perGDB; got != want {
		t.Fatalf("resume fast-forwarded %d iterations, want %d (everything)", got, want)
	}
	if resumed.Throughput.Iterations != 0 {
		t.Fatalf("fully-restored resume claims %d live iterations (inflated throughput)",
			resumed.Throughput.Iterations)
	}
	if got, want := reportDigest(resumed), reportDigest(first); got != want {
		t.Fatalf("restored report diverged: %s != %s", got, want)
	}
}
