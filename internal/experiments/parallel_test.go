package experiments

import (
	"strings"
	"testing"
	"time"

	"gqs/internal/core"
	"gqs/internal/graph"
)

func shardedTestConfig(workers int) CampaignConfig {
	cfg := DefaultCampaignConfig()
	cfg.Iterations = 8
	cfg.Graph = graph.GenConfig{MaxNodes: 8, MaxRels: 20}
	cfg.Workers = workers
	return cfg
}

// TestShardedCampaignDeterministicAcrossWorkers is the determinism
// contract: same seed, different worker counts, byte-identical merged
// bug reports.
func TestShardedCampaignDeterministicAcrossWorkers(t *testing.T) {
	one := RunGQSCampaign(shardedTestConfig(1))
	four := RunGQSCampaign(shardedTestConfig(4))
	a, b := one.CanonicalBugReport(), four.CanonicalBugReport()
	if a != b {
		t.Fatalf("canonical reports differ across worker counts:\n--- workers=1 ---\n%s--- workers=4 ---\n%s", a, b)
	}
	if len(one.Findings) == 0 {
		t.Fatal("campaign found no bugs; the determinism check is vacuous")
	}
	if one.Queries != four.Queries || one.Skips != four.Skips {
		t.Fatalf("tallies differ: %d/%d queries, %d/%d skips",
			one.Queries, four.Queries, one.Skips, four.Skips)
	}
	if four.Workers != 4 || four.Throughput.Iterations == 0 {
		t.Errorf("sharded campaign must record workers and throughput, got %d workers, %+v",
			four.Workers, four.Throughput)
	}
}

// TestShardedCampaignReportShape spot-checks the canonical report: the
// hardware-independent fields are present, wall-clock ones are not.
func TestShardedCampaignReportShape(t *testing.T) {
	c := RunGQSCampaign(shardedTestConfig(2))
	rep := c.CanonicalBugReport()
	if !strings.HasPrefix(rep, "queries=") {
		t.Fatalf("report must open with the tallies, got %q", rep[:min(len(rep), 40)])
	}
	if strings.Contains(rep, "latency") || strings.Contains(rep, "wall") {
		t.Fatal("canonical report must not contain wall-clock fields")
	}
	for _, f := range c.Findings {
		if f.Shard < 0 || f.Shard >= shardedTestConfig(2).Iterations {
			t.Errorf("finding %s has out-of-range shard %d", f.Bug.ID, f.Shard)
		}
		if f.AtQuery <= 0 || f.AtQuery > c.Queries {
			t.Errorf("finding %s has non-canonical AtQuery %d (campaign ran %d)", f.Bug.ID, f.AtQuery, c.Queries)
		}
		if f.Latency <= 0 {
			t.Errorf("finding %s missing time-to-bug latency", f.Bug.ID)
		}
	}
}

// TestShardedCampaignLiveFlaky drives the sharded executor through the
// live-fault and flaky-connector machinery on several workers; under
// -race this is the concurrent-shards soak test.
func TestShardedCampaignLiveFlaky(t *testing.T) {
	cfg := shardedTestConfig(4)
	cfg.Iterations = 6
	cfg.Live = true
	cfg.FlakyRate = 0.15
	// Live hangs block until the watchdog fires; a tight deadline keeps
	// the soak fast without changing what it exercises.
	cfg.Robust = core.RobustnessConfig{Timeout: 40 * time.Millisecond, Grace: 50 * time.Millisecond}
	c := RunGQSCampaign(cfg)
	if c.Queries == 0 {
		t.Fatal("live sharded campaign executed no queries")
	}
}
