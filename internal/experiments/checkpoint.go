package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"gqs/internal/core"
	"gqs/internal/faults"
	"gqs/internal/gdb"
	"gqs/internal/metrics"
)

// This file is the durable campaign front-end: RunGQSCampaign with a
// checkpoint journal threaded through both executors. The per-unit
// payload is the shard log — the buffered detections the canonical merge
// consumes — serialized by fault ID and re-resolved against the catalogs
// on resume, so a resumed campaign's CanonicalBugReport is byte-identical
// to an uninterrupted run's.
//
// Restored findings lose their Graph/Schema pointers and Latency (the
// graph is re-derivable from the seed but not persisted; latency is
// hardware-dependent and excluded from the canonical report anyway).

// CampaignFingerprint renders everything that determines a campaign's
// outcome; see core.CampaignFingerprint for the refusal contract.
func CampaignFingerprint(cfg CampaignConfig) string {
	mode := "sequential"
	if cfg.Workers >= 1 {
		mode = "sharded"
	}
	var names []string
	for _, sim := range gdb.All() {
		names = append(names, sim.Name())
	}
	targets := strings.Join(names, ",")
	if cfg.Live {
		targets += " live"
	}
	if cfg.FlakyRate > 0 {
		targets += fmt.Sprintf(" flaky=%g", cfg.FlakyRate)
	}
	return core.CampaignFingerprint(mode, targets, faults.CatalogFingerprint(),
		cfg.Workers, cfg.ResolvedBatch(), cfg.Iterations, campaignRunnerConfig(cfg))
}

// RunGQSCampaignDurable is RunGQSCampaign under a cancelable context and
// an optional checkpoint journal. With a nil checkpointer it still honors
// ctx (for signal-driven shutdown without durability); with both nil
// arguments it is exactly RunGQSCampaign. The caller owns the
// checkpointer: flush/close it after the campaign returns, and treat a
// canceled campaign's result as partial.
func RunGQSCampaignDurable(ctx context.Context, cfg CampaignConfig, ck *core.Checkpointer) *Campaign {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Workers >= 1 {
		return runShardedCampaignCtx(ctx, cfg, ck)
	}
	return runSequentialCampaignCtx(ctx, cfg, ck)
}

// runSequentialCampaignCtx is the legacy sequential executor with
// checkpoint/resume: the unit of durability is one workflow iteration,
// resumed via the runner's RNG fast-forward (core.RunCheckpointedSequential).
func runSequentialCampaignCtx(ctx context.Context, cfg CampaignConfig, ck *core.Checkpointer) *Campaign {
	c := &Campaign{}
	seen := map[string]bool{}
	for _, sim := range gdb.All() {
		if ctx.Err() != nil {
			break
		}
		runSequentialOn(ctx, c, sim, cfg, seen, ck)
	}
	return c
}

func runSequentialOn(ctx context.Context, c *Campaign, sim *gdb.Sim, cfg CampaignConfig, seen map[string]bool, ck *core.Checkpointer) {
	sim.SetLiveFaults(cfg.Live)
	var tgt gdb.Connector = sim
	if cfg.FlakyRate > 0 {
		// Note the resume caveat: the sequential flaky stream is a single
		// RNG over the whole campaign, so a resumed flaky sequential
		// campaign does not replay the uninterrupted fault schedule (the
		// sharded executor reseeds per shard and does). DESIGN.md §10.
		tgt = gdb.NewFlaky(sim, gdb.FlakyConfig{
			Seed:           cfg.Seed + 0x5eed,
			ErrorRate:      cfg.FlakyRate,
			ResetErrorRate: cfg.FlakyRate / 2,
		})
	}
	name := sim.Name()
	// cur buffers the current iteration's tallies; each completed
	// iteration's Payload call seals it into logs. Without a checkpointer
	// the whole run accumulates into one log — the merge arithmetic is
	// identical either way.
	var logs []shardLog
	var cur shardLog
	hooks := core.DurableHooks{
		Payload: func(string, int, int) json.RawMessage {
			p := encodeShardLogs([]shardLog{cur})
			logs = append(logs, cur)
			cur = shardLog{}
			return p
		},
		Restore: func(u core.UnitRecord) {
			logs = append(logs, decodeShardLogs(name, u.Payload, 1)[0])
		},
	}
	stats, _ := core.RunCheckpointedSequential(ctx, tgt, campaignRunnerConfig(cfg),
		cfg.Iterations, name, ck, hooks, func(tc *core.TestCase) {
			cur.queries++
			switch tc.Verdict {
			case core.VerdictSkip:
				cur.skips++
				return
			case core.VerdictPass:
				return
			}
			b := tgt.TriggeredBug()
			if b == nil {
				return
			}
			for _, ev := range cur.events {
				if ev.bug.ID == b.ID {
					return
				}
			}
			cur.events = append(cur.events, shardEvent{
				bug:      b,
				query:    tc.Query,
				features: featuresOf(tc),
				steps:    tc.Steps,
				atLocal:  cur.queries,
				graph:    tc.Graph,
				schema:   tc.Schema,
			})
		})
	if cur.queries > 0 || len(cur.events) > 0 {
		logs = append(logs, cur) // ck == nil, or a canceled partial iteration
	}
	c.Robust.Add(stats.Robust)
	mergeShardLogs(c, name, logs, seen, -1)
}

// shardEventRecord and shardLogRecord are the journal payload codec for
// one shard log. Bugs are persisted by catalog ID and re-resolved on
// decode; feature vectors are recomputed from the query text. A unit
// payload is a JSON array of shard-log records, one per logical shard
// in the unit's range (sequential units always hold exactly one).
type shardEventRecord struct {
	Bug   string `json:"bug"`
	Query string `json:"query"`
	Steps int    `json:"steps"`
	At    int    `json:"at"` // 1-based shard-local query index
}

type shardLogRecord struct {
	Queries int                `json:"queries"`
	Skips   int                `json:"skips"`
	Events  []shardEventRecord `json:"events,omitempty"`
}

func encodeShardLogs(logs []shardLog) json.RawMessage {
	recs := make([]shardLogRecord, len(logs))
	for i := range logs {
		recs[i] = shardLogRecord{Queries: logs[i].queries, Skips: logs[i].skips}
		for _, ev := range logs[i].events {
			recs[i].Events = append(recs[i].Events, shardEventRecord{
				Bug: ev.bug.ID, Query: ev.query, Steps: ev.steps, At: ev.atLocal,
			})
		}
	}
	p, err := json.Marshal(recs)
	if err != nil {
		return nil
	}
	return p
}

// decodeShardLogs always returns exactly count logs: a payload that is
// missing, truncated, or undecodable yields zero logs in the broken
// positions (the unit then merges as if it had found nothing — the
// fingerprint guards against every systematic cause).
func decodeShardLogs(gdbName string, data json.RawMessage, count int) []shardLog {
	logs := make([]shardLog, count)
	var recs []shardLogRecord
	if len(data) == 0 || json.Unmarshal(data, &recs) != nil {
		return logs
	}
	cat := faults.Catalogs()[gdbName]
	for i := 0; i < len(recs) && i < count; i++ {
		rec := recs[i]
		log := shardLog{queries: rec.Queries, skips: rec.Skips}
		for _, er := range rec.Events {
			if cat == nil {
				break
			}
			b := cat.ByID(er.Bug)
			if b == nil {
				continue // catalog drift is fingerprint-guarded; belt and braces
			}
			log.events = append(log.events, shardEvent{
				bug:      b,
				query:    er.Query,
				features: metrics.Analyze(er.Query),
				steps:    er.Steps,
				atLocal:  er.At,
			})
		}
		logs[i] = log
	}
	return logs
}
