package graph

import (
	"fmt"
	"math/rand"

	"gqs/internal/value"
)

// Bulk graph generation: the large-graph leg of the campaign harness.
// Where the paper's generator builds ~13-node graphs one element at a
// time (NewNode/NewRel maintaining adjacency incrementally, the store
// indexing per element), generateBulk writes a Scale-node graph
// straight into presized tables and carves all adjacency lists from two
// shared backing arrays in one counting pass. No per-element index
// churn happens at all: label/property indexes and the adjacency index
// are each built exactly once when the graph is sealed and first read.
//
// Relationship endpoints are drawn by preferential attachment — every
// accepted endpoint re-enters the draw pool — so degree follows a
// power law: a few hub nodes collect thousands of relationships while
// the median node keeps a handful. That skew is what gives the
// adjacency index something to beat the scan on (a typed expansion
// from a hub touches the matching bucket, not the hub's whole list),
// and mirrors the degree structure of the production graphs the
// related work benchmarks against. Relationship types are Zipf-skewed
// for the same reason: rare types make typed expansion maximally
// selective.

// bulkRelFactor is the default relationships-per-node ratio when
// MaxRels does not cover Scale.
const bulkRelFactor = 3

// bulkTypeSkew is the Zipf exponent of the relationship-type
// distribution (s > 1 required by rand.NewZipf).
const bulkTypeSkew = 1.5

// generateBulk builds the Scale-node power-law graph. Deterministic for
// a given rand source, like Generate.
func generateBulk(r *rand.Rand, cfg GenConfig) (*Graph, *Schema) {
	cfg = cfg.withDefaults()
	nNodes := cfg.Scale
	if nNodes < 2 {
		nNodes = 2
	}
	nRels := cfg.MaxRels
	if nRels < nNodes {
		nRels = bulkRelFactor * nNodes
	}

	s := &Schema{Props: make(map[string]PropType, cfg.NumProps)}
	for i := 0; i < cfg.NumLabels; i++ {
		s.Labels = append(s.Labels, fmt.Sprintf("L%d", i))
	}
	for i := 0; i < cfg.NumRelTypes; i++ {
		s.RelTypes = append(s.RelTypes, fmt.Sprintf("T%d", i))
	}
	for i := 0; i < cfg.NumProps; i++ {
		s.Props[fmt.Sprintf("k%d", i)] = PropType(i % 5)
	}
	// One declared index per label over k0. Every node carries k0 = id,
	// so any node is reachable through a selective probe — the bench's
	// anchored per-hop queries rely on this.
	for _, l := range s.Labels {
		s.Indexes = append(s.Indexes, IndexSpec{Label: l, Property: "k0"})
	}

	g := &Graph{
		nodes: make(map[ID]*Node, nNodes),
		rels:  make(map[ID]*Rel, nRels),
		out:   make(map[ID][]ID, nNodes),
		in:    make(map[ID][]ID, nNodes),
	}
	// Nodes 0..nNodes-1: one label, props id + k0 (both the element ID,
	// k0 being the indexed probe key). Node structs and their one-label
	// slices come from two batch allocations — at bulk scale, per-element
	// allocation is the dominant generation cost. The structs are safe to
	// share a backing array: overlay mutation copies elements before
	// writing (MutableNode), never in place.
	nodeArr := make([]Node, nNodes)
	labelArr := make([]string, nNodes)
	for i := 0; i < nNodes; i++ {
		id := ID(i)
		labelArr[i] = s.Labels[r.Intn(len(s.Labels))]
		n := &nodeArr[i]
		n.ID = id
		n.Labels = labelArr[i : i+1 : i+1]
		n.Props = make(map[string]value.Value, 2)
		n.Props["id"] = value.Int(int64(id))
		n.Props["k0"] = value.Int(int64(id))
		g.nodes[id] = n
	}

	// Endpoint draws: Barabási–Albert-style arrival. Relationships are
	// distributed evenly over nodes in ID order; each attaches its
	// arriving node to an endpoint drawn from the pool of all previous
	// endpoints (seeded with node 0), and both endpoints re-enter the
	// pool, so early nodes accumulate degree ~ √(N/i) — genuine
	// power-law hubs. Orientation is randomized per relationship so
	// hubs grow both in- and out-degree. Colliding endpoints become
	// self-loops or are redirected, as in the small generator.
	pool := make([]ID, 1, 1+2*nRels)
	zipf := rand.NewZipf(r, bulkTypeSkew, 1, uint64(len(s.RelTypes)-1))
	starts := make([]ID, nRels)
	ends := make([]ID, nRels)
	typs := make([]string, nRels)
	outDeg := make([]int32, nNodes)
	inDeg := make([]int32, nNodes)
	for i := 0; i < nRels; i++ {
		a := ID(1 + i*(nNodes-1)/nRels)
		b := pool[r.Intn(len(pool))]
		if a == b && r.Intn(100) >= cfg.SelfLoopPercent {
			b = ID((int(b) + 1) % nNodes)
		}
		if r.Intn(2) == 1 {
			a, b = b, a
		}
		pool = append(pool, a, b)
		starts[i], ends[i] = a, b
		typs[i] = s.RelTypes[zipf.Uint64()]
		outDeg[a]++
		inDeg[b]++
	}

	// Adjacency fill: prefix-sum offsets carve every node's out/in list
	// from one backing array per direction. Filling in relationship-ID
	// order keeps each list ascending in rel ID, exactly the invariant
	// incremental NewRel maintains. The three-index slice expressions
	// clamp capacity so a later overlay append can never clobber a
	// neighbour's list.
	outOff := make([]int32, nNodes+1)
	inOff := make([]int32, nNodes+1)
	for i := 0; i < nNodes; i++ {
		outOff[i+1] = outOff[i] + outDeg[i]
		inOff[i+1] = inOff[i] + inDeg[i]
	}
	outBack := make([]ID, nRels)
	inBack := make([]ID, nRels)
	outPos := make([]int32, nNodes)
	inPos := make([]int32, nNodes)
	copy(outPos, outOff[:nNodes])
	copy(inPos, inOff[:nNodes])
	relArr := make([]Rel, nRels)
	for i := 0; i < nRels; i++ {
		rid := ID(nNodes + i)
		a, b := starts[i], ends[i]
		rel := &relArr[i]
		rel.ID, rel.Type, rel.Start, rel.End = rid, typs[i], a, b
		// No relationship properties: at bulk scale the per-rel map is
		// the single most expensive allocation, and property ground
		// truth on large graphs comes from nodes (the sampled selector
		// skips prop-less elements). Writes still work — the COW copy
		// materializes an empty map.
		g.rels[rid] = rel
		outBack[outPos[a]] = rid
		outPos[a]++
		inBack[inPos[b]] = rid
		inPos[b]++
	}
	for i := 0; i < nNodes; i++ {
		if outDeg[i] > 0 {
			g.out[ID(i)] = outBack[outOff[i]:outOff[i+1]:outOff[i+1]]
		}
		if inDeg[i] > 0 {
			g.in[ID(i)] = inBack[inOff[i]:inOff[i+1]:inOff[i+1]]
		}
	}
	g.nextID = ID(nNodes + nRels)
	g.numNodes = nNodes
	g.numRels = nRels
	return g, s
}
