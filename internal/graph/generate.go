package graph

import (
	"fmt"
	"math/rand"

	"gqs/internal/value"
)

// PropType is the declared type of a property name. Property names have a
// fixed type across the whole graph so that synthesized expressions can be
// typed statically, and so that schema-first databases (Kùzu in the paper)
// can be initialized from the same generator.
type PropType int

// The generated property types.
const (
	PropInt PropType = iota
	PropFloat
	PropString
	PropBool
	PropStrList
)

// String returns a Cypher-ish name for the property type.
func (t PropType) String() string {
	switch t {
	case PropInt:
		return "INTEGER"
	case PropFloat:
		return "FLOAT"
	case PropString:
		return "STRING"
	case PropBool:
		return "BOOLEAN"
	case PropStrList:
		return "LIST<STRING>"
	default:
		return fmt.Sprintf("PROPTYPE(%d)", int(t))
	}
}

// IndexSpec describes one label+property index, created during graph
// initialization as the paper does.
type IndexSpec struct {
	Label    string
	Property string
}

// Schema records the label, relationship-type, and property vocabularies
// of a generated graph.
type Schema struct {
	Labels   []string
	RelTypes []string
	Props    map[string]PropType
	Indexes  []IndexSpec
}

// PropNames returns the property names in a deterministic order.
func (s *Schema) PropNames() []string {
	names := make([]string, 0, len(s.Props))
	for i := 0; ; i++ {
		n := fmt.Sprintf("k%d", i)
		if _, ok := s.Props[n]; !ok {
			break
		}
		names = append(names, n)
	}
	return names
}

// GenConfig controls random graph generation. The defaults mirror the
// paper's experimental setup (§5.1): graphs of at most 13 nodes and 500
// relationships.
type GenConfig struct {
	MaxNodes         int // upper bound on nodes; at least 2 are generated
	MaxRels          int // upper bound on relationships
	NumLabels        int // size of the label vocabulary (L0..Ln-1)
	NumRelTypes      int // size of the type vocabulary (T0..Tn-1)
	NumProps         int // size of the property-name vocabulary (k0..kn-1)
	MaxLabelsPerNode int
	MaxPropsPerElem  int
	SelfLoopPercent  int // percentage of relationships allowed to be self-loops
	// Scale, when positive, switches Generate to the bulk generator
	// (see bulk.go): a power-law-degree graph of exactly Scale nodes
	// built in batch, sized for the large-graph workloads. Zero keeps
	// the paper's small-graph generator with its exact draw schedule.
	Scale int
}

// DefaultGenConfig returns the paper's configuration.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		MaxNodes:         13,
		MaxRels:          500,
		NumLabels:        13,
		NumRelTypes:      11,
		NumProps:         100,
		MaxLabelsPerNode: 3,
		MaxPropsPerElem:  6,
		SelfLoopPercent:  5,
	}
}

func (c GenConfig) withDefaults() GenConfig {
	d := DefaultGenConfig()
	if c.MaxNodes <= 0 {
		c.MaxNodes = d.MaxNodes
	}
	if c.MaxRels <= 0 {
		c.MaxRels = d.MaxRels
	}
	if c.NumLabels <= 0 {
		c.NumLabels = d.NumLabels
	}
	if c.NumRelTypes <= 0 {
		c.NumRelTypes = d.NumRelTypes
	}
	if c.NumProps <= 0 {
		c.NumProps = d.NumProps
	}
	if c.MaxLabelsPerNode <= 0 {
		c.MaxLabelsPerNode = d.MaxLabelsPerNode
	}
	if c.MaxPropsPerElem <= 0 {
		c.MaxPropsPerElem = d.MaxPropsPerElem
	}
	return c
}

// Generate produces a random labeled property graph and its schema,
// implementing step ① of the GQS workflow. Generation is deterministic
// for a given rand source.
func Generate(r *rand.Rand, cfg GenConfig) (*Graph, *Schema) {
	if cfg.Scale > 0 {
		// Dispatch before any draw from r so the default path's draw
		// schedule — and every campaign fingerprint derived from it —
		// is untouched by the bulk generator's existence.
		return generateBulk(r, cfg)
	}
	cfg = cfg.withDefaults()
	s := &Schema{Props: make(map[string]PropType, cfg.NumProps)}
	for i := 0; i < cfg.NumLabels; i++ {
		s.Labels = append(s.Labels, fmt.Sprintf("L%d", i))
	}
	for i := 0; i < cfg.NumRelTypes; i++ {
		s.RelTypes = append(s.RelTypes, fmt.Sprintf("T%d", i))
	}
	for i := 0; i < cfg.NumProps; i++ {
		s.Props[fmt.Sprintf("k%d", i)] = PropType(i % 5)
	}

	g := New()
	nNodes := 2 + r.Intn(cfg.MaxNodes-1)
	for i := 0; i < nNodes; i++ {
		labels := pickDistinct(r, s.Labels, 1+r.Intn(cfg.MaxLabelsPerNode))
		n := g.NewNode(labels...)
		fillProps(r, s, n.Props, cfg.MaxPropsPerElem)
	}
	ids := g.NodeIDs()
	nRels := 1 + r.Intn(cfg.MaxRels)
	for i := 0; i < nRels; i++ {
		a := ids[r.Intn(len(ids))]
		b := ids[r.Intn(len(ids))]
		if a == b && r.Intn(100) >= cfg.SelfLoopPercent {
			b = ids[(indexOf(ids, a)+1)%len(ids)]
		}
		typ := s.RelTypes[r.Intn(len(s.RelTypes))]
		rel, err := g.NewRel(a, b, typ)
		if err != nil {
			panic("graph: generated relationship between missing nodes: " + err.Error())
		}
		fillProps(r, s, rel.Props, cfg.MaxPropsPerElem)
	}

	// Index a handful of label+property combinations, as the paper's
	// initializer creates indexes for labels and properties.
	nIdx := 1 + r.Intn(4)
	for i := 0; i < nIdx; i++ {
		s.Indexes = append(s.Indexes, IndexSpec{
			Label:    s.Labels[r.Intn(len(s.Labels))],
			Property: fmt.Sprintf("k%d", r.Intn(cfg.NumProps)),
		})
	}
	return g, s
}

func indexOf(ids []ID, id ID) int {
	for i, x := range ids {
		if x == id {
			return i
		}
	}
	return 0
}

func pickDistinct(r *rand.Rand, pool []string, n int) []string {
	if n > len(pool) {
		n = len(pool)
	}
	perm := r.Perm(len(pool))
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = pool[perm[i]]
	}
	return out
}

func fillProps(r *rand.Rand, s *Schema, props map[string]value.Value, maxProps int) {
	n := 1 + r.Intn(maxProps)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("k%d", r.Intn(len(s.Props)))
		props[name] = RandomPropValue(r, s.Props[name])
	}
}

// RandomPropValue generates a random value of the given property type,
// matching the paper's value domains (32-bit integers, short alphanumeric
// strings, booleans, floats, and small string lists).
func RandomPropValue(r *rand.Rand, t PropType) value.Value {
	switch t {
	case PropInt:
		return value.Int(int64(int32(r.Uint32())))
	case PropFloat:
		return value.Float(float64(int32(r.Uint32())) / 1000.0)
	case PropString:
		return value.Str(randomString(r, 5+r.Intn(5)))
	case PropBool:
		return value.Bool(r.Intn(2) == 0)
	case PropStrList:
		n := 1 + r.Intn(3)
		vs := make([]value.Value, n)
		for i := range vs {
			vs[i] = value.Str(randomString(r, 4+r.Intn(4)))
		}
		return value.ListOf(vs)
	default:
		return value.Null
	}
}

const alnum = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

func randomString(r *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = alnum[r.Intn(len(alnum))]
	}
	return string(b)
}
