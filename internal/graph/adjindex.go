package graph

// Adjacency index: per-node candidate relationship lists keyed by
// (direction, relationship type), built once per sealed snapshot. Match
// expansion over a typed relationship pattern walks the (node, type)
// bucket instead of scanning the node's full adjacency list, so hub
// nodes with thousands of relationships cost only as much as the
// matching subset. The buckets preserve enough positional information
// (Pos/NSPos) for the engine to reconstruct the scan path's candidate
// order and match-step accounting exactly, which is what keeps indexed
// expansion observationally identical to the scan it replaces.

// AdjEntry is one indexed relationship incident to a node: the
// relationship ID, the far endpoint (End for out entries, Start for in
// entries), and the entry's position in the node's full adjacency list.
type AdjEntry struct {
	Rel   ID
	Other ID
	// Pos is the index of Rel in the node's full out (or in) adjacency
	// list — the position a scan of that list would visit it at.
	Pos int32
	// NSPos is, for in entries, the entry's ordinal among the in-list's
	// non-self-loop entries, or -1 for self-loops. The undirected In
	// pass skips self-loops before any other per-candidate work, so its
	// step accounting runs in this compacted position space. For out
	// entries NSPos == Pos.
	NSPos int32
}

// adjKey addresses one (node, relationship type) bucket; the type is
// interned to a small index so bucket lookups and the build's bucket
// assigns hash two integers instead of a string.
type adjKey struct {
	node ID
	ti   int32
}

// AdjIndex is the per-snapshot adjacency index. Buckets hold entries in
// ascending Pos order (the build walks each adjacency list in order),
// so a typed expansion visits candidates exactly as the full-list scan
// would.
type AdjIndex struct {
	// typIdx interns every relationship type present in the snapshot;
	// types absent from it have no entries anywhere.
	typIdx map[string]int32
	out    map[adjKey][]AdjEntry
	in     map[adjKey][]AdjEntry
	// selfIn counts self-loop entries in each node's in list (sparse:
	// nodes without self-loops are absent).
	selfIn map[ID]int32
}

// Out returns the node's out entries of the given type, Pos-ascending.
// The slice is shared and read-only.
func (ix *AdjIndex) Out(n ID, typ string) []AdjEntry {
	if ti, ok := ix.typIdx[typ]; ok {
		return ix.out[adjKey{n, ti}]
	}
	return nil
}

// In returns the node's in entries of the given type, Pos-ascending
// (shared, read-only).
func (ix *AdjIndex) In(n ID, typ string) []AdjEntry {
	if ti, ok := ix.typIdx[typ]; ok {
		return ix.in[adjKey{n, ti}]
	}
	return nil
}

// SelfLoopIn returns how many entries of the node's in list are
// self-loops.
func (ix *AdjIndex) SelfLoopIn(n ID) int {
	return int(ix.selfIn[n])
}

// adjBuilder carries the scratch state of one index build: the type
// table (relationship types interned to small indexes) and per-list
// scratch arrays, so grouping a node's adjacency list by type costs no
// allocation beyond the shared entry backing array. Every relationship
// appears in exactly one out list and one in list, so each direction's
// entries total len(s.rels) and are carved from a single slab — at bulk
// scale, growing one bucket slice per entry is the dominant build cost.
type adjBuilder struct {
	typIdx map[string]int32
	counts []int32 // per-type entry count of the current list
	starts []int32 // per-type fill cursor of the current list
	tis    []int32 // per-entry type index of the current list
	others []ID    // per-entry far endpoint of the current list
	selfs  []bool  // per-entry self-loop flag (in lists only)

	// Dense rel-ID fast path: when the snapshot's relationship IDs form
	// a contiguous range (always true for bulk-generated graphs), meta
	// holds each relationship's endpoints and interned type at rid -
	// relBase, replacing two hashed lookups per adjacency entry into a
	// snapshot-sized map with one indexed read.
	meta    []relMeta
	relBase ID
}

type relMeta struct {
	start, end ID
	ti         int32
}

func (b *adjBuilder) idxOf(typ string) int32 {
	if i, ok := b.typIdx[typ]; ok {
		return i
	}
	i := int32(len(b.typIdx))
	b.typIdx[typ] = i
	b.counts = append(b.counts, 0)
	b.starts = append(b.starts, 0)
	return i
}

func (b *adjBuilder) scratch(n int) {
	if cap(b.tis) < n {
		b.tis = make([]int32, n)
		b.others = make([]ID, n)
		b.selfs = make([]bool, n)
	}
	b.tis = b.tis[:n]
	b.others = b.others[:n]
	b.selfs = b.selfs[:n]
}

// carve groups one node's adjacency list by relationship type into
// subslices of back (filled in list order, so buckets ascend in Pos)
// and installs the buckets. in selects the in-list entry shape: Other =
// Start, self-loops flagged, NSPos compacted.
func (b *adjBuilder) carve(ix *AdjIndex, s *Snapshot, n ID, list []ID, back []AdjEntry, in bool) []AdjEntry {
	b.scratch(len(list))
	for pos, rid := range list {
		var ti int32
		var start, end ID
		if b.meta != nil {
			m := &b.meta[rid-b.relBase]
			ti, start, end = m.ti, m.start, m.end
		} else {
			r := s.rels[rid]
			ti, start, end = b.idxOf(r.Type), r.Start, r.End
		}
		b.tis[pos] = ti
		b.counts[ti]++
		if in {
			b.others[pos] = start
			b.selfs[pos] = start == end
		} else {
			b.others[pos] = end
		}
	}
	base := len(back)
	back = back[:base+len(list)]
	off := int32(0)
	for ti, c := range b.counts {
		b.starts[ti] = off
		off += c
	}
	ns := int32(0)
	for pos, rid := range list {
		ti := b.tis[pos]
		e := AdjEntry{Rel: rid, Other: b.others[pos], Pos: int32(pos), NSPos: int32(pos)}
		if in {
			if b.selfs[pos] {
				e.NSPos = -1
				ix.selfIn[n]++
			} else {
				e.NSPos = ns
				ns++
			}
		}
		back[base+int(b.starts[ti])] = e
		b.starts[ti]++
	}
	dst := ix.out
	if in {
		dst = ix.in
	}
	for ti, c := range b.counts {
		if c > 0 {
			end := base + int(b.starts[ti])
			dst[adjKey{n, int32(ti)}] = back[end-int(c) : end : end]
			b.counts[ti] = 0
		}
	}
	return back
}

// buildAdjIndex indexes every adjacency list of the snapshot: one pass
// over each direction's lists, grouping each list by relationship type
// in list order.
func buildAdjIndex(s *Snapshot) *AdjIndex {
	ix := &AdjIndex{
		typIdx: make(map[string]int32, 16),
		out:    make(map[adjKey][]AdjEntry, len(s.out)),
		in:     make(map[adjKey][]AdjEntry, len(s.in)),
		selfIn: make(map[ID]int32),
	}
	b := &adjBuilder{typIdx: ix.typIdx}
	if n := len(s.relIDs); n > 0 && int(s.relIDs[n-1]-s.relIDs[0]) == n-1 {
		b.relBase = s.relIDs[0]
		b.meta = make([]relMeta, n)
		for rid, r := range s.rels {
			b.meta[rid-b.relBase] = relMeta{start: r.Start, end: r.End, ti: b.idxOf(r.Type)}
		}
	}
	outBack := make([]AdjEntry, 0, len(s.rels))
	inBack := make([]AdjEntry, 0, len(s.rels))
	for _, n := range s.nodeIDs {
		if list := s.out[n]; len(list) > 0 {
			outBack = b.carve(ix, s, n, list, outBack, false)
		}
		if list := s.in[n]; len(list) > 0 {
			inBack = b.carve(ix, s, n, list, inBack, true)
		}
	}
	return ix
}

// AdjIndex returns the snapshot's adjacency index, building it on the
// first request. Safe for concurrent use; every store loaded from this
// snapshot shares one build.
func (s *Snapshot) AdjIndex() *AdjIndex {
	s.adjOnce.Do(func() { s.adj = buildAdjIndex(s) })
	return s.adj
}

// BaseAdjIndex returns the adjacency index of the graph's base
// snapshot, or nil for a plain (unsealed) graph. Overlay writes never
// invalidate it: a relationship's Type/Start/End are immutable, and any
// overlay adjacency entry shadows the base list entirely (see
// AdjShadowed), so base-index hits are valid exactly when the overlay
// holds no entry for the node.
func (g *Graph) BaseAdjIndex() *AdjIndex {
	if g.base == nil {
		return nil
	}
	return g.base.AdjIndex()
}

// AdjShadowed reports whether the overlay holds an adjacency entry for
// the node in the given direction — including nil tombstones. When it
// does, the overlay entry is the node's complete adjacency list and the
// base index must not be consulted for it.
func (g *Graph) AdjShadowed(n ID, out bool) bool {
	if out {
		_, ok := g.out[n]
		return ok
	}
	_, ok := g.in[n]
	return ok
}
