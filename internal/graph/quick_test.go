package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickAdjacencyConsistent: for arbitrary build sequences, the
// adjacency lists agree with the relationship endpoints.
func TestQuickAdjacencyConsistent(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := New()
		g.NewNode("L")
		for _, op := range ops {
			ids := g.NodeIDs()
			switch op % 4 {
			case 0:
				g.NewNode("L")
			case 1:
				a := ids[r.Intn(len(ids))]
				b := ids[r.Intn(len(ids))]
				g.NewRel(a, b, "T")
			case 2:
				rels := g.RelIDs()
				if len(rels) > 0 {
					g.DeleteRel(rels[r.Intn(len(rels))])
				}
			case 3:
				g.DeleteNode(ids[r.Intn(len(ids))], true)
				if g.NumNodes() == 0 {
					g.NewNode("L")
				}
			}
		}
		// Invariants: every rel appears exactly once in its start's Out
		// and its end's In; adjacency references no deleted rels.
		for _, id := range g.RelIDs() {
			rel := g.Rel(id)
			if countID(g.Out(rel.Start), id) != 1 || countID(g.In(rel.End), id) != 1 {
				return false
			}
		}
		for _, nid := range g.NodeIDs() {
			for _, rid := range g.Incident(nid) {
				if g.Rel(rid) == nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func countID(ids []ID, id ID) int {
	n := 0
	for _, x := range ids {
		if x == id {
			n++
		}
	}
	return n
}

// TestQuickIDsUniqueAcrossElements: node and relationship identifiers
// never collide, which the GQS `id` predicates rely on.
func TestQuickIDsUniqueAcrossElements(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, _ := Generate(r, GenConfig{MaxNodes: 8, MaxRels: 30})
		seen := map[ID]bool{}
		for _, id := range g.NodeIDs() {
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		for _, id := range g.RelIDs() {
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickCloneIsolation: mutations to a clone never affect the original.
func TestQuickCloneIsolation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, _ := Generate(r, GenConfig{MaxNodes: 6, MaxRels: 15})
		before := g.ToCypher()
		c := g.Clone()
		c.NewNode("ZZZ")
		for _, id := range c.NodeIDs() {
			c.Node(id).Labels = append(c.Node(id).Labels, "MUT")
		}
		for _, id := range c.RelIDs() {
			c.DeleteRel(id)
		}
		return g.ToCypher() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
