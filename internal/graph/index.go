package graph

import "slices"

// Index is the immutable label/property index of one graph state: label →
// ascending node IDs, and per schema-declared IndexSpec, property value
// key → ascending node IDs. It is never mutated after BuildIndex returns,
// so one instance can back any number of stores concurrently; the engine
// layers per-store add/remove delta sets on top (engine.Store) instead of
// rebuilding it per Reset.
type Index struct {
	label  map[string][]ID
	labels []string // labels with at least one node, sorted
	prop   map[IndexSpec]map[string][]ID
	specs  []IndexSpec // declared specs in schema order, deduplicated
}

// BuildIndex indexes the given nodes (ids ascending, node resolving each
// ID) under the schema's declared property indexes. A nil schema declares
// none.
func BuildIndex(ids []ID, node func(ID) *Node, schema *Schema) *Index {
	ix := &Index{
		label: make(map[string][]ID),
		prop:  make(map[IndexSpec]map[string][]ID),
	}
	if schema != nil {
		for _, spec := range schema.Indexes {
			if _, ok := ix.prop[spec]; ok {
				continue
			}
			ix.prop[spec] = make(map[string][]ID)
			ix.specs = append(ix.specs, spec)
		}
	}
	for _, id := range ids {
		n := node(id)
		for _, l := range n.Labels {
			ix.label[l] = append(ix.label[l], id)
		}
		for _, spec := range ix.specs {
			if !n.HasLabel(spec.Label) {
				continue
			}
			if v, ok := n.Props[spec.Property]; ok {
				k := v.Key()
				ix.prop[spec][k] = append(ix.prop[spec][k], id)
			}
		}
	}
	for l := range ix.label {
		ix.labels = append(ix.labels, l)
	}
	slices.Sort(ix.labels)
	return ix
}

// Label returns the ascending node IDs carrying the label (shared,
// read-only), or nil.
func (ix *Index) Label(l string) []ID { return ix.label[l] }

// LabelCount returns the number of nodes carrying the label — the
// cardinality statistic behind the planner's scan-start cost model.
func (ix *Index) LabelCount(l string) int { return len(ix.label[l]) }

// Labels returns the labels with at least one node, sorted (shared,
// read-only).
func (ix *Index) Labels() []string { return ix.labels }

// HasLabelID reports whether the node carries the label in this index.
func (ix *Index) HasLabelID(l string, id ID) bool {
	_, ok := slices.BinarySearch(ix.label[l], id)
	return ok
}

// PropDeclared reports whether the spec was declared by the schema the
// index was built under.
func (ix *Index) PropDeclared(spec IndexSpec) bool {
	_, ok := ix.prop[spec]
	return ok
}

// Prop returns the ascending node IDs whose spec property has the given
// value key (shared, read-only), or nil.
func (ix *Index) Prop(spec IndexSpec, key string) []ID { return ix.prop[spec][key] }

// HasPropID reports whether the node is indexed under (spec, key).
func (ix *Index) HasPropID(spec IndexSpec, key string, id ID) bool {
	_, ok := slices.BinarySearch(ix.prop[spec][key], id)
	return ok
}

// Specs returns the declared index specs in schema order (shared,
// read-only).
func (ix *Index) Specs() []IndexSpec { return ix.specs }
