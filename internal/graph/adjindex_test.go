package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestAdjIndexMatchesAdjacencyLists reconstructs every (node, type)
// bucket naively from the sealed adjacency lists and compares it to the
// built index, including Pos/NSPos accounting and self-loop counts.
func TestAdjIndexMatchesAdjacencyLists(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		g, _ := Generate(r, GenConfig{MaxNodes: 20, MaxRels: 120})
		snap := g.Seal()
		ix := snap.AdjIndex()

		type key struct {
			node ID
			typ  string
		}
		wantOut := map[key][]AdjEntry{}
		wantIn := map[key][]AdjEntry{}
		wantSelf := map[ID]int32{}
		for _, n := range snap.NodeIDs() {
			for pos, rid := range snap.out[n] {
				rel := snap.Rel(rid)
				k := key{n, rel.Type}
				p := int32(pos)
				wantOut[k] = append(wantOut[k], AdjEntry{Rel: rid, Other: rel.End, Pos: p, NSPos: p})
			}
			ns := int32(0)
			for pos, rid := range snap.in[n] {
				rel := snap.Rel(rid)
				e := AdjEntry{Rel: rid, Other: rel.Start, Pos: int32(pos)}
				if rel.Start == rel.End {
					e.NSPos = -1
					wantSelf[n]++
				} else {
					e.NSPos = ns
					ns++
				}
				wantIn[key{n, rel.Type}] = append(wantIn[key{n, rel.Type}], e)
			}
		}
		for k, want := range wantOut {
			if got := ix.Out(k.node, k.typ); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: Out(%d, %s) = %v, want %v", seed, k.node, k.typ, got, want)
			}
		}
		for k, want := range wantIn {
			if got := ix.In(k.node, k.typ); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: In(%d, %s) = %v, want %v", seed, k.node, k.typ, got, want)
			}
		}
		if len(ix.out) != len(wantOut) || len(ix.in) != len(wantIn) {
			t.Fatalf("seed %d: bucket counts out %d/%d in %d/%d", seed, len(ix.out), len(wantOut), len(ix.in), len(wantIn))
		}
		for _, n := range snap.NodeIDs() {
			if got := ix.SelfLoopIn(n); got != int(wantSelf[n]) {
				t.Fatalf("seed %d: SelfLoopIn(%d) = %d, want %d", seed, n, got, wantSelf[n])
			}
		}
		if snap.AdjIndex() != ix {
			t.Fatal("AdjIndex not cached on the snapshot")
		}
	}
}

// TestAdjIndexSelfLoops pins NSPos on a handcrafted mix of self-loops
// and ordinary relationships sharing one in list.
func TestAdjIndexSelfLoops(t *testing.T) {
	g := New()
	a := g.NewNode("A").ID
	b := g.NewNode("B").ID
	mustRel := func(s, e ID, typ string) ID {
		rel, err := g.NewRel(s, e, typ)
		if err != nil {
			t.Fatal(err)
		}
		return rel.ID
	}
	r0 := mustRel(a, a, "T0") // self-loop
	r1 := mustRel(b, a, "T0")
	r2 := mustRel(a, a, "T1") // self-loop
	r3 := mustRel(b, a, "T1")
	ix := g.Seal().AdjIndex()

	// a's in list is [r0 r1 r2 r3]; non-self-loop ordinals are r1=0, r3=1.
	want := map[string][]AdjEntry{
		"T0": {{Rel: r0, Other: a, Pos: 0, NSPos: -1}, {Rel: r1, Other: b, Pos: 1, NSPos: 0}},
		"T1": {{Rel: r2, Other: a, Pos: 2, NSPos: -1}, {Rel: r3, Other: b, Pos: 3, NSPos: 1}},
	}
	for typ, w := range want {
		if got := ix.In(a, typ); !reflect.DeepEqual(got, w) {
			t.Fatalf("In(a, %s) = %v, want %v", typ, got, w)
		}
	}
	if ix.SelfLoopIn(a) != 2 || ix.SelfLoopIn(b) != 0 {
		t.Fatalf("SelfLoopIn: a=%d b=%d, want 2, 0", ix.SelfLoopIn(a), ix.SelfLoopIn(b))
	}
	if got := ix.Out(a, "T0"); len(got) != 1 || got[0].Rel != r0 || got[0].NSPos != 0 {
		t.Fatalf("Out(a, T0) = %v", got)
	}
}

// TestAdjShadowed pins the overlay-shadowing contract the engine's
// indexed expansion gates on: any overlay adjacency entry — appended,
// copied for removal, or a deletion tombstone — must report shadowed,
// and ResetToBase must clear it.
func TestAdjShadowed(t *testing.T) {
	g := New()
	a := g.NewNode("A").ID
	b := g.NewNode("B").ID
	c := g.NewNode("C").ID
	base, err := g.NewRel(a, b, "T0")
	if err != nil {
		t.Fatal(err)
	}
	g.Seal()

	for _, n := range []ID{a, b, c} {
		if g.AdjShadowed(n, true) || g.AdjShadowed(n, false) {
			t.Fatalf("node %d shadowed on a clean overlay", n)
		}
	}

	// New rel: start's out and end's in become overlay-resident.
	if _, err := g.NewRel(a, c, "T1"); err != nil {
		t.Fatal(err)
	}
	if !g.AdjShadowed(a, true) || !g.AdjShadowed(c, false) {
		t.Fatal("NewRel endpoints not shadowed")
	}
	if g.AdjShadowed(a, false) || g.AdjShadowed(c, true) {
		t.Fatal("NewRel shadowed the unwritten directions")
	}

	if !g.ResetToBase() {
		t.Fatal("ResetToBase failed")
	}
	if g.AdjShadowed(a, true) || g.AdjShadowed(c, false) {
		t.Fatal("shadowing survived ResetToBase")
	}

	// Deleting a base rel copies both endpoints' lists into the overlay.
	g.DeleteRel(base.ID)
	if !g.AdjShadowed(a, true) || !g.AdjShadowed(b, false) {
		t.Fatal("DeleteRel endpoints not shadowed")
	}

	g.ResetToBase()
	// Deleting a base node tombstones its adjacency in both directions.
	if err := g.DeleteNode(b, true); err != nil {
		t.Fatal(err)
	}
	if !g.AdjShadowed(b, true) || !g.AdjShadowed(b, false) {
		t.Fatal("DeleteNode tombstones not shadowed")
	}
}

// TestGenerateBulk pins the bulk generator's shape: exact node count,
// determinism per seed, ascending per-list rel IDs (the invariant
// incremental NewRel maintains and the adjacency index's Pos relies
// on), power-law degree skew, and the per-label k0 index specs.
func TestGenerateBulk(t *testing.T) {
	const scale = 5000
	gen := func(seed int64) (*Graph, *Schema) {
		return Generate(rand.New(rand.NewSource(seed)), GenConfig{Scale: scale})
	}
	g, s := gen(11)
	if g.NumNodes() != scale {
		t.Fatalf("NumNodes = %d, want %d", g.NumNodes(), scale)
	}
	if g.NumRels() != bulkRelFactor*scale {
		t.Fatalf("NumRels = %d, want %d", g.NumRels(), bulkRelFactor*scale)
	}
	if len(s.Indexes) != len(s.Labels) {
		t.Fatalf("index specs = %d, want one per label (%d)", len(s.Indexes), len(s.Labels))
	}

	maxOut := 0
	for id, list := range g.out {
		prev := ID(-1)
		for _, rid := range list {
			if rid <= prev {
				t.Fatalf("node %d: out list not ascending: %v", id, list)
			}
			prev = rid
			if g.rels[rid].Start != id {
				t.Fatalf("node %d: out list holds rel %d starting at %d", id, rid, g.rels[rid].Start)
			}
		}
		if len(list) > maxOut {
			maxOut = len(list)
		}
	}
	meanOut := float64(g.NumRels()) / float64(g.NumNodes())
	if float64(maxOut) < 10*meanOut {
		t.Fatalf("degree skew too flat: max out-degree %d vs mean %.1f", maxOut, meanOut)
	}

	// Determinism: same seed, same graph.
	g2, _ := gen(11)
	if !reflect.DeepEqual(g.out, g2.out) || !reflect.DeepEqual(g.in, g2.in) {
		t.Fatal("bulk generation is not deterministic per seed")
	}
	for id, r := range g.rels {
		r2 := g2.rels[id]
		if r2 == nil || r.Type != r2.Type || r.Start != r2.Start || r.End != r2.End {
			t.Fatalf("rel %d differs across identical seeds", id)
		}
	}

	// Sealing must adopt the bulk tables unchanged.
	snap := g.Seal()
	if snap.NumNodes() != scale || len(snap.RelIDs()) != bulkRelFactor*scale {
		t.Fatalf("sealed counts: %d nodes, %d rels", snap.NumNodes(), len(snap.RelIDs()))
	}
}
