package graph

import (
	"fmt"
	"sort"
	"strings"

	"gqs/internal/value"
)

// ToCypher renders the graph as a single CREATE statement that rebuilds
// it, the way the paper's initializer loads a random graph into the GDB
// under test. Node variables are named _n<id>.
func (g *Graph) ToCypher() string {
	var parts []string
	for _, id := range g.NodeIDs() {
		n := g.Node(id)
		parts = append(parts, fmt.Sprintf("(_n%d%s %s)", id, labelString(n.Labels), propString(n.Props)))
	}
	for _, id := range g.RelIDs() {
		r := g.Rel(id)
		parts = append(parts, fmt.Sprintf("(_n%d)-[:%s %s]->(_n%d)", r.Start, r.Type, propString(r.Props), r.End))
	}
	if len(parts) == 0 {
		return ""
	}
	return "CREATE " + strings.Join(parts, ", ")
}

func labelString(labels []string) string {
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteByte(':')
		sb.WriteString(l)
	}
	return sb.String()
}

func propString(props map[string]value.Value) string {
	keys := make([]string, 0, len(props))
	for k := range props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(k)
		sb.WriteString(": ")
		sb.WriteString(props[k].String())
	}
	sb.WriteByte('}')
	return sb.String()
}
