// Package graph implements the labeled property graph (LPG) data model of
// Section 2.1 of the GQS paper: nodes and relationships carrying labels
// (resp. types) and key-value properties, plus the random graph generator
// used by step ① (Initialization) of the GQS workflow.
package graph

import (
	"fmt"
	"sort"
	"strings"

	"gqs/internal/value"
)

// ID identifies a graph element. Node and relationship identifiers are
// drawn from one shared counter so that an element's `id` property is
// unique across the whole graph, which the predicate uniquification of
// GQS (§3.4) relies on.
type ID = int64

// Node is a graph node with labels and properties.
type Node struct {
	ID     ID
	Labels []string
	Props  map[string]value.Value
}

// HasLabel reports whether the node carries the given label.
func (n *Node) HasLabel(l string) bool {
	for _, x := range n.Labels {
		if x == l {
			return true
		}
	}
	return false
}

// Rel is a directed relationship with a type and properties.
type Rel struct {
	ID    ID
	Type  string
	Start ID
	End   ID
	Props map[string]value.Value
}

// Graph is an in-memory labeled property graph. It is not safe for
// concurrent mutation; the engine layer provides synchronization.
type Graph struct {
	nodes  map[ID]*Node
	rels   map[ID]*Rel
	out    map[ID][]ID // node -> outgoing rel IDs
	in     map[ID][]ID // node -> incoming rel IDs
	nextID ID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[ID]*Node),
		rels:  make(map[ID]*Rel),
		out:   make(map[ID][]ID),
		in:    make(map[ID][]ID),
	}
}

// NewNode creates a node with the given labels and empty properties and
// returns it. The `id` property is set to the element identifier.
func (g *Graph) NewNode(labels ...string) *Node {
	id := g.nextID
	g.nextID++
	n := &Node{ID: id, Labels: labels, Props: map[string]value.Value{"id": value.Int(id)}}
	g.nodes[id] = n
	return n
}

// NewRel creates a relationship from start to end with the given type and
// returns it. The `id` property is set to the element identifier.
func (g *Graph) NewRel(start, end ID, typ string) (*Rel, error) {
	if _, ok := g.nodes[start]; !ok {
		return nil, fmt.Errorf("graph: start node %d does not exist", start)
	}
	if _, ok := g.nodes[end]; !ok {
		return nil, fmt.Errorf("graph: end node %d does not exist", end)
	}
	id := g.nextID
	g.nextID++
	r := &Rel{ID: id, Type: typ, Start: start, End: end, Props: map[string]value.Value{"id": value.Int(id)}}
	g.rels[id] = r
	g.out[start] = append(g.out[start], id)
	g.in[end] = append(g.in[end], id)
	return r, nil
}

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id ID) *Node { return g.nodes[id] }

// Rel returns the relationship with the given ID, or nil.
func (g *Graph) Rel(id ID) *Rel { return g.rels[id] }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumRels returns the number of relationships.
func (g *Graph) NumRels() int { return len(g.rels) }

// NodeIDs returns all node IDs in ascending order.
func (g *Graph) NodeIDs() []ID {
	ids := make([]ID, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// RelIDs returns all relationship IDs in ascending order.
func (g *Graph) RelIDs() []ID {
	ids := make([]ID, 0, len(g.rels))
	for id := range g.rels {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Out returns the IDs of relationships leaving the node, in insertion order.
func (g *Graph) Out(n ID) []ID { return g.out[n] }

// In returns the IDs of relationships entering the node, in insertion order.
func (g *Graph) In(n ID) []ID { return g.in[n] }

// Incident returns all relationship IDs touching the node (out then in).
// A self-loop appears twice.
func (g *Graph) Incident(n ID) []ID {
	out := g.out[n]
	in := g.in[n]
	ids := make([]ID, 0, len(out)+len(in))
	ids = append(ids, out...)
	ids = append(ids, in...)
	return ids
}

// DeleteNode removes a node. It fails if relationships are still attached,
// mirroring Cypher's DELETE semantics (DETACH DELETE removes them first).
func (g *Graph) DeleteNode(id ID, detach bool) error {
	n := g.nodes[id]
	if n == nil {
		return fmt.Errorf("graph: node %d does not exist", id)
	}
	if len(g.out[id]) > 0 || len(g.in[id]) > 0 {
		if !detach {
			return fmt.Errorf("graph: node %d still has relationships", id)
		}
		for _, rid := range append(append([]ID{}, g.out[id]...), g.in[id]...) {
			if g.rels[rid] != nil {
				g.DeleteRel(rid)
			}
		}
	}
	delete(g.nodes, id)
	delete(g.out, id)
	delete(g.in, id)
	return nil
}

// DeleteRel removes a relationship.
func (g *Graph) DeleteRel(id ID) {
	r := g.rels[id]
	if r == nil {
		return
	}
	g.out[r.Start] = removeID(g.out[r.Start], id)
	g.in[r.End] = removeID(g.in[r.End], id)
	delete(g.rels, id)
}

func removeID(ids []ID, id ID) []ID {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// Clone returns a deep copy of the graph. Property values are shared
// (they are immutable); property maps and label slices are copied.
func (g *Graph) Clone() *Graph {
	c := New()
	c.nextID = g.nextID
	for id, n := range g.nodes {
		labels := append([]string(nil), n.Labels...)
		props := make(map[string]value.Value, len(n.Props))
		for k, v := range n.Props {
			props[k] = v
		}
		c.nodes[id] = &Node{ID: id, Labels: labels, Props: props}
	}
	for id, r := range g.rels {
		props := make(map[string]value.Value, len(r.Props))
		for k, v := range r.Props {
			props[k] = v
		}
		c.rels[id] = &Rel{ID: id, Type: r.Type, Start: r.Start, End: r.End, Props: props}
	}
	for n, ids := range g.out {
		c.out[n] = append([]ID(nil), ids...)
	}
	for n, ids := range g.in {
		c.in[n] = append([]ID(nil), ids...)
	}
	return c
}

// String renders a compact human-readable summary of the graph.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph{%d nodes, %d rels}", len(g.nodes), len(g.rels))
	return sb.String()
}

// PropertyKey identifies one property of one graph element: the pair
// ⟨e, n⟩ from §2.1 of the paper.
type PropertyKey struct {
	Element ID
	IsRel   bool
	Name    string
}

// Lookup resolves the property key against the graph, returning the value
// and whether the property exists.
func (g *Graph) Lookup(k PropertyKey) (value.Value, bool) {
	var props map[string]value.Value
	if k.IsRel {
		r := g.rels[k.Element]
		if r == nil {
			return value.Null, false
		}
		props = r.Props
	} else {
		n := g.nodes[k.Element]
		if n == nil {
			return value.Null, false
		}
		props = n.Props
	}
	v, ok := props[k.Name]
	return v, ok
}
