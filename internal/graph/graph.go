// Package graph implements the labeled property graph (LPG) data model of
// Section 2.1 of the GQS paper: nodes and relationships carrying labels
// (resp. types) and key-value properties, plus the random graph generator
// used by step ① (Initialization) of the GQS workflow.
package graph

import (
	"fmt"
	"maps"
	"slices"
	"strings"

	"gqs/internal/value"
)

// ID identifies a graph element. Node and relationship identifiers are
// drawn from one shared counter so that an element's `id` property is
// unique across the whole graph, which the predicate uniquification of
// GQS (§3.4) relies on. IDs are never reused, so every element created
// after a Seal has an ID strictly greater than every base ID.
type ID = int64

// Node is a graph node with labels and properties.
type Node struct {
	ID     ID
	Labels []string
	Props  map[string]value.Value
}

// HasLabel reports whether the node carries the given label.
func (n *Node) HasLabel(l string) bool {
	for _, x := range n.Labels {
		if x == l {
			return true
		}
	}
	return false
}

// Rel is a directed relationship with a type and properties.
type Rel struct {
	ID    ID
	Type  string
	Start ID
	End   ID
	Props map[string]value.Value
}

// Graph is an in-memory labeled property graph. It is not safe for
// concurrent mutation; the engine layer provides synchronization.
//
// A graph is either plain — its maps own all the data — or an overlay
// over an immutable Snapshot (see Seal and FromSnapshot). In overlay
// mode the maps hold only entries that differ from the base: an element
// copied in on first write, a newly created element, or a nil entry
// marking a deleted base element (a tombstone; for adjacency, a present
// overlay entry shadows the base list). Readers resolve overlay-first
// with base fallback, so sharing one snapshot across many graphs costs
// nothing until a graph writes — and then only for the entries written.
type Graph struct {
	base   *Snapshot
	nodes  map[ID]*Node
	rels   map[ID]*Rel
	out    map[ID][]ID // node -> outgoing rel IDs
	in     map[ID][]ID // node -> incoming rel IDs
	nextID ID
	// numNodes/numRels track live element counts: with an overlay, map
	// lengths alone cannot answer them.
	numNodes int
	numRels  int
	cow      COWStats
}

// COWStats counts the copy-on-write promotions a graph performed since
// it was created or last ResetToBase; the bench harness reports them per
// campaign iteration to show what each write actually copied.
type COWStats struct {
	NodeCopies int // base nodes copied into the overlay before mutation
	RelCopies  int // base relationships copied before mutation
	AdjCopies  int // base adjacency lists copied before append/remove
}

// Add returns the element-wise sum of two stat blocks.
func (c COWStats) Add(o COWStats) COWStats {
	c.NodeCopies += o.NodeCopies
	c.RelCopies += o.RelCopies
	c.AdjCopies += o.AdjCopies
	return c
}

// Total returns the total number of copy-on-write promotions.
func (c COWStats) Total() int { return c.NodeCopies + c.RelCopies + c.AdjCopies }

// COW returns the graph's copy-on-write promotion counters.
func (g *Graph) COW() COWStats { return g.cow }

// New returns an empty plain graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[ID]*Node),
		rels:  make(map[ID]*Rel),
		out:   make(map[ID][]ID),
		in:    make(map[ID][]ID),
	}
}

// NewNode creates a node with the given labels and empty properties and
// returns it. The `id` property is set to the element identifier.
func (g *Graph) NewNode(labels ...string) *Node {
	id := g.nextID
	g.nextID++
	n := &Node{ID: id, Labels: labels, Props: map[string]value.Value{"id": value.Int(id)}}
	g.nodes[id] = n
	g.numNodes++
	return n
}

// NewRel creates a relationship from start to end with the given type and
// returns it. The `id` property is set to the element identifier.
func (g *Graph) NewRel(start, end ID, typ string) (*Rel, error) {
	if g.Node(start) == nil {
		return nil, fmt.Errorf("graph: start node %d does not exist", start)
	}
	if g.Node(end) == nil {
		return nil, fmt.Errorf("graph: end node %d does not exist", end)
	}
	id := g.nextID
	g.nextID++
	r := &Rel{ID: id, Type: typ, Start: start, End: end, Props: map[string]value.Value{"id": value.Int(id)}}
	g.rels[id] = r
	g.numRels++
	g.adjAppend(g.out, g.baseOut(), start, id)
	g.adjAppend(g.in, g.baseIn(), end, id)
	return r, nil
}

func (g *Graph) baseOut() map[ID][]ID {
	if g.base != nil {
		return g.base.out
	}
	return nil
}

func (g *Graph) baseIn() map[ID][]ID {
	if g.base != nil {
		return g.base.in
	}
	return nil
}

// adjAppend appends rid to the node's adjacency list in the overlay map
// ov, copying the base list first when the overlay has no entry yet.
func (g *Graph) adjAppend(ov, base map[ID][]ID, n, rid ID) {
	if ids, ok := ov[n]; ok {
		ov[n] = append(ids, rid)
		return
	}
	if b := base[n]; len(b) > 0 {
		g.cow.AdjCopies++
		ids := make([]ID, len(b), len(b)+1)
		copy(ids, b)
		ov[n] = append(ids, rid)
		return
	}
	ov[n] = []ID{rid}
}

// adjRemove removes rid from the node's adjacency list, copying the base
// list into the overlay first when needed.
func (g *Graph) adjRemove(ov, base map[ID][]ID, n, rid ID) {
	if ids, ok := ov[n]; ok {
		ov[n] = removeID(ids, rid)
		return
	}
	b := base[n]
	if len(b) == 0 {
		return
	}
	g.cow.AdjCopies++
	ids := make([]ID, len(b))
	copy(ids, b)
	ov[n] = removeID(ids, rid)
}

// Node returns the node with the given ID, or nil. The returned node is
// a read-only view when it still lives in a shared base snapshot; every
// mutation must go through MutableNode (the engine store does).
func (g *Graph) Node(id ID) *Node {
	if n, ok := g.nodes[id]; ok || g.base == nil {
		return n
	}
	return g.base.nodes[id]
}

// Rel returns the relationship with the given ID, or nil (read-only when
// base-resident; mutate via MutableRel).
func (g *Graph) Rel(id ID) *Rel {
	if r, ok := g.rels[id]; ok || g.base == nil {
		return r
	}
	return g.base.rels[id]
}

// MutableNode returns the node ready for in-place mutation, copying its
// labels and properties out of the base snapshot on this graph's first
// write to it. Callers about to change Labels or Props must use it in
// place of Node, or a shared snapshot would observe the write.
func (g *Graph) MutableNode(id ID) *Node {
	if n, ok := g.nodes[id]; ok || g.base == nil {
		return n
	}
	n := g.base.nodes[id]
	if n == nil {
		return nil
	}
	g.cow.NodeCopies++
	cp := &Node{ID: n.ID, Labels: slices.Clone(n.Labels), Props: maps.Clone(n.Props)}
	if cp.Props == nil {
		// Bulk-generated elements may carry no properties; the copy must
		// still accept writes.
		cp.Props = map[string]value.Value{}
	}
	g.nodes[id] = cp
	return cp
}

// MutableRel is MutableNode for relationships.
func (g *Graph) MutableRel(id ID) *Rel {
	if r, ok := g.rels[id]; ok || g.base == nil {
		return r
	}
	r := g.base.rels[id]
	if r == nil {
		return nil
	}
	g.cow.RelCopies++
	cp := &Rel{ID: r.ID, Type: r.Type, Start: r.Start, End: r.End, Props: maps.Clone(r.Props)}
	if cp.Props == nil {
		cp.Props = map[string]value.Value{}
	}
	g.rels[id] = cp
	return cp
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.numNodes }

// NumRels returns the number of relationships.
func (g *Graph) NumRels() int { return g.numRels }

// NodeIDs returns all node IDs in ascending order. The returned slice
// may be shared with the graph's base snapshot (an unmodified overlay
// returns the precomputed list without allocating) and must be treated
// as read-only.
func (g *Graph) NodeIDs() []ID {
	if g.base == nil {
		ids := make([]ID, 0, len(g.nodes))
		for id := range g.nodes {
			ids = append(ids, id)
		}
		slices.Sort(ids)
		return ids
	}
	if len(g.nodes) == 0 {
		return g.base.nodeIDs
	}
	return mergeIDs(g.base.nodeIDs, g.nodes, g.base.nodes, g.numNodes)
}

// RelIDs returns all relationship IDs in ascending order (shared,
// read-only — see NodeIDs).
func (g *Graph) RelIDs() []ID {
	if g.base == nil {
		ids := make([]ID, 0, len(g.rels))
		for id := range g.rels {
			ids = append(ids, id)
		}
		slices.Sort(ids)
		return ids
	}
	if len(g.rels) == 0 {
		return g.base.relIDs
	}
	return mergeIDs(g.base.relIDs, g.rels, g.base.rels, g.numRels)
}

// mergeIDs folds an overlay into the base's ascending ID list: base IDs
// minus tombstones, then overlay additions. Additions sort strictly
// after every base ID (the counter is monotonic), so the result stays
// ascending.
func mergeIDs[E any](baseIDs []ID, overlay, base map[ID]*E, total int) []ID {
	ids := make([]ID, 0, total)
	for _, id := range baseIDs {
		if e, ok := overlay[id]; !ok || e != nil {
			ids = append(ids, id)
		}
	}
	var added []ID
	for id, e := range overlay {
		if e == nil {
			continue
		}
		if _, inBase := base[id]; !inBase {
			added = append(added, id)
		}
	}
	slices.Sort(added)
	return append(ids, added...)
}

// Out returns the IDs of relationships leaving the node, in insertion
// order. The slice may be shared with the base snapshot; read-only.
func (g *Graph) Out(n ID) []ID {
	if ids, ok := g.out[n]; ok || g.base == nil {
		return ids
	}
	return g.base.out[n]
}

// In returns the IDs of relationships entering the node, in insertion
// order (shared, read-only — see Out).
func (g *Graph) In(n ID) []ID {
	if ids, ok := g.in[n]; ok || g.base == nil {
		return ids
	}
	return g.base.in[n]
}

// Incident returns all relationship IDs touching the node (out then in).
// A self-loop appears twice.
func (g *Graph) Incident(n ID) []ID {
	out := g.Out(n)
	in := g.In(n)
	ids := make([]ID, 0, len(out)+len(in))
	ids = append(ids, out...)
	ids = append(ids, in...)
	return ids
}

// DeleteNode removes a node. It fails if relationships are still attached,
// mirroring Cypher's DELETE semantics (DETACH DELETE removes them first).
func (g *Graph) DeleteNode(id ID, detach bool) error {
	if g.Node(id) == nil {
		return fmt.Errorf("graph: node %d does not exist", id)
	}
	if len(g.Out(id)) > 0 || len(g.In(id)) > 0 {
		if !detach {
			return fmt.Errorf("graph: node %d still has relationships", id)
		}
		for _, rid := range g.Incident(id) {
			if g.Rel(rid) != nil {
				g.DeleteRel(rid)
			}
		}
	}
	if g.base != nil && g.base.nodes[id] != nil {
		// Tombstone: a nil overlay entry shadows the base element, and
		// present (nil) adjacency entries shadow the base lists.
		g.nodes[id] = nil
		g.out[id] = nil
		g.in[id] = nil
	} else {
		delete(g.nodes, id)
		delete(g.out, id)
		delete(g.in, id)
	}
	g.numNodes--
	return nil
}

// DeleteRel removes a relationship.
func (g *Graph) DeleteRel(id ID) {
	r := g.Rel(id)
	if r == nil {
		return
	}
	g.adjRemove(g.out, g.baseOut(), r.Start, id)
	g.adjRemove(g.in, g.baseIn(), r.End, id)
	if g.base != nil && g.base.rels[id] != nil {
		g.rels[id] = nil
	} else {
		delete(g.rels, id)
	}
	g.numRels--
}

func removeID(ids []ID, id ID) []ID {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// Clone returns a deep copy of the graph as a plain graph, materializing
// any overlay through the base. Property values are shared (they are
// immutable); property maps, label slices, and adjacency lists are
// copied.
func (g *Graph) Clone() *Graph {
	c := New()
	c.nextID = g.nextID
	nodeIDs := g.NodeIDs()
	for _, id := range nodeIDs {
		n := g.Node(id)
		c.nodes[id] = &Node{ID: id, Labels: slices.Clone(n.Labels), Props: maps.Clone(n.Props)}
	}
	for _, id := range g.RelIDs() {
		r := g.Rel(id)
		c.rels[id] = &Rel{ID: id, Type: r.Type, Start: r.Start, End: r.End, Props: maps.Clone(r.Props)}
	}
	for _, id := range nodeIDs {
		if out := g.Out(id); len(out) > 0 {
			c.out[id] = slices.Clone(out)
		}
		if in := g.In(id); len(in) > 0 {
			c.in[id] = slices.Clone(in)
		}
	}
	c.numNodes = len(c.nodes)
	c.numRels = len(c.rels)
	return c
}

// String renders a compact human-readable summary of the graph.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph{%d nodes, %d rels}", g.numNodes, g.numRels)
	return sb.String()
}

// PropertyKey identifies one property of one graph element: the pair
// ⟨e, n⟩ from §2.1 of the paper.
type PropertyKey struct {
	Element ID
	IsRel   bool
	Name    string
}

// Lookup resolves the property key against the graph, returning the value
// and whether the property exists.
func (g *Graph) Lookup(k PropertyKey) (value.Value, bool) {
	var props map[string]value.Value
	if k.IsRel {
		r := g.Rel(k.Element)
		if r == nil {
			return value.Null, false
		}
		props = r.Props
	} else {
		n := g.Node(k.Element)
		if n == nil {
			return value.Null, false
		}
		props = n.Props
	}
	v, ok := props[k.Name]
	return v, ok
}
