package graph

import (
	"math/rand"
	"testing"

	"gqs/internal/value"
)

func buildSmall(t *testing.T) (*Graph, ID, ID, ID) {
	t.Helper()
	g := New()
	a := g.NewNode("L0")
	b := g.NewNode("L1")
	a.Props["name"] = value.Str("alice")
	r, err := g.NewRel(a.ID, b.ID, "T0")
	if err != nil {
		t.Fatal(err)
	}
	return g, a.ID, b.ID, r.ID
}

func TestSealFreezesAndGraphStaysLive(t *testing.T) {
	g, aID, _, rID := buildSmall(t)
	snap := g.Seal()
	if snap.NumNodes() != 2 || snap.NumRels() != 1 {
		t.Fatalf("snapshot counts: %d nodes, %d rels", snap.NumNodes(), snap.NumRels())
	}
	if g.Base() != snap {
		t.Fatal("Seal must leave the graph as an overlay of the snapshot")
	}
	// The sealed graph keeps working: reads see base data, writes go to
	// the overlay without disturbing the snapshot.
	if g.Node(aID).Props["name"].AsString() != "alice" {
		t.Fatal("read-through to base broken")
	}
	g.MutableNode(aID).Props["name"] = value.Str("bob")
	if snap.Node(aID).Props["name"].AsString() != "alice" {
		t.Fatal("overlay write leaked into the snapshot")
	}
	if g.Node(aID).Props["name"].AsString() != "bob" {
		t.Fatal("overlay write not visible through the graph")
	}
	if snap.Rel(rID) == nil {
		t.Fatal("snapshot lost the relationship")
	}
}

func TestSealCleanOverlayReturnsSameSnapshot(t *testing.T) {
	g, _, _, _ := buildSmall(t)
	s1 := g.Seal()
	s2 := g.Seal()
	if s1 != s2 {
		t.Fatal("sealing a clean overlay must return the existing base")
	}
	// A diverged overlay seals into a new, independent snapshot.
	g.NewNode("L2")
	s3 := g.Seal()
	if s3 == s1 {
		t.Fatal("sealing a diverged overlay must produce a new snapshot")
	}
	if s3.NumNodes() != 3 || s1.NumNodes() != 2 {
		t.Fatalf("counts after re-seal: s3=%d s1=%d", s3.NumNodes(), s1.NumNodes())
	}
}

func TestOverlayIsolation(t *testing.T) {
	g, aID, bID, rID := buildSmall(t)
	snap := g.Seal()
	g1 := FromSnapshot(snap)
	g2 := FromSnapshot(snap)

	// g1 mutates, deletes, and creates; g2 must not see any of it.
	g1.MutableNode(aID).Props["name"] = value.Str("mutated")
	g1.DeleteRel(rID)
	if err := g1.DeleteNode(bID, false); err != nil {
		t.Fatal(err)
	}
	n := g1.NewNode("L9")

	if g2.Node(aID).Props["name"].AsString() != "alice" {
		t.Fatal("g1 mutation visible in g2")
	}
	if g2.Rel(rID) == nil || g2.Node(bID) == nil {
		t.Fatal("g1 deletion visible in g2")
	}
	if g2.Node(n.ID) != nil {
		t.Fatal("g1 creation visible in g2")
	}
	if g1.Node(bID) != nil || g1.Rel(rID) != nil {
		t.Fatal("g1 does not see its own deletions")
	}
	// New IDs in independent overlays may collide with each other (both
	// counters start at the snapshot's), but never with base IDs.
	if n.ID <= bID {
		t.Fatal("overlay ID collided with a base ID")
	}
}

func TestResetToBase(t *testing.T) {
	g, aID, bID, rID := buildSmall(t)
	g.Seal()
	g.MutableNode(aID).Props["name"] = value.Str("changed")
	g.DeleteRel(rID)
	if err := g.DeleteNode(bID, false); err != nil {
		t.Fatal(err)
	}
	g.NewNode("L5")
	g.NewNode("L6")

	if !g.ResetToBase() {
		t.Fatal("ResetToBase must succeed on an overlay graph")
	}
	if g.NumNodes() != 2 || g.NumRels() != 1 {
		t.Fatalf("counts after reset: %d nodes, %d rels", g.NumNodes(), g.NumRels())
	}
	if g.Node(aID).Props["name"].AsString() != "alice" {
		t.Fatal("reset did not restore the mutated property")
	}
	if g.Node(bID) == nil || g.Rel(rID) == nil {
		t.Fatal("reset did not restore deleted elements")
	}
	if g.COW().Total() != 0 {
		t.Fatal("reset must clear the COW counters")
	}
	// A plain graph has no base to reset to.
	if New().ResetToBase() {
		t.Fatal("ResetToBase on a plain graph must report false")
	}
}

func TestOverlayIDListsMergeDeletionsAndAdditions(t *testing.T) {
	g := New()
	var ids []ID
	for i := 0; i < 5; i++ {
		ids = append(ids, g.NewNode("L0").ID)
	}
	snap := g.Seal()
	ov := FromSnapshot(snap)
	if err := ov.DeleteNode(ids[1], true); err != nil {
		t.Fatal(err)
	}
	if err := ov.DeleteNode(ids[3], true); err != nil {
		t.Fatal(err)
	}
	added := ov.NewNode("L1").ID

	got := ov.NodeIDs()
	want := []ID{ids[0], ids[2], ids[4], added}
	if len(got) != len(want) {
		t.Fatalf("NodeIDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NodeIDs = %v, want %v", got, want)
		}
	}
	// The snapshot's own list is untouched.
	if len(snap.NodeIDs()) != 5 {
		t.Fatal("snapshot NodeIDs changed")
	}
}

func TestCloneOfOverlayIsIndependent(t *testing.T) {
	g, aID, _, _ := buildSmall(t)
	snap := g.Seal()
	ov := FromSnapshot(snap)
	ov.MutableNode(aID).Props["name"] = value.Str("ov")
	ov.NewNode("L7")

	cl := ov.Clone()
	if cl.NumNodes() != ov.NumNodes() || cl.NumRels() != ov.NumRels() {
		t.Fatal("clone counts differ")
	}
	if cl.Node(aID).Props["name"].AsString() != "ov" {
		t.Fatal("clone lost the overlay mutation")
	}
	// Clone is fully independent: further writes on either side are
	// invisible to the other, and to the snapshot.
	cl.MutableNode(aID).Props["name"] = value.Str("cl")
	if ov.Node(aID).Props["name"].AsString() != "ov" {
		t.Fatal("clone write leaked into the overlay")
	}
	if snap.Node(aID).Props["name"].AsString() != "alice" {
		t.Fatal("overlay write leaked into the snapshot")
	}
}

func TestSnapshotIndexCachedPerSchema(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g, schema := Generate(r, GenConfig{MaxNodes: 10, MaxRels: 20})
	snap := g.Seal()
	ix1 := snap.Index(schema)
	ix2 := snap.Index(schema)
	if ix1 != ix2 {
		t.Fatal("Index must be built once per schema and cached")
	}
	other := &Schema{Labels: schema.Labels, RelTypes: schema.RelTypes, Props: schema.Props}
	if snap.Index(other) == ix1 {
		t.Fatal("distinct schema pointers must get distinct index builds")
	}
}

func TestCOWStatsCountPromotions(t *testing.T) {
	g, aID, bID, _ := buildSmall(t)
	snap := g.Seal()
	ov := FromSnapshot(snap)
	if ov.COW().Total() != 0 {
		t.Fatal("fresh overlay must start with zero COW promotions")
	}
	ov.MutableNode(aID).Props["x"] = value.Int(1)
	ov.MutableNode(aID).Props["y"] = value.Int(2) // second write: already promoted
	if got := ov.COW().NodeCopies; got != 1 {
		t.Fatalf("NodeCopies = %d, want 1 (promotion happens once per element)", got)
	}
	if _, err := ov.NewRel(aID, bID, "T1"); err != nil {
		t.Fatal(err)
	}
	if ov.COW().AdjCopies == 0 {
		t.Fatal("appending to base adjacency must count an AdjCopy")
	}
}
