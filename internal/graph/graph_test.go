package graph

import (
	"math/rand"
	"strings"
	"testing"

	"gqs/internal/value"
)

func TestNewNodeAndRel(t *testing.T) {
	g := New()
	a := g.NewNode("L0", "L1")
	b := g.NewNode("L2")
	if a.ID == b.ID {
		t.Fatal("node IDs must be unique")
	}
	if !a.HasLabel("L1") || a.HasLabel("L2") {
		t.Error("HasLabel broken")
	}
	if a.Props["id"].AsInt() != a.ID {
		t.Error("id property must equal element ID")
	}
	r, err := g.NewRel(a.ID, b.ID, "T0")
	if err != nil {
		t.Fatal(err)
	}
	if r.ID == a.ID || r.ID == b.ID {
		t.Error("rel ID must be unique across elements")
	}
	if g.NumNodes() != 2 || g.NumRels() != 1 {
		t.Error("counts broken")
	}
	if len(g.Out(a.ID)) != 1 || len(g.In(b.ID)) != 1 {
		t.Error("adjacency broken")
	}
	if len(g.Incident(a.ID)) != 1 || len(g.Incident(b.ID)) != 1 {
		t.Error("Incident broken")
	}
	if _, err := g.NewRel(999, b.ID, "T0"); err == nil {
		t.Error("rel from missing node must fail")
	}
}

func TestLookup(t *testing.T) {
	g := New()
	n := g.NewNode("L0")
	n.Props["name"] = value.Str("Alice")
	v, ok := g.Lookup(PropertyKey{Element: n.ID, Name: "name"})
	if !ok || v.AsString() != "Alice" {
		t.Error("Lookup node prop broken")
	}
	if _, ok := g.Lookup(PropertyKey{Element: n.ID, Name: "missing"}); ok {
		t.Error("missing property must report !ok")
	}
	if _, ok := g.Lookup(PropertyKey{Element: 999, Name: "x"}); ok {
		t.Error("missing element must report !ok")
	}
	r, _ := g.NewRel(n.ID, n.ID, "T0")
	r.Props["w"] = value.Int(5)
	v, ok = g.Lookup(PropertyKey{Element: r.ID, IsRel: true, Name: "w"})
	if !ok || v.AsInt() != 5 {
		t.Error("Lookup rel prop broken")
	}
}

func TestDelete(t *testing.T) {
	g := New()
	a := g.NewNode()
	b := g.NewNode()
	r, _ := g.NewRel(a.ID, b.ID, "T0")
	if err := g.DeleteNode(a.ID, false); err == nil {
		t.Error("DELETE of attached node must fail")
	}
	g.DeleteRel(r.ID)
	if g.NumRels() != 0 || len(g.Out(a.ID)) != 0 || len(g.In(b.ID)) != 0 {
		t.Error("DeleteRel broken")
	}
	if err := g.DeleteNode(a.ID, false); err != nil {
		t.Error("DELETE of detached node must succeed")
	}
	// DETACH DELETE removes attached rels.
	c := g.NewNode()
	g.NewRel(b.ID, c.ID, "T1")
	g.NewRel(c.ID, b.ID, "T1")
	if err := g.DeleteNode(c.ID, true); err != nil {
		t.Fatal(err)
	}
	if g.NumRels() != 0 {
		t.Error("DETACH DELETE must remove incident rels")
	}
}

func TestClone(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g, _ := Generate(r, GenConfig{MaxNodes: 8, MaxRels: 30})
	c := g.Clone()
	if c.NumNodes() != g.NumNodes() || c.NumRels() != g.NumRels() {
		t.Fatal("clone size mismatch")
	}
	// Mutating the clone must not affect the original.
	id := c.NodeIDs()[0]
	c.Node(id).Props["zz"] = value.Int(1)
	if _, ok := g.Node(id).Props["zz"]; ok {
		t.Error("clone shares property maps")
	}
	c.NewNode("X")
	if c.NumNodes() != g.NumNodes()+1 {
		t.Error("clone node insert broken")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g1, s1 := Generate(rand.New(rand.NewSource(42)), GenConfig{})
	g2, s2 := Generate(rand.New(rand.NewSource(42)), GenConfig{})
	if g1.NumNodes() != g2.NumNodes() || g1.NumRels() != g2.NumRels() {
		t.Error("generation must be deterministic per seed")
	}
	if g1.ToCypher() != g2.ToCypher() {
		t.Error("ToCypher must be deterministic per seed")
	}
	if len(s1.Labels) != len(s2.Labels) || len(s1.Indexes) != len(s2.Indexes) {
		t.Error("schema generation must be deterministic")
	}
}

func TestGenerateRespectsBounds(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		cfg := GenConfig{MaxNodes: 13, MaxRels: 500}
		g, s := Generate(r, cfg)
		if g.NumNodes() < 2 || g.NumNodes() > 13 {
			t.Fatalf("node count %d out of bounds", g.NumNodes())
		}
		if g.NumRels() < 1 || g.NumRels() > 500 {
			t.Fatalf("rel count %d out of bounds", g.NumRels())
		}
		for _, id := range g.RelIDs() {
			rel := g.Rel(id)
			if g.Node(rel.Start) == nil || g.Node(rel.End) == nil {
				t.Fatal("dangling relationship")
			}
		}
		// Every property must match its schema type.
		for _, id := range g.NodeIDs() {
			for name, v := range g.Node(id).Props {
				if name == "id" {
					continue
				}
				checkPropType(t, s, name, v)
			}
		}
	}
}

func checkPropType(t *testing.T, s *Schema, name string, v value.Value) {
	t.Helper()
	want, ok := s.Props[name]
	if !ok {
		t.Fatalf("property %s not in schema", name)
	}
	var got PropType
	switch v.Kind() {
	case value.KindInt:
		got = PropInt
	case value.KindFloat:
		got = PropFloat
	case value.KindString:
		got = PropString
	case value.KindBool:
		got = PropBool
	case value.KindList:
		got = PropStrList
	default:
		t.Fatalf("unexpected property kind %v", v.Kind())
	}
	if got != want {
		t.Fatalf("property %s: type %v, schema says %v", name, got, want)
	}
}

func TestSchemaPropNames(t *testing.T) {
	_, s := Generate(rand.New(rand.NewSource(3)), GenConfig{NumProps: 7})
	names := s.PropNames()
	if len(names) != 7 || names[0] != "k0" || names[6] != "k6" {
		t.Errorf("PropNames = %v", names)
	}
}

func TestToCypher(t *testing.T) {
	g := New()
	a := g.NewNode("USER")
	a.Props["name"] = value.Str("Alice")
	b := g.NewNode("MOVIE")
	r, _ := g.NewRel(a.ID, b.ID, "LIKE")
	r.Props["rating"] = value.Int(10)
	s := g.ToCypher()
	for _, want := range []string{"CREATE", ":USER", "name: 'Alice'", "-[:LIKE", "rating: 10", "]->"} {
		if !strings.Contains(s, want) {
			t.Errorf("ToCypher missing %q in %q", want, s)
		}
	}
	if New().ToCypher() != "" {
		t.Error("empty graph must render empty")
	}
}

func TestPropTypeString(t *testing.T) {
	if PropInt.String() != "INTEGER" || PropStrList.String() != "LIST<STRING>" {
		t.Error("PropType.String broken")
	}
}
