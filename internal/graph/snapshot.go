package graph

import (
	"slices"
	"sync"
)

// Snapshot is an immutable, shareable view of one graph state: the node,
// relationship, and adjacency tables frozen by Seal, plus the precomputed
// ascending ID lists every full scan reads for free. Nothing in a
// snapshot is mutated after Seal returns, so any number of overlay graphs
// (FromSnapshot) — and the stores and engines above them — can read one
// snapshot concurrently. This is the paper-harness analogue of restoring
// the database between oracle checks without reloading it: all five
// simulated GDBs of one campaign iteration share a single snapshot and
// each pays only for the entries it writes.
type Snapshot struct {
	nodes map[ID]*Node
	rels  map[ID]*Rel
	out   map[ID][]ID
	in    map[ID][]ID
	// nextID is the ID counter at seal time; overlay graphs start their
	// counter here so newly created element IDs never collide with base
	// IDs (the counter is monotonic and IDs are never reused).
	nextID ID
	// nodeIDs/relIDs are the ascending ID lists, computed once at Seal so
	// every AllNodesScan on every sharing store is allocation-free.
	nodeIDs []ID
	relIDs  []ID

	// idx caches one label/property index per schema, built on first
	// request and shared by every store loaded from this snapshot.
	mu  sync.Mutex
	idx map[*Schema]*Index

	// adj caches the adjacency index (schema-independent), built on
	// first request — see AdjIndex in adjindex.go.
	adjOnce sync.Once
	adj     *AdjIndex
}

// NumNodes returns the number of nodes in the snapshot.
func (s *Snapshot) NumNodes() int { return len(s.nodes) }

// NumRels returns the number of relationships in the snapshot.
func (s *Snapshot) NumRels() int { return len(s.rels) }

// NodeIDs returns all node IDs ascending. The slice is shared and
// read-only.
func (s *Snapshot) NodeIDs() []ID { return s.nodeIDs }

// RelIDs returns all relationship IDs ascending. The slice is shared and
// read-only.
func (s *Snapshot) RelIDs() []ID { return s.relIDs }

// Node returns the snapshot's node with the given ID, or nil. The node is
// shared and must not be mutated; writers go through an overlay graph's
// MutableNode.
func (s *Snapshot) Node(id ID) *Node { return s.nodes[id] }

// Rel returns the snapshot's relationship with the given ID, or nil
// (shared, read-only).
func (s *Snapshot) Rel(id ID) *Rel { return s.rels[id] }

// Index returns the label/property index of this snapshot under the
// given schema, building it on the first request and caching it per
// schema pointer, so all stores sharing the snapshot share one index
// build. Safe for concurrent use.
func (s *Snapshot) Index(schema *Schema) *Index {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ix, ok := s.idx[schema]; ok {
		return ix
	}
	ix := BuildIndex(s.nodeIDs, func(id ID) *Node { return s.nodes[id] }, schema)
	if s.idx == nil {
		s.idx = make(map[*Schema]*Index, 1)
	}
	s.idx[schema] = ix
	return ix
}

// Seal freezes the graph's current contents into a Snapshot and converts
// the graph itself into an overlay over it, so g stays fully readable
// (and writable) afterwards. The data maps are adopted, not copied; Seal
// is O(n) only in sorting the ID lists. Sealing an overlay graph whose
// overlay is empty returns the existing base unchanged; a diverged
// overlay is materialized first. After Seal the snapshot is immutable —
// the usual ownership contract (mutate only through the owning store)
// is what keeps later writers honest.
func (g *Graph) Seal() *Snapshot {
	if g.base != nil {
		if len(g.nodes) == 0 && len(g.rels) == 0 && len(g.out) == 0 && len(g.in) == 0 {
			return g.base
		}
		*g = *g.Clone()
	}
	s := &Snapshot{
		nodes:   g.nodes,
		rels:    g.rels,
		out:     g.out,
		in:      g.in,
		nextID:  g.nextID,
		nodeIDs: sortedKeys(g.nodes),
		relIDs:  sortedKeys(g.rels),
	}
	g.base = s
	g.nodes = make(map[ID]*Node)
	g.rels = make(map[ID]*Rel)
	g.out = make(map[ID][]ID)
	g.in = make(map[ID][]ID)
	return s
}

// FromSnapshot returns a new overlay graph over the snapshot: an O(1)
// logical copy. Writes copy individual entries into the overlay (see
// MutableNode/MutableRel); ResetToBase drops them again.
func FromSnapshot(s *Snapshot) *Graph {
	return &Graph{
		base:     s,
		nodes:    make(map[ID]*Node),
		rels:     make(map[ID]*Rel),
		out:      make(map[ID][]ID),
		in:       make(map[ID][]ID),
		nextID:   s.nextID,
		numNodes: len(s.nodes),
		numRels:  len(s.rels),
	}
}

// ResetToBase discards every overlay entry, restoring the graph to the
// exact state of its base snapshot: O(size of the overlay), zero
// allocations, no per-element copying. Returns false (and does nothing)
// when the graph has no base.
func (g *Graph) ResetToBase() bool {
	if g.base == nil {
		return false
	}
	clear(g.nodes)
	clear(g.rels)
	clear(g.out)
	clear(g.in)
	g.nextID = g.base.nextID
	g.numNodes = len(g.base.nodes)
	g.numRels = len(g.base.rels)
	g.cow = COWStats{}
	return true
}

// Base returns the snapshot this graph overlays, or nil for a plain
// graph.
func (g *Graph) Base() *Snapshot { return g.base }

func sortedKeys[E any](m map[ID]*E) []ID {
	ids := make([]ID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}
