package engine

import (
	"strings"
	"testing"

	"gqs/internal/cypher/ast"
	"gqs/internal/value"
)

// costEngine builds a store with skewed label cardinalities: three :A
// nodes, one :B node, and two unlabeled nodes (six total).
func costEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewReference()
	_, err := e.Execute(`CREATE (:A {n: 1}), (:A {n: 2}), (:A {n: 3}), (:B {n: 4}), ({n: 5}), ({n: 6})`)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNodeCost(t *testing.T) {
	e := costEngine(t)
	m := &matcher{engine: e, env: row{"bound": value.Int(1)}}

	cases := []struct {
		name string
		node *ast.NodePattern
		want int
	}{
		{"anonymous", &ast.NodePattern{}, 6},
		{"label A", &ast.NodePattern{Labels: []string{"A"}}, 3},
		{"label B", &ast.NodePattern{Labels: []string{"B"}}, 1},
		{"min of labels", &ast.NodePattern{Labels: []string{"A", "B"}}, 1},
		{"absent label", &ast.NodePattern{Labels: []string{"Nope"}}, 0},
		{"bound variable", &ast.NodePattern{Variable: "bound", Labels: []string{"A"}}, 0},
		{"unbound variable", &ast.NodePattern{Variable: "free"}, 6},
	}
	for _, tc := range cases {
		if got := m.nodeCost(tc.node); got != tc.want {
			t.Errorf("%s: nodeCost = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestNodeCostTracksWrites pins the delta-aware statistic: LabelCount
// must see nodes created after the base snapshot, not just the sealed
// index.
func TestNodeCostTracksWrites(t *testing.T) {
	e := costEngine(t)
	if _, err := e.Execute(`CREATE (:B {n: 7}), (:B {n: 8})`); err != nil {
		t.Fatal(err)
	}
	m := &matcher{engine: e, env: row{}}
	if got := m.nodeCost(&ast.NodePattern{Labels: []string{"B"}}); got != 3 {
		t.Errorf("nodeCost(:B) after CREATE = %d, want 3", got)
	}
}

// chain builds (first)-[:T]->(last) as a two-node pattern part.
func chain(first, last *ast.NodePattern) *ast.PatternPart {
	return &ast.PatternPart{
		Nodes: []*ast.NodePattern{first, last},
		Rels:  []*ast.RelPattern{{Direction: ast.DirRight}},
	}
}

func TestOrient(t *testing.T) {
	e := costEngine(t)
	m := &matcher{engine: e, env: row{"x": value.Int(1)}}
	anon := func() *ast.NodePattern { return &ast.NodePattern{} }
	labB := func() *ast.NodePattern { return &ast.NodePattern{Labels: []string{"B"}} }

	// Cheap side already first: unchanged, no trace.
	p := chain(labB(), anon())
	if got := m.orient(p); got != p {
		t.Errorf("cheap-first chain must not be reversed")
	}

	// Cheap side last: reversed, direction flipped, trace recorded.
	p = chain(anon(), labB())
	got := m.orient(p)
	if got == p {
		t.Fatalf("expensive-first chain must be reversed")
	}
	if got.Nodes[0] != p.Nodes[1] || got.Nodes[1] != p.Nodes[0] {
		t.Errorf("reversed chain must start from the cheap node")
	}
	if got.Rels[0].Direction != ast.DirLeft {
		t.Errorf("reversed rel direction = %v, want DirLeft", got.Rels[0].Direction)
	}
	if len(e.planTrace) == 0 || e.planTrace[len(e.planTrace)-1] != "ReverseTraversal" {
		t.Errorf("orient must record ReverseTraversal, trace: %v", e.planTrace)
	}

	// Equal costs: stable (no reversal) — determinism depends on ties
	// never flipping.
	p = chain(anon(), anon())
	if got := m.orient(p); got != p {
		t.Errorf("equal-cost chain must keep its orientation")
	}

	// A bound variable is free to start from even when the other end has
	// a label.
	p = chain(&ast.NodePattern{Variable: "x"}, labB())
	if got := m.orient(p); got != p {
		t.Errorf("bound-first chain must not be reversed")
	}

	// Single-node parts and disabled planner pass through untouched.
	single := &ast.PatternPart{Nodes: []*ast.NodePattern{labB()}}
	if got := m.orient(single); got != single {
		t.Errorf("single-node part must pass through")
	}
	e.opts.DisablePlanner = true
	p = chain(anon(), labB())
	if got := m.orient(p); got != p {
		t.Errorf("orient must be a no-op with the planner disabled")
	}
}

// TestOrientEndToEnd pins the heuristic through the text path: a chain
// written expensive-side-first must report ReverseTraversal in the plan
// trace and still produce the same rows as the cheap-side-first form.
func TestOrientEndToEnd(t *testing.T) {
	e := NewReference()
	if _, err := e.Execute(`CREATE (a:A {n: 1})-[:T]->(b:B {n: 2}), (:A {n: 3}), (:A {n: 4})`); err != nil {
		t.Fatal(err)
	}
	fwd := mustRun(t, e, `MATCH (x)-[:T]->(y:B) RETURN x.n, y.n`)
	if !strings.Contains(strings.Join(e.PlanTrace(), ","), "ReverseTraversal") {
		t.Errorf("expected ReverseTraversal in trace, got %v", e.PlanTrace())
	}
	rev := mustRun(t, e, `MATCH (y:B)<-[:T]-(x) RETURN x.n, y.n`)
	if !fwd.Equal(rev) {
		t.Errorf("oriented chain changed results: %v vs %v", fwd.Rows, rev.Rows)
	}
}
