// Package engine implements an in-memory Cypher query engine over the
// labeled property graph model: storage with label and property indexes, a
// logical planner with a small set of optimization passes (predicate
// pushdown, index-scan selection, traversal-start selection), and a
// clause-pipeline executor covering the eleven data-retrieval clauses and
// subclauses plus the six update clauses (§2.2 of the GQS paper).
//
// The engine is the substrate substituting for the four production GDBs
// the paper tests: the gdb package instantiates it once per simulated
// system with that system's dialect quirks.
package engine

import (
	"fmt"
	"slices"
	"sort"

	"gqs/internal/graph"
	"gqs/internal/value"
)

// idSet is one delta bucket: the node IDs added to (or removed from) an
// index entry since the last Reset.
type idSet = map[graph.ID]struct{}

// Store wraps a graph with the secondary indexes the engine maintains: a
// label index and the label+property indexes declared by the schema,
// which the planner uses for index scans.
//
// The indexes are versioned: `base` is an immutable graph.Index of the
// loaded state — built once per legacy Reset, or shared by every store
// loaded from the same graph.Snapshot — and the add/del maps below are
// this store's private deltas over it. Read-only query batches never
// touch the deltas (they stay nil), so a snapshot Reset is O(overlay)
// and a read-only one is O(1) with zero per-element copying.
type Store struct {
	g      *graph.Graph
	schema *graph.Schema
	// base is never mutated; see the package comment above. labelAdd/
	// labelDel and propAdd/propDel are allocated lazily on first write.
	base     *graph.Index
	labelAdd map[string]idSet
	labelDel map[string]idSet
	propAdd  map[graph.IndexSpec]map[string]idSet
	propDel  map[graph.IndexSpec]map[string]idSet
	// enforceSchema rejects property writes that deviate from the
	// declared property types (Kùzu-style schema-first behaviour).
	enforceSchema bool
	// src/snap identify what the store was last Reset onto (exactly one
	// is non-nil) and dirty marks any write through the store since. A
	// Reset with the same source and a clean store is the
	// restart-without-change pattern and is free; a dirty snapshot store
	// just drops its overlay. Every mutation MUST go through a store
	// method so the flag — and, under copy-on-write, the shared base
	// snapshot itself — stays truthful; that is the store's documented
	// ownership contract for Graph().
	src   *graph.Graph
	snap  *graph.Snapshot
	dirty bool
	// cow accumulates the graph's copy-on-write counters across Reset
	// cycles (ResetToBase clears the per-graph counters) for the bench
	// harness.
	cow graph.COWStats
}

// NewStore returns a store over an empty graph.
func NewStore() *Store {
	s := &Store{}
	s.Reset(graph.New(), nil)
	return s
}

// Reset replaces the store contents with a deep copy of g, rebuilding
// all indexes — the legacy clone path, retained for arbitrary source
// graphs and as the reference semantics the copy-on-write path is
// differentially tested against. A nil schema declares no property
// indexes. When the store already holds an unmodified copy of exactly
// this graph and schema, the clone and rebuild are skipped — the
// contents are byte-identical either way.
func (s *Store) Reset(g *graph.Graph, schema *graph.Schema) {
	if !s.dirty && s.src == g && s.schema == schema && s.src != nil {
		return
	}
	s.collectCOW()
	s.g = g.Clone()
	s.src, s.snap = g, nil
	s.dirty = false
	s.schema = schema
	s.base = graph.BuildIndex(s.g.NodeIDs(), s.g.Node, schema)
	s.clearDeltas()
}

// ResetSnapshot loads the store from a shared immutable snapshot — the
// copy-on-write fast path. Loading the snapshot the store already holds
// drops the overlay and the index deltas (O(overlay), and a clean store
// returns immediately with no work at all); loading a different snapshot
// swaps in an O(1) overlay graph plus the snapshot's cached index, which
// is built once and shared by every store on the same snapshot+schema.
func (s *Store) ResetSnapshot(snap *graph.Snapshot, schema *graph.Schema) {
	if s.snap == snap && s.schema == schema {
		if !s.dirty {
			return
		}
		s.collectCOW()
		s.g.ResetToBase()
		s.dirty = false
		s.clearDeltas()
		return
	}
	s.collectCOW()
	s.g = graph.FromSnapshot(snap)
	s.snap, s.src = snap, nil
	s.dirty = false
	s.schema = schema
	s.base = snap.Index(schema)
	s.clearDeltas()
}

// collectCOW books the current graph's copy-on-write counters before the
// graph is replaced or reset.
func (s *Store) collectCOW() {
	if s.g != nil {
		s.cow = s.cow.Add(s.g.COW())
	}
}

// COWCopies returns the accumulated copy-on-write promotion counts
// across every state the store has held, including the current one.
func (s *Store) COWCopies() graph.COWStats {
	if s.g != nil {
		return s.cow.Add(s.g.COW())
	}
	return s.cow
}

func (s *Store) clearDeltas() {
	s.labelAdd, s.labelDel, s.propAdd, s.propDel = nil, nil, nil, nil
}

// Graph exposes the underlying graph (owned by the store; callers must
// mutate it only through the store).
func (s *Store) Graph() *graph.Graph { return s.g }

// Schema returns the schema the store was loaded with, or nil.
func (s *Store) Schema() *graph.Schema { return s.schema }

// deltaAdd inserts id into the (lazily allocated) bucket for key.
func deltaAdd(m *map[string]idSet, key string, id graph.ID) {
	if *m == nil {
		*m = make(map[string]idSet)
	}
	set := (*m)[key]
	if set == nil {
		set = make(idSet)
		(*m)[key] = set
	}
	set[id] = struct{}{}
}

// deltaDel removes id from the bucket for key, if present.
func deltaDel(m map[string]idSet, key string, id graph.ID) {
	if set := m[key]; set != nil {
		delete(set, id)
	}
}

func propDeltaAdd(m *map[graph.IndexSpec]map[string]idSet, spec graph.IndexSpec, key string, id graph.ID) {
	if *m == nil {
		*m = make(map[graph.IndexSpec]map[string]idSet)
	}
	byKey := (*m)[spec]
	if byKey == nil {
		byKey = make(map[string]idSet)
		(*m)[spec] = byKey
	}
	set := byKey[key]
	if set == nil {
		set = make(idSet)
		byKey[key] = set
	}
	set[id] = struct{}{}
}

func propDeltaDel(m map[graph.IndexSpec]map[string]idSet, spec graph.IndexSpec, key string, id graph.ID) {
	if byKey := m[spec]; byKey != nil {
		if set := byKey[key]; set != nil {
			delete(set, id)
		}
	}
}

// indexNode records the node's labels and indexed properties in the
// delta sets: membership already present in the immutable base cancels a
// pending deletion instead of duplicating the entry.
func (s *Store) indexNode(n *graph.Node) {
	for _, l := range n.Labels {
		if s.base.HasLabelID(l, n.ID) {
			deltaDel(s.labelDel, l, n.ID)
		} else {
			deltaAdd(&s.labelAdd, l, n.ID)
		}
	}
	for _, spec := range s.base.Specs() {
		if !n.HasLabel(spec.Label) {
			continue
		}
		v, ok := n.Props[spec.Property]
		if !ok {
			continue
		}
		k := v.Key()
		if s.base.HasPropID(spec, k, n.ID) {
			propDeltaDel(s.propDel, spec, k, n.ID)
		} else {
			propDeltaAdd(&s.propAdd, spec, k, n.ID)
		}
	}
}

// unindexNode is the inverse of indexNode: base membership becomes a
// pending deletion, overlay-only membership is dropped.
func (s *Store) unindexNode(n *graph.Node) {
	for _, l := range n.Labels {
		if s.base.HasLabelID(l, n.ID) {
			deltaAdd(&s.labelDel, l, n.ID)
		} else {
			deltaDel(s.labelAdd, l, n.ID)
		}
	}
	for _, spec := range s.base.Specs() {
		if !n.HasLabel(spec.Label) {
			continue
		}
		v, ok := n.Props[spec.Property]
		if !ok {
			continue
		}
		k := v.Key()
		if s.base.HasPropID(spec, k, n.ID) {
			propDeltaAdd(&s.propDel, spec, k, n.ID)
		} else {
			propDeltaDel(s.propAdd, spec, k, n.ID)
		}
	}
}

// mergeDeltas folds add/del sets into a base index slice, re-sorting
// because added IDs (from AddLabels / SET on pre-existing nodes) can
// fall anywhere in the ID range.
func mergeDeltas(base []graph.ID, add, del idSet) []graph.ID {
	ids := make([]graph.ID, 0, len(base)+len(add))
	for _, id := range base {
		if _, dead := del[id]; !dead {
			ids = append(ids, id)
		}
	}
	for id := range add {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

// NodesByLabel returns the IDs of nodes carrying the label, ascending.
//
// Aliasing contract: when the store has no pending label deltas the
// returned slice IS the shared immutable base-index slice — callers must
// treat it as read-only (the planner and matcher only iterate it; scans
// that reverse it copy first, see matcher.maybeReverse). The slice stays
// valid and unchanged even if the store is written afterwards, because
// writes land in the delta sets, never in base slices.
func (s *Store) NodesByLabel(label string) []graph.ID {
	base := s.base.Label(label)
	add, del := s.labelAdd[label], s.labelDel[label]
	if len(add) == 0 && len(del) == 0 {
		return base
	}
	return mergeDeltas(base, add, del)
}

// LabelCount returns the number of nodes carrying the label. With no
// pending deltas (every read-only execution) this is an O(1) read of the
// immutable base index, with no merged-slice allocation.
func (s *Store) LabelCount(label string) int {
	add, del := s.labelAdd[label], s.labelDel[label]
	if len(add) == 0 && len(del) == 0 {
		return s.base.LabelCount(label)
	}
	return len(mergeDeltas(s.base.Label(label), add, del))
}

// NodesByIndex returns node IDs from the label+property index for an
// exact value, ascending, and whether such an index exists. The same
// aliasing contract as NodesByLabel applies: the slice may be shared
// with the immutable base index and must not be modified.
func (s *Store) NodesByIndex(label, prop string, v value.Value) ([]graph.ID, bool) {
	spec := graph.IndexSpec{Label: label, Property: prop}
	if !s.base.PropDeclared(spec) {
		return nil, false
	}
	k := v.Key()
	base := s.base.Prop(spec, k)
	var add, del idSet
	if byKey := s.propAdd[spec]; byKey != nil {
		add = byKey[k]
	}
	if byKey := s.propDel[spec]; byKey != nil {
		del = byKey[k]
	}
	if len(add) == 0 && len(del) == 0 {
		return base, true
	}
	return mergeDeltas(base, add, del), true
}

// HasIndex reports whether a label+property index exists.
func (s *Store) HasIndex(label, prop string) bool {
	return s.base.PropDeclared(graph.IndexSpec{Label: label, Property: prop})
}

// NodeHasLabel reports whether node id currently carries the label,
// resolving this store's pending deltas over the immutable base index.
// Index membership already implies existence — deleted nodes are
// unindexed (see unindexNode) — so a true result never needs a node
// fetch. This is the mid-chain analogue of NodesByLabel: checkNode uses
// it to test a label on an already-bound candidate without touching the
// node table.
func (s *Store) NodeHasLabel(label string, id graph.ID) bool {
	if del := s.labelDel[label]; del != nil {
		if _, dead := del[id]; dead {
			return false
		}
	}
	if add := s.labelAdd[label]; add != nil {
		if _, ok := add[id]; ok {
			return true
		}
	}
	return s.base.HasLabelID(label, id)
}

// CreateNode creates a node with the given labels and properties.
func (s *Store) CreateNode(labels []string, props map[string]value.Value) *graph.Node {
	s.dirty = true
	n := s.g.NewNode(labels...)
	for k, v := range props {
		if !v.IsNull() {
			n.Props[k] = v
		}
	}
	s.indexNode(n)
	return n
}

// CreateRel creates a relationship.
func (s *Store) CreateRel(start, end graph.ID, typ string, props map[string]value.Value) (*graph.Rel, error) {
	s.dirty = true
	r, err := s.g.NewRel(start, end, typ)
	if err != nil {
		return nil, err
	}
	for k, v := range props {
		if !v.IsNull() {
			r.Props[k] = v
		}
	}
	return r, nil
}

// CheckPropType validates a property write against the declared schema
// when schema enforcement is on. The synthetic `id` property is exempt.
func (s *Store) CheckPropType(name string, v value.Value) error {
	if !s.enforceSchema || s.schema == nil || name == "id" || v.IsNull() {
		return nil
	}
	want, declared := s.schema.Props[name]
	if !declared {
		return fmt.Errorf("schema: property %s is not declared", name)
	}
	var got graph.PropType
	switch v.Kind() {
	case value.KindInt:
		got = graph.PropInt
	case value.KindFloat:
		got = graph.PropFloat
	case value.KindString:
		got = graph.PropString
	case value.KindBool:
		got = graph.PropBool
	case value.KindList:
		got = graph.PropStrList
	default:
		return fmt.Errorf("schema: cannot store a %s", v.Kind())
	}
	if got != want {
		return fmt.Errorf("schema: property %s is declared %s, got %s", name, want, got)
	}
	return nil
}

// SetProp sets (or, for a null value, removes) a property on an entity,
// maintaining the property indexes. The entity is promoted into the
// overlay (MutableNode/MutableRel) before the write, so a shared base
// snapshot never observes it.
func (s *Store) SetProp(id graph.ID, isRel bool, name string, v value.Value) error {
	if err := s.CheckPropType(name, v); err != nil {
		return err
	}
	s.dirty = true
	if isRel {
		r := s.g.MutableRel(id)
		if r == nil {
			return fmt.Errorf("relationship %d does not exist", id)
		}
		if v.IsNull() {
			delete(r.Props, name)
		} else {
			r.Props[name] = v
		}
		return nil
	}
	n := s.g.Node(id)
	if n == nil {
		return fmt.Errorf("node %d does not exist", id)
	}
	s.unindexNode(n)
	n = s.g.MutableNode(id)
	if v.IsNull() {
		delete(n.Props, name)
	} else {
		n.Props[name] = v
	}
	s.indexNode(n)
	return nil
}

// AddLabels adds labels to a node.
func (s *Store) AddLabels(id graph.ID, labels []string) error {
	n := s.g.Node(id)
	if n == nil {
		return fmt.Errorf("node %d does not exist", id)
	}
	s.dirty = true
	s.unindexNode(n)
	n = s.g.MutableNode(id)
	for _, l := range labels {
		if !n.HasLabel(l) {
			n.Labels = append(n.Labels, l)
		}
	}
	s.indexNode(n)
	return nil
}

// RemoveLabels removes labels from a node.
func (s *Store) RemoveLabels(id graph.ID, labels []string) error {
	n := s.g.Node(id)
	if n == nil {
		return fmt.Errorf("node %d does not exist", id)
	}
	s.dirty = true
	s.unindexNode(n)
	n = s.g.MutableNode(id)
	for _, l := range labels {
		for i, x := range n.Labels {
			if x == l {
				n.Labels = append(n.Labels[:i], n.Labels[i+1:]...)
				break
			}
		}
	}
	s.indexNode(n)
	return nil
}

// DeleteNode deletes a node (detaching first if requested).
func (s *Store) DeleteNode(id graph.ID, detach bool) error {
	n := s.g.Node(id)
	if n == nil {
		return nil // deleting twice is a no-op, as in Cypher
	}
	s.dirty = true
	s.unindexNode(n)
	if err := s.g.DeleteNode(id, detach); err != nil {
		s.indexNode(n)
		return err
	}
	return nil
}

// DeleteRel deletes a relationship.
func (s *Store) DeleteRel(id graph.ID) {
	s.dirty = true
	s.g.DeleteRel(id)
}

// Labels returns all labels present in the store, sorted. With no
// pending deltas this is the shared base-index slice (read-only, like
// NodesByLabel).
func (s *Store) Labels() []string {
	if len(s.labelAdd) == 0 && len(s.labelDel) == 0 {
		return s.base.Labels()
	}
	counts := make(map[string]int)
	for _, l := range s.base.Labels() {
		counts[l] = len(s.base.Label(l))
	}
	for l, add := range s.labelAdd {
		counts[l] += len(add)
	}
	for l, del := range s.labelDel {
		counts[l] -= len(del)
	}
	var out []string
	for l, c := range counts {
		if c > 0 {
			out = append(out, l)
		}
	}
	sort.Strings(out)
	return out
}

// RelTypes returns all relationship types present, sorted.
func (s *Store) RelTypes() []string {
	set := map[string]struct{}{}
	for _, id := range s.g.RelIDs() {
		set[s.g.Rel(id).Type] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// PropertyKeys returns all property names present, sorted.
func (s *Store) PropertyKeys() []string {
	set := map[string]struct{}{}
	for _, id := range s.g.NodeIDs() {
		for k := range s.g.Node(id).Props {
			set[k] = struct{}{}
		}
	}
	for _, id := range s.g.RelIDs() {
		for k := range s.g.Rel(id).Props {
			set[k] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
