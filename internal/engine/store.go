// Package engine implements an in-memory Cypher query engine over the
// labeled property graph model: storage with label and property indexes, a
// logical planner with a small set of optimization passes (predicate
// pushdown, index-scan selection, traversal-start selection), and a
// clause-pipeline executor covering the eleven data-retrieval clauses and
// subclauses plus the six update clauses (§2.2 of the GQS paper).
//
// The engine is the substrate substituting for the four production GDBs
// the paper tests: the gdb package instantiates it once per simulated
// system with that system's dialect quirks.
package engine

import (
	"fmt"
	"sort"

	"gqs/internal/graph"
	"gqs/internal/value"
)

// Store wraps a graph with the secondary indexes the engine maintains:
// a label index (label -> node IDs) and the label+property indexes
// declared by the schema, which the planner uses for index scans.
type Store struct {
	g         *graph.Graph
	schema    *graph.Schema
	labelIdx  map[string]map[graph.ID]struct{}
	propIdx   map[graph.IndexSpec]map[string][]graph.ID // value.Key -> node IDs
	indexable map[graph.IndexSpec]bool
	// enforceSchema rejects property writes that deviate from the
	// declared property types (Kùzu-style schema-first behaviour).
	enforceSchema bool
	// src is the source graph of the last Reset and dirty marks any write
	// through the store since then. A Reset with the same source and a
	// clean store is the restart-without-change pattern (a recovery
	// restart mid-iteration, a read-only query batch) and skips the deep
	// clone and index rebuild. Every mutation MUST go through a store
	// method so the flag stays truthful — which is also the store's
	// documented ownership contract for Graph().
	src   *graph.Graph
	dirty bool
}

// NewStore returns a store over an empty graph.
func NewStore() *Store {
	s := &Store{}
	s.Reset(graph.New(), nil)
	return s
}

// Reset replaces the store contents with a deep copy of g, rebuilding all
// indexes. A nil schema declares no property indexes. When the store
// already holds an unmodified copy of exactly this graph and schema, the
// clone and rebuild are skipped — the contents are byte-identical either
// way.
func (s *Store) Reset(g *graph.Graph, schema *graph.Schema) {
	if !s.dirty && s.src == g && s.schema == schema && s.src != nil {
		return
	}
	s.g = g.Clone()
	s.src = g
	s.dirty = false
	s.schema = schema
	s.labelIdx = make(map[string]map[graph.ID]struct{})
	s.propIdx = make(map[graph.IndexSpec]map[string][]graph.ID)
	s.indexable = make(map[graph.IndexSpec]bool)
	if schema != nil {
		for _, idx := range schema.Indexes {
			s.indexable[idx] = true
			s.propIdx[idx] = make(map[string][]graph.ID)
		}
	}
	for _, id := range s.g.NodeIDs() {
		s.indexNode(s.g.Node(id))
	}
}

// Graph exposes the underlying graph (owned by the store; callers must
// mutate it only through the store).
func (s *Store) Graph() *graph.Graph { return s.g }

// Schema returns the schema the store was loaded with, or nil.
func (s *Store) Schema() *graph.Schema { return s.schema }

func (s *Store) indexNode(n *graph.Node) {
	for _, l := range n.Labels {
		set := s.labelIdx[l]
		if set == nil {
			set = make(map[graph.ID]struct{})
			s.labelIdx[l] = set
		}
		set[n.ID] = struct{}{}
		for spec := range s.indexable {
			if spec.Label != l {
				continue
			}
			if v, ok := n.Props[spec.Property]; ok {
				k := v.Key()
				s.propIdx[spec][k] = append(s.propIdx[spec][k], n.ID)
			}
		}
	}
}

func (s *Store) unindexNode(n *graph.Node) {
	for _, l := range n.Labels {
		delete(s.labelIdx[l], n.ID)
		for spec := range s.indexable {
			if spec.Label != l {
				continue
			}
			if v, ok := n.Props[spec.Property]; ok {
				s.propIdx[spec][v.Key()] = removeGID(s.propIdx[spec][v.Key()], n.ID)
			}
		}
	}
}

func removeGID(ids []graph.ID, id graph.ID) []graph.ID {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// NodesByLabel returns the IDs of nodes carrying the label, ascending.
func (s *Store) NodesByLabel(label string) []graph.ID {
	set := s.labelIdx[label]
	ids := make([]graph.ID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// NodesByIndex returns node IDs from the label+property index for an
// exact value, and whether such an index exists.
func (s *Store) NodesByIndex(label, prop string, v value.Value) ([]graph.ID, bool) {
	idx, ok := s.propIdx[graph.IndexSpec{Label: label, Property: prop}]
	if !ok {
		return nil, false
	}
	ids := append([]graph.ID(nil), idx[v.Key()]...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, true
}

// HasIndex reports whether a label+property index exists.
func (s *Store) HasIndex(label, prop string) bool {
	return s.indexable[graph.IndexSpec{Label: label, Property: prop}]
}

// CreateNode creates a node with the given labels and properties.
func (s *Store) CreateNode(labels []string, props map[string]value.Value) *graph.Node {
	s.dirty = true
	n := s.g.NewNode(labels...)
	for k, v := range props {
		if !v.IsNull() {
			n.Props[k] = v
		}
	}
	s.indexNode(n)
	return n
}

// CreateRel creates a relationship.
func (s *Store) CreateRel(start, end graph.ID, typ string, props map[string]value.Value) (*graph.Rel, error) {
	s.dirty = true
	r, err := s.g.NewRel(start, end, typ)
	if err != nil {
		return nil, err
	}
	for k, v := range props {
		if !v.IsNull() {
			r.Props[k] = v
		}
	}
	return r, nil
}

// CheckPropType validates a property write against the declared schema
// when schema enforcement is on. The synthetic `id` property is exempt.
func (s *Store) CheckPropType(name string, v value.Value) error {
	if !s.enforceSchema || s.schema == nil || name == "id" || v.IsNull() {
		return nil
	}
	want, declared := s.schema.Props[name]
	if !declared {
		return fmt.Errorf("schema: property %s is not declared", name)
	}
	var got graph.PropType
	switch v.Kind() {
	case value.KindInt:
		got = graph.PropInt
	case value.KindFloat:
		got = graph.PropFloat
	case value.KindString:
		got = graph.PropString
	case value.KindBool:
		got = graph.PropBool
	case value.KindList:
		got = graph.PropStrList
	default:
		return fmt.Errorf("schema: cannot store a %s", v.Kind())
	}
	if got != want {
		return fmt.Errorf("schema: property %s is declared %s, got %s", name, want, got)
	}
	return nil
}

// SetProp sets (or, for a null value, removes) a property on an entity,
// maintaining the property indexes.
func (s *Store) SetProp(id graph.ID, isRel bool, name string, v value.Value) error {
	if err := s.CheckPropType(name, v); err != nil {
		return err
	}
	s.dirty = true
	if isRel {
		r := s.g.Rel(id)
		if r == nil {
			return fmt.Errorf("relationship %d does not exist", id)
		}
		if v.IsNull() {
			delete(r.Props, name)
		} else {
			r.Props[name] = v
		}
		return nil
	}
	n := s.g.Node(id)
	if n == nil {
		return fmt.Errorf("node %d does not exist", id)
	}
	s.unindexNode(n)
	if v.IsNull() {
		delete(n.Props, name)
	} else {
		n.Props[name] = v
	}
	s.indexNode(n)
	return nil
}

// AddLabels adds labels to a node.
func (s *Store) AddLabels(id graph.ID, labels []string) error {
	n := s.g.Node(id)
	if n == nil {
		return fmt.Errorf("node %d does not exist", id)
	}
	s.dirty = true
	s.unindexNode(n)
	for _, l := range labels {
		if !n.HasLabel(l) {
			n.Labels = append(n.Labels, l)
		}
	}
	s.indexNode(n)
	return nil
}

// RemoveLabels removes labels from a node.
func (s *Store) RemoveLabels(id graph.ID, labels []string) error {
	n := s.g.Node(id)
	if n == nil {
		return fmt.Errorf("node %d does not exist", id)
	}
	s.dirty = true
	s.unindexNode(n)
	for _, l := range labels {
		for i, x := range n.Labels {
			if x == l {
				n.Labels = append(n.Labels[:i], n.Labels[i+1:]...)
				break
			}
		}
	}
	s.indexNode(n)
	return nil
}

// DeleteNode deletes a node (detaching first if requested).
func (s *Store) DeleteNode(id graph.ID, detach bool) error {
	n := s.g.Node(id)
	if n == nil {
		return nil // deleting twice is a no-op, as in Cypher
	}
	s.dirty = true
	s.unindexNode(n)
	if err := s.g.DeleteNode(id, detach); err != nil {
		s.indexNode(n)
		return err
	}
	return nil
}

// DeleteRel deletes a relationship.
func (s *Store) DeleteRel(id graph.ID) {
	s.dirty = true
	s.g.DeleteRel(id)
}

// Labels returns all labels present in the store, sorted.
func (s *Store) Labels() []string {
	var out []string
	for l, set := range s.labelIdx {
		if len(set) > 0 {
			out = append(out, l)
		}
	}
	sort.Strings(out)
	return out
}

// RelTypes returns all relationship types present, sorted.
func (s *Store) RelTypes() []string {
	set := map[string]struct{}{}
	for _, id := range s.g.RelIDs() {
		set[s.g.Rel(id).Type] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// PropertyKeys returns all property names present, sorted.
func (s *Store) PropertyKeys() []string {
	set := map[string]struct{}{}
	for _, id := range s.g.NodeIDs() {
		for k := range s.g.Node(id).Props {
			set[k] = struct{}{}
		}
	}
	for _, id := range s.g.RelIDs() {
		for k := range s.g.Rel(id).Props {
			set[k] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
