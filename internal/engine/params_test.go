package engine

import (
	"math/rand"
	"strings"
	"testing"

	"gqs/internal/graph"
	"gqs/internal/value"
)

func TestExecuteParams(t *testing.T) {
	e := NewReference()
	mustRun(t, e, `CREATE (:X {k: 1}), (:X {k: 2})`)
	res, err := e.ExecuteParams(`MATCH (n:X) WHERE n.k = $want RETURN n.k AS k`,
		map[string]value.Value{"want": value.Int(2)})
	if err != nil || res.Len() != 1 || res.Rows[0][0].AsInt() != 2 {
		t.Fatalf("params: %v %v", res, err)
	}
	// Unbound parameter errors.
	if _, err := e.Execute(`RETURN $missing`); err == nil {
		t.Error("unbound parameter must error")
	}
	// Parameters do not leak across executions.
	if _, err := e.Execute(`RETURN $want`); err == nil {
		t.Error("parameter leaked across executions")
	}
}

func TestExplain(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 8, MaxRels: 20})
	e := NewReference()
	e.LoadGraph(g, schema)
	trace, err := e.Explain(`MATCH (n:L0) RETURN count(*) AS c`)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(trace, ",")
	if !strings.Contains(joined, "NodeByLabelScan") {
		t.Errorf("explain trace = %v", trace)
	}
	if _, err := e.Explain(`NOT A QUERY`); err == nil {
		t.Error("explain of garbage must error")
	}
}

func TestSchemaEnforcement(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 5, MaxRels: 8})
	strict := New(Options{Dialect: Dialect{Name: "kuzu-like", EnforceSchema: true}})
	strict.LoadGraph(g, schema)

	// k0 is declared INTEGER by the generator (index % 5).
	if _, err := strict.Execute(`MATCH (n) SET n.k0 = 'not an int'`); err == nil {
		t.Error("type-violating SET must error under schema enforcement")
	}
	if _, err := strict.Execute(`MATCH (n) SET n.k0 = 42`); err != nil {
		t.Errorf("type-correct SET must pass: %v", err)
	}
	if _, err := strict.Execute(`MATCH (n) SET n.undeclared = 1`); err == nil {
		t.Error("undeclared property must error under schema enforcement")
	}
	// SET to null (removal) is always allowed.
	if _, err := strict.Execute(`MATCH (n) SET n.k0 = null`); err != nil {
		t.Errorf("null SET must pass: %v", err)
	}

	// The lax reference dialect accepts everything.
	lax := NewReference()
	lax.LoadGraph(g, schema)
	if _, err := lax.Execute(`MATCH (n) SET n.k0 = 'whatever'`); err != nil {
		t.Errorf("reference dialect must not enforce the schema: %v", err)
	}
}
