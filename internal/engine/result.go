package engine

import (
	"sort"
	"strings"

	"gqs/internal/value"
)

// Result is the output of a query: named columns and rows of values.
// Row order is whatever the engine produced; Cypher guarantees order only
// under ORDER BY, so result comparison should normally be order-insensitive
// (see Equal and Canonical).
type Result struct {
	Columns []string
	Rows    [][]value.Value
}

// Len returns the number of rows.
func (r *Result) Len() int { return len(r.Rows) }

// RowMap returns row i as a column-name-to-value map.
func (r *Result) RowMap(i int) map[string]value.Value {
	m := make(map[string]value.Value, len(r.Columns))
	for j, c := range r.Columns {
		m[c] = r.Rows[i][j]
	}
	return m
}

// rowKey returns a canonical encoding of one row.
func (r *Result) rowKey(i int) string {
	var sb strings.Builder
	for _, v := range r.Rows[i] {
		v.AppendKey(&sb)
		sb.WriteByte('|')
	}
	return sb.String()
}

// Canonical returns the multiset of row keys, sorted. Two results with the
// same columns are semantically equal iff their canonical forms are equal.
func (r *Result) Canonical() []string {
	keys := make([]string, r.Len())
	for i := range r.Rows {
		keys[i] = r.rowKey(i)
	}
	sort.Strings(keys)
	return keys
}

// Equal reports whether two results have the same columns and the same
// multiset of rows (order-insensitive, using Cypher equivalence).
func (r *Result) Equal(o *Result) bool {
	if r.Len() != o.Len() || len(r.Columns) != len(o.Columns) {
		return false
	}
	for i, c := range r.Columns {
		if o.Columns[i] != c {
			return false
		}
	}
	a, b := r.Canonical(), o.Canonical()
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String renders the result as a compact table for debugging.
func (r *Result) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(r.Columns, " | "))
	for _, row := range r.Rows {
		sb.WriteByte('\n')
		for j, v := range row {
			if j > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(v.String())
		}
	}
	return sb.String()
}

// row is the internal intermediate-status row: variable bindings.
type row = map[string]value.Value

func cloneRow(r row) row {
	return cloneRowCap(r, 2)
}

// cloneRowCap clones r into a map pre-sized for extra additional
// bindings, so callers that know how many variables they are about to
// bind (pattern matching does) avoid rehashing the env as it grows.
func cloneRowCap(r row, extra int) row {
	out := make(row, len(r)+extra)
	for k, v := range r {
		out[k] = v
	}
	return out
}
