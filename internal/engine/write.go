package engine

import (
	"fmt"

	"gqs/internal/cypher/ast"
	"gqs/internal/graph"
	"gqs/internal/value"
)

// execCreate instantiates the patterns for every input row. Bound node
// variables are reused; everything else is created.
func (e *Engine) execCreate(c *ast.CreateClause, in []row) ([]row, error) {
	var out []row
	for _, r := range in {
		nr := cloneRow(r)
		for _, p := range c.Patterns {
			if err := e.createPattern(p, nr); err != nil {
				return nil, err
			}
		}
		out = append(out, nr)
	}
	return out, nil
}

func (e *Engine) createPattern(p *ast.PatternPart, r row) error {
	ids := make([]graph.ID, len(p.Nodes))
	for i, np := range p.Nodes {
		if np.Variable != "" {
			if v, bound := r[np.Variable]; bound {
				if v.Kind() != value.KindNode {
					return fmt.Errorf("CREATE: %s is bound to a %s, not a node", np.Variable, v.Kind())
				}
				if len(np.Labels) > 0 || np.Props != nil {
					return fmt.Errorf("CREATE: cannot add labels or properties to bound variable %s", np.Variable)
				}
				ids[i] = v.EntityID()
				continue
			}
		}
		props, err := e.evalPropMap(np.Props, r)
		if err != nil {
			return err
		}
		n := e.store.CreateNode(np.Labels, props)
		ids[i] = n.ID
		if np.Variable != "" {
			r[np.Variable] = value.Node(n.ID)
		}
	}
	for i, rp := range p.Rels {
		if rp.Variable != "" {
			if _, bound := r[rp.Variable]; bound {
				return fmt.Errorf("CREATE: relationship variable %s is already bound", rp.Variable)
			}
		}
		if len(rp.Types) != 1 {
			return fmt.Errorf("CREATE requires exactly one relationship type")
		}
		start, end := ids[i], ids[i+1]
		switch rp.Direction {
		case ast.DirLeft:
			start, end = end, start
		case ast.DirRight:
			// as written
		default:
			return fmt.Errorf("CREATE requires a directed relationship")
		}
		props, err := e.evalPropMap(rp.Props, r)
		if err != nil {
			return err
		}
		rel, err := e.store.CreateRel(start, end, rp.Types[0], props)
		if err != nil {
			return err
		}
		if rp.Variable != "" {
			r[rp.Variable] = value.Rel(rel.ID)
		}
	}
	return nil
}

func (e *Engine) evalPropMap(m *ast.MapLit, r row) (map[string]value.Value, error) {
	if m == nil {
		return nil, nil
	}
	out := make(map[string]value.Value, len(m.Keys))
	for i, k := range m.Keys {
		v, err := e.evalIn(r, m.Vals[i])
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}

// execSet applies SET items to every input row.
func (e *Engine) execSet(items []*ast.SetItem, in []row) error {
	for _, r := range in {
		for _, it := range items {
			if err := e.applySetItem(it, r); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *Engine) applySetItem(it *ast.SetItem, r row) error {
	if len(it.Labels) > 0 {
		v, bound := r[it.Variable]
		if !bound {
			return fmt.Errorf("SET: variable %s is not in scope", it.Variable)
		}
		if v.IsNull() {
			return nil // SET on a null (from OPTIONAL MATCH) is a no-op
		}
		if v.Kind() != value.KindNode {
			return fmt.Errorf("SET: cannot add labels to a %s", v.Kind())
		}
		return e.store.AddLabels(v.EntityID(), it.Labels)
	}
	subj, err := e.evalIn(r, it.Subject)
	if err != nil {
		return err
	}
	if subj.IsNull() {
		return nil
	}
	if !subj.IsEntity() {
		return fmt.Errorf("SET: cannot set property on a %s", subj.Kind())
	}
	v, err := e.evalIn(r, it.Value)
	if err != nil {
		return err
	}
	return e.store.SetProp(subj.EntityID(), subj.Kind() == value.KindRel, it.Property, v)
}

// execRemove removes properties or labels.
func (e *Engine) execRemove(c *ast.RemoveClause, in []row) error {
	for _, r := range in {
		for _, it := range c.Items {
			if len(it.Labels) > 0 {
				v, bound := r[it.Variable]
				if !bound {
					return fmt.Errorf("REMOVE: variable %s is not in scope", it.Variable)
				}
				if v.IsNull() {
					continue
				}
				if v.Kind() != value.KindNode {
					return fmt.Errorf("REMOVE: cannot remove labels from a %s", v.Kind())
				}
				if err := e.store.RemoveLabels(v.EntityID(), it.Labels); err != nil {
					return err
				}
				continue
			}
			subj, err := e.evalIn(r, it.Subject)
			if err != nil {
				return err
			}
			if subj.IsNull() {
				continue
			}
			if !subj.IsEntity() {
				return fmt.Errorf("REMOVE: cannot remove property from a %s", subj.Kind())
			}
			if err := e.store.SetProp(subj.EntityID(), subj.Kind() == value.KindRel, it.Property, value.Null); err != nil {
				return err
			}
		}
	}
	return nil
}

// execDelete deletes entities. DETACH DELETE removes incident
// relationships first; plain DELETE of a still-connected node is an
// error, as in Cypher.
func (e *Engine) execDelete(c *ast.DeleteClause, in []row) error {
	// Gather first: deleting while other rows still reference the
	// entities must behave like Cypher's snapshot semantics.
	var nodes []graph.ID
	var rels []graph.ID
	for _, r := range in {
		for _, x := range c.Exprs {
			v, err := e.evalIn(r, x)
			if err != nil {
				return err
			}
			switch v.Kind() {
			case value.KindNull:
			case value.KindNode:
				nodes = append(nodes, v.EntityID())
			case value.KindRel:
				rels = append(rels, v.EntityID())
			default:
				return fmt.Errorf("DELETE: cannot delete a %s", v.Kind())
			}
		}
	}
	for _, id := range rels {
		e.store.DeleteRel(id)
	}
	for _, id := range nodes {
		if err := e.store.DeleteNode(id, c.Detach); err != nil {
			return err
		}
	}
	return nil
}

// execMerge matches the pattern and, when nothing matches, creates it
// (§2.2: MERGE acts as MATCH-or-CREATE), applying ON MATCH / ON CREATE.
func (e *Engine) execMerge(c *ast.MergeClause, in []row) ([]row, error) {
	var out []row
	steps := 0
	for _, r := range in {
		m := &matcher{
			engine:   e,
			patterns: []*ast.PatternPart{c.Pattern},
			uniq:     e.opts.Dialect.RelUniqueness,
			used:     map[graph.ID]bool{},
			env:      cloneRow(r),
			steps:    &steps,
			maxSteps: e.opts.Limits.MaxMatchSteps,
		}
		var matches []row
		if err := m.run(func(env row) error {
			matches = append(matches, visibleRow(env))
			return nil
		}); err != nil {
			return nil, err
		}
		if len(matches) > 0 {
			if err := e.execSet(c.OnMatch, matches); err != nil {
				return nil, err
			}
			out = append(out, matches...)
			continue
		}
		nr := cloneRow(r)
		if err := e.createPattern(mergeCreatable(c.Pattern), nr); err != nil {
			return nil, err
		}
		if err := e.execSet(c.OnCreate, []row{nr}); err != nil {
			return nil, err
		}
		out = append(out, nr)
	}
	return out, nil
}

// mergeCreatable normalizes a MERGE pattern for creation: undirected
// relationships are created left-to-right, as Neo4j does.
func mergeCreatable(p *ast.PatternPart) *ast.PatternPart {
	changed := false
	rels := make([]*ast.RelPattern, len(p.Rels))
	for i, r := range p.Rels {
		if r.Direction == ast.DirBoth {
			cp := *r
			cp.Direction = ast.DirRight
			rels[i] = &cp
			changed = true
		} else {
			rels[i] = r
		}
	}
	if !changed {
		return p
	}
	return &ast.PatternPart{Variable: p.Variable, Nodes: p.Nodes, Rels: rels}
}
