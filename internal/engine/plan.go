package engine

import (
	"fmt"
	"sort"
	"sync"

	"gqs/internal/cypher/ast"
	"gqs/internal/eval"
	"gqs/internal/functions"
	"gqs/internal/graph"
	"gqs/internal/value"
)

// This file is the physical-plan IR and its executor. A plan is compiled
// once at Prepare time (compile.go) and then executed any number of
// times, by any number of engines concurrently: everything
// dialect-dependent (relationship uniqueness, db.* availability, scan
// direction) and everything store-dependent (index existence, label
// cardinalities, traversal orientation) is read from the EXECUTING engine
// at run time, never baked into the plan. That is what lets the five
// oracle targets share one immutable plan exactly as they share one AST.
//
// The executor mirrors the tree-walking interpreter operation for
// operation — same enumeration order, same step accounting, same error
// identity and timing, same rand()/timestamp() draw schedule — so that
// plan execution is byte-for-byte behaviour-preserving (DESIGN.md §12).
// What it removes is per-row overhead: rows are slot-addressed frames
// ([]value.Value) allocated from a bump arena instead of maps, and every
// expression is a compiled closure instead of an AST walk.

// frame is a slot-addressed row. Slot assignment is per query part; the
// zero Value is null, and a slot is only ever read after the compile-time
// schedule has written it, so frames need no zeroing.
type frame = []value.Value

// queryPlan is the compiled form of one query: one partPlan per UNION
// arm, plus the ALL flags between them.
type queryPlan struct {
	parts []*partPlan
	all   []bool
}

// partPlan is one single-query pipeline: a stage per clause, and the
// frame width covering every slot any stage of the part uses.
type partPlan struct {
	stages []planStage
	width  int
}

// planStage is one compiled clause. run transforms the incoming frames,
// returning the outgoing frames and, for RETURN / final CALL, the result.
type planStage interface {
	run(e *Engine, in []frame) ([]frame, *Result, error)
}

// --- frame arena ---------------------------------------------------

// arenaChunkSlots is the bump-allocation granularity of the frame arena.
const arenaChunkSlots = 4096

// arenaMaxRetain bounds how many chunks reset keeps, so one huge query
// does not pin its peak footprint for the life of the engine.
const arenaMaxRetain = 16

// frameArena bump-allocates frames for one execution. Chunks are reused
// across executions without zeroing: stale slots are unreachable because
// every read is scheduled after a write at compile time (see frame).
type frameArena struct {
	chunks [][]value.Value
	ci     int // index of the chunk being filled
	off    int // fill offset within it
}

func (a *frameArena) alloc(w int) frame {
	if w == 0 {
		return nil
	}
	for {
		if a.ci == len(a.chunks) {
			size := arenaChunkSlots
			if w > size {
				size = w
			}
			a.chunks = append(a.chunks, make([]value.Value, size))
		}
		ch := a.chunks[a.ci]
		if a.off+w <= len(ch) {
			f := ch[a.off : a.off+w : a.off+w]
			a.off += w
			return f
		}
		a.ci++
		a.off = 0
	}
}

func (a *frameArena) reset() {
	a.ci, a.off = 0, 0
	if len(a.chunks) > arenaMaxRetain {
		a.chunks = a.chunks[:arenaMaxRetain:arenaMaxRetain]
	}
}

// planState is the per-engine scratch the plan executor reuses across
// executions: the frame arena, the in-flight match frame, the
// relationship-uniqueness stack, the per-part orientation flags, the
// matcher itself, and the per-stage output row buffers.
type planState struct {
	arena   frameArena
	scratch frame
	used    []graph.ID
	rev     []bool
	pm      planMatcher
	// rows0 backs the one-frame input row runPlanPart seeds each part's
	// pipeline with.
	rows0 [1]frame
	// rowBufs pools the []frame output slices of the row-producing
	// stages (MATCH, UNWIND, CALL). The k-th producing stage of an
	// execution always takes buffer k, so buffers are disjoint within
	// an execution; across executions reuse is safe because results
	// copy values out of frames (buildResult) and nothing else retains
	// them past the execution.
	rowBufs [][]frame
	rowSeq  int
}

func (ps *planState) ensure(w int) frame {
	if cap(ps.scratch) < w {
		ps.scratch = make([]value.Value, w)
	}
	return ps.scratch[:w]
}

// nextRowBuf hands out the next pooled output buffer, empty. The caller
// returns the grown slice through keepRowBuf under the same ticket.
func (ps *planState) nextRowBuf() (int, []frame) {
	if ps.rowSeq == len(ps.rowBufs) {
		ps.rowBufs = append(ps.rowBufs, nil)
	}
	k := ps.rowSeq
	ps.rowSeq++
	return k, ps.rowBufs[k][:0]
}

// keepRowBuf stores a stage's final output slice for reuse by the next
// execution. Oversized buffers are dropped, bounding retained memory
// the same way arenaMaxRetain bounds the arena.
func (ps *planState) keepRowBuf(k int, b []frame) {
	if cap(b) > arenaChunkSlots {
		b = nil
	}
	ps.rowBufs[k] = b
}

// planCtx refreshes the engine's scratch eval context for compiled
// evaluation: Env is unused on this path (compiled closures read
// Frame[slot]), and stages rebind Frame per row.
func (e *Engine) planCtx(f frame) *eval.Ctx {
	e.ectx.Graph = e.store.Graph()
	e.ectx.Env = nil
	e.ectx.Params = e.params
	e.ectx.Exec = e.exec
	e.ectx.Frame = f
	return &e.ectx
}

// --- top-level execution -------------------------------------------

// runPlan executes a compiled plan, mirroring ExecuteAST's UNION
// handling.
func (e *Engine) runPlan(p *queryPlan) (*Result, error) {
	e.planTrace = e.planTrace[:0]
	e.pstate.arena.reset()
	e.pstate.rowSeq = 0
	if len(e.pstate.rowBufs) > arenaMaxRetain {
		e.pstate.rowBufs = e.pstate.rowBufs[:arenaMaxRetain:arenaMaxRetain]
	}
	var out *Result
	for i, pp := range p.parts {
		r, err := e.runPlanPart(pp)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			out = r
			continue
		}
		if err := sameColumns(out, r); err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, r.Rows...)
		if !p.all[i-1] {
			out = distinctResult(out)
		}
	}
	return out, nil
}

// runPlanPart executes one part's stage pipeline, mirroring
// executeSingle's per-clause cancellation poll and row limit.
func (e *Engine) runPlanPart(pp *partPlan) (*Result, error) {
	ps := &e.pstate
	ps.rows0[0] = ps.arena.alloc(pp.width)
	rows := ps.rows0[:1:1]
	var result *Result
	for _, st := range pp.stages {
		if err := e.checkCancelNow(); err != nil {
			return nil, err
		}
		var res *Result
		var err error
		rows, res, err = st.run(e, rows)
		if err != nil {
			return nil, err
		}
		if res != nil {
			result = res
		}
		if len(rows) > e.opts.Limits.MaxRows {
			return nil, &ErrResourceLimit{What: "intermediate rows"}
		}
	}
	if result == nil {
		result = &Result{}
	}
	return result, nil
}

// --- MATCH ---------------------------------------------------------

// cCost is the compiled cost estimate for starting a chain at a node:
// zero when the node variable is already bound at the part's entry,
// otherwise the most selective label cardinality. Evaluated against the
// executing store so one plan orients correctly on every target.
type cCost struct {
	bound  bool
	labels []string
}

func (c *cCost) eval(st *Store) int {
	if c.bound {
		return 0
	}
	best := st.Graph().NumNodes()
	for _, l := range c.labels {
		if n := st.LabelCount(l); n < best {
			best = n
		}
	}
	return best
}

// cProps is a compiled inline property map: evaluated key by key in
// declaration order against the current frame, exactly as
// matcher.checkProps evaluates the MapLit.
type cProps struct {
	keys []string
	vals []eval.Compiled
}

// cProbe is one candidate index probe of the chain's first node: a
// (label, property) pair with the compiled value expression and the
// precomputed trace string.
type cProbe struct {
	label string
	key   string
	val   eval.Compiled
	trace string
}

// cNode is one pattern node of a chain. slot is -1 for anonymous nodes;
// bound means the variable is in scope before this element binds (so the
// node is an equality check, not a scan). conj are the WHERE conjuncts
// that become fully bound at this element, in conjunct order.
type cNode struct {
	slot   int
	bound  bool
	labels []string
	props  cProps
	probes []cProbe // chain entry node only
	conj   []eval.CompiledPred
}

// cRel is one pattern relationship of a chain.
type cRel struct {
	slot  int
	bound bool
	types []string
	dir   ast.Direction
	props cProps
	conj  []eval.CompiledPred
}

// cChain is one pattern part lowered to a node/relationship expansion
// sequence (len(nodes) == len(rels)+1).
type cChain struct {
	nodes []cNode
	rels  []cRel
}

// cPart is one pattern part. The forward orientation is precompiled; the
// reverse is built on first demand (revBuild, nil for single-node parts)
// because most executions never reverse — the executor picks fwd or rev
// once per execution from the cost estimates, mirroring matcher.orient
// (whose per-row choice is constant across rows: boundness is static and
// the store does not change during a read-only execution). revOnce makes
// the lazy build safe across concurrent executions of the shared plan;
// after it fires the chain is immutable like everything else here.
type cPart struct {
	fwd       *cChain
	costFirst cCost
	costLast  cCost
	revBuild  func() *cChain
	revOnce   sync.Once
	rev       *cChain
}

// reverse returns the reversed chain, building it on first use.
func (p *cPart) reverse() *cChain {
	p.revOnce.Do(func() { p.rev = p.revBuild() })
	return p.rev
}

// cMatch is a compiled MATCH / OPTIONAL MATCH clause. entry holds the
// conjuncts evaluable from the input row alone; final the conjuncts that
// never become fully bound (they surface unknown-variable errors at emit
// time, as the interpreter's conservative final pass does); optFill the
// slots OPTIONAL MATCH null-fills when nothing matched.
type cMatch struct {
	optional bool
	entry    []eval.CompiledPred
	final    []eval.CompiledPred
	parts    []*cPart
	optFill  []int
}

// planMatcher is the slot-frame mirror of matcher: one instance serves
// every input row of one clause execution, sharing the step budget and
// the relationship-uniqueness stack exactly as the interpreter shares
// them.
type planMatcher struct {
	e        *Engine
	ctx      *eval.Ctx
	g        *graph.Graph
	adj      *graph.AdjIndex // base-snapshot adjacency index, nil = scan only
	m        *cMatch
	f        frame
	w        int
	uniq     bool
	revScan  bool
	rev      []bool
	used     []graph.ID
	steps    int
	maxSteps int
	maxRows  int
	out      []frame
	arena    *frameArena
	matched  bool
}

func (st *cMatch) run(e *Engine, in []frame) ([]frame, *Result, error) {
	if len(in) == 0 {
		return nil, nil, nil
	}
	w := len(in[0])
	ps := &e.pstate
	scratch := ps.ensure(w)
	// Orientation, chosen once per execution (see cPart).
	if cap(ps.rev) < len(st.parts) {
		ps.rev = make([]bool, len(st.parts))
	}
	rev := ps.rev[:len(st.parts)]
	for i, p := range st.parts {
		rev[i] = p.revBuild != nil && p.costLast.eval(e.store) < p.costFirst.eval(e.store)
		if rev[i] {
			e.planTrace = append(e.planTrace, "ReverseTraversal")
		}
	}
	g := e.store.Graph()
	var adj *graph.AdjIndex
	if !e.opts.DisableAdjIndex {
		adj = g.BaseAdjIndex() // nil unless snapshot-backed
	}
	// The matcher and its output buffer live in planState: one matcher
	// struct per engine instead of one per MATCH execution, and the
	// output slice of the k-th producing stage is recycled across
	// executions (see nextRowBuf).
	bufK, out := ps.nextRowBuf()
	pm := &ps.pm
	*pm = planMatcher{
		e:        e,
		ctx:      e.planCtx(scratch),
		g:        g,
		adj:      adj,
		m:        st,
		f:        scratch,
		w:        w,
		uniq:     e.opts.Dialect.RelUniqueness,
		revScan:  e.opts.ReverseScan,
		rev:      rev,
		used:     ps.used[:0],
		maxSteps: e.opts.Limits.MaxMatchSteps,
		maxRows:  e.opts.Limits.MaxRows,
		out:      out,
		arena:    &ps.arena,
	}
	for _, r := range in {
		copy(scratch, r)
		pm.matched = false
		ok := true
		for _, p := range st.entry {
			t, err := p(pm.ctx)
			if err != nil {
				return nil, nil, err
			}
			if t != value.TriTrue {
				ok = false
				break
			}
		}
		if ok {
			if err := pm.part(0); err != nil {
				return nil, nil, err
			}
		}
		if st.optional && !pm.matched {
			nf := ps.arena.alloc(w)
			copy(nf, r)
			for _, s := range st.optFill {
				nf[s] = value.Null
			}
			pm.out = append(pm.out, nf)
		}
	}
	ps.used = pm.used[:0]
	ps.keepRowBuf(bufK, pm.out)
	return pm.out, nil, nil
}

func (pm *planMatcher) step() error {
	pm.steps++
	if pm.steps > pm.maxSteps {
		return &ErrResourceLimit{What: "match steps"}
	}
	return pm.e.checkCancel()
}

func (pm *planMatcher) part(pi int) error {
	if pi == len(pm.m.parts) {
		for _, p := range pm.m.final {
			t, err := p(pm.ctx)
			if err != nil {
				return err
			}
			if t != value.TriTrue {
				return nil
			}
		}
		return pm.emit()
	}
	ch := pm.m.parts[pi].fwd
	if pm.rev[pi] {
		ch = pm.m.parts[pi].reverse()
	}
	return pm.node0(ch, pi)
}

func (pm *planMatcher) emit() error {
	pm.matched = true
	nf := pm.arena.alloc(pm.w)
	copy(nf, pm.f)
	pm.out = append(pm.out, nf)
	if len(pm.out) > pm.maxRows {
		return &ErrResourceLimit{What: "match results"}
	}
	return nil
}

// node0 binds the chain's entry node: the equality path when the
// variable is already bound, otherwise a scan over the access path.
func (pm *planMatcher) node0(ch *cChain, pi int) error {
	n := &ch.nodes[0]
	if n.bound {
		v := pm.f[n.slot]
		if v.Kind() != value.KindNode {
			return nil // bound to a non-node: no match
		}
		return pm.bindNode0(ch, pi, v.EntityID())
	}
	ids, reversed := pm.scan(n)
	if reversed {
		for i := len(ids) - 1; i >= 0; i-- {
			if err := pm.bindNode0(ch, pi, ids[i]); err != nil {
				return err
			}
		}
		return nil
	}
	for _, id := range ids {
		if err := pm.bindNode0(ch, pi, id); err != nil {
			return err
		}
	}
	return nil
}

// scan picks the access path for an unbound entry node, mirroring
// matcher.nodeCandidates: index probe, most-selective label scan, full
// scan. Instead of copying to reverse under ReverseScan dialects it
// reports descending iteration (index probes are never reversed, as in
// the interpreter).
func (pm *planMatcher) scan(n *cNode) ([]graph.ID, bool) {
	st := pm.e.store
	for i := range n.probes {
		p := &n.probes[i]
		if !st.HasIndex(p.label, p.key) {
			continue
		}
		v, err := p.val(pm.ctx)
		if err != nil || v.IsNull() {
			continue // probe value unavailable: fall through, as interpreted
		}
		if ids, ok := st.NodesByIndex(p.label, p.key, v); ok {
			pm.e.planTrace = append(pm.e.planTrace, p.trace)
			return ids, false
		}
	}
	if len(n.labels) > 0 {
		best := st.NodesByLabel(n.labels[0])
		for _, l := range n.labels[1:] {
			if ids := st.NodesByLabel(l); len(ids) < len(best) {
				best = ids
			}
		}
		pm.e.planTrace = append(pm.e.planTrace, "NodeByLabelScan")
		return best, pm.revScan
	}
	pm.e.planTrace = append(pm.e.planTrace, "AllNodesScan")
	return pm.g.NodeIDs(), pm.revScan
}

func (pm *planMatcher) bindNode0(ch *cChain, pi int, id graph.ID) error {
	if err := pm.step(); err != nil {
		return err
	}
	n := &ch.nodes[0]
	ok, err := pm.checkNode(n, id)
	if err != nil || !ok {
		return err
	}
	if n.slot >= 0 {
		pm.f[n.slot] = value.Node(id)
	}
	for _, p := range n.conj {
		t, err := p(pm.ctx)
		if err != nil {
			return err
		}
		if t != value.TriTrue {
			return nil
		}
	}
	if len(ch.nodes) == 1 {
		return pm.part(pi + 1)
	}
	return pm.rel(ch, 0, pi, id)
}

func (pm *planMatcher) checkNode(n *cNode, id graph.ID) (bool, error) {
	if pm.adj != nil && len(n.labels) > 0 && len(n.props.keys) == 0 {
		// Label-only check through the label index (base + store
		// deltas): membership implies existence — deleted nodes are
		// unindexed — so the node table is never touched. Gated with
		// the adjacency index so DisableAdjIndex yields a pure-scan
		// engine for the differential.
		for _, l := range n.labels {
			if !pm.e.store.NodeHasLabel(l, id) {
				return false, nil
			}
		}
		return true, nil
	}
	gn := pm.g.Node(id)
	if gn == nil {
		return false, nil
	}
	for _, l := range n.labels {
		if !gn.HasLabel(l) {
			return false, nil
		}
	}
	return pm.checkProps(&n.props, gn.Props)
}

func (pm *planMatcher) checkProps(p *cProps, props map[string]value.Value) (bool, error) {
	for i, key := range p.keys {
		want, err := p.vals[i](pm.ctx)
		if err != nil {
			return false, err
		}
		got, ok := props[key]
		if !ok || value.Equal(got, want) != value.TriTrue {
			return false, nil
		}
	}
	return true, nil
}

// rel expands relationship i of the chain from the bound node `from`:
// through the adjacency index when the pattern is typed and the index
// covers the node, otherwise by scanning the full adjacency lists.
func (pm *planMatcher) rel(ch *cChain, i, pi int, from graph.ID) error {
	if pm.adj != nil && len(ch.rels[i].types) > 0 {
		if handled, err := pm.relIndexed(ch, i, pi, from); handled {
			return err
		}
	}
	switch ch.rels[i].dir {
	case ast.DirRight:
		for _, rid := range pm.g.Out(from) {
			if err := pm.tryRel(ch, i, pi, rid, pm.g.Rel(rid).End); err != nil {
				return err
			}
		}
	case ast.DirLeft:
		for _, rid := range pm.g.In(from) {
			if err := pm.tryRel(ch, i, pi, rid, pm.g.Rel(rid).Start); err != nil {
				return err
			}
		}
	default: // undirected
		for _, rid := range pm.g.Out(from) {
			if err := pm.tryRel(ch, i, pi, rid, pm.g.Rel(rid).End); err != nil {
				return err
			}
		}
		for _, rid := range pm.g.In(from) {
			r := pm.g.Rel(rid)
			if r.Start == r.End {
				continue // self-loop already visited via Out
			}
			if err := pm.tryRel(ch, i, pi, rid, r.Start); err != nil {
				return err
			}
		}
	}
	return nil
}

func (pm *planMatcher) tryRel(ch *cChain, i, pi int, rid, other graph.ID) error {
	if err := pm.step(); err != nil {
		return err
	}
	r := &ch.rels[i]
	gr := pm.g.Rel(rid)
	if !typeMatches(r.types, gr.Type) {
		return nil
	}
	ok, err := pm.checkProps(&r.props, gr.Props)
	if err != nil || !ok {
		return err
	}
	return pm.relBind(ch, i, pi, rid, other)
}

// relBind finishes candidate acceptance after type/property filtering:
// bound-variable equality, relationship uniqueness, slot binding, and
// the chain tail. Shared by the scan and indexed expansion paths.
func (pm *planMatcher) relBind(ch *cChain, i, pi int, rid, other graph.ID) error {
	r := &ch.rels[i]
	pushed := false
	if r.bound {
		if v := pm.f[r.slot]; v.Kind() != value.KindRel || v.EntityID() != rid {
			return nil
		}
	} else {
		if pm.uniq {
			for _, u := range pm.used {
				if u == rid {
					return nil
				}
			}
		}
		pm.used = append(pm.used, rid)
		pushed = true
		if r.slot >= 0 {
			pm.f[r.slot] = value.Rel(rid)
		}
	}
	err := pm.relTail(ch, i, pi, other)
	if pushed {
		pm.used = pm.used[:len(pm.used)-1]
	}
	return err
}

// tryRelIndexed is tryRel for an index-bucket candidate: the bucket key
// guarantees the type matches, and the entry carries the far endpoint,
// so the relationship record is fetched (overlay-resolving, for rels
// whose properties were mutated after seal) only when the pattern has
// inline properties to check.
func (pm *planMatcher) tryRelIndexed(ch *cChain, i, pi int, rid, other graph.ID) error {
	if err := pm.step(); err != nil {
		return err
	}
	r := &ch.rels[i]
	if len(r.props.keys) > 0 {
		ok, err := pm.checkProps(&r.props, pm.g.Rel(rid).Props)
		if err != nil || !ok {
			return err
		}
	}
	return pm.relBind(ch, i, pi, rid, other)
}

// skipRun charges n skipped (type-mismatched) scan positions to the
// match-step budget in one add. The scan path charges them one step()
// each, but a mismatched candidate has no effect besides its step, so
// one limit check after the run errors at exactly the boundary the
// scan would have hit — the positions past the limit would have done
// nothing anyway. Only the cancellation-poll cadence differs, which is
// not observable behaviour (polling is wall-clock dependent already).
func (pm *planMatcher) skipRun(n int) error {
	if n <= 0 {
		return nil
	}
	pm.steps += n
	if pm.steps > pm.maxSteps {
		return &ErrResourceLimit{What: "match steps"}
	}
	return pm.e.checkCancel()
}

// relIndexed expands relationship i through the base snapshot's
// adjacency index. It handles the expansion only when the overlay does
// not shadow the node's adjacency in any direction the pattern reads;
// otherwise it reports handled == false and rel falls back to the
// scan, which is always correct (an overlay entry is the node's
// complete adjacency list). The index walk visits exactly the scan's
// candidates in exactly its order, with mismatched positions charged
// to the step budget via skipRun, so the two paths are observationally
// identical — the scan-vs-index differential test pins this.
func (pm *planMatcher) relIndexed(ch *cChain, i, pi int, from graph.ID) (bool, error) {
	switch ch.rels[i].dir {
	case ast.DirRight:
		if pm.g.AdjShadowed(from, true) {
			return false, nil
		}
		pm.e.adjExpansions++
		return true, pm.expandIndexed(ch, i, pi, from, true, false)
	case ast.DirLeft:
		if pm.g.AdjShadowed(from, false) {
			return false, nil
		}
		pm.e.adjExpansions++
		return true, pm.expandIndexed(ch, i, pi, from, false, false)
	default: // undirected: Out pass, then In pass skipping self-loops
		if pm.g.AdjShadowed(from, true) || pm.g.AdjShadowed(from, false) {
			return false, nil
		}
		pm.e.adjExpansions++
		if err := pm.expandIndexed(ch, i, pi, from, true, false); err != nil {
			return true, err
		}
		return true, pm.expandIndexed(ch, i, pi, from, false, true)
	}
}

// expandIndexed runs one direction of an indexed expansion. noSelf
// marks the undirected In pass, which skips self-loops (already
// visited via Out) and therefore accounts steps in NSPos space — the
// in-list ordinals with self-loops compacted out, matching the scan's
// continue-before-step.
func (pm *planMatcher) expandIndexed(ch *cChain, i, pi int, from graph.ID, out, noSelf bool) error {
	entries := pm.adjEntries(from, ch.rels[i].types, out)
	var total int
	if out {
		total = len(pm.g.Out(from))
	} else {
		total = len(pm.g.In(from))
		if noSelf {
			total -= pm.adj.SelfLoopIn(from)
		}
	}
	prev := int32(-1)
	for k := range entries {
		e := &entries[k]
		pos := e.Pos
		if noSelf {
			pos = e.NSPos
			if pos < 0 {
				continue // self-loop: the scan skips it before stepping
			}
		}
		if err := pm.skipRun(int(pos - prev - 1)); err != nil {
			return err
		}
		prev = pos
		if err := pm.tryRelIndexed(ch, i, pi, e.Rel, e.Other); err != nil {
			return err
		}
	}
	return pm.skipRun(total - 1 - int(prev))
}

// adjEntries returns the index entries for the node across the
// pattern's admissible types, Pos-ascending. One type (the common
// case) returns the shared bucket directly, allocation-free; several
// merge their buckets by position into a fresh slice, which
// reconstructs full adjacency-list order because the buckets partition
// the list by type.
func (pm *planMatcher) adjEntries(from graph.ID, types []string, out bool) []graph.AdjEntry {
	if out {
		if len(types) == 1 {
			return pm.adj.Out(from, types[0])
		}
		var merged []graph.AdjEntry
		for _, t := range types {
			merged = mergeAdjEntries(merged, pm.adj.Out(from, t))
		}
		return merged
	}
	if len(types) == 1 {
		return pm.adj.In(from, types[0])
	}
	var merged []graph.AdjEntry
	for _, t := range types {
		merged = mergeAdjEntries(merged, pm.adj.In(from, t))
	}
	return merged
}

// mergeAdjEntries merges two Pos-sorted runs into a fresh slice,
// mutating neither input (a may be a previous merge result, b is
// always a shared index bucket). Equal positions — a type repeated in
// the pattern — collapse to one entry, as typeMatches visits each
// relationship once however many alternatives name its type.
func mergeAdjEntries(a, b []graph.AdjEntry) []graph.AdjEntry {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	m := make([]graph.AdjEntry, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Pos < b[j].Pos:
			m = append(m, a[i])
			i++
		case a[i].Pos > b[j].Pos:
			m = append(m, b[j])
			j++
		default:
			m = append(m, a[i])
			i, j = i+1, j+1
		}
	}
	m = append(m, a[i:]...)
	return append(m, b[j:]...)
}

func (pm *planMatcher) relTail(ch *cChain, i, pi int, other graph.ID) error {
	for _, p := range ch.rels[i].conj {
		t, err := p(pm.ctx)
		if err != nil {
			return err
		}
		if t != value.TriTrue {
			return nil
		}
	}
	return pm.nodeAt(ch, i+1, pi, other)
}

// nodeAt binds chain node i to the far endpoint of the relationship just
// traversed. No step() here, mirroring matchNodeAt.
func (pm *planMatcher) nodeAt(ch *cChain, i, pi int, id graph.ID) error {
	n := &ch.nodes[i]
	if n.bound {
		if v := pm.f[n.slot]; v.Kind() != value.KindNode || v.EntityID() != id {
			return nil
		}
	}
	ok, err := pm.checkNode(n, id)
	if err != nil || !ok {
		return err
	}
	if n.slot >= 0 {
		pm.f[n.slot] = value.Node(id)
	}
	for _, p := range n.conj {
		t, err := p(pm.ctx)
		if err != nil {
			return err
		}
		if t != value.TriTrue {
			return nil
		}
	}
	if i == len(ch.nodes)-1 {
		return pm.part(pi + 1)
	}
	return pm.rel(ch, i, pi, id)
}

// --- UNWIND --------------------------------------------------------

type cUnwind struct {
	list eval.Compiled
	slot int
}

func (st *cUnwind) run(e *Engine, in []frame) ([]frame, *Result, error) {
	ctx := e.planCtx(nil)
	ps := &e.pstate
	bufK, out := ps.nextRowBuf()
	for _, r := range in {
		if err := e.checkCancel(); err != nil {
			return nil, nil, err
		}
		ctx.Frame = r
		v, err := st.list(ctx)
		if err != nil {
			return nil, nil, err
		}
		switch v.Kind() {
		case value.KindNull:
			// no rows
		case value.KindList:
			for _, el := range v.AsList() {
				nf := ps.arena.alloc(len(r))
				copy(nf, r)
				nf[st.slot] = el
				out = append(out, nf)
			}
		default:
			return nil, nil, fmt.Errorf("type error: UNWIND expects a list, got %s", v.Kind())
		}
	}
	ps.keepRowBuf(bufK, out)
	return out, nil, nil
}

// --- CALL ----------------------------------------------------------

type cCall struct {
	proc string
	col  string
	slot int
	last bool
}

func (st *cCall) run(e *Engine, in []frame) ([]frame, *Result, error) {
	// Availability is a dialect property, so it is checked at run time
	// against the executing engine, never at compile time.
	d := e.opts.Dialect
	var vals []value.Value
	switch st.proc {
	case "db.labels":
		if !d.ProvidesDBLabels {
			return nil, nil, fmt.Errorf("%s: there is no procedure db.labels", d.Name)
		}
		for _, l := range e.store.Labels() {
			vals = append(vals, value.Str(l))
		}
	case "db.relationshipTypes":
		if !d.ProvidesDBLabels {
			return nil, nil, fmt.Errorf("%s: there is no procedure db.relationshipTypes", d.Name)
		}
		for _, t := range e.store.RelTypes() {
			vals = append(vals, value.Str(t))
		}
	case "db.propertyKeys":
		if !d.ProvidesDBLabels {
			return nil, nil, fmt.Errorf("%s: there is no procedure db.propertyKeys", d.Name)
		}
		for _, k := range e.store.PropertyKeys() {
			vals = append(vals, value.Str(k))
		}
	default:
		// compileCallStage only lowers the three known procedures.
		return nil, nil, fmt.Errorf("unknown procedure %s", st.proc)
	}
	ps := &e.pstate
	bufK, out := ps.nextRowBuf()
	for _, r := range in {
		for _, v := range vals {
			nf := ps.arena.alloc(len(r))
			copy(nf, r)
			nf[st.slot] = v
			out = append(out, nf)
		}
	}
	ps.keepRowBuf(bufK, out)
	if st.last {
		res := &Result{Columns: []string{st.col}}
		for _, r := range out {
			res.Rows = append(res.Rows, []value.Value{r[st.slot]})
		}
		return out, res, nil
	}
	return out, nil, nil
}

// --- WITH / RETURN -------------------------------------------------

// cProjItem is one compiled projection item: the output column's slot
// and its compiled expression (for aggregating items, compiled with the
// per-group aggregate results spliced in via the Special hook).
type cProjItem struct {
	name string
	slot int
	agg  bool
	fn   eval.Compiled
}

// cAggCall is one aggregate call occurrence within a projection: its
// accumulator spec, the compiled argument/parameter expressions, and the
// slot its per-group result is published in for the item expressions.
type cAggCall struct {
	spec     *functions.AggSpec
	star     bool
	distinct bool
	argCount int
	arg      eval.Compiled // nil for star calls
	param    eval.Compiled // non-nil only for HasParam calls with 2 args
	slot     int
}

type cSort struct {
	key  eval.Compiled
	desc bool
}

// cProjection is a compiled WITH or RETURN clause. The interpreter
// fallback fields (proj, requireAlias) serve the one cold path the
// compiled form cannot reproduce: grouped aggregation over zero input
// rows, whose finalization evaluates expressions in an EMPTY environment
// (unknown-variable errors included), which slot reads cannot mimic.
type cProjection struct {
	items      []cProjItem
	cols       []string
	groupItems []int // indices into items of the non-aggregating items
	calls      []cAggCall
	hasAgg     bool
	distinct   bool
	isReturn   bool
	sorts      []cSort
	skip       eval.Compiled
	limit      eval.Compiled
	where      eval.CompiledPred // WITH ... WHERE only

	proj         *ast.Projection
	requireAlias bool
	width        int // part frame width, set by compileSinglePlan
}

func (st *cProjection) run(e *Engine, in []frame) ([]frame, *Result, error) {
	if st.hasAgg && len(in) == 0 {
		return st.runInterp(e)
	}
	ctx := e.planCtx(nil)
	rows := in
	if st.hasAgg {
		var err error
		rows, err = st.aggregate(e, ctx, in)
		if err != nil {
			return nil, nil, err
		}
	} else {
		// Items are written in place: item slots are disjoint from every
		// input-scope slot, and item expressions read only input scope.
		for _, r := range in {
			if err := e.checkCancel(); err != nil {
				return nil, nil, err
			}
			ctx.Frame = r
			for i := range st.items {
				v, err := st.items[i].fn(ctx)
				if err != nil {
					return nil, nil, err
				}
				r[st.items[i].slot] = v
			}
		}
	}
	if st.distinct {
		rows = st.distinctFrames(rows)
	}
	if len(st.sorts) > 0 {
		if err := st.orderBy(ctx, rows); err != nil {
			return nil, nil, err
		}
	}
	var err error
	rows, err = st.skipLimit(e, ctx, rows)
	if err != nil {
		return nil, nil, err
	}
	if st.isReturn {
		// RETURN does not replace the row pipeline (executeSingle's row
		// limit sees the pre-projection count), so pass `in` through.
		return in, st.buildResult(rows), nil
	}
	if st.where != nil {
		rows, err = st.filter(ctx, rows)
		if err != nil {
			return nil, nil, err
		}
	}
	return rows, nil, nil
}

// runInterp is the zero-row aggregation cold path: delegate the whole
// projection to the interpreter and convert its map rows back to frames.
func (st *cProjection) runInterp(e *Engine) ([]frame, *Result, error) {
	rows, cols, err := e.project(st.proj, nil, st.requireAlias)
	if err != nil {
		return nil, nil, err
	}
	if st.isReturn {
		res := &Result{Columns: cols}
		for _, r := range rows {
			vals := make([]value.Value, len(cols))
			for i, col := range cols {
				vals[i] = r[col]
			}
			res.Rows = append(res.Rows, vals)
		}
		return nil, res, nil
	}
	ps := &e.pstate
	out := make([]frame, 0, len(rows))
	for _, r := range rows {
		nf := ps.arena.alloc(st.width)
		for i := range st.items {
			nf[st.items[i].slot] = r[st.items[i].name]
		}
		out = append(out, nf)
	}
	if st.where != nil {
		out, err = st.filter(e.planCtx(nil), out)
		if err != nil {
			return nil, nil, err
		}
	}
	return out, nil, nil
}

func (st *cProjection) filter(ctx *eval.Ctx, rows []frame) ([]frame, error) {
	out := rows[:0]
	for _, r := range rows {
		ctx.Frame = r
		t, err := st.where(ctx)
		if err != nil {
			return nil, err
		}
		if t == value.TriTrue {
			out = append(out, r)
		}
	}
	return out, nil
}

func (st *cProjection) distinctFrames(rows []frame) []frame {
	seen := make(map[string]bool, len(rows))
	var key []byte
	out := rows[:0]
	for _, r := range rows {
		key = key[:0]
		for i := range st.items {
			key = append(key, r[st.items[i].slot].Key()...)
			key = append(key, '|')
		}
		if !seen[string(key)] {
			seen[string(key)] = true
			out = append(out, r)
		}
	}
	return out
}

func (st *cProjection) orderBy(ctx *eval.Ctx, rows []frame) error {
	n := len(rows)
	if n == 0 {
		return nil
	}
	ns := len(st.sorts)
	keys := make([]value.Value, n*ns)
	for i, r := range rows {
		ctx.Frame = r
		for j := range st.sorts {
			v, err := st.sorts[j].key(ctx)
			if err != nil {
				return err
			}
			keys[i*ns+j] = v
		}
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ka, kb := keys[perm[a]*ns:], keys[perm[b]*ns:]
		for j := range st.sorts {
			c := value.OrderCompare(ka[j], kb[j])
			if c != 0 {
				if st.sorts[j].desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	tmp := make([]frame, n)
	copy(tmp, rows)
	for i, p := range perm {
		rows[i] = tmp[p]
	}
	return nil
}

func (st *cProjection) skipLimit(e *Engine, ctx *eval.Ctx, rows []frame) ([]frame, error) {
	if st.skip == nil && st.limit == nil {
		return rows, nil
	}
	// SKIP/LIMIT evaluate in an empty environment (variable references
	// error), but comprehension binders still need their temp slots.
	ctx.Frame = e.pstate.ensure(st.width)
	if st.skip != nil {
		n, err := nonNegIntC(ctx, st.skip, "SKIP")
		if err != nil {
			return nil, err
		}
		if n >= int64(len(rows)) {
			rows = nil
		} else {
			rows = rows[n:]
		}
	}
	if st.limit != nil {
		n, err := nonNegIntC(ctx, st.limit, "LIMIT")
		if err != nil {
			return nil, err
		}
		if n < int64(len(rows)) {
			rows = rows[:n]
		}
	}
	return rows, nil
}

func nonNegIntC(ctx *eval.Ctx, fn eval.Compiled, what string) (int64, error) {
	v, err := fn(ctx)
	if err != nil {
		return 0, err
	}
	if v.Kind() != value.KindInt || v.AsInt() < 0 {
		return 0, fmt.Errorf("%s requires a non-negative integer, got %v", what, v)
	}
	return v.AsInt(), nil
}

func (st *cProjection) buildResult(rows []frame) *Result {
	res := &Result{Columns: append([]string(nil), st.cols...)}
	if len(rows) == 0 {
		return res
	}
	nc := len(st.items)
	flat := make([]value.Value, len(rows)*nc)
	res.Rows = make([][]value.Value, len(rows))
	for i, r := range rows {
		vals := flat[i*nc : (i+1)*nc : (i+1)*nc]
		for j := range st.items {
			vals[j] = r[st.items[j].slot]
		}
		res.Rows[i] = vals
	}
	return res
}

// aggGroupRT is one group's runtime state.
type aggGroupRT struct {
	keys     []value.Value
	first    frame
	accs     []functions.Aggregator
	distinct []map[string]bool
}

// aggregate mirrors Engine.aggregate over frames: grouping keys are the
// non-aggregating items (evaluated once per row, stored — re-evaluating
// at finalization would double any rand() draws), accumulators run per
// group, and finalization publishes each call's result in its slot
// before evaluating the aggregating items against the group's first row.
func (st *cProjection) aggregate(e *Engine, ctx *eval.Ctx, in []frame) ([]frame, error) {
	groups := make(map[string]*aggGroupRT)
	var order []*aggGroupRT
	var keyBuf []byte
	keyScratch := make([]value.Value, len(st.groupItems))
	for _, r := range in {
		if err := e.checkCancel(); err != nil {
			return nil, err
		}
		ctx.Frame = r
		keyBuf = keyBuf[:0]
		for gi, idx := range st.groupItems {
			v, err := st.items[idx].fn(ctx)
			if err != nil {
				return nil, err
			}
			keyScratch[gi] = v
			keyBuf = append(keyBuf, v.Key()...)
			keyBuf = append(keyBuf, '|')
		}
		g, ok := groups[string(keyBuf)]
		if !ok {
			g = &aggGroupRT{first: r, keys: append([]value.Value(nil), keyScratch...)}
			g.accs = make([]functions.Aggregator, len(st.calls))
			g.distinct = make([]map[string]bool, len(st.calls))
			for ci := range st.calls {
				c := &st.calls[ci]
				if c.star {
					g.accs[ci] = functions.CountStar()
					continue
				}
				var param value.Value
				if c.spec.HasParam {
					if c.argCount != 2 {
						return nil, fmt.Errorf("%s requires two arguments", c.spec.Name)
					}
					p, err := c.param(ctx)
					if err != nil {
						return nil, err
					}
					param = p
				} else if c.argCount != 1 {
					return nil, fmt.Errorf("%s requires one argument", c.spec.Name)
				}
				g.accs[ci] = c.spec.New(param)
				if c.distinct {
					g.distinct[ci] = map[string]bool{}
				}
			}
			groups[string(keyBuf)] = g
			order = append(order, g)
		}
		for ci := range st.calls {
			c := &st.calls[ci]
			var v value.Value
			if c.star {
				v = value.True // counted regardless
			} else {
				var err error
				v, err = c.arg(ctx)
				if err != nil {
					return nil, err
				}
			}
			if g.distinct[ci] != nil {
				k := v.Key()
				if g.distinct[ci][k] {
					continue
				}
				g.distinct[ci][k] = true
			}
			if err := g.accs[ci].Add(v); err != nil {
				return nil, err
			}
		}
	}
	out := make([]frame, 0, len(order))
	for _, g := range order {
		for ci := range st.calls {
			g.first[st.calls[ci].slot] = g.accs[ci].Result()
		}
		for gi, idx := range st.groupItems {
			g.first[st.items[idx].slot] = g.keys[gi]
		}
		ctx.Frame = g.first
		for i := range st.items {
			it := &st.items[i]
			if !it.agg {
				continue
			}
			v, err := it.fn(ctx)
			if err != nil {
				return nil, err
			}
			g.first[it.slot] = v
		}
		out = append(out, g.first)
	}
	return out, nil
}
