package engine

import (
	"context"
	"errors"
	"fmt"

	"gqs/internal/cypher/ast"
	"gqs/internal/cypher/parser"
	"gqs/internal/eval"
	"gqs/internal/functions"
	"gqs/internal/graph"
	"gqs/internal/value"
)

// Dialect captures the documented behavioural differences between the
// Cypher implementations the paper tests (§4, "Handling GDB-specific
// Cypher Variations").
type Dialect struct {
	Name string
	// RelUniqueness enforces the Cypher reference rule that distinct
	// relationship pattern elements of one MATCH clause bind distinct
	// relationships. FalkorDB and Kùzu deviate and allow repeats.
	RelUniqueness bool
	// ProvidesDBLabels enables the CALL db.labels()/db.relationshipTypes()
	// /db.propertyKeys() procedures (Neo4j and FalkorDB provide them;
	// Kùzu and Memgraph do not).
	ProvidesDBLabels bool
	// EnforceSchema rejects writes whose property types deviate from the
	// declared schema, as the schema-first Kùzu does (§4).
	EnforceSchema bool
}

// Reference is the openCypher-reference dialect used by the pristine
// engine that GQS validates against.
var Reference = Dialect{Name: "reference", RelUniqueness: true, ProvidesDBLabels: true}

// Limits bound the resources one query may consume; exceeding them fails
// the query rather than hanging the process.
type Limits struct {
	MaxRows       int // intermediate table size
	MaxMatchSteps int // backtracking steps across one MATCH clause
}

// DefaultLimits are generous enough for the paper's graph sizes while
// keeping worst-case unanchored cartesian patterns bounded (a stand-in
// for the per-query timeouts real campaigns use).
func DefaultLimits() Limits {
	return Limits{MaxRows: 100_000, MaxMatchSteps: 4_000_000}
}

// ErrResourceLimit is returned when a query exceeds the engine limits.
type ErrResourceLimit struct{ What string }

func (e *ErrResourceLimit) Error() string {
	return fmt.Sprintf("query exceeded resource limit: %s", e.What)
}

// ErrCanceled is returned by ExecuteCtx when the context is canceled or
// its deadline expires mid-query. It is distinct from ErrResourceLimit:
// a cancellation says nothing about the query itself, only that the
// caller's wall-clock budget ran out.
var ErrCanceled = errors.New("query canceled")

// Options configure an engine instance.
type Options struct {
	Dialect Dialect
	Limits  Limits
	// DisablePlanner turns off the optimization passes (index-scan
	// selection, traversal-start selection, predicate pushdown); used by
	// the ablation benchmarks.
	DisablePlanner bool
	// ReverseScan makes node scans run in descending ID order: a cheap
	// stand-in for "a different query plan", so two engines produce
	// rows in different orders (one of the differential-tester
	// false-positive sources of §5.4.3).
	ReverseScan bool
	// DisablePlan turns off compiled-plan execution of prepared queries,
	// forcing the tree-walking interpreter: the `-no-plan` differential-
	// debugging escape hatch. Distinct from DisablePlanner, which keeps
	// plan execution but is an optimization-pass ablation (and also
	// forces the interpreter, since compiled plans bake the passes in).
	DisablePlan bool
	// DisableAdjIndex turns off index-backed relationship expansion (and
	// the index-backed mid-chain label check) on snapshot-loaded graphs,
	// forcing the adjacency-list scan path everywhere: the second leg of
	// the scan-vs-index differential and the scan baseline in the
	// large-graph bench. Indexed expansion is behaviour-preserving by
	// construction — same rows, same order, same step accounting.
	DisableAdjIndex bool
	// Seed drives the execution-scoped state behind the nondeterministic
	// functions (rand(), timestamp()): every execution derives its own
	// RNG and logical clock from it, so instances never share mutable
	// function state and runs are reproducible per seed. 0 ⇒ 1.
	Seed int64
}

// Engine is one database instance: a store plus a dialect.
type Engine struct {
	store  *Store
	opts   Options
	params map[string]value.Value
	// planTrace records, for tests and ablation benches, which access
	// paths the planner chose during the most recent query.
	planTrace []string
	// ctx is the context of the in-flight ExecuteCtx call; cancelTick
	// rate-limits how often the hot loops poll it.
	ctx        context.Context
	cancelTick uint
	// exec is the in-flight execution's rand()/timestamp() state; execSeq
	// counts executions so each derives an independent stream.
	exec    *functions.ExecState
	execSeq int64
	// plans is the in-flight PreparedQuery's per-MATCH-clause analysis;
	// nil on the text path, where execMatch analyzes clauses live.
	plans map[*ast.MatchClause]*matchPlan
	// ectx is the scratch eval.Ctx reused across every row of an
	// execution; evalCtx refreshes its fields instead of allocating a new
	// context per evaluated expression. Evaluation never retains the
	// pointer past the call, and one engine never evaluates two
	// expressions at once, so a single scratch slot suffices.
	ectx eval.Ctx
	// pstate is the compiled-plan executor's reusable scratch (frame
	// arena, match frame, uniqueness stack); see plan.go.
	pstate planState
	// adjExpansions counts relationship expansions served by the
	// adjacency index (for tests asserting the index path actually ran).
	adjExpansions int
}

// New creates an engine with the given options. Each unset limit field
// defaults independently, so a caller overriding only MaxMatchSteps
// keeps the default MaxRows (and vice versa).
func New(opts Options) *Engine {
	if opts.Dialect.Name == "" {
		opts.Dialect = Reference
	}
	def := DefaultLimits()
	if opts.Limits.MaxRows == 0 {
		opts.Limits.MaxRows = def.MaxRows
	}
	if opts.Limits.MaxMatchSteps == 0 {
		opts.Limits.MaxMatchSteps = def.MaxMatchSteps
	}
	return &Engine{store: NewStore(), opts: opts}
}

// NewReference creates a reference-dialect engine.
func NewReference() *Engine { return New(Options{}) }

// LoadGraph replaces the database contents with a copy of g.
func (e *Engine) LoadGraph(g *graph.Graph, schema *graph.Schema) {
	e.store.Reset(g, schema)
	e.store.enforceSchema = e.opts.Dialect.EnforceSchema
}

// LoadSnapshot replaces the database contents with a copy-on-write
// overlay over a shared immutable snapshot — O(1) when the store already
// holds an unmodified view of the same snapshot, O(overlay) otherwise
// (see Store.ResetSnapshot).
func (e *Engine) LoadSnapshot(snap *graph.Snapshot, schema *graph.Schema) {
	e.store.ResetSnapshot(snap, schema)
	e.store.enforceSchema = e.opts.Dialect.EnforceSchema
}

// Store exposes the engine's store.
func (e *Engine) Store() *Store { return e.store }

// Dialect returns the engine's dialect.
func (e *Engine) Dialect() Dialect { return e.opts.Dialect }

// SetSeed replaces the seed behind the nondeterministic functions (see
// Options.Seed), for engines constructed before their seed is known —
// e.g. per-shard instances built by a connector factory. The execution
// counter restarts too, so a reused engine re-seeded for a new shard
// derives exactly the rand()/timestamp() streams a freshly constructed
// engine with that seed would.
func (e *Engine) SetSeed(seed int64) {
	e.opts.Seed = seed
	e.execSeq = 0
}

// PlanTrace returns the access paths chosen for the most recent query.
func (e *Engine) PlanTrace() []string { return e.planTrace }

// Execute parses and runs a query.
func (e *Engine) Execute(query string) (*Result, error) {
	return e.ExecuteParams(query, nil)
}

// ExecuteCtx parses and runs a query under a context. The match-expansion
// loop and the row pipeline poll the context and abort with ErrCanceled
// once it is canceled, so a watchdog can bound a query by wall-clock time
// without killing the engine.
func (e *Engine) ExecuteCtx(ctx context.Context, query string) (*Result, error) {
	return e.ExecuteParamsCtx(ctx, query, nil)
}

// ExecuteParams parses and runs a query with bound parameters ($name).
func (e *Engine) ExecuteParams(query string, params map[string]value.Value) (*Result, error) {
	return e.ExecuteParamsCtx(context.Background(), query, params)
}

// ExecuteParamsCtx parses and runs a parameterized query under a context.
func (e *Engine) ExecuteParamsCtx(ctx context.Context, query string, params map[string]value.Value) (*Result, error) {
	q, err := parser.Parse(query)
	if err != nil {
		return nil, err
	}
	return e.executeWithState(ctx, q, params)
}

// executeWithState installs the per-execution state (parameters, context,
// the execution-scoped rand()/timestamp() stream) and runs the query. The
// AST is treated as read-only: it may be a PreparedQuery's tree shared
// with concurrent executions on other engines.
func (e *Engine) executeWithState(ctx context.Context, q *ast.Query, params map[string]value.Value) (*Result, error) {
	e.beginExec(ctx, params)
	defer e.endExec()
	return e.ExecuteAST(q)
}

// beginExec installs the per-execution state. Both execution paths —
// interpreter and compiled plan — go through it, so the execution
// counter and the derived rand()/timestamp() stream advance identically
// regardless of which path runs.
func (e *Engine) beginExec(ctx context.Context, params map[string]value.Value) {
	seed := e.opts.Seed
	if seed == 0 {
		seed = 1
	}
	e.execSeq++
	e.params = params
	e.ctx = ctx
	e.exec = functions.NewExecState(functions.DeriveSeed(seed, e.execSeq))
}

// endExec drops the per-execution state so nothing outlives the call.
func (e *Engine) endExec() { e.params = nil; e.ctx = nil; e.exec = nil }

// SetPlanExecution toggles compiled-plan execution of prepared queries
// (see Options.DisablePlan). Plan execution is behaviour-preserving, so
// this only matters for differential debugging and benchmarks.
func (e *Engine) SetPlanExecution(enabled bool) { e.opts.DisablePlan = !enabled }

// SetAdjIndex toggles index-backed match expansion on snapshot-loaded
// graphs (see Options.DisableAdjIndex). Like plan execution it is
// behaviour-preserving, so flipping it mid-life is always safe.
func (e *Engine) SetAdjIndex(enabled bool) { e.opts.DisableAdjIndex = !enabled }

// checkCancel polls the in-flight context every cancelCheckWindow calls.
// It is cheap enough to sit inside the match-expansion and row loops.
func (e *Engine) checkCancel() error {
	if e.ctx == nil {
		return nil
	}
	e.cancelTick++
	if e.cancelTick&(cancelCheckWindow-1) != 0 {
		return nil
	}
	if e.ctx.Err() != nil {
		return ErrCanceled
	}
	return nil
}

// checkCancelNow polls the in-flight context unconditionally; used at
// clause boundaries where the check is rare relative to the work done.
func (e *Engine) checkCancelNow() error {
	if e.ctx != nil && e.ctx.Err() != nil {
		return ErrCanceled
	}
	return nil
}

// cancelCheckWindow is how many hot-loop iterations pass between context
// polls; must be a power of two.
const cancelCheckWindow = 256

// Explain runs the query and returns the access paths the planner chose,
// one entry per scan decision — a light-weight EXPLAIN.
func (e *Engine) Explain(query string) ([]string, error) {
	if _, err := e.Execute(query); err != nil {
		return nil, err
	}
	return append([]string(nil), e.planTrace...), nil
}

// ExecuteAST runs a parsed query.
func (e *Engine) ExecuteAST(q *ast.Query) (*Result, error) {
	e.planTrace = e.planTrace[:0]
	var out *Result
	for i, part := range q.Parts {
		r, err := e.executeSingle(part)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			out = r
			continue
		}
		if err := sameColumns(out, r); err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, r.Rows...)
		if !q.All[i-1] {
			out = distinctResult(out)
		}
	}
	return out, nil
}

func sameColumns(a, b *Result) error {
	if len(a.Columns) != len(b.Columns) {
		return fmt.Errorf("UNION requires the same column names")
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			return fmt.Errorf("UNION requires the same column names: %s vs %s", a.Columns[i], b.Columns[i])
		}
	}
	return nil
}

func distinctResult(r *Result) *Result {
	seen := map[string]bool{}
	out := &Result{Columns: r.Columns}
	for i, rw := range r.Rows {
		k := r.rowKey(i)
		if !seen[k] {
			seen[k] = true
			out.Rows = append(out.Rows, rw)
		}
	}
	return out
}

func (e *Engine) executeSingle(s *ast.SingleQuery) (*Result, error) {
	rows := []row{{}}
	var result *Result
	for i, c := range s.Clauses {
		if err := e.checkCancelNow(); err != nil {
			return nil, err
		}
		last := i == len(s.Clauses)-1
		var err error
		switch c := c.(type) {
		case *ast.MatchClause:
			rows, err = e.execMatch(c, rows)
		case *ast.UnwindClause:
			rows, err = e.execUnwind(c, rows)
		case *ast.WithClause:
			rows, err = e.execWith(c, rows)
		case *ast.ReturnClause:
			if !last {
				return nil, fmt.Errorf("RETURN must be the final clause")
			}
			result, err = e.execReturn(c, rows)
		case *ast.CallClause:
			rows, result, err = e.execCall(c, rows, last)
		case *ast.CreateClause:
			rows, err = e.execCreate(c, rows)
		case *ast.SetClause:
			err = e.execSet(c.Items, rows)
		case *ast.MergeClause:
			rows, err = e.execMerge(c, rows)
		case *ast.DeleteClause:
			err = e.execDelete(c, rows)
		case *ast.RemoveClause:
			err = e.execRemove(c, rows)
		default:
			err = fmt.Errorf("unsupported clause %T", c)
		}
		if err != nil {
			return nil, err
		}
		if len(rows) > e.opts.Limits.MaxRows {
			return nil, &ErrResourceLimit{What: "intermediate rows"}
		}
	}
	if result == nil {
		// Write-only query: empty result.
		result = &Result{}
	}
	return result, nil
}

func (e *Engine) evalCtx(r row) *eval.Ctx {
	// Field-wise refresh: assigning a struct literal would discard the
	// context's internal scratch buffers along with the row state.
	e.ectx.Graph = e.store.Graph()
	e.ectx.Env = r
	e.ectx.Params = e.params
	e.ectx.Exec = e.exec
	return &e.ectx
}

// evalIn evaluates an expression in a row's environment.
func (e *Engine) evalIn(r row, x ast.Expr) (value.Value, error) {
	return eval.Eval(e.evalCtx(r), x)
}
