package engine

import (
	"gqs/internal/cypher/ast"
	"gqs/internal/eval"
	"gqs/internal/graph"
	"gqs/internal/value"
)

// conjunct is one top-level AND operand of a WHERE predicate, with the
// variables it references. The planner pushes each conjunct down to the
// earliest point of the match where all its variables are bound.
type conjunct struct {
	expr ast.Expr
	vars []string
}

func splitWhere(e ast.Expr) []conjunct {
	if e == nil {
		return nil
	}
	return appendConjuncts(nil, e)
}

// appendConjuncts accumulates the conjuncts into one growing slice
// rather than allocating an intermediate slice per AND node.
func appendConjuncts(dst []conjunct, e ast.Expr) []conjunct {
	if b, ok := e.(*ast.Binary); ok && b.Op == ast.OpAnd {
		return appendConjuncts(appendConjuncts(dst, b.L), b.R)
	}
	return append(dst, conjunct{expr: e, vars: ast.Variables(e)})
}

// splitWhereExprs is the plan compiler's form of splitWhere: the same
// top-level AND split, without the per-conjunct variable lists — the
// compiler schedules conjuncts with ast.VarsSatisfy walks instead.
func splitWhereExprs(dst []ast.Expr, e ast.Expr) []ast.Expr {
	if b, ok := e.(*ast.Binary); ok && b.Op == ast.OpAnd {
		return splitWhereExprs(splitWhereExprs(dst, b.L), b.R)
	}
	return append(dst, e)
}

// execMatch runs a MATCH or OPTIONAL MATCH clause over the input rows.
func (e *Engine) execMatch(c *ast.MatchClause, in []row) ([]row, error) {
	var conj []conjunct
	var pvars []string
	if p := e.plans[c]; p != nil {
		// Prepared path: the clause analysis was done once at Prepare
		// time and is shared read-only across every execution.
		if e.opts.DisablePlanner {
			conj = p.whole
		} else {
			conj = p.conj
		}
		pvars = p.vars
	} else {
		if e.opts.DisablePlanner {
			if c.Where != nil {
				conj = []conjunct{{expr: c.Where, vars: ast.Variables(c.Where)}}
			}
		} else {
			conj = splitWhere(c.Where)
		}
		pvars = patternVars(c.Patterns)
	}
	steps := 0
	// One matcher serves every input row: its backtracking state (the
	// applied flags and the relationship-uniqueness set) is fully unwound
	// by the undo functions whenever run returns, so only env changes per
	// row. envExtra sizes each env clone for the bindings the patterns
	// will add (plus the synthetic anonymous-node key), so the bind hot
	// path never rehashes the map.
	envExtra := len(pvars) + 1
	m := &matcher{
		engine:   e,
		patterns: c.Patterns,
		conj:     conj,
		applied:  make([]bool, len(conj)),
		uniq:     e.opts.Dialect.RelUniqueness,
		used:     map[graph.ID]bool{},
		steps:    &steps,
		maxSteps: e.opts.Limits.MaxMatchSteps,
	}
	// One scratch env serves every input row: emitted rows are cloned by
	// visibleRow and the undo logs fully restore the env between rows, so
	// a clear-and-refill replaces the per-row map allocation.
	env := make(row, envCapOf(in, envExtra))
	var out []row
	for _, r := range in {
		clear(env)
		for k, v := range r {
			env[k] = v
		}
		m.env = env
		matched := false
		err := m.run(func(env row) error {
			matched = true
			out = append(out, visibleRow(env))
			if len(out) > e.opts.Limits.MaxRows {
				return &ErrResourceLimit{What: "match results"}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if c.Optional && !matched {
			nr := cloneRowCap(r, envExtra)
			for _, v := range pvars {
				if _, bound := r[v]; !bound {
					nr[v] = value.Null
				}
			}
			out = append(out, nr)
		}
	}
	return out, nil
}

// envCapOf sizes the scratch env for the widest expected row plus the
// pattern bindings.
func envCapOf(in []row, extra int) int {
	if len(in) == 0 {
		return extra
	}
	return len(in[0]) + extra
}

// patternVars returns the named variables introduced by the patterns, in
// first-occurrence order.
func patternVars(ps []*ast.PatternPart) []string {
	n := 0
	for _, p := range ps {
		n += len(p.Nodes) + len(p.Rels)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	add := func(v string) {
		if v != "" && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, p := range ps {
		for i, n := range p.Nodes {
			add(n.Variable)
			if i < len(p.Rels) {
				add(p.Rels[i].Variable)
			}
		}
	}
	return out
}

// matcher performs the backtracking subgraph search for one input row
// across all pattern parts of one MATCH clause.
type matcher struct {
	engine   *Engine
	patterns []*ast.PatternPart
	conj     []conjunct
	applied  []bool
	uniq     bool
	used     map[graph.ID]bool
	env      row
	steps    *int
	maxSteps int
	emit     func(row) error
	// conjStack and bindStack are the backtracking undo logs: appending
	// on the way down and truncating to a saved mark on the way up keeps
	// the per-bind hot path free of closure and slice allocations. Both
	// are empty between rows (every path fully unwinds them).
	conjStack []int
	bindStack []bindSave
}

// bindSave is one bindStack entry: the previous value of an env key.
type bindSave struct {
	name string
	old  value.Value
	had  bool
}

// errStop distinguishes deliberate early termination (unused for now) from
// hard failures; kept for clarity of control flow.

func (m *matcher) run(emit func(row) error) error {
	m.emit = emit
	// Entry-level conjuncts: variables already bound by the input row.
	mark, ok, err := m.applyReadyConjuncts()
	defer m.undoConjuncts(mark)
	if err != nil || !ok {
		return err
	}
	return m.matchPart(0)
}

func (m *matcher) step() error {
	*m.steps++
	if *m.steps > m.maxSteps {
		return &ErrResourceLimit{What: "match steps"}
	}
	return m.engine.checkCancel()
}

// applyReadyConjuncts evaluates every not-yet-applied conjunct whose
// variables are all bound, recording the applied indices on the shared
// undo log. It returns the log mark to hand back to undoConjuncts and
// whether every evaluated conjunct held.
func (m *matcher) applyReadyConjuncts() (int, bool, error) {
	mark := len(m.conjStack)
	for i, c := range m.conj {
		if m.applied[i] {
			continue
		}
		ready := true
		for _, v := range c.vars {
			if _, ok := m.env[v]; !ok {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		m.applied[i] = true
		m.conjStack = append(m.conjStack, i)
		t, err := eval.EvalPredicate(m.engine.evalCtx(m.env), c.expr)
		if err != nil {
			return mark, false, err
		}
		if t != value.TriTrue {
			return mark, false, nil
		}
	}
	return mark, true, nil
}

// undoConjuncts clears the applied flags recorded since mark.
func (m *matcher) undoConjuncts(mark int) {
	for _, i := range m.conjStack[mark:] {
		m.applied[i] = false
	}
	m.conjStack = m.conjStack[:mark]
}

func (m *matcher) matchPart(idx int) error {
	if idx == len(m.patterns) {
		// All parts bound: evaluate any conjunct not yet applied (one
		// whose free-variable analysis was conservative). A reference to
		// a variable that is genuinely not in scope surfaces here as the
		// unknown-variable error a real GDB raises at compile time.
		for i, c := range m.conj {
			if !m.applied[i] {
				tr, err := eval.EvalPredicate(m.engine.evalCtx(m.env), c.expr)
				if err != nil {
					return err
				}
				if tr != value.TriTrue {
					return nil
				}
			}
		}
		return m.emit(m.env)
	}
	part := m.orient(m.patterns[idx])
	return m.matchNode(part, 0, func() error { return m.matchPart(idx + 1) })
}

// orient lets the planner choose the traversal direction of a chain: if
// the rightmost pattern node is already bound (or has a cheaper access
// path) and the leftmost is not, the chain is reversed so that matching
// starts from the cheap side. This mirrors the traversal-start selection
// the paper's pattern mutation is designed to exercise (§3.4).
func (m *matcher) orient(p *ast.PatternPart) *ast.PatternPart {
	if m.engine.opts.DisablePlanner || len(p.Nodes) < 2 {
		return p
	}
	first, last := p.Nodes[0], p.Nodes[len(p.Nodes)-1]
	cf, cl := m.nodeCost(first), m.nodeCost(last)
	if cl < cf {
		m.engine.planTrace = append(m.engine.planTrace, "ReverseTraversal")
		return reverseChain(p)
	}
	return p
}

// nodeCost estimates the candidate-set size for binding a pattern node.
func (m *matcher) nodeCost(n *ast.NodePattern) int {
	if n.Variable != "" {
		if _, ok := m.env[n.Variable]; ok {
			return 0
		}
	}
	st := m.engine.store
	best := st.Graph().NumNodes()
	for _, l := range n.Labels {
		if c := st.LabelCount(l); c < best {
			best = c
		}
	}
	return best
}

func reverseChain(p *ast.PatternPart) *ast.PatternPart {
	n := len(p.Nodes)
	out := &ast.PatternPart{Variable: p.Variable, Nodes: make([]*ast.NodePattern, n), Rels: make([]*ast.RelPattern, len(p.Rels))}
	for i, node := range p.Nodes {
		out.Nodes[n-1-i] = node
	}
	for i, r := range p.Rels {
		flipped := *r
		switch r.Direction {
		case ast.DirLeft:
			flipped.Direction = ast.DirRight
		case ast.DirRight:
			flipped.Direction = ast.DirLeft
		}
		out.Rels[len(p.Rels)-1-i] = &flipped
	}
	return out
}

// matchNode binds pattern node i of the chain, then continues with the
// following relationship (or the continuation when the chain ends).
func (m *matcher) matchNode(p *ast.PatternPart, i int, cont func() error) error {
	np := p.Nodes[i]
	bindAndGo := func(id graph.ID) error {
		if err := m.step(); err != nil {
			return err
		}
		ok, err := m.checkNode(np, id)
		if err != nil || !ok {
			return err
		}
		bmark := m.bindPush(nodeKey(np), value.Node(id))
		defer m.undoBinds(bmark)
		cmark, okc, err := m.applyReadyConjuncts()
		defer m.undoConjuncts(cmark)
		if err != nil || !okc {
			return err
		}
		if i == len(p.Nodes)-1 {
			return cont()
		}
		return m.matchRel(p, i, cont)
	}
	// Already bound?
	if np.Variable != "" {
		if v, ok := m.env[np.Variable]; ok {
			if v.Kind() != value.KindNode {
				return nil // bound to a non-node: no match
			}
			return bindAndGo(v.EntityID())
		}
	}
	for _, id := range m.nodeCandidates(np) {
		if err := bindAndGo(id); err != nil {
			return err
		}
	}
	return nil
}

// nodeCandidates returns the access path for an unbound pattern node:
// an index scan when a label+property equality is available, a label scan
// when a label is present, or a full scan.
func (m *matcher) nodeCandidates(np *ast.NodePattern) []graph.ID {
	st := m.engine.store
	if !m.engine.opts.DisablePlanner {
		// Index scan: label + property map entry evaluable right now.
		if np.Props != nil {
			for _, l := range np.Labels {
				for i, key := range np.Props.Keys {
					if !st.HasIndex(l, key) {
						continue
					}
					v, err := m.engine.evalIn(m.env, np.Props.Vals[i])
					if err != nil || v.IsNull() {
						continue
					}
					ids, ok := st.NodesByIndex(l, key, v)
					if ok {
						m.engine.planTrace = append(m.engine.planTrace, "NodeIndexScan:"+l+"."+key)
						return ids
					}
				}
			}
		}
		// Label scan: the most selective label.
		if len(np.Labels) > 0 {
			best := st.NodesByLabel(np.Labels[0])
			for _, l := range np.Labels[1:] {
				if ids := st.NodesByLabel(l); len(ids) < len(best) {
					best = ids
				}
			}
			m.engine.planTrace = append(m.engine.planTrace, "NodeByLabelScan")
			return m.maybeReverse(best)
		}
	}
	m.engine.planTrace = append(m.engine.planTrace, "AllNodesScan")
	return m.maybeReverse(st.Graph().NodeIDs())
}

func (m *matcher) maybeReverse(ids []graph.ID) []graph.ID {
	if !m.engine.opts.ReverseScan {
		return ids
	}
	out := make([]graph.ID, len(ids))
	for i, id := range ids {
		out[len(ids)-1-i] = id
	}
	return out
}

// checkNode verifies labels and the inline property map.
func (m *matcher) checkNode(np *ast.NodePattern, id graph.ID) (bool, error) {
	n := m.engine.store.Graph().Node(id)
	if n == nil {
		return false, nil
	}
	for _, l := range np.Labels {
		if !n.HasLabel(l) {
			return false, nil
		}
	}
	return m.checkProps(np.Props, n.Props)
}

func (m *matcher) checkProps(pm *ast.MapLit, props map[string]value.Value) (bool, error) {
	if pm == nil {
		return true, nil
	}
	for i, key := range pm.Keys {
		want, err := m.engine.evalIn(m.env, pm.Vals[i])
		if err != nil {
			return false, err
		}
		got, ok := props[key]
		if !ok || value.Equal(got, want) != value.TriTrue {
			return false, nil
		}
	}
	return true, nil
}

// matchRel expands relationship i of the chain from the already-bound
// node i, binding the relationship and recursing into node i+1.
func (m *matcher) matchRel(p *ast.PatternPart, i int, cont func() error) error {
	rp := p.Rels[i]
	// The source node was bound (under a synthetic key when anonymous)
	// by matchNode or matchNodeAt just before this call.
	from := m.env[nodeKey(p.Nodes[i])].EntityID()

	tryRel := func(relID graph.ID, other graph.ID) error {
		if err := m.step(); err != nil {
			return err
		}
		r := m.engine.store.Graph().Rel(relID)
		if !typeMatches(rp.Types, r.Type) {
			return nil
		}
		ok, err := m.checkProps(rp.Props, r.Props)
		if err != nil || !ok {
			return err
		}
		boundBefore := false
		if rp.Variable != "" {
			if v, bound := m.env[rp.Variable]; bound {
				if v.Kind() != value.KindRel || v.EntityID() != relID {
					return nil
				}
				boundBefore = true
			}
		}
		if !boundBefore {
			if m.uniq && m.used[relID] {
				return nil
			}
			m.used[relID] = true
			defer delete(m.used, relID)
		}
		bmark := m.bindPush(rp.Variable, value.Rel(relID))
		defer m.undoBinds(bmark)
		cmark, okc, err := m.applyReadyConjuncts()
		defer m.undoConjuncts(cmark)
		if err != nil || !okc {
			return err
		}
		// Continue with the target node constrained to `other`.
		return m.matchNodeAt(p, i+1, other, cont)
	}

	g := m.engine.store.Graph()
	switch rp.Direction {
	case ast.DirRight:
		for _, rid := range g.Out(from) {
			if err := tryRel(rid, g.Rel(rid).End); err != nil {
				return err
			}
		}
	case ast.DirLeft:
		for _, rid := range g.In(from) {
			if err := tryRel(rid, g.Rel(rid).Start); err != nil {
				return err
			}
		}
	default: // undirected
		for _, rid := range g.Out(from) {
			if err := tryRel(rid, g.Rel(rid).End); err != nil {
				return err
			}
		}
		for _, rid := range g.In(from) {
			r := g.Rel(rid)
			if r.Start == r.End {
				continue // self-loop already visited via Out
			}
			if err := tryRel(rid, r.Start); err != nil {
				return err
			}
		}
	}
	return nil
}

// matchNodeAt binds pattern node i of the chain to a specific node ID
// (the far endpoint of the relationship just traversed).
func (m *matcher) matchNodeAt(p *ast.PatternPart, i int, id graph.ID, cont func() error) error {
	np := p.Nodes[i]
	if np.Variable != "" {
		if v, bound := m.env[np.Variable]; bound {
			if v.Kind() != value.KindNode || v.EntityID() != id {
				return nil
			}
		}
	}
	ok, err := m.checkNode(np, id)
	if err != nil || !ok {
		return err
	}
	bmark := m.bindPush(nodeKey(np), value.Node(id))
	defer m.undoBinds(bmark)
	cmark, okc, err := m.applyReadyConjuncts()
	defer m.undoConjuncts(cmark)
	if err != nil || !okc {
		return err
	}
	if i == len(p.Nodes)-1 {
		return cont()
	}
	return m.matchRel(p, i, cont)
}

// bindPush sets a variable, logging the previous binding for undoBinds,
// and returns the log mark. Anonymous elements (name "") are not bound.
func (m *matcher) bindPush(name string, v value.Value) int {
	mark := len(m.bindStack)
	if name == "" {
		return mark
	}
	old, had := m.env[name]
	m.bindStack = append(m.bindStack, bindSave{name: name, old: old, had: had})
	m.env[name] = v
	return mark
}

// undoBinds restores the env bindings logged since mark, newest first.
func (m *matcher) undoBinds(mark int) {
	for i := len(m.bindStack) - 1; i >= mark; i-- {
		b := m.bindStack[i]
		if b.had {
			m.env[b.name] = b.old
		} else {
			delete(m.env, b.name)
		}
	}
	m.bindStack = m.bindStack[:mark]
}

// anonNodeKey is the synthetic env binding for anonymous chain nodes so
// that relationship expansion can find its source endpoint. It contains a
// NUL byte, which no parsed variable can contain, and is rebound at each
// chain position (reads happen before deeper rebinding, undo restores it).
const anonNodeKey = "\x00anon"

func nodeKey(np *ast.NodePattern) string {
	if np.Variable != "" {
		return np.Variable
	}
	return anonNodeKey
}

// visibleRow clones env without synthetic bindings.
func visibleRow(env row) row {
	out := make(row, len(env))
	for k, v := range env {
		if len(k) > 0 && k[0] == '\x00' {
			continue
		}
		out[k] = v
	}
	return out
}

func typeMatches(types []string, t string) bool {
	if len(types) == 0 {
		return true
	}
	for _, x := range types {
		if x == t {
			return true
		}
	}
	return false
}
