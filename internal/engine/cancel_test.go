package engine

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"gqs/internal/graph"
)

// TestLimitsDefaultIndependently is the regression test for the
// partial-limits clobbering bug: Options{Limits: Limits{MaxMatchSteps: n}}
// with MaxRows == 0 must keep the caller's MaxMatchSteps and default only
// MaxRows (and vice versa).
func TestLimitsDefaultIndependently(t *testing.T) {
	def := DefaultLimits()

	e := New(Options{Limits: Limits{MaxMatchSteps: 123}})
	if e.opts.Limits.MaxMatchSteps != 123 {
		t.Errorf("MaxMatchSteps clobbered: got %d, want 123", e.opts.Limits.MaxMatchSteps)
	}
	if e.opts.Limits.MaxRows != def.MaxRows {
		t.Errorf("MaxRows not defaulted: got %d, want %d", e.opts.Limits.MaxRows, def.MaxRows)
	}

	e = New(Options{Limits: Limits{MaxRows: 77}})
	if e.opts.Limits.MaxRows != 77 {
		t.Errorf("MaxRows clobbered: got %d, want 77", e.opts.Limits.MaxRows)
	}
	if e.opts.Limits.MaxMatchSteps != def.MaxMatchSteps {
		t.Errorf("MaxMatchSteps not defaulted: got %d, want %d", e.opts.Limits.MaxMatchSteps, def.MaxMatchSteps)
	}

	e = New(Options{})
	if e.opts.Limits != def {
		t.Errorf("zero limits must fully default: got %+v", e.opts.Limits)
	}
}

// denseEngine loads a graph big enough that an unanchored multi-pattern
// cartesian MATCH takes many millions of match steps.
func denseEngine(t *testing.T) *Engine {
	t.Helper()
	r := rand.New(rand.NewSource(5))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 40, MaxRels: 300})
	e := New(Options{Limits: Limits{MaxMatchSteps: 1 << 40, MaxRows: 1 << 40}})
	e.LoadGraph(g, schema)
	return e
}

const cartesianQuery = `MATCH (a)-[]-(b), (c)-[]-(d), (e)-[]-(f), (g)-[]-(h) RETURN count(*) AS n`

func TestExecuteCtxCanceled(t *testing.T) {
	e := denseEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the first poll must abort the query
	_, err := e.ExecuteCtx(ctx, cartesianQuery)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestExecuteCtxDeadline(t *testing.T) {
	e := denseEngine(t)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.ExecuteCtx(ctx, cartesianQuery)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v (after %v), want ErrCanceled", err, elapsed)
	}
	// The poll window is 256 steps, so the engine must notice the deadline
	// promptly — generous bound to stay robust under -race.
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, cooperative checks too sparse", elapsed)
	}
}

// TestExecuteCtxBackground verifies that a background context changes
// nothing: the query completes and the engine clears its context field.
func TestExecuteCtxBackground(t *testing.T) {
	e := New(Options{})
	res, err := e.ExecuteCtx(context.Background(), `RETURN 1 AS x`)
	if err != nil || res.Len() != 1 {
		t.Fatalf("ExecuteCtx: %v %v", res, err)
	}
	if e.ctx != nil {
		t.Error("engine context not cleared after execution")
	}
	// A plain Execute after a canceled ExecuteCtx must run normally.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ExecuteCtx(ctx, `UNWIND range(1, 2000) AS x RETURN count(x) AS n`); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled UNWIND: %v", err)
	}
	res, err = e.Execute(`UNWIND range(1, 2000) AS x RETURN count(x) AS n`)
	if err != nil || res.Rows[0][0].AsInt() != 2000 {
		t.Fatalf("Execute after cancel: %v %v", res, err)
	}
}
