package engine

import (
	"context"
	"testing"

	"gqs/internal/graph"
)

func TestExecutePreparedMatchesExecute(t *testing.T) {
	load := func(e *Engine) {
		if _, err := e.Execute(`CREATE (a:P {name: 'a', n: 1}), (b:P {name: 'b', n: 2}), (a)-[:R]->(b)`); err != nil {
			t.Fatal(err)
		}
	}
	queries := []string{
		`MATCH (x:P) RETURN x.name ORDER BY x.name`,
		`MATCH (x:P)-[r:R]->(y:P) RETURN x.n + y.n AS s`,
		`MATCH (x:P) RETURN count(x) AS c`,
		`MATCH (x:P) WHERE x.n > 1 RETURN x.name UNION MATCH (y:P) RETURN y.name`,
	}
	for _, q := range queries {
		a, b := NewReference(), NewReference()
		load(a)
		load(b)
		pq, err := Prepare(q)
		if err != nil {
			t.Fatalf("prepare %q: %v", q, err)
		}
		want, werr := a.Execute(q)
		got, gerr := b.ExecutePrepared(context.Background(), pq)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("%q: text err=%v prepared err=%v", q, werr, gerr)
		}
		if werr == nil && !want.Equal(got) {
			t.Fatalf("%q: text %v != prepared %v", q, want, got)
		}
	}
}

func TestPrepareParseError(t *testing.T) {
	if _, err := Prepare("MATCH ("); err == nil {
		t.Fatal("unparsable text must error")
	}
}

// TestSetSeedResetsExecutionCounter pins the connector-reuse contract: a
// re-seeded engine must replay the rand()/timestamp() streams of a
// freshly constructed engine with that seed, which requires the
// execution counter to restart alongside the seed.
func TestSetSeedResetsExecutionCounter(t *testing.T) {
	randStream := func(e *Engine, n int) []float64 {
		var out []float64
		for i := 0; i < n; i++ {
			res, err := e.Execute("RETURN rand() AS r")
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res.Rows[0][0].AsFloat())
		}
		return out
	}
	fresh := New(Options{Seed: 42})
	want := randStream(fresh, 5)

	reused := New(Options{Seed: 7})
	randStream(reused, 3) // advance the execution counter
	reused.SetSeed(42)
	got := randStream(reused, 5)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("execution %d: fresh engine drew %v, re-seeded engine drew %v", i, want[i], got[i])
		}
	}
}

// TestStoreResetSkipsRedundantClone pins the dirty-flag optimization: a
// Reset with the same source graph and no intervening writes keeps the
// existing copy; any write through the store forces the next Reset to
// clone again and restores the original contents.
func TestStoreResetSkipsRedundantClone(t *testing.T) {
	g := graph.New()
	n := g.NewNode("L")
	_ = n
	st := NewStore()
	st.Reset(g, nil)
	first := st.Graph()
	if first == g {
		t.Fatal("store must own a copy, not the source graph")
	}

	st.Reset(g, nil)
	if st.Graph() != first {
		t.Fatal("clean Reset with the same source must skip the clone")
	}

	st.CreateNode([]string{"L"}, nil)
	if st.Graph().NumNodes() != 2 {
		t.Fatalf("write lost: %d nodes", st.Graph().NumNodes())
	}
	st.Reset(g, nil)
	if st.Graph() == first {
		t.Fatal("Reset after a write must clone afresh")
	}
	if st.Graph().NumNodes() != 1 {
		t.Fatalf("Reset must restore the source contents, got %d nodes", st.Graph().NumNodes())
	}

	other := graph.New()
	st.Reset(other, nil)
	if st.Graph().NumNodes() != 0 {
		t.Fatal("Reset with a different source must load it")
	}
}
