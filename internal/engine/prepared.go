package engine

import (
	"context"
	"hash/fnv"
	"sync"

	"gqs/internal/cypher/ast"
	"gqs/internal/cypher/parser"
	"gqs/internal/metrics"
)

// PreparedQuery is a query parsed and analyzed exactly once, ready to be
// executed any number of times — sequentially or concurrently — by any
// number of targets. It is the unit of the prepared-execution path that
// removes the per-target parse tax: the runner prepares each synthesized
// query once, and every connector executing it reuses the same AST and
// the same feature vector instead of re-lexing, re-parsing, and
// re-analyzing the text.
//
// Invariants:
//
//   - AST is immutable after Prepare returns. Engine execution never
//     writes to it (planner rewrites such as traversal reversal and
//     aggregate substitution copy the nodes they change), so one
//     PreparedQuery may be in flight on several connectors at once.
//   - Features is the analysis of exactly this AST, with Hash computed
//     from Text — byte-for-byte what metrics.Analyze(Text) returns, so
//     fault triggers keyed on the feature vector see identical features
//     on every target.
//   - All per-execution state (variable environments, the rand()/
//     timestamp() stream of functions.ExecState, cancellation) lives in
//     the executing engine, never in the PreparedQuery.
type PreparedQuery struct {
	// Text is the original query text; compatibility paths and reports
	// that need a string form use it without re-rendering the AST.
	Text string
	// AST is the parsed query. Treat as read-only.
	AST *ast.Query
	// Features is the precomputed complexity/feature analysis driving
	// fault triggers and the Table 5 metrics. Treat as read-only.
	Features *metrics.Features
	// plans carries the per-MATCH-clause analysis (WHERE conjuncts and
	// pattern variables) the interpreter path needs, built lazily on the
	// first interpreter execution: when the query compiled to a physical
	// plan, the interpreter only ever runs under -no-plan, so paying the
	// analysis at Prepare time would tax the common path for nothing.
	// plansOnce makes the lazy build safe under concurrent executions;
	// after it fires the map is immutable and shared like the AST.
	plans     map[*ast.MatchClause]*matchPlan
	plansOnce sync.Once
	// plan is the compiled physical plan (slot frames, pushed-down
	// conjuncts, compiled expressions; see plan.go), or nil when the
	// query uses a construct the plan executor does not cover and
	// execution stays on the interpreter. Immutable and shared exactly
	// like the AST: everything dialect- or store-dependent is resolved by
	// the executing engine at run time.
	plan *queryPlan
}

// Planned reports whether the query compiled to a physical plan (false
// means every execution uses the interpreter fallback).
func (pq *PreparedQuery) Planned() bool { return pq.plan != nil }

// matchPlan is the execution-independent analysis of one MATCH clause:
// everything execMatch used to recompute per execution that is in fact a
// pure function of the AST. conj is the planner-path conjunct split,
// whole the single-conjunct form used when the planner is disabled, and
// vars the variables the patterns introduce. All three are read-only
// once built.
type matchPlan struct {
	conj  []conjunct
	whole []conjunct
	vars  []string
}

// planMatches analyzes every MATCH clause of the query once. Only
// top-level clauses are planned; execMatch falls back to live analysis
// for any clause not in the map.
func planMatches(q *ast.Query) map[*ast.MatchClause]*matchPlan {
	plans := map[*ast.MatchClause]*matchPlan{}
	for _, part := range q.Parts {
		for _, c := range part.Clauses {
			m, ok := c.(*ast.MatchClause)
			if !ok {
				continue
			}
			p := &matchPlan{conj: splitWhere(m.Where), vars: patternVars(m.Patterns)}
			if m.Where != nil {
				p.whole = []conjunct{{expr: m.Where, vars: ast.Variables(m.Where)}}
			}
			plans[m] = p
		}
	}
	return plans
}

// Prepare parses and analyzes a query once. This is the single parse of
// the prepared execution path: the returned value carries everything a
// connector needs, so no downstream layer touches the parser again.
func Prepare(text string) (*PreparedQuery, error) {
	q, err := parser.Parse(text)
	if err != nil {
		return nil, err
	}
	return PrepareAST(q, text), nil
}

// PrepareAST prepares an already-parsed (or synthesizer-built) query,
// skipping the parse entirely: the synthesizer prints text from the AST
// it constructs, so re-parsing that text would only rebuild the same
// tree. text must be the rendering of q (it keys the feature hash and
// compatibility paths). The AST is treated as immutable from here on,
// exactly as if the parser had returned it.
func PrepareAST(q *ast.Query, text string) *PreparedQuery {
	f := metrics.AnalyzeAST(q)
	h := fnv.New64a()
	h.Write([]byte(text))
	f.Hash = h.Sum64()
	return &PreparedQuery{Text: text, AST: q, Features: f, plan: compileQueryPlan(q)}
}

// ExecutePrepared runs a prepared query, sharing its AST with any other
// concurrent executions. Equivalent to ExecuteCtx(ctx, pq.Text) minus the
// parse. Queries that compiled to a physical plan execute it directly
// (identical behaviour, no per-row map allocation or AST walking) unless
// the engine opts out via DisablePlan or DisablePlanner.
func (e *Engine) ExecutePrepared(ctx context.Context, pq *PreparedQuery) (*Result, error) {
	if pq.plan != nil && !e.opts.DisablePlan && !e.opts.DisablePlanner {
		e.beginExec(ctx, nil)
		defer e.endExec()
		return e.runPlan(pq.plan)
	}
	pq.plansOnce.Do(func() { pq.plans = planMatches(pq.AST) })
	e.plans = pq.plans
	defer func() { e.plans = nil }()
	return e.ExecuteASTCtx(ctx, pq.AST)
}

// ExecuteASTCtx runs an already-parsed query under a context. The AST is
// never mutated — it may be shared with concurrent executions on other
// engine instances — while all per-execution state (parameters, the
// rand()/timestamp() stream, cancellation) is engine-local as usual.
func (e *Engine) ExecuteASTCtx(ctx context.Context, q *ast.Query) (*Result, error) {
	return e.executeWithState(ctx, q, nil)
}
