package engine

import (
	"context"
	"testing"

	"gqs/internal/value"
)

// TestPlanCoverage pins which constructs compile to a physical plan and
// which deliberately fall back to the interpreter. The fallback set is a
// behavioral contract: an unsupported construct must take the
// interpreter path so its semantics (including its errors) are trivially
// identical.
func TestPlanCoverage(t *testing.T) {
	planned := []string{
		"MATCH (n) RETURN n",
		"MATCH (a:A)-[r:T]->(b) WHERE a.n > 1 RETURN a, b ORDER BY b.n LIMIT 3",
		"OPTIONAL MATCH (a)-[:T]->(b) RETURN a, b",
		"UNWIND [1,2] AS x RETURN x",
		"MATCH (n) WITH n.n AS k, count(*) AS c RETURN k, c",
		"MATCH (n) RETURN DISTINCT n.n SKIP 1",
		"CALL db.labels()",
		"CALL db.labels() YIELD label RETURN label",
		"CALL db.propertyKeys()",
		"MATCH (n) RETURN count(n, n)",          // wrong arity errors at runtime, still planned
		"MATCH (n) RETURN n.name LIMIT -1",      // negative LIMIT errors at runtime, still planned
	}
	fallback := []string{
		"MATCH (n) RETURN *",                // star projection
		"CREATE (x:Tmp) RETURN x",           // writes
		"MATCH (n) SET n.k = 1",             // writes
		"CALL db.indexes()",                 // procedure outside the compiled set
		"MATCH (n) WITH n.n RETURN 1 AS one", // unaliased WITH expression
		"MATCH (n) RETURN n.n AS a, n.m AS a", // duplicate columns
	}
	for _, q := range planned {
		pq, err := Prepare(q)
		if err != nil {
			t.Fatalf("prepare %q: %v", q, err)
		}
		if !pq.Planned() {
			t.Errorf("%q: expected a compiled plan", q)
		}
	}
	for _, q := range fallback {
		pq, err := Prepare(q)
		if err != nil {
			t.Fatalf("prepare %q: %v", q, err)
		}
		if pq.Planned() {
			t.Errorf("%q: expected interpreter fallback", q)
		}
	}
}

// TestPlanSharedAcrossEngines executes one PreparedQuery concurrently on
// several engine instances — the campaign's sharing pattern — under the
// race detector's eye.
func TestPlanSharedAcrossEngines(t *testing.T) {
	pq, err := Prepare(`MATCH (a:A) WHERE a.n >= 1 RETURN a.n AS n ORDER BY n`)
	if err != nil {
		t.Fatal(err)
	}
	if !pq.Planned() {
		t.Fatal("expected a compiled plan")
	}
	const engines = 4
	done := make(chan error, engines)
	for i := 0; i < engines; i++ {
		go func() {
			e := NewReference()
			if _, err := e.Execute(`CREATE (:A {n: 1}), (:A {n: 2})`); err != nil {
				done <- err
				return
			}
			for rep := 0; rep < 50; rep++ {
				res, err := e.ExecutePrepared(context.Background(), pq)
				if err != nil {
					done <- err
					return
				}
				if res.Len() != 2 {
					t.Errorf("got %d rows", res.Len())
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < engines; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestFrameArena(t *testing.T) {
	var a frameArena

	// Consecutive allocations must not alias.
	f1 := a.alloc(3)
	f2 := a.alloc(3)
	f1[0], f2[0] = value.Int(1), value.Int(2)
	if f1[0].AsInt() != 1 || f2[0].AsInt() != 2 {
		t.Fatalf("frames alias: %v %v", f1, f2)
	}
	if len(f1) != 3 || len(f2) != 3 {
		t.Fatalf("frame widths: %d %d", len(f1), len(f2))
	}

	// A frame wider than the chunk size gets its own backing.
	wide := a.alloc(5000)
	if len(wide) != 5000 {
		t.Fatalf("wide frame len %d", len(wide))
	}

	// After reset, memory is reused from the front.
	a.reset()
	f3 := a.alloc(3)
	f3[0] = value.Int(3)
	if f1[0].AsInt() != 3 {
		t.Errorf("reset must rewind the arena onto the same backing array")
	}

	// Reset caps retained chunks so a huge query doesn't pin its peak
	// footprint forever.
	for i := 0; i < arenaMaxRetain*3*4096/8; i++ {
		a.alloc(8)
	}
	if len(a.chunks) <= arenaMaxRetain {
		t.Fatalf("test did not grow the arena: %d chunks", len(a.chunks))
	}
	a.reset()
	if len(a.chunks) > arenaMaxRetain {
		t.Errorf("reset retained %d chunks, cap %d", len(a.chunks), arenaMaxRetain)
	}
}

// TestPlanToggle pins the -no-plan escape hatch: the same engine must
// switch between plan execution and the interpreter without behavioral
// difference.
func TestPlanToggle(t *testing.T) {
	e := NewReference()
	if _, err := e.Execute(`CREATE (:A {n: 1})-[:T]->(:B {n: 2})`); err != nil {
		t.Fatal(err)
	}
	pq, err := Prepare(`MATCH (a)-[:T]->(b) RETURN a.n, b.n`)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	withPlan, err := e.ExecutePrepared(ctx, pq)
	if err != nil {
		t.Fatal(err)
	}
	e.SetPlanExecution(false)
	without, err := e.ExecutePrepared(ctx, pq)
	if err != nil {
		t.Fatal(err)
	}
	e.SetPlanExecution(true)
	if !withPlan.Equal(without) {
		t.Errorf("plan toggle changed results: %v vs %v", withPlan.Rows, without.Rows)
	}
}
