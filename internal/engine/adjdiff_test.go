package engine

// The scan-vs-index differential: every query of the corpus runs twice
// per dialect on snapshot-loaded engines — once with index-backed
// expansion, once forced onto the adjacency-list scan — and the results
// must be byte-equal: same rows in the same order, same error string,
// same match-step accounting (pinned by the step-limit sweep). This is
// the adjacency-index analogue of the plandiff gate: the index may
// choose any access path, but it must not be observable.

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"gqs/internal/graph"
)

func adjDiffOptions() []Options {
	return []Options{
		{Dialect: Reference},
		{Dialect: Dialect{Name: "neo4j", RelUniqueness: true, ProvidesDBLabels: true}},
		{Dialect: Dialect{Name: "memgraph", RelUniqueness: true}, ReverseScan: true},
		{Dialect: Dialect{Name: "kuzu", EnforceSchema: true}},
		{Dialect: Dialect{Name: "falkordb", ProvidesDBLabels: true}},
	}
}

// adjDiffReads exercises every indexed-expansion shape: each direction,
// multi-type (including a repeated alternative), inline relationship
// properties, mid-chain label checks, bound-relationship reuse,
// self-loop binding, and the untyped scan fallback.
var adjDiffReads = []string{
	"MATCH (a)-[r:T0]->(b) RETURN a.id, r.id, b.id",
	"MATCH (a)<-[r:T1]-(b) RETURN a.id, r.id, b.id",
	"MATCH (a)-[r:T0]-(b) RETURN a.id, r.id, b.id",
	"MATCH (a)-[r:T2]-(a) RETURN r.id",
	"MATCH (a)-[r:T0|T1]->(b) RETURN r.id",
	"MATCH (a)-[r:T1|T1]-(b) RETURN r.id",
	"MATCH (a)-[r:T0|T2|T4]-(b) RETURN a.id, r.id",
	"MATCH (a:L0)-[:T0]->(b:L1) RETURN a.id, b.id",
	"MATCH (a:L0)-[:T0]->(b:L1)-[:T1]->(c) RETURN a.id, b.id, c.id",
	"MATCH (a)-[r1:T0]->(b)-[r2:T0]->(c) RETURN a.id, c.id",
	"MATCH (a)-[r1:T1]-(b)-[r2:T1]-(c) RETURN r1.id, r2.id",
	"MATCH (a)-[r:T1]->(b) WHERE a.id < b.id RETURN r.id",
	"MATCH (a)-[r:T0 {k0: a.k0}]->(b) RETURN r.id",
	"MATCH (a {k0: 1})-[r:T0]->(b) RETURN r.id",
	"MATCH (a)-[r]->(b) RETURN count(*)",
	"MATCH (a:L2)-[r:T3]-(b:L2) RETURN a.id, b.id ORDER BY a.id, b.id",
	"MATCH (a)-[:T0]->(b), (b)-[:T1]->(c) RETURN a.id, c.id",
	"OPTIONAL MATCH (a:L0)-[r:T9]->(b) RETURN a.id, r",
}

// adjDiffWrites turns both stores into diverged COW overlays —
// tombstoned rels, detach-deleted nodes, appended rels, mutated rel
// properties, label churn — before the read corpus runs again, so the
// differential covers the overlay-merge fallback paths.
var adjDiffWrites = []string{
	"MATCH ()-[r:T2]->() DELETE r",
	"MATCH (n:L3) DETACH DELETE n",
	"MATCH (a:L0) MATCH (b:L1) WHERE a.id < b.id CREATE (a)-[:T0]->(b)",
	"MATCH ()-[r:T1]->() SET r.k1 = 5",
	"MATCH (n:L1) SET n:L5",
	"MATCH (n:L2) REMOVE n:L2",
}

func adjDiffGraph(t *testing.T, seed int64) (*graph.Snapshot, *graph.Schema) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 24, MaxRels: 140})
	return g.Seal(), schema
}

// runAdjDiff executes one query on both engines and compares outcomes.
func runAdjDiff(t *testing.T, label, text string, indexed, scan *Engine) {
	t.Helper()
	run := func(e *Engine) (*Result, string) {
		pq, err := Prepare(text)
		if err != nil {
			return nil, err.Error()
		}
		res, err := e.ExecutePrepared(context.Background(), pq)
		if err != nil {
			return nil, err.Error()
		}
		return res, ""
	}
	ri, ei := run(indexed)
	rs, es := run(scan)
	if ei != es {
		t.Fatalf("%s: %q: error mismatch: indexed=%q scan=%q", label, text, ei, es)
	}
	if ei != "" {
		return
	}
	if !reflect.DeepEqual(ri.Columns, rs.Columns) || !reflect.DeepEqual(ri.Rows, rs.Rows) {
		t.Fatalf("%s: %q: results diverge:\nindexed: %v %v\nscan:    %v %v",
			label, text, ri.Columns, ri.Rows, rs.Columns, rs.Rows)
	}
}

// TestAdjIndexScanDifferential is the main equivalence gate: randomized
// sealed graphs, five dialects, reads on the clean snapshot, then reads
// again after identical overlay mutations on both engines.
func TestAdjIndexScanDifferential(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		snap, schema := adjDiffGraph(t, seed)
		for _, opts := range adjDiffOptions() {
			scanOpts := opts
			scanOpts.DisableAdjIndex = true
			indexed, scan := New(opts), New(scanOpts)
			indexed.LoadSnapshot(snap, schema)
			scan.LoadSnapshot(snap, schema)
			label := fmt.Sprintf("seed %d/%s", seed, opts.Dialect.Name)
			for _, q := range adjDiffReads {
				runAdjDiff(t, label, q, indexed, scan)
			}
			for _, w := range adjDiffWrites {
				runAdjDiff(t, label+"/write", w, indexed, scan)
			}
			for _, q := range adjDiffReads {
				runAdjDiff(t, label+"/overlay", q, indexed, scan)
			}
			if indexed.adjExpansions == 0 {
				t.Fatalf("%s: indexed engine never used the adjacency index", label)
			}
			if scan.adjExpansions != 0 {
				t.Fatalf("%s: scan engine used the adjacency index %d times", label, scan.adjExpansions)
			}
		}
	}
}

// TestAdjIndexStepLimitEquivalence pins the skip-run step accounting:
// at every MaxMatchSteps value the indexed and scan paths must agree
// exactly on whether the budget trips, and on the partial error/result.
func TestAdjIndexStepLimitEquivalence(t *testing.T) {
	snap, schema := adjDiffGraph(t, 7)
	queries := []string{
		"MATCH (a)-[r:T0]-(b)-[s:T1]-(c) RETURN a.id, c.id",
		"MATCH (a)-[r:T0|T3]->(b) RETURN r.id",
		"MATCH (a)<-[r:T1]-(b) RETURN r.id",
	}
	for _, text := range queries {
		for ms := 1; ms <= 400; ms++ {
			opts := Options{Limits: Limits{MaxMatchSteps: ms}}
			scanOpts := opts
			scanOpts.DisableAdjIndex = true
			indexed, scan := New(opts), New(scanOpts)
			indexed.LoadSnapshot(snap, schema)
			scan.LoadSnapshot(snap, schema)
			runAdjDiff(t, fmt.Sprintf("maxSteps=%d", ms), text, indexed, scan)
		}
	}
}

// TestStoreNodeHasLabel pins the delta resolution the mid-chain label
// fast path relies on: base labels, overlay additions and removals, and
// deletion leaving the node unindexed.
func TestStoreNodeHasLabel(t *testing.T) {
	g := graph.New()
	a := g.NewNode("A").ID
	b := g.NewNode("B").ID
	snap := g.Seal()
	schema := &graph.Schema{Labels: []string{"A", "B", "C"}}
	e := New(Options{})
	e.LoadSnapshot(snap, schema)
	st := e.Store()

	if !st.NodeHasLabel("A", a) || st.NodeHasLabel("B", a) || !st.NodeHasLabel("B", b) {
		t.Fatal("base labels misresolved")
	}
	if err := st.AddLabels(a, []string{"C"}); err != nil {
		t.Fatal(err)
	}
	if !st.NodeHasLabel("C", a) || st.NodeHasLabel("C", b) {
		t.Fatal("overlay label addition misresolved")
	}
	if err := st.RemoveLabels(a, []string{"A"}); err != nil {
		t.Fatal(err)
	}
	if st.NodeHasLabel("A", a) {
		t.Fatal("overlay label removal misresolved")
	}
	if err := st.DeleteNode(b, true); err != nil {
		t.Fatal(err)
	}
	if st.NodeHasLabel("B", b) {
		t.Fatal("deleted node still label-indexed")
	}
}
