package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gqs/internal/graph"
	"gqs/internal/value"
)

// TestPlannerEquivalenceProperty is a self-differential check: for random
// read queries over random graphs, the engine must produce the same
// result multiset with the planner enabled, disabled, and under reversed
// scan order. This is the correctness guard for the optimization passes
// the ablation benchmarks measure.
func TestPlannerEquivalenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 120; trial++ {
		g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 8, MaxRels: 20})
		q := randomReadQuery(r, g)

		variants := []Options{
			{},
			{DisablePlanner: true},
			{ReverseScan: true},
		}
		var results []*Result
		var errs []error
		for _, opt := range variants {
			e := New(opt)
			e.LoadGraph(g, schema)
			res, err := e.Execute(q)
			results = append(results, res)
			errs = append(errs, err)
		}
		for i := 1; i < len(results); i++ {
			if (errs[i] == nil) != (errs[0] == nil) {
				t.Fatalf("trial %d: error divergence %v vs %v\n%s", trial, errs[0], errs[i], q)
			}
			if errs[0] != nil {
				continue
			}
			if !canonicalEqual(results[0], results[i]) {
				t.Fatalf("trial %d: planner variant %d diverged\nquery: %s\nbase:\n%s\nvariant:\n%s",
					trial, i, q, results[0], results[i])
			}
		}
	}
}

func canonicalEqual(a, b *Result) bool {
	ka, kb := a.Canonical(), b.Canonical()
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// randomReadQuery builds a small pattern query anchored enough to stay
// cheap: 1-2 patterns, optional WHERE, projection with optional
// aggregation and modifiers.
func randomReadQuery(r *rand.Rand, g *graph.Graph) string {
	ids := g.NodeIDs()
	q := "MATCH (a)-[r1]-(b)"
	if r.Intn(2) == 0 {
		q = "MATCH (a)-[r1]->(b)"
	}
	if r.Intn(2) == 0 {
		q += ", (c)"
	}
	switch r.Intn(4) {
	case 0:
		q += " WHERE a.id = " + value.Int(ids[r.Intn(len(ids))]).String()
	case 1:
		q += " WHERE a.k1 IS NULL"
	case 2:
		q += " WHERE r1.id <> 3 AND b.id >= 0"
	}
	switch r.Intn(4) {
	case 0:
		q += " RETURN a.id AS x, b.id AS y"
	case 1:
		q += " RETURN DISTINCT a.id AS x"
	case 2:
		// min/max are plan-order-invariant; collect() is not.
		q += " RETURN count(*) AS c, min(b.id) AS lo, max(b.id) AS hi"
	default:
		q += " WITH a, count(*) AS deg RETURN a.id AS x, deg ORDER BY deg DESC, x"
	}
	return q
}

// TestDeterminismProperty: executing the same query twice on the same
// engine yields identical results, including row order.
func TestDeterminismProperty(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 8, MaxRels: 25})
	e := NewReference()
	e.LoadGraph(g, schema)
	for trial := 0; trial < 60; trial++ {
		q := randomReadQuery(r, g)
		a, errA := e.Execute(q)
		b, errB := e.Execute(q)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("error nondeterminism on %s", q)
		}
		if errA != nil {
			continue
		}
		if a.String() != b.String() {
			t.Fatalf("row-order nondeterminism on %s", q)
		}
	}
}

// TestOrderByTotalOrderProperty: ORDER BY must totally order mixed-type
// values without panicking, and ascending+descending must be reverses of
// each other for distinct keys.
func TestOrderByTotalOrderProperty(t *testing.T) {
	e := NewReference()
	f := func(xs []int16) bool {
		list := "["
		for i, x := range xs {
			if i > 0 {
				list += ", "
			}
			list += value.Int(int64(x)).String()
		}
		list += "]"
		asc, err1 := e.Execute("UNWIND " + list + " AS x RETURN x ORDER BY x")
		desc, err2 := e.Execute("UNWIND " + list + " AS x RETURN x ORDER BY x DESC")
		if err1 != nil || err2 != nil {
			return false
		}
		n := asc.Len()
		for i := 0; i < n; i++ {
			if value.OrderCompare(asc.Rows[i][0], desc.Rows[n-1-i][0]) != 0 {
				return false
			}
		}
		// Ascending order must be monotone.
		for i := 1; i < n; i++ {
			if value.OrderCompare(asc.Rows[i-1][0], asc.Rows[i][0]) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestSkipLimitProperty: for any non-negative skip/limit, the result is
// the expected slice of the ordered expansion.
func TestSkipLimitProperty(t *testing.T) {
	e := NewReference()
	f := func(n, skip, limit uint8) bool {
		total := int(n % 20)
		s, l := int(skip%25), int(limit%25)
		q := "UNWIND range(1, " + value.Int(int64(total)).String() + ") AS x RETURN x ORDER BY x SKIP " +
			value.Int(int64(s)).String() + " LIMIT " + value.Int(int64(l)).String()
		res, err := e.Execute(q)
		if err != nil {
			return false
		}
		want := total - s
		if want < 0 {
			want = 0
		}
		if want > l {
			want = l
		}
		if res.Len() != want {
			return false
		}
		for i := 0; i < res.Len(); i++ {
			if res.Rows[i][0].AsInt() != int64(s+i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestDistinctIdempotentProperty: applying DISTINCT twice equals once.
func TestDistinctIdempotentProperty(t *testing.T) {
	e := NewReference()
	f := func(xs []int8) bool {
		list := "["
		for i, x := range xs {
			if i > 0 {
				list += ", "
			}
			list += value.Int(int64(x % 4)).String()
		}
		list += "]"
		once, err1 := e.Execute("UNWIND " + list + " AS x RETURN DISTINCT x")
		twice, err2 := e.Execute("UNWIND " + list + " AS x WITH DISTINCT x RETURN DISTINCT x")
		if err1 != nil || err2 != nil {
			return false
		}
		return once.Equal(twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestUnionAllCountProperty: |A UNION ALL B| = |A| + |B|.
func TestUnionAllCountProperty(t *testing.T) {
	e := NewReference()
	f := func(a, b uint8) bool {
		na, nb := int(a%15), int(b%15)
		q := "UNWIND range(1, " + value.Int(int64(na)).String() + ") AS x RETURN x UNION ALL " +
			"UNWIND range(1, " + value.Int(int64(nb)).String() + ") AS x RETURN x"
		res, err := e.Execute(q)
		if err != nil {
			return false
		}
		return res.Len() == na+nb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
