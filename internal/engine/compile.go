package engine

import (
	"errors"

	"gqs/internal/cypher/ast"
	"gqs/internal/eval"
	"gqs/internal/functions"
	"gqs/internal/value"
)

// This file lowers a parsed query to the physical plan of plan.go. The
// lowering is conservative: any construct whose behaviour the compiled
// executor cannot reproduce byte-for-byte — writes, `*` projections, a
// misplaced RETURN, unknown procedures — makes compileQueryPlan return
// nil, and ExecutePrepared falls back to the tree-walking interpreter,
// which is trivially behaviour-identical (it IS the behaviour). The
// synthesized read-only corpus compiles in full; the fallback exists for
// hand-written queries and the write tests.
var errUnsupportedPlan = errors.New("plan: unsupported construct")

// scope maps in-scope variable names to their frame slots.
type scope map[string]int

func (s scope) clone() scope {
	out := make(scope, len(s)+4)
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s scope) lookup(name string) (int, bool) {
	slot, ok := s[name]
	return slot, ok
}

// slotAlloc hands out frame slots for one query part; its final count is
// the part's frame width.
type slotAlloc struct{ n int }

func (a *slotAlloc) next() int {
	s := a.n
	a.n++
	return s
}

func (a *slotAlloc) compiler(sc scope) *eval.Compiler {
	return &eval.Compiler{Lookup: sc.lookup, Temp: a.next}
}

// compileQueryPlan lowers a query, or returns nil when any part uses a
// construct the plan executor does not cover.
func compileQueryPlan(q *ast.Query) *queryPlan {
	qp := &queryPlan{all: q.All}
	for _, part := range q.Parts {
		pp, err := compileSinglePlan(part)
		if err != nil {
			return nil
		}
		qp.parts = append(qp.parts, pp)
	}
	return qp
}

func compileSinglePlan(sq *ast.SingleQuery) (*partPlan, error) {
	alloc := &slotAlloc{}
	sc := scope{}
	pp := &partPlan{}
	var projs []*cProjection
	for i, c := range sq.Clauses {
		last := i == len(sq.Clauses)-1
		switch c := c.(type) {
		case *ast.MatchClause:
			st, out, err := compileMatchStage(c, sc, alloc)
			if err != nil {
				return nil, err
			}
			pp.stages = append(pp.stages, st)
			sc = out
		case *ast.UnwindClause:
			st, out, err := compileUnwindStage(c, sc, alloc)
			if err != nil {
				return nil, err
			}
			pp.stages = append(pp.stages, st)
			sc = out
		case *ast.WithClause:
			st, out, err := compileProjectionStage(&c.Projection, c.Where, sc, alloc, true, false)
			if err != nil {
				return nil, err
			}
			pp.stages = append(pp.stages, st)
			projs = append(projs, st)
			sc = out
		case *ast.ReturnClause:
			if !last {
				return nil, errUnsupportedPlan // interpreter raises the error
			}
			st, _, err := compileProjectionStage(&c.Projection, nil, sc, alloc, false, true)
			if err != nil {
				return nil, err
			}
			pp.stages = append(pp.stages, st)
			projs = append(projs, st)
		case *ast.CallClause:
			st, out, err := compileCallStage(c, sc, alloc, last)
			if err != nil {
				return nil, err
			}
			pp.stages = append(pp.stages, st)
			sc = out
		default:
			// Write clauses (and anything new) stay on the interpreter.
			return nil, errUnsupportedPlan
		}
	}
	pp.width = alloc.n
	// Projections need the final width for their interpreter cold path
	// and the SKIP/LIMIT scratch frame; it is only known now.
	for _, p := range projs {
		p.width = alloc.n
	}
	return pp, nil
}

// --- MATCH ---------------------------------------------------------

func compileMatchStage(c *ast.MatchClause, sc scope, alloc *slotAlloc) (*cMatch, scope, error) {
	pvars := patternVars(c.Patterns)
	out := sc.clone()
	optFill := make([]int, 0, len(pvars))
	for _, v := range pvars {
		if _, ok := out[v]; !ok {
			s := alloc.next()
			out[v] = s
			optFill = append(optFill, s)
		}
	}
	st := &cMatch{optional: c.Optional, optFill: optFill}

	// Conjunct predicates are compiled against the full post-clause
	// scope: a conjunct referencing a variable that never binds becomes a
	// closure raising the unknown-variable error when evaluated, exactly
	// as the interpreter's conservative final pass surfaces it.
	var conj []ast.Expr
	if c.Where != nil {
		conj = splitWhereExprs(nil, c.Where)
	}
	preds := make([]eval.CompiledPred, len(conj))
	pcmp := alloc.compiler(out)
	for i, cj := range conj {
		p, err := pcmp.CompilePred(cj)
		if err != nil {
			return nil, nil, errUnsupportedPlan
		}
		preds[i] = p
	}

	// Schedule each conjunct at the earliest point where its variables
	// are all bound. Boundness is static — every row at a clause boundary
	// carries the same variable set — so the compile-time schedule equals
	// the interpreter's per-row readiness checks. VarsSatisfy walks the
	// conjunct instead of materializing its variable list; the scheduling
	// decision is identical.
	cum := make(map[string]bool, len(sc))
	for name := range sc {
		cum[name] = true
	}
	inCum := func(name string) bool { return cum[name] }
	assigned := make([]bool, len(conj))
	for i, cj := range conj {
		if ast.VarsSatisfy(cj, inCum) {
			st.entry = append(st.entry, preds[i])
			assigned[i] = true
		}
	}
	perPart := make([][]int, len(c.Patterns))
	for pi, p := range c.Patterns {
		for ni, n := range p.Nodes {
			if n.Variable != "" {
				cum[n.Variable] = true
			}
			if ni < len(p.Rels) && p.Rels[ni].Variable != "" {
				cum[p.Rels[ni].Variable] = true
			}
		}
		for i, cj := range conj {
			if !assigned[i] && ast.VarsSatisfy(cj, inCum) {
				perPart[pi] = append(perPart[pi], i)
				assigned[i] = true
			}
		}
	}
	for i := range conj {
		if !assigned[i] {
			st.final = append(st.final, preds[i])
		}
	}

	// Lower each pattern part. entryNames grows with each part's
	// variables: part p's chain starts with everything parts 0..p-1
	// bound, mirroring the interpreter's env. Only the forward
	// orientation is compiled here; the reverse — used only when the
	// executing store makes the last endpoint strictly cheaper — is
	// deferred behind cPart.revBuild, which snapshots this loop's state
	// (entryList prefix, conjunct assignment, fwd temp slots) so the
	// deferred build produces exactly the chain the eager one would have.
	entryNames := make(map[string]bool, len(sc))
	entryList := make([]string, 0, len(sc)+len(pvars))
	for name := range sc {
		entryNames[name] = true
		entryList = append(entryList, name)
	}
	for pi, p := range c.Patterns {
		cp := &cPart{
			costFirst: costSpec(p.Nodes[0], entryNames),
			costLast:  costSpec(p.Nodes[len(p.Nodes)-1], entryNames),
		}
		// Record the temp slots the forward build allocates: the reverse
		// orientation compiles the same property expressions, so it needs
		// exactly as many, and temps are save/restored scratch — reusing
		// the forward slots is safe even though the orientations pair
		// them differently.
		var temps []int
		recTemp := func() int {
			s := alloc.next()
			temps = append(temps, s)
			return s
		}
		var err error
		cp.fwd, err = buildChain(p, entryNames, out, perPart[pi], conj, preds, recTemp)
		if err != nil {
			return nil, nil, err
		}
		if len(p.Nodes) >= 2 {
			part, conjIdx := p, perPart[pi]
			entrySnap := entryList[:len(entryList):len(entryList)]
			cp.revBuild = func() *cChain {
				entry := make(map[string]bool, len(entrySnap))
				for _, name := range entrySnap {
					entry[name] = true
				}
				i := 0
				replay := func() int {
					if i < len(temps) {
						s := temps[i]
						i++
						return s
					}
					// Unreachable: both orientations compile the same
					// property expressions and therefore allocate the
					// same number of temps.
					return 0
				}
				rev, err := buildChain(reverseChain(part), entry, out, conjIdx, conj, preds, replay)
				if err != nil {
					// Unreachable for the same reason: chain compilation
					// only fails on AST node types the expression
					// compiler does not know, and the forward build of
					// these same expressions succeeded.
					return nil
				}
				return rev
			}
		}
		st.parts = append(st.parts, cp)
		for ni, n := range p.Nodes {
			if n.Variable != "" {
				entryNames[n.Variable] = true
				entryList = append(entryList, n.Variable)
			}
			if ni < len(p.Rels) && p.Rels[ni].Variable != "" {
				entryNames[p.Rels[ni].Variable] = true
				entryList = append(entryList, p.Rels[ni].Variable)
			}
		}
	}
	return st, out, nil
}

// costSpec captures matcher.nodeCost's inputs for one chain endpoint:
// entry boundness (static) and the candidate labels. The cardinalities
// themselves are read from the executing store (cCost.eval).
func costSpec(n *ast.NodePattern, entry map[string]bool) cCost {
	if n.Variable != "" && entry[n.Variable] {
		return cCost{bound: true}
	}
	return cCost{labels: n.Labels}
}

// buildChain lowers one oriented pattern part. Inline property maps are
// compiled against the scope bound BEFORE their element (the interpreter
// checks properties before binding, so a self- or forward-reference is
// an unknown-variable error there too); conjuncts are attached to the
// element whose binding completes their variable set, in conjunct order.
func buildChain(p *ast.PatternPart, entry map[string]bool, full scope, conjIdx []int, conj []ast.Expr, preds []eval.CompiledPred, temp func() int) (*cChain, error) {
	bound := make(map[string]bool, len(entry)+len(p.Nodes)+len(p.Rels))
	for name := range entry {
		bound[name] = true
	}
	inBound := func(name string) bool { return bound[name] }
	remaining := append([]int(nil), conjIdx...)
	takeReady := func() []eval.CompiledPred {
		var ready []eval.CompiledPred
		rest := remaining[:0]
		for _, ci := range remaining {
			if ast.VarsSatisfy(conj[ci], inBound) {
				ready = append(ready, preds[ci])
			} else {
				rest = append(rest, ci)
			}
		}
		remaining = rest
		return ready
	}
	// boundCmp resolves only variables bound so far: Compile resolves
	// lookups eagerly, so sharing the mutating map across elements is
	// safe — each element's expressions see the scope at its own point.
	boundCmp := &eval.Compiler{
		Lookup: func(name string) (int, bool) {
			if !bound[name] {
				return 0, false
			}
			return full.lookup(name)
		},
		Temp: temp,
	}
	compileProps := func(m *ast.MapLit) (cProps, error) {
		var out cProps
		if m == nil {
			return out, nil
		}
		out.keys = m.Keys
		out.vals = make([]eval.Compiled, len(m.Vals))
		for i, v := range m.Vals {
			fn, err := boundCmp.Compile(v)
			if err != nil {
				return out, errUnsupportedPlan
			}
			out.vals[i] = fn
		}
		return out, nil
	}

	ch := &cChain{nodes: make([]cNode, len(p.Nodes)), rels: make([]cRel, len(p.Rels))}
	for i, np := range p.Nodes {
		cn := &ch.nodes[i]
		cn.slot = -1
		if np.Variable != "" {
			cn.slot = full[np.Variable]
			cn.bound = bound[np.Variable]
		}
		cn.labels = np.Labels
		var err error
		cn.props, err = compileProps(np.Props)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			// Index probes for the entry scan, in the interpreter's
			// label-major, key-minor order, sharing the compiled values.
			for _, l := range np.Labels {
				for k, key := range cn.props.keys {
					cn.probes = append(cn.probes, cProbe{
						label: l,
						key:   key,
						val:   cn.props.vals[k],
						trace: "NodeIndexScan:" + l + "." + key,
					})
				}
			}
		}
		if np.Variable != "" {
			bound[np.Variable] = true
		}
		cn.conj = takeReady()
		if i < len(p.Rels) {
			rp := p.Rels[i]
			cr := &ch.rels[i]
			cr.slot = -1
			if rp.Variable != "" {
				cr.slot = full[rp.Variable]
				cr.bound = bound[rp.Variable]
			}
			cr.types = rp.Types
			cr.dir = rp.Direction
			cr.props, err = compileProps(rp.Props)
			if err != nil {
				return nil, err
			}
			if rp.Variable != "" {
				bound[rp.Variable] = true
			}
			cr.conj = takeReady()
		}
	}
	if len(remaining) != 0 {
		// Defensive: the stage classifier only assigns a conjunct to this
		// part when the part's variables complete it.
		return nil, errUnsupportedPlan
	}
	return ch, nil
}

// --- UNWIND --------------------------------------------------------

func compileUnwindStage(c *ast.UnwindClause, sc scope, alloc *slotAlloc) (*cUnwind, scope, error) {
	fn, err := alloc.compiler(sc).Compile(c.Expr)
	if err != nil {
		return nil, nil, errUnsupportedPlan
	}
	out := sc.clone()
	slot := alloc.next()
	out[c.Alias] = slot // shadows any previous binding, as the row write did
	return &cUnwind{list: fn, slot: slot}, out, nil
}

// --- CALL ----------------------------------------------------------

func compileCallStage(c *ast.CallClause, sc scope, alloc *slotAlloc, last bool) (*cCall, scope, error) {
	var col string
	switch c.Procedure {
	case "db.labels":
		col = "label"
	case "db.relationshipTypes":
		col = "relationshipType"
	case "db.propertyKeys":
		col = "propertyKey"
	default:
		return nil, nil, errUnsupportedPlan // interpreter raises the error
	}
	if len(c.Yield) > 1 {
		return nil, nil, errUnsupportedPlan
	}
	if len(c.Yield) == 1 {
		col = c.Yield[0]
	}
	out := sc.clone()
	slot := alloc.next()
	out[col] = slot
	return &cCall{proc: c.Procedure, col: col, slot: slot, last: last}, out, nil
}

// --- WITH / RETURN -------------------------------------------------

func compileProjectionStage(p *ast.Projection, where ast.Expr, sc scope, alloc *slotAlloc, requireAlias, isReturn bool) (*cProjection, scope, error) {
	if p.Star || len(p.Items) == 0 {
		// `*` depends on the runtime row contents; an empty projection is
		// an error — both stay on the interpreter.
		return nil, nil, errUnsupportedPlan
	}
	st := &cProjection{
		distinct:     p.Distinct,
		isReturn:     isReturn,
		proj:         p,
		requireAlias: requireAlias,
		items:        make([]cProjItem, 0, len(p.Items)),
		cols:         make([]string, 0, len(p.Items)),
	}
	seen := make(map[string]bool, len(p.Items))
	for _, it := range p.Items {
		name := it.Alias
		if name == "" {
			if v, ok := it.Expr.(*ast.Variable); ok {
				name = v.Name
			} else if requireAlias {
				return nil, nil, errUnsupportedPlan // "must be aliased" error
			} else {
				name = ast.ExprString(it.Expr)
			}
		}
		if seen[name] {
			return nil, nil, errUnsupportedPlan // duplicate-column error
		}
		seen[name] = true
		agg := eval.HasAggregate(it.Expr)
		st.hasAgg = st.hasAgg || agg
		st.items = append(st.items, cProjItem{name: name, slot: alloc.next(), agg: agg})
		st.cols = append(st.cols, name)
	}

	if st.hasAgg {
		if err := compileAggregation(st, p, sc, alloc); err != nil {
			return nil, nil, err
		}
	} else {
		cmp := alloc.compiler(sc)
		for i, it := range p.Items {
			fn, err := cmp.Compile(it.Expr)
			if err != nil {
				return nil, nil, errUnsupportedPlan
			}
			st.items[i].fn = fn
		}
	}

	out := make(scope, len(st.items))
	for i := range st.items {
		out[st.items[i].name] = st.items[i].slot
	}

	// ORDER BY scope mirrors project's orderEnv: projected columns only
	// after aggregation or DISTINCT, otherwise input merged with the
	// projected columns (which shadow on collision).
	if len(p.OrderBy) > 0 {
		sortScope := out
		if !st.hasAgg && !p.Distinct {
			sortScope = sc.clone()
			for name, slot := range out {
				sortScope[name] = slot
			}
		}
		scmp := alloc.compiler(sortScope)
		for _, s := range p.OrderBy {
			fn, err := scmp.Compile(s.Expr)
			if err != nil {
				return nil, nil, errUnsupportedPlan
			}
			st.sorts = append(st.sorts, cSort{key: fn, desc: s.Desc})
		}
	}

	// SKIP/LIMIT evaluate in an empty environment (evalIn(row{}, x)).
	ecmp := &eval.Compiler{Temp: alloc.next}
	if p.Skip != nil {
		fn, err := ecmp.Compile(p.Skip)
		if err != nil {
			return nil, nil, errUnsupportedPlan
		}
		st.skip = fn
	}
	if p.Limit != nil {
		fn, err := ecmp.Compile(p.Limit)
		if err != nil {
			return nil, nil, errUnsupportedPlan
		}
		st.limit = fn
	}

	// A WITH's WHERE sees only the projected row.
	if where != nil {
		wp, err := alloc.compiler(out).CompilePred(where)
		if err != nil {
			return nil, nil, errUnsupportedPlan
		}
		st.where = wp
	}
	return st, out, nil
}

// compileAggregation collects the aggregate calls of every item in item
// order (as Engine.aggregate walks them), assigns each a result slot,
// and compiles the item expressions with those slots spliced in place of
// the calls via the Special hook.
func compileAggregation(st *cProjection, p *ast.Projection, sc scope, alloc *slotAlloc) error {
	cmp := alloc.compiler(sc)
	callSlot := map[*ast.FuncCall]int{}
	var compileErr error
	for _, it := range p.Items {
		ast.WalkExprs(it.Expr, func(x ast.Expr) bool {
			f, ok := x.(*ast.FuncCall)
			if !ok {
				return true
			}
			if f.Star {
				callSlot[f] = alloc.next()
				st.calls = append(st.calls, cAggCall{
					star:     true,
					distinct: f.Distinct,
					argCount: len(f.Args),
					slot:     callSlot[f],
				})
				return false
			}
			spec := functions.LookupAgg(f.Name)
			if spec == nil {
				return true
			}
			c := cAggCall{
				spec:     spec,
				distinct: f.Distinct,
				argCount: len(f.Args),
				slot:     alloc.next(),
			}
			if len(f.Args) >= 1 {
				fn, err := cmp.Compile(f.Args[0])
				if err != nil {
					compileErr = errUnsupportedPlan
					return false
				}
				c.arg = fn
			}
			if spec.HasParam && len(f.Args) == 2 {
				fn, err := cmp.Compile(f.Args[1])
				if err != nil {
					compileErr = errUnsupportedPlan
					return false
				}
				c.param = fn
			}
			callSlot[f] = c.slot
			st.calls = append(st.calls, c)
			return false // aggregates do not nest
		})
	}
	if compileErr != nil {
		return compileErr
	}
	// Item expressions: grouping items evaluate per input row; aggregated
	// items evaluate at finalization with each call reading its slot.
	itemCmp := &eval.Compiler{
		Lookup: sc.lookup,
		Temp:   alloc.next,
		Special: func(x ast.Expr) (eval.Compiled, bool) {
			f, ok := x.(*ast.FuncCall)
			if !ok {
				return nil, false
			}
			slot, ok := callSlot[f]
			if !ok {
				return nil, false
			}
			return func(ctx *eval.Ctx) (value.Value, error) {
				return ctx.Frame[slot], nil
			}, true
		},
	}
	for i, it := range p.Items {
		fn, err := itemCmp.Compile(it.Expr)
		if err != nil {
			return errUnsupportedPlan
		}
		st.items[i].fn = fn
		if !st.items[i].agg {
			st.groupItems = append(st.groupItems, i)
		}
	}
	return nil
}
