package engine

import (
	"strings"
	"testing"

	"gqs/internal/graph"
	"gqs/internal/value"
)

// movieEngine builds the Figure 2 movie graph from the paper:
// Alice -LIKE(10)-> Heat, Alice -LIKE(7)-> Up, Bob -LIKE(9)-> Up.
func movieEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewReference()
	_, err := e.Execute(`CREATE (a:USER {name: 'Alice'})-[:LIKE {rating: 10}]->
		(h:MOVIE {name: 'Heat', year: 1995, genre: ['Drama', 'Crime']}),
		(a)-[:LIKE {rating: 7}]->(u:MOVIE {name: 'Up', year: 2009, genre: ['Animation']}),
		(b:USER {name: 'Bob'})-[:LIKE {rating: 9}]->(u)`)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mustRun(t *testing.T, e *Engine, q string) *Result {
	t.Helper()
	r, err := e.Execute(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return r
}

func TestMatchReturnBasic(t *testing.T) {
	e := movieEngine(t)
	r := mustRun(t, e, `MATCH (m:MOVIE) RETURN m.name AS name`)
	if r.Len() != 2 {
		t.Fatalf("got %d rows: %v", r.Len(), r)
	}
}

func TestMatchPatternDirection(t *testing.T) {
	e := movieEngine(t)
	fwd := mustRun(t, e, `MATCH (p:USER)-[r:LIKE]->(m:MOVIE) RETURN p.name, m.name`)
	rev := mustRun(t, e, `MATCH (m:MOVIE)<-[r:LIKE]-(p:USER) RETURN p.name, m.name`)
	if fwd.Len() != 3 || !fwd.Equal(rev) {
		t.Errorf("forward/reverse patterns must match identically: %d vs %d", fwd.Len(), rev.Len())
	}
	und := mustRun(t, e, `MATCH (p:USER)-[r:LIKE]-(m:MOVIE) RETURN p.name, m.name`)
	if und.Len() != 3 {
		t.Errorf("undirected pattern: %d rows", und.Len())
	}
}

func TestMatchWhere(t *testing.T) {
	e := movieEngine(t)
	r := mustRun(t, e, `MATCH (p:USER)-[r:LIKE]->(m:MOVIE)
		WHERE p.name = 'Alice' AND r.rating >= 8 RETURN m.name AS n`)
	if r.Len() != 1 || r.Rows[0][0].AsString() != "Heat" {
		t.Fatalf("got %v", r)
	}
}

func TestFigure2Query(t *testing.T) {
	// The paper's second Figure 2 query, end to end.
	e := movieEngine(t)
	r := mustRun(t, e, `MATCH (p :USER)-[r :LIKE]->(m :MOVIE)
		WHERE p.name = 'Alice' AND r.rating >= 8
		UNWIND m.genre AS LikedGenre
		WITH DISTINCT m.name AS MovieName, LikedGenre
		RETURN MovieName, LikedGenre`)
	if r.Len() != 2 {
		t.Fatalf("expected 2 rows (Drama, Crime), got %v", r)
	}
	for _, row := range r.Rows {
		if row[0].AsString() != "Heat" {
			t.Errorf("unexpected movie %v", row[0])
		}
	}
}

func TestMultiplePatterns(t *testing.T) {
	e := movieEngine(t)
	// Cartesian of users and movies constrained by WHERE.
	r := mustRun(t, e, `MATCH (p:USER), (m:MOVIE) RETURN p.name, m.name`)
	if r.Len() != 4 {
		t.Fatalf("cartesian product: %d rows, want 4", r.Len())
	}
}

func TestSharedVariableJoin(t *testing.T) {
	e := movieEngine(t)
	// Movies liked by both Alice and Bob.
	r := mustRun(t, e, `MATCH (a:USER {name: 'Alice'})-[:LIKE]->(m), (b:USER {name: 'Bob'})-[:LIKE]->(m)
		RETURN m.name AS n`)
	if r.Len() != 1 || r.Rows[0][0].AsString() != "Up" {
		t.Fatalf("join on m: %v", r)
	}
}

func TestRelUniqueness(t *testing.T) {
	g := graph.New()
	a := g.NewNode("A")
	b := g.NewNode("B")
	g.NewRel(a.ID, b.ID, "T")

	ref := NewReference()
	ref.LoadGraph(g, nil)
	// With a single relationship, a two-hop pattern cannot reuse it under
	// reference semantics.
	r := mustRun(t, ref, `MATCH (x)-[e1]-(y)-[e2]-(z) RETURN x`)
	if r.Len() != 0 {
		t.Errorf("reference dialect must enforce relationship uniqueness, got %d rows", r.Len())
	}

	loose := New(Options{Dialect: Dialect{Name: "falkor-like", RelUniqueness: false, ProvidesDBLabels: true}})
	loose.LoadGraph(g, nil)
	r = mustRun(t, loose, `MATCH (x)-[e1]-(y)-[e2]-(z) RETURN x`)
	if r.Len() == 0 {
		t.Error("non-uniqueness dialect must allow reusing the relationship")
	}
	// The paper's workaround: WHERE e1 <> e2 restores the semantics.
	r = mustRun(t, loose, `MATCH (x)-[e1]-(y)-[e2]-(z) WHERE e1 <> e2 RETURN x`)
	if r.Len() != 0 {
		t.Error("WHERE e1 <> e2 must filter duplicate matches")
	}
}

func TestOptionalMatch(t *testing.T) {
	e := movieEngine(t)
	r := mustRun(t, e, `MATCH (p:USER) OPTIONAL MATCH (p)-[:HATES]->(m) RETURN p.name, m`)
	if r.Len() != 2 {
		t.Fatalf("optional match row count: %d", r.Len())
	}
	for _, row := range r.Rows {
		if !row[1].IsNull() {
			t.Errorf("unmatched optional variable must be null, got %v", row[1])
		}
	}
	// Matched case keeps bindings.
	r = mustRun(t, e, `MATCH (p:USER {name: 'Alice'}) OPTIONAL MATCH (p)-[l:LIKE]->(m) RETURN m.name`)
	if r.Len() != 2 {
		t.Errorf("matched optional: %d rows", r.Len())
	}
}

func TestUnwind(t *testing.T) {
	e := NewReference()
	r := mustRun(t, e, `UNWIND [1, 2, 3] AS x RETURN x`)
	if r.Len() != 3 {
		t.Fatalf("unwind: %v", r)
	}
	r = mustRun(t, e, `UNWIND [] AS x RETURN x`)
	if r.Len() != 0 {
		t.Error("unwind of empty list must produce no rows")
	}
	r = mustRun(t, e, `WITH null AS l UNWIND l AS x RETURN x`)
	if r.Len() != 0 {
		t.Error("unwind of null must produce no rows")
	}
	if _, err := e.Execute(`UNWIND 5 AS x RETURN x`); err == nil {
		t.Error("unwind of a scalar must be a type error")
	}
	// Nested: UNWIND duplicates the intermediate table (paper §3.2 L+).
	r = mustRun(t, e, `UNWIND [1, 2] AS x UNWIND ['a', 'b'] AS y RETURN x, y`)
	if r.Len() != 4 {
		t.Errorf("nested unwind: %d rows", r.Len())
	}
}

func TestWithProjectionAndFilter(t *testing.T) {
	e := movieEngine(t)
	r := mustRun(t, e, `MATCH (p:USER)-[l:LIKE]->(m)
		WITH m.name AS name, l.rating AS rating WHERE rating > 8
		RETURN name ORDER BY name`)
	if r.Len() != 2 || r.Rows[0][0].AsString() != "Heat" || r.Rows[1][0].AsString() != "Up" {
		t.Fatalf("got %v", r)
	}
}

func TestWithRemovesVariables(t *testing.T) {
	e := movieEngine(t)
	// After WITH, m is out of scope: the E- operation of Table 1.
	if _, err := e.Execute(`MATCH (p:USER)-[l]->(m) WITH p RETURN m`); err == nil {
		t.Error("variable removed by WITH must be out of scope")
	}
}

func TestDistinct(t *testing.T) {
	e := movieEngine(t)
	r := mustRun(t, e, `MATCH (p:USER)-[:LIKE]->(m) RETURN DISTINCT p.name AS n`)
	if r.Len() != 2 {
		t.Fatalf("distinct: %v", r)
	}
}

func TestOrderBySkipLimit(t *testing.T) {
	e := NewReference()
	r := mustRun(t, e, `UNWIND [3, 1, 2, 5, 4] AS x RETURN x ORDER BY x DESC SKIP 1 LIMIT 2`)
	if r.Len() != 2 || r.Rows[0][0].AsInt() != 4 || r.Rows[1][0].AsInt() != 3 {
		t.Fatalf("got %v", r)
	}
	r = mustRun(t, e, `UNWIND [1, null, 2] AS x RETURN x ORDER BY x`)
	if !r.Rows[2][0].IsNull() {
		t.Error("nulls must sort last ascending")
	}
	if _, err := e.Execute(`UNWIND [1] AS x RETURN x LIMIT -1`); err == nil {
		t.Error("negative LIMIT must error")
	}
}

func TestOrderByUnprojectedVariable(t *testing.T) {
	e := movieEngine(t)
	// ORDER BY may reference pre-projection variables when the
	// projection neither aggregates nor deduplicates.
	r := mustRun(t, e, `MATCH (m:MOVIE) RETURN m.name AS n ORDER BY m.year DESC`)
	if r.Rows[0][0].AsString() != "Up" {
		t.Fatalf("got %v", r)
	}
}

func TestAggregation(t *testing.T) {
	e := movieEngine(t)
	r := mustRun(t, e, `MATCH (p:USER)-[l:LIKE]->(m) RETURN p.name AS n, count(*) AS c, sum(l.rating) AS s ORDER BY n`)
	if r.Len() != 2 {
		t.Fatalf("group count: %v", r)
	}
	// Alice: 2 likes, ratings 10+7; Bob: 1 like, rating 9.
	if r.Rows[0][1].AsInt() != 2 || r.Rows[0][2].AsInt() != 17 {
		t.Errorf("Alice row: %v", r.Rows[0])
	}
	if r.Rows[1][1].AsInt() != 1 || r.Rows[1][2].AsInt() != 9 {
		t.Errorf("Bob row: %v", r.Rows[1])
	}
}

func TestAggregationGlobalGroup(t *testing.T) {
	e := movieEngine(t)
	r := mustRun(t, e, `MATCH (p:USER)-[l:LIKE]->(m) RETURN count(*) AS c, avg(l.rating) AS a, collect(m.name) AS names`)
	if r.Len() != 1 || r.Rows[0][0].AsInt() != 3 {
		t.Fatalf("global group: %v", r)
	}
	if len(r.Rows[0][2].AsList()) != 3 {
		t.Errorf("collect: %v", r.Rows[0][2])
	}
}

func TestAggregationEmptyInput(t *testing.T) {
	e := NewReference()
	r := mustRun(t, e, `MATCH (n:NOPE) RETURN count(*) AS c`)
	if r.Len() != 1 || r.Rows[0][0].AsInt() != 0 {
		t.Fatalf("count over empty match must be one row of 0: %v", r)
	}
	// With grouping keys, an empty input yields no groups.
	r = mustRun(t, e, `MATCH (n:NOPE) RETURN n.k0 AS k, count(*) AS c`)
	if r.Len() != 0 {
		t.Fatalf("grouped aggregation over empty input: %v", r)
	}
}

func TestAggregateDistinct(t *testing.T) {
	e := NewReference()
	r := mustRun(t, e, `UNWIND [1, 1, 2] AS x RETURN count(DISTINCT x) AS c, sum(DISTINCT x) AS s`)
	if r.Rows[0][0].AsInt() != 2 || r.Rows[0][1].AsInt() != 3 {
		t.Fatalf("distinct aggregation: %v", r)
	}
}

func TestAggregateInExpression(t *testing.T) {
	e := NewReference()
	r := mustRun(t, e, `UNWIND [1, 2, 3] AS x RETURN count(*) + 10 AS c, collect(x)[0] AS first`)
	if r.Rows[0][0].AsInt() != 13 || r.Rows[0][1].AsInt() != 1 {
		t.Fatalf("aggregate in expression: %v", r)
	}
}

func TestReturnStar(t *testing.T) {
	e := NewReference()
	r := mustRun(t, e, `UNWIND [1] AS b UNWIND [2] AS a RETURN *`)
	if strings.Join(r.Columns, ",") != "a,b" {
		t.Fatalf("RETURN * columns must be sorted: %v", r.Columns)
	}
}

func TestUnion(t *testing.T) {
	e := NewReference()
	r := mustRun(t, e, `RETURN 1 AS x UNION ALL RETURN 1 AS x`)
	if r.Len() != 2 {
		t.Errorf("UNION ALL keeps duplicates: %v", r)
	}
	r = mustRun(t, e, `RETURN 1 AS x UNION RETURN 1 AS x`)
	if r.Len() != 1 {
		t.Errorf("UNION dedupes: %v", r)
	}
	if _, err := e.Execute(`RETURN 1 AS x UNION RETURN 1 AS y`); err == nil {
		t.Error("UNION with different columns must error")
	}
}

func TestCallProcedures(t *testing.T) {
	e := movieEngine(t)
	r := mustRun(t, e, `CALL db.labels()`)
	if r.Len() != 2 {
		t.Fatalf("db.labels: %v", r)
	}
	r = mustRun(t, e, `CALL db.labels() YIELD label RETURN label ORDER BY label`)
	if r.Rows[0][0].AsString() != "MOVIE" {
		t.Fatalf("db.labels yield: %v", r)
	}
	r = mustRun(t, e, `CALL db.relationshipTypes()`)
	if r.Len() != 1 || r.Rows[0][0].AsString() != "LIKE" {
		t.Fatalf("db.relationshipTypes: %v", r)
	}
	r = mustRun(t, e, `CALL db.propertyKeys()`)
	if r.Len() == 0 {
		t.Fatal("db.propertyKeys empty")
	}
	// Dialects without the procedure reject it, as Kùzu/Memgraph do.
	noProc := New(Options{Dialect: Dialect{Name: "memgraph-like", RelUniqueness: true}})
	if _, err := noProc.Execute(`CALL db.labels()`); err == nil {
		t.Error("dialect without db.labels must error")
	}
	if _, err := e.Execute(`CALL db.nope()`); err == nil {
		t.Error("unknown procedure must error")
	}
}

func TestCreateAndMatchRoundTrip(t *testing.T) {
	e := NewReference()
	mustRun(t, e, `CREATE (a:X {k: 1}), (b:X {k: 2}), (a)-[:R {w: 5}]->(b)`)
	r := mustRun(t, e, `MATCH (a:X)-[r:R]->(b:X) RETURN a.k, r.w, b.k`)
	if r.Len() != 1 || r.Rows[0][1].AsInt() != 5 {
		t.Fatalf("round trip: %v", r)
	}
}

func TestSetAndRemove(t *testing.T) {
	e := NewReference()
	mustRun(t, e, `CREATE (:X {k: 1})`)
	mustRun(t, e, `MATCH (n:X) SET n.k = 2, n.j = 'new', n:Y`)
	r := mustRun(t, e, `MATCH (n:Y) RETURN n.k, n.j`)
	if r.Len() != 1 || r.Rows[0][0].AsInt() != 2 || r.Rows[0][1].AsString() != "new" {
		t.Fatalf("SET: %v", r)
	}
	mustRun(t, e, `MATCH (n:X) REMOVE n.j, n:Y`)
	r = mustRun(t, e, `MATCH (n:X) RETURN n.j`)
	if !r.Rows[0][0].IsNull() {
		t.Error("REMOVE property broken")
	}
	if mustRun(t, e, `MATCH (n:Y) RETURN n`).Len() != 0 {
		t.Error("REMOVE label broken")
	}
	// SET to null removes the property.
	mustRun(t, e, `MATCH (n:X) SET n.k = null`)
	r = mustRun(t, e, `MATCH (n:X) WHERE n.k IS NULL RETURN n`)
	if r.Len() != 1 {
		t.Error("SET null must remove property")
	}
}

func TestDelete(t *testing.T) {
	e := NewReference()
	mustRun(t, e, `CREATE (a:X)-[:R]->(b:X)`)
	if _, err := e.Execute(`MATCH (n:X) DELETE n`); err == nil {
		t.Error("DELETE of connected node must error")
	}
	mustRun(t, e, `MATCH (n:X) DETACH DELETE n`)
	if mustRun(t, e, `MATCH (n) RETURN n`).Len() != 0 {
		t.Error("DETACH DELETE must remove everything")
	}
}

func TestMerge(t *testing.T) {
	e := NewReference()
	mustRun(t, e, `MERGE (n:X {k: 1}) ON CREATE SET n.created = true ON MATCH SET n.matched = true`)
	r := mustRun(t, e, `MATCH (n:X) RETURN n.created, n.matched`)
	if r.Len() != 1 || !r.Rows[0][0].AsBool() || !r.Rows[0][1].IsNull() {
		t.Fatalf("first merge must create: %v", r)
	}
	mustRun(t, e, `MERGE (n:X {k: 1}) ON CREATE SET n.created2 = true ON MATCH SET n.matched = true`)
	r = mustRun(t, e, `MATCH (n:X) RETURN count(*) AS c, n.matched`)
	if r.Rows[0][0].AsInt() != 1 {
		t.Fatalf("second merge must match, not create: %v", r)
	}
}

func TestIndexScanPlanning(t *testing.T) {
	g := graph.New()
	for i := 0; i < 10; i++ {
		n := g.NewNode("L0")
		n.Props["k0"] = value.Int(int64(i))
	}
	schema := &graph.Schema{Indexes: []graph.IndexSpec{{Label: "L0", Property: "k0"}}}
	e := NewReference()
	e.LoadGraph(g, schema)
	r := mustRun(t, e, `MATCH (n:L0 {k0: 3}) RETURN n.id`)
	if r.Len() != 1 {
		t.Fatalf("index scan result: %v", r)
	}
	found := false
	for _, p := range e.PlanTrace() {
		if strings.HasPrefix(p, "NodeIndexScan") {
			found = true
		}
	}
	if !found {
		t.Errorf("planner must choose the index scan, trace: %v", e.PlanTrace())
	}
	// With the planner disabled the result is identical but the access
	// path is a full scan (the ablation of §4 of DESIGN.md).
	e2 := New(Options{DisablePlanner: true})
	e2.LoadGraph(g, schema)
	r2 := mustRun(t, e2, `MATCH (n:L0 {k0: 3}) RETURN n.id`)
	if !r.Equal(r2) {
		t.Error("planner must not change results")
	}
	for _, p := range e2.PlanTrace() {
		if strings.HasPrefix(p, "NodeIndexScan") || p == "NodeByLabelScan" {
			t.Errorf("disabled planner must not use indexes: %v", e2.PlanTrace())
		}
	}
}

func TestSelfLoopUndirectedMatchesOnce(t *testing.T) {
	g := graph.New()
	a := g.NewNode("A")
	g.NewRel(a.ID, a.ID, "T")
	e := NewReference()
	e.LoadGraph(g, nil)
	r := mustRun(t, e, `MATCH (x)-[r]-(y) RETURN r`)
	if r.Len() != 1 {
		t.Errorf("undirected self-loop must match once, got %d", r.Len())
	}
}

func TestAnonymousPatternElements(t *testing.T) {
	e := movieEngine(t)
	r := mustRun(t, e, `MATCH (:USER {name: 'Alice'})-[]->()-[]-(other) RETURN count(*) AS c`)
	if r.Len() != 1 {
		t.Fatalf("anonymous elements: %v", r)
	}
}

func TestResourceLimits(t *testing.T) {
	g := graph.New()
	a := g.NewNode("A")
	b := g.NewNode("B")
	for i := 0; i < 60; i++ {
		g.NewRel(a.ID, b.ID, "T")
		g.NewRel(b.ID, a.ID, "T")
	}
	e := New(Options{Limits: Limits{MaxRows: 100, MaxMatchSteps: 1_000_000}})
	e.LoadGraph(g, nil)
	_, err := e.Execute(`MATCH (a)-[r1]-(b)-[r2]-(c)-[r3]-(d) RETURN a`)
	if err == nil {
		t.Fatal("exploding match must hit the row limit")
	}
	if _, ok := err.(*ErrResourceLimit); !ok {
		t.Fatalf("want ErrResourceLimit, got %v", err)
	}
}

func TestWhereNullSemantics(t *testing.T) {
	e := movieEngine(t)
	// WHERE with unknown result filters the row (three-valued logic).
	r := mustRun(t, e, `MATCH (m:MOVIE) WHERE m.missing > 1 RETURN m`)
	if r.Len() != 0 {
		t.Error("unknown predicate must filter")
	}
	r = mustRun(t, e, `MATCH (m:MOVIE) WHERE m.missing IS NULL RETURN m`)
	if r.Len() != 2 {
		t.Error("IS NULL must pass all movies")
	}
}

func TestReturnLiteralOnly(t *testing.T) {
	e := NewReference()
	r := mustRun(t, e, `RETURN 1 + 1 AS two, 'x' AS s`)
	if r.Len() != 1 || r.Rows[0][0].AsInt() != 2 {
		t.Fatalf("pure RETURN: %v", r)
	}
	// Unaliased non-variable items take their printed text as column name.
	r = mustRun(t, e, `RETURN 1 + 1`)
	if r.Columns[0] != "(1 + 1)" {
		t.Errorf("column name = %q", r.Columns[0])
	}
}

func TestWithRequiresAlias(t *testing.T) {
	e := movieEngine(t)
	if _, err := e.Execute(`MATCH (m:MOVIE) WITH m.name RETURN 1`); err == nil {
		t.Error("WITH expression without alias must error")
	}
	if _, err := e.Execute(`MATCH (m:MOVIE) RETURN m.name AS a, m.year AS a`); err == nil {
		t.Error("duplicate column must error")
	}
}

func TestDuplicateRowsPreserved(t *testing.T) {
	// Bag semantics: without DISTINCT duplicates are preserved.
	e := NewReference()
	r := mustRun(t, e, `UNWIND [1, 1, 1] AS x RETURN x`)
	if r.Len() != 3 {
		t.Error("bag semantics broken")
	}
}

func TestResultEqual(t *testing.T) {
	a := &Result{Columns: []string{"x"}, Rows: [][]value.Value{{value.Int(1)}, {value.Int(2)}}}
	b := &Result{Columns: []string{"x"}, Rows: [][]value.Value{{value.Int(2)}, {value.Int(1)}}}
	if !a.Equal(b) {
		t.Error("Equal must be order-insensitive")
	}
	c := &Result{Columns: []string{"x"}, Rows: [][]value.Value{{value.Int(2)}, {value.Int(2)}}}
	if a.Equal(c) {
		t.Error("different multisets must differ")
	}
	d := &Result{Columns: []string{"y"}, Rows: b.Rows}
	if a.Equal(d) {
		t.Error("different columns must differ")
	}
	if a.RowMap(0)["x"].AsInt() != 1 {
		t.Error("RowMap broken")
	}
}

func TestFigure17Semantics(t *testing.T) {
	// The FalkorDB UNWIND bug scenario: the reference engine must return
	// all three rows.
	g := graph.New()
	n2 := g.NewNode("L12")
	n3 := g.NewNode("L0")
	rel, _ := g.NewRel(n2.ID, n3.ID, "T0")
	e := NewReference()
	e.LoadGraph(g, nil)
	q := `UNWIND [1,2,3] AS a0 MATCH (n2 :L12)-[r1]-(n3) WHERE r1.id = ` +
		value.Int(rel.ID).String() + ` RETURN a0`
	r := mustRun(t, e, q)
	if r.Len() != 3 {
		t.Fatalf("expected 3 rows, got %v", r)
	}
}
