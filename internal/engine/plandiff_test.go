package engine_test

// The planned-vs-interpreted differential: every synthesized query of a
// fixed-seed corpus is executed twice per dialect — once on the compiled
// physical plan, once on the tree-walking interpreter — and the results
// must be byte-equal: same columns, same rows in the same order, same
// error string, same nondeterministic-function draws. This is the
// mechanized form of the §12 determinism argument (DESIGN.md): the plan
// compiler may choose any access path, but it must not be observable.
// `make plandiff` runs exactly this test under -race.

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"gqs/internal/core"
	"gqs/internal/engine"
	"gqs/internal/graph"
)

// planDiffDialects mirrors the five oracle targets of the campaign plus
// a ReverseScan variant, so orientation and scan-order choices are
// differentially exercised on every engine configuration the harness
// actually runs.
func planDiffDialects() []engine.Options {
	return []engine.Options{
		{Dialect: engine.Reference},
		{Dialect: engine.Dialect{Name: "neo4j", RelUniqueness: true, ProvidesDBLabels: true}},
		{Dialect: engine.Dialect{Name: "memgraph", RelUniqueness: true}, ReverseScan: true},
		{Dialect: engine.Dialect{Name: "kuzu", EnforceSchema: true}},
		{Dialect: engine.Dialect{Name: "falkordb", ProvidesDBLabels: true}},
	}
}

// planDiffQueries is the hand-written tail of the corpus: constructs the
// synthesizer emits rarely (or never) but the plan compiler covers, plus
// the fallback and error paths that must fail identically.
var planDiffQueries = []string{
	"MATCH (n) RETURN n",
	"MATCH (a)-[r]->(b) RETURN a, r, b",
	"MATCH (a)-[r]-(b) WHERE a.name = b.name RETURN a.name",
	"OPTIONAL MATCH (a:Person)-[:KNOWS]->(b) RETURN a, b",
	"MATCH (a) OPTIONAL MATCH (a)-[:NOPE]->(b) RETURN a.name, b",
	"MATCH (n) WHERE n.age > 20 RETURN n.name ORDER BY n.name SKIP 1 LIMIT 2",
	"MATCH (n) RETURN DISTINCT labels(n)",
	"MATCH (n) WITH n.name AS name, count(*) AS c WHERE c > 0 RETURN name, c ORDER BY name",
	"MATCH (n) RETURN count(DISTINCT n.age), collect(n.name), min(n.age), max(n.age)",
	"MATCH (n) WHERE n.missing IS NULL RETURN count(*)",
	"UNWIND [1, 2, 3] AS x RETURN x * 2 AS y ORDER BY y DESC",
	"UNWIND [] AS x RETURN x",
	"UNWIND null AS x RETURN x",
	"WITH 1 AS one UNWIND [one, one + 1] AS v RETURN sum(v)",
	"CALL db.labels()",
	"CALL db.labels() YIELD label RETURN label ORDER BY label",
	"CALL db.relationshipTypes()",
	"MATCH (n) RETURN rand() < 2, n.name ORDER BY n.name",
	"RETURN timestamp() >= 0",
	"MATCH (a), (b) WHERE id(a) < id(b) RETURN count(*)",
	"MATCH (a)-[r1]->(b)-[r2]->(c) RETURN count(*)",
	"MATCH (a)-[r1]->(b), (b)-[r2]->(c) WHERE a.age = c.age RETURN count(*)",
	"MATCH (n) RETURN [x IN [1,2,3] WHERE x > n.age | x] AS xs, n.name ORDER BY n.name",
	"MATCH (n) RETURN CASE WHEN n.age > 30 THEN 'old' ELSE 'young' END AS bucket, count(*) ORDER BY bucket",
	// Error paths: identical message, identical timing.
	"MATCH (n) RETURN n.name LIMIT -1",
	"UNWIND 42 AS x RETURN x",
	"MATCH (n) RETURN count(n, n)",
	"MATCH (n) RETURN percentileCont(n.age)",
	// Interpreter-fallback constructs (plan compiler declines them).
	"MATCH (n) RETURN *",
	"CREATE (x:Tmp) RETURN x",
	"CALL db.propertyKeys() YIELD propertyKey RETURN propertyKey",
}

// runPlanDiffCorpus executes every query on planned and interpreted
// engines built from the same options and seed, and fails the test on
// the first observable difference. Returns how many queries actually
// took the plan path, so callers can assert the differential is not
// vacuous.
func runPlanDiffCorpus(t *testing.T, opts engine.Options, g *graph.Graph, schema *graph.Schema, texts []string) int {
	t.Helper()
	planned := engine.New(opts)
	iopts := opts
	iopts.DisablePlan = true
	interp := engine.New(iopts)
	planned.LoadGraph(g, schema)
	interp.LoadGraph(g, schema)

	ctx := context.Background()
	coverage := 0
	for _, text := range texts {
		pq, err := engine.Prepare(text)
		if err != nil {
			t.Fatalf("prepare %q: %v", text, err)
		}
		if pq.Planned() {
			coverage++
		}
		pres, perr := planned.ExecutePrepared(ctx, pq)
		ires, ierr := interp.ExecutePrepared(ctx, pq)
		if (perr == nil) != (ierr == nil) || (perr != nil && perr.Error() != ierr.Error()) {
			t.Fatalf("%s: %q: planned err %v, interpreted err %v", opts.Dialect.Name, text, perr, ierr)
		}
		if perr != nil {
			continue
		}
		if !reflect.DeepEqual(pres.Columns, ires.Columns) {
			t.Fatalf("%s: %q: planned columns %v, interpreted columns %v",
				opts.Dialect.Name, text, pres.Columns, ires.Columns)
		}
		if !reflect.DeepEqual(pres.Rows, ires.Rows) {
			t.Fatalf("%s: %q:\nplanned rows:     %v\ninterpreted rows: %v",
				opts.Dialect.Name, text, pres.Rows, ires.Rows)
		}
	}
	return coverage
}

// TestPlanDiffSynthesized is the full-corpus differential the issue
// gates on: synthesized queries from several fixed seeds, all five
// dialect configurations, planned vs interpreted, exact equality.
func TestPlanDiffSynthesized(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 12, MaxRels: 40})
			syn := core.NewSynthesizer(r, g, schema, core.DefaultConfig())
			var texts []string
			for tries := 0; len(texts) < 40 && tries < 3000; tries++ {
				gt := core.SelectGroundTruth(r, g, 6)
				if sq, err := syn.Synthesize(gt); err == nil {
					texts = append(texts, sq.Text)
				}
			}
			if len(texts) < 10 {
				t.Fatalf("synthesized only %d queries", len(texts))
			}
			for _, opts := range planDiffDialects() {
				opts.Seed = seed
				cov := runPlanDiffCorpus(t, opts, g, schema, texts)
				if cov == 0 {
					t.Fatalf("%s: no synthesized query compiled to a plan", opts.Dialect.Name)
				}
				t.Logf("%s: %d/%d queries planned", opts.Dialect.Name, cov, len(texts))
			}
		})
	}
}

// TestPlanDiffHandwritten runs the curated construct list — including
// error paths and fallback constructs — through the same differential.
func TestPlanDiffHandwritten(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 10, MaxRels: 30})
	for _, opts := range planDiffDialects() {
		opts.Seed = 5
		runPlanDiffCorpus(t, opts, g, schema, planDiffQueries)
	}
}
