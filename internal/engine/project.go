package engine

import (
	"fmt"
	"sort"

	"gqs/internal/cypher/ast"
	"gqs/internal/eval"
	"gqs/internal/functions"
	"gqs/internal/value"
)

// execUnwind expands a list expression into one row per element, as the
// UNWIND clause does. A null list produces no rows; a non-list is a type
// error, matching the Cypher reference.
func (e *Engine) execUnwind(c *ast.UnwindClause, in []row) ([]row, error) {
	var out []row
	for _, r := range in {
		if err := e.checkCancel(); err != nil {
			return nil, err
		}
		v, err := e.evalIn(r, c.Expr)
		if err != nil {
			return nil, err
		}
		switch v.Kind() {
		case value.KindNull:
			// no rows
		case value.KindList:
			for _, el := range v.AsList() {
				nr := cloneRow(r)
				nr[c.Alias] = el
				out = append(out, nr)
			}
		default:
			return nil, fmt.Errorf("type error: UNWIND expects a list, got %s", v.Kind())
		}
	}
	return out, nil
}

// projectionItem is a resolved WITH/RETURN item: its output column name
// and its expression.
type projectionItem struct {
	name string
	expr ast.Expr
	agg  bool // contains an aggregation operator
}

// resolveItems expands * and assigns output column names.
func resolveItems(p *ast.Projection, in []row, requireAlias bool) ([]projectionItem, error) {
	var items []projectionItem
	if p.Star {
		vars := map[string]bool{}
		for _, r := range in {
			for k := range r {
				vars[k] = true
			}
		}
		names := make([]string, 0, len(vars))
		for k := range vars {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, n := range names {
			items = append(items, projectionItem{name: n, expr: ast.Var(n)})
		}
	}
	seen := map[string]bool{}
	for _, it := range items {
		seen[it.name] = true
	}
	for _, it := range p.Items {
		name := it.Alias
		if name == "" {
			if v, ok := it.Expr.(*ast.Variable); ok {
				name = v.Name
			} else if requireAlias {
				return nil, fmt.Errorf("expression in WITH must be aliased (use AS)")
			} else {
				name = ast.ExprString(it.Expr)
			}
		}
		if seen[name] {
			return nil, fmt.Errorf("column %s defined more than once", name)
		}
		seen[name] = true
		items = append(items, projectionItem{name: name, expr: it.Expr, agg: eval.HasAggregate(it.Expr)})
	}
	if len(items) == 0 && !p.Star {
		return nil, fmt.Errorf("projection requires at least one column")
	}
	// A `WITH *` over an empty pipeline legitimately projects no columns;
	// later clauses see zero rows and never evaluate their expressions.
	return items, nil
}

// project evaluates a full WITH/RETURN projection over the input rows:
// grouping and aggregation, DISTINCT, ORDER BY, SKIP, and LIMIT. It
// returns the projected rows in order together with the column names.
func (e *Engine) project(p *ast.Projection, in []row, requireAlias bool) ([]row, []string, error) {
	items, err := resolveItems(p, in, requireAlias)
	if err != nil {
		return nil, nil, err
	}
	cols := make([]string, len(items))
	hasAgg := false
	for i, it := range items {
		cols[i] = it.name
		hasAgg = hasAgg || it.agg
	}

	var projected []row
	// orderEnv maps each projected row to the environment ORDER BY sees:
	// the projected values, plus (for non-aggregating, non-distinct
	// projections) the pre-projection variables.
	var orderEnv []row
	if hasAgg {
		projected, err = e.aggregate(items, in)
		if err != nil {
			return nil, nil, err
		}
		orderEnv = projected
	} else {
		for _, r := range in {
			if err := e.checkCancel(); err != nil {
				return nil, nil, err
			}
			nr := make(row, len(items))
			for _, it := range items {
				v, err := e.evalIn(r, it.expr)
				if err != nil {
					return nil, nil, err
				}
				nr[it.name] = v
			}
			projected = append(projected, nr)
			merged := cloneRow(r)
			for k, v := range nr {
				merged[k] = v
			}
			orderEnv = append(orderEnv, merged)
		}
	}

	if p.Distinct {
		projected, orderEnv = distinctRows(items, projected)
	}
	if len(p.OrderBy) > 0 {
		if err := e.orderBy(p.OrderBy, projected, orderEnv); err != nil {
			return nil, nil, err
		}
	}
	projected, err = e.skipLimit(p, projected)
	if err != nil {
		return nil, nil, err
	}
	return projected, cols, nil
}

func distinctRows(items []projectionItem, rows []row) ([]row, []row) {
	seen := map[string]bool{}
	var out []row
	for _, r := range rows {
		k := ""
		for _, it := range items {
			k += r[it.name].Key() + "|"
		}
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	// After DISTINCT the pre-projection environment is ambiguous, so
	// ORDER BY sees only the projected columns.
	return out, out
}

func (e *Engine) orderBy(sorts []*ast.SortItem, rows []row, envs []row) error {
	type keyed struct {
		r    row
		keys []value.Value
	}
	ks := make([]keyed, len(rows))
	for i, r := range rows {
		env := r
		if envs != nil {
			env = envs[i]
		}
		keys := make([]value.Value, len(sorts))
		for j, s := range sorts {
			v, err := e.evalIn(env, s.Expr)
			if err != nil {
				return err
			}
			keys[j] = v
		}
		ks[i] = keyed{r: r, keys: keys}
	}
	sort.SliceStable(ks, func(a, b int) bool {
		for j, s := range sorts {
			c := value.OrderCompare(ks[a].keys[j], ks[b].keys[j])
			if c != 0 {
				if s.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	for i := range ks {
		rows[i] = ks[i].r
	}
	return nil
}

func (e *Engine) skipLimit(p *ast.Projection, rows []row) ([]row, error) {
	if p.Skip != nil {
		n, err := e.nonNegInt(p.Skip, "SKIP")
		if err != nil {
			return nil, err
		}
		if n >= int64(len(rows)) {
			rows = nil
		} else {
			rows = rows[n:]
		}
	}
	if p.Limit != nil {
		n, err := e.nonNegInt(p.Limit, "LIMIT")
		if err != nil {
			return nil, err
		}
		if n < int64(len(rows)) {
			rows = rows[:n]
		}
	}
	return rows, nil
}

func (e *Engine) nonNegInt(x ast.Expr, what string) (int64, error) {
	v, err := e.evalIn(row{}, x)
	if err != nil {
		return 0, err
	}
	if v.Kind() != value.KindInt || v.AsInt() < 0 {
		return 0, fmt.Errorf("%s requires a non-negative integer, got %v", what, v)
	}
	return v.AsInt(), nil
}

// aggCall is one aggregation operator occurrence within a projection.
type aggCall struct {
	call *ast.FuncCall
	spec *functions.AggSpec
	star bool
}

// aggregate implements grouped aggregation: non-aggregate items are the
// grouping keys; aggregate subexpressions accumulate per group and are
// substituted back into the item expressions for the final evaluation.
func (e *Engine) aggregate(items []projectionItem, in []row) ([]row, error) {
	// Collect the aggregate calls per item.
	var calls []aggCall
	callIdx := map[*ast.FuncCall]int{}
	for _, it := range items {
		ast.WalkExprs(it.expr, func(x ast.Expr) bool {
			f, ok := x.(*ast.FuncCall)
			if !ok {
				return true
			}
			if f.Star {
				callIdx[f] = len(calls)
				calls = append(calls, aggCall{call: f, star: true})
				return false
			}
			if spec := functions.LookupAgg(f.Name); spec != nil {
				callIdx[f] = len(calls)
				calls = append(calls, aggCall{call: f, spec: spec})
				return false // aggregates do not nest
			}
			return true
		})
	}

	type group struct {
		keyVals  map[string]value.Value // grouping item name -> value
		firstRow row
		accs     []functions.Aggregator
		distinct []map[string]bool
	}
	groups := map[string]*group{}
	var order []string

	newGroup := func(r row, keyVals map[string]value.Value) (*group, error) {
		g := &group{keyVals: keyVals, firstRow: r}
		g.accs = make([]functions.Aggregator, len(calls))
		g.distinct = make([]map[string]bool, len(calls))
		for i, c := range calls {
			if c.star {
				g.accs[i] = functions.CountStar()
				continue
			}
			var param value.Value
			if c.spec.HasParam {
				if len(c.call.Args) != 2 {
					return nil, fmt.Errorf("%s requires two arguments", c.spec.Name)
				}
				p, err := e.evalIn(r, c.call.Args[1])
				if err != nil {
					return nil, err
				}
				param = p
			} else if len(c.call.Args) != 1 {
				return nil, fmt.Errorf("%s requires one argument", c.spec.Name)
			}
			g.accs[i] = c.spec.New(param)
			if c.call.Distinct {
				g.distinct[i] = map[string]bool{}
			}
		}
		return g, nil
	}

	for _, r := range in {
		if err := e.checkCancel(); err != nil {
			return nil, err
		}
		keyVals := map[string]value.Value{}
		keyStr := ""
		for _, it := range items {
			if it.agg {
				continue
			}
			v, err := e.evalIn(r, it.expr)
			if err != nil {
				return nil, err
			}
			keyVals[it.name] = v
			keyStr += v.Key() + "|"
		}
		g, ok := groups[keyStr]
		if !ok {
			var err error
			g, err = newGroup(r, keyVals)
			if err != nil {
				return nil, err
			}
			groups[keyStr] = g
			order = append(order, keyStr)
		}
		for i, c := range calls {
			var v value.Value
			if c.star {
				v = value.True // counted regardless
			} else {
				var err error
				v, err = e.evalIn(r, c.call.Args[0])
				if err != nil {
					return nil, err
				}
			}
			if g.distinct[i] != nil {
				k := v.Key()
				if g.distinct[i][k] {
					continue
				}
				g.distinct[i][k] = true
			}
			if err := g.accs[i].Add(v); err != nil {
				return nil, err
			}
		}
	}

	// Aggregation over zero rows with no grouping keys still yields one
	// row (count(*) over an empty match is 0).
	if len(in) == 0 && allAggregated(items) {
		g, err := newGroup(row{}, map[string]value.Value{})
		if err != nil {
			return nil, err
		}
		groups[""] = g
		order = append(order, "")
	}

	var out []row
	for _, k := range order {
		g := groups[k]
		aggVals := map[*ast.FuncCall]value.Value{}
		for i, c := range calls {
			aggVals[c.call] = g.accs[i].Result()
		}
		nr := make(row, len(items))
		for _, it := range items {
			if !it.agg {
				nr[it.name] = g.keyVals[it.name]
				continue
			}
			final := substituteAggs(it.expr, aggVals)
			v, err := e.evalIn(g.firstRow, final)
			if err != nil {
				return nil, err
			}
			nr[it.name] = v
		}
		out = append(out, nr)
	}
	return out, nil
}

func allAggregated(items []projectionItem) bool {
	for _, it := range items {
		if !it.agg {
			return false
		}
	}
	return true
}

// substituteAggs replaces aggregate call nodes with literals of their
// computed per-group values, leaving the rest of the tree intact.
func substituteAggs(e ast.Expr, vals map[*ast.FuncCall]value.Value) ast.Expr {
	switch x := e.(type) {
	case *ast.FuncCall:
		if v, ok := vals[x]; ok {
			return ast.Lit(v)
		}
		args := make([]ast.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = substituteAggs(a, vals)
		}
		return &ast.FuncCall{Name: x.Name, Distinct: x.Distinct, Star: x.Star, Args: args}
	case *ast.Binary:
		return &ast.Binary{Op: x.Op, L: substituteAggs(x.L, vals), R: substituteAggs(x.R, vals)}
	case *ast.Unary:
		return &ast.Unary{Op: x.Op, X: substituteAggs(x.X, vals)}
	case *ast.PropAccess:
		return &ast.PropAccess{Subject: substituteAggs(x.Subject, vals), Name: x.Name}
	case *ast.ListLit:
		elems := make([]ast.Expr, len(x.Elems))
		for i, el := range x.Elems {
			elems[i] = substituteAggs(el, vals)
		}
		return &ast.ListLit{Elems: elems}
	case *ast.MapLit:
		vs := make([]ast.Expr, len(x.Vals))
		for i, v := range x.Vals {
			vs[i] = substituteAggs(v, vals)
		}
		return &ast.MapLit{Keys: x.Keys, Vals: vs}
	case *ast.IndexExpr:
		return &ast.IndexExpr{Subject: substituteAggs(x.Subject, vals), Index: substituteAggs(x.Index, vals)}
	case *ast.SliceExpr:
		out := &ast.SliceExpr{Subject: substituteAggs(x.Subject, vals)}
		if x.From != nil {
			out.From = substituteAggs(x.From, vals)
		}
		if x.To != nil {
			out.To = substituteAggs(x.To, vals)
		}
		return out
	case *ast.CaseExpr:
		out := &ast.CaseExpr{}
		if x.Test != nil {
			out.Test = substituteAggs(x.Test, vals)
		}
		for i := range x.Whens {
			out.Whens = append(out.Whens, substituteAggs(x.Whens[i], vals))
			out.Thens = append(out.Thens, substituteAggs(x.Thens[i], vals))
		}
		if x.Else != nil {
			out.Else = substituteAggs(x.Else, vals)
		}
		return out
	default:
		return e
	}
}

// execWith runs a WITH clause: projection, then the optional WHERE filter.
func (e *Engine) execWith(c *ast.WithClause, in []row) ([]row, error) {
	rows, _, err := e.project(&c.Projection, in, true)
	if err != nil {
		return nil, err
	}
	if c.Where == nil {
		return rows, nil
	}
	var out []row
	for _, r := range rows {
		t, err := eval.EvalPredicate(e.evalCtx(r), c.Where)
		if err != nil {
			return nil, err
		}
		if t == value.TriTrue {
			out = append(out, r)
		}
	}
	return out, nil
}

// execReturn runs the final RETURN clause, producing the query result.
func (e *Engine) execReturn(c *ast.ReturnClause, in []row) (*Result, error) {
	rows, cols, err := e.project(&c.Projection, in, false)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: cols}
	for _, r := range rows {
		vals := make([]value.Value, len(cols))
		for i, col := range cols {
			vals[i] = r[col]
		}
		res.Rows = append(res.Rows, vals)
	}
	return res, nil
}

// execCall implements the CALL clause for the built-in database
// procedures (db.labels, db.relationshipTypes, db.propertyKeys). As in
// the paper, not every dialect provides them.
func (e *Engine) execCall(c *ast.CallClause, in []row, last bool) ([]row, *Result, error) {
	var col string
	var vals []value.Value
	switch c.Procedure {
	case "db.labels":
		if !e.opts.Dialect.ProvidesDBLabels {
			return nil, nil, fmt.Errorf("%s: there is no procedure db.labels", e.opts.Dialect.Name)
		}
		col = "label"
		for _, l := range e.store.Labels() {
			vals = append(vals, value.Str(l))
		}
	case "db.relationshipTypes":
		if !e.opts.Dialect.ProvidesDBLabels {
			return nil, nil, fmt.Errorf("%s: there is no procedure db.relationshipTypes", e.opts.Dialect.Name)
		}
		col = "relationshipType"
		for _, t := range e.store.RelTypes() {
			vals = append(vals, value.Str(t))
		}
	case "db.propertyKeys":
		if !e.opts.Dialect.ProvidesDBLabels {
			return nil, nil, fmt.Errorf("%s: there is no procedure db.propertyKeys", e.opts.Dialect.Name)
		}
		col = "propertyKey"
		for _, k := range e.store.PropertyKeys() {
			vals = append(vals, value.Str(k))
		}
	default:
		return nil, nil, fmt.Errorf("unknown procedure %s", c.Procedure)
	}
	if len(c.Yield) > 1 {
		return nil, nil, fmt.Errorf("procedure %s yields one column", c.Procedure)
	}
	if len(c.Yield) == 1 {
		col = c.Yield[0]
	}
	var out []row
	for _, r := range in {
		for _, v := range vals {
			nr := cloneRow(r)
			nr[col] = v
			out = append(out, nr)
		}
	}
	if last {
		// Standalone CALL as the final clause returns the column directly.
		res := &Result{Columns: []string{col}}
		for _, r := range out {
			res.Rows = append(res.Rows, []value.Value{r[col]})
		}
		return out, res, nil
	}
	return out, nil, nil
}
