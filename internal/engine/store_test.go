package engine

import (
	"math/rand"
	"testing"

	"gqs/internal/graph"
	"gqs/internal/value"
)

func TestStoreIndexesAfterLoad(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 10, MaxRels: 30})
	s := NewStore()
	s.Reset(g, schema)
	checkIndexConsistency(t, s)
	// Declared indexes are queryable.
	for _, idx := range schema.Indexes {
		if !s.HasIndex(idx.Label, idx.Property) {
			t.Errorf("index %v not registered", idx)
		}
	}
	if s.HasIndex("NOPE", "k0") {
		t.Error("undeclared index reported")
	}
}

// checkIndexConsistency verifies the label index matches a from-scratch
// recomputation.
func checkIndexConsistency(t *testing.T, s *Store) {
	t.Helper()
	g := s.Graph()
	want := map[string]map[graph.ID]bool{}
	for _, id := range g.NodeIDs() {
		for _, l := range g.Node(id).Labels {
			if want[l] == nil {
				want[l] = map[graph.ID]bool{}
			}
			want[l][id] = true
		}
	}
	for l, ids := range want {
		got := s.NodesByLabel(l)
		if len(got) != len(ids) {
			t.Fatalf("label %s: index has %d nodes, graph has %d", l, len(got), len(ids))
		}
		for _, id := range got {
			if !ids[id] {
				t.Fatalf("label %s: stale node %d in index", l, id)
			}
		}
	}
}

// TestStoreIndexMaintenanceProperty applies random mutation sequences and
// checks the label index never goes stale.
func TestStoreIndexMaintenanceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for trial := 0; trial < 40; trial++ {
		g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 6, MaxRels: 10})
		s := NewStore()
		s.Reset(g, schema)
		for op := 0; op < 30; op++ {
			ids := s.Graph().NodeIDs()
			switch r.Intn(6) {
			case 0:
				s.CreateNode([]string{schema.Labels[r.Intn(len(schema.Labels))]},
					map[string]value.Value{"k0": value.Int(int64(r.Intn(100)))})
			case 1:
				if len(ids) > 1 {
					s.CreateRel(ids[r.Intn(len(ids))], ids[r.Intn(len(ids))], "T0", nil)
				}
			case 2:
				if len(ids) > 0 {
					s.AddLabels(ids[r.Intn(len(ids))], []string{schema.Labels[r.Intn(len(schema.Labels))]})
				}
			case 3:
				if len(ids) > 0 {
					n := s.Graph().Node(ids[r.Intn(len(ids))])
					if len(n.Labels) > 0 {
						s.RemoveLabels(n.ID, []string{n.Labels[0]})
					}
				}
			case 4:
				if len(ids) > 0 {
					s.SetProp(ids[r.Intn(len(ids))], false, "k0", value.Int(int64(r.Intn(100))))
				}
			case 5:
				if len(ids) > 0 {
					s.DeleteNode(ids[r.Intn(len(ids))], true)
				}
			}
		}
		checkIndexConsistency(t, s)
	}
}

func TestStorePropIndexTracksMutations(t *testing.T) {
	g := graph.New()
	schema := &graph.Schema{Indexes: []graph.IndexSpec{{Label: "L", Property: "k"}}}
	s := NewStore()
	s.Reset(g, schema)

	n := s.CreateNode([]string{"L"}, map[string]value.Value{"k": value.Int(7)})
	ids, ok := s.NodesByIndex("L", "k", value.Int(7))
	if !ok || len(ids) != 1 || ids[0] != n.ID {
		t.Fatalf("index after create: %v %v", ids, ok)
	}
	// Updating the property moves the entry.
	s.SetProp(n.ID, false, "k", value.Int(8))
	if ids, _ := s.NodesByIndex("L", "k", value.Int(7)); len(ids) != 0 {
		t.Error("stale index entry after update")
	}
	if ids, _ := s.NodesByIndex("L", "k", value.Int(8)); len(ids) != 1 {
		t.Error("missing index entry after update")
	}
	// Removing the label removes the entry.
	s.RemoveLabels(n.ID, []string{"L"})
	if ids, _ := s.NodesByIndex("L", "k", value.Int(8)); len(ids) != 0 {
		t.Error("stale index entry after label removal")
	}
	// Null removes the property.
	s.AddLabels(n.ID, []string{"L"})
	s.SetProp(n.ID, false, "k", value.Null)
	if _, ok := s.Graph().Node(n.ID).Props["k"]; ok {
		t.Error("null SetProp must delete the property")
	}
}

func TestStoreVocabularies(t *testing.T) {
	e := NewReference()
	mustRun(t, e, `CREATE (a:B {x: 1})-[:R2 {w: 1}]->(b:A {y: 2})`)
	s := e.Store()
	if got := s.Labels(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("Labels = %v", got)
	}
	if got := s.RelTypes(); len(got) != 1 || got[0] != "R2" {
		t.Errorf("RelTypes = %v", got)
	}
	keys := s.PropertyKeys()
	want := map[string]bool{"id": true, "x": true, "y": true, "w": true}
	for _, k := range keys {
		if !want[k] {
			t.Errorf("unexpected property key %q", k)
		}
	}
}

// TestGraphCreateRoundTrip: exporting a random graph as a CREATE
// statement and loading it into a fresh engine reproduces the same data
// (modulo element IDs).
func TestGraphCreateRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 8, MaxRels: 20})

		direct := NewReference()
		direct.LoadGraph(g, schema)
		loaded := NewReference()
		if _, err := loaded.Execute(g.ToCypher()); err != nil {
			t.Fatalf("trial %d: load: %v", trial, err)
		}

		for _, q := range []string{
			`MATCH (n) RETURN count(*) AS c`,
			`MATCH ()-[r]->() RETURN count(*) AS c`,
			`MATCH (n) RETURN n.k0 AS v ORDER BY v`,
			`MATCH ()-[r]->() WITH r.k1 AS v WHERE v IS NOT NULL RETURN count(*) AS c`,
			`MATCH (n:L0) RETURN count(*) AS c`,
		} {
			a, errA := direct.Execute(q)
			b, errB := loaded.Execute(q)
			if errA != nil || errB != nil {
				t.Fatalf("trial %d: %v / %v", trial, errA, errB)
			}
			if !a.Equal(b) {
				t.Fatalf("trial %d: %s diverged:\n%s\nvs\n%s", trial, q, a, b)
			}
		}
	}
}
