package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"gqs/internal/graph"
)

// dumpGraph renders a canonical textual form of the live graph state —
// every node, relationship, and adjacency list — so an overlay graph and
// a plain clone can be compared exactly.
func dumpGraph(g *graph.Graph) string {
	var sb strings.Builder
	for _, id := range g.NodeIDs() {
		n := g.Node(id)
		labels := append([]string(nil), n.Labels...)
		sort.Strings(labels)
		props := make([]string, 0, len(n.Props))
		for k, v := range n.Props {
			props = append(props, k+"="+v.Key())
		}
		sort.Strings(props)
		fmt.Fprintf(&sb, "N%d %v %v out=%v in=%v\n", id, labels, props, g.Out(id), g.In(id))
	}
	for _, id := range g.RelIDs() {
		r := g.Rel(id)
		props := make([]string, 0, len(r.Props))
		for k, v := range r.Props {
			props = append(props, k+"="+v.Key())
		}
		sort.Strings(props)
		fmt.Fprintf(&sb, "R%d %s %d->%d %v\n", id, r.Type, r.Start, r.End, props)
	}
	return sb.String()
}

// TestCOWStoreMatchesCloneStore runs the same write-clause-heavy query
// sequences through a snapshot-loaded (copy-on-write) engine and a
// graph-loaded (deep-clone) engine, comparing every result and the full
// graph state after every query and after every reset. This is the
// differential oracle for the COW Reset path itself: both engines must
// be observationally identical across mutation and restore.
func TestCOWStoreMatchesCloneStore(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 12, MaxRels: 30})
	base := g.Clone() // keep a pristine copy for the clone engine's resets
	snap := g.Seal()

	cow := NewReference()
	ref := NewReference()
	cow.LoadSnapshot(snap, schema)
	ref.LoadGraph(base, schema)

	l0, l1 := schema.Labels[0], schema.Labels[1%len(schema.Labels)]
	t0 := schema.RelTypes[0]
	sequences := [][]string{
		{
			"MATCH (n) SET n.cow_w = 1",
			fmt.Sprintf("MATCH (n:%s) REMOVE n.k0", l0),
			"MATCH (a)-[r]->(b) SET r.cow_w = 2",
			"MATCH (n) RETURN n.id, n.cow_w",
		},
		{
			fmt.Sprintf("CREATE (a:%s {cow_w: 3})-[:%s]->(b:%s)", l0, t0, l1),
			fmt.Sprintf("MATCH (n:%s) WHERE n.cow_w = 3 SET n.cow_w = 4", l0),
			"MATCH (a)-[r]->(b) WHERE r.cow_w = 2 DELETE r",
			"MATCH (n) RETURN count(n)",
		},
		{
			fmt.Sprintf("MATCH (n:%s) DETACH DELETE n", l1),
			fmt.Sprintf("MERGE (n:%s {cow_w: 9})", l0),
			fmt.Sprintf("UNWIND [1,2,3] AS x CREATE (m:%s {cow_w: x})", l1),
			"MATCH (n) RETURN n.id ORDER BY n.id",
		},
	}

	for round := 0; round < 3; round++ {
		for si, seq := range sequences {
			for qi, q := range seq {
				gotC, errC := cow.Execute(q)
				gotR, errR := ref.Execute(q)
				if (errC == nil) != (errR == nil) {
					t.Fatalf("round %d seq %d query %d %q: error mismatch cow=%v ref=%v",
						round, si, qi, q, errC, errR)
				}
				if errC == nil && !gotC.Equal(gotR) {
					t.Fatalf("round %d seq %d query %d %q: results differ\ncow: %v\nref: %v",
						round, si, qi, q, gotC.Canonical(), gotR.Canonical())
				}
				if d1, d2 := dumpGraph(cow.Store().Graph()), dumpGraph(ref.Store().Graph()); d1 != d2 {
					t.Fatalf("round %d seq %d query %d %q: graph state diverged\ncow:\n%s\nref:\n%s",
						round, si, qi, q, d1, d2)
				}
			}
			// Reset both: COW drops its overlay, the reference re-clones.
			cow.LoadSnapshot(snap, schema)
			ref.LoadGraph(base, schema)
			if d1, d2 := dumpGraph(cow.Store().Graph()), dumpGraph(ref.Store().Graph()); d1 != d2 {
				t.Fatalf("round %d seq %d: graph state diverged after reset\ncow:\n%s\nref:\n%s",
					round, si, d1, d2)
			}
		}
	}
}

// TestSnapshotSharedAcrossConcurrentEngines loads one snapshot into many
// engines on separate goroutines, each running mutation+reset cycles.
// Under -race this proves the sharing contract: a sealed snapshot is
// read-only, every write lands in the per-engine overlay, and the only
// synchronized state is the per-snapshot index cache.
func TestSnapshotSharedAcrossConcurrentEngines(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 10, MaxRels: 25})
	snap := g.Seal()
	before := dumpGraph(graph.FromSnapshot(snap))

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e := NewReference()
			for cycle := 0; cycle < 10; cycle++ {
				e.LoadSnapshot(snap, schema)
				if _, err := e.Execute(fmt.Sprintf("MATCH (n) SET n.worker = %d", w)); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if _, err := e.Execute("MATCH (n) WHERE n.id % 2 = 0 DETACH DELETE n"); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if after := dumpGraph(graph.FromSnapshot(snap)); after != before {
		t.Fatalf("snapshot mutated by concurrent overlay writers\nbefore:\n%s\nafter:\n%s",
			before, after)
	}
}
