package core

import (
	"math/rand"
	"testing"

	"gqs/internal/graph"
)

// lineGraph builds a simple path graph n0 -> n1 -> ... -> n(k-1).
func lineGraph(k int) *graph.Graph {
	g := graph.New()
	var prev *graph.Node
	for i := 0; i < k; i++ {
		n := g.NewNode("L")
		if prev != nil {
			g.NewRel(prev.ID, n.ID, "T")
		}
		prev = n
	}
	return g
}

func TestBFSPathFindsShortestWalk(t *testing.T) {
	g := lineGraph(5)
	ids := g.NodeIDs()
	p := bfsPath(g, []graph.ID{ids[0]}, ids[4], nil)
	if p == nil {
		t.Fatal("no path found on a line graph")
	}
	if len(p.Nodes) != 5 || len(p.Steps) != 4 {
		t.Fatalf("path shape: %d nodes, %d steps", len(p.Nodes), len(p.Steps))
	}
	for _, s := range p.Steps {
		if !s.Forward {
			t.Error("line graph walk must be all-forward")
		}
	}
	// Reverse direction works via incoming relationships.
	p = bfsPath(g, []graph.ID{ids[4]}, ids[0], nil)
	if p == nil || len(p.Steps) != 4 || p.Steps[0].Forward {
		t.Fatalf("reverse path broken: %+v", p)
	}
	// Avoided relationships make the target unreachable.
	avoid := map[graph.ID]bool{}
	for _, rid := range g.RelIDs() {
		avoid[rid] = true
	}
	if bfsPath(g, []graph.ID{ids[0]}, ids[4], avoid) != nil {
		t.Error("avoid set must block the path")
	}
	// Start == target.
	p = bfsPath(g, []graph.ID{ids[2]}, ids[2], nil)
	if p == nil || len(p.Steps) != 0 {
		t.Error("trivial path broken")
	}
}

func TestCollectChainsCoversRequired(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for trial := 0; trial < 50; trial++ {
		g, _ := graph.Generate(r, graph.GenConfig{MaxNodes: 8, MaxRels: 25})
		var required []elemRef
		nodes, rels := g.NodeIDs(), g.RelIDs()
		for i := 0; i < 2 && i < len(nodes); i++ {
			required = append(required, elemRef{id: nodes[r.Intn(len(nodes))]})
		}
		for i := 0; i < 2 && i < len(rels); i++ {
			required = append(required, elemRef{id: rels[r.Intn(len(rels))], isRel: true})
		}
		chains := collectChains(r, g, required)
		for _, e := range required {
			found := false
			for _, c := range chains {
				if (e.isRel && c.hasRel(e.id)) || (!e.isRel && c.indexOfNode(e.id) >= 0) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: required element %+v not covered", trial, e)
			}
		}
		// Relationships are never repeated within one clause's chains.
		seen := map[graph.ID]bool{}
		for _, c := range chains {
			for _, s := range c.Steps {
				if seen[s.Rel] {
					t.Fatalf("trial %d: relationship %d repeated across chains", trial, s.Rel)
				}
				seen[s.Rel] = true
			}
		}
		// Chains must be actual walks: each step's relationship connects
		// the adjacent nodes.
		for _, c := range chains {
			for i, s := range c.Steps {
				rel := g.Rel(s.Rel)
				from, to := c.Nodes[i], c.Nodes[i+1]
				okFwd := s.Forward && rel.Start == from && rel.End == to
				okBwd := !s.Forward && rel.End == from && rel.Start == to
				if !okFwd && !okBwd {
					t.Fatalf("trial %d: step %d does not connect its nodes", trial, i)
				}
			}
		}
	}
}

func TestMutateChainsKeepsWalksValid(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	for trial := 0; trial < 80; trial++ {
		g, _ := graph.Generate(r, graph.GenConfig{MaxNodes: 10, MaxRels: 30})
		nodes := g.NodeIDs()
		req1 := []elemRef{{id: nodes[r.Intn(len(nodes))]}}
		history := collectChains(r, g, req1)
		req2 := []elemRef{{id: nodes[r.Intn(len(nodes))]}}
		base := collectChains(r, g, req2)
		mutated := mutateChains(r, base, history)
		if len(mutated) == 0 {
			t.Fatalf("trial %d: mutation dropped all chains", trial)
		}
		seen := map[graph.ID]bool{}
		for _, c := range mutated {
			for i, s := range c.Steps {
				rel := g.Rel(s.Rel)
				from, to := c.Nodes[i], c.Nodes[i+1]
				okFwd := s.Forward && rel.Start == from && rel.End == to
				okBwd := !s.Forward && rel.End == from && rel.Start == to
				if !okFwd && !okBwd {
					t.Fatalf("trial %d: mutated chain is not a graph walk", trial)
				}
				if seen[s.Rel] {
					t.Fatalf("trial %d: mutated chains repeat relationship %d", trial, s.Rel)
				}
				seen[s.Rel] = true
			}
		}
		// Required coverage survives mutation.
		covered := false
		for _, c := range mutated {
			if c.indexOfNode(req2[0].id) >= 0 {
				covered = true
			}
		}
		if !covered {
			t.Fatalf("trial %d: mutation lost the required element", trial)
		}
	}
}

func TestPathHelpers(t *testing.T) {
	g := lineGraph(4)
	ids := g.NodeIDs()
	p := bfsPath(g, []graph.ID{ids[0]}, ids[3], nil)
	rev := p.reverse()
	if rev.Nodes[0] != p.Nodes[len(p.Nodes)-1] {
		t.Error("reverse must flip endpoints")
	}
	if rev.Steps[0].Forward == p.Steps[len(p.Steps)-1].Forward {
		t.Error("reverse must flip traversal direction")
	}
	c := p.clone()
	c.Nodes[0] = 999
	if p.Nodes[0] == 999 {
		t.Error("clone must not share node storage")
	}
	left, right := splitAt(p, 2)
	if left.Nodes[len(left.Nodes)-1] != p.Nodes[2] || right.Nodes[0] != p.Nodes[2] {
		t.Error("splitAt endpoints broken")
	}
	if joined := joinAt(left, right); joined == nil || len(joined.Steps) != len(p.Steps) {
		t.Error("joinAt must reassemble the original length")
	}
	if joinAt(right, left) != nil && right.Nodes[len(right.Nodes)-1] != left.Nodes[0] {
		t.Error("joinAt must reject non-matching endpoints")
	}
	if p.indexOfNode(999) != -1 {
		t.Error("indexOfNode missing must be -1")
	}
}

func TestEncodeChainsBindings(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 8, MaxRels: 20})
	syn := NewSynthesizer(r, g, schema, DefaultConfig())
	gt := SelectGroundTruth(r, g, 2)
	syn.plan = BuildPlan(r, g, gt, DefaultPlanConfig())
	var required []elemRef
	for _, o := range syn.plan.Ops {
		if o.Kind == OpAddElem {
			required = append(required, elemRef{id: o.Element, isRel: o.IsRel})
		}
	}
	chains := collectChains(r, g, required)
	enc, binding := syn.encodeChains(chains, map[string]int64{})
	// Every named pattern element has a binding consistent with the
	// chain's concrete IDs.
	for _, ec := range enc {
		for i, np := range ec.part.Nodes {
			if np.Variable == "" {
				t.Fatal("encoding must name every node")
			}
			if binding[np.Variable] != ec.nodeIDs[i] {
				t.Fatalf("node var %s bound to %d, chain says %d", np.Variable, binding[np.Variable], ec.nodeIDs[i])
			}
			// Encoded labels must hold on the intended node.
			for _, l := range np.Labels {
				if !g.Node(ec.nodeIDs[i]).HasLabel(l) {
					t.Fatalf("encoded label %s not on node %d", l, ec.nodeIDs[i])
				}
			}
		}
		for i, rp := range ec.part.Rels {
			if binding[rp.Variable] != ec.relIDs[i] {
				t.Fatalf("rel var %s binding mismatch", rp.Variable)
			}
			if len(rp.Types) > 0 && rp.Types[0] != g.Rel(ec.relIDs[i]).Type {
				t.Fatalf("encoded type %s wrong for rel %d", rp.Types[0], ec.relIDs[i])
			}
		}
	}
	// Planned variables are used for planned elements.
	for ref, v := range syn.plan.ElemVar {
		if id, ok := binding[v]; ok && id != ref.id {
			t.Fatalf("planned var %s bound to %d, plan says %d", v, id, ref.id)
		}
	}
}
