package core

import (
	"fmt"
	"sort"
	"strings"

	"gqs/internal/cypher/ast"
	"gqs/internal/engine"
	"gqs/internal/eval"
	"gqs/internal/graph"
	"gqs/internal/value"
)

func graphPropertyKey(e elemRef, name string) graph.PropertyKey {
	return graph.PropertyKey{Element: e.id, IsRel: e.isRel, Name: name}
}

// Tracker maintains the expected intermediate state of the query being
// synthesized: the symbolic rows flowing through the clause pipeline.
// Because every pattern is uniquified to exactly one match (§3.4), the
// only sources of row multiplicity and divergence are UNWIND expansions;
// the tracker models those exactly, which is what lets GQS compute the
// expected result set analytically rather than by executing the query.
type Tracker struct {
	g    *graph.Graph
	rows []symRow
	// ectx is the scratch eval.Ctx reused across every expression the
	// tracker evaluates; ctx refreshes its fields instead of allocating a
	// context per call (the same pattern as Engine.evalCtx — evaluation
	// never retains the pointer, and a tracker is single-threaded).
	ectx eval.Ctx
}

type symRow struct {
	env  map[string]value.Value
	mult int
}

// NewTracker starts with the single empty row every Cypher query begins
// with.
func NewTracker(g *graph.Graph) *Tracker {
	return &Tracker{g: g, rows: []symRow{{env: map[string]value.Value{}, mult: 1}}}
}

// Vars returns the variables bound in the current rows, sorted.
func (t *Tracker) Vars() []string {
	if len(t.rows) == 0 {
		return nil
	}
	var out []string
	for v := range t.rows[0].env {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// RowCount returns the number of distinct symbolic rows.
func (t *Tracker) RowCount() int { return len(t.rows) }

// TotalMult returns the total expected row count (sum of multiplicities).
func (t *Tracker) TotalMult() int {
	n := 0
	for _, r := range t.rows {
		n += r.mult
	}
	return n
}

// ConstantVars returns the variables whose value is identical across all
// rows; predicates built over these hold uniformly.
func (t *Tracker) ConstantVars() map[string]bool {
	out := map[string]bool{}
	if len(t.rows) == 0 {
		return out
	}
	for v, first := range t.rows[0].env {
		constant := true
		for _, r := range t.rows[1:] {
			if !value.Equivalent(r.env[v], first) {
				constant = false
				break
			}
		}
		out[v] = constant
	}
	return out
}

// ConstantVarNames returns, sorted, the variables whose value is
// identical across all rows: Vars filtered by ConstantVars, in one pass
// without the intermediate map.
func (t *Tracker) ConstantVarNames() []string {
	if len(t.rows) == 0 {
		return nil
	}
	out := make([]string, 0, len(t.rows[0].env))
	for v, first := range t.rows[0].env {
		constant := true
		for _, r := range t.rows[1:] {
			if !value.Equivalent(r.env[v], first) {
				constant = false
				break
			}
		}
		if constant {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

func (t *Tracker) ctx(env map[string]value.Value) *eval.Ctx {
	// Field-wise refresh: a struct literal would discard the context's
	// internal scratch buffers along with the env.
	t.ectx.Graph = t.g
	t.ectx.Env = env
	return &t.ectx
}

// Bind adds the same variable bindings to every row (a uniquified MATCH).
func (t *Tracker) Bind(vals map[string]value.Value) {
	for i := range t.rows {
		for k, v := range vals {
			t.rows[i].env[k] = v
		}
	}
}

// Check verifies the expression evaluates without error in every row.
func (t *Tracker) Check(e ast.Expr) error {
	for _, r := range t.rows {
		if _, err := eval.Eval(t.ctx(r.env), e); err != nil {
			return err
		}
	}
	return nil
}

// HoldsEverywhere reports whether the predicate is TriTrue in every row.
func (t *Tracker) HoldsEverywhere(e ast.Expr) (bool, error) {
	for _, r := range t.rows {
		tr, err := eval.EvalPredicate(t.ctx(r.env), e)
		if err != nil {
			return false, err
		}
		if tr != value.TriTrue {
			return false, nil
		}
	}
	return true, nil
}

// EvalConstant evaluates the expression in the first row; callers use it
// only for expressions over constant variables.
func (t *Tracker) EvalConstant(e ast.Expr) (value.Value, error) {
	if len(t.rows) == 0 {
		return value.Null, fmt.Errorf("no rows")
	}
	return eval.Eval(t.ctx(t.rows[0].env), e)
}

// Unwind models UNWIND expr AS alias: each row branches into one row per
// list element.
func (t *Tracker) Unwind(alias string, listExpr ast.Expr) error {
	var out []symRow
	for _, r := range t.rows {
		v, err := eval.Eval(t.ctx(r.env), listExpr)
		if err != nil {
			return err
		}
		switch v.Kind() {
		case value.KindNull:
			// no rows
		case value.KindList:
			for _, el := range v.AsList() {
				env := cloneEnv(r.env)
				env[alias] = el
				out = append(out, symRow{env: env, mult: r.mult})
			}
		default:
			return fmt.Errorf("UNWIND of non-list %s", v.Kind())
		}
	}
	t.rows = out
	return nil
}

// ProjItem is one projection item the tracker applies.
type ProjItem struct {
	Name string
	Expr ast.Expr
}

// Project models WITH/RETURN: evaluate the items per row, then merge
// identical rows (multiplicity 1 each under DISTINCT, summed otherwise).
func (t *Tracker) Project(items []ProjItem, distinct bool) error {
	merged := map[string]int{} // row key -> index into out
	var out []symRow
	for _, r := range t.rows {
		env := make(map[string]value.Value, len(items))
		var key strings.Builder
		for _, it := range items {
			v, err := eval.Eval(t.ctx(r.env), it.Expr)
			if err != nil {
				return err
			}
			env[it.Name] = v
			v.AppendKey(&key)
			key.WriteByte('|')
		}
		k := key.String()
		if idx, ok := merged[k]; ok {
			if distinct {
				// already present; DISTINCT keeps one copy
			} else {
				out[idx].mult += r.mult
			}
			continue
		}
		merged[k] = len(out)
		m := r.mult
		if distinct {
			m = 1
		}
		out = append(out, symRow{env: env, mult: m})
	}
	t.rows = out
	return nil
}

// Filter models a WHERE subclause over the current rows.
func (t *Tracker) Filter(pred ast.Expr) error {
	var out []symRow
	for _, r := range t.rows {
		tr, err := eval.EvalPredicate(t.ctx(r.env), pred)
		if err != nil {
			return err
		}
		if tr == value.TriTrue {
			out = append(out, r)
		}
	}
	t.rows = out
	return nil
}

// Limit models LIMIT k. It is only well-defined when at most one distinct
// row exists (otherwise which rows survive depends on engine ordering);
// the synthesizer only emits LIMIT in that situation.
func (t *Tracker) Limit(k int) error {
	if len(t.rows) > 1 {
		return fmt.Errorf("LIMIT over %d distinct rows is order-dependent", len(t.rows))
	}
	if len(t.rows) == 1 && t.rows[0].mult > k {
		t.rows[0].mult = k
	}
	return nil
}

// Skip models SKIP k under the same single-distinct-row restriction.
func (t *Tracker) Skip(k int) error {
	if len(t.rows) > 1 {
		return fmt.Errorf("SKIP over %d distinct rows is order-dependent", len(t.rows))
	}
	if len(t.rows) == 1 {
		t.rows[0].mult -= k
		if t.rows[0].mult <= 0 {
			t.rows = nil
		}
	}
	return nil
}

// Result materializes the expected result over the given output columns.
func (t *Tracker) Result(cols []string) *engine.Result {
	res := &engine.Result{Columns: append([]string(nil), cols...)}
	for _, r := range t.rows {
		vals := make([]value.Value, len(cols))
		for i, c := range cols {
			vals[i] = r.env[c]
		}
		for k := 0; k < r.mult; k++ {
			res.Rows = append(res.Rows, vals)
		}
	}
	return res
}

// Clone deep-copies the tracker (used by UNION synthesis).
func (t *Tracker) Clone() *Tracker {
	out := &Tracker{g: t.g, rows: make([]symRow, len(t.rows))}
	for i, r := range t.rows {
		out.rows[i] = symRow{env: cloneEnv(r.env), mult: r.mult}
	}
	return out
}

func cloneEnv(env map[string]value.Value) map[string]value.Value {
	out := make(map[string]value.Value, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}
