package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"gqs/internal/engine"
	"gqs/internal/graph"
)

// refTarget is an engine-backed target: the reference engine passes every
// synthesized query, so shard stats depend only on the shard seeds.
type refTarget struct {
	eng    *engine.Engine
	closed *atomic.Int64
}

func newRefTarget(closed *atomic.Int64) *refTarget {
	return &refTarget{eng: engine.NewReference(), closed: closed}
}

func (t *refTarget) Name() string { return "reference" }
func (t *refTarget) Reset(g *graph.Graph, s *graph.Schema) error {
	t.eng.LoadGraph(g, s)
	return nil
}
func (t *refTarget) Execute(q string) (*engine.Result, error) { return t.eng.Execute(q) }
func (t *refTarget) ExecuteCtx(ctx context.Context, q string) (*engine.Result, error) {
	return t.eng.ExecuteCtx(ctx, q)
}
func (t *refTarget) RelUniqueness() bool    { return true }
func (t *refTarget) ProvidesDBLabels() bool { return true }
func (t *refTarget) Close() error {
	if t.closed != nil {
		t.closed.Add(1)
	}
	return nil
}

func shardTestConfig() ParallelConfig {
	return ParallelConfig{
		Iterations: 6,
		Runner: RunnerConfig{
			Seed:            11,
			Graph:           graph.GenConfig{MaxNodes: 6, MaxRels: 12},
			Synth:           DefaultConfig(),
			QueriesPerGraph: 3,
			QueriesPerGT:    1,
		},
	}
}

// scrub zeroes the wall-clock-dependent fields so shard stats compare
// across runs.
func scrub(s Stats) Stats {
	s.Elapsed = 0
	s.Robust.Downtime = 0
	return s
}

func TestShardSeed(t *testing.T) {
	if ShardSeed(7, 3) != ShardSeed(7, 3) {
		t.Fatal("ShardSeed must be deterministic")
	}
	seen := map[int64]bool{}
	for shard := 0; shard < 64; shard++ {
		s := ShardSeed(1, shard)
		if seen[s] {
			t.Fatalf("shard %d reuses another shard's seed", shard)
		}
		seen[s] = true
	}
	if ShardSeed(1, 0) == ShardSeed(2, 0) {
		t.Fatal("different campaign seeds must shard differently")
	}
}

func TestRunParallelDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *ParallelStats {
		cfg := shardTestConfig()
		cfg.Workers = workers
		return RunParallel(cfg, func(int) (Target, error) { return newRefTarget(nil), nil }, nil)
	}
	one, four := run(1), run(4)
	if len(one.Shards) != len(four.Shards) {
		t.Fatalf("shard counts differ: %d vs %d", len(one.Shards), len(four.Shards))
	}
	for i := range one.Shards {
		a, b := scrub(one.Shards[i].Stats), scrub(four.Shards[i].Stats)
		if a != b {
			t.Errorf("shard %d stats differ across worker counts:\n  workers=1: %+v\n  workers=4: %+v", i, a, b)
		}
	}
	if scrub(one.Stats) != scrub(four.Stats) {
		t.Errorf("merged stats differ: %+v vs %+v", scrub(one.Stats), scrub(four.Stats))
	}
	if one.Stats.Queries == 0 {
		t.Fatal("campaign executed no queries")
	}
}

func TestRunParallelMergesShardTotals(t *testing.T) {
	var closed atomic.Int64
	cfg := shardTestConfig()
	cfg.Workers = 3
	ps := RunParallel(cfg, func(int) (Target, error) { return newRefTarget(&closed), nil }, nil)
	var sum Stats
	for _, sh := range ps.Shards {
		sum.Add(sh.Stats)
	}
	if sum != ps.Stats {
		t.Errorf("merged stats are not the shard sum: %+v vs %+v", ps.Stats, sum)
	}
	if got := closed.Load(); got != int64(cfg.Iterations) {
		t.Errorf("closed %d targets, want one per shard (%d)", got, cfg.Iterations)
	}
	if ps.Workers != 3 {
		t.Errorf("Workers = %d, want 3", ps.Workers)
	}
}

func TestRunParallelFactoryError(t *testing.T) {
	cfg := shardTestConfig()
	cfg.Workers = 2
	ps := RunParallel(cfg, func(int) (Target, error) { return nil, errors.New("refused") }, nil)
	if got := ps.Robust.FailedIterations; got != cfg.Iterations {
		t.Fatalf("FailedIterations = %d, want %d (one per shard, campaign survives)", got, cfg.Iterations)
	}
	if ps.Queries != 0 {
		t.Fatalf("no target, yet %d queries ran", ps.Queries)
	}
}

// TestRunParallelObserver checks the observer contract — every test case
// is reported with its shard index, concurrently across shards — and,
// under -race, that concurrent shards against the shared function and
// fault catalogs are clean.
func TestRunParallelObserver(t *testing.T) {
	cfg := shardTestConfig()
	cfg.Workers = 4
	var calls atomic.Int64
	perShard := make([]int, cfg.Iterations)
	ps := RunParallel(cfg, func(int) (Target, error) { return newRefTarget(nil), nil },
		func(shard int, target Target, tc *TestCase) {
			if shard < 0 || shard >= cfg.Iterations {
				t.Errorf("observer got shard %d out of range", shard)
				return
			}
			if target == nil || tc == nil {
				t.Error("observer got nil target or test case")
				return
			}
			perShard[shard]++ // shard slots are disjoint; no lock needed
			calls.Add(1)
		})
	if got := calls.Load(); got != int64(ps.Queries) {
		t.Errorf("observer saw %d cases, stats count %d", got, ps.Queries)
	}
	for i, n := range perShard {
		if n == 0 {
			t.Errorf("shard %d reported no test cases", i)
		}
	}
}

func TestRunParallelZeroIterations(t *testing.T) {
	cfg := shardTestConfig()
	cfg.Iterations = 0
	ps := RunParallel(cfg, func(int) (Target, error) { return newRefTarget(nil), nil }, nil)
	if len(ps.Shards) != 0 || ps.Queries != 0 {
		t.Fatalf("zero iterations must be a no-op, got %+v", ps.Stats)
	}
}
