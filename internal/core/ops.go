// Package core implements GQS (Graph Query Synthesis), the paper's
// primary contribution: ground-truth-based synthesis of complex Cypher
// queries for logic-bug testing of graph databases.
//
// The package follows the paper's structure:
//
//   - ground truth selection (§3.1 step ②) — truth.go
//   - paired add/remove operation planning (§3.2, Table 1) — ops.go
//   - DAG-based stepwise scheduling (§3.3, Algorithm 1) — schedule.go
//   - pattern mutation and predicate construction (§3.4) — pattern.go,
//     predicate.go
//   - branching/nested expression generation (§3.5, Algorithm 2) — expr.go
//   - clause synthesis and query assembly — synth.go
//   - the expected-result tracker and test oracle (§3.1 step ④) —
//     state.go, oracle.go
//   - the testing loop (§3.1) — runner.go
package core

import (
	"fmt"
	"strconv"

	"gqs/internal/graph"
)

// OpKind identifies one of the paired operations of Table 1.
type OpKind int

// The operation kinds. Essential operations (§3.2 category i) introduce
// or access the ground-truth properties; supplementary operations
// (category ii) add unrelated elements, aliases, and lists, each paired
// with a removal.
const (
	OpAddElem     OpKind = iota // E+: introduce a node or relationship ((OPTIONAL) MATCH)
	OpRemoveElem                // E-: drop the element from the projection (WITH/RETURN)
	OpAccessProp                // (E,p)+: bind element.property to an alias (WITH/RETURN)
	OpAddAlias                  // A+: bind an expression to an alias (WITH/RETURN)
	OpRemoveAlias               // A-: drop the alias (WITH/RETURN)
	OpExpandList                // L+: UNWIND a list into rows
	OpTruncList                 // L-: truncate the expansion (WITH/RETURN + DISTINCT/WHERE/LIMIT)
)

// ClauseKind is the clause family an operation must be scheduled into,
// per the Table 1 mapping.
type ClauseKind int

// Clause families.
const (
	ClauseMatch      ClauseKind = iota // MATCH / OPTIONAL MATCH
	ClauseUnwind                       // UNWIND
	ClauseProjection                   // WITH / RETURN
)

func (k ClauseKind) String() string {
	switch k {
	case ClauseMatch:
		return "MATCH"
	case ClauseUnwind:
		return "UNWIND"
	case ClauseProjection:
		return "WITH"
	default:
		return "?"
	}
}

// ClauseOf returns the clause family that can host an operation kind
// (Table 1).
func ClauseOf(k OpKind) ClauseKind {
	switch k {
	case OpAddElem:
		return ClauseMatch
	case OpExpandList:
		return ClauseUnwind
	default:
		return ClauseProjection
	}
}

// seqName renders the sequential nN/rN/aN variable names of plan and
// synthesis. Every query draws from the same first few dozen indices, so
// those come from a precomputed table instead of fmt.
const seqNameCached = 48

var seqNameTab = func() (t struct{ n, r, a [seqNameCached]string }) {
	for i := 0; i < seqNameCached; i++ {
		d := strconv.Itoa(i)
		t.n[i], t.r[i], t.a[i] = "n"+d, "r"+d, "a"+d
	}
	return
}()

func seqName(prefix byte, i int) string {
	if i >= 0 && i < seqNameCached {
		switch prefix {
		case 'n':
			return seqNameTab.n[i]
		case 'r':
			return seqNameTab.r[i]
		case 'a':
			return seqNameTab.a[i]
		}
	}
	return string(prefix) + strconv.Itoa(i)
}

// Operation is one node of the scheduling DAG.
type Operation struct {
	Kind OpKind
	// Var is the query variable the operation concerns: the pattern
	// variable for E+/E-, the alias for A+/A-/(E,p)+, and the UNWIND
	// alias for L+/L-.
	Var string
	// Element identifies the graph element for E+/E-/(E,p)+.
	Element graph.ID
	IsRel   bool
	// Prop is the property name for (E,p)+.
	Prop string
	// Essential marks category (i) operations: those materializing the
	// expected result set.
	Essential bool

	// strong and weak outgoing constraint edges (this ≺ other, this ⪯ other).
	// Most operations carry only one or two edges, so the slices start
	// out backed by the inline buffers below and only touch the heap
	// when an operation accumulates more constraints than that.
	strong []*Operation
	weak   []*Operation

	strongBuf [2]*Operation
	weakBuf   [2]*Operation
}

func (o *Operation) String() string {
	switch o.Kind {
	case OpAddElem:
		return o.Var + "+"
	case OpRemoveElem:
		return o.Var + "-"
	case OpAccessProp:
		return fmt.Sprintf("(%s.%s)+", elemVarLabel(o), o.Prop)
	case OpAddAlias:
		return o.Var + "+"
	case OpRemoveAlias:
		return o.Var + "-"
	case OpExpandList:
		return o.Var + "+"
	case OpTruncList:
		return o.Var + "-"
	default:
		return "?"
	}
}

func elemVarLabel(o *Operation) string {
	if o.IsRel {
		return fmt.Sprintf("r#%d", o.Element)
	}
	return fmt.Sprintf("n#%d", o.Element)
}

// Clause returns the clause family hosting this operation.
func (o *Operation) Clause() ClauseKind { return ClauseOf(o.Kind) }

// Before records a strong constraint o ≺ other.
func (o *Operation) Before(other *Operation) {
	if o.strong == nil {
		o.strong = o.strongBuf[:0]
	}
	o.strong = append(o.strong, other)
}

// WeakBefore records a weak constraint o ⪯ other: other may be scheduled
// in the same step or later (§3.3).
func (o *Operation) WeakBefore(other *Operation) {
	if o.weak == nil {
		o.weak = o.weakBuf[:0]
	}
	o.weak = append(o.weak, other)
}
