package core

import (
	"math/rand"
	"sort"

	"gqs/internal/graph"
	"gqs/internal/value"
)

// GTEntry is one selected property of the expected result set: the
// property key ⟨e, p⟩, its value in the generated graph (the ground
// truth), and the output alias the synthesized query binds it to.
type GTEntry struct {
	Key   graph.PropertyKey
	Value value.Value
	Alias string
}

// GroundTruth is the expected result set of §3.1 step ②.
type GroundTruth struct {
	Entries []GTEntry
}

// elemRef identifies a graph element.
type elemRef struct {
	id    graph.ID
	isRel bool
}

// Plan is the full operation plan for one query: the ground truth, the
// operations with their constraint DAG, and the variable naming.
type Plan struct {
	GT      *GroundTruth
	Ops     []*Operation
	ElemVar map[elemRef]string // element -> pattern variable
	// listExprs records, for each L+ alias, how many list items to
	// synthesize (the expressions themselves are built at synthesis time
	// from in-scope variables).
	ListSizes map[string]int
	// aliasSeq continues the aN counter for synthesis-time aliases;
	// NodeSeq and RelSeq continue the nN/rN counters for helper pattern
	// variables introduced during encoding.
	aliasSeq int
	NodeSeq  int
	RelSeq   int
}

// nextAlias returns a fresh aN alias name.
func (p *Plan) nextAlias() string {
	a := seqName('a', p.aliasSeq)
	p.aliasSeq++
	return a
}

// PlanConfig bounds the plan size.
type PlanConfig struct {
	MaxResultSet  int // maximum ground-truth entries (paper: 6)
	MaxExtraElems int // supplementary elements
	MaxAliases    int // supplementary aliases
	MaxLists      int // supplementary list expansions
}

// DefaultPlanConfig mirrors the paper's setup (§5.1).
func DefaultPlanConfig() PlanConfig {
	return PlanConfig{MaxResultSet: 6, MaxExtraElems: 7, MaxAliases: 2, MaxLists: 2}
}

// gtEnumLimit bounds the full property enumeration below: above it
// (bulk-generated graphs) SelectGroundTruth switches to element
// sampling instead of collecting and sorting every property key of the
// graph, which would be O(graph) per synthesized query. Campaign-sized
// graphs stay far under the limit, so the default path's draw schedule
// — and the seed campaign's bug-report digest — is byte-identical.
const gtEnumLimit = 4096

// SelectGroundTruth randomly selects properties from graph elements,
// forming the expected result set (§3.1 step ②).
func SelectGroundTruth(r *rand.Rand, g *graph.Graph, maxEntries int) *GroundTruth {
	if maxEntries < 1 {
		maxEntries = 1
	}
	if g.NumNodes()+g.NumRels() > gtEnumLimit {
		return selectGroundTruthSampled(r, g, maxEntries)
	}
	var keys []graph.PropertyKey
	for _, id := range g.NodeIDs() {
		for name := range g.Node(id).Props {
			keys = append(keys, graph.PropertyKey{Element: id, Name: name})
		}
	}
	for _, id := range g.RelIDs() {
		for name := range g.Rel(id).Props {
			keys = append(keys, graph.PropertyKey{Element: id, IsRel: true, Name: name})
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Element != keys[j].Element {
			return keys[i].Element < keys[j].Element
		}
		return keys[i].Name < keys[j].Name
	})
	n := 1 + r.Intn(maxEntries)
	if n > len(keys) {
		n = len(keys)
	}
	gt := &GroundTruth{}
	perm := r.Perm(len(keys))
	for i := 0; i < n; i++ {
		k := keys[perm[i]]
		v, _ := g.Lookup(k)
		gt.Entries = append(gt.Entries, GTEntry{Key: k, Value: v})
	}
	return gt
}

// selectGroundTruthSampled is the large-graph path: draw elements
// uniformly and one property per drawn element, rejecting duplicate
// keys, in O(maxEntries) instead of O(graph). Deterministic for a
// given rand source like the enumerating path, so checkpoint replay
// reproduces the same draws.
func selectGroundTruthSampled(r *rand.Rand, g *graph.Graph, maxEntries int) *GroundTruth {
	nodeIDs, relIDs := g.NodeIDs(), g.RelIDs()
	n := 1 + r.Intn(maxEntries)
	gt := &GroundTruth{}
	seen := make(map[graph.PropertyKey]bool, n)
	var names []string
	for len(gt.Entries) < n {
		var k graph.PropertyKey
		var props map[string]value.Value
		if i := r.Intn(len(nodeIDs) + len(relIDs)); i < len(nodeIDs) {
			id := nodeIDs[i]
			k = graph.PropertyKey{Element: id}
			props = g.Node(id).Props
		} else {
			id := relIDs[i-len(nodeIDs)]
			k = graph.PropertyKey{Element: id, IsRel: true}
			props = g.Rel(id).Props
		}
		names = names[:0]
		for name := range props {
			names = append(names, name)
		}
		if len(names) == 0 {
			continue // prop-less element (bulk rels); redraw
		}
		sort.Strings(names) // map order is random; the draw must not be
		k.Name = names[r.Intn(len(names))]
		if seen[k] {
			continue // duplicate ⟨e,p⟩: with >gtEnumLimit elements and
			// n ≤ maxEntries this retry terminates almost immediately
		}
		seen[k] = true
		v, _ := g.Lookup(k)
		gt.Entries = append(gt.Entries, GTEntry{Key: k, Value: v})
	}
	return gt
}

// BuildPlan turns a ground truth into the operation DAG of §3.2–3.3:
// essential operations for each expected property (E+ ≺ (E,p)+ ⪯ E-) and
// random supplementary operations, each with its paired removal.
func BuildPlan(r *rand.Rand, g *graph.Graph, gt *GroundTruth, cfg PlanConfig) *Plan {
	p := &Plan{GT: gt, ElemVar: map[elemRef]string{}, ListSizes: map[string]int{}}
	nodeSeq, relSeq := 0, 0
	varFor := func(ref elemRef) string {
		if v, ok := p.ElemVar[ref]; ok {
			return v
		}
		var v string
		if ref.isRel {
			v = seqName('r', relSeq)
			relSeq++
		} else {
			v = seqName('n', nodeSeq)
			nodeSeq++
		}
		p.ElemVar[ref] = v
		return v
	}

	// Essential operations (category i).
	adds := map[elemRef]*Operation{}
	removes := map[elemRef]*Operation{}
	addElem := func(ref elemRef) (*Operation, *Operation) {
		if op, ok := adds[ref]; ok {
			return op, removes[ref]
		}
		v := varFor(ref)
		add := &Operation{Kind: OpAddElem, Var: v, Element: ref.id, IsRel: ref.isRel}
		rem := &Operation{Kind: OpRemoveElem, Var: v, Element: ref.id, IsRel: ref.isRel}
		adds[ref], removes[ref] = add, rem
		p.Ops = append(p.Ops, add, rem)
		return add, rem
	}
	for i := range gt.Entries {
		e := &gt.Entries[i]
		ref := elemRef{id: e.Key.Element, isRel: e.Key.IsRel}
		add, rem := addElem(ref)
		add.Essential, rem.Essential = true, true
		e.Alias = p.nextAlias()
		access := &Operation{
			Kind: OpAccessProp, Var: e.Alias,
			Element: e.Key.Element, IsRel: e.Key.IsRel, Prop: e.Key.Name,
			Essential: true,
		}
		p.Ops = append(p.Ops, access)
		add.Before(access)
		access.WeakBefore(rem)
	}

	// Supplementary operations (category ii).
	nodeIDs := g.NodeIDs()
	relIDs := g.RelIDs()
	randomRef := func() (elemRef, bool) {
		pickRel := len(relIDs) > 0 && r.Intn(3) == 0
		if pickRel {
			return elemRef{id: relIDs[r.Intn(len(relIDs))], isRel: true}, true
		}
		if len(nodeIDs) == 0 {
			return elemRef{}, false
		}
		return elemRef{id: nodeIDs[r.Intn(len(nodeIDs))]}, true
	}

	// Extra elements.
	for i := 0; i < r.Intn(cfg.MaxExtraElems+1); i++ {
		ref, ok := randomRef()
		if !ok {
			break
		}
		if _, dup := adds[ref]; dup {
			continue
		}
		add, rem := addElem(ref)
		add.Before(rem)
	}

	// Supplementary aliases. Most are anchored on an element that must be
	// in scope when the alias is created (N+ ≺ a+ ⪯ N-, a+ ≺ a-); some
	// are pure expressions with no anchor.
	for i := 0; i < r.Intn(cfg.MaxAliases+1); i++ {
		alias := p.nextAlias()
		aAdd := &Operation{Kind: OpAddAlias, Var: alias, Element: -1}
		aRem := &Operation{Kind: OpRemoveAlias, Var: alias}
		if r.Intn(100) < 70 {
			ref, ok := randomRef()
			if ok {
				add, rem := addElem(ref)
				aAdd.Element, aAdd.IsRel = ref.id, ref.isRel
				add.Before(aAdd)
				aAdd.WeakBefore(rem)
			}
		}
		p.Ops = append(p.Ops, aAdd, aRem)
		aAdd.Before(aRem)
	}

	// Supplementary list expansions (L+ ≺ L-). Anchored lists reference
	// their element; unanchored ones are constant lists, which lets the
	// scheduler place the UNWIND before the first MATCH — the Figure 17
	// query shape.
	for i := 0; i < r.Intn(cfg.MaxLists+1); i++ {
		alias := p.nextAlias()
		lAdd := &Operation{Kind: OpExpandList, Var: alias, Element: -1}
		lRem := &Operation{Kind: OpTruncList, Var: alias}
		if r.Intn(100) < 40 {
			ref, ok := randomRef()
			if ok {
				add, rem := addElem(ref)
				lAdd.Element, lAdd.IsRel = ref.id, ref.isRel
				add.Before(lAdd)
				lAdd.WeakBefore(rem)
			}
		}
		p.Ops = append(p.Ops, lAdd, lRem)
		p.ListSizes[alias] = 1 + r.Intn(3)
		lAdd.Before(lRem)
	}

	p.NodeSeq, p.RelSeq = nodeSeq, relSeq
	return p
}

// GTElements returns the distinct elements referenced by the ground truth.
func (gt *GroundTruth) GTElements() []graph.PropertyKey {
	seen := map[elemRef]bool{}
	var out []graph.PropertyKey
	for _, e := range gt.Entries {
		ref := elemRef{id: e.Key.Element, isRel: e.Key.IsRel}
		if !seen[ref] {
			seen[ref] = true
			out = append(out, e.Key)
		}
	}
	return out
}

// ExpectedColumns returns the output aliases in entry order.
func (gt *GroundTruth) ExpectedColumns() []string {
	cols := make([]string, len(gt.Entries))
	for i, e := range gt.Entries {
		cols[i] = e.Alias
	}
	return cols
}
