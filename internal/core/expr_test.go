package core

import (
	"math/rand"
	"testing"

	"gqs/internal/cypher/ast"
	"gqs/internal/eval"
	"gqs/internal/graph"
	"gqs/internal/value"
)

func newTestSynth(seed int64) (*Synthesizer, *rand.Rand) {
	r := rand.New(rand.NewSource(seed))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 10, MaxRels: 40})
	syn := NewSynthesizer(r, g, schema, DefaultConfig())
	syn.plan = &Plan{ElemVar: map[elemRef]string{}}
	syn.tracker = NewTracker(g)
	syn.elemScope = map[string]int64{}
	return syn, r
}

// TestComplexifyAccessInvariant checks Algorithm 2's contract: the nested
// expression evaluates to the recorded value for the intended element and
// to a different value for every competitor, at every nesting depth.
func TestComplexifyAccessInvariant(t *testing.T) {
	syn, r := newTestSynth(1)
	mapFor := func(v value.Value) value.Value {
		return value.Map(map[string]value.Value{"id": v})
	}
	for trial := 0; trial < 2000; trial++ {
		intended := value.Int(int64(r.Intn(60)))
		var comps []value.Value
		for i := 0; i < r.Intn(5); i++ {
			c := value.Int(int64(r.Intn(60)))
			if !value.Equivalent(c, intended) {
				comps = append(comps, c)
			}
		}
		nested, v1 := syn.complexifyAccess("x", "id", intended, comps, 1+r.Intn(6))
		got, err := eval.Eval(&eval.Ctx{Graph: syn.g, Env: map[string]value.Value{"x": mapFor(intended)}}, nested)
		if err != nil {
			t.Fatalf("trial %d: eval error %v on %s", trial, err, ast.ExprString(nested))
		}
		if !value.Equivalent(got, v1) {
			t.Fatalf("trial %d: value drift: intended=%v expr=%s got=%v v1=%v",
				trial, intended, ast.ExprString(nested), got, v1)
		}
		for _, c := range comps {
			gc, err := eval.Eval(&eval.Ctx{Graph: syn.g, Env: map[string]value.Value{"x": mapFor(c)}}, nested)
			if err == nil && value.Equivalent(gc, v1) {
				t.Fatalf("trial %d: competitor %v not distinguished by %s", trial, c, ast.ExprString(nested))
			}
		}
	}
}

// TestComplexifyStringProperty exercises Algorithm 2 over string-typed
// properties.
func TestComplexifyStringProperty(t *testing.T) {
	syn, r := newTestSynth(2)
	for trial := 0; trial < 500; trial++ {
		intended := value.Str(randString(r, 3+r.Intn(6)))
		comps := []value.Value{value.Str(randString(r, 3+r.Intn(6)))}
		if value.Equivalent(comps[0], intended) {
			continue
		}
		nested, v1 := syn.complexifyAccess("x", "id", intended, comps, 4)
		got, err := syn.evalConst(nested, "x", wrapAccessValue("x", "id", intended))
		if err != nil || !value.Equivalent(got, v1) {
			t.Fatalf("trial %d: %v / %v vs %v (%s)", trial, err, got, v1, ast.ExprString(nested))
		}
	}
}

// TestTruePredicateHolds verifies that dependency predicates are true in
// every symbolic row.
func TestTruePredicateHolds(t *testing.T) {
	syn, r := newTestSynth(3)
	// Bind a couple of variables to real elements.
	ids := syn.g.NodeIDs()
	syn.elemScope["n0"] = ids[0]
	syn.elemScope["n1"] = ids[1]
	syn.tracker.Bind(map[string]value.Value{
		"n0": value.Node(ids[0]),
		"n1": value.Node(ids[1]),
		"a0": value.Int(42),
	})
	for trial := 0; trial < 300; trial++ {
		p := syn.truePredicate(1 + r.Intn(5))
		ok, err := syn.tracker.HoldsEverywhere(p)
		if err != nil || !ok {
			t.Fatalf("trial %d: predicate %s does not hold (%v)", trial, ast.ExprString(p), err)
		}
	}
}

// TestRandomScalarExprEvaluates verifies generated expressions never fail
// to evaluate in the current state.
func TestRandomScalarExprEvaluates(t *testing.T) {
	syn, r := newTestSynth(4)
	ids := syn.g.NodeIDs()
	syn.elemScope["n0"] = ids[0]
	syn.tracker.Bind(map[string]value.Value{"n0": value.Node(ids[0])})
	for trial := 0; trial < 500; trial++ {
		e := syn.randomScalarExpr(1 + r.Intn(6))
		if err := syn.tracker.Check(e); err != nil {
			t.Fatalf("trial %d: %s: %v", trial, ast.ExprString(e), err)
		}
	}
}

// TestPinPredicateSelectsIntended verifies that a rendered pin predicate
// is true for the intended element and false for all competitors.
func TestPinPredicateSelectsIntended(t *testing.T) {
	syn, r := newTestSynth(5)
	rels := syn.g.RelIDs()
	for trial := 0; trial < 200; trial++ {
		intended := rels[r.Intn(len(rels))]
		var comps []elemRef
		for _, id := range rels {
			if id != intended && r.Intn(2) == 0 {
				comps = append(comps, elemRef{id: id, isRel: true})
			}
		}
		p := pin{varName: "r9", elem: elemRef{id: intended, isRel: true}, competitors: comps}
		pred := syn.pinPredicate(p, 5)
		check := func(id int64) value.Tri {
			tr, err := eval.EvalPredicate(&eval.Ctx{
				Graph: syn.g,
				Env:   map[string]value.Value{"r9": value.Rel(id)},
			}, pred)
			if err != nil {
				t.Fatalf("trial %d: %v on %s", trial, err, ast.ExprString(pred))
			}
			return tr
		}
		if check(intended) != value.TriTrue {
			t.Fatalf("trial %d: pin predicate false for intended: %s", trial, ast.ExprString(pred))
		}
		for _, c := range comps {
			if check(c.id) == value.TriTrue {
				t.Fatalf("trial %d: pin predicate true for competitor %d: %s", trial, c.id, ast.ExprString(pred))
			}
		}
	}
}
