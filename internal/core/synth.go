package core

import (
	"fmt"
	"math/rand"
	"strings"

	"gqs/internal/cypher/ast"
	"gqs/internal/engine"
	"gqs/internal/eval"
	"gqs/internal/graph"
	"gqs/internal/value"
)

// Config tunes the synthesizer. The defaults reproduce the paper's
// experimental setup (§5.1): up to 9 synthesis steps and an expected
// result set of at most 6 properties.
type Config struct {
	MaxSteps  int
	Plan      PlanConfig
	ExprDepth int // nesting depth bound for §3.5 expressions

	// Target-dialect awareness (§4, "Handling GDB-specific Cypher
	// Variations"): without relationship uniqueness GQS appends pairwise
	// `<>` predicates; with db.labels() it may prepend a CALL prologue.
	RelUniqueness    bool
	ProvidesDBLabels bool

	OptionalMatchPct int // % of MATCH steps synthesized as OPTIONAL MATCH
	UnionPct         int // % of queries extended with a UNION branch
	CallPct          int // % of queries prefixed with a CALL prologue
	TruePredPct      int // % chance of each extra dependency predicate

	// Ablations (§4 of DESIGN.md).
	DisableMutation     bool // no pattern mutation against history
	DisableComplexExprs bool // plain `var.id = c` pins, no nesting
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		MaxSteps:         9,
		Plan:             DefaultPlanConfig(),
		ExprDepth:        4,
		RelUniqueness:    true,
		ProvidesDBLabels: true,
		OptionalMatchPct: 25,
		UnionPct:         10,
		CallPct:          10,
		TruePredPct:      60,
	}
}

// Synthesized is one synthesized test case: the query, its text, and the
// expected result established before synthesis (the ground truth plus the
// multiplicity the clause pipeline implies).
type Synthesized struct {
	Query    *ast.Query
	Text     string
	Expected *engine.Result
	Steps    int
	GT       *GroundTruth
}

// Synthesizer builds queries for one generated graph.
type Synthesizer struct {
	r      *rand.Rand
	g      *graph.Graph
	schema *graph.Schema
	cfg    Config

	plan      *Plan
	tracker   *Tracker
	history   []*Path
	elemScope map[string]graph.ID

	// constCtx, constEnv, and constWrap are the reusable scratch state of
	// evalConst/wrapAccess: synthesis is single-threaded, and evaluation
	// retains neither the context nor the maps in its result (results
	// only alias the substituted property values, which the caller owns).
	constCtx  eval.Ctx
	constEnv  map[string]value.Value
	constWrap map[string]value.Value
	// tmplScratch is the reusable candidate buffer of complexifyAccess's
	// template filter; the selection only reads the current round's
	// contents, so the backing array carries over between rounds.
	tmplScratch []exprTemplate
}

// NewSynthesizer creates a synthesizer over the generated graph.
func NewSynthesizer(r *rand.Rand, g *graph.Graph, schema *graph.Schema, cfg Config) *Synthesizer {
	if cfg.MaxSteps == 0 {
		cfg = DefaultConfig()
	}
	return &Synthesizer{r: r, g: g, schema: schema, cfg: cfg}
}

func (s *Synthesizer) pct(p int) bool { return s.r.Intn(100) < p }

func (s *Synthesizer) freshVar(prefix string) string {
	if prefix == "r" {
		v := seqName('r', s.plan.RelSeq)
		s.plan.RelSeq++
		return v
	}
	v := seqName('n', s.plan.NodeSeq)
	s.plan.NodeSeq++
	return v
}

// Synthesize builds a complete test query for the ground truth,
// implementing step ③ of the GQS workflow.
func (s *Synthesizer) Synthesize(gt *GroundTruth) (*Synthesized, error) {
	return s.synthesize(gt, true)
}

func (s *Synthesizer) synthesize(gt *GroundTruth, allowUnion bool) (*Synthesized, error) {
	s.plan = BuildPlan(s.r, s.g, gt, s.cfg.Plan)
	steps := Schedule(s.r, s.plan, s.cfg.MaxSteps)
	s.tracker = NewTracker(s.g)
	s.history = nil
	s.elemScope = map[string]graph.ID{}

	var clauses []ast.Clause
	if s.cfg.ProvidesDBLabels && s.pct(s.cfg.CallPct) {
		clauses = append(clauses, s.callPrologue()...)
	}
	for i, step := range steps {
		last := i == len(steps)-1
		var c ast.Clause
		var err error
		switch step.Clause {
		case ClauseMatch:
			c, err = s.synthMatch(step)
		case ClauseUnwind:
			c, err = s.synthUnwind(step)
		case ClauseProjection:
			c, err = s.synthProjection(step, last)
		}
		if err != nil {
			return nil, err
		}
		clauses = append(clauses, c)
	}

	q := &ast.Query{Parts: []*ast.SingleQuery{{Clauses: clauses}}}
	expected := s.tracker.Result(gt.ExpectedColumns())

	if allowUnion && s.pct(s.cfg.UnionPct) {
		second := NewSynthesizer(s.r, s.g, s.schema, s.cfg)
		s2, err := second.synthesize(gt, false)
		if err == nil {
			all := s.r.Intn(2) == 0
			q.Parts = append(q.Parts, s2.Query.Parts...)
			q.All = append(q.All, all)
			expected.Rows = append(expected.Rows, s2.Expected.Rows...)
			if !all {
				expected = dedupeResult(expected)
			}
		}
	}

	return &Synthesized{
		Query:    q,
		Text:     q.String(),
		Expected: expected,
		Steps:    len(steps),
		GT:       gt,
	}, nil
}

func dedupeResult(r *engine.Result) *engine.Result {
	seen := map[string]bool{}
	out := &engine.Result{Columns: r.Columns}
	for i, row := range r.Rows {
		_ = i
		var kb strings.Builder
		for _, v := range row {
			v.AppendKey(&kb)
			kb.WriteByte('|')
		}
		key := kb.String()
		if !seen[key] {
			seen[key] = true
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// callPrologue emits `CALL db.labels() YIELD label WITH DISTINCT true AS
// tN` — the §4 CALL integration. The DISTINCT projection collapses the
// label rows back to the single row the rest of the pipeline expects.
func (s *Synthesizer) callPrologue() []ast.Clause {
	tmp := s.plan.nextAlias()
	return []ast.Clause{
		&ast.CallClause{Procedure: "db.labels", Yield: []string{"label"}},
		&ast.WithClause{Projection: ast.Projection{
			Distinct: true,
			Items:    []*ast.ProjectionItem{{Expr: ast.Lit(value.True), Alias: tmp}},
		}},
	}
}

// synthMatch concretizes a MATCH step: base patterns for the elements to
// introduce, mutation against the pattern history, AST encoding,
// uniquifying predicates, dialect workarounds, and extra dependency
// predicates.
func (s *Synthesizer) synthMatch(step *Step) (ast.Clause, error) {
	var required []elemRef
	for _, o := range step.Ops.OfKind(OpAddElem) {
		required = append(required, elemRef{id: o.Element, isRel: o.IsRel})
	}
	chains := collectChains(s.r, s.g, required)
	if len(chains) == 0 {
		return nil, fmt.Errorf("empty graph: cannot synthesize MATCH")
	}
	if !s.cfg.DisableMutation {
		// Mutate a copy: a cross mutation whose recombined halves clash
		// on shared relationships can drop a chain, so fall back to the
		// unmutated base patterns if any required element is lost.
		if mutated := mutateChains(s.r, clonePaths(chains), s.history); coversAll(mutated, required) {
			chains = mutated
		}
	}
	enc, binding := s.encodeChains(chains, s.elemScope)
	s.history = append(s.history, chains...)

	pins := s.uniquify(enc, s.elemScope, binding)
	var preds []ast.Expr
	for _, p := range pins {
		if s.cfg.DisableComplexExprs {
			id, _ := s.lookupProp(p.elem, "id")
			preds = append(preds, ast.Bin(ast.OpEq, ast.Prop(p.varName, "id"), ast.Lit(id)))
		} else {
			preds = append(preds, s.pinPredicate(p, s.cfg.ExprDepth))
		}
	}
	if !s.cfg.RelUniqueness {
		preds = append(preds, pairwiseDistinct(enc)...)
	}

	// Bind the intended elements in the tracker before generating the
	// dependency predicates, so they can reference this clause's
	// variables too (e.g. Figure 1's second MATCH referencing n2 and n5).
	vals := make(map[string]value.Value, len(binding))
	for v, id := range binding {
		if s.g.Rel(id) != nil {
			vals[v] = value.Rel(id)
		} else {
			vals[v] = value.Node(id)
		}
		s.elemScope[v] = id
	}
	s.tracker.Bind(vals)

	for s.pct(s.cfg.TruePredPct) {
		preds = append(preds, s.truePredicate(s.cfg.ExprDepth))
		if len(preds) > 8 {
			break
		}
	}

	parts := make([]*ast.PatternPart, len(enc))
	for i, ec := range enc {
		parts[i] = ec.part
	}
	return &ast.MatchClause{
		Optional: s.pct(s.cfg.OptionalMatchPct),
		Patterns: parts,
		Where:    ast.And(preds...),
	}, nil
}

// pairwiseDistinct emits the `e1 <> e2` workaround for dialects without
// relationship uniqueness (FalkorDB, Kùzu), as described in §4.
func pairwiseDistinct(enc []*encChain) []ast.Expr {
	var relVars []string
	seen := map[string]bool{}
	for _, ec := range enc {
		for _, rp := range ec.part.Rels {
			if rp.Variable != "" && !seen[rp.Variable] {
				seen[rp.Variable] = true
				relVars = append(relVars, rp.Variable)
			}
		}
	}
	var out []ast.Expr
	for i := 0; i < len(relVars); i++ {
		for j := i + 1; j < len(relVars); j++ {
			out = append(out, ast.Bin(ast.OpNeq, ast.Var(relVars[i]), ast.Var(relVars[j])))
		}
	}
	return out
}

// synthUnwind concretizes an UNWIND step: a literal list whose first item
// references the anchor element and whose remaining items are arbitrary
// evaluable expressions (§3.2's L+ operation).
func (s *Synthesizer) synthUnwind(step *Step) (ast.Clause, error) {
	ops := step.Ops.OfKind(OpExpandList)
	if len(ops) != 1 {
		return nil, fmt.Errorf("UNWIND step must hold exactly one L+ operation, got %d", len(ops))
	}
	op := ops[0]
	size := s.plan.ListSizes[op.Var]
	if size < 1 {
		size = 1 + s.r.Intn(2)
	}
	items := make([]ast.Expr, size)
	for i := range items {
		items[i] = s.randomScalarExpr(s.cfg.ExprDepth / 2)
	}
	// Anchor the first item on the operation's element when its variable
	// is in scope, building a cross-step dependency.
	if v, ok := s.plan.ElemVar[elemRef{id: op.Element, isRel: op.IsRel}]; ok {
		if _, inScope := s.elemScope[v]; inScope {
			if name, ok2 := s.randomPropName(elemRef{id: op.Element, isRel: op.IsRel}); ok2 {
				items[0] = ast.Prop(v, name)
			}
		}
	}
	list := &ast.ListLit{Elems: items}
	if err := s.tracker.Unwind(op.Var, list); err != nil {
		return nil, err
	}
	return &ast.UnwindClause{Expr: list, Alias: op.Var}, nil
}

// synthProjection concretizes a WITH or (when last) the final RETURN.
func (s *Synthesizer) synthProjection(step *Step, last bool) (ast.Clause, error) {
	accessOps := map[string]*Operation{}
	aliasOps := map[string]*Operation{}
	for _, o := range step.Ops {
		switch o.Kind {
		case OpAccessProp:
			accessOps[o.Var] = o
		case OpAddAlias:
			aliasOps[o.Var] = o
		}
	}

	itemExpr := func(v string) (ast.Expr, error) {
		if o, ok := accessOps[v]; ok {
			ref := elemRef{id: o.Element, isRel: o.IsRel}
			ev, ok := s.plan.ElemVar[ref]
			if !ok {
				return nil, fmt.Errorf("property access on unintroduced element %d", o.Element)
			}
			return ast.Prop(ev, o.Prop), nil
		}
		if o, ok := aliasOps[v]; ok {
			if e := s.entityAliasExpr(o); e != nil {
				return e, nil
			}
			return s.randomScalarExpr(s.cfg.ExprDepth / 2), nil
		}
		return ast.Var(v), nil
	}

	var outVars []string
	if last {
		outVars = s.plan.GT.ExpectedColumns()
	} else {
		outVars = step.VarsAfter
	}
	if len(outVars) == 0 {
		// A projection must project something; keep a constant column.
		outVars = []string{s.plan.nextAlias()}
		aliasOps[outVars[0]] = &Operation{Kind: OpAddAlias, Var: outVars[0]}
	}

	items := make([]*ast.ProjectionItem, len(outVars))
	titems := make([]ProjItem, len(outVars))
	for i, v := range outVars {
		e, err := itemExpr(v)
		if err != nil {
			return nil, err
		}
		alias := v
		if ve, isVar := e.(*ast.Variable); isVar && ve.Name == v {
			alias = "" // plain carry: no AS needed
		}
		items[i] = &ast.ProjectionItem{Expr: e, Alias: alias}
		titems[i] = ProjItem{Name: v, Expr: e}
	}

	distinct := step.Ops.Has(OpTruncList) && s.pct(70)
	if !distinct && s.pct(15) {
		distinct = true
	}
	if err := s.tracker.Project(titems, distinct); err != nil {
		return nil, err
	}

	proj := ast.Projection{Distinct: distinct, Items: items}

	// ORDER BY over the projected columns, occasionally (Figure 8 style).
	if s.pct(25) {
		n := 1 + s.r.Intn(2)
		perm := s.r.Perm(len(outVars))
		for _, j := range perm[:min(n, len(outVars))] {
			proj.OrderBy = append(proj.OrderBy, &ast.SortItem{
				Expr: ast.Var(outVars[j]),
				Desc: s.r.Intn(2) == 0,
			})
		}
	}
	// LIMIT is only order-independent when a single distinct row remains.
	if s.tracker.RowCount() <= 1 && s.pct(15) {
		k := 1 + s.r.Intn(3)
		if err := s.tracker.Limit(k); err == nil {
			proj.Limit = ast.Lit(value.Int(int64(k)))
		}
	}

	// Drop element variables that fell out of scope.
	newScope := map[string]graph.ID{}
	for _, v := range outVars {
		if id, ok := s.elemScope[v]; ok {
			newScope[v] = id
		}
	}
	s.elemScope = newScope

	if last {
		return &ast.ReturnClause{Projection: proj}, nil
	}
	w := &ast.WithClause{Projection: proj}
	if s.pct(30) {
		pred := s.truePredicate(s.cfg.ExprDepth / 2)
		w.Where = pred
		if err := s.tracker.Filter(pred); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// entityAliasExpr builds a graph-function alias over the operation's
// anchor element when it is in scope — Figure 1's `endNode(r1) AS a2`
// pattern. It returns nil when no anchor applies, letting the caller fall
// back to a random scalar expression.
func (s *Synthesizer) entityAliasExpr(o *Operation) ast.Expr {
	if o.Element < 0 || s.r.Intn(2) == 0 {
		return nil
	}
	v, ok := s.plan.ElemVar[elemRef{id: o.Element, isRel: o.IsRel}]
	if !ok {
		return nil
	}
	if _, inScope := s.elemScope[v]; !inScope {
		return nil
	}
	if o.IsRel {
		switch s.r.Intn(4) {
		case 0:
			return &ast.FuncCall{Name: "endNode", Args: []ast.Expr{ast.Var(v)}}
		case 1:
			return &ast.FuncCall{Name: "startNode", Args: []ast.Expr{ast.Var(v)}}
		case 2:
			return &ast.FuncCall{Name: "type", Args: []ast.Expr{ast.Var(v)}}
		default:
			return &ast.FuncCall{Name: "id", Args: []ast.Expr{ast.Var(v)}}
		}
	}
	switch s.r.Intn(3) {
	case 0:
		return &ast.FuncCall{Name: "labels", Args: []ast.Expr{ast.Var(v)}}
	case 1:
		return &ast.FuncCall{Name: "id", Args: []ast.Expr{ast.Var(v)}}
	default:
		return &ast.FuncCall{Name: "keys", Args: []ast.Expr{ast.Var(v)}}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
