package core

import (
	"sync/atomic"

	"gqs/internal/graph"
)

// SnapshotShare dedups the per-iteration sealed graph snapshot across
// every executor pass that runs the same logical shards. A sharded
// campaign validates each generated graph against several GDB targets
// in sequential per-target legs, and shard i's graph is identical in
// every leg by construction: the generation draws come first in the
// shard's RNG stream, whose seed depends only on (campaign seed, i).
// Without sharing, each leg re-seals the graph it just generated and
// the engine rebuilds the snapshot's per-schema index cache from
// scratch — len(targets) seals and index builds per shard where one of
// each suffices.
//
// The share holds one slot per logical shard. The first resolver to
// reach shard i seals its freshly generated graph and publishes the
// (graph, schema, snapshot) triple; later resolvers discard their own
// generation result — content-identical by the determinism contract —
// and adopt the published triple. Adopting the *same schema pointer*
// matters: graph.Snapshot caches index builds per (snapshot, schema)
// identity, so sharing the triple makes every later leg's index lookup
// a cache hit.
//
// Slots are published with a CAS and released after ExpectedUses
// resolves, bounding the share's live-graph footprint to the shards
// still in flight once the last leg passes them. Concurrent resolvers
// of the same shard are safe (the CAS loser adopts the winner's triple,
// or re-seals if the slot was already released — identical content
// either way), though the campaign executor never produces that case:
// legs run sequentially and shards within a leg are disjoint.
type SnapshotShare struct {
	uses  int32
	slots []atomic.Pointer[sharedIteration]
}

type sharedIteration struct {
	g      *graph.Graph
	schema *graph.Schema
	snap   *graph.Snapshot
	uses   atomic.Int32
}

// NewSnapshotShare creates a share for a campaign of `iterations`
// logical shards whose every shard will be resolved `expectedUses`
// times (once per target leg). expectedUses ≤ 0 disables slot release
// (slots stay live for the share's lifetime).
func NewSnapshotShare(iterations, expectedUses int) *SnapshotShare {
	if iterations <= 0 {
		iterations = 0
	}
	return &SnapshotShare{
		uses:  int32(expectedUses),
		slots: make([]atomic.Pointer[sharedIteration], iterations),
	}
}

// resolve returns the canonical (graph, schema, snapshot) triple for
// shard, publishing the caller's freshly generated g/schema (sealed) if
// the slot is empty. The caller must have generated g/schema from the
// shard's own RNG stream — the triple is only shareable because that
// makes it content-identical across callers.
func (s *SnapshotShare) resolve(shard int, g *graph.Graph, schema *graph.Schema) (*graph.Graph, *graph.Schema, *graph.Snapshot) {
	if s == nil || shard < 0 || shard >= len(s.slots) {
		return g, schema, g.Seal()
	}
	slot := &s.slots[shard]
	cur := slot.Load()
	if cur == nil {
		fresh := &sharedIteration{g: g, schema: schema, snap: g.Seal()}
		if slot.CompareAndSwap(nil, fresh) {
			cur = fresh
		} else if cur = slot.Load(); cur == nil {
			// Lost the CAS and the winner's slot was already released:
			// fall back to the private seal.
			return fresh.g, fresh.schema, fresh.snap
		}
	}
	if s.uses > 0 && cur.uses.Add(1) >= s.uses {
		slot.Store(nil) // last expected use: free the shard's graph early
	}
	return cur.g, cur.schema, cur.snap
}
