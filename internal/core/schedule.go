package core

import (
	"math/rand"
)

// Step is one synthesis step: the operations assigned to it, the clause
// family it will be synthesized into, and the referenceable variables
// after the step executes (Algorithm 1's Step and Var outputs).
type Step struct {
	Ops    Ops
	Clause ClauseKind
	// VarsBefore and VarsAfter are the referenceable variables at the
	// step boundaries, in introduction order. They drive the cross-step
	// data dependencies of §3.3.
	VarsBefore []string
	VarsAfter  []string
}

// Ops is a list of operations with small helpers.
type Ops []*Operation

// Kinds reports whether any operation has the given kind.
func (os Ops) Has(k OpKind) bool {
	for _, o := range os {
		if o.Kind == k {
			return true
		}
	}
	return false
}

// OfKind returns the operations of the given kind.
func (os Ops) OfKind(k OpKind) Ops {
	var out Ops
	for _, o := range os {
		if o.Kind == k {
			out = append(out, o)
		}
	}
	return out
}

// Schedule distributes the plan's operations across steps, implementing
// Algorithm 1: repeatedly scan the DAG for zero-indegree operations whose
// clause family matches the current step, assign them at random, and
// opportunistically pull in weakly-constrained successors (⪯) whose only
// remaining constraint is satisfied within the step. maxSteps bounds the
// schedule length; once close to the bound the scan stops rejecting
// eligible operations.
func Schedule(r *rand.Rand, plan *Plan, maxSteps int) []*Step {
	if maxSteps < 2 {
		maxSteps = 2
	}
	indeg := map[*Operation]int{}
	assigned := map[*Operation]bool{}
	for _, o := range plan.Ops {
		if _, ok := indeg[o]; !ok {
			indeg[o] = 0
		}
		for _, t := range o.strong {
			indeg[t]++
		}
		for _, t := range o.weak {
			indeg[t]++
		}
	}
	remaining := len(plan.Ops)
	var steps []*Step
	vars := []string{}
	scan := append([]*Operation(nil), plan.Ops...)

	// Hoisted out of the step loop so each closure allocates once per
	// schedule rather than once per step.
	swap := func(i, j int) { scan[i], scan[j] = scan[j], scan[i] }
	align := func(step *Step, o *Operation) bool {
		if len(step.Ops) == 0 {
			return true
		}
		if step.Ops[0].Clause() != o.Clause() {
			return false
		}
		// One UNWIND clause expands exactly one list.
		return o.Clause() != ClauseUnwind
	}
	assign := func(step *Step, o *Operation) {
		step.Ops = append(step.Ops, o)
		assigned[o] = true
		remaining--
	}

	for remaining > 0 {
		// The scan order within a pass is unspecified by Algorithm 1;
		// shuffling it lets any eligible operation open a step — an
		// unanchored UNWIND can precede the first MATCH (Figure 17).
		r.Shuffle(len(scan), swap)
		// refVars returns a fresh slice each step and nothing mutates it
		// in place afterwards, so steps can share it without copying.
		step := &Step{VarsBefore: vars}
		mustPack := len(steps) >= maxSteps-2
		for _, o := range scan {
			if assigned[o] || indeg[o] != 0 || !align(step, o) {
				continue
			}
			if !mustPack && r.Intn(2) == 0 {
				continue
			}
			assign(step, o)
			// Weakly-related successors may join the same step (lines
			// 7-11 of Algorithm 1).
			for _, o2 := range o.weak {
				if !assigned[o2] && indeg[o2] == 1 && align(step, o2) && (mustPack || r.Intn(2) == 0) {
					assign(step, o2)
				}
			}
		}
		if len(step.Ops) == 0 {
			// The random scan kept everything back; force the first
			// eligible operation so the loop terminates.
			for _, o := range scan {
				if !assigned[o] && indeg[o] == 0 {
					assign(step, o)
					break
				}
			}
		}
		// Remove the step from the DAG (line 15).
		for _, o := range step.Ops {
			for _, t := range o.strong {
				indeg[t]--
			}
			for _, t := range o.weak {
				if !assigned[t] {
					indeg[t]--
				}
			}
		}
		step.Clause = step.Ops[0].Clause()
		vars = refVars(vars, step)
		step.VarsAfter = vars
		steps = append(steps, step)
	}
	return normalizeTail(steps)
}

// refVars implements line 14 of Algorithm 1: variables introduced by the
// step become referenceable; removed ones stop being referenceable.
func refVars(prev []string, step *Step) []string {
	var removed map[string]bool
	for _, o := range step.Ops {
		switch o.Kind {
		case OpRemoveElem, OpRemoveAlias, OpTruncList:
			if removed == nil {
				removed = make(map[string]bool, len(step.Ops))
			}
			removed[o.Var] = true
		}
	}
	out := make([]string, 0, len(prev)+len(step.Ops))
	for _, v := range prev {
		if !removed[v] {
			out = append(out, v)
		}
	}
	for _, o := range step.Ops {
		switch o.Kind {
		case OpAddElem, OpAccessProp, OpAddAlias, OpExpandList:
			if !removed[o.Var] && !containsStr(out, o.Var) {
				out = append(out, o.Var)
			}
		}
	}
	return out
}

// normalizeTail guarantees the schedule ends with a projection step (the
// final RETURN). The constraint structure already implies this — every
// add operation has a removal or access downstream in the projection
// family — but a defensive trailing step keeps synthesis simple if a
// future plan shape violates it.
func normalizeTail(steps []*Step) []*Step {
	if len(steps) == 0 {
		return []*Step{{Clause: ClauseProjection}}
	}
	if last := steps[len(steps)-1]; last.Clause != ClauseProjection {
		steps = append(steps, &Step{
			Clause:     ClauseProjection,
			VarsBefore: last.VarsAfter,
			VarsAfter:  last.VarsAfter,
		})
	}
	return steps
}
