package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestRunParallelDeterministicAcrossBatches is the batching half of the
// determinism contract: the work-unit size changes how shards are
// bucketed onto workers, never what any shard computes.
func TestRunParallelDeterministicAcrossBatches(t *testing.T) {
	run := func(batch int) *ParallelStats {
		cfg := shardTestConfig()
		cfg.Workers = 3
		cfg.Batch = batch
		return RunParallel(cfg, func(int) (Target, error) { return newRefTarget(nil), nil }, nil)
	}
	one := run(1)
	for _, batch := range []int{2, 3, 100} { // 100 > Iterations: one unit
		b := run(batch)
		for i := range one.Shards {
			x, y := scrub(one.Shards[i].Stats), scrub(b.Shards[i].Stats)
			if x != y {
				t.Errorf("batch=%d: shard %d stats differ:\n  batch=1: %+v\n  batch=%d: %+v",
					batch, i, x, batch, y)
			}
		}
		if scrub(one.Stats) != scrub(b.Stats) {
			t.Errorf("batch=%d: merged stats differ: %+v vs %+v",
				batch, scrub(one.Stats), scrub(b.Stats))
		}
	}
	if one.Stats.Queries == 0 {
		t.Fatal("campaign executed no queries")
	}
}

// TestParallelThroughputCountsOnlyRan is the resumed-throughput
// regression test: restored work units were another run's work, so they
// must appear in Restored (and the merged stats) but never in Ran, the
// numerator of the live iteration rate.
func TestParallelThroughputCountsOnlyRan(t *testing.T) {
	pcfg := shardTestConfig()
	pcfg.Workers = 2
	pcfg.Batch = 2
	fp := CampaignFingerprint("sharded", "reference", "", pcfg.Workers, pcfg.Batch, pcfg.Iterations, pcfg.Runner)
	factory := func(int) (Target, error) { return newRefTarget(nil), nil }

	path := ckPath(t)
	ck, err := OpenCheckpoint(CheckpointConfig{Path: path, Every: 1}, fp)
	if err != nil {
		t.Fatal(err)
	}
	live := RunCheckpointedParallel(context.Background(), pcfg, "reference", factory, nil, ck, DurableHooks{})
	ck.Close()
	if live.Ran != pcfg.Iterations || live.Restored != 0 {
		t.Fatalf("uninterrupted run: Ran=%d Restored=%d, want %d/0", live.Ran, live.Restored, pcfg.Iterations)
	}
	if live.RanQueries != live.Queries || live.RanQueries == 0 {
		t.Fatalf("uninterrupted run: RanQueries=%d, want Stats.Queries=%d (nonzero)", live.RanQueries, live.Queries)
	}
	if live.IterationsPerSec() <= 0 || live.QueriesPerSec() <= 0 {
		t.Fatalf("live run reports no throughput: %f iters/s, %f queries/s",
			live.IterationsPerSec(), live.QueriesPerSec())
	}

	// A resume of the completed campaign restores every unit and runs
	// nothing: its live throughput is zero even though the merged stats
	// still cover the whole campaign.
	re, err := OpenCheckpoint(CheckpointConfig{Path: path, Every: 1, Resume: true}, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	resumed := RunCheckpointedParallel(context.Background(), pcfg, "reference", factory, nil, re, DurableHooks{})
	if resumed.Ran != 0 || resumed.Restored != pcfg.Iterations {
		t.Fatalf("resumed run: Ran=%d Restored=%d, want 0/%d", resumed.Ran, resumed.Restored, pcfg.Iterations)
	}
	if resumed.RanQueries != 0 {
		t.Fatalf("resumed run claims %d live queries", resumed.RanQueries)
	}
	if resumed.IterationsPerSec() != 0 || resumed.QueriesPerSec() != 0 {
		t.Fatalf("resumed run inflates live throughput: %f iters/s, %f queries/s",
			resumed.IterationsPerSec(), resumed.QueriesPerSec())
	}
	if scrubCk(resumed.Stats) != scrubCk(live.Stats) {
		t.Fatalf("restored merged stats diverge:\n  live:    %+v\n  resumed: %+v",
			scrubCk(live.Stats), scrubCk(resumed.Stats))
	}
}

// TestFactoryFailureNotCheckpointedRetriedOnResume: a transient factory
// error must cost one failed iteration, not the shard — the unit it
// belongs to must stay out of the journal so a resumed campaign retries
// the shard instead of permanently skipping it.
func TestFactoryFailureNotCheckpointedRetriedOnResume(t *testing.T) {
	pcfg := shardTestConfig()
	pcfg.Workers = 1 // deterministic unit order around the failure
	pcfg.Batch = 2
	fp := CampaignFingerprint("sharded", "reference", "", pcfg.Workers, pcfg.Batch, pcfg.Iterations, pcfg.Runner)

	const failShard = 3 // mid-unit: unit [2,4) must not be recorded
	var failed atomic.Bool
	flaky := func(shard int) (Target, error) {
		if shard == failShard && failed.CompareAndSwap(false, true) {
			return nil, errors.New("connection refused")
		}
		return newRefTarget(nil), nil
	}
	clean := RunParallel(pcfg, func(int) (Target, error) { return newRefTarget(nil), nil }, nil)

	path := ckPath(t)
	ck, err := OpenCheckpoint(CheckpointConfig{Path: path, Every: 1}, fp)
	if err != nil {
		t.Fatal(err)
	}
	first := RunCheckpointedParallel(context.Background(), pcfg, "reference", flaky, nil, ck, DurableHooks{})
	ck.Close()
	if first.Robust.FailedIterations != 1 {
		t.Fatalf("FailedIterations = %d, want 1", first.Robust.FailedIterations)
	}
	if !failed.Load() {
		t.Fatal("the failing factory never fired")
	}

	re, err := OpenCheckpoint(CheckpointConfig{Path: path, Every: 1, Resume: true}, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, ok := re.Completed("reference", 2); ok {
		t.Fatal("the unit with the factory failure was journaled as completed")
	}
	if _, ok := re.Completed("reference", 0); !ok {
		t.Fatal("units without failures were not journaled")
	}
	resumed := RunCheckpointedParallel(context.Background(), pcfg, "reference", flaky, nil, re, DurableHooks{})
	if resumed.Ran != 2 {
		t.Fatalf("resume ran %d shards, want 2 (the failed unit's range)", resumed.Ran)
	}
	if resumed.Robust.FailedIterations != 0 {
		t.Fatalf("resume re-failed: %+v", resumed.Robust)
	}
	// The retried campaign converges on the clean run's merged outcome
	// exactly (restored units' stats land summed in their start slots, so
	// only the merged totals — and the live-retried shards — compare
	// slot-for-slot).
	if scrubCk(resumed.Stats) != scrubCk(clean.Stats) {
		t.Fatalf("retried campaign diverges from a clean run:\n  clean:   %+v\n  resumed: %+v",
			scrubCk(clean.Stats), scrubCk(resumed.Stats))
	}
	for _, i := range []int{2, failShard} {
		if a, b := scrubCk(clean.Shards[i].Stats), scrubCk(resumed.Shards[i].Stats); a != b {
			t.Errorf("retried shard %d diverges:\n  clean:   %+v\n  resumed: %+v", i, a, b)
		}
	}
}
