package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gqs/internal/engine"
)

// This file is the runner's resilience layer (§5.4.4): per-query
// wall-clock deadlines enforced by a watchdog, panic isolation around
// connector calls, retry-with-backoff for transient connection errors,
// and a restart sequence guarded by a per-target circuit breaker. A
// months-long fuzzing campaign must survive exactly the failure modes it
// hunts — hangs, crashes, unexpected exceptions — plus the flaky
// connections any long-lived client accumulates.

// RobustnessConfig bounds the failure handling of the hardened runner.
// The zero value of every field selects a sensible default; explicit
// negative values disable the corresponding mechanism where noted.
type RobustnessConfig struct {
	// Timeout is the per-query wall-clock deadline. A query exceeding it
	// is canceled and counted as a timeout: an error-bug when a fault
	// hung the connector, a skip otherwise (the paper's treatment of
	// benign timeouts). 0 ⇒ 20s; negative ⇒ no watchdog (queries run
	// inline and may block forever).
	Timeout time.Duration
	// Grace is how long past the deadline the watchdog waits for the
	// cooperative cancellation to unwind before declaring the connector
	// wedged and abandoning the in-flight call. 0 ⇒ 1s.
	Grace time.Duration
	// Retries is how many times a transient connector error is retried
	// before the query is given up as a skip. 0 ⇒ 2; negative ⇒ none.
	Retries int
	// RetryBackoff is the base backoff between transient retries,
	// doubled per attempt and jittered deterministically. 0 ⇒ 2ms.
	RetryBackoff time.Duration
	// RestartAttempts bounds the Reset calls of one restart sequence.
	// 0 ⇒ 3.
	RestartAttempts int
	// RestartBackoff is the base of the restart sequence's exponential
	// backoff (first attempt is immediate). 0 ⇒ 5ms.
	RestartBackoff time.Duration
	// RestartBackoffMax caps the exponential restart backoff. 0 ⇒ 250ms.
	RestartBackoffMax time.Duration
	// BreakerThreshold is how many consecutive failed restart sequences
	// trip the per-target circuit breaker. While open, the runner
	// abandons each graph after a single half-open probe instead of
	// hammering a dead target with full restart sequences. 0 ⇒ 3.
	BreakerThreshold int
}

// withDefaults resolves the zero value of each field independently.
func (c RobustnessConfig) withDefaults() RobustnessConfig {
	if c.Timeout == 0 {
		c.Timeout = 20 * time.Second
	}
	if c.Grace <= 0 {
		c.Grace = time.Second
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.RestartAttempts <= 0 {
		c.RestartAttempts = 3
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 5 * time.Millisecond
	}
	if c.RestartBackoffMax <= 0 {
		c.RestartBackoffMax = 250 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	return c
}

// RobustnessStats counts everything the resilience layer absorbed so a
// campaign report can show how much failure the harness survived.
type RobustnessStats struct {
	Timeouts         int           // queries canceled at the wall-clock deadline
	Retries          int           // transient-error retries performed
	TransientErrors  int           // transient connector errors observed (incl. retried)
	TransientGiveUps int           // queries skipped after exhausting retries
	PanicsRecovered  int           // connector panics converted to crash verdicts
	Restarts         int           // successful recovery restarts (Reset after failure)
	RestartFailures  int           // individual failed Reset attempts
	BreakerTrips     int           // circuit-breaker open transitions
	AbandonedGraphs  int           // graphs abandoned mid-iteration after failed restarts
	FailedIterations int           // iterations that never got a healthy instance
	Downtime         time.Duration // total backoff waits (deterministic per seed)

	// Checkpoint/resume accounting (durable campaigns only; zero
	// otherwise). These are harness-side facts, not target behaviour, and
	// are therefore excluded from canonical campaign reports.
	CheckpointsWritten  int           // snapshot records flushed to the journal
	CheckpointBytes     int64         // framed bytes appended to the journal
	LastCheckpointAge   time.Duration // age of the newest flush at campaign end
	ResumeFastForwarded int           // iterations skipped or RNG-replayed on resume
}

// Add accumulates another stats block; campaign-level reports sum the
// per-target runners this way.
func (s *RobustnessStats) Add(o RobustnessStats) {
	s.Timeouts += o.Timeouts
	s.Retries += o.Retries
	s.TransientErrors += o.TransientErrors
	s.TransientGiveUps += o.TransientGiveUps
	s.PanicsRecovered += o.PanicsRecovered
	s.Restarts += o.Restarts
	s.RestartFailures += o.RestartFailures
	s.BreakerTrips += o.BreakerTrips
	s.AbandonedGraphs += o.AbandonedGraphs
	s.FailedIterations += o.FailedIterations
	s.Downtime += o.Downtime
	s.CheckpointsWritten += o.CheckpointsWritten
	s.CheckpointBytes += o.CheckpointBytes
	if o.LastCheckpointAge > s.LastCheckpointAge {
		// The merged age is the oldest (most conservative) of the parts.
		s.LastCheckpointAge = o.LastCheckpointAge
	}
	s.ResumeFastForwarded += o.ResumeFastForwarded
}

// PanicError wraps a panic recovered from a connector call. Unwrap
// exposes the panic value when it is itself an error, so fault
// attribution (BugID) survives the recovery.
type PanicError struct{ Val any }

func (e *PanicError) Error() string { return fmt.Sprintf("panic in connector: %v", e.Val) }

// Unwrap returns the panic value if it was an error.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Val.(error); ok {
		return err
	}
	return nil
}

// isTransient duck-types transient connector errors (gdb.TransientError
// and any user error with a Transient() bool method).
func isTransient(err error) bool {
	var tr interface{ Transient() bool }
	return errors.As(err, &tr) && tr.Transient()
}

// hasBugID reports whether the error chain carries fault attribution.
func hasBugID(err error) bool {
	var b interface{ BugID() string }
	return errors.As(err, &b)
}

// faultKind extracts the fault class ("crash", "hang", ...) from an
// attributed error chain, or "".
func faultKind(err error) string {
	var k interface{ FaultKind() string }
	if errors.As(err, &k) {
		return k.FaultKind()
	}
	return ""
}

// execOutcome is the watchdog-normalized result of one connector call.
type execOutcome struct {
	res      *engine.Result
	err      error
	timedOut bool // the wall-clock deadline fired
	panicked bool // the connector panicked (recovered)
	wedged   bool // the connector ignored cancellation past the grace window
}

// exec dispatches one call: the prepared path when both the target and
// the caller have a PreparedQuery, the text path otherwise.
func (rn *Runner) exec(ctx context.Context, query string, pq *engine.PreparedQuery) (*engine.Result, error) {
	if pq != nil && rn.prepared != nil {
		return rn.prepared.ExecutePrepared(ctx, pq)
	}
	return rn.target.ExecuteCtx(ctx, query)
}

// executeGuarded runs one query through the watchdog: a per-query
// deadline, cooperative cancellation, and panic isolation. The query
// runs in its own goroutine; if it ignores cancellation for longer than
// the grace window it is abandoned (the goroutine leaks, as any harness
// abandoning a wedged driver call must) and the target is restarted.
// pq, when non-nil, routes the call through the prepared path.
func (rn *Runner) executeGuarded(query string, pq *engine.PreparedQuery) execOutcome {
	if rn.rb.Timeout < 0 {
		return rn.executeInline(query, pq)
	}
	ctx, cancel := context.WithTimeout(rn.ctx, rn.rb.Timeout)
	defer cancel()
	ch := make(chan execOutcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- execOutcome{err: &PanicError{Val: p}, panicked: true}
			}
		}()
		res, err := rn.exec(ctx, query, pq)
		ch <- execOutcome{res: res, err: err}
	}()
	var o execOutcome
	select {
	case o = <-ch:
	case <-ctx.Done():
		grace := time.NewTimer(rn.rb.Grace)
		select {
		case o = <-ch:
			grace.Stop()
		case <-grace.C:
			return execOutcome{
				timedOut: true,
				wedged:   true,
				err: fmt.Errorf("connector unresponsive %v past its %v deadline: %w",
					rn.rb.Grace, rn.rb.Timeout, engine.ErrCanceled),
			}
		}
		o.timedOut = true
	}
	// The deadline may race a late error: normalize so every
	// deadline-canceled failure is classified as a timeout.
	if !o.timedOut && o.err != nil && (errors.Is(o.err, engine.ErrCanceled) || ctx.Err() != nil) {
		o.timedOut = true
	}
	return o
}

// executeInline runs the query without a watchdog (Timeout < 0), keeping
// only panic isolation.
func (rn *Runner) executeInline(query string, pq *engine.PreparedQuery) (o execOutcome) {
	defer func() {
		if p := recover(); p != nil {
			o = execOutcome{err: &PanicError{Val: p}, panicked: true}
		}
	}()
	if pq != nil && rn.prepared != nil {
		res, err := rn.prepared.ExecutePrepared(rn.ctx, pq)
		return execOutcome{res: res, err: err}
	}
	res, err := rn.target.Execute(query)
	return execOutcome{res: res, err: err}
}

// jitter spreads a backoff deterministically over [d/2, d]: enough to
// decorrelate retry storms, seeded so campaigns stay reproducible.
func (rn *Runner) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	half := d / 2
	return half + time.Duration(rn.jr.Int63n(int64(half)+1))
}

// pause waits out a backoff and books it as downtime. The wait is
// interruptible: a canceled campaign must not stall up to
// RestartBackoffMax per restart attempt in a plain time.Sleep while the
// caller is trying to shut down. The booked downtime stays the full
// deterministic duration either way — cancellation changes how long we
// actually wait, never the seed-determined accounting.
func (rn *Runner) pause(d time.Duration) {
	if d <= 0 {
		return
	}
	rn.stats.Robust.Downtime += d
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-rn.ctx.Done():
	}
}

// restartBackoff is the wait before restart attempt a: immediate first,
// then exponential with deterministic jitter, capped.
func (rn *Runner) restartBackoff(a int) time.Duration {
	if a == 0 {
		return 0
	}
	d := rn.rb.RestartBackoff << (a - 1)
	if d > rn.rb.RestartBackoffMax || d <= 0 {
		d = rn.rb.RestartBackoffMax
	}
	return rn.jitter(d)
}

// resetTarget brings the target to the current graph state: the O(1)
// copy-on-write snapshot path when the target supports it, the legacy
// deep-copy Reset otherwise.
func (rn *Runner) resetTarget() error {
	if rn.snapshot != nil && rn.curSnap != nil {
		return rn.snapshot.ResetSnapshot(rn.curSnap, rn.curSchema)
	}
	return rn.target.Reset(rn.curGraph, rn.curSchema)
}

// restartSequence tries to bring the target back with a fresh instance
// of the current graph: bounded Reset attempts under exponential backoff.
// Success closes the breaker's failure streak; a fully failed sequence
// feeds it.
func (rn *Runner) restartSequence() bool {
	for a := 0; a < rn.rb.RestartAttempts; a++ {
		rn.pause(rn.restartBackoff(a))
		if err := rn.resetTarget(); err == nil {
			rn.stats.Robust.Restarts++
			rn.consecFails = 0
			return true
		}
		rn.stats.Robust.RestartFailures++
	}
	rn.consecFails++
	if !rn.breakerOpen && rn.consecFails >= rn.rb.BreakerThreshold {
		rn.breakerOpen = true
		rn.stats.Robust.BreakerTrips++
	}
	return false
}

// recoverTarget restarts the target after a crash or hang; when the
// restart sequence fails the current graph is abandoned and the campaign
// moves on (degraded, not dead).
func (rn *Runner) recoverTarget() {
	if !rn.restartSequence() {
		rn.abandonGraph = true
	}
}

// ensureUp prepares a healthy instance loaded with the current graph at
// the top of an iteration. With the breaker open it makes exactly one
// half-open probe; a success closes the breaker, a failure abandons the
// iteration cheaply.
func (rn *Runner) ensureUp() bool {
	if rn.breakerOpen {
		if err := rn.resetTarget(); err != nil {
			rn.consecFails++
			rn.stats.Robust.RestartFailures++
			return false
		}
		rn.breakerOpen = false
		rn.consecFails = 0
		rn.stats.Robust.Restarts++
		return true
	}
	if err := rn.resetTarget(); err == nil {
		return true
	}
	return rn.restartSequence()
}
