package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"gqs/internal/engine"
	"gqs/internal/gdb"
	"gqs/internal/graph"
)

// scriptTarget is a stub Target whose Execute behaviour is scripted per
// test; Reset failures are scripted through resetErr.
type scriptTarget struct {
	exec     func(ctx context.Context) (*engine.Result, error)
	resetErr func() error
}

func (s *scriptTarget) Name() string { return "stub" }
func (s *scriptTarget) Reset(g *graph.Graph, sc *graph.Schema) error {
	if s.resetErr != nil {
		return s.resetErr()
	}
	return nil
}
func (s *scriptTarget) Execute(q string) (*engine.Result, error) {
	return s.exec(context.Background())
}
func (s *scriptTarget) ExecuteCtx(ctx context.Context, q string) (*engine.Result, error) {
	return s.exec(ctx)
}
func (s *scriptTarget) RelUniqueness() bool    { return true }
func (s *scriptTarget) ProvidesDBLabels() bool { return true }

// stubFaultErr mimics a fault-attributed connector error (hang, crash).
type stubFaultErr struct{ id, kind string }

func (e *stubFaultErr) Error() string     { return e.kind + " " + e.id }
func (e *stubFaultErr) BugID() string     { return e.id }
func (e *stubFaultErr) FaultKind() string { return e.kind }

// stubTransientErr mimics a flaky-connection failure.
type stubTransientErr struct{}

func (e *stubTransientErr) Error() string   { return "connection reset" }
func (e *stubTransientErr) Transient() bool { return true }

func tinyRunnerConfig() RunnerConfig {
	cfg := DefaultRunnerConfig()
	cfg.Graph = graph.GenConfig{MaxNodes: 6, MaxRels: 12}
	cfg.QueriesPerGraph = 2
	cfg.QueriesPerGT = 1
	cfg.Robust = RobustnessConfig{
		Timeout: 30 * time.Millisecond,
		Grace:   40 * time.Millisecond,
	}
	return cfg
}

func verdictTrace(rn *Runner, iterations int) string {
	var sb strings.Builder
	rn.Run(iterations, func(tc *TestCase) {
		sb.WriteString(tc.Verdict.String())
		sb.WriteByte(';')
	})
	return sb.String()
}

// TestHangTimeoutIsErrorBug: a connector hanging on a triggered fault is
// canceled at the deadline and classified as the paper's hang class of
// error-bugs, and the target is restarted afterwards.
func TestHangTimeoutIsErrorBug(t *testing.T) {
	tgt := &scriptTarget{exec: func(ctx context.Context) (*engine.Result, error) {
		<-ctx.Done() // cooperative live hang: unwind once canceled
		return nil, &stubFaultErr{id: "ST-H1", kind: "hang"}
	}}
	rn := NewRunner(tgt, tinyRunnerConfig())
	if err := rn.RunIteration(nil); err != nil {
		t.Fatal(err)
	}
	st := rn.Stats()
	if st.ErrorBugs == 0 {
		t.Errorf("hang timeouts must be error-bugs: %+v", st)
	}
	if st.Robust.Timeouts == 0 {
		t.Errorf("no timeout recorded: %+v", st.Robust)
	}
	if st.Robust.Restarts == 0 {
		t.Errorf("a hang must force a restart: %+v", st.Robust)
	}
}

// TestBenignTimeoutIsSkip: a slow query with no fault involved times out
// into a skip — not evidence of a bug — and needs no restart.
func TestBenignTimeoutIsSkip(t *testing.T) {
	tgt := &scriptTarget{exec: func(ctx context.Context) (*engine.Result, error) {
		<-ctx.Done()
		return nil, engine.ErrCanceled
	}}
	rn := NewRunner(tgt, tinyRunnerConfig())
	if err := rn.RunIteration(nil); err != nil {
		t.Fatal(err)
	}
	st := rn.Stats()
	if st.ErrorBugs != 0 || st.LogicBugs != 0 {
		t.Errorf("benign timeout counted as a bug: %+v", st)
	}
	if st.Skips == 0 || st.Robust.Timeouts == 0 {
		t.Errorf("benign timeout not recorded as skip: %+v / %+v", st, st.Robust)
	}
	if st.Robust.Restarts != 0 {
		t.Errorf("benign timeout must not restart the target: %+v", st.Robust)
	}
}

// TestPanicIsolated: a connector panic (live crash fault) is recovered
// into a crash verdict, the process survives, and the target restarts.
func TestPanicIsolated(t *testing.T) {
	tgt := &scriptTarget{exec: func(ctx context.Context) (*engine.Result, error) {
		panic(&stubFaultErr{id: "ST-C1", kind: "crash"})
	}}
	rn := NewRunner(tgt, tinyRunnerConfig())
	if err := rn.RunIteration(nil); err != nil {
		t.Fatal(err)
	}
	st := rn.Stats()
	if st.Robust.PanicsRecovered == 0 {
		t.Fatalf("panic not recovered: %+v", st.Robust)
	}
	if st.ErrorBugs == 0 {
		t.Errorf("recovered panic must be an error-bug: %+v", st)
	}
	if st.Robust.Restarts == 0 {
		t.Errorf("a crash must restart the target: %+v", st.Robust)
	}
}

// TestPanicAttributionSurvives: a panic value carrying a BugID stays
// reachable through PanicError's Unwrap for fault attribution.
func TestPanicAttributionSurvives(t *testing.T) {
	perr := &PanicError{Val: &stubFaultErr{id: "ST-C2", kind: "crash"}}
	var b interface{ BugID() string }
	if !errors.As(perr, &b) || b.BugID() != "ST-C2" {
		t.Fatalf("BugID lost through PanicError: %v", perr)
	}
	if faultKind(perr) != "crash" {
		t.Errorf("faultKind lost through PanicError")
	}
	if (&PanicError{Val: "boom"}).Unwrap() != nil {
		t.Errorf("non-error panic value must unwrap to nil")
	}
}

// TestWedgedConnectorRestarts: a connector that ignores cancellation past
// the grace window is abandoned, skipped, and the target restarted.
func TestWedgedConnectorRestarts(t *testing.T) {
	release := make(chan struct{})
	t.Cleanup(func() { close(release) }) // free the abandoned goroutines
	tgt := &scriptTarget{exec: func(ctx context.Context) (*engine.Result, error) {
		<-release // non-cooperative: ignores ctx entirely
		return nil, errors.New("too late")
	}}
	cfg := tinyRunnerConfig()
	cfg.Robust.Timeout = 15 * time.Millisecond
	cfg.Robust.Grace = 15 * time.Millisecond
	cfg.QueriesPerGraph = 1
	rn := NewRunner(tgt, cfg)
	if err := rn.RunIteration(nil); err != nil {
		t.Fatal(err)
	}
	st := rn.Stats()
	if st.Skips == 0 || st.Robust.Timeouts == 0 {
		t.Errorf("wedged call not skipped as timeout: %+v / %+v", st, st.Robust)
	}
	if st.ErrorBugs != 0 {
		t.Errorf("wedge without fault attribution is not a bug: %+v", st)
	}
	if st.Robust.Restarts == 0 {
		t.Errorf("a wedged connector must be restarted: %+v", st.Robust)
	}
}

// failFirstAttempt wraps a healthy target, failing the first attempt of
// every query transiently so each query needs exactly one retry.
type failFirstAttempt struct {
	Target
	calls int
}

func (f *failFirstAttempt) ExecuteCtx(ctx context.Context, q string) (*engine.Result, error) {
	f.calls++
	if f.calls%2 == 1 {
		return nil, &stubTransientErr{}
	}
	return f.Target.ExecuteCtx(ctx, q)
}

func (f *failFirstAttempt) Execute(q string) (*engine.Result, error) {
	return f.ExecuteCtx(context.Background(), q)
}

// TestTransientRetrySucceeds: transient connector errors are retried and
// the query still completes normally — retries are invisible to verdicts.
func TestTransientRetrySucceeds(t *testing.T) {
	tgt := &failFirstAttempt{Target: gdb.NewReference()}
	rn := NewRunner(tgt, tinyRunnerConfig())
	if err := rn.RunIteration(nil); err != nil {
		t.Fatal(err)
	}
	st := rn.Stats()
	if st.Robust.Retries == 0 || st.Robust.TransientErrors == 0 {
		t.Fatalf("no retries recorded: %+v", st.Robust)
	}
	if st.Robust.TransientGiveUps != 0 {
		t.Errorf("retry should have succeeded: %+v", st.Robust)
	}
	if st.Passes == 0 {
		t.Errorf("retried queries must still pass: %+v", st)
	}
	if st.ErrorBugs != 0 || st.LogicBugs != 0 {
		t.Errorf("transient errors counted as bugs: %+v", st)
	}
}

// TestTransientExhaustionIsSkip: a connection that stays down through
// every retry yields skips, never error-bugs (satellite: classifyError
// must not count transients as bugs).
func TestTransientExhaustionIsSkip(t *testing.T) {
	tgt := &scriptTarget{exec: func(ctx context.Context) (*engine.Result, error) {
		return nil, &stubTransientErr{}
	}}
	rn := NewRunner(tgt, tinyRunnerConfig())
	if err := rn.RunIteration(nil); err != nil {
		t.Fatal(err)
	}
	st := rn.Stats()
	if st.ErrorBugs != 0 || st.LogicBugs != 0 {
		t.Fatalf("transient exhaustion counted as a bug: %+v", st)
	}
	if st.Robust.TransientGiveUps == 0 || st.Skips == 0 {
		t.Errorf("give-ups not recorded as skips: %+v / %+v", st, st.Robust)
	}
	// Every executed (not synthesis-skipped) query burns the default 2
	// retries before giving up.
	wantRetries := st.Robust.TransientGiveUps * 2
	if st.Robust.Retries != wantRetries {
		t.Errorf("Retries = %d, want %d", st.Robust.Retries, wantRetries)
	}
	if classifyError(&stubTransientErr{}) != VerdictSkip {
		t.Errorf("classifyError must skip transient errors")
	}
}

// flakyReset wraps a healthy target with a switchable Reset failure.
type flakyReset struct {
	Target
	down bool
}

func (f *flakyReset) Reset(g *graph.Graph, s *graph.Schema) error {
	if f.down {
		return errors.New("instance did not come up")
	}
	return f.Target.Reset(g, s)
}

// TestBreakerTripsAndCampaignContinues: a target that cannot be brought
// up trips the circuit breaker after the threshold of failed restart
// sequences; the campaign records failed iterations and keeps going, and
// once the target heals the half-open probe closes the breaker again.
func TestBreakerTripsAndCampaignContinues(t *testing.T) {
	tgt := &flakyReset{Target: gdb.NewReference(), down: true}
	cfg := tinyRunnerConfig()
	rn := NewRunner(tgt, cfg)

	if _, err := rn.Run(5, nil); err != nil {
		t.Fatalf("a dead target must not abort the campaign: %v", err)
	}
	st := rn.Stats()
	if st.Robust.FailedIterations != 5 {
		t.Errorf("FailedIterations = %d, want 5", st.Robust.FailedIterations)
	}
	if st.Robust.BreakerTrips != 1 {
		t.Errorf("BreakerTrips = %d, want 1", st.Robust.BreakerTrips)
	}
	if open, fails := rn.Breaker(); !open || fails < 3 {
		t.Errorf("breaker open=%v fails=%d, want open after 3 failed sequences", open, fails)
	}
	if st.Graphs != 0 || st.Queries != 0 {
		t.Errorf("no queries should run against a dead target: %+v", st)
	}
	// With the breaker open each iteration costs one probe, not a full
	// restart sequence.
	failuresWhileOpen := st.Robust.RestartFailures

	// The target heals: the next half-open probe closes the breaker and
	// the campaign resumes producing verdicts.
	tgt.down = false
	if _, err := rn.Run(2, nil); err != nil {
		t.Fatal(err)
	}
	st = rn.Stats()
	if open, _ := rn.Breaker(); open {
		t.Errorf("breaker must close after a successful probe")
	}
	if st.Graphs != 2 || st.Queries == 0 {
		t.Errorf("campaign did not resume after recovery: %+v", st)
	}
	if st.Robust.RestartFailures != failuresWhileOpen {
		t.Errorf("healed target still failing restarts: %+v", st.Robust)
	}
	if st.Robust.Downtime == 0 {
		t.Errorf("failed restart sequences must book downtime")
	}
}

// liveFlakyRunner builds the reproducibility scenario: a live-faults sim
// behind a seeded flaky connection, under timeouts and retries.
func liveFlakyRunner(seed int64) *Runner {
	sim := gdb.NewMemgraphSim().SetLiveFaults(true)
	fl := gdb.NewFlaky(sim, gdb.FlakyConfig{
		Seed:           seed + 100,
		ErrorRate:      0.15,
		ResetErrorRate: 0.10,
	})
	cfg := DefaultRunnerConfig()
	cfg.Seed = seed
	cfg.Graph = graph.GenConfig{MaxNodes: 10, MaxRels: 30}
	cfg.QueriesPerGraph = 4
	cfg.QueriesPerGT = 2
	cfg.Robust = RobustnessConfig{Timeout: 40 * time.Millisecond}
	return NewRunner(fl, cfg)
}

// TestCampaignReproducible: same seed + same config ⇒ byte-identical
// verdict sequence and identical stats (wall-clock Elapsed aside), even
// with the flaky wrapper and live hang faults enabled. Backoff jitter
// draws from a dedicated RNG precisely so failures never perturb the
// synthesis stream.
func TestCampaignReproducible(t *testing.T) {
	run := func() (string, Stats) {
		rn := liveFlakyRunner(7)
		trace := verdictTrace(rn, 4)
		st := rn.Stats()
		st.Elapsed = 0 // wall-clock; everything else is deterministic
		return trace, st
	}
	traceA, statsA := run()
	traceB, statsB := run()
	if traceA != traceB {
		t.Fatalf("verdict sequences diverge:\n%s\n%s", traceA, traceB)
	}
	if !reflect.DeepEqual(statsA, statsB) {
		t.Fatalf("stats diverge:\n%+v\n%+v", statsA, statsB)
	}
	if statsA.Queries == 0 || statsA.Robust.TransientErrors == 0 {
		t.Errorf("scenario too tame to prove anything: %+v", statsA)
	}
}

// TestPauseInterruptedByCancellation: the restart-backoff pause must not
// stall a canceled campaign. A dead target under a huge backoff would
// sleep for minutes per restart sequence; with the context canceled the
// runner has to bail out of the pause (and the run) almost immediately —
// while still booking the full deterministic downtime.
func TestPauseInterruptedByCancellation(t *testing.T) {
	cfg := tinyRunnerConfig()
	cfg.Robust.RestartBackoff = 30 * time.Second
	cfg.Robust.RestartBackoffMax = time.Minute

	ctx, cancel := context.WithCancel(context.Background())
	rn := NewRunnerCtx(ctx, &flakyReset{Target: gdb.NewReference(), down: true}, cfg)
	time.AfterFunc(50*time.Millisecond, cancel)

	start := time.Now()
	done := make(chan Stats, 1)
	go func() {
		st, _ := rn.Run(3, nil)
		done <- st
	}()
	select {
	case st := <-done:
		if waited := time.Since(start); waited > 5*time.Second {
			t.Errorf("canceled run still waited %v in backoff pauses", waited)
		}
		if st.Robust.Downtime < 30*time.Second {
			t.Errorf("Downtime = %v; cancellation must cut the wait, not the deterministic accounting", st.Robust.Downtime)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled runner stuck in a backoff pause")
	}
}

// TestBreakerHalfOpenProbeFailure pins the open-breaker economics that
// TestBreakerTripsAndCampaignContinues only brushes past: while the
// target stays dead, every iteration costs exactly one failed half-open
// probe — no restart sequence, no new trip, no backoff downtime — and
// the breaker stays open until a probe finally succeeds.
func TestBreakerHalfOpenProbeFailure(t *testing.T) {
	tgt := &flakyReset{Target: gdb.NewReference(), down: true}
	rn := NewRunner(tgt, tinyRunnerConfig())

	// Trip the breaker (DefaultRobustness threshold: 3 failed sequences).
	if _, err := rn.Run(3, nil); err != nil {
		t.Fatal(err)
	}
	st := rn.Stats()
	if open, _ := rn.Breaker(); !open || st.Robust.BreakerTrips != 1 {
		t.Fatalf("breaker not tripped after 3 dead iterations: open=%v %+v", open, st.Robust)
	}
	base := st.Robust

	// Dead target, open breaker: each iteration is one cheap failed probe.
	const probes = 4
	if _, err := rn.Run(probes, nil); err != nil {
		t.Fatal(err)
	}
	st = rn.Stats()
	if open, _ := rn.Breaker(); !open {
		t.Error("failed probes must leave the breaker open")
	}
	if got := st.Robust.RestartFailures - base.RestartFailures; got != probes {
		t.Errorf("RestartFailures grew by %d over %d open iterations, want exactly one probe each", got, probes)
	}
	if st.Robust.Restarts != base.Restarts {
		t.Errorf("Restarts grew during failed probes: %+v", st.Robust)
	}
	if st.Robust.BreakerTrips != 1 {
		t.Errorf("BreakerTrips = %d, an already-open breaker must not re-trip", st.Robust.BreakerTrips)
	}
	if st.Robust.Downtime != base.Downtime {
		t.Errorf("failed probes booked %v extra downtime, want none (probes skip the backoff ladder)",
			st.Robust.Downtime-base.Downtime)
	}
	if st.Robust.FailedIterations-base.FailedIterations != probes {
		t.Errorf("FailedIterations grew by %d, want %d", st.Robust.FailedIterations-base.FailedIterations, probes)
	}

	// Heal: the next probe closes the breaker with a single restart.
	tgt.down = false
	if _, err := rn.Run(1, nil); err != nil {
		t.Fatal(err)
	}
	st = rn.Stats()
	if open, fails := rn.Breaker(); open || fails != 0 {
		t.Errorf("successful probe must close the breaker and clear the streak: open=%v fails=%d", open, fails)
	}
	if st.Robust.Restarts != base.Restarts+1 {
		t.Errorf("Restarts = %d, want %d (exactly the closing probe)", st.Robust.Restarts, base.Restarts+1)
	}
}
