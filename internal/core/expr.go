package core

import (
	"fmt"
	"math/rand"

	"gqs/internal/cypher/ast"
	"gqs/internal/eval"
	"gqs/internal/functions"
	"gqs/internal/value"
)

// This file implements §3.5: generating branching and nested expressions.
// Two generators are value-preserving — genValueExpr builds an expression
// that evaluates to a required constant, and complexifyAccess (Algorithm
// 2) wraps a property access in nested templates while preserving the
// ability to distinguish the intended element from its competitors — and
// two are value-tracking: randomScalarExpr builds arbitrary evaluable
// expressions and truePredicate builds predicates that hold in the
// current symbolic state.

const stringAlphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

func randString(r *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = stringAlphabet[r.Intn(len(stringAlphabet))]
	}
	return string(b)
}

// genValueExpr returns an expression with no free variables that
// evaluates exactly to target. Only operations that are precision-exact
// are used, so the oracle's expected values are never perturbed.
func genValueExpr(r *rand.Rand, target value.Value, depth int) ast.Expr {
	if depth <= 0 {
		return ast.Lit(target)
	}
	rec := func(v value.Value) ast.Expr { return genValueExpr(r, v, depth-1) }
	switch target.Kind() {
	case value.KindInt:
		v := target.AsInt()
		switch r.Intn(4) {
		case 0: // (v-c) + c
			c := int64(r.Intn(2001) - 1000)
			return ast.Bin(ast.OpAdd, rec(value.Int(v-c)), ast.Lit(value.Int(c)))
		case 1: // (v+c) - c
			c := int64(r.Intn(2001) - 1000)
			return ast.Bin(ast.OpSub, rec(value.Int(v+c)), ast.Lit(value.Int(c)))
		case 2: // toInteger('v')
			return &ast.FuncCall{Name: "toInteger", Args: []ast.Expr{rec(value.Str(fmt.Sprintf("%d", v)))}}
		default: // char_length of a string of that length, when small
			if v >= 0 && v <= 24 {
				return &ast.FuncCall{Name: "char_length", Args: []ast.Expr{rec(value.Str(randString(r, int(v))))}}
			}
			return ast.Bin(ast.OpAdd, rec(value.Int(v-1)), ast.Lit(value.Int(1)))
		}
	case value.KindFloat:
		switch r.Intn(3) {
		case 0: // f + 0.0 is exact
			return ast.Bin(ast.OpAdd, ast.Lit(target), ast.Lit(value.Float(0)))
		case 1: // -(-f)
			return &ast.Unary{Op: ast.OpNeg, X: rec(value.Float(-target.AsFloat()))}
		default: // f * 1.0 is exact
			return ast.Bin(ast.OpMul, ast.Lit(target), ast.Lit(value.Float(1)))
		}
	case value.KindString:
		s := target.AsString()
		switch r.Intn(4) {
		case 0: // split concatenation
			cut := 0
			if len(s) > 0 {
				cut = r.Intn(len(s) + 1)
			}
			return ast.Bin(ast.OpAdd, rec(value.Str(s[:cut])), ast.Lit(value.Str(s[cut:])))
		case 1: // reverse(reverse(s))
			rev := []rune(s)
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			return &ast.FuncCall{Name: "reverse", Args: []ast.Expr{rec(value.Str(string(rev)))}}
		case 2: // left(s + junk, len(s))
			junk := randString(r, 1+r.Intn(4))
			return &ast.FuncCall{Name: "left", Args: []ast.Expr{
				ast.Bin(ast.OpAdd, ast.Lit(value.Str(s)), ast.Lit(value.Str(junk))),
				rec(value.Int(int64(len([]rune(s))))),
			}}
		default:
			// replace with a search string that cannot occur: a marker
			// strictly longer than s, or — exercising the underspecified
			// corner behind the Figure 9 Memgraph hang — the empty
			// string, which the reference semantics defines as identity.
			search := randString(r, len(s)+1)
			if r.Intn(3) == 0 {
				search = ""
			}
			return &ast.FuncCall{Name: "replace", Args: []ast.Expr{
				rec(value.Str(s)),
				ast.Lit(value.Str(search)),
				ast.Lit(value.Str(randString(r, 1+r.Intn(5)))),
			}}
		}
	case value.KindBool:
		b := target.AsBool()
		switch r.Intn(4) {
		case 0: // NOT NOT b
			return &ast.Unary{Op: ast.OpNot, X: &ast.Unary{Op: ast.OpNot, X: rec(target)}}
		case 1: // comparison
			a, c := int64(r.Intn(100)), int64(100+r.Intn(100))
			if b {
				return ast.Bin(ast.OpLt, rec(value.Int(a)), ast.Lit(value.Int(c)))
			}
			return ast.Bin(ast.OpGt, rec(value.Int(a)), ast.Lit(value.Int(c)))
		case 2:
			if b {
				return ast.Bin(ast.OpAnd, rec(target), ast.Lit(value.True))
			}
			return ast.Bin(ast.OpOr, rec(target), ast.Lit(value.False))
		default:
			return &ast.FuncCall{Name: "toBoolean", Args: []ast.Expr{ast.Lit(value.Str(fmt.Sprintf("%v", b)))}}
		}
	case value.KindList:
		elems := target.AsList()
		out := &ast.ListLit{}
		for _, el := range elems {
			out.Elems = append(out.Elems, genValueExpr(r, el, depth-1))
		}
		if r.Intn(3) == 0 {
			// Identity comprehension: [w IN list | w]. The "w" prefix is
			// reserved for comprehension variables, so no shadowing of
			// pattern variables or aliases can occur.
			v := fmt.Sprintf("w%d", r.Intn(100))
			return &ast.ListComprehension{Var: v, List: out, Map: ast.Var(v)}
		}
		return out
	default:
		return ast.Lit(target)
	}
}

// exprTemplate is one nesting template for Algorithm 2: it wraps an
// expression of the accepted class into a new expression, reporting the
// result class.
type exprTemplate struct {
	accepts functions.TypeClass
	build   func(r *rand.Rand, inner ast.Expr) ast.Expr
}

var nestTemplates = []exprTemplate{
	// Integer templates.
	{functions.TInt, func(r *rand.Rand, in ast.Expr) ast.Expr {
		return ast.Bin(ast.OpAdd, in, ast.Lit(value.Int(int64(r.Intn(999)+1))))
	}},
	{functions.TInt, func(r *rand.Rand, in ast.Expr) ast.Expr {
		return ast.Bin(ast.OpSub, in, ast.Lit(value.Int(int64(r.Intn(999)+1))))
	}},
	{functions.TInt, func(r *rand.Rand, in ast.Expr) ast.Expr {
		return ast.Bin(ast.OpMul, in, ast.Lit(value.Int(int64(r.Intn(9)+2))))
	}},
	{functions.TInt, func(_ *rand.Rand, in ast.Expr) ast.Expr {
		return &ast.FuncCall{Name: "toString", Args: []ast.Expr{in}}
	}},
	{functions.TInt, func(_ *rand.Rand, in ast.Expr) ast.Expr {
		return &ast.FuncCall{Name: "abs", Args: []ast.Expr{in}}
	}},
	{functions.TInt, func(_ *rand.Rand, in ast.Expr) ast.Expr {
		return &ast.FuncCall{Name: "sign", Args: []ast.Expr{in}}
	}},
	{functions.TInt, func(r *rand.Rand, in ast.Expr) ast.Expr {
		return &ast.ListLit{Elems: []ast.Expr{in, ast.Lit(value.Int(int64(r.Intn(100))))}}
	}},
	// String templates.
	{functions.TStr, func(r *rand.Rand, in ast.Expr) ast.Expr {
		return ast.Bin(ast.OpAdd, in, ast.Lit(value.Str(randString(r, 1+r.Intn(4)))))
	}},
	{functions.TStr, func(r *rand.Rand, in ast.Expr) ast.Expr {
		return ast.Bin(ast.OpAdd, ast.Lit(value.Str(randString(r, 1+r.Intn(4)))), in)
	}},
	{functions.TStr, func(_ *rand.Rand, in ast.Expr) ast.Expr {
		return &ast.FuncCall{Name: "reverse", Args: []ast.Expr{in}}
	}},
	{functions.TStr, func(_ *rand.Rand, in ast.Expr) ast.Expr {
		return &ast.FuncCall{Name: "char_length", Args: []ast.Expr{in}}
	}},
	{functions.TStr, func(_ *rand.Rand, in ast.Expr) ast.Expr {
		return &ast.FuncCall{Name: "toUpper", Args: []ast.Expr{in}}
	}},
	// Float templates (exact operations only).
	{functions.TFloat, func(_ *rand.Rand, in ast.Expr) ast.Expr {
		return &ast.Unary{Op: ast.OpNeg, X: in}
	}},
	{functions.TFloat, func(_ *rand.Rand, in ast.Expr) ast.Expr {
		return &ast.FuncCall{Name: "toString", Args: []ast.Expr{in}}
	}},
	{functions.TFloat, func(r *rand.Rand, in ast.Expr) ast.Expr {
		return ast.Bin(ast.OpMul, in, ast.Lit(value.Float(float64(r.Intn(3)+2))))
	}},
	// Boolean templates.
	{functions.TBool, func(_ *rand.Rand, in ast.Expr) ast.Expr {
		return &ast.Unary{Op: ast.OpNot, X: in}
	}},
	{functions.TBool, func(_ *rand.Rand, in ast.Expr) ast.Expr {
		return &ast.FuncCall{Name: "toString", Args: []ast.Expr{in}}
	}},
	// List templates.
	{functions.TList, func(_ *rand.Rand, in ast.Expr) ast.Expr {
		return &ast.FuncCall{Name: "reverse", Args: []ast.Expr{in}}
	}},
	{functions.TList, func(r *rand.Rand, in ast.Expr) ast.Expr {
		v := fmt.Sprintf("w%d", r.Intn(100))
		return &ast.ListComprehension{Var: v, List: in, Map: ast.Var(v)}
	}},
	{functions.TList, func(_ *rand.Rand, in ast.Expr) ast.Expr {
		return &ast.FuncCall{Name: "size", Args: []ast.Expr{in}}
	}},
	{functions.TList, func(_ *rand.Rand, in ast.Expr) ast.Expr {
		return &ast.IndexExpr{Subject: in, Index: ast.Lit(value.Int(0))}
	}},
}

// evalConst evaluates an expression after substituting the single free
// variable with a concrete value. The context and environment are scratch
// state reused across calls: evaluation results never alias either (they
// can only alias the substituted value v, which the caller owns).
func (s *Synthesizer) evalConst(e ast.Expr, varName string, v value.Value) (value.Value, error) {
	if s.constEnv == nil {
		s.constEnv = make(map[string]value.Value, 1)
	}
	clear(s.constEnv)
	s.constEnv[varName] = v
	s.constCtx.Graph = s.g
	s.constCtx.Env = s.constEnv
	return eval.Eval(&s.constCtx, e)
}

// wrapAccess is wrapAccessValue over a reusable scratch map: Algorithm 2
// wraps a value per competitor per round, and the wrapper map is only read
// during the evalConst call that immediately follows, so one map serves
// every wrap.
func (s *Synthesizer) wrapAccess(prop string, v value.Value) value.Value {
	if s.constWrap == nil {
		s.constWrap = make(map[string]value.Value, 1)
	}
	clear(s.constWrap)
	s.constWrap[prop] = v
	return value.Map(s.constWrap)
}

// complexifyAccess implements Algorithm 2: starting from the property
// access varName.prop, it nests expression templates for depth rounds,
// keeping a nesting only when the intended element's value remains
// distinguishable from every competitor's. It returns the final
// expression and its value for the intended element.
func (s *Synthesizer) complexifyAccess(varName, prop string, intended value.Value, competitors []value.Value, depth int) (ast.Expr, value.Value) {
	var exp ast.Expr = ast.Prop(varName, prop)
	v1 := intended
	// Evaluation always substitutes the ORIGINAL property values of the
	// intended element and its competitors into the full expression; the
	// running results v1 are only the bookkeeping of lines 9-10.
	for d := 0; d < depth; d++ {
		cls := functions.ClassOf(v1)
		if s.tmplScratch == nil {
			s.tmplScratch = make([]exprTemplate, 0, len(nestTemplates))
		}
		candidates := s.tmplScratch[:0]
		for _, t := range nestTemplates {
			if t.accepts.Accepts(cls) {
				candidates = append(candidates, t)
			}
		}
		s.tmplScratch = candidates
		if len(candidates) == 0 {
			break
		}
		t := candidates[s.r.Intn(len(candidates))]
		newExp := t.build(s.r, exp)
		nv1, err := s.evalConst(newExp, varName, s.wrapAccess(prop, intended))
		if err != nil {
			continue
		}
		distinct := true
		for _, c := range competitors {
			nc, err := s.evalConst(newExp, varName, s.wrapAccess(prop, c))
			if err != nil || value.Equivalent(nc, nv1) {
				distinct = false
				break
			}
		}
		if !distinct {
			continue // try another template next round (line 8 of Alg. 2)
		}
		exp, v1 = newExp, nv1
	}
	return exp, v1
}

// wrapAccessValue builds a map standing in for the pattern variable so
// that varName.prop evaluates to v during Algorithm 2's checks.
func wrapAccessValue(_ string, prop string, v value.Value) value.Value {
	return value.Map(map[string]value.Value{prop: v})
}

// pinPredicate renders a pin as a WHERE conjunct: Algorithm 2 nests the
// property access, genValueExpr hides the comparison constant, and the
// result still matches only the pinned element.
func (s *Synthesizer) pinPredicate(p pin, depth int) ast.Expr {
	intended, _ := s.lookupProp(p.elem, "id")
	var compVals []value.Value
	for _, c := range p.competitors {
		if v, ok := s.lookupProp(c, "id"); ok {
			compVals = append(compVals, v)
		}
	}
	nested, v1 := s.complexifyAccess(p.varName, "id", intended, compVals, s.r.Intn(depth+1))
	return ast.Bin(ast.OpEq, nested, genValueExpr(s.r, v1, s.r.Intn(depth+1)))
}

func (s *Synthesizer) lookupProp(e elemRef, name string) (value.Value, bool) {
	return s.g.Lookup(graphPropertyKey(e, name))
}

// refOf classifies a graph element identifier as a node or relationship.
func (s *Synthesizer) refOf(id int64) elemRef {
	return elemRef{id: id, isRel: s.g.Rel(id) != nil}
}

// randomScalarExpr builds an arbitrary expression over the in-scope
// variables that is guaranteed to evaluate without error in every
// current symbolic row (it is verified against the tracker and replaced
// by a literal if evaluation fails).
func (s *Synthesizer) randomScalarExpr(depth int) ast.Expr {
	e := s.tryRandomExpr(depth)
	if err := s.tracker.Check(e); err != nil {
		return ast.Lit(value.Int(int64(s.r.Intn(2000000000)) - 1000000000))
	}
	return e
}

func (s *Synthesizer) tryRandomExpr(depth int) ast.Expr {
	// The in-scope variables are invariant across the whole recursive
	// build, so compute them once here rather than per level.
	return s.tryRandomExprVars(s.tracker.Vars(), depth)
}

func (s *Synthesizer) tryRandomExprVars(vars []string, depth int) ast.Expr {
	if depth <= 0 || len(vars) == 0 || s.r.Intn(3) == 0 {
		// Leaf: literal or a property access on an element variable.
		if len(vars) > 0 && s.r.Intn(2) == 0 {
			v := vars[s.r.Intn(len(vars))]
			if id, ok := s.elemScope[v]; ok {
				if name, ok2 := s.randomPropName(s.refOf(id)); ok2 {
					return ast.Prop(v, name)
				}
			}
			return ast.Var(v)
		}
		return randomLiteral(s.r)
	}
	switch s.r.Intn(5) {
	case 0:
		return ast.Bin(ast.OpAdd, s.tryRandomExprVars(vars, depth-1), ast.Lit(value.Int(int64(s.r.Intn(100)))))
	case 1:
		return ast.Bin(ast.OpNeq, s.tryRandomExprVars(vars, depth-1), s.tryRandomExprVars(vars, depth-1))
	case 2:
		return &ast.FuncCall{Name: "toString", Args: []ast.Expr{s.tryRandomExprVars(vars, depth - 1)}}
	case 3:
		return &ast.FuncCall{Name: "coalesce", Args: []ast.Expr{s.tryRandomExprVars(vars, depth - 1), randomLiteral(s.r)}}
	default:
		return &ast.ListLit{Elems: []ast.Expr{s.tryRandomExprVars(vars, depth - 1)}}
	}
}

func randomLiteral(r *rand.Rand) ast.Expr {
	switch r.Intn(4) {
	case 0:
		return ast.Lit(value.Int(int64(int32(r.Uint32()))))
	case 1:
		return ast.Lit(value.Str(randString(r, 4+r.Intn(6))))
	case 2:
		return ast.Lit(value.Bool(r.Intn(2) == 0))
	default:
		return ast.Lit(value.Float(float64(r.Intn(1000)) / 4))
	}
}

// randomPropName picks a property present on the element.
func (s *Synthesizer) randomPropName(ref elemRef) (string, bool) {
	var props map[string]value.Value
	if ref.isRel {
		rel := s.g.Rel(ref.id)
		if rel == nil {
			return "", false
		}
		props = rel.Props
	} else {
		n := s.g.Node(ref.id)
		if n == nil {
			return "", false
		}
		props = n.Props
	}
	names := make([]string, 0, len(props))
	for k := range props {
		names = append(names, k)
	}
	if len(names) == 0 {
		return "", false
	}
	sortStrings(names)
	return names[s.r.Intn(len(names))], true
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// truePredicate builds a predicate that holds (TriTrue) in every current
// symbolic row, creating the rich cross-clause data dependencies of §3.3
// (e.g. Figure 1's `n5.k2 <= -881779936`). The candidate is verified
// against the tracker; on failure a literal `true` is used.
func (s *Synthesizer) truePredicate(depth int) ast.Expr {
	// The constant-variable set does not change between retries; compute
	// it once for all four candidates.
	vars := s.tracker.ConstantVarNames()
	for try := 0; try < 4; try++ {
		e := s.candidateTruePredicate(vars, depth)
		if e == nil {
			continue
		}
		if ok, err := s.tracker.HoldsEverywhere(e); err == nil && ok {
			return e
		}
	}
	return ast.Lit(value.True)
}

func (s *Synthesizer) candidateTruePredicate(vars []string, depth int) ast.Expr {
	if len(vars) == 0 {
		return ast.Lit(value.True)
	}
	v := vars[s.r.Intn(len(vars))]
	var access ast.Expr
	var actual value.Value
	if id, ok := s.elemScope[v]; ok {
		ref := s.refOf(id)
		name, ok2 := s.randomPropName(ref)
		if !ok2 {
			return nil
		}
		access = ast.Prop(v, name)
		actual, _ = s.lookupProp(ref, name)
	} else {
		access = ast.Var(v)
		var err error
		actual, err = s.tracker.EvalConstant(access)
		if err != nil {
			return nil
		}
	}
	if actual.IsNull() {
		return &ast.Unary{Op: ast.OpIsNull, X: access}
	}
	if actual.IsEntity() {
		// Entity values (an endNode alias, say) have no literal form;
		// only null checks are safely expressible.
		return &ast.Unary{Op: ast.OpIsNotNull, X: access}
	}
	switch s.r.Intn(5) {
	case 0: // equality with hidden constant
		return ast.Bin(ast.OpEq, access, genValueExpr(s.r, actual, s.r.Intn(depth+1)))
	case 1: // ordering
		switch actual.Kind() {
		case value.KindInt:
			return ast.Bin(ast.OpLe, access, ast.Lit(value.Int(actual.AsInt())))
		case value.KindString:
			return ast.Bin(ast.OpGe, access, ast.Lit(value.Str(""))) // every string ≥ ""
		default:
			return &ast.Unary{Op: ast.OpIsNotNull, X: access}
		}
	case 2: // string suffix (Figure 1 style)
		if actual.Kind() == value.KindString && actual.AsString() != "" {
			str := actual.AsString()
			suffix := str[len(str)/2:]
			return ast.Bin(ast.OpEndsWith, access, ast.Lit(value.Str(suffix)))
		}
		return &ast.Unary{Op: ast.OpIsNotNull, X: access}
	case 3: // membership
		junk := randomLiteral(s.r)
		return ast.Bin(ast.OpIn, access, &ast.ListLit{Elems: []ast.Expr{genValueExpr(s.r, actual, s.r.Intn(depth+1)), junk}})
	default: // double negation
		return &ast.Unary{Op: ast.OpNot, X: &ast.Unary{Op: ast.OpNot, X: ast.Bin(ast.OpEq, access, ast.Lit(actual))}}
	}
}
