package core

import (
	"math/rand"
	"sort"

	"gqs/internal/cypher/ast"
	"gqs/internal/graph"
)

// Path is a concrete walk through the generated graph: the skeleton of a
// search pattern (§3.4's "base pattern"). Steps[i] connects Nodes[i] to
// Nodes[i+1]; Forward records whether the relationship is traversed from
// its start to its end.
type Path struct {
	Nodes []graph.ID
	Steps []PathStep
}

// PathStep is one relationship traversal of a Path.
type PathStep struct {
	Rel     graph.ID
	Forward bool
}

// clone returns a deep copy.
func (p *Path) clone() *Path {
	return &Path{
		Nodes: append([]graph.ID(nil), p.Nodes...),
		Steps: append([]PathStep(nil), p.Steps...),
	}
}

// reverse returns the path walked end-to-start.
func (p *Path) reverse() *Path {
	n := len(p.Nodes)
	out := &Path{Nodes: make([]graph.ID, n), Steps: make([]PathStep, len(p.Steps))}
	for i, id := range p.Nodes {
		out.Nodes[n-1-i] = id
	}
	for i, s := range p.Steps {
		out.Steps[len(p.Steps)-1-i] = PathStep{Rel: s.Rel, Forward: !s.Forward}
	}
	return out
}

// relSet returns the relationships used by the path.
func (p *Path) relSet() map[graph.ID]bool {
	out := make(map[graph.ID]bool, len(p.Steps))
	for _, s := range p.Steps {
		out[s.Rel] = true
	}
	return out
}

// indexOfNode returns the position of the node in the path, or -1.
func (p *Path) indexOfNode(id graph.ID) int {
	for i, n := range p.Nodes {
		if n == id {
			return i
		}
	}
	return -1
}

// hasRel reports whether the path traverses the relationship.
func (p *Path) hasRel(id graph.ID) bool {
	for _, s := range p.Steps {
		if s.Rel == id {
			return true
		}
	}
	return false
}

// appendStep extends the path by one traversal.
func (p *Path) appendStep(s PathStep, to graph.ID) {
	p.Steps = append(p.Steps, s)
	p.Nodes = append(p.Nodes, to)
}

// bfsPath finds a shortest undirected walk from one of the start nodes to
// the target node, avoiding the given relationships. It returns nil when
// the target is unreachable.
func bfsPath(g *graph.Graph, starts []graph.ID, target graph.ID, avoid map[graph.ID]bool) *Path {
	type crumb struct {
		prevNode graph.ID
		step     PathStep
	}
	visited := map[graph.ID]crumb{}
	queue := append([]graph.ID(nil), starts...)
	for _, s := range starts {
		visited[s] = crumb{prevNode: -1}
	}
	found := false
	if contains(starts, target) {
		found = true
	}
	for len(queue) > 0 && !found {
		cur := queue[0]
		queue = queue[1:]
		for _, rid := range g.Incident(cur) {
			if avoid[rid] {
				continue
			}
			r := g.Rel(rid)
			next := r.End
			fwd := true
			if next == cur && r.Start != r.End {
				next = r.Start
				fwd = false
			} else if r.Start != cur {
				next = r.Start
				fwd = false
			}
			if _, seen := visited[next]; seen {
				continue
			}
			visited[next] = crumb{prevNode: cur, step: PathStep{Rel: rid, Forward: fwd}}
			if next == target {
				found = true
				break
			}
			queue = append(queue, next)
		}
	}
	if !found {
		return nil
	}
	// Rebuild the walk back from the target.
	var revNodes []graph.ID
	var revSteps []PathStep
	cur := target
	for {
		revNodes = append(revNodes, cur)
		c := visited[cur]
		if c.prevNode == -1 {
			break
		}
		revSteps = append(revSteps, c.step)
		cur = c.prevNode
	}
	out := &Path{}
	for i := len(revNodes) - 1; i >= 0; i-- {
		out.Nodes = append(out.Nodes, revNodes[i])
	}
	for i := len(revSteps) - 1; i >= 0; i-- {
		out.Steps = append(out.Steps, revSteps[i])
	}
	return out
}

func contains(ids []graph.ID, id graph.ID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// collectChains builds base patterns: one or more concrete paths that
// together contain every required element (§3.4, "GQS begins by
// collecting paths through the graph that contain the elements to be
// introduced"). Relationships are not repeated within the clause.
func collectChains(r *rand.Rand, g *graph.Graph, required []elemRef) []*Path {
	reqNodes := map[graph.ID]bool{}
	reqRels := map[graph.ID]bool{}
	for _, e := range required {
		if e.isRel {
			reqRels[e.id] = true
		} else {
			reqNodes[e.id] = true
		}
	}
	usedRels := map[graph.ID]bool{}
	var chains []*Path

	// Deterministic element order, then shuffled.
	var order []elemRef
	order = append(order, required...)
	sort.Slice(order, func(i, j int) bool { return order[i].id < order[j].id })
	r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	covered := func(e elemRef) bool {
		for _, c := range chains {
			if e.isRel && c.hasRel(e.id) {
				return true
			}
			if !e.isRel && c.indexOfNode(e.id) >= 0 {
				return true
			}
		}
		return false
	}

	startChain := func(e elemRef) *Path {
		if !e.isRel {
			return &Path{Nodes: []graph.ID{e.id}}
		}
		rel := g.Rel(e.id)
		usedRels[e.id] = true
		p := &Path{Nodes: []graph.ID{rel.Start}}
		p.appendStep(PathStep{Rel: e.id, Forward: true}, rel.End)
		if r.Intn(2) == 0 {
			return p.reverse()
		}
		return p
	}

	extendTo := func(c *Path, e elemRef) bool {
		target := e.id
		via := graph.ID(-1)
		if e.isRel {
			// Reach either endpoint, then traverse the relationship.
			rel := g.Rel(e.id)
			target, via = rel.Start, rel.End
		}
		ends := []graph.ID{c.Nodes[len(c.Nodes)-1]}
		sub := bfsPath(g, ends, target, usedRels)
		if sub == nil && e.isRel {
			target, via = via, target
			sub = bfsPath(g, ends, target, usedRels)
		}
		if sub == nil || len(sub.Nodes)+len(c.Nodes) > 8 {
			return false
		}
		for _, s := range sub.Steps {
			usedRels[s.Rel] = true
		}
		for i, s := range sub.Steps {
			c.appendStep(s, sub.Nodes[i+1])
		}
		if e.isRel {
			if usedRels[e.id] {
				// The BFS walk itself traversed the required relationship
				// on the way to its endpoint; the chain already covers it.
				return c.hasRel(e.id)
			}
			rel := g.Rel(e.id)
			usedRels[e.id] = true
			if rel.Start == target {
				c.appendStep(PathStep{Rel: e.id, Forward: true}, rel.End)
			} else {
				c.appendStep(PathStep{Rel: e.id, Forward: false}, rel.Start)
			}
		}
		return true
	}

	for _, e := range order {
		if covered(e) {
			continue
		}
		if len(chains) > 0 && r.Intn(3) == 0 {
			// Occasionally extend the most recent chain toward the
			// element; separate chains otherwise, which yields the
			// multi-pattern MATCH clauses of Figure 1.
			if extendTo(chains[len(chains)-1], e) {
				continue
			}
		}
		chains = append(chains, startChain(e))
	}
	if len(chains) == 0 {
		// A MATCH step with no required elements still needs a pattern;
		// anchor on a random node.
		ids := g.NodeIDs()
		if len(ids) == 0 {
			return nil
		}
		chains = append(chains, &Path{Nodes: []graph.ID{ids[r.Intn(len(ids))]}})
	}
	// Random extension of chain ends keeps patterns from degenerating to
	// single nodes.
	for _, c := range chains {
		for len(c.Steps) < 1+r.Intn(4) {
			if !extendRandom(r, g, c, usedRels) {
				break
			}
		}
	}
	return chains
}

// extendRandom grows the chain by one unused relationship from its tail.
func extendRandom(r *rand.Rand, g *graph.Graph, c *Path, used map[graph.ID]bool) bool {
	tail := c.Nodes[len(c.Nodes)-1]
	inc := g.Incident(tail)
	if len(inc) == 0 {
		return false
	}
	for try := 0; try < 4; try++ {
		rid := inc[r.Intn(len(inc))]
		if used[rid] {
			continue
		}
		rel := g.Rel(rid)
		used[rid] = true
		if rel.Start == tail {
			c.appendStep(PathStep{Rel: rid, Forward: true}, rel.End)
		} else {
			c.appendStep(PathStep{Rel: rid, Forward: false}, rel.Start)
		}
		return true
	}
	return false
}

// clonePaths deep-copies a chain set.
func clonePaths(ps []*Path) []*Path {
	out := make([]*Path, len(ps))
	for i, p := range ps {
		out[i] = p.clone()
	}
	return out
}

// coversAll reports whether the chains contain every required element.
func coversAll(chains []*Path, required []elemRef) bool {
	for _, e := range required {
		found := false
		for _, c := range chains {
			if (e.isRel && c.hasRel(e.id)) || (!e.isRel && c.indexOfNode(e.id) >= 0) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// mutateChains applies the three pattern-mutation strategies of §3.4
// (concatenation, branching, cross) by combining base chains with the
// patterns used in previous clauses, then returns the mutated chain set.
// Mutations that would repeat a relationship within the clause are
// skipped, preserving well-formedness.
func mutateChains(r *rand.Rand, chains []*Path, history []*Path) []*Path {
	if len(history) == 0 || len(chains) == 0 {
		return chains
	}
	used := map[graph.ID]bool{}
	for _, c := range chains {
		for rel := range c.relSet() {
			used[rel] = true
		}
	}
	prev := history[r.Intn(len(history))]
	base := chains[r.Intn(len(chains))]
	// Find a node shared between the base chain and the previous pattern.
	type sharing struct {
		node    graph.ID
		basePos int
		prevPos int
	}
	var shared []sharing
	for i, n := range base.Nodes {
		if j := prev.indexOfNode(n); j >= 0 {
			shared = append(shared, sharing{node: n, basePos: i, prevPos: j})
		}
	}
	if len(shared) == 0 {
		return chains
	}
	s := shared[r.Intn(len(shared))]
	baseEnd := s.basePos == 0 || s.basePos == len(base.Nodes)-1
	prevEnd := s.prevPos == 0 || s.prevPos == len(prev.Nodes)-1
	addIfFresh := func(p *Path) bool {
		if p == nil || len(p.Steps) == 0 {
			return false
		}
		// Check step-by-step rather than over relSet(): a recombined
		// walk may repeat a relationship internally (base and previous
		// pattern can share relationships), which a set would hide.
		local := map[graph.ID]bool{}
		for _, s := range p.Steps {
			if used[s.Rel] || local[s.Rel] {
				return false
			}
			local[s.Rel] = true
		}
		for rel := range local {
			used[rel] = true
		}
		chains = append(chains, p)
		return true
	}
	switch {
	case baseEnd && prevEnd:
		// ① Concatenation: extend the base chain with the previous
		// pattern's walk, joined at the shared node.
		seg := prev.clone()
		if s.prevPos != 0 {
			seg = seg.reverse()
		}
		fresh := true
		for rel := range seg.relSet() {
			if used[rel] {
				fresh = false
			}
		}
		if fresh {
			oriented := base
			if s.basePos == 0 {
				oriented = base.reverse()
			}
			for i, st := range seg.Steps {
				oriented.appendStep(st, seg.Nodes[i+1])
				used[st.Rel] = true
			}
			chains[indexOfPath(chains, base)] = oriented
		}
	case prevEnd != baseEnd:
		// ② Branching: a sub-walk of the previous pattern starting at
		// the shared node becomes a second chain, sharing the node's
		// variable and so forming a branch.
		seg := subWalkFrom(prev, s.prevPos, 2)
		addIfFresh(seg)
	default:
		// ③ Cross: split both walks at the shared node and recombine the
		// halves into new chains.
		b1, b2 := splitAt(base, s.basePos)
		p1, p2 := splitAt(prev, s.prevPos)
		chains = removePath(chains, base)
		for rel := range base.relSet() {
			delete(used, rel)
		}
		// Recombine: base-left + prev-right, prev-left + base-right.
		c1 := joinAt(b1, p2)
		c2 := joinAt(p1, b2)
		if !addIfFresh(c1) {
			addIfFresh(b1)
			addIfFresh(p2)
		}
		if !addIfFresh(c2) {
			addIfFresh(b2)
		}
	}
	return chains
}

func indexOfPath(ps []*Path, p *Path) int {
	for i, x := range ps {
		if x == p {
			return i
		}
	}
	return 0
}

func removePath(ps []*Path, p *Path) []*Path {
	for i, x := range ps {
		if x == p {
			return append(append([]*Path{}, ps[:i]...), ps[i+1:]...)
		}
	}
	return ps
}

// subWalkFrom extracts up to maxSteps traversals starting at position pos,
// walking toward the nearer end.
func subWalkFrom(p *Path, pos, maxSteps int) *Path {
	out := &Path{Nodes: []graph.ID{p.Nodes[pos]}}
	roomLeft, roomRight := pos, len(p.Steps)-pos
	if roomRight >= roomLeft {
		for i := pos; i < len(p.Steps) && len(out.Steps) < maxSteps; i++ {
			out.appendStep(p.Steps[i], p.Nodes[i+1])
		}
	} else {
		// Walk left, reversing each traversal.
		for i := pos - 1; i >= 0 && len(out.Steps) < maxSteps; i-- {
			st := p.Steps[i]
			out.appendStep(PathStep{Rel: st.Rel, Forward: !st.Forward}, p.Nodes[i])
		}
	}
	return out
}

// splitAt cuts the path at node position pos, returning the left part
// (ending at the node) and the right part (starting at the node).
func splitAt(p *Path, pos int) (*Path, *Path) {
	left := &Path{
		Nodes: append([]graph.ID(nil), p.Nodes[:pos+1]...),
		Steps: append([]PathStep(nil), p.Steps[:pos]...),
	}
	right := &Path{
		Nodes: append([]graph.ID(nil), p.Nodes[pos:]...),
		Steps: append([]PathStep(nil), p.Steps[pos:]...),
	}
	return left, right
}

// joinAt concatenates a (ending at node X) with b (starting at X).
func joinAt(a, b *Path) *Path {
	if len(a.Nodes) == 0 || len(b.Nodes) == 0 {
		return nil
	}
	if a.Nodes[len(a.Nodes)-1] != b.Nodes[0] {
		return nil
	}
	out := a.clone()
	for i, st := range b.Steps {
		out.appendStep(st, b.Nodes[i+1])
	}
	if len(out.Steps) == 0 {
		return nil
	}
	return out
}

// encChain is a chain encoded as an AST pattern together with its
// intended concrete binding: variable names to graph elements.
type encChain struct {
	part    *ast.PatternPart
	nodeIDs []graph.ID
	relIDs  []graph.ID
}

// encodeChains renders concrete paths as AST search patterns, assigning
// variables (reusing in-scope variables for already-bound elements, which
// creates the cross-clause references of §3.3), optionally attaching
// labels and types, and randomly erasing relationship directions (§3.4's
// additional mutations).
func (s *Synthesizer) encodeChains(chains []*Path, scope map[string]graph.ID) ([]*encChain, map[string]graph.ID) {
	// element -> variable for this clause: start from the in-scope nodes
	// and relationships.
	elemVar := map[elemRef]string{}
	for v, id := range scope {
		// scope maps var -> element id; invert. Rel vs node resolved by
		// the graph.
		if s.g.Node(id) != nil && s.g.Rel(id) == nil {
			elemVar[elemRef{id: id}] = v
		} else if s.g.Rel(id) != nil {
			elemVar[elemRef{id: id, isRel: true}] = v
		}
	}
	binding := map[string]graph.ID{}
	varOf := func(ref elemRef) string {
		if v, ok := elemVar[ref]; ok {
			binding[v] = ref.id
			return v
		}
		var v string
		if ref.isRel {
			if planned, ok := s.plan.ElemVar[ref]; ok {
				v = planned
			} else {
				v = s.freshVar("r")
			}
		} else {
			if planned, ok := s.plan.ElemVar[ref]; ok {
				v = planned
			} else {
				v = s.freshVar("n")
			}
		}
		elemVar[ref] = v
		binding[v] = ref.id
		return v
	}

	out := make([]*encChain, 0, len(chains))
	for _, c := range chains {
		part := &ast.PatternPart{
			Nodes: make([]*ast.NodePattern, 0, len(c.Nodes)),
			Rels:  make([]*ast.RelPattern, 0, len(c.Steps)),
		}
		ec := &encChain{part: part, nodeIDs: make([]graph.ID, 0, len(c.Nodes)), relIDs: make([]graph.ID, 0, len(c.Steps))}
		for i, nid := range c.Nodes {
			np := &ast.NodePattern{Variable: varOf(elemRef{id: nid})}
			n := s.g.Node(nid)
			if len(n.Labels) > 0 && s.r.Intn(2) == 0 {
				// Attach a random non-empty subset of the labels.
				k := 1 + s.r.Intn(len(n.Labels))
				perm := s.r.Perm(len(n.Labels))
				np.Labels = make([]string, 0, k)
				for _, j := range perm[:k] {
					np.Labels = append(np.Labels, n.Labels[j])
				}
			}
			part.Nodes = append(part.Nodes, np)
			ec.nodeIDs = append(ec.nodeIDs, nid)
			if i < len(c.Steps) {
				st := c.Steps[i]
				rel := s.g.Rel(st.Rel)
				rp := &ast.RelPattern{Variable: varOf(elemRef{id: st.Rel, isRel: true})}
				if s.r.Intn(2) == 0 {
					rp.Types = []string{rel.Type}
				}
				switch {
				case s.r.Intn(4) == 0:
					rp.Direction = ast.DirBoth // erase the direction
				case st.Forward:
					rp.Direction = ast.DirRight
				default:
					rp.Direction = ast.DirLeft
				}
				part.Rels = append(part.Rels, rp)
				ec.relIDs = append(ec.relIDs, st.Rel)
			}
		}
		out = append(out, ec)
	}
	return out, binding
}
