package core

import (
	"gqs/internal/cypher/ast"
	"gqs/internal/eval"
	"gqs/internal/graph"
	"gqs/internal/value"
)

// Thin aliases keeping the test bodies compact.

type valueT = value.Value

func intV(i int64) valueT         { return value.Int(i) }
func strV(s string) valueT        { return value.Str(s) }
func boolV(b bool) valueT         { return value.Bool(b) }
func floatV(f float64) valueT     { return value.Float(f) }
func listV(vs ...valueT) valueT   { return value.List(vs...) }
func varE(name string) ast.Expr   { return ast.Var(name) }
func astString(e ast.Expr) string { return ast.ExprString(e) }

func equivalent(a, b valueT) bool { return value.Equivalent(a, b) }

func listLit(xs ...int64) ast.Expr {
	l := &ast.ListLit{}
	for _, x := range xs {
		l.Elems = append(l.Elems, ast.Lit(value.Int(x)))
	}
	return l
}

func evalBare(g *graph.Graph, e ast.Expr) (valueT, error) {
	return eval.Eval(&eval.Ctx{Graph: g, Env: map[string]value.Value{}}, e)
}
