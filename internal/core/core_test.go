package core

import (
	"math/rand"
	"testing"

	"gqs/internal/cypher/ast"
	"gqs/internal/engine"
	"gqs/internal/graph"
)

func TestSelectGroundTruth(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g, _ := graph.Generate(r, graph.GenConfig{MaxNodes: 8, MaxRels: 20})
	for i := 0; i < 50; i++ {
		gt := SelectGroundTruth(r, g, 6)
		if len(gt.Entries) < 1 || len(gt.Entries) > 6 {
			t.Fatalf("ground truth size %d out of bounds", len(gt.Entries))
		}
		for _, e := range gt.Entries {
			v, ok := g.Lookup(e.Key)
			if !ok {
				t.Fatalf("selected property %v does not exist", e.Key)
			}
			if v.Key() != e.Value.Key() {
				t.Fatalf("ground-truth value mismatch for %v", e.Key)
			}
		}
	}
}

func TestBuildPlanConstraints(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	g, _ := graph.Generate(r, graph.GenConfig{MaxNodes: 8, MaxRels: 20})
	gt := SelectGroundTruth(r, g, 4)
	p := BuildPlan(r, g, gt, DefaultPlanConfig())

	// Every ground-truth entry has an access op and its element has an
	// add and a remove.
	accessCount := 0
	adds := map[elemRef]bool{}
	removes := map[elemRef]bool{}
	for _, o := range p.Ops {
		switch o.Kind {
		case OpAccessProp:
			if o.Essential {
				accessCount++
			}
		case OpAddElem:
			adds[elemRef{id: o.Element, isRel: o.IsRel}] = true
		case OpRemoveElem:
			removes[elemRef{id: o.Element, isRel: o.IsRel}] = true
		}
	}
	if accessCount != len(gt.Entries) {
		t.Errorf("access ops %d != entries %d", accessCount, len(gt.Entries))
	}
	for ref := range adds {
		if !removes[ref] {
			t.Errorf("element %v has add without paired remove", ref)
		}
	}
	// GT aliases are distinct a0..aN-1.
	seen := map[string]bool{}
	for _, e := range gt.Entries {
		if e.Alias == "" || seen[e.Alias] {
			t.Errorf("bad alias %q", e.Alias)
		}
		seen[e.Alias] = true
	}
}

func TestScheduleRespectsConstraints(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g, _ := graph.Generate(r, graph.GenConfig{MaxNodes: 10, MaxRels: 30})
	for trial := 0; trial < 100; trial++ {
		gt := SelectGroundTruth(r, g, 5)
		p := BuildPlan(r, g, gt, DefaultPlanConfig())
		steps := Schedule(r, p, 9)

		pos := map[*Operation]int{}
		for i, st := range steps {
			if len(st.Ops) > 0 && st.Clause == ClauseUnwind && len(st.Ops) != 1 {
				t.Fatalf("UNWIND step with %d ops", len(st.Ops))
			}
			for _, o := range st.Ops {
				if o.Clause() != st.Clause {
					t.Fatalf("op %v in %v step", o, st.Clause)
				}
				pos[o] = i
			}
		}
		if len(pos) != len(p.Ops) {
			t.Fatalf("scheduled %d of %d ops", len(pos), len(p.Ops))
		}
		for _, o := range p.Ops {
			for _, succ := range o.strong {
				if pos[succ] <= pos[o] {
					t.Fatalf("strong constraint violated: %v at %d, %v at %d", o, pos[o], succ, pos[succ])
				}
			}
			for _, succ := range o.weak {
				if pos[succ] < pos[o] {
					t.Fatalf("weak constraint violated: %v at %d, %v at %d", o, pos[o], succ, pos[succ])
				}
			}
		}
		// The final step must be a projection (it becomes RETURN).
		if steps[len(steps)-1].Clause != ClauseProjection {
			t.Fatal("last step must be a projection")
		}
	}
}

func TestScheduleVarsTracking(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	g, _ := graph.Generate(r, graph.GenConfig{MaxNodes: 8, MaxRels: 20})
	gt := SelectGroundTruth(r, g, 3)
	p := BuildPlan(r, g, gt, DefaultPlanConfig())
	steps := Schedule(r, p, 9)
	// VarsBefore of step i+1 equals VarsAfter of step i.
	for i := 1; i < len(steps); i++ {
		a, b := steps[i-1].VarsAfter, steps[i].VarsBefore
		if len(a) != len(b) {
			t.Fatalf("step %d boundary mismatch: %v vs %v", i, a, b)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("step %d boundary mismatch: %v vs %v", i, a, b)
			}
		}
	}
	// GT aliases are referenceable at the end (they are never removed).
	last := steps[len(steps)-1]
	final := map[string]bool{}
	for _, v := range last.VarsAfter {
		final[v] = true
	}
	for _, e := range gt.Entries {
		if !final[e.Alias] {
			t.Errorf("GT alias %s missing from final scope %v", e.Alias, last.VarsAfter)
		}
	}
}

// TestSynthesizeSoundness is the core soundness property of GQS: a
// synthesized query executed on the pristine reference engine must
// produce exactly the expected result set. Any mismatch would be a false
// positive of the tester itself.
func TestSynthesizeSoundness(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, seed := range seeds {
		r := rand.New(rand.NewSource(seed))
		g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 10, MaxRels: 40})
		eng := engine.NewReference()
		eng.LoadGraph(g, schema)
		syn := NewSynthesizer(r, g, schema, DefaultConfig())
		for i := 0; i < 25; i++ {
			gt := SelectGroundTruth(r, g, 4)
			sq, err := syn.Synthesize(gt)
			if err != nil {
				t.Fatalf("seed %d iter %d: synthesize: %v", seed, i, err)
			}
			actual, err := eng.Execute(sq.Text)
			if err != nil {
				t.Fatalf("seed %d iter %d: execute: %v\n%s", seed, i, err, sq.Text)
			}
			if !sq.Expected.Equal(actual) {
				t.Fatalf("seed %d iter %d: oracle mismatch\nquery: %s\nexpected:\n%s\nactual:\n%s",
					seed, i, sq.Text, sq.Expected, actual)
			}
		}
	}
}

// TestSynthesizeAcrossDialects checks soundness against the
// homomorphism-dialect engine with the §4 workaround applied.
func TestSynthesizeAcrossDialects(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 8, MaxRels: 25})
	eng := engine.New(engine.Options{
		Dialect: engine.Dialect{Name: "falkordb-like", RelUniqueness: false, ProvidesDBLabels: true},
	})
	eng.LoadGraph(g, schema)
	cfg := DefaultConfig()
	cfg.RelUniqueness = false // target deviates; GQS adds <> predicates
	syn := NewSynthesizer(r, g, schema, cfg)
	for i := 0; i < 30; i++ {
		gt := SelectGroundTruth(r, g, 3)
		sq, err := syn.Synthesize(gt)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		actual, err := eng.Execute(sq.Text)
		if err != nil {
			t.Fatalf("iter %d: execute: %v\n%s", i, err, sq.Text)
		}
		if !sq.Expected.Equal(actual) {
			t.Fatalf("iter %d: oracle mismatch\nquery: %s\nexpected:\n%s\nactual:\n%s",
				i, sq.Text, sq.Expected, actual)
		}
	}
}

func TestSynthesizedQueryShape(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 10, MaxRels: 40})
	syn := NewSynthesizer(r, g, schema, DefaultConfig())
	sawMultiStep := false
	for i := 0; i < 30; i++ {
		gt := SelectGroundTruth(r, g, 4)
		sq, err := syn.Synthesize(gt)
		if err != nil {
			t.Fatal(err)
		}
		if sq.Steps < 2 {
			t.Errorf("query synthesized with %d steps; minimum is 2", sq.Steps)
		}
		if sq.Steps >= 4 {
			sawMultiStep = true
		}
		if len(sq.Expected.Columns) != len(gt.Entries) {
			t.Errorf("expected columns %v != GT entries %d", sq.Expected.Columns, len(gt.Entries))
		}
		// The final clause of the first part must be RETURN.
		clauses := sq.Query.Parts[0].Clauses
		if _, ok := clauses[len(clauses)-1].(*ast.ReturnClause); !ok {
			t.Errorf("query must end with RETURN: %s", sq.Text)
		}
	}
	if !sawMultiStep {
		t.Error("no query used ≥4 synthesis steps; scheduling looks degenerate")
	}
}

func TestUniquifyGuarantee(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 6, MaxRels: 60})
		syn := NewSynthesizer(r, g, schema, DefaultConfig())
		gt := SelectGroundTruth(r, g, 3)
		syn.plan = BuildPlan(r, g, gt, DefaultPlanConfig())
		syn.tracker = NewTracker(g)
		syn.elemScope = map[string]int64{}
		var required []elemRef
		for _, o := range syn.plan.Ops {
			if o.Kind == OpAddElem {
				required = append(required, elemRef{id: o.Element, isRel: o.IsRel})
			}
		}
		chains := collectChains(r, g, required)
		enc, binding := syn.encodeChains(chains, syn.elemScope)
		pins := syn.uniquify(enc, syn.elemScope, binding)
		if n := syn.countMatches(enc, syn.elemScope, pins, 3); n != 1 {
			t.Fatalf("trial %d: pattern matches %d times after uniquification", trial, n)
		}
	}
}

func TestTracker(t *testing.T) {
	g := graph.New()
	tr := NewTracker(g)
	if tr.RowCount() != 1 || tr.TotalMult() != 1 {
		t.Fatal("tracker must start with one row")
	}
	tr.Bind(map[string]valueT{"x": intV(1)})
	if got := tr.Vars(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("Vars = %v", got)
	}
	// Unwind a 3-element list.
	if err := tr.Unwind("u", listLit(1, 2, 2)); err != nil {
		t.Fatal(err)
	}
	if tr.RowCount() != 3 || tr.TotalMult() != 3 {
		t.Fatalf("after unwind: %d rows, %d mult", tr.RowCount(), tr.TotalMult())
	}
	consts := tr.ConstantVars()
	if !consts["x"] || consts["u"] {
		t.Errorf("ConstantVars = %v", consts)
	}
	// Project away u without DISTINCT: multiplicities sum.
	if err := tr.Project([]ProjItem{{Name: "x", Expr: varE("x")}}, false); err != nil {
		t.Fatal(err)
	}
	if tr.RowCount() != 1 || tr.TotalMult() != 3 {
		t.Fatalf("after project: %d rows, mult %d", tr.RowCount(), tr.TotalMult())
	}
	// DISTINCT collapses.
	if err := tr.Project([]ProjItem{{Name: "x", Expr: varE("x")}}, true); err != nil {
		t.Fatal(err)
	}
	if tr.TotalMult() != 1 {
		t.Fatalf("after distinct: mult %d", tr.TotalMult())
	}
	if err := tr.Limit(5); err != nil {
		t.Fatal(err)
	}
	res := tr.Result([]string{"x"})
	if res.Len() != 1 || res.Rows[0][0].AsInt() != 1 {
		t.Fatalf("result: %v", res)
	}
}

func TestGenValueExpr(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := graph.New()
	targets := []valueT{
		intV(0), intV(-42), intV(1999999999),
		strV(""), strV("hello world"), strV("q11cZH6h"),
		boolV(true), boolV(false),
		floatV(2.5), floatV(-0.125),
		listV(intV(1), strV("a")),
	}
	for _, target := range targets {
		for i := 0; i < 40; i++ {
			e := genValueExpr(r, target, 1+r.Intn(5))
			got, err := evalBare(g, e)
			if err != nil {
				t.Fatalf("genValueExpr(%v): eval error %v on %s", target, err, astString(e))
			}
			if !equivalent(got, target) {
				t.Fatalf("genValueExpr(%v) evaluated to %v via %s", target, got, astString(e))
			}
		}
	}
}
