package core

import (
	"sort"

	"gqs/internal/cypher/ast"
	"gqs/internal/graph"
)

// pin records one uniquifying decision (§3.4, Figure 6): the pattern
// variable must bind exactly the intended element; competitors are the
// graph elements that would otherwise also match at the decision point.
// Pins are rendered as WHERE predicates — initially `var.id = <id>`, then
// complexified by Algorithm 2 while preserving distinguishability.
type pin struct {
	varName     string
	elem        elemRef
	competitors []elemRef
}

// uniquify walks the encoded chains from bound anchors outward, adding
// pins wherever several graph candidates could match a pattern segment,
// then verifies global uniqueness with a full backtracking count and
// falls back to pinning every element if the stepwise pass was not
// sufficient. The returned pins guarantee that the clause's patterns
// match exactly the intended binding.
func (s *Synthesizer) uniquify(chains []*encChain, inScope map[string]graph.ID, binding map[string]graph.ID) []pin {
	var pins []pin
	fixed := map[string]graph.ID{}
	for v, id := range inScope {
		fixed[v] = id
	}
	pinVar := func(v string, ref elemRef, comps []elemRef) {
		if _, done := fixed[v]; done {
			return
		}
		pins = append(pins, pin{varName: v, elem: ref, competitors: comps})
		fixed[v] = ref.id
	}

	for _, ec := range chains {
		// Anchor: the first position whose variable is already fixed.
		anchor := -1
		for i, np := range ec.part.Nodes {
			if _, ok := fixed[np.Variable]; ok {
				anchor = i
				break
			}
		}
		if anchor < 0 {
			// No anchored element: pin the first node (§3.4: "one
			// pattern element is randomly picked, and a predicate is
			// constructed to ensure that it only matches the desired
			// graph element").
			anchor = 0
			np := ec.part.Nodes[0]
			ref := elemRef{id: ec.nodeIDs[0]}
			pinVar(np.Variable, ref, s.nodeCompetitors(np, ec.nodeIDs[0]))
		}
		fixed[ec.part.Nodes[anchor].Variable] = ec.nodeIDs[anchor]
		// March right, then left.
		for i := anchor; i < len(ec.relIDs); i++ {
			s.uniquifySegment(ec, i, true, fixed, pinVar)
		}
		for i := anchor - 1; i >= 0; i-- {
			s.uniquifySegment(ec, i, false, fixed, pinVar)
		}
	}

	// Global verification: the stepwise pass is a heuristic; if any
	// ambiguity survives, pin everything.
	if s.countMatches(chains, inScope, pins, 2) != 1 {
		pins = pins[:0]
		fixed = map[string]graph.ID{}
		for v, id := range inScope {
			fixed[v] = id
		}
		for _, ec := range chains {
			for i, np := range ec.part.Nodes {
				pinVar(np.Variable, elemRef{id: ec.nodeIDs[i]}, s.nodeCompetitors(np, ec.nodeIDs[i]))
			}
			for i, rp := range ec.part.Rels {
				pinVar(rp.Variable, elemRef{id: ec.relIDs[i], isRel: true}, s.relCompetitors(rp, ec.relIDs[i]))
			}
		}
	}
	return pins
}

// uniquifySegment handles one pattern segment: expanding from the bound
// node at position i (forward) or i+1 (backward) across relationship i.
func (s *Synthesizer) uniquifySegment(ec *encChain, i int, forward bool, fixed map[string]graph.ID, pinVar func(string, elemRef, []elemRef)) {
	rp := ec.part.Rels[i]
	var fromPos, toPos int
	if forward {
		fromPos, toPos = i, i+1
	} else {
		fromPos, toPos = i+1, i
	}
	from := ec.nodeIDs[fromPos]
	toPattern := ec.part.Nodes[toPos]
	cands := s.segmentCandidates(from, rp, toPattern, forward, fixed)
	if len(cands) > 1 {
		var comps []elemRef
		for _, c := range cands {
			if c != ec.relIDs[i] {
				comps = append(comps, elemRef{id: c, isRel: true})
			}
		}
		pinVar(rp.Variable, elemRef{id: ec.relIDs[i], isRel: true}, comps)
	}
	fixed[rp.Variable] = ec.relIDs[i]
	fixed[toPattern.Variable] = ec.nodeIDs[toPos]
}

// segmentCandidates enumerates the relationships that could match one
// pattern segment given the bindings fixed so far.
func (s *Synthesizer) segmentCandidates(from graph.ID, rp *ast.RelPattern, toPattern *ast.NodePattern, forward bool, fixed map[string]graph.ID) []graph.ID {
	dir := rp.Direction
	if !forward {
		switch dir {
		case ast.DirRight:
			dir = ast.DirLeft
		case ast.DirLeft:
			dir = ast.DirRight
		}
	}
	var cands []graph.ID
	try := func(rid graph.ID, far graph.ID) {
		rel := s.g.Rel(rid)
		if len(rp.Types) > 0 && !containsStr(rp.Types, rel.Type) {
			return
		}
		if want, ok := fixed[rp.Variable]; ok && want != rid {
			return
		}
		farNode := s.g.Node(far)
		for _, l := range toPattern.Labels {
			if !farNode.HasLabel(l) {
				return
			}
		}
		if want, ok := fixed[toPattern.Variable]; ok && want != far {
			return
		}
		cands = append(cands, rid)
	}
	g := s.g
	switch dir {
	case ast.DirRight:
		for _, rid := range g.Out(from) {
			try(rid, g.Rel(rid).End)
		}
	case ast.DirLeft:
		for _, rid := range g.In(from) {
			try(rid, g.Rel(rid).Start)
		}
	default:
		for _, rid := range g.Out(from) {
			try(rid, g.Rel(rid).End)
		}
		for _, rid := range g.In(from) {
			if r := g.Rel(rid); r.Start != r.End {
				try(rid, r.Start)
			}
		}
	}
	return cands
}

// nodeCompetitors returns the other nodes satisfying the encoded label
// constraints of the pattern node.
func (s *Synthesizer) nodeCompetitors(np *ast.NodePattern, intended graph.ID) []elemRef {
	var out []elemRef
	for _, id := range s.g.NodeIDs() {
		if id == intended {
			continue
		}
		n := s.g.Node(id)
		ok := true
		for _, l := range np.Labels {
			if !n.HasLabel(l) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, elemRef{id: id})
		}
	}
	return out
}

// relCompetitors returns the other relationships satisfying the encoded
// type constraints.
func (s *Synthesizer) relCompetitors(rp *ast.RelPattern, intended graph.ID) []elemRef {
	var out []elemRef
	for _, id := range s.g.RelIDs() {
		if id == intended {
			continue
		}
		if len(rp.Types) > 0 && !containsStr(rp.Types, s.g.Rel(id).Type) {
			continue
		}
		out = append(out, elemRef{id: id, isRel: true})
	}
	return out
}

func containsStr(xs []string, x string) bool {
	for _, s := range xs {
		if s == x {
			return true
		}
	}
	return false
}

// countMatches counts (up to limit) the matches of the encoded chains
// under reference semantics: in-scope variables are fixed, pinned
// variables must bind their pinned element, and relationships are unique
// within the clause. It is the ground truth for the uniqueness invariant
// the oracle depends on.
func (s *Synthesizer) countMatches(chains []*encChain, inScope map[string]graph.ID, pins []pin, limit int) int {
	env := map[string]graph.ID{}
	for v, id := range inScope {
		env[v] = id
	}
	pinned := map[string]graph.ID{}
	for _, p := range pins {
		pinned[p.varName] = p.elem.id
	}
	used := map[graph.ID]bool{}
	count := 0

	var matchChain func(ci int) bool // each returns true to stop early
	var matchNodeAt func(ci, pos int, id graph.ID) bool
	var matchRel func(ci, pos int) bool

	bind := func(v string, id graph.ID, cont func() bool) bool {
		if want, ok := pinned[v]; ok && want != id {
			return false
		}
		if old, ok := env[v]; ok {
			if old != id {
				return false
			}
			return cont()
		}
		env[v] = id
		stop := cont()
		delete(env, v)
		return stop
	}

	matchNodeAt = func(ci, pos int, id graph.ID) bool {
		np := chains[ci].part.Nodes[pos]
		n := s.g.Node(id)
		if n == nil {
			return false
		}
		for _, l := range np.Labels {
			if !n.HasLabel(l) {
				return false
			}
		}
		return bind(np.Variable, id, func() bool {
			if pos == len(chains[ci].part.Nodes)-1 {
				return matchChain(ci + 1)
			}
			return matchRel(ci, pos)
		})
	}

	matchRel = func(ci, pos int) bool {
		rp := chains[ci].part.Rels[pos]
		from := env[chains[ci].part.Nodes[pos].Variable]
		tryRel := func(rid, far graph.ID) bool {
			rel := s.g.Rel(rid)
			if len(rp.Types) > 0 && !containsStr(rp.Types, rel.Type) {
				return false
			}
			already, bound := env[rp.Variable]
			if bound {
				if already != rid {
					return false
				}
			} else if used[rid] {
				return false
			}
			if want, ok := pinned[rp.Variable]; ok && want != rid {
				return false
			}
			if !bound {
				used[rid] = true
				defer delete(used, rid)
			}
			return bind(rp.Variable, rid, func() bool {
				return matchNodeAt(ci, pos+1, far)
			})
		}
		g := s.g
		switch rp.Direction {
		case ast.DirRight:
			for _, rid := range g.Out(from) {
				if tryRel(rid, g.Rel(rid).End) {
					return true
				}
			}
		case ast.DirLeft:
			for _, rid := range g.In(from) {
				if tryRel(rid, g.Rel(rid).Start) {
					return true
				}
			}
		default:
			for _, rid := range g.Out(from) {
				if tryRel(rid, g.Rel(rid).End) {
					return true
				}
			}
			for _, rid := range g.In(from) {
				if r := g.Rel(rid); r.Start != r.End {
					if tryRel(rid, r.Start) {
						return true
					}
				}
			}
		}
		return false
	}

	matchChain = func(ci int) bool {
		if ci == len(chains) {
			count++
			return count >= limit
		}
		np := chains[ci].part.Nodes[0]
		if id, bound := env[np.Variable]; bound {
			return matchNodeAt(ci, 0, id)
		}
		if id, ok := pinned[np.Variable]; ok {
			return matchNodeAt(ci, 0, id)
		}
		for _, id := range s.g.NodeIDs() {
			if matchNodeAt(ci, 0, id) {
				return true
			}
		}
		return false
	}

	matchChain(0)
	return count
}

// pinsToSortedVars lists pinned variables deterministically (testing aid).
func pinsToSortedVars(pins []pin) []string {
	out := make([]string, len(pins))
	for i, p := range pins {
		out[i] = p.varName
	}
	sort.Strings(out)
	return out
}
