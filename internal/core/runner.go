package core

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"gqs/internal/engine"
	"gqs/internal/graph"
	"gqs/internal/metrics"
)

// Target is the slice of the GDB-connector interface the runner needs
// (the gdb package's connectors implement it).
type Target interface {
	Name() string
	Reset(g *graph.Graph, schema *graph.Schema) error
	Execute(query string) (*engine.Result, error)
	// ExecuteCtx runs the query under a context; the runner's watchdog
	// cancels it at the per-query deadline. Implementations should abort
	// promptly once the context is canceled (returning
	// engine.ErrCanceled or the in-flight fault's error); calls that
	// ignore cancellation past the grace window are abandoned and the
	// target is restarted.
	ExecuteCtx(ctx context.Context, query string) (*engine.Result, error)
	RelUniqueness() bool
	ProvidesDBLabels() bool
}

// PreparedTarget is the optional prepared-execution extension of Target
// (the gdb connectors implement it). When a target supports it, the
// runner parses and analyzes each synthesized query exactly once and
// hands every execution — including transient-error retries — the same
// immutable PreparedQuery, instead of paying a parse per call. Since the
// plan compiler landed, Prepare also lowers the query to a physical plan
// (engine/plan.go) shared the same way: one compile serves all five
// oracle targets and every shard, and each ExecutePrepared runs the plan
// on slot frames instead of interpreting the AST. Targets without the
// interface (e.g. the differential baselines) keep the text path.
type PreparedTarget interface {
	Target
	ExecutePrepared(ctx context.Context, pq *engine.PreparedQuery) (*engine.Result, error)
}

// SnapshotTarget is the optional copy-on-write restart extension of
// Target (the gdb connectors implement it). When a target supports it,
// the runner seals each generated graph into one immutable
// graph.Snapshot and every restart of the iteration — the initial load,
// crash recovery, flaky-reset retries — shares it instead of deep-
// copying the graph, making state restoration between oracle checks
// O(1) for read-only workloads. Behaviour must be identical to Reset
// with the same graph; targets without it keep the legacy path.
type SnapshotTarget interface {
	Target
	ResetSnapshot(snap *graph.Snapshot, schema *graph.Schema) error
}

// Verdict classifies one executed test case.
type Verdict int

// Verdicts. VerdictSkip marks cases that are not evidence either way
// (resource-limit aborts, synthesis failures).
const (
	VerdictPass Verdict = iota
	VerdictLogicBug
	VerdictErrorBug // crash / hang / unexpected exception
	VerdictSkip
)

func (v Verdict) String() string {
	switch v {
	case VerdictPass:
		return "pass"
	case VerdictLogicBug:
		return "logic-bug"
	case VerdictErrorBug:
		return "error-bug"
	default:
		return "skip"
	}
}

// TestCase is one synthesized query and its outcome on the target.
type TestCase struct {
	Seq      int
	Query    string
	Steps    int
	Expected *engine.Result
	Actual   *engine.Result
	Err      error
	Verdict  Verdict
	Elapsed  time.Duration
	// Features is the query's precomputed feature vector when the target
	// took the prepared path (nil on the text path). Observers needing
	// features should use it before falling back to metrics.Analyze, so
	// the analysis runs once per query instead of once per consumer.
	Features *metrics.Features
	// Graph and Schema are the generated database the query ran against;
	// the oracle-replay experiments (§5.4.3) re-execute the query on the
	// same graph through other testers' oracles.
	Graph  *graph.Graph
	Schema *graph.Schema
}

// RunnerConfig configures the testing loop.
type RunnerConfig struct {
	Seed            int64
	Graph           graph.GenConfig
	Synth           Config
	QueriesPerGraph int // ground truths drawn per generated graph
	QueriesPerGT    int // queries synthesized per ground truth
	// Robust bounds the resilience layer: per-query timeouts, transient
	// retries, restart backoff, and the circuit breaker. The zero value
	// selects defaults; see RobustnessConfig.
	Robust RobustnessConfig
}

// DefaultRunnerConfig mirrors §5.1.
func DefaultRunnerConfig() RunnerConfig {
	return RunnerConfig{
		Seed:            1,
		Graph:           graph.DefaultGenConfig(),
		Synth:           DefaultConfig(),
		QueriesPerGraph: 8,
		QueriesPerGT:    2,
	}
}

// Stats aggregates a campaign.
type Stats struct {
	Graphs    int
	Queries   int
	Passes    int
	LogicBugs int
	ErrorBugs int
	Skips     int
	Elapsed   time.Duration
	// Robust counts what the resilience layer absorbed: timeouts,
	// retries, restarts, breaker trips, recovered panics, downtime.
	Robust RobustnessStats
}

// Runner drives the GQS workflow (Figure 3) against one target:
// ① generate a graph, ② select ground truths, ③ synthesize queries,
// ④ validate results, restarting the instance per graph — and keeps the
// campaign alive through hangs, crashes, panics, and flaky connections
// (see robust.go).
type Runner struct {
	cfg    RunnerConfig
	target Target
	// ctx cancels the campaign: iteration loops stop between queries,
	// backoff pauses wake immediately, and in-flight queries inherit it
	// under the per-query deadline. Always non-nil (Background default).
	ctx context.Context
	// prepared is target's prepared-execution extension, nil when the
	// target only speaks text; snapshot is its copy-on-write restart
	// extension, nil when the target only takes deep-copy Resets.
	prepared PreparedTarget
	snapshot SnapshotTarget
	r        *rand.Rand
	seq      int
	stats    Stats

	// Resilience state. jr is a dedicated jitter RNG so backoff draws
	// never perturb the graph/synthesis stream — same seed, same
	// verdict sequence, with or without failures.
	rb           RobustnessConfig
	jr           *rand.Rand
	consecFails  int  // consecutive failed restart sequences (breaker input)
	breakerOpen  bool // circuit breaker state
	abandonGraph bool // set when a mid-graph restart sequence fails
	needRecover  bool // a crash/hang verdict is awaiting a restart
	curGraph     *graph.Graph
	curSchema    *graph.Schema
	// curSnap is the sealed snapshot of curGraph, nil when the target has
	// no SnapshotTarget extension.
	curSnap *graph.Snapshot
	// share, when set, dedups the per-iteration seal across executor
	// passes (see SnapshotShare); shareShard is the logical shard slot
	// the next iteration resolves against.
	share      *SnapshotShare
	shareShard int
}

// NewRunner creates a runner for the target.
func NewRunner(target Target, cfg RunnerConfig) *Runner {
	if cfg.QueriesPerGraph <= 0 {
		cfg.QueriesPerGraph = 8
	}
	if cfg.QueriesPerGT <= 0 {
		cfg.QueriesPerGT = 1
	}
	rn := &Runner{
		cfg:    cfg,
		target: target,
		ctx:    context.Background(),
		r:      rand.New(rand.NewSource(cfg.Seed)),
		rb:     cfg.Robust.withDefaults(),
		jr:     rand.New(rand.NewSource(cfg.Seed ^ 0x6a77_3b2c_9d1e_5f48)),
	}
	rn.prepared, _ = target.(PreparedTarget)
	rn.snapshot, _ = target.(SnapshotTarget)
	return rn
}

// NewRunnerCtx creates a runner whose campaign can be canceled: once ctx
// is done, Run stops between iterations, the iteration loops stop
// between queries, backoff waits return immediately, and in-flight
// queries are canceled under their per-query deadline. Cancellation
// never corrupts determinism — a canceled iteration is simply not
// reported as complete by the checkpoint layer.
func NewRunnerCtx(ctx context.Context, target Target, cfg RunnerConfig) *Runner {
	rn := NewRunner(target, cfg)
	if ctx != nil {
		rn.ctx = ctx
	}
	return rn
}

// Reseed rewinds the runner to the state NewRunner would build for the
// given seed, reusing its allocations (RNG sources, config, prepared/
// snapshot bindings). The sharded executor calls it between logical
// shards so one worker-lifetime Runner replaces a fresh construction
// per shard; after Reseed(s) the runner behaves byte-identically to
// NewRunnerCtx(ctx, target, cfg-with-Seed-s).
func (rn *Runner) Reseed(seed int64) {
	rn.cfg.Seed = seed
	rn.r.Seed(seed)
	rn.jr.Seed(seed ^ 0x6a77_3b2c_9d1e_5f48)
	rn.seq = 0
	rn.stats = Stats{}
	rn.consecFails = 0
	rn.breakerOpen = false
	rn.abandonGraph = false
	rn.needRecover = false
	rn.curGraph, rn.curSchema, rn.curSnap = nil, nil, nil
}

// SetShare installs the campaign-wide snapshot share and the logical
// shard slot the next iteration publishes to / resolves from. A nil
// share restores the private per-iteration seal.
func (rn *Runner) SetShare(share *SnapshotShare, shard int) {
	rn.share = share
	rn.shareShard = shard
}

// Breaker reports the circuit-breaker state: whether it is open and the
// current streak of consecutive failed restart sequences.
func (rn *Runner) Breaker() (open bool, consecutiveFailures int) {
	return rn.breakerOpen, rn.consecFails
}

// Stats returns the campaign statistics so far.
func (rn *Runner) Stats() Stats { return rn.stats }

// RunIteration performs one full workflow iteration: a fresh graph, a
// restarted instance, and a batch of synthesized queries. The report
// callback observes every test case.
//
// A target that cannot be brought up — even through the restart sequence
// — no longer aborts the campaign: the iteration is recorded as failed
// (Stats.Robust.FailedIterations) and the caller moves on to the next
// graph, with the circuit breaker bounding how much effort each dead
// iteration costs.
func (rn *Runner) RunIteration(report func(*TestCase)) error {
	start := time.Now()
	defer func() { rn.stats.Elapsed += time.Since(start) }()

	g, schema := graph.Generate(rn.r, rn.cfg.Graph)
	rn.curSnap = nil
	if rn.snapshot != nil {
		// One immutable snapshot per iteration: every restart below —
		// and, campaign-wide, every other target validating the same
		// graph — shares it instead of deep-copying the graph. Sealing
		// leaves g fully readable for ground-truth selection and
		// synthesis. With a share installed, the seal itself (and the
		// snapshot's cached index build) is dedup'd across the campaign's
		// per-target legs: the generation draws above still advance this
		// runner's RNG stream, but the resulting content-identical graph
		// is swapped for the canonical shared instance.
		if rn.share != nil {
			g, schema, rn.curSnap = rn.share.resolve(rn.shareShard, g, schema)
		} else {
			rn.curSnap = g.Seal()
		}
	}
	rn.curGraph, rn.curSchema = g, schema
	rn.abandonGraph = false
	if !rn.ensureUp() {
		rn.stats.Robust.FailedIterations++
		return nil
	}
	rn.stats.Graphs++

	synthCfg := rn.cfg.Synth
	synthCfg.RelUniqueness = rn.target.RelUniqueness()
	synthCfg.ProvidesDBLabels = rn.target.ProvidesDBLabels()
	syn := NewSynthesizer(rn.r, g, schema, synthCfg)

	for q := 0; q < rn.cfg.QueriesPerGraph && !rn.abandonGraph && rn.ctx.Err() == nil; q++ {
		gt := SelectGroundTruth(rn.r, g, rn.cfg.Plan().MaxResultSet)
		for k := 0; k < rn.cfg.QueriesPerGT && !rn.abandonGraph && rn.ctx.Err() == nil; k++ {
			tc := rn.runOne(syn, gt)
			tc.Graph, tc.Schema = g, schema
			if report != nil {
				report(tc)
			}
			// Recover only after the report callback ran: a restart
			// Resets the connector, which would wipe the fault
			// attribution (TriggeredBug) the observer reads.
			if rn.needRecover {
				rn.needRecover = false
				rn.recoverTarget()
			}
		}
	}
	if rn.abandonGraph {
		// The target could not be restarted mid-graph; degrade
		// gracefully and let the next iteration probe again.
		rn.stats.Robust.AbandonedGraphs++
	}
	return nil
}

// Plan returns the effective plan configuration.
func (c RunnerConfig) Plan() PlanConfig {
	p := c.Synth.Plan
	if p.MaxResultSet == 0 {
		p = DefaultPlanConfig()
	}
	return p
}

func (rn *Runner) runOne(syn *Synthesizer, gt *GroundTruth) *TestCase {
	rn.seq++
	tc := &TestCase{Seq: rn.seq}
	start := time.Now()
	defer func() {
		tc.Elapsed = time.Since(start)
		rn.stats.Queries++
		switch tc.Verdict {
		case VerdictPass:
			rn.stats.Passes++
		case VerdictLogicBug:
			rn.stats.LogicBugs++
		case VerdictErrorBug:
			rn.stats.ErrorBugs++
		default:
			rn.stats.Skips++
		}
	}()

	sq, err := syn.Synthesize(gt)
	if err != nil {
		tc.Err = err
		tc.Verdict = VerdictSkip
		return tc
	}
	tc.Query = sq.Text
	tc.Steps = sq.Steps
	tc.Expected = sq.Expected

	// Prepare once: one feature analysis and one plan compilation, shared
	// by every attempt below and every downstream consumer (fault
	// triggers on the target, feature aggregation in the observers). The
	// synthesizer built the AST and printed sq.Text from it, so the
	// prepared path hands that AST over directly — no parse at all.
	// Text-only targets skip this and parse per call as before.
	var pq *engine.PreparedQuery
	if rn.prepared != nil {
		pq = engine.PrepareAST(sq.Query, sq.Text)
		tc.Features = pq.Features
	}

	// Execute through the watchdog, retrying transient connector errors
	// with jittered backoff. A flaky connection must never inflate bug
	// counts: retries are not verdicts, and exhausting them is a skip.
	var out execOutcome
	for attempt := 0; ; attempt++ {
		out = rn.executeGuarded(sq.Text, pq)
		if !isTransient(out.err) {
			break
		}
		rn.stats.Robust.TransientErrors++
		if attempt >= rn.rb.Retries {
			rn.stats.Robust.TransientGiveUps++
			tc.Err = out.err
			tc.Verdict = VerdictSkip
			return tc
		}
		rn.stats.Robust.Retries++
		rn.pause(rn.jitter(rn.rb.RetryBackoff << attempt))
	}

	switch {
	case out.panicked:
		// A crashed server manifests as a panic in the connector;
		// isolate it, report the crash, and restart the instance.
		rn.stats.Robust.PanicsRecovered++
		tc.Err = out.err
		tc.Verdict = VerdictErrorBug
		rn.needRecover = true
	case out.timedOut:
		rn.stats.Robust.Timeouts++
		tc.Err = out.err
		if hasBugID(out.err) {
			// A triggered fault hung the query: the paper's hang class
			// of error-bugs (§5.4.4).
			tc.Verdict = VerdictErrorBug
			rn.needRecover = true
		} else {
			// Benign timeout: not evidence either way, like the
			// paper's per-query timeouts. A wedged connector (ignored
			// cancellation) still forces a restart.
			tc.Verdict = VerdictSkip
			if out.wedged {
				rn.needRecover = true
			}
		}
	case out.err != nil:
		tc.Err = out.err
		tc.Verdict = classifyError(out.err)
		if k := faultKind(out.err); k == "crash" || k == "hang" {
			// Simulated crash/hang errors still model a dead or stuck
			// instance: run the same restart sequence the live modes do.
			rn.needRecover = true
		}
	default:
		tc.Actual = out.res
		if sq.Expected.Equal(out.res) {
			tc.Verdict = VerdictPass
		} else {
			tc.Verdict = VerdictLogicBug
		}
	}
	return tc
}

// classifyError separates true error-bugs (crashes, hangs, unexpected
// exceptions) from outcomes that are not evidence of a bug: resource
// limit aborts and cancellations are skipped as the paper's timeouts
// are, and transient connector errors (flaky connections, post-retry)
// must never count as bugs.
func classifyError(err error) Verdict {
	var lim *engine.ErrResourceLimit
	if errors.As(err, &lim) {
		return VerdictSkip
	}
	if errors.Is(err, engine.ErrCanceled) {
		return VerdictSkip
	}
	if isTransient(err) {
		return VerdictSkip
	}
	return VerdictErrorBug
}

// Run executes n workflow iterations. Failed iterations (target down
// past the restart sequence) are recorded in Stats.Robust and do not
// abort the campaign.
func (rn *Runner) Run(n int, report func(*TestCase)) (Stats, error) {
	for i := 0; i < n; i++ {
		if rn.ctx.Err() != nil {
			break
		}
		if err := rn.RunIteration(report); err != nil {
			// Defensive: RunIteration absorbs failures itself today,
			// but a future error path must still not kill the campaign.
			rn.stats.Robust.FailedIterations++
		}
	}
	return rn.stats, nil
}

// FastForward deterministically replays the RNG draws of already-
// completed iterations without executing anything against the target:
// the resume path of a checkpointed sequential campaign. counts[i] is
// the number of test cases iteration i produced (0 for an iteration
// whose target never came up — such an iteration consumed only the
// graph-generation draws). The runner's graph/synthesis RNG stream and
// test-case sequence numbers end up exactly where a live run of those
// iterations would have left them; execution-side state (the jitter
// stream, connector-internal RNG positions) is intentionally not
// replayed because it never feeds verdicts — see DESIGN.md §10.
func (rn *Runner) FastForward(counts []int) {
	for _, count := range counts {
		g, schema := graph.Generate(rn.r, rn.cfg.Graph)
		rn.stats.Robust.ResumeFastForwarded++
		if count <= 0 {
			// ensureUp failed on this iteration: the live run drew only
			// the graph, never constructing the synthesizer.
			continue
		}
		synthCfg := rn.cfg.Synth
		synthCfg.RelUniqueness = rn.target.RelUniqueness()
		synthCfg.ProvidesDBLabels = rn.target.ProvidesDBLabels()
		syn := NewSynthesizer(rn.r, g, schema, synthCfg)
		replayed := 0
		for q := 0; q < rn.cfg.QueriesPerGraph && replayed < count; q++ {
			gt := SelectGroundTruth(rn.r, g, rn.cfg.Plan().MaxResultSet)
			for k := 0; k < rn.cfg.QueriesPerGT && replayed < count; k++ {
				syn.Synthesize(gt) //nolint:errcheck // a failed synthesis consumed the same draws live
				rn.seq++
				replayed++
			}
		}
	}
}

// RestoreResilience reinstates the circuit-breaker state a checkpointed
// campaign recorded, so a resumed runner treats a dead target exactly as
// the killed one was treating it.
func (rn *Runner) RestoreResilience(breakerOpen bool, consecFails int) {
	rn.breakerOpen = breakerOpen
	rn.consecFails = consecFails
}
