package core

import (
	"errors"
	"math/rand"
	"time"

	"gqs/internal/engine"
	"gqs/internal/graph"
)

// Target is the slice of the GDB-connector interface the runner needs
// (the gdb package's connectors implement it).
type Target interface {
	Name() string
	Reset(g *graph.Graph, schema *graph.Schema) error
	Execute(query string) (*engine.Result, error)
	RelUniqueness() bool
	ProvidesDBLabels() bool
}

// Verdict classifies one executed test case.
type Verdict int

// Verdicts. VerdictSkip marks cases that are not evidence either way
// (resource-limit aborts, synthesis failures).
const (
	VerdictPass Verdict = iota
	VerdictLogicBug
	VerdictErrorBug // crash / hang / unexpected exception
	VerdictSkip
)

func (v Verdict) String() string {
	switch v {
	case VerdictPass:
		return "pass"
	case VerdictLogicBug:
		return "logic-bug"
	case VerdictErrorBug:
		return "error-bug"
	default:
		return "skip"
	}
}

// TestCase is one synthesized query and its outcome on the target.
type TestCase struct {
	Seq      int
	Query    string
	Steps    int
	Expected *engine.Result
	Actual   *engine.Result
	Err      error
	Verdict  Verdict
	Elapsed  time.Duration
	// Graph and Schema are the generated database the query ran against;
	// the oracle-replay experiments (§5.4.3) re-execute the query on the
	// same graph through other testers' oracles.
	Graph  *graph.Graph
	Schema *graph.Schema
}

// RunnerConfig configures the testing loop.
type RunnerConfig struct {
	Seed            int64
	Graph           graph.GenConfig
	Synth           Config
	QueriesPerGraph int // ground truths drawn per generated graph
	QueriesPerGT    int // queries synthesized per ground truth
}

// DefaultRunnerConfig mirrors §5.1.
func DefaultRunnerConfig() RunnerConfig {
	return RunnerConfig{
		Seed:            1,
		Graph:           graph.DefaultGenConfig(),
		Synth:           DefaultConfig(),
		QueriesPerGraph: 8,
		QueriesPerGT:    2,
	}
}

// Stats aggregates a campaign.
type Stats struct {
	Graphs    int
	Queries   int
	Passes    int
	LogicBugs int
	ErrorBugs int
	Skips     int
	Elapsed   time.Duration
}

// Runner drives the GQS workflow (Figure 3) against one target:
// ① generate a graph, ② select ground truths, ③ synthesize queries,
// ④ validate results, restarting the instance per graph.
type Runner struct {
	cfg    RunnerConfig
	target Target
	r      *rand.Rand
	seq    int
	stats  Stats
}

// NewRunner creates a runner for the target.
func NewRunner(target Target, cfg RunnerConfig) *Runner {
	if cfg.QueriesPerGraph <= 0 {
		cfg.QueriesPerGraph = 8
	}
	if cfg.QueriesPerGT <= 0 {
		cfg.QueriesPerGT = 1
	}
	return &Runner{cfg: cfg, target: target, r: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats returns the campaign statistics so far.
func (rn *Runner) Stats() Stats { return rn.stats }

// RunIteration performs one full workflow iteration: a fresh graph, a
// restarted instance, and a batch of synthesized queries. The report
// callback observes every test case.
func (rn *Runner) RunIteration(report func(*TestCase)) error {
	start := time.Now()
	g, schema := graph.Generate(rn.r, rn.cfg.Graph)
	if err := rn.target.Reset(g, schema); err != nil {
		return err
	}
	rn.stats.Graphs++

	synthCfg := rn.cfg.Synth
	synthCfg.RelUniqueness = rn.target.RelUniqueness()
	synthCfg.ProvidesDBLabels = rn.target.ProvidesDBLabels()
	syn := NewSynthesizer(rn.r, g, schema, synthCfg)

	for q := 0; q < rn.cfg.QueriesPerGraph; q++ {
		gt := SelectGroundTruth(rn.r, g, rn.cfg.Plan().MaxResultSet)
		for k := 0; k < rn.cfg.QueriesPerGT; k++ {
			tc := rn.runOne(syn, gt)
			tc.Graph, tc.Schema = g, schema
			if report != nil {
				report(tc)
			}
		}
	}
	rn.stats.Elapsed += time.Since(start)
	return nil
}

// Plan returns the effective plan configuration.
func (c RunnerConfig) Plan() PlanConfig {
	p := c.Synth.Plan
	if p.MaxResultSet == 0 {
		p = DefaultPlanConfig()
	}
	return p
}

func (rn *Runner) runOne(syn *Synthesizer, gt *GroundTruth) *TestCase {
	rn.seq++
	tc := &TestCase{Seq: rn.seq}
	start := time.Now()
	defer func() {
		tc.Elapsed = time.Since(start)
		rn.stats.Queries++
		switch tc.Verdict {
		case VerdictPass:
			rn.stats.Passes++
		case VerdictLogicBug:
			rn.stats.LogicBugs++
		case VerdictErrorBug:
			rn.stats.ErrorBugs++
		default:
			rn.stats.Skips++
		}
	}()

	sq, err := syn.Synthesize(gt)
	if err != nil {
		tc.Err = err
		tc.Verdict = VerdictSkip
		return tc
	}
	tc.Query = sq.Text
	tc.Steps = sq.Steps
	tc.Expected = sq.Expected

	actual, err := rn.target.Execute(sq.Text)
	if err != nil {
		tc.Err = err
		tc.Verdict = classifyError(err)
		return tc
	}
	tc.Actual = actual
	if sq.Expected.Equal(actual) {
		tc.Verdict = VerdictPass
	} else {
		tc.Verdict = VerdictLogicBug
	}
	return tc
}

// classifyError separates true error-bugs (crashes, hangs, unexpected
// exceptions) from resource-limit aborts, which are skipped as the
// paper's timeouts are.
func classifyError(err error) Verdict {
	var lim *engine.ErrResourceLimit
	if errors.As(err, &lim) {
		return VerdictSkip
	}
	return VerdictErrorBug
}

// Run executes n workflow iterations.
func (rn *Runner) Run(n int, report func(*TestCase)) (Stats, error) {
	for i := 0; i < n; i++ {
		if err := rn.RunIteration(report); err != nil {
			return rn.stats, err
		}
	}
	return rn.stats, nil
}
