package core

import (
	"math/rand"
	"testing"

	"gqs/internal/graph"
)

// TestSynthesizeNeverLosesScope is the regression test for a bug first
// caught by long benchmark runs: a cross pattern-mutation whose
// recombined halves clashed on a shared relationship could drop the
// chain introducing a scheduled element, leaving its variable out of
// scope. 16k syntheses across 400 graphs must produce no such error.
func TestSynthesizeNeverLosesScope(t *testing.T) {
	if testing.Short() {
		t.Skip("long fuzz loop")
	}
	for seed := int64(0); seed < 400; seed++ {
		r := rand.New(rand.NewSource(seed))
		g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 10, MaxRels: 40})
		syn := NewSynthesizer(r, g, schema, DefaultConfig())
		for i := 0; i < 40; i++ {
			gt := SelectGroundTruth(r, g, 6)
			if _, err := syn.Synthesize(gt); err != nil {
				t.Fatalf("seed %d iter %d: %v", seed, i, err)
			}
		}
	}
}
