package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gqs/internal/journal"
)

// This file is the campaign checkpoint layer (DESIGN.md §10): a durable
// record of which work units a campaign has completed, kept in an
// append-only CRC-framed journal so a killed process resumes
// byte-identically. The unit of durability matches the unit of
// determinism — the logical iteration (a shard in the parallel executor,
// one workflow iteration in the sequential runner). Each flush appends
// one full-state snapshot record; recovery takes the last valid one, so
// a torn tail costs at most the units recorded since the previous flush,
// which the resumed campaign simply re-runs — deterministically, to the
// same outcome.

// checkpointVersion tags snapshot records; a future layout change bumps
// it and refuses to resume older journals rather than misreading them.
const checkpointVersion = 1

// ErrFingerprintMismatch reports a resume attempt against a journal
// written by a different campaign configuration.
var ErrFingerprintMismatch = errors.New("checkpoint: campaign fingerprint mismatch")

// CampaignFingerprint canonically renders everything that determines a
// campaign's outcome — executor mode, target set, fault-catalog hash,
// seed and iteration budget, and the full runner configuration (graph
// generation, synthesis, query counts, robustness bounds). Two runs may
// share a checkpoint journal only if their fingerprints are equal;
// resuming under a changed configuration would splice two different
// deterministic streams into one nonsense campaign.
// batch is part of the fingerprint because it fixes the work-unit
// ranges the journal records: resuming a batch=4 journal under batch=1
// would misalign every unit. (The batch never affects what a shard
// computes — only how completion is bucketed for durability.)
func CampaignFingerprint(mode, targets, catalog string, workers, batch, iterations int, rcfg RunnerConfig) string {
	if batch <= 0 {
		batch = 1
	}
	return fmt.Sprintf(
		"gqs-checkpoint-v%d mode=%s targets=%s catalog=%s workers=%d batch=%d iterations=%d seed=%d graph=%+v synth=%+v qpg=%d qpgt=%d robust=%+v",
		checkpointVersion, mode, targets, catalog, workers, batch, iterations,
		rcfg.Seed, rcfg.Graph, rcfg.Synth, rcfg.QueriesPerGraph, rcfg.QueriesPerGT, rcfg.Robust)
}

// UnitRecord is one completed work unit: a contiguous range of Count
// shards starting at Shard in a parallel campaign, or iteration i of a
// sequential one (Shard is the iteration index, Count 1). Stats is the
// unit's own contribution (a sum over its shards; a delta, not a
// running total) so restored units merge exactly like live ones.
type UnitRecord struct {
	Target string `json:"target"`
	Shard  int    `json:"shard"`
	// Count is the number of contiguous shards the unit covers; 0 means
	// 1 (pre-batching records and sequential iterations).
	Count   int   `json:"count,omitempty"`
	Queries int   `json:"queries"` // test cases the unit produced (drives RNG fast-forward)
	Stats   Stats `json:"stats"`
	// BreakerOpen/ConsecFails snapshot the sequential runner's circuit-
	// breaker state after this unit, so a resumed campaign keeps treating
	// a dead target the way the killed one did. (Parallel shards build
	// fresh runners per shard; their breaker state never crosses units.)
	BreakerOpen bool `json:"breaker_open,omitempty"`
	ConsecFails int  `json:"consec_fails,omitempty"`
	// Payload is the embedder's per-unit state — the experiments layer
	// stores its buffered detection events here so a resumed campaign can
	// rebuild the canonical merged report.
	Payload json.RawMessage `json:"payload,omitempty"`
}

// UnitCount is the number of shards the unit covers (Count, with the
// zero value meaning one).
func (u UnitRecord) UnitCount() int {
	if u.Count <= 0 {
		return 1
	}
	return u.Count
}

// snapshotRecord is one journal record: the full campaign state at a
// flush. Full-state records make recovery trivial (last valid record
// wins) at the cost of journal growth, which compaction bounds.
type snapshotRecord struct {
	Version     int          `json:"version"`
	Fingerprint string       `json:"fingerprint"`
	Units       []UnitRecord `json:"units"`
}

// CheckpointConfig configures a campaign checkpoint.
type CheckpointConfig struct {
	// Path is the journal file.
	Path string
	// Every flushes a snapshot record after this many newly completed
	// units; 0 ⇒ 1 (every unit). A kill loses at most Every-1 units of
	// progress — never correctness.
	Every int
	// Resume accepts an existing journal (with a matching fingerprint)
	// and restores its units. Without it, opening a non-empty journal is
	// an error — silently restarting a half-done campaign over its own
	// checkpoint would be data loss.
	Resume bool
	// Journal passes options (fault-injection hook, NoSync) to the
	// underlying journal.
	Journal journal.Options
	// CompactBytes triggers an atomic rewrite (latest snapshot only) when
	// the journal grows past this size; 0 ⇒ 4 MiB.
	CompactBytes int64
	// OnFlush, when set, observes every flush attempt with the number of
	// completed units; tests use it to kill campaigns at exact points.
	// Called outside the checkpoint lock.
	OnFlush func(completedUnits int)
}

// CheckpointStats counts the checkpoint layer's work.
type CheckpointStats struct {
	Written      int           // snapshot records flushed successfully
	Failures     int           // flushes that failed (journal broken or marshal error)
	Bytes        int64         // framed bytes appended
	WriteTime    time.Duration // time spent writing+syncing the journal
	LastFlush    time.Time     // wall time of the newest successful flush
	ResumedUnits int           // units restored from the journal at open
}

// Checkpointer tracks completed units and journals them. All methods
// are goroutine-safe and nil-safe (a nil *Checkpointer does nothing), so
// callers thread one through unconditionally. A broken journal degrades
// the campaign — flush failures are counted and checkpointing stops —
// but never kills it; the campaign's own work continues.
type Checkpointer struct {
	mu    sync.Mutex
	cfg   CheckpointConfig
	j     *journal.Journal
	fp    string
	idx   map[unitKey]int
	units []UnitRecord
	dirty int
	stats CheckpointStats
}

type unitKey struct {
	target string
	shard  int
}

// OpenCheckpoint opens (or resumes) the checkpoint journal for a
// campaign with the given fingerprint. Opening an existing non-empty
// journal requires cfg.Resume and a matching fingerprint; resuming an
// empty or absent journal is a fresh start.
func OpenCheckpoint(cfg CheckpointConfig, fingerprint string) (*Checkpointer, error) {
	if cfg.Every <= 0 {
		cfg.Every = 1
	}
	if cfg.CompactBytes <= 0 {
		cfg.CompactBytes = 4 << 20
	}
	j, recs, err := journal.Open(cfg.Path, cfg.Journal)
	if err != nil {
		return nil, err
	}
	c := &Checkpointer{cfg: cfg, j: j, fp: fingerprint, idx: map[unitKey]int{}}
	if len(recs) == 0 {
		return c, nil
	}
	if !cfg.Resume {
		j.Close()
		return nil, fmt.Errorf(
			"checkpoint %s: journal already holds a campaign (%d records); resume it or remove the file",
			cfg.Path, len(recs))
	}
	// Last decodable snapshot wins; earlier records are superseded
	// full-state snapshots kept only until the next compaction.
	var snap snapshotRecord
	found := false
	for i := len(recs) - 1; i >= 0 && !found; i-- {
		snap = snapshotRecord{}
		found = json.Unmarshal(recs[i], &snap) == nil && snap.Version == checkpointVersion
	}
	if !found {
		j.Close()
		return nil, fmt.Errorf("checkpoint %s: no decodable snapshot among %d records", cfg.Path, len(recs))
	}
	if snap.Fingerprint != fingerprint {
		j.Close()
		return nil, fmt.Errorf("%w:\n  journal: %s\n  current: %s",
			ErrFingerprintMismatch, snap.Fingerprint, fingerprint)
	}
	for _, u := range snap.Units {
		c.idx[unitKey{u.Target, u.Shard}] = len(c.units)
		c.units = append(c.units, u)
	}
	c.stats.ResumedUnits = len(c.units)
	return c, nil
}

// Completed returns the recorded unit for (target, shard) if the
// campaign has completed it (restored or recorded this run).
func (c *Checkpointer) Completed(target string, shard int) (UnitRecord, bool) {
	if c == nil {
		return UnitRecord{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.idx[unitKey{target, shard}]
	if !ok {
		return UnitRecord{}, false
	}
	return c.units[i], true
}

// Record registers a completed unit and flushes a snapshot record once
// Every units have accumulated. Safe to call from worker goroutines.
func (c *Checkpointer) Record(u UnitRecord) {
	if c == nil {
		return
	}
	c.mu.Lock()
	k := unitKey{u.Target, u.Shard}
	if i, ok := c.idx[k]; ok {
		c.units[i] = u
	} else {
		c.idx[k] = len(c.units)
		c.units = append(c.units, u)
	}
	c.dirty++
	flushed := -1
	if c.dirty >= c.cfg.Every {
		c.flushLocked()
		flushed = len(c.units)
	}
	cb := c.cfg.OnFlush
	c.mu.Unlock()
	if flushed >= 0 && cb != nil {
		cb(flushed)
	}
}

// flushLocked appends one full-state snapshot record. Units are
// serialized sorted by (target, shard) so the record bytes are
// independent of completion order. Failures are counted, not fatal: a
// campaign with a broken journal keeps finding bugs, it just stops
// being resumable past the last good record.
func (c *Checkpointer) flushLocked() {
	snap := snapshotRecord{Version: checkpointVersion, Fingerprint: c.fp,
		Units: append([]UnitRecord(nil), c.units...)}
	sort.SliceStable(snap.Units, func(i, k int) bool {
		if snap.Units[i].Target != snap.Units[k].Target {
			return snap.Units[i].Target < snap.Units[k].Target
		}
		return snap.Units[i].Shard < snap.Units[k].Shard
	})
	payload, err := json.Marshal(snap)
	if err != nil {
		c.stats.Failures++
		return
	}
	before := c.j.Stats()
	err = c.j.Append(payload)
	after := c.j.Stats()
	c.stats.WriteTime += after.WriteTime - before.WriteTime
	if err != nil {
		c.stats.Failures++
		return
	}
	c.dirty = 0
	c.stats.Written++
	c.stats.Bytes += after.Bytes - before.Bytes
	c.stats.LastFlush = time.Now()
	if c.j.Size() > c.cfg.CompactBytes {
		c.j.Compact([][]byte{payload}) //nolint:errcheck // failure leaves the (valid) long journal
	}
}

// Flush forces a snapshot record for any unflushed units; the final
// checkpoint of a graceful shutdown. Returns the journal's sticky error
// so callers can warn that resumability was lost.
func (c *Checkpointer) Flush() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dirty > 0 {
		c.flushLocked()
	}
	return c.j.Err()
}

// Stats returns the checkpoint counters.
func (c *Checkpointer) Stats() CheckpointStats {
	if c == nil {
		return CheckpointStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Path returns the journal path ("" on a nil checkpointer).
func (c *Checkpointer) Path() string {
	if c == nil {
		return ""
	}
	return c.cfg.Path
}

// ApplyTo folds the checkpoint counters into a campaign's robustness
// block. Call it after the final Flush so the counters are complete;
// per-unit stats deltas never include these fields, so there is no
// double counting.
func (c *Checkpointer) ApplyTo(r *RobustnessStats) {
	if c == nil {
		return
	}
	cs := c.Stats()
	r.CheckpointsWritten += cs.Written
	r.CheckpointBytes += cs.Bytes
	if !cs.LastFlush.IsZero() {
		r.LastCheckpointAge = time.Since(cs.LastFlush)
	}
}

// Close flushes any unflushed units and closes the journal.
func (c *Checkpointer) Close() error {
	if c == nil {
		return nil
	}
	err := c.Flush()
	c.mu.Lock()
	defer c.mu.Unlock()
	if cerr := c.j.Close(); err == nil {
		err = cerr
	}
	return err
}

// DurableHooks lets an embedder attach per-unit state to the checkpoint
// records the durable runners write, and observe the units restored on
// resume. Both are optional.
type DurableHooks struct {
	// Payload renders the embedder's state for a just-completed unit
	// covering shards [start, start+count); it runs on the goroutine
	// that ran the unit, after its last test case. Sequential campaigns
	// always pass count 1.
	Payload func(target string, start, count int) json.RawMessage
	// Restore observes one restored unit. For the parallel executor it is
	// called from the (single-goroutine) feed loop in ascending unit
	// order; for the sequential runner, in iteration order before
	// anything runs.
	Restore func(u UnitRecord)
}

// RunCheckpointedParallel is RunParallelCtx with checkpointing: restored
// work units are skipped (their recorded stats merge as if they had run)
// and every completed unit is recorded. A recorded unit whose range no
// longer matches the executor's batching is ignored rather than half-
// restored (the fingerprint pins the batch, so this only guards against
// hand-edited journals). With a nil checkpointer it is exactly
// RunParallelCtx. The caller's own UnitDone hook, if any, runs after the
// unit is recorded.
func RunCheckpointedParallel(ctx context.Context, cfg ParallelConfig, name string,
	factory TargetFactory, observe func(int, Target, *TestCase),
	ck *Checkpointer, hooks DurableHooks) *ParallelStats {
	if ck != nil {
		userDone := cfg.UnitDone
		cfg.SkipUnit = func(start, count int) (Stats, bool) {
			u, ok := ck.Completed(name, start)
			if !ok || u.UnitCount() != count {
				return Stats{}, false
			}
			if hooks.Restore != nil {
				hooks.Restore(u)
			}
			return u.Stats, true
		}
		cfg.UnitDone = func(start, count int, s Stats) {
			u := UnitRecord{Target: name, Shard: start, Count: count, Queries: s.Queries, Stats: s}
			if hooks.Payload != nil {
				u.Payload = hooks.Payload(name, start, count)
			}
			ck.Record(u)
			if userDone != nil {
				userDone(start, count, s)
			}
		}
	}
	return RunParallelCtx(ctx, cfg, factory, observe)
}

// RunCheckpointedSequential runs iterations workflow iterations against
// one target with checkpointing: the restored prefix of completed
// iterations is fast-forwarded through the RNG (no target execution),
// the breaker state of the last restored iteration is reinstated, and
// each completed live iteration is recorded with its per-iteration query
// count — the exact information FastForward needs next time. Returns the
// campaign stats including the restored units' contributions.
func RunCheckpointedSequential(ctx context.Context, target Target, cfg RunnerConfig,
	iterations int, name string, ck *Checkpointer, hooks DurableHooks,
	report func(*TestCase)) (Stats, error) {
	var restored Stats
	var counts []int
	var last UnitRecord
	if ck != nil {
		// Only the contiguous prefix of completed iterations can be
		// restored: iteration k's RNG position depends on 0..k-1.
		for i := 0; i < iterations; i++ {
			u, ok := ck.Completed(name, i)
			if !ok {
				break
			}
			if hooks.Restore != nil {
				hooks.Restore(u)
			}
			restored.Add(u.Stats)
			counts = append(counts, u.Queries)
			last = u
		}
	}
	rn := NewRunnerCtx(ctx, target, cfg)
	if len(counts) > 0 {
		rn.FastForward(counts)
		rn.RestoreResilience(last.BreakerOpen, last.ConsecFails)
	}
	prev := rn.Stats()
	for i := len(counts); i < iterations; i++ {
		if ctx != nil && ctx.Err() != nil {
			break
		}
		if err := rn.RunIteration(report); err != nil {
			return restored, err
		}
		if ctx != nil && ctx.Err() != nil {
			break // a canceled iteration may be partial: never record it
		}
		cur := rn.Stats()
		if ck != nil {
			open, fails := rn.Breaker()
			u := UnitRecord{
				Target:      name,
				Shard:       i,
				Queries:     cur.Queries - prev.Queries,
				Stats:       statsDelta(cur, prev),
				BreakerOpen: open,
				ConsecFails: fails,
			}
			if hooks.Payload != nil {
				u.Payload = hooks.Payload(name, i, 1)
			}
			ck.Record(u)
		}
		prev = cur
	}
	total := restored
	total.Add(rn.Stats())
	return total, nil
}

// statsDelta is the per-iteration stats contribution: after minus
// before, field by field (LastCheckpointAge is a gauge, not a counter,
// and is zero during a run).
func statsDelta(after, before Stats) Stats {
	d := Stats{
		Graphs:    after.Graphs - before.Graphs,
		Queries:   after.Queries - before.Queries,
		Passes:    after.Passes - before.Passes,
		LogicBugs: after.LogicBugs - before.LogicBugs,
		ErrorBugs: after.ErrorBugs - before.ErrorBugs,
		Skips:     after.Skips - before.Skips,
		Elapsed:   after.Elapsed - before.Elapsed,
	}
	a, b := after.Robust, before.Robust
	d.Robust = RobustnessStats{
		Timeouts:            a.Timeouts - b.Timeouts,
		Retries:             a.Retries - b.Retries,
		TransientErrors:     a.TransientErrors - b.TransientErrors,
		TransientGiveUps:    a.TransientGiveUps - b.TransientGiveUps,
		PanicsRecovered:     a.PanicsRecovered - b.PanicsRecovered,
		Restarts:            a.Restarts - b.Restarts,
		RestartFailures:     a.RestartFailures - b.RestartFailures,
		BreakerTrips:        a.BreakerTrips - b.BreakerTrips,
		AbandonedGraphs:     a.AbandonedGraphs - b.AbandonedGraphs,
		FailedIterations:    a.FailedIterations - b.FailedIterations,
		Downtime:            a.Downtime - b.Downtime,
		CheckpointsWritten:  a.CheckpointsWritten - b.CheckpointsWritten,
		CheckpointBytes:     a.CheckpointBytes - b.CheckpointBytes,
		ResumeFastForwarded: a.ResumeFastForwarded - b.ResumeFastForwarded,
	}
	return d
}
