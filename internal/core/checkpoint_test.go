package core

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"gqs/internal/gdb"
)

func ckPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "campaign.journal")
}

// scrubCk additionally zeroes the checkpoint-layer fields that
// legitimately differ between a resumed run and an uninterrupted one.
func scrubCk(s Stats) Stats {
	s = scrub(s)
	s.Robust.ResumeFastForwarded = 0
	s.Robust.CheckpointsWritten = 0
	s.Robust.CheckpointBytes = 0
	s.Robust.LastCheckpointAge = 0
	return s
}

func TestCheckpointerBatchFlushAndResume(t *testing.T) {
	path := ckPath(t)
	fp := "fp-batch"
	ck, err := OpenCheckpoint(CheckpointConfig{Path: path, Every: 2}, fp)
	if err != nil {
		t.Fatal(err)
	}
	unit := func(shard, queries int) UnitRecord {
		var s Stats
		s.Queries = queries
		return UnitRecord{Target: "a", Shard: shard, Queries: queries, Stats: s}
	}
	ck.Record(unit(0, 3))
	if st := ck.Stats(); st.Written != 0 {
		t.Fatalf("flushed before Every units: %+v", st)
	}
	ck.Record(unit(1, 4))
	if st := ck.Stats(); st.Written != 1 || st.Bytes == 0 {
		t.Fatalf("batch of 2 did not flush once: %+v", st)
	}
	ck.Record(unit(2, 5)) // dirty: only Close's flush persists it
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenCheckpoint(CheckpointConfig{Path: path, Resume: true}, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if st := re.Stats(); st.ResumedUnits != 3 {
		t.Fatalf("ResumedUnits = %d, want 3", st.ResumedUnits)
	}
	u, ok := re.Completed("a", 2)
	if !ok || u.Queries != 5 || u.Stats.Queries != 5 {
		t.Fatalf("unit 2 not restored: %+v ok=%v", u, ok)
	}
	if _, ok := re.Completed("a", 3); ok {
		t.Fatal("phantom unit restored")
	}
	if _, ok := re.Completed("b", 0); ok {
		t.Fatal("unit restored under the wrong target")
	}
}

func TestCheckpointRefusesNonEmptyWithoutResume(t *testing.T) {
	path := ckPath(t)
	ck, err := OpenCheckpoint(CheckpointConfig{Path: path}, "fp")
	if err != nil {
		t.Fatal(err)
	}
	ck.Record(UnitRecord{Target: "a", Shard: 0})
	ck.Close()

	if _, err := OpenCheckpoint(CheckpointConfig{Path: path}, "fp"); err == nil {
		t.Fatal("reopening a non-empty journal without Resume must fail")
	}
}

func TestCheckpointFingerprintMismatch(t *testing.T) {
	path := ckPath(t)
	ck, err := OpenCheckpoint(CheckpointConfig{Path: path}, "fp-old")
	if err != nil {
		t.Fatal(err)
	}
	ck.Record(UnitRecord{Target: "a", Shard: 0})
	ck.Close()

	_, err = OpenCheckpoint(CheckpointConfig{Path: path, Resume: true}, "fp-new")
	if !errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("err = %v, want ErrFingerprintMismatch", err)
	}
	if err == nil || !strings.Contains(err.Error(), "fp-old") || !strings.Contains(err.Error(), "fp-new") {
		t.Fatalf("mismatch error must show both fingerprints: %v", err)
	}
}

func TestCheckpointCompactionBoundsJournal(t *testing.T) {
	path := ckPath(t)
	fp := "fp-compact"
	ck, err := OpenCheckpoint(CheckpointConfig{Path: path, Every: 1, CompactBytes: 512}, fp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		ck.Record(UnitRecord{Target: "a", Shard: i, Queries: i})
	}
	ck.Close()

	re, err := OpenCheckpoint(CheckpointConfig{Path: path, Resume: true}, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if st := re.Stats(); st.ResumedUnits != 50 {
		t.Fatalf("compaction lost units: %+v", st)
	}
}

func TestCampaignFingerprintSensitivity(t *testing.T) {
	cfg := tinyRunnerConfig()
	base := CampaignFingerprint("sequential", "reference", "cat", 1, 1, 10, cfg)
	if base != CampaignFingerprint("sequential", "reference", "cat", 1, 1, 10, cfg) {
		t.Fatal("fingerprint not deterministic")
	}
	cfg2 := cfg
	cfg2.Seed++
	for name, other := range map[string]string{
		"seed":       CampaignFingerprint("sequential", "reference", "cat", 1, 1, 10, cfg2),
		"mode":       CampaignFingerprint("sharded", "reference", "cat", 1, 1, 10, cfg),
		"targets":    CampaignFingerprint("sequential", "memgraph", "cat", 1, 1, 10, cfg),
		"catalog":    CampaignFingerprint("sequential", "reference", "cat2", 1, 1, 10, cfg),
		"workers":    CampaignFingerprint("sequential", "reference", "cat", 2, 1, 10, cfg),
		"iterations": CampaignFingerprint("sequential", "reference", "cat", 1, 1, 11, cfg),
		"batch":      CampaignFingerprint("sequential", "reference", "cat", 1, 4, 10, cfg),
	} {
		if other == base {
			t.Errorf("fingerprint insensitive to %s", name)
		}
	}
}

// TestCheckpointedSequentialResume: a sequential campaign killed after
// its second checkpoint resumes into the byte-identical verdict stream
// and merged stats of an uninterrupted run.
func TestCheckpointedSequentialResume(t *testing.T) {
	cfg := tinyRunnerConfig()
	cfg.Seed = 31
	const iterations = 6
	fp := CampaignFingerprint("sequential", "reference", "", 1, 1, iterations, cfg)

	trace := func(stats *Stats, run func(report func(*TestCase)) Stats) string {
		var sb strings.Builder
		s := run(func(tc *TestCase) {
			sb.WriteString(tc.Verdict.String())
			sb.WriteByte(';')
		})
		if stats != nil {
			*stats = s
		}
		return sb.String()
	}

	// Uninterrupted durable run: the ground truth.
	var full Stats
	fullTrace := trace(&full, func(report func(*TestCase)) Stats {
		ck, err := OpenCheckpoint(CheckpointConfig{Path: ckPath(t), Every: 1}, fp)
		if err != nil {
			t.Fatal(err)
		}
		defer ck.Close()
		s, err := RunCheckpointedSequential(context.Background(), gdb.NewReference(),
			cfg, iterations, "reference", ck, DurableHooks{}, report)
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
	if fullTrace == "" {
		t.Fatal("campaign produced no verdicts")
	}

	// The same campaign killed (context-canceled) after 2 checkpoints.
	path := ckPath(t)
	var canceled context.CancelFunc
	flushes := 0
	ck, err := OpenCheckpoint(CheckpointConfig{Path: path, Every: 1,
		OnFlush: func(int) {
			if flushes++; flushes == 2 {
				canceled()
			}
		}}, fp)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	canceled = cancel
	defer cancel()
	partial, err := RunCheckpointedSequential(ctx, gdb.NewReference(),
		cfg, iterations, "reference", ck, DurableHooks{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ck.Close()
	if partial.Graphs != 2 {
		t.Fatalf("interrupted run completed %d iterations, want 2", partial.Graphs)
	}

	// Resume: the live tail must replay exactly the uninterrupted stream.
	restoredUnits := 0
	var resumed Stats
	resumedTrace := trace(&resumed, func(report func(*TestCase)) Stats {
		re, err := OpenCheckpoint(CheckpointConfig{Path: path, Every: 1, Resume: true}, fp)
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		s, err := RunCheckpointedSequential(context.Background(), gdb.NewReference(),
			cfg, iterations, "reference", re, DurableHooks{
				Restore: func(UnitRecord) { restoredUnits++ },
			}, report)
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
	if restoredUnits != 2 {
		t.Fatalf("restored %d units, want 2", restoredUnits)
	}
	if resumed.Robust.ResumeFastForwarded != 2 {
		t.Fatalf("ResumeFastForwarded = %d, want 2", resumed.Robust.ResumeFastForwarded)
	}
	// The resumed report stream covers only the live tail; it must be a
	// suffix of the uninterrupted stream (the restored prefix is not
	// replayed to the report callback).
	if !strings.HasSuffix(fullTrace, resumedTrace) || resumedTrace == fullTrace {
		t.Fatalf("resumed tail is not a proper suffix:\n  full:    %s\n  resumed: %s", fullTrace, resumedTrace)
	}
	if scrubCk(resumed) != scrubCk(full) {
		t.Fatalf("resumed stats diverge:\n  full:    %+v\n  resumed: %+v", scrubCk(full), scrubCk(resumed))
	}
}

// TestCheckpointedParallelResume: a sharded campaign canceled after some
// checkpoints resumes to the same merged stats, skipping completed
// shards.
func TestCheckpointedParallelResume(t *testing.T) {
	pcfg := shardTestConfig()
	pcfg.Workers = 1 // deterministic completion order for the kill point
	fp := CampaignFingerprint("sharded", "reference", "", pcfg.Workers, 1, pcfg.Iterations, pcfg.Runner)
	factory := func(int) (Target, error) { return newRefTarget(nil), nil }

	baseline := RunParallel(pcfg, factory, nil)

	path := ckPath(t)
	var canceled context.CancelFunc
	flushes := 0
	ck, err := OpenCheckpoint(CheckpointConfig{Path: path, Every: 1,
		OnFlush: func(int) {
			if flushes++; flushes == 3 {
				canceled()
			}
		}}, fp)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	canceled = cancel
	defer cancel()
	RunCheckpointedParallel(ctx, pcfg, "reference", factory, nil, ck, DurableHooks{})
	ck.Close()

	re, err := OpenCheckpoint(CheckpointConfig{Path: path, Every: 1, Resume: true}, fp)
	if err != nil {
		t.Fatal(err)
	}
	if st := re.Stats(); st.ResumedUnits == 0 || st.ResumedUnits >= pcfg.Iterations {
		t.Fatalf("kill point restored %d units, want a partial campaign", st.ResumedUnits)
	}
	skipped := 0
	resumed := RunCheckpointedParallel(context.Background(), pcfg, "reference", factory, nil,
		re, DurableHooks{Restore: func(UnitRecord) { skipped++ }})
	re.Close()

	if skipped == 0 {
		t.Fatal("resume ran every shard from scratch")
	}
	if resumed.Robust.ResumeFastForwarded != skipped {
		t.Fatalf("ResumeFastForwarded = %d, want %d", resumed.Robust.ResumeFastForwarded, skipped)
	}
	if scrubCk(resumed.Stats) != scrubCk(baseline.Stats) {
		t.Fatalf("resumed merged stats diverge:\n  baseline: %+v\n  resumed:  %+v",
			scrubCk(baseline.Stats), scrubCk(resumed.Stats))
	}
	for i := range baseline.Shards {
		a, b := scrubCk(baseline.Shards[i].Stats), scrubCk(resumed.Shards[i].Stats)
		if a != b {
			t.Errorf("shard %d stats diverge after resume:\n  baseline: %+v\n  resumed:  %+v", i, a, b)
		}
	}
}

// TestFastForwardMatchesBreakerState: an iteration whose target never
// came up consumes only the graph draw; FastForward must honor that via
// the recorded zero query count, and RestoreResilience must reinstate
// the breaker so the resumed campaign probes instead of re-tripping.
func TestCheckpointedSequentialResumeThroughOutage(t *testing.T) {
	tgt := &flakyReset{Target: gdb.NewReference(), down: true}
	cfg := tinyRunnerConfig()
	cfg.Seed = 17
	const iterations = 8
	fp := CampaignFingerprint("sequential", "flaky", "", 1, 1, iterations, cfg)

	// Baseline: 5 dead iterations (breaker trips), then the target heals.
	baseRun := func(target Target, healAt int) (Stats, string) {
		rn := NewRunner(target, cfg)
		var sb strings.Builder
		for i := 0; i < iterations; i++ {
			if i == healAt {
				tgt.down = false
			}
			if err := rn.RunIteration(func(tc *TestCase) {
				sb.WriteString(tc.Verdict.String())
				sb.WriteByte(';')
			}); err != nil {
				t.Fatal(err)
			}
		}
		return rn.Stats(), sb.String()
	}
	base, baseTrace := baseRun(tgt, 5)
	if base.Robust.BreakerTrips != 1 || base.Graphs == 0 {
		t.Fatalf("baseline scenario did not trip+heal: %+v", base.Robust)
	}

	// Durable run killed during the outage (after 4 dead iterations).
	tgt2 := &flakyReset{Target: gdb.NewReference(), down: true}
	path := ckPath(t)
	ck, err := OpenCheckpoint(CheckpointConfig{Path: path, Every: 1}, fp)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	flushes := 0
	ck.cfg.OnFlush = func(int) {
		if flushes++; flushes == 4 {
			cancel()
		}
	}
	if _, err := RunCheckpointedSequential(ctx, tgt2, cfg, iterations, "flaky", ck, DurableHooks{}, nil); err != nil {
		t.Fatal(err)
	}
	cancel()
	ck.Close()

	// Resume with a healed target from iteration 5 on: breaker state must
	// carry over (open, then probed closed), and the verdict tail must
	// match the baseline's.
	tgt2.down = true
	re, err := OpenCheckpoint(CheckpointConfig{Path: path, Every: 1, Resume: true}, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	u, ok := re.Completed("flaky", 3)
	if !ok || !u.BreakerOpen || u.Queries != 0 {
		t.Fatalf("outage unit not recorded with open breaker and zero queries: %+v ok=%v", u, ok)
	}
	var sb strings.Builder
	restored := 0
	s, err := runCheckpointedSequentialHealing(context.Background(), tgt2, cfg, iterations, "flaky", re,
		DurableHooks{Restore: func(UnitRecord) { restored++ }},
		func(tc *TestCase) {
			sb.WriteString(tc.Verdict.String())
			sb.WriteByte(';')
		}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 4 {
		t.Fatalf("restored %d units, want 4", restored)
	}
	if !strings.HasSuffix(baseTrace, sb.String()) {
		t.Fatalf("resumed tail diverges:\n  baseline: %q\n  resumed:  %q", baseTrace, sb.String())
	}
	if got, want := scrubCk(s), scrubCk(base); got != want {
		t.Fatalf("stats diverge:\n  baseline: %+v\n  resumed:  %+v", want, got)
	}
}

// runCheckpointedSequentialHealing is RunCheckpointedSequential with a
// heal hook: the flakyReset target comes up at iteration healAt, mirroring
// the baseline scenario across the kill/resume boundary.
func runCheckpointedSequentialHealing(ctx context.Context, target *flakyReset, cfg RunnerConfig,
	iterations int, name string, ck *Checkpointer, hooks DurableHooks,
	report func(*TestCase), healAt int) (Stats, error) {
	var restored Stats
	var counts []int
	var last UnitRecord
	for i := 0; i < iterations; i++ {
		u, ok := ck.Completed(name, i)
		if !ok {
			break
		}
		if hooks.Restore != nil {
			hooks.Restore(u)
		}
		restored.Add(u.Stats)
		counts = append(counts, u.Queries)
		last = u
	}
	rn := NewRunnerCtx(ctx, target, cfg)
	if len(counts) > 0 {
		rn.FastForward(counts)
		rn.RestoreResilience(last.BreakerOpen, last.ConsecFails)
	}
	prev := rn.Stats()
	for i := len(counts); i < iterations; i++ {
		if i >= healAt {
			target.down = false
		}
		if err := rn.RunIteration(report); err != nil {
			return restored, err
		}
		cur := rn.Stats()
		open, fails := rn.Breaker()
		ck.Record(UnitRecord{Target: name, Shard: i, Queries: cur.Queries - prev.Queries,
			Stats: statsDelta(cur, prev), BreakerOpen: open, ConsecFails: fails})
		prev = cur
	}
	total := restored
	total.Add(rn.Stats())
	return total, nil
}
