package core

import (
	"fmt"
	"strings"
)

// Report renders the test case as a self-contained, reproducible bug
// report. The paper highlights this as a practical advantage of
// ground-truth testing (§7): unlike differential or metamorphic reports,
// a GQS report names the faulty database, the exact graph and query, and
// the expected result — everything a developer needs to reproduce.
func (tc *TestCase) Report(targetName string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s report for %s (query #%d)\n\n", tc.Verdict, targetName, tc.Seq)
	fmt.Fprintf(&sb, "Synthesized with %d steps.\n\n", tc.Steps)

	if tc.Graph != nil {
		fmt.Fprintf(&sb, "## Graph (%d nodes, %d relationships)\n\n```cypher\n%s\n```\n\n",
			tc.Graph.NumNodes(), tc.Graph.NumRels(), tc.Graph.ToCypher())
	}
	fmt.Fprintf(&sb, "## Query\n\n```cypher\n%s\n```\n\n", tc.Query)

	if tc.Expected != nil {
		sb.WriteString("## Expected result (ground truth)\n\n```\n")
		sb.WriteString(tc.Expected.String())
		sb.WriteString("\n```\n\n")
	}
	switch {
	case tc.Err != nil:
		fmt.Fprintf(&sb, "## Actual behaviour\n\n```\n%v\n```\n", tc.Err)
	case tc.Actual != nil:
		sb.WriteString("## Actual result\n\n```\n")
		sb.WriteString(tc.Actual.String())
		sb.WriteString("\n```\n")
	}
	return sb.String()
}
