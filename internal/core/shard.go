package core

import (
	"runtime"
	"sync"
	"time"

	"gqs/internal/functions"
)

// This file is the sharded parallel campaign executor. The paper's
// evaluation runs month-long fuzzing campaigns; a sequential runner caps
// throughput at one core. The workflow is embarrassingly parallel per
// iteration — every iteration generates its own graph, restarts its own
// instance, and synthesizes its own queries — so the executor fans
// iterations across a worker pool.
//
// The determinism contract: the unit of sharding is the LOGICAL
// iteration, not the worker. Shard i derives its RNG seed from
// (campaign seed, i) alone, runs on a fresh Runner against a fresh
// connector from the factory, and records its stats into slot i. The
// work decomposition is therefore independent of how many workers drain
// the shard queue, and a merged campaign at `seed S, workers 1` reports
// the byte-identical bug set as `seed S, workers N` — only wall-clock
// time changes.

// ShardSeed derives the RNG seed of logical shard i from the campaign
// seed. Exposed so connector factories can derive matching per-shard
// streams (e.g. flaky-injection seeds) that stay independent of the
// worker count.
func ShardSeed(seed int64, shard int) int64 {
	return functions.DeriveSeed(seed, int64(shard))
}

// TargetFactory builds the connector for one shard. Every call must
// return an independent instance — its own engine, fault catalog, and
// flaky wrapper — because shards execute concurrently and connectors are
// not goroutine-safe.
type TargetFactory func(shard int) (Target, error)

// ParallelConfig bounds one sharded campaign.
type ParallelConfig struct {
	// Workers is the worker-pool size; 0 selects GOMAXPROCS. The pool is
	// clamped to Iterations (more workers than shards is waste).
	Workers int
	// Iterations is the number of logical shards, one workflow iteration
	// (graph generation + instance restart + query batch) each.
	Iterations int
	// Runner configures each shard's runner. Runner.Seed is the campaign
	// seed; shard i runs with ShardSeed(Runner.Seed, i).
	Runner RunnerConfig
}

// ShardStats is one shard's outcome.
type ShardStats struct {
	Shard int
	Stats Stats
}

// ParallelStats is the merged, order-independent outcome of a sharded
// campaign: per-field sums over the shards plus the pool's wall-clock
// time (the merged Stats.Elapsed sums per-shard busy time, so
// Elapsed/Wall approximates the achieved parallelism).
type ParallelStats struct {
	Stats
	Wall    time.Duration
	Workers int
	Shards  []ShardStats // indexed by shard, always in shard order
}

// IterationsPerSec is the campaign's wall-clock iteration throughput.
func (p *ParallelStats) IterationsPerSec() float64 {
	if p.Wall <= 0 {
		return 0
	}
	return float64(len(p.Shards)) / p.Wall.Seconds()
}

// QueriesPerSec is the campaign's wall-clock query throughput.
func (p *ParallelStats) QueriesPerSec() float64 {
	if p.Wall <= 0 {
		return 0
	}
	return float64(p.Queries) / p.Wall.Seconds()
}

// Add accumulates another stats block; the merge layer sums per-shard
// stats this way, so the totals are independent of completion order.
func (s *Stats) Add(o Stats) {
	s.Graphs += o.Graphs
	s.Queries += o.Queries
	s.Passes += o.Passes
	s.LogicBugs += o.LogicBugs
	s.ErrorBugs += o.ErrorBugs
	s.Skips += o.Skips
	s.Elapsed += o.Elapsed
	s.Robust.Add(o.Robust)
}

// RunParallel executes cfg.Iterations logical shards across a worker
// pool and merges the results. observe (optional) sees every test case
// together with its shard index and that shard's target (for fault
// attribution): calls for one shard are sequential, but calls for
// different shards arrive concurrently from different goroutines —
// observers touching shared state must synchronize.
//
// A factory error costs one failed iteration (recorded in the merged
// Stats.Robust), never the campaign — the same degraded-not-dead
// contract the sequential runner keeps.
func RunParallel(cfg ParallelConfig, factory TargetFactory, observe func(shard int, target Target, tc *TestCase)) *ParallelStats {
	start := time.Now()
	n := cfg.Iterations
	if n < 0 {
		n = 0
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	perShard := make([]Stats, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for shard := range jobs {
				perShard[shard] = runShard(cfg, shard, factory, observe)
			}
		}()
	}
	for shard := 0; shard < n; shard++ {
		jobs <- shard
	}
	close(jobs)
	wg.Wait()

	ps := &ParallelStats{Workers: workers, Wall: time.Since(start)}
	ps.Shards = make([]ShardStats, n)
	for i := range perShard {
		ps.Shards[i] = ShardStats{Shard: i, Stats: perShard[i]}
		ps.Stats.Add(perShard[i])
	}
	return ps
}

// runShard executes one logical shard: fresh seed, fresh connector,
// fresh runner, one workflow iteration.
func runShard(cfg ParallelConfig, shard int, factory TargetFactory, observe func(int, Target, *TestCase)) Stats {
	rcfg := cfg.Runner
	rcfg.Seed = ShardSeed(cfg.Runner.Seed, shard)
	target, err := factory(shard)
	if err != nil {
		var s Stats
		s.Robust.FailedIterations++
		return s
	}
	if c, ok := target.(interface{ Close() error }); ok {
		defer c.Close()
	}
	rn := NewRunner(target, rcfg)
	var report func(*TestCase)
	if observe != nil {
		report = func(tc *TestCase) { observe(shard, target, tc) }
	}
	rn.RunIteration(report)
	return rn.Stats()
}
