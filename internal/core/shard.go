package core

import (
	"context"
	"runtime"
	"sync"
	"time"

	"gqs/internal/functions"
)

// This file is the sharded parallel campaign executor. The paper's
// evaluation runs month-long fuzzing campaigns; a sequential runner caps
// throughput at one core. The workflow is embarrassingly parallel per
// iteration — every iteration generates its own graph, restarts its own
// instance, and synthesizes its own queries — so the executor fans
// iterations across a worker pool.
//
// The determinism contract: the unit of sharding is the LOGICAL
// iteration, not the worker. Shard i derives its RNG seed from
// (campaign seed, i) alone, runs on a fresh Runner against a fresh
// connector from the factory, and records its stats into slot i. The
// work decomposition is therefore independent of how many workers drain
// the shard queue, and a merged campaign at `seed S, workers 1` reports
// the byte-identical bug set as `seed S, workers N` — only wall-clock
// time changes.

// ShardSeed derives the RNG seed of logical shard i from the campaign
// seed. Exposed so connector factories can derive matching per-shard
// streams (e.g. flaky-injection seeds) that stay independent of the
// worker count.
func ShardSeed(seed int64, shard int) int64 {
	return functions.DeriveSeed(seed, int64(shard))
}

// TargetFactory builds the connector for one shard. Every call must
// return an independent instance — its own engine, fault catalog, and
// flaky wrapper — because shards execute concurrently and connectors are
// not goroutine-safe.
type TargetFactory func(shard int) (Target, error)

// ShardSeeder is the optional connector-reuse extension of Target: a
// connector that can re-derive all its per-shard deterministic state
// (engine seed and execution counter, flaky-injection stream) for a new
// shard index. A worker reuses one such connector across every shard it
// drains — skipping the per-shard engine and fault-catalog construction
// that made workers=1 parallel campaigns slower than the sequential
// runner — under the contract that after SeedShard(i) the target behaves
// byte-identically to a freshly built factory(i) instance.
type ShardSeeder interface {
	SeedShard(shard int)
}

// ParallelConfig bounds one sharded campaign.
type ParallelConfig struct {
	// Workers is the worker-pool size; 0 selects GOMAXPROCS. The pool is
	// clamped to Iterations (more workers than shards is waste).
	Workers int
	// Iterations is the number of logical shards, one workflow iteration
	// (graph generation + instance restart + query batch) each.
	Iterations int
	// Runner configures each shard's runner. Runner.Seed is the campaign
	// seed; shard i runs with ShardSeed(Runner.Seed, i).
	Runner RunnerConfig
	// SkipShard, when set, lets a resumed campaign skip already-completed
	// shards: return that shard's recorded stats and true to place them
	// in the shard's slot without running it. Called once per shard from
	// the feed loop (a single goroutine), before the shard is enqueued.
	SkipShard func(shard int) (Stats, bool)
	// ShardDone observes each shard that ran to completion, called from
	// the worker goroutine that ran it immediately afterwards. It is not
	// called for shards skipped via SkipShard, nor for shards still in
	// flight when the context is canceled — cancellation is monotonic, so
	// a ShardDone call guarantees the shard's full, uninterrupted stats.
	// Callers touching shared state must synchronize.
	ShardDone func(shard int, s Stats)
}

// ShardStats is one shard's outcome.
type ShardStats struct {
	Shard int
	Stats Stats
}

// ParallelStats is the merged, order-independent outcome of a sharded
// campaign: per-field sums over the shards plus the pool's wall-clock
// time (the merged Stats.Elapsed sums per-shard busy time, so
// Elapsed/Wall approximates the achieved parallelism).
type ParallelStats struct {
	Stats
	Wall    time.Duration
	Workers int
	Shards  []ShardStats // indexed by shard, always in shard order
}

// IterationsPerSec is the campaign's wall-clock iteration throughput.
func (p *ParallelStats) IterationsPerSec() float64 {
	if p.Wall <= 0 {
		return 0
	}
	return float64(len(p.Shards)) / p.Wall.Seconds()
}

// QueriesPerSec is the campaign's wall-clock query throughput.
func (p *ParallelStats) QueriesPerSec() float64 {
	if p.Wall <= 0 {
		return 0
	}
	return float64(p.Queries) / p.Wall.Seconds()
}

// Add accumulates another stats block; the merge layer sums per-shard
// stats this way, so the totals are independent of completion order.
func (s *Stats) Add(o Stats) {
	s.Graphs += o.Graphs
	s.Queries += o.Queries
	s.Passes += o.Passes
	s.LogicBugs += o.LogicBugs
	s.ErrorBugs += o.ErrorBugs
	s.Skips += o.Skips
	s.Elapsed += o.Elapsed
	s.Robust.Add(o.Robust)
}

// RunParallel executes cfg.Iterations logical shards across a worker
// pool and merges the results. observe (optional) sees every test case
// together with its shard index and that shard's target (for fault
// attribution): calls for one shard are sequential, but calls for
// different shards arrive concurrently from different goroutines —
// observers touching shared state must synchronize.
//
// A factory error costs one failed iteration (recorded in the merged
// Stats.Robust), never the campaign — the same degraded-not-dead
// contract the sequential runner keeps.
func RunParallel(cfg ParallelConfig, factory TargetFactory, observe func(shard int, target Target, tc *TestCase)) *ParallelStats {
	return RunParallelCtx(context.Background(), cfg, factory, observe)
}

// RunParallelCtx is RunParallel under a cancelable context: once ctx is
// done the feed loop stops enqueueing shards, idle workers drain the
// queue without running, and in-flight shards stop between queries. A
// canceled run still returns merged stats for whatever completed; the
// checkpoint layer's ShardDone hook sees exactly the shards that ran to
// completion before cancellation.
func RunParallelCtx(ctx context.Context, cfg ParallelConfig, factory TargetFactory, observe func(shard int, target Target, tc *TestCase)) *ParallelStats {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	n := cfg.Iterations
	if n < 0 {
		n = 0
	}
	perShard := make([]Stats, n)
	// Resume pass: already-completed shards get their recorded stats and
	// never reach the queue. The feed loop below only sees the rest.
	pending := make([]int, 0, n)
	for shard := 0; shard < n; shard++ {
		if cfg.SkipShard != nil {
			if s, ok := cfg.SkipShard(shard); ok {
				s.Robust.ResumeFastForwarded++
				perShard[shard] = s
				continue
			}
		}
		pending = append(pending, shard)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A connector that supports per-shard reseeding is built once
			// and reused for every shard this worker drains; others are
			// built and closed per shard as before. Reuse changes which
			// instance runs a shard, never what the shard computes: the
			// shard's RNG streams derive from (campaign seed, shard) alone.
			var reused Target
			defer closeTarget(&reused)
			for shard := range jobs {
				if ctx.Err() != nil {
					continue // canceled: drain the queue without running
				}
				if reused != nil {
					reused.(ShardSeeder).SeedShard(shard)
					perShard[shard] = runShardOn(ctx, cfg, shard, reused, observe)
				} else if target, err := factory(shard); err != nil {
					var s Stats
					s.Robust.FailedIterations++
					perShard[shard] = s
				} else if _, ok := target.(ShardSeeder); ok {
					// The factory seeds the instance for its shard index,
					// so the first shard needs no SeedShard call.
					reused = target
					perShard[shard] = runShardOn(ctx, cfg, shard, reused, observe)
				} else {
					perShard[shard] = runShardOn(ctx, cfg, shard, target, observe)
					closeTarget(&target)
				}
				// Cancellation is monotonic: a nil ctx.Err() here proves
				// the whole shard ran uninterrupted, so recording it as
				// complete is safe even though the check races the cancel.
				if ctx.Err() == nil && cfg.ShardDone != nil {
					cfg.ShardDone(shard, perShard[shard])
				}
			}
		}()
	}
feed:
	for _, shard := range pending {
		select {
		case jobs <- shard:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	ps := &ParallelStats{Workers: workers, Wall: time.Since(start)}
	ps.Shards = make([]ShardStats, n)
	for i := range perShard {
		ps.Shards[i] = ShardStats{Shard: i, Stats: perShard[i]}
		ps.Stats.Add(perShard[i])
	}
	return ps
}

// closeTarget closes a connector if it supports closing; the pointer
// form lets deferred worker cleanup see the final reused instance.
func closeTarget(t *Target) {
	if t == nil || *t == nil {
		return
	}
	if c, ok := (*t).(interface{ Close() error }); ok {
		c.Close()
	}
}

// runShardOn executes one logical shard on an already-built connector:
// fresh shard seed, fresh runner, one workflow iteration. The runner is
// cheap to construct; only the connector (engine + fault catalog) is
// worth reusing across shards.
func runShardOn(ctx context.Context, cfg ParallelConfig, shard int, target Target, observe func(int, Target, *TestCase)) Stats {
	rcfg := cfg.Runner
	rcfg.Seed = ShardSeed(cfg.Runner.Seed, shard)
	rn := NewRunnerCtx(ctx, target, rcfg)
	var report func(*TestCase)
	if observe != nil {
		report = func(tc *TestCase) { observe(shard, target, tc) }
	}
	rn.RunIteration(report)
	return rn.Stats()
}
