package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gqs/internal/functions"
)

// This file is the sharded parallel campaign executor. The paper's
// evaluation runs month-long fuzzing campaigns; a sequential runner caps
// throughput at one core. The workflow is embarrassingly parallel per
// iteration — every iteration generates its own graph, restarts its own
// instance, and synthesizes its own queries — so the executor fans
// iterations across a worker pool.
//
// The determinism contract: the unit of sharding is the LOGICAL
// iteration, not the worker and not the batch. Shard i derives its RNG
// seed from (campaign seed, i) alone and records its stats into slot i.
// Workers drain contiguous *ranges* of shards (work units of Batch
// iterations) to amortize per-shard setup, but a unit is nothing more
// than a loop over its shards — each one reseeded exactly as if it were
// enqueued alone. The work decomposition is therefore independent of
// both the worker count and the batch size, and a merged campaign at
// `seed S, workers 1, batch 1` reports the byte-identical bug set as
// `seed S, workers N, batch K` — only wall-clock time changes.

// ShardSeed derives the RNG seed of logical shard i from the campaign
// seed. Exposed so connector factories can derive matching per-shard
// streams (e.g. flaky-injection seeds) that stay independent of the
// worker count.
func ShardSeed(seed int64, shard int) int64 {
	return functions.DeriveSeed(seed, int64(shard))
}

// TargetFactory builds the connector for one shard. Every call must
// return an independent instance — its own engine, fault catalog, and
// flaky wrapper — because shards execute concurrently and connectors are
// not goroutine-safe.
type TargetFactory func(shard int) (Target, error)

// ShardSeeder is the optional connector-reuse extension of Target: a
// connector that can re-derive all its per-shard deterministic state
// (engine seed and execution counter, flaky-injection stream) for a new
// shard index. A worker reuses one such connector — and one Runner on
// top of it, reseeded per shard — across every shard it drains,
// skipping the per-shard engine and fault-catalog construction that
// made workers=1 parallel campaigns slower than the sequential runner,
// under the contract that after SeedShard(i) the target behaves
// byte-identically to a freshly built factory(i) instance.
type ShardSeeder interface {
	SeedShard(shard int)
}

// ParallelConfig bounds one sharded campaign.
type ParallelConfig struct {
	// Workers is the worker-pool size; 0 selects GOMAXPROCS. The pool is
	// clamped to the number of pending work units (more workers than
	// units is waste).
	Workers int
	// Iterations is the number of logical shards, one workflow iteration
	// (graph generation + instance restart + query batch) each.
	Iterations int
	// Batch is the work-unit size: each unit a worker drains is a
	// contiguous range of Batch logical iterations (the tail unit may be
	// shorter). 0 or negative selects 1. Batching amortizes per-unit
	// scheduling and checkpoint costs; it never changes what any shard
	// computes, so results are byte-identical across batch sizes.
	Batch int
	// Runner configures each shard's runner. Runner.Seed is the campaign
	// seed; shard i runs with ShardSeed(Runner.Seed, i).
	Runner RunnerConfig
	// Share, when set, dedups the per-iteration sealed snapshot (and the
	// graph + schema it was sealed from) across every executor pass that
	// runs the same logical shards — e.g. the per-GDB legs of a campaign,
	// whose shard-i graphs are identical by construction. The first pass
	// to reach shard i seals and publishes; later passes still burn the
	// generation draws (the RNG stream must advance) but reuse the
	// published triple, so the seal and the per-schema index build happen
	// once per shard instead of once per shard per target.
	Share *SnapshotShare
	// SkipUnit, when set, lets a resumed campaign skip already-completed
	// work units: return the unit's recorded stats (the sum over its
	// shards) and true to account for it without running it. Called once
	// per unit from the feed loop (a single goroutine), in ascending
	// start order, before anything is enqueued. Units are identified by
	// their (start, count) range, which is stable for a fixed
	// (Iterations, Batch) pair — the checkpoint fingerprint pins both.
	SkipUnit func(start, count int) (Stats, bool)
	// UnitDone observes each work unit that ran to completion, called
	// from the worker goroutine that ran it immediately afterwards with
	// the summed stats of its shards. It is not called for units skipped
	// via SkipUnit, for units still in flight when the context is
	// canceled — cancellation is monotonic, so a UnitDone call guarantees
	// the unit's full, uninterrupted stats — nor for units in which any
	// shard's target factory failed: a factory error is transient
	// infrastructure trouble, and recording the unit as complete would
	// make a resumed campaign skip (never retry) the failed shard.
	// Callers touching shared state must synchronize.
	UnitDone func(start, count int, s Stats)
}

// workUnit is one contiguous range of logical shards drained by a
// single worker.
type workUnit struct {
	start, count int
}

// ShardStats is one shard's outcome.
type ShardStats struct {
	Shard int
	Stats Stats
}

// ParallelStats is the merged, order-independent outcome of a sharded
// campaign: per-field sums over the shards plus the pool's wall-clock
// time (the merged Stats.Elapsed sums per-shard busy time, so
// Elapsed/Wall approximates the achieved parallelism).
type ParallelStats struct {
	Stats
	Wall    time.Duration
	Workers int
	// Ran counts the logical iterations this run actually attempted
	// (including failed attempts); Restored counts the iterations
	// restored from a checkpoint without running. Ran+Restored ≤
	// Iterations, with the gap being canceled-before-start shards.
	Ran      int
	Restored int
	// RanQueries counts the queries executed live this run (restored
	// units' queries are in Stats.Queries but not here).
	RanQueries int
	Shards     []ShardStats // indexed by shard, always in shard order
}

// IterationsPerSec is the campaign's live wall-clock iteration
// throughput: only iterations that actually ran count — a resumed
// campaign must not claim its restored units as this run's speed.
func (p *ParallelStats) IterationsPerSec() float64 {
	if p.Wall <= 0 {
		return 0
	}
	return float64(p.Ran) / p.Wall.Seconds()
}

// QueriesPerSec is the campaign's live wall-clock query throughput
// (restored units excluded, as in IterationsPerSec).
func (p *ParallelStats) QueriesPerSec() float64 {
	if p.Wall <= 0 {
		return 0
	}
	return float64(p.RanQueries) / p.Wall.Seconds()
}

// Add accumulates another stats block; the merge layer sums per-shard
// stats this way, so the totals are independent of completion order.
func (s *Stats) Add(o Stats) {
	s.Graphs += o.Graphs
	s.Queries += o.Queries
	s.Passes += o.Passes
	s.LogicBugs += o.LogicBugs
	s.ErrorBugs += o.ErrorBugs
	s.Skips += o.Skips
	s.Elapsed += o.Elapsed
	s.Robust.Add(o.Robust)
}

// RunParallel executes cfg.Iterations logical shards across a worker
// pool and merges the results. observe (optional) sees every test case
// together with its shard index and that shard's target (for fault
// attribution): calls for one shard are sequential, but calls for
// different shards arrive concurrently from different goroutines —
// observers touching shared state must synchronize.
//
// A factory error costs one failed iteration (recorded in the merged
// Stats.Robust), never the campaign — the same degraded-not-dead
// contract the sequential runner keeps.
func RunParallel(cfg ParallelConfig, factory TargetFactory, observe func(shard int, target Target, tc *TestCase)) *ParallelStats {
	return RunParallelCtx(context.Background(), cfg, factory, observe)
}

// RunParallelCtx is RunParallel under a cancelable context: once ctx is
// done the feed loop stops enqueueing units, idle workers drain the
// queue without running, and in-flight shards stop between queries. A
// canceled run still returns merged stats for whatever completed; the
// checkpoint layer's UnitDone hook sees exactly the units that ran to
// completion before cancellation.
func RunParallelCtx(ctx context.Context, cfg ParallelConfig, factory TargetFactory, observe func(shard int, target Target, tc *TestCase)) *ParallelStats {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	n := cfg.Iterations
	if n < 0 {
		n = 0
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = 1
	}
	perShard := make([]Stats, n)
	// Resume pass: already-completed units get their recorded stats and
	// never reach the queue. The feed loop below only sees the rest.
	// A restored unit's summed stats land in its start slot; the merged
	// totals are identical to per-shard placement.
	pending := make([]workUnit, 0, (n+batch-1)/batch)
	restored := 0
	for us := 0; us < n; us += batch {
		count := batch
		if us+count > n {
			count = n - us
		}
		if cfg.SkipUnit != nil {
			if s, ok := cfg.SkipUnit(us, count); ok {
				s.Robust.ResumeFastForwarded += count
				perShard[us] = s
				restored += count
				continue
			}
		}
		pending = append(pending, workUnit{start: us, count: count})
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	var ran, ranQueries atomic.Int64
	jobs := make(chan workUnit)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A connector that supports per-shard reseeding is built once
			// and reused — together with one Runner on top of it — for
			// every shard this worker drains; others are built and closed
			// per shard as before. Reuse changes which instance runs a
			// shard, never what the shard computes: the shard's RNG
			// streams derive from (campaign seed, shard) alone.
			var reused Target
			var rn *Runner
			defer closeTarget(&reused)
			runShard := func(shard int) bool {
				if reused != nil {
					reused.(ShardSeeder).SeedShard(shard)
					rn.Reseed(ShardSeed(cfg.Runner.Seed, shard))
					rn.SetShare(cfg.Share, shard)
					perShard[shard] = runIterationOn(rn, shard, reused, observe)
					return true
				}
				target, err := factory(shard)
				if err != nil {
					var s Stats
					s.Robust.FailedIterations++
					perShard[shard] = s
					return false
				}
				if _, ok := target.(ShardSeeder); ok {
					// The factory seeds the instance for its shard index,
					// so the first shard needs no SeedShard/Reseed call.
					reused = target
					rcfg := cfg.Runner
					rcfg.Seed = ShardSeed(cfg.Runner.Seed, shard)
					rn = NewRunnerCtx(ctx, reused, rcfg)
					rn.SetShare(cfg.Share, shard)
					perShard[shard] = runIterationOn(rn, shard, reused, observe)
					return true
				}
				perShard[shard] = runShardOn(ctx, cfg, shard, target, observe)
				closeTarget(&target)
				return true
			}
			for u := range jobs {
				if ctx.Err() != nil {
					continue // canceled: drain the queue without running
				}
				complete := true
				for shard := u.start; shard < u.start+u.count; shard++ {
					if ctx.Err() != nil {
						complete = false
						break
					}
					ran.Add(1)
					if !runShard(shard) {
						// Keep running the unit's other shards — their work
						// is still valid — but the unit must not be
						// reported complete (see UnitDone).
						complete = false
						continue
					}
					ranQueries.Add(int64(perShard[shard].Queries))
				}
				// Cancellation is monotonic: a nil ctx.Err() here proves
				// the whole unit ran uninterrupted, so recording it as
				// complete is safe even though the check races the cancel.
				if complete && ctx.Err() == nil && cfg.UnitDone != nil {
					var sum Stats
					for shard := u.start; shard < u.start+u.count; shard++ {
						sum.Add(perShard[shard])
					}
					cfg.UnitDone(u.start, u.count, sum)
				}
			}
		}()
	}
feed:
	for _, u := range pending {
		select {
		case jobs <- u:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	ps := &ParallelStats{
		Workers:    workers,
		Wall:       time.Since(start),
		Ran:        int(ran.Load()),
		Restored:   restored,
		RanQueries: int(ranQueries.Load()),
	}
	ps.Shards = make([]ShardStats, n)
	for i := range perShard {
		ps.Shards[i] = ShardStats{Shard: i, Stats: perShard[i]}
		ps.Stats.Add(perShard[i])
	}
	return ps
}

// closeTarget closes a connector if it supports closing; the pointer
// form lets deferred worker cleanup see the final reused instance.
func closeTarget(t *Target) {
	if t == nil || *t == nil {
		return
	}
	if c, ok := (*t).(interface{ Close() error }); ok {
		c.Close()
	}
}

// runIterationOn executes one logical shard on an already-seeded runner:
// one workflow iteration, stats read back from the (freshly reseeded)
// runner.
func runIterationOn(rn *Runner, shard int, target Target, observe func(int, Target, *TestCase)) Stats {
	var report func(*TestCase)
	if observe != nil {
		report = func(tc *TestCase) { observe(shard, target, tc) }
	}
	rn.RunIteration(report)
	return rn.Stats()
}

// runShardOn executes one logical shard on an already-built connector
// that does not support reuse: fresh shard seed, fresh runner, one
// workflow iteration.
func runShardOn(ctx context.Context, cfg ParallelConfig, shard int, target Target, observe func(int, Target, *TestCase)) Stats {
	rcfg := cfg.Runner
	rcfg.Seed = ShardSeed(cfg.Runner.Seed, shard)
	rn := NewRunnerCtx(ctx, target, rcfg)
	rn.SetShare(cfg.Share, shard)
	return runIterationOn(rn, shard, target, observe)
}
