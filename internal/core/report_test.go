package core

import (
	"strings"
	"testing"

	"gqs/internal/engine"
	"gqs/internal/graph"
	"gqs/internal/value"
)

func TestReportContents(t *testing.T) {
	g := graph.New()
	n := g.NewNode("L0")
	n.Props["k0"] = value.Int(5)
	tc := &TestCase{
		Seq:      7,
		Query:    `MATCH (n:L0) RETURN n.k0 AS a0`,
		Steps:    3,
		Verdict:  VerdictLogicBug,
		Expected: &engine.Result{Columns: []string{"a0"}, Rows: [][]value.Value{{value.Int(5)}}},
		Actual:   &engine.Result{Columns: []string{"a0"}, Rows: [][]value.Value{{value.Int(6)}}},
		Graph:    g,
	}
	rep := tc.Report("falkordb")
	for _, want := range []string{
		"logic-bug report for falkordb",
		"3 steps",
		"CREATE",
		"MATCH (n:L0) RETURN n.k0 AS a0",
		"Expected result",
		"Actual result",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	// Error reports render the error instead of a result table.
	tc.Actual, tc.Err = nil, &engine.ErrResourceLimit{What: "x"}
	tc.Verdict = VerdictErrorBug
	rep = tc.Report("neo4j")
	if !strings.Contains(rep, "Actual behaviour") || !strings.Contains(rep, "resource limit") {
		t.Errorf("error report broken:\n%s", rep)
	}
}
