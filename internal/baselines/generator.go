// Package baselines reimplements the five state-of-the-art testers the
// paper compares against (§5.4): the differential tester GDsmith and the
// metamorphic testers GDBMeter (ternary-logic partitioning), Gamera
// (graph-aware relations), GQT (injective/surjective transformations),
// and GRev (equivalent query rewriting). Each tester couples a query
// generator — tuned to the complexity profile Table 5 reports for it —
// with its published oracle.
package baselines

import (
	"fmt"
	"math/rand"
	"strings"

	"gqs/internal/graph"
)

// Knobs tunes the shared random query generator to a tester's complexity
// profile (Table 5).
type Knobs struct {
	MatchClauses [2]int // min,max MATCH clauses
	Patterns     [2]int // pattern parts per MATCH
	ChainLen     [2]int // relationships per pattern part
	PredDepth    [2]int // extra nesting wrapped around predicates
	WithChain    [2]int // number of WITH stages
	UnwindPct    int    // chance of an UNWIND stage
	UnwindFirst  bool   // UNWIND may precede the first MATCH
	OrderByPct   int
	DistinctPct  int
	CallPct      int
	AnchorPct    int // chance of pinning a pattern element by id (keeps results small)
	MaxPreds     int // upper bound on WHERE conjuncts per MATCH (default 2)
}

// Gen is a reusable random Cypher query generator over a generated graph.
// Unlike GQS it has no ground truth: it only promises syntactic validity
// and (mostly) executable queries.
type Gen struct {
	r      *rand.Rand
	g      *graph.Graph
	schema *graph.Schema
	knobs  Knobs
	seq    int
}

// NewGen creates a generator for the graph.
func NewGen(r *rand.Rand, g *graph.Graph, schema *graph.Schema, knobs Knobs) *Gen {
	return &Gen{r: r, g: g, schema: schema, knobs: knobs}
}

func (g *Gen) pct(p int) bool { return g.r.Intn(100) < p }

func (g *Gen) span(b [2]int) int {
	if b[1] <= b[0] {
		return b[0]
	}
	return b[0] + g.r.Intn(b[1]-b[0]+1)
}

// Query generates one query and the variables it keeps in scope.
func (g *Gen) Query() string {
	g.seq = 0
	var sb strings.Builder
	var scope []scopedVar

	if g.knobs.UnwindFirst && g.pct(g.knobs.UnwindPct) {
		scope = append(scope, g.unwind(&sb, scope))
	}
	if g.pct(g.knobs.CallPct) {
		sb.WriteString("CALL db.labels() YIELD label ")
		scope = append(scope, scopedVar{name: "label", kind: varAlias})
	}
	nMatch := g.span(g.knobs.MatchClauses)
	if nMatch < 1 {
		nMatch = 1
	}
	for i := 0; i < nMatch; i++ {
		scope = g.match(&sb, scope)
		if i < nMatch-1 && g.pct(g.knobs.UnwindPct) {
			scope = append(scope, g.unwind(&sb, scope))
		}
		if i < nMatch-1 && g.span(g.knobs.WithChain) > 0 {
			scope = g.with(&sb, scope)
		}
	}
	g.returns(&sb, scope)
	return sb.String()
}

type varKind int

const (
	varNode varKind = iota
	varRel
	varAlias
)

type scopedVar struct {
	name string
	kind varKind
}

func (g *Gen) fresh(prefix string) string {
	g.seq++
	return fmt.Sprintf("%s%d", prefix, g.seq)
}

// match emits one MATCH clause with the knob-driven pattern count.
func (g *Gen) match(sb *strings.Builder, scope []scopedVar) []scopedVar {
	optional := g.pct(10)
	if optional {
		sb.WriteString("OPTIONAL ")
	}
	sb.WriteString("MATCH ")
	n := g.span(g.knobs.Patterns)
	if n < 1 {
		n = 1
	}
	var newVars []scopedVar
	for p := 0; p < n; p++ {
		if p > 0 {
			sb.WriteString(", ")
		}
		newVars = append(newVars, g.pattern(sb, scope)...)
	}
	scope = append(scope, newVars...)
	if preds := g.predicates(scope); len(preds) > 0 {
		sb.WriteString(" WHERE ")
		sb.WriteString(strings.Join(preds, " AND "))
	}
	sb.WriteString(" ")
	return scope
}

// pattern emits one chain, walking the real graph so that patterns can
// match.
func (g *Gen) pattern(sb *strings.Builder, scope []scopedVar) []scopedVar {
	ids := g.g.NodeIDs()
	if len(ids) == 0 {
		sb.WriteString("()")
		return nil
	}
	cur := ids[g.r.Intn(len(ids))]
	var out []scopedVar
	writeNode := func(id graph.ID) {
		v := g.fresh("n")
		out = append(out, scopedVar{name: v, kind: varNode})
		node := g.g.Node(id)
		sb.WriteString("(")
		sb.WriteString(v)
		if len(node.Labels) > 0 && g.pct(50) {
			sb.WriteString(":")
			sb.WriteString(node.Labels[g.r.Intn(len(node.Labels))])
		}
		if g.pct(g.knobs.AnchorPct) {
			fmt.Fprintf(sb, " {id: %d}", id)
		}
		sb.WriteString(")")
	}
	writeNode(cur)
	hops := g.span(g.knobs.ChainLen)
	for h := 0; h < hops; h++ {
		inc := g.g.Incident(cur)
		if len(inc) == 0 {
			break
		}
		rid := inc[g.r.Intn(len(inc))]
		rel := g.g.Rel(rid)
		rv := g.fresh("r")
		out = append(out, scopedVar{name: rv, kind: varRel})
		next := rel.End
		forward := true
		if rel.End == cur && rel.Start != cur {
			next = rel.Start
			forward = false
		}
		switch {
		case g.pct(25): // undirected
			fmt.Fprintf(sb, "-[%s]-", rv)
		case forward:
			fmt.Fprintf(sb, "-[%s:%s]->", rv, rel.Type)
		default:
			fmt.Fprintf(sb, "<-[%s:%s]-", rv, rel.Type)
		}
		cur = next
		writeNode(cur)
	}
	return out
}

// predicates emits 0-3 random predicates over in-scope variables.
func (g *Gen) predicates(scope []scopedVar) []string {
	var out []string
	max := g.knobs.MaxPreds
	if max == 0 {
		max = 2
	}
	n := g.r.Intn(max + 1)
	for i := 0; i < n && len(scope) > 0; i++ {
		v := scope[g.r.Intn(len(scope))]
		out = append(out, g.predicate(v))
	}
	return out
}

func (g *Gen) predicate(v scopedVar) string {
	access := v.name
	if v.kind != varAlias {
		access = fmt.Sprintf("%s.k%d", v.name, g.r.Intn(20))
	}
	depth := g.span(g.knobs.PredDepth)
	expr := access
	for d := 0; d < depth; d++ {
		switch g.r.Intn(3) {
		case 0:
			expr = fmt.Sprintf("coalesce(%s, %d)", expr, g.r.Intn(1000))
		case 1:
			expr = fmt.Sprintf("toString(%s)", expr)
		default:
			expr = fmt.Sprintf("(%s)", expr)
		}
	}
	switch g.r.Intn(5) {
	case 0:
		return fmt.Sprintf("%s IS NOT NULL", expr)
	case 1:
		return fmt.Sprintf("%s IS NULL", expr)
	case 2:
		return fmt.Sprintf("toString(%s) <> '%s'", expr, randWord(g.r))
	case 3:
		return fmt.Sprintf("%s = %s", expr, expr)
	default:
		return fmt.Sprintf("toString(%s) STARTS WITH '%s'", expr, randWord(g.r)[:1])
	}
}

func (g *Gen) unwind(sb *strings.Builder, scope []scopedVar) scopedVar {
	alias := g.fresh("u")
	var items []string
	for i := 0; i < 1+g.r.Intn(3); i++ {
		if len(scope) > 0 && g.pct(40) {
			v := scope[g.r.Intn(len(scope))]
			if v.kind == varAlias {
				items = append(items, v.name)
			} else {
				items = append(items, fmt.Sprintf("%s.k%d", v.name, g.r.Intn(20)))
			}
			continue
		}
		items = append(items, fmt.Sprintf("%d", int32(g.r.Uint32())))
	}
	fmt.Fprintf(sb, "UNWIND [%s] AS %s ", strings.Join(items, ", "), alias)
	return scopedVar{name: alias, kind: varAlias}
}

// with emits a WITH stage carrying a random non-empty subset of scope.
func (g *Gen) with(sb *strings.Builder, scope []scopedVar) []scopedVar {
	if len(scope) == 0 {
		return scope
	}
	kept := scope[:0:0]
	for _, v := range scope {
		if g.pct(70) {
			kept = append(kept, v)
		}
	}
	if len(kept) == 0 {
		kept = append(kept, scope[0])
	}
	sb.WriteString("WITH ")
	if g.pct(g.knobs.DistinctPct) {
		sb.WriteString("DISTINCT ")
	}
	names := make([]string, len(kept))
	for i, v := range kept {
		names[i] = v.name
	}
	sb.WriteString(strings.Join(names, ", "))
	sb.WriteString(" ")
	return kept
}

// returns emits the final RETURN with property projections.
func (g *Gen) returns(sb *strings.Builder, scope []scopedVar) {
	sb.WriteString("RETURN ")
	if g.pct(g.knobs.DistinctPct) {
		sb.WriteString("DISTINCT ")
	}
	var items []string
	var cols []string
	n := 1 + g.r.Intn(3)
	for i := 0; i < n && i < len(scope); i++ {
		v := scope[g.r.Intn(len(scope))]
		col := fmt.Sprintf("c%d", i)
		cols = append(cols, col)
		if v.kind == varAlias {
			items = append(items, fmt.Sprintf("%s AS %s", v.name, col))
		} else {
			items = append(items, fmt.Sprintf("%s.k%d AS %s", v.name, g.r.Intn(20), col))
		}
	}
	if len(items) == 0 {
		items = []string{"1 AS c0"}
		cols = []string{"c0"}
	}
	sb.WriteString(strings.Join(items, ", "))
	if g.pct(g.knobs.OrderByPct) {
		sb.WriteString(" ORDER BY ")
		sb.WriteString(cols[g.r.Intn(len(cols))])
		if g.pct(50) {
			sb.WriteString(" DESC")
		}
	}
}

const wordAlphabet = "abcdefghijklmnopqrstuvwxyz"

func randWord(r *rand.Rand) string {
	b := make([]byte, 3+r.Intn(5))
	for i := range b {
		b[i] = wordAlphabet[r.Intn(len(wordAlphabet))]
	}
	return string(b)
}
