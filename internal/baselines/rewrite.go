package baselines

import (
	"hash/fnv"

	"gqs/internal/core"
	"gqs/internal/cypher/ast"
	"gqs/internal/cypher/parser"
	"gqs/internal/engine"
)

// This file implements the two oracles that §5.4.3 replays against the
// GQS bug-triggering queries: GDBMeter's ternary-logic partitioning and
// GRev's equivalent query rewriting. Both work on arbitrary query text,
// which is what makes the replay experiment possible.

// TLPCheck applies GDBMeter's oracle to a query: the WHERE predicate p of
// the final MATCH clause partitions the result into p, NOT p, and
// p IS NULL; their union must equal the unfiltered result. It returns
// whether the oracle was applicable, whether the relation was violated,
// the executed queries, and the first execution error.
func TLPCheck(target core.Target, query string) (applied, violated bool, queries []string, err error) {
	build := func(f func(*ast.MatchClause, ast.Expr)) (string, bool) {
		q, perr := parser.Parse(query)
		if perr != nil {
			return "", false
		}
		var m *ast.MatchClause
		for _, c := range q.Parts[0].Clauses {
			// TLP partitions plain MATCH only: an unmatched OPTIONAL
			// MATCH emits a null row under every partition, so the
			// union relation does not hold for it.
			if mc, ok := c.(*ast.MatchClause); ok && mc.Where != nil && !mc.Optional {
				m = mc
			}
		}
		if m == nil {
			return "", false
		}
		f(m, m.Where)
		return q.String(), true
	}

	all, ok := build(func(m *ast.MatchClause, p ast.Expr) { m.Where = nil })
	if !ok {
		return false, false, nil, nil
	}
	qp, _ := build(func(m *ast.MatchClause, p ast.Expr) {})
	qnot, _ := build(func(m *ast.MatchClause, p ast.Expr) {
		m.Where = &ast.Unary{Op: ast.OpNot, X: p}
	})
	qnull, _ := build(func(m *ast.MatchClause, p ast.Expr) {
		m.Where = &ast.Unary{Op: ast.OpIsNull, X: p}
	})
	queries = []string{all, qp, qnot, qnull}

	results := make([]*engine.Result, 4)
	for i, q := range queries {
		results[i], err = target.Execute(q)
		if err != nil {
			return true, false, queries, err
		}
	}
	union := &engine.Result{Columns: results[0].Columns}
	for _, r := range results[1:] {
		union.Rows = append(union.Rows, r.Rows...)
	}
	return true, !multisetEqual(results[0], union), queries, nil
}

// GRevCheck applies GRev's oracle: rewrite the query into a semantically
// equivalent one and compare result multisets. The rewrite is chosen
// deterministically from the query hash.
func GRevCheck(target core.Target, query string) (applied, violated bool, queries []string, err error) {
	q, perr := parser.Parse(query)
	if perr != nil {
		return false, false, nil, nil
	}
	h := fnv.New64a()
	h.Write([]byte(query))
	rewritten, changed := RewriteEquivalent(q, h.Sum64())
	if !changed {
		return false, false, nil, nil
	}
	text := rewritten.String()
	queries = []string{query, text}
	a, err := target.Execute(query)
	if err != nil {
		return true, false, queries, err
	}
	b, err := target.Execute(text)
	if err != nil {
		return true, false, queries, err
	}
	return true, !multisetEqual(a, b), queries, nil
}

// RewriteEquivalent applies one of GRev's semantics-preserving rewrite
// rules, selected by the seed. It reports whether anything changed.
func RewriteEquivalent(q *ast.Query, seed uint64) (*ast.Query, bool) {
	rules := []func(*ast.Query) bool{
		reversePatterns,
		swapConjuncts,
		reorderPatternParts,
		insertWithStar,
		addRedundantOrderBy,
	}
	// Try rules starting at the seed position until one applies.
	for i := 0; i < len(rules); i++ {
		rule := rules[(int(seed)%len(rules)+len(rules)+i)%len(rules)]
		if rule(q) {
			return q, true
		}
	}
	return q, false
}

// reversePatterns reverses every pattern chain: (a)-[r]->(b) becomes
// (b)<-[r]-(a). Equivalent, but it starts graph traversal from the other
// end (the §3.4 observation).
func reversePatterns(q *ast.Query) bool {
	changed := false
	for _, part := range q.Parts {
		for _, c := range part.Clauses {
			m, ok := c.(*ast.MatchClause)
			if !ok {
				continue
			}
			for pi, p := range m.Patterns {
				if len(p.Nodes) < 2 {
					continue
				}
				m.Patterns[pi] = reversePart(p)
				changed = true
			}
		}
	}
	return changed
}

func reversePart(p *ast.PatternPart) *ast.PatternPart {
	n := len(p.Nodes)
	out := &ast.PatternPart{Variable: p.Variable,
		Nodes: make([]*ast.NodePattern, n),
		Rels:  make([]*ast.RelPattern, len(p.Rels))}
	for i, node := range p.Nodes {
		out.Nodes[n-1-i] = node
	}
	for i, r := range p.Rels {
		flipped := *r
		switch r.Direction {
		case ast.DirLeft:
			flipped.Direction = ast.DirRight
		case ast.DirRight:
			flipped.Direction = ast.DirLeft
		}
		out.Rels[len(p.Rels)-1-i] = &flipped
	}
	return out
}

// swapConjuncts swaps the operands of top-level ANDs in WHERE predicates.
func swapConjuncts(q *ast.Query) bool {
	changed := false
	swap := func(e ast.Expr) ast.Expr {
		if b, ok := e.(*ast.Binary); ok && b.Op == ast.OpAnd {
			changed = true
			return &ast.Binary{Op: ast.OpAnd, L: b.R, R: b.L}
		}
		return e
	}
	for _, part := range q.Parts {
		for _, c := range part.Clauses {
			switch c := c.(type) {
			case *ast.MatchClause:
				if c.Where != nil {
					c.Where = swap(c.Where)
				}
			case *ast.WithClause:
				if c.Where != nil {
					c.Where = swap(c.Where)
				}
			}
		}
	}
	return changed
}

// reorderPatternParts reverses the comma-separated pattern list of each
// multi-pattern MATCH.
func reorderPatternParts(q *ast.Query) bool {
	changed := false
	for _, part := range q.Parts {
		for _, c := range part.Clauses {
			if m, ok := c.(*ast.MatchClause); ok && len(m.Patterns) > 1 {
				for i, j := 0, len(m.Patterns)-1; i < j; i, j = i+1, j-1 {
					m.Patterns[i], m.Patterns[j] = m.Patterns[j], m.Patterns[i]
				}
				changed = true
			}
		}
	}
	return changed
}

// insertWithStar inserts a redundant `WITH *` before the final RETURN: a
// no-op pipeline stage, but one more clause for the engine to plan.
func insertWithStar(q *ast.Query) bool {
	part := q.Parts[0]
	n := len(part.Clauses)
	if n < 2 {
		return false
	}
	if _, ok := part.Clauses[n-1].(*ast.ReturnClause); !ok {
		return false
	}
	with := &ast.WithClause{Projection: ast.Projection{Star: true}}
	part.Clauses = append(part.Clauses[:n-1], with, part.Clauses[n-1])
	return true
}

// addRedundantOrderBy sorts the final RETURN by its first column;
// multiset equality is unaffected.
func addRedundantOrderBy(q *ast.Query) bool {
	part := q.Parts[0]
	ret, ok := part.Clauses[len(part.Clauses)-1].(*ast.ReturnClause)
	if !ok || len(ret.OrderBy) > 0 || len(ret.Items) == 0 {
		return false
	}
	it := ret.Items[0]
	var key ast.Expr
	if it.Alias != "" {
		key = ast.Var(it.Alias)
	} else if v, isVar := it.Expr.(*ast.Variable); isVar {
		key = ast.Var(v.Name)
	} else {
		return false
	}
	ret.OrderBy = append(ret.OrderBy, &ast.SortItem{Expr: key})
	return true
}
