package baselines

import (
	"fmt"
	"math/rand"
	"strings"

	"gqs/internal/core"
	"gqs/internal/engine"
	"gqs/internal/graph"
)

// Tester is one baseline logic-bug detector: a query generator plus a
// test oracle. Testers observe targets only through the same Connector
// surface GQS uses.
type Tester interface {
	Name() string
	// Generate produces one test query for the graph (used both by the
	// tester's own campaign and by the Table 5 complexity comparison).
	Generate(r *rand.Rand, g *graph.Graph, schema *graph.Schema) string
	// Test runs one round against the target, returning the executed
	// queries and whether the oracle flagged a violation.
	Test(r *rand.Rand, target core.Target, g *graph.Graph, schema *graph.Schema) *Report
	// Supports reports whether the tester supported the GDB in the
	// paper's evaluation (GDBMeter, Gamera, and GQT lack Memgraph).
	Supports(gdb string) bool
}

// Report is the outcome of one oracle application.
type Report struct {
	Tester   string
	Queries  []string
	Violated bool
	// Err records crashes/hangs/exceptions surfaced while testing; for
	// every tester those also count as (potential) bug findings.
	Err error
}

// ByName returns a tester.
func ByName(name string) (Tester, error) {
	for _, t := range All() {
		if t.Name() == name {
			return t, nil
		}
	}
	return nil, fmt.Errorf("unknown tester %q", name)
}

// All returns the five baseline testers in Table 4 order.
func All() []Tester {
	return []Tester{NewGDsmith(), NewGDBMeter(), NewGamera(), NewGQT(), NewGRev()}
}

// ---- GDsmith (differential testing) ----

// GDsmith generates moderately complex queries and compares the rendered
// results of several GDBs against each other; any discrepancy is reported
// as a bug. Its comparison is order- and error-message-sensitive, the
// false-positive sources §5.4.3 measures.
type GDsmith struct {
	// Peers are the other databases each query is differentially
	// executed against. They are constructed lazily per Test call when
	// nil (the campaign runner injects specific peers).
	Peers []core.Target
}

// NewGDsmith returns the differential tester.
func NewGDsmith() *GDsmith { return &GDsmith{} }

// Name implements Tester.
func (t *GDsmith) Name() string { return "gdsmith" }

// Supports implements Tester: GDsmith tested all three systems.
func (t *GDsmith) Supports(string) bool { return true }

func gdsmithKnobs() Knobs {
	return Knobs{
		MatchClauses: [2]int{2, 3},
		Patterns:     [2]int{2, 3},
		ChainLen:     [2]int{1, 2},
		PredDepth:    [2]int{0, 2},
		WithChain:    [2]int{1, 2},
		UnwindPct:    30,
		OrderByPct:   20,
		DistinctPct:  20,
		CallPct:      10,
		AnchorPct:    70,
	}
}

// Generate implements Tester.
func (t *GDsmith) Generate(r *rand.Rand, g *graph.Graph, schema *graph.Schema) string {
	return NewGen(r, g, schema, gdsmithKnobs()).Query()
}

// Test implements Tester: run the query on the target and on every peer,
// then compare rendered output (order-sensitive, the way GDsmith diffs
// formatted result sets).
func (t *GDsmith) Test(r *rand.Rand, target core.Target, g *graph.Graph, schema *graph.Schema) *Report {
	q := t.Generate(r, g, schema)
	rep := &Report{Tester: t.Name(), Queries: []string{q}}
	base, baseErr := target.Execute(q)
	rep.Err = baseErr
	for _, peer := range t.Peers {
		res, err := peer.Execute(q)
		if (err == nil) != (baseErr == nil) {
			rep.Violated = true // one side errored: counted as discrepancy
			continue
		}
		if err != nil {
			if err.Error() != baseErr.Error() {
				rep.Violated = true // differing error text
			}
			continue
		}
		if renderOrdered(base) != renderOrdered(res) {
			rep.Violated = true
		}
	}
	return rep
}

// renderOrdered renders a result the way a driver prints it: columns then
// rows in engine order. Row-order differences therefore show up as
// discrepancies — a real GDsmith false-positive source.
func renderOrdered(r *engine.Result) string {
	if r == nil {
		return "<nil>"
	}
	var sb strings.Builder
	sb.WriteString(strings.Join(r.Columns, ","))
	for _, row := range r.Rows {
		sb.WriteByte('\n')
		for j, v := range row {
			if j > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(v.String())
		}
	}
	return sb.String()
}

// ---- GDBMeter (ternary-logic partitioning) ----

// GDBMeter generates simple MATCH-WHERE-RETURN queries and checks the TLP
// relation: R(p) ⊎ R(NOT p) ⊎ R(p IS NULL) must equal R(true).
type GDBMeter struct{}

// NewGDBMeter returns the TLP tester.
func NewGDBMeter() *GDBMeter { return &GDBMeter{} }

// Name implements Tester.
func (t *GDBMeter) Name() string { return "gdbmeter" }

// Supports implements Tester: no Memgraph support in the paper.
func (t *GDBMeter) Supports(gdb string) bool { return gdb != "memgraph" }

// Generate implements Tester: one small MATCH with a predicate.
func (t *GDBMeter) Generate(r *rand.Rand, g *graph.Graph, schema *graph.Schema) string {
	gen := NewGen(r, g, schema, Knobs{
		MatchClauses: [2]int{1, 1},
		Patterns:     [2]int{1, 1},
		ChainLen:     [2]int{0, 2},
		PredDepth:    [2]int{0, 1},
		AnchorPct:    50,
		MaxPreds:     2,
	})
	return gen.Query()
}

// Test implements Tester: apply the TLP oracle to a generated query.
func (t *GDBMeter) Test(r *rand.Rand, target core.Target, g *graph.Graph, schema *graph.Schema) *Report {
	q := t.Generate(r, g, schema)
	applied, violated, queries, err := TLPCheck(target, q)
	rep := &Report{Tester: t.Name(), Queries: queries, Err: err}
	rep.Violated = applied && violated
	return rep
}

// ---- Gamera (graph-aware metamorphic relations) ----

// Gamera generates tiny pattern queries and checks a direction-erasure
// relation: erasing relationship directions can only grow the match set.
type Gamera struct{}

// NewGamera returns the tester.
func NewGamera() *Gamera { return &Gamera{} }

// Name implements Tester.
func (t *Gamera) Name() string { return "gamera" }

// Supports implements Tester.
func (t *Gamera) Supports(gdb string) bool { return gdb != "memgraph" }

// Generate implements Tester.
func (t *Gamera) Generate(r *rand.Rand, g *graph.Graph, schema *graph.Schema) string {
	gen := NewGen(r, g, schema, Knobs{
		MatchClauses: [2]int{1, 1},
		Patterns:     [2]int{1, 1},
		ChainLen:     [2]int{1, 2},
		PredDepth:    [2]int{0, 0},
		AnchorPct:    40,
		MaxPreds:     1,
	})
	return gen.Query()
}

// Test implements Tester: result of the directed pattern must be a
// subset of the direction-erased pattern's result.
func (t *Gamera) Test(r *rand.Rand, target core.Target, g *graph.Graph, schema *graph.Schema) *Report {
	q := t.Generate(r, g, schema)
	relaxed := eraseDirections(q)
	rep := &Report{Tester: t.Name(), Queries: []string{q, relaxed}}
	a, errA := target.Execute(q)
	b, errB := target.Execute(relaxed)
	if errA != nil || errB != nil {
		rep.Err = firstErr(errA, errB)
		return rep
	}
	rep.Violated = !multisetSubset(a, b)
	return rep
}

// ---- GQT (injective/surjective query transformation) ----

// GQT transforms queries so the result set must grow (surjective: drop a
// label constraint) and checks containment.
type GQT struct{}

// NewGQT returns the tester.
func NewGQT() *GQT { return &GQT{} }

// Name implements Tester.
func (t *GQT) Name() string { return "gqt" }

// Supports implements Tester.
func (t *GQT) Supports(gdb string) bool { return gdb != "memgraph" }

// Generate implements Tester: moderate queries, sometimes starting with
// UNWIND (which is how it can reach Figure 17-class bugs).
func (t *GQT) Generate(r *rand.Rand, g *graph.Graph, schema *graph.Schema) string {
	gen := NewGen(r, g, schema, Knobs{
		MatchClauses: [2]int{1, 2},
		Patterns:     [2]int{1, 1},
		ChainLen:     [2]int{0, 2},
		PredDepth:    [2]int{0, 1},
		WithChain:    [2]int{0, 1},
		UnwindPct:    35,
		UnwindFirst:  true,
		AnchorPct:    50,
	})
	return gen.Query()
}

// Test implements Tester: surjective transformation (drop one label).
func (t *GQT) Test(r *rand.Rand, target core.Target, g *graph.Graph, schema *graph.Schema) *Report {
	q := t.Generate(r, g, schema)
	relaxed := dropOneLabel(q)
	rep := &Report{Tester: t.Name(), Queries: []string{q, relaxed}}
	a, errA := target.Execute(q)
	b, errB := target.Execute(relaxed)
	if errA != nil || errB != nil {
		rep.Err = firstErr(errA, errB)
		return rep
	}
	rep.Violated = !multisetSubset(a, b)
	return rep
}

// ---- GRev (equivalent query rewriting) ----

// GRev generates complex queries and rewrites them into semantically
// equivalent forms, checking result equality.
type GRev struct{}

// NewGRev returns the tester.
func NewGRev() *GRev { return &GRev{} }

// Name implements Tester.
func (t *GRev) Name() string { return "grev" }

// Supports implements Tester: GRev tested all three systems.
func (t *GRev) Supports(string) bool { return true }

func grevKnobs() Knobs {
	return Knobs{
		MatchClauses: [2]int{2, 3},
		Patterns:     [2]int{2, 3},
		ChainLen:     [2]int{1, 2},
		PredDepth:    [2]int{1, 3},
		WithChain:    [2]int{1, 2},
		UnwindPct:    25,
		OrderByPct:   15,
		DistinctPct:  15,
		AnchorPct:    70,
	}
}

// Generate implements Tester.
func (t *GRev) Generate(r *rand.Rand, g *graph.Graph, schema *graph.Schema) string {
	return NewGen(r, g, schema, grevKnobs()).Query()
}

// Test implements Tester: rewrite and compare multisets.
func (t *GRev) Test(r *rand.Rand, target core.Target, g *graph.Graph, schema *graph.Schema) *Report {
	q := t.Generate(r, g, schema)
	applied, violated, queries, err := GRevCheck(target, q)
	rep := &Report{Tester: t.Name(), Queries: queries, Err: err}
	rep.Violated = applied && violated
	return rep
}

// ---- shared helpers ----

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// multisetSubset reports whether every row of a occurs in b at least as
// often (ignoring column-name differences; only arities must agree).
func multisetSubset(a, b *engine.Result) bool {
	if a == nil || b == nil {
		return a == nil
	}
	if len(a.Columns) != len(b.Columns) {
		return false
	}
	counts := map[string]int{}
	for _, k := range b.Canonical() {
		counts[k]++
	}
	for _, k := range a.Canonical() {
		counts[k]--
		if counts[k] < 0 {
			return false
		}
	}
	return true
}

// multisetEqual reports whether the two results are equal as multisets.
func multisetEqual(a, b *engine.Result) bool {
	return multisetSubset(a, b) && multisetSubset(b, a)
}

// eraseDirections removes relationship direction arrows from query text.
func eraseDirections(q string) string {
	q = strings.ReplaceAll(q, "]->", "]-")
	q = strings.ReplaceAll(q, "<-[", "-[")
	return q
}

// dropOneLabel removes the first node label constraint, a surjective
// transformation.
func dropOneLabel(q string) string {
	for i := 0; i+1 < len(q); i++ {
		if q[i] != ':' || q[i+1] != 'L' {
			continue
		}
		// only node labels (inside parentheses): look back for '(' before ')'
		j := i + 1
		for j < len(q) && (q[j] == 'L' || (q[j] >= '0' && q[j] <= '9')) {
			j++
		}
		return q[:i] + q[j:]
	}
	return q
}
