package baselines

import (
	"math/rand"
	"testing"

	"gqs/internal/core"
	"gqs/internal/cypher/parser"
	"gqs/internal/gdb"
	"gqs/internal/graph"
	"gqs/internal/metrics"
)

func setup(t *testing.T, seed int64) (*rand.Rand, *graph.Graph, *graph.Schema, *gdb.Sim) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 8, MaxRels: 25})
	ref := gdb.NewReference()
	if err := ref.Reset(g, schema); err != nil {
		t.Fatal(err)
	}
	return r, g, schema, ref
}

func TestGeneratorsProduceValidCypher(t *testing.T) {
	r, g, schema, ref := setup(t, 1)
	for _, tester := range All() {
		parseOK, execOK := 0, 0
		const n = 60
		for i := 0; i < n; i++ {
			q := tester.Generate(r, g, schema)
			if _, err := parser.Parse(q); err != nil {
				t.Errorf("%s: unparsable query: %v\n%s", tester.Name(), err, q)
				continue
			}
			parseOK++
			if _, err := ref.Execute(q); err == nil {
				execOK++
			}
		}
		if parseOK != n {
			t.Errorf("%s: only %d/%d queries parse", tester.Name(), parseOK, n)
		}
		// Generators may produce queries the reference rejects (e.g.
		// CALL on empty scope edge cases) but the bulk must execute.
		if execOK < n*8/10 {
			t.Errorf("%s: only %d/%d queries execute", tester.Name(), execOK, n)
		}
	}
}

func TestComplexityOrdering(t *testing.T) {
	// The Table 5 ordering: GDsmith and GRev generate far more complex
	// queries than GDBMeter and Gamera.
	r, g, schema, _ := setup(t, 2)
	avg := func(tester Tester) (patterns, clauses float64) {
		var agg metrics.Aggregate
		for i := 0; i < 150; i++ {
			agg.Add(metrics.Analyze(tester.Generate(r, g, schema)))
		}
		p, _, c, _ := agg.Averages()
		return p, c
	}
	gdP, gdC := avg(NewGDsmith())
	gmP, gmC := avg(NewGDBMeter())
	grP, grC := avg(NewGRev())
	if gdP <= gmP || gdC <= gmC {
		t.Errorf("GDsmith (%.2f pat, %.2f cl) must exceed GDBMeter (%.2f, %.2f)", gdP, gdC, gmP, gmC)
	}
	if grP <= gmP || grC <= gmC {
		t.Errorf("GRev (%.2f pat, %.2f cl) must exceed GDBMeter (%.2f, %.2f)", grP, grC, gmP, gmC)
	}
}

func TestNoViolationsOnReference(t *testing.T) {
	// Metamorphic oracles must not raise false alarms on the pristine
	// reference engine.
	r, g, schema, ref := setup(t, 3)
	for _, tester := range []Tester{NewGDBMeter(), NewGamera(), NewGQT(), NewGRev()} {
		for i := 0; i < 40; i++ {
			rep := tester.Test(r, ref, g, schema)
			if rep.Violated {
				t.Errorf("%s: false alarm on reference:\n%v", tester.Name(), rep.Queries)
			}
		}
	}
}

func TestTLPCheck(t *testing.T) {
	_, g, schema, ref := setup(t, 4)
	_ = schema
	// Applicable query.
	applied, violated, queries, err := TLPCheck(ref, `MATCH (n) WHERE n.k0 IS NOT NULL RETURN n.k0 AS c`)
	if err != nil {
		t.Fatal(err)
	}
	if !applied || violated || len(queries) != 4 {
		t.Errorf("TLP on reference: applied=%v violated=%v queries=%d", applied, violated, len(queries))
	}
	// Not applicable without a WHERE.
	applied, _, _, _ = TLPCheck(ref, `MATCH (n) RETURN n.k0 AS c`)
	if applied {
		t.Error("TLP must not apply without WHERE")
	}
	// Unparsable input.
	applied, _, _, _ = TLPCheck(ref, `garbage(`)
	if applied {
		t.Error("TLP must not apply to garbage")
	}
	_ = g
}

func TestGRevCheck(t *testing.T) {
	_, _, _, ref := setup(t, 5)
	applied, violated, queries, err := GRevCheck(ref, `MATCH (a)-[r]->(b) WHERE a.k0 IS NULL AND b.k0 IS NULL RETURN a.id AS x`)
	if err != nil {
		t.Fatal(err)
	}
	if !applied || violated || len(queries) != 2 {
		t.Errorf("GRev on reference: applied=%v violated=%v", applied, violated)
	}
	if queries[0] == queries[1] {
		t.Error("rewrite must change the query")
	}
}

func TestRewriteRulesPreserveSemantics(t *testing.T) {
	r, g, schema, ref := setup(t, 6)
	gen := NewGen(r, g, schema, grevKnobs())
	for i := 0; i < 50; i++ {
		q := gen.Query()
		for seed := uint64(0); seed < 5; seed++ {
			parsed, err := parser.Parse(q)
			if err != nil {
				t.Fatal(err)
			}
			rw, changed := RewriteEquivalent(parsed, seed)
			if !changed {
				continue
			}
			a, errA := ref.Execute(q)
			b, errB := ref.Execute(rw.String())
			if errA != nil || errB != nil {
				continue // resource limits etc. are not semantic differences
			}
			if !multisetEqual(a, b) {
				t.Fatalf("rewrite changed semantics (seed %d):\n%s\n%s", seed, q, rw.String())
			}
		}
	}
}

func TestGDsmithDifferentialFlagsInjectedBugs(t *testing.T) {
	r, g, schema, _ := setup(t, 7)
	neo := gdb.NewNeo4jSim()
	falkor := gdb.NewFalkorDBSim()
	ref := gdb.NewReference()
	for _, c := range []*gdb.Sim{neo, falkor, ref} {
		if err := c.Reset(g, schema); err != nil {
			t.Fatal(err)
		}
	}
	gds := NewGDsmith()
	gds.Peers = []core.Target{ref, neo}
	violations := 0
	for i := 0; i < 100; i++ {
		rep := gds.Test(r, falkor, g, schema)
		if rep.Violated {
			violations++
		}
	}
	if violations == 0 {
		t.Error("differential testing against a faulty GDB found nothing in 100 rounds")
	}
}

func TestMultisetHelpers(t *testing.T) {
	_, _, _, ref := setup(t, 8)
	a, _ := ref.Execute(`UNWIND [1,2] AS x RETURN x`)
	b, _ := ref.Execute(`UNWIND [2,1,3] AS x RETURN x`)
	if !multisetSubset(a, b) {
		t.Error("subset broken")
	}
	if multisetSubset(b, a) {
		t.Error("superset misreported")
	}
	if multisetEqual(a, b) {
		t.Error("equality misreported")
	}
	if !multisetEqual(a, a) {
		t.Error("self equality broken")
	}
}

func TestHelpersTextual(t *testing.T) {
	q := `MATCH (a:L3)-[r:T1]->(b) RETURN a`
	relaxed := eraseDirections(q)
	if relaxed == q || !contains(relaxed, "]-(b)") {
		t.Errorf("eraseDirections: %s", relaxed)
	}
	dropped := dropOneLabel(q)
	if contains(dropped, ":L3") {
		t.Errorf("dropOneLabel: %s", dropped)
	}
	if dropOneLabel(`MATCH (a) RETURN a`) != `MATCH (a) RETURN a` {
		t.Error("dropOneLabel must be a no-op without labels")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestByNameAndSupports(t *testing.T) {
	for _, name := range []string{"gdsmith", "gdbmeter", "gamera", "gqt", "grev"} {
		tr, err := ByName(name)
		if err != nil || tr.Name() != name {
			t.Errorf("ByName(%s): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown tester must error")
	}
	if NewGDBMeter().Supports("memgraph") || NewGamera().Supports("memgraph") || NewGQT().Supports("memgraph") {
		t.Error("GDBMeter/Gamera/GQT must not support memgraph (Table 4)")
	}
	if !NewGDsmith().Supports("memgraph") || !NewGRev().Supports("memgraph") {
		t.Error("GDsmith/GRev support memgraph")
	}
}
