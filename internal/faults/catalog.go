package faults

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"
)

// The injected-fault catalog. The per-GDB counts reproduce Table 3 of
// the paper (26 logic + 10 other bugs; confirmed/fixed as reported), the
// introduction ages reproduce the Table 4 latency analysis, and the
// trigger predicates are shaped so that the feature distributions of
// bug-triggering queries match Figures 10–15: most bugs need ≥3 clauses,
// >3 patterns, >5 levels of nesting, or >20 cross-clause references.
//
// Each bug is modelled on a bug class the paper documents; the Figure
// references are noted inline.

// CatalogFingerprint hashes the catalogs' testing-relevant identity:
// every bug's ID, kind, manifestation, and trigger, per GDB in sorted
// order. Campaign checkpoints embed it so a journal written against one
// catalog is never resumed against an edited one (restored findings are
// re-resolved by bug ID — see the experiments checkpoint codec).
func CatalogFingerprint() string {
	cats := Catalogs()
	names := make([]string, 0, len(cats))
	for name := range cats {
		names = append(names, name)
	}
	sort.Strings(names)
	h := fnv.New64a()
	for _, name := range names {
		for _, b := range cats[name].Bugs {
			fmt.Fprintf(h, "%s|%s|%v|%v|%+v\n", name, b.ID, b.Kind, b.Manifest, b.Trigger)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Catalogs returns the catalog for each simulated GDB.
func Catalogs() map[string]*Set {
	return map[string]*Set{
		"neo4j":    Neo4j(),
		"memgraph": Memgraph(),
		"kuzu":     Kuzu(),
		"falkordb": FalkorDB(),
	}
}

// Neo4j returns the Neo4j fault catalog: 2 logic + 3 other bugs, all
// confirmed and fixed (Table 3).
func Neo4j() *Set {
	return &Set{GDB: "neo4j", Bugs: []*Bug{
		{
			ID: "N4J-O3", GDB: "neo4j", Kind: Exception, Latency: 2 * time.Millisecond,
			Description:        "codegen exception for reverse() under deep nesting",
			Trigger:            Trigger{MinDepth: 10, Func: "reverse", MinClauses: 4, HashMod: 7, HashEq: 3},
			IntroducedYearsAgo: 0.2, Confirmed: true, Fixed: true,
		},
		{
			ID: "N4J-O2", GDB: "neo4j", Kind: Crash, Latency: time.Millisecond,
			Description:        "crash when UNION combines two multi-clause queries with many references",
			Trigger:            Trigger{MinClauses: 8, MinRefs: 24, Union: true, HashMod: 2, HashEq: 0},
			IntroducedYearsAgo: 0.3, Confirmed: true, Fixed: true,
		},
		{
			ID: "N4J-O1", GDB: "neo4j", Kind: Exception,
			Description:        "internal planner exception on deeply nested boolean expressions",
			Trigger:            Trigger{MinClauses: 5, MinDepth: 12, MinRefs: 18, HashMod: 7, HashEq: 2},
			IntroducedYearsAgo: 0.5, Confirmed: true, Fixed: true,
		},
		{
			ID: "N4J-L2", GDB: "neo4j", Kind: Logic, Manifest: NullValue,
			Description:        "ORDER BY after WITH pipeline with heavy cross-clause references nulls a projected column",
			Trigger:            Trigger{MinClauses: 5, MinDepth: 5, MinRefs: 20, Clause: "WITH", OrderBy: true, HashMod: 5, HashEq: 0},
			IntroducedYearsAgo: 1.5, Confirmed: true, Fixed: true,
		},
		{
			ID: "N4J-L1", GDB: "neo4j", Kind: Logic, Manifest: WrongValue,
			Description:        "projection returns another element's property when UNWIND separates two MATCH clauses with many patterns (Figure 7)",
			Trigger:            Trigger{MinClauses: 4, MinPatterns: 5, MinDepth: 4, MinRefs: 12, Clause: "UNWIND", HashMod: 5, HashEq: 1},
			IntroducedYearsAgo: 2.7, Confirmed: true, Fixed: true,
		},
	}}
}

// Memgraph returns the Memgraph fault catalog: 6 logic (1 fixed) + 1
// other bug, all confirmed (Table 3).
func Memgraph() *Set {
	return &Set{GDB: "memgraph", Bugs: []*Bug{
		{
			ID: "MG-O1", GDB: "memgraph", Kind: Hang,
			Description:        "replace() with an empty search string loops and exhausts memory (Figure 9; latent for over three years)",
			Trigger:            Trigger{ReplaceEmpty: true},
			IntroducedYearsAgo: 3.4, Confirmed: true, Fixed: false,
		},
		{
			ID: "MG-L6", GDB: "memgraph", Kind: Logic, Manifest: DuplicateRow,
			Description:        "UNION of pattern-heavy branches duplicates a row",
			Trigger:            Trigger{MinPatterns: 3, Union: true, HashMod: 2, HashEq: 0},
			IntroducedYearsAgo: 0.4, Confirmed: true, Fixed: false,
		},
		{
			ID: "MG-L5", GDB: "memgraph", Kind: Logic, Manifest: WrongValue,
			Description:        "coalesce in deeply nested expressions evaluates the wrong branch",
			Trigger:            Trigger{MinDepth: 6, MinRefs: 10, Func: "coalesce", HashMod: 5, HashEq: 0},
			IntroducedYearsAgo: 0.5, Confirmed: true, Fixed: false,
		},
		{
			ID: "MG-L4", GDB: "memgraph", Kind: Logic, Manifest: DropRows,
			Description:        "UNWIND under ORDER BY fetches only the first expansion",
			Trigger:            Trigger{MinClauses: 5, Clause: "UNWIND", OrderBy: true, HashMod: 2, HashEq: 1},
			IntroducedYearsAgo: 0.7, Confirmed: true, Fixed: false,
		},
		{
			ID: "MG-L3", GDB: "memgraph", Kind: Logic, Manifest: WrongValue,
			Description:        "DISTINCT over many patterns returns a stale property value",
			Trigger:            Trigger{MinPatterns: 4, MinRefs: 18, Distinct: true, HashMod: 5, HashEq: 1},
			IntroducedYearsAgo: 0.8, Confirmed: true, Fixed: false,
		},
		{
			ID: "MG-L1", GDB: "memgraph", Kind: Logic, Manifest: EmptyResult,
			Description:        "Cartesian-product optimization combined with filter pushdown drops all rows (Figure 8; fixed after six months)",
			Trigger:            Trigger{MinClauses: 5, MinPatterns: 3, MinRefs: 15, OrderBy: true, HashMod: 3, HashEq: 1},
			IntroducedYearsAgo: 3.3, Confirmed: true, Fixed: true,
		},
		{
			ID: "MG-L2", GDB: "memgraph", Kind: Logic, Manifest: EmptyResult,
			Description:        "WITH-pipelined predicate evaluation yields an empty result (Figure 16)",
			Trigger:            Trigger{MinClauses: 3, MinDepth: 3, MinRefs: 10, Clause: "WITH", HashMod: 9, HashEq: 2},
			IntroducedYearsAgo: 0.9, Confirmed: true, Fixed: false,
		},
	}}
}

// Kuzu returns the Kùzu fault catalog: 5 logic + 2 other bugs, all
// confirmed and fixed (Table 3). Kùzu is young, so all ages are small.
func Kuzu() *Set {
	return &Set{GDB: "kuzu", Bugs: []*Bug{
		{
			ID: "KZ-O2", GDB: "kuzu", Kind: Exception, Latency: time.Millisecond,
			Description:        "left() under deep nesting raises an internal exception",
			Trigger:            Trigger{MinDepth: 6, Func: "left", HashMod: 17, HashEq: 4},
			IntroducedYearsAgo: 0.4, Confirmed: true, Fixed: true,
		},
		{
			ID: "KZ-L2", GDB: "kuzu", Kind: Logic, Manifest: WrongValue,
			Description:        "toInteger on nested expressions truncates through an unsafe cast",
			Trigger:            Trigger{MinDepth: 5, Func: "toInteger", HashMod: 5, HashEq: 1},
			IntroducedYearsAgo: 1.2, Confirmed: true, Fixed: true,
		},
		{
			ID: "KZ-L5", GDB: "kuzu", Kind: Logic, Manifest: DropRows,
			Description:        "UNWIND expansions after multiple patterns lose rows",
			Trigger:            Trigger{MinClauses: 4, MinPatterns: 3, Clause: "UNWIND", HashMod: 3, HashEq: 0},
			IntroducedYearsAgo: 0.6, Confirmed: true, Fixed: true,
		},
		{
			ID: "KZ-L4", GDB: "kuzu", Kind: Logic, Manifest: NullValue,
			Description:        "OPTIONAL MATCH wrongly nulls a bound column",
			Trigger:            Trigger{MinRefs: 12, Clause: "OPTIONAL MATCH", HashMod: 3, HashEq: 1},
			IntroducedYearsAgo: 0.8, Confirmed: true, Fixed: true,
		},
		{
			ID: "KZ-O1", GDB: "kuzu", Kind: Crash, Latency: 2 * time.Millisecond,
			Description:        "crash compiling deep expressions over many patterns",
			Trigger:            Trigger{MinDepth: 9, MinPatterns: 4, MinRefs: 16, HashMod: 7, HashEq: 1},
			IntroducedYearsAgo: 0.5, Confirmed: true, Fixed: true,
		},
		{
			ID: "KZ-L3", GDB: "kuzu", Kind: Logic, Manifest: EmptyResult,
			Description:        "many-pattern joins with heavy cross-references drop all rows",
			Trigger:            Trigger{MinPatterns: 5, MinRefs: 20, HashMod: 5, HashEq: 0},
			IntroducedYearsAgo: 1.0, Confirmed: true, Fixed: true,
		},
		{
			ID: "KZ-L1", GDB: "kuzu", Kind: Logic, Manifest: WrongValue,
			Description:        "common binary-operator helper corrupts results under deep nesting (unsafe type usage; §5.2)",
			Trigger:            Trigger{MinClauses: 3, MinDepth: 6, MinRefs: 5, HashMod: 9, HashEq: 3},
			IntroducedYearsAgo: 1.4, Confirmed: true, Fixed: true,
		},
	}}
}

// FalkorDB returns the FalkorDB fault catalog: 13 logic (4 confirmed) +
// 4 other (2 confirmed, 1 fixed) bugs; most predate the versions prior
// testers exercised (as RedisGraph), giving the long Table 4 latencies.
func FalkorDB() *Set {
	return &Set{GDB: "falkordb", Bugs: []*Bug{
		{
			ID: "FK-O2", GDB: "falkordb", Kind: Hang,
			Description:        "replace() under deep nesting spins",
			Trigger:            Trigger{MinDepth: 6, Func: "replace", HashMod: 2, HashEq: 0},
			IntroducedYearsAgo: 4.4, Confirmed: true, Fixed: false,
		},
		{
			ID: "FK-L2", GDB: "falkordb", Kind: Logic, Manifest: DropRows,
			Description:        "UNWIND before MATCH fetches only the first record (Figure 17; latest release)",
			Trigger:            Trigger{UnwindBeforeMatch: true},
			IntroducedYearsAgo: 0.4, Confirmed: true, Fixed: false,
		},
		{
			ID: "FK-L3", GDB: "falkordb", Kind: Logic, Manifest: WrongValue,
			Description:        "endNode() on reused relationship variables resolves the wrong endpoint",
			Trigger:            Trigger{Func: "endNode", MinClauses: 3, HashMod: 3, HashEq: 0},
			IntroducedYearsAgo: 4.8, Confirmed: true, Fixed: false,
		},
		{
			ID: "FK-L10", GDB: "falkordb", Kind: Logic, Manifest: WrongValue,
			Description:        "toString of deeply nested expressions emits the wrong digits",
			Trigger:            Trigger{MinDepth: 7, Func: "toString", HashMod: 5, HashEq: 1},
			IntroducedYearsAgo: 3.9, Confirmed: false, Fixed: false,
		},
		{
			ID: "FK-L13", GDB: "falkordb", Kind: Logic, Manifest: NullValue,
			Description:        "coalesce over many patterns returns null despite non-null branches",
			Trigger:            Trigger{MinPatterns: 4, Func: "coalesce", HashMod: 3, HashEq: 0},
			IntroducedYearsAgo: 1.8, Confirmed: false, Fixed: false,
		},
		{
			ID: "FK-O3", GDB: "falkordb", Kind: Exception, Latency: time.Millisecond,
			Description:        "expression stack overflow beyond ten nesting levels",
			Trigger:            Trigger{MinDepth: 13, HashMod: 7, HashEq: 4},
			IntroducedYearsAgo: 3.5, Confirmed: false, Fixed: false,
		},
		{
			ID: "FK-O4", GDB: "falkordb", Kind: Exception,
			Description:        "CALL procedures raise after a preceding multi-clause pipeline",
			Trigger:            Trigger{Clause: "CALL", MinClauses: 6, HashMod: 3, HashEq: 2},
			IntroducedYearsAgo: 3.3, Confirmed: false, Fixed: false,
		},
		{
			ID: "FK-L9", GDB: "falkordb", Kind: Logic, Manifest: EmptyResult,
			Description:        "UNION deduplication discards every row",
			Trigger:            Trigger{Union: true, MinClauses: 4, HashMod: 2, HashEq: 0},
			IntroducedYearsAgo: 4.0, Confirmed: false, Fixed: false,
		},
		{
			ID: "FK-O1", GDB: "falkordb", Kind: Crash, Latency: time.Millisecond,
			Description:        "crash on seven-pattern cartesian plans (the five-year latent bug)",
			Trigger:            Trigger{MinPatterns: 7, HashMod: 7, HashEq: 0},
			IntroducedYearsAgo: 5.0, Confirmed: true, Fixed: true,
		},
		{
			ID: "FK-L11", GDB: "falkordb", Kind: Logic, Manifest: DropRows,
			Description:        "LIMIT applied one pipeline stage too early",
			Trigger:            Trigger{MinClauses: 4, Clause: "LIMIT", HashMod: 3, HashEq: 1},
			IntroducedYearsAgo: 3.8, Confirmed: false, Fixed: false,
		},
		{
			ID: "FK-L7", GDB: "falkordb", Kind: Logic, Manifest: DuplicateRow,
			Description:        "six-pattern joins with heavy references duplicate a result row",
			Trigger:            Trigger{MinPatterns: 6, MinRefs: 20, HashMod: 3, HashEq: 1},
			IntroducedYearsAgo: 4.3, Confirmed: false, Fixed: false,
		},
		{
			ID: "FK-L8", GDB: "falkordb", Kind: Logic, Manifest: WrongValue,
			Description:        "long WITH pipelines with dense dependencies project stale values",
			Trigger:            Trigger{MinClauses: 6, MinRefs: 25, Clause: "WITH", HashMod: 3, HashEq: 0},
			IntroducedYearsAgo: 4.2, Confirmed: false, Fixed: false,
		},
		{
			ID: "FK-L5", GDB: "falkordb", Kind: Logic, Manifest: WrongValue,
			Description:        "ORDER BY with nested sort keys corrupts a projected value",
			Trigger:            Trigger{MinDepth: 5, OrderBy: true, MinClauses: 3, HashMod: 5, HashEq: 1},
			IntroducedYearsAgo: 4.5, Confirmed: false, Fixed: false,
		},
		{
			ID: "FK-L4", GDB: "falkordb", Kind: Logic, Manifest: EmptyResult,
			Description:        "DISTINCT over cross-referenced projections drops all rows",
			Trigger:            Trigger{MinRefs: 12, Distinct: true, HashMod: 5, HashEq: 0},
			IntroducedYearsAgo: 4.6, Confirmed: true, Fixed: false,
		},
		{
			ID: "FK-L6", GDB: "falkordb", Kind: Logic, Manifest: NullValue,
			Description:        "OPTIONAL MATCH over multiple patterns nulls a matched column",
			Trigger:            Trigger{MinPatterns: 3, Clause: "OPTIONAL MATCH", HashMod: 5, HashEq: 2},
			IntroducedYearsAgo: 4.4, Confirmed: false, Fixed: false,
		},
		{
			ID: "FK-L12", GDB: "falkordb", Kind: Logic, Manifest: WrongValue,
			Description:        "deep arithmetic over cross-clause references loses precision",
			Trigger:            Trigger{MinDepth: 8, MinRefs: 10, HashMod: 9, HashEq: 1},
			IntroducedYearsAgo: 3.6, Confirmed: false, Fixed: false,
		},
		{
			ID: "FK-L1", GDB: "falkordb", Kind: Logic, Manifest: WrongValue,
			Description:        "wrong property value projected across chained MATCH clauses (Figure 1; latent four years)",
			Trigger:            Trigger{MinClauses: 4, MinPatterns: 4, MinDepth: 4, MinRefs: 15, HashMod: 7, HashEq: 2},
			IntroducedYearsAgo: 4.0, Confirmed: true, Fixed: false,
		},
	}}
}
