package faults

import (
	"context"
	"errors"
	"testing"
	"time"

	"gqs/internal/engine"
	"gqs/internal/metrics"
)

func feats() *metrics.Features { return metrics.Analyze(`MATCH (a) RETURN a`) }

// TestLiveHangBlocksUntilCanceled: in live mode a Hang bug must actually
// block — the Figure 9 non-termination — and return only once the
// watchdog cancels the context.
func TestLiveHangBlocksUntilCanceled(t *testing.T) {
	b := &Bug{ID: "T-HANG", Kind: Hang}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := b.ManifestCtx(ctx, true, nil, feats())
	elapsed := time.Since(start)
	if elapsed < 30*time.Millisecond {
		t.Errorf("live hang returned after %v, before the watchdog deadline", elapsed)
	}
	var be *BugError
	if !errors.As(err, &be) || be.ID != "T-HANG" || be.Kind != Hang {
		t.Errorf("live hang error = %v, want attributed BugError", err)
	}
}

// TestLiveCrashPanics: in live mode a Crash bug panics inside the
// connector, as a dead server process manifests to a driver.
func TestLiveCrashPanics(t *testing.T) {
	b := &Bug{ID: "T-CRASH", Kind: Crash}
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("live crash must panic")
		}
		be, ok := p.(*BugError)
		if !ok || be.ID != "T-CRASH" || be.Kind != Crash {
			t.Errorf("panic value = %v, want attributed *BugError", p)
		}
	}()
	b.ManifestCtx(context.Background(), true, nil, feats())
}

// TestLiveLatency: a live exception spends its injected latency before
// manifesting; cancellation during the latency window wins.
func TestLiveLatency(t *testing.T) {
	b := &Bug{ID: "T-EXC", Kind: Exception, Latency: 20 * time.Millisecond}
	start := time.Now()
	_, err := b.ManifestCtx(context.Background(), true, nil, feats())
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("latency not injected: manifested after %v", d)
	}
	var be *BugError
	if !errors.As(err, &be) || be.Kind != Exception {
		t.Errorf("err = %v, want exception BugError", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = b.ManifestCtx(ctx, true, nil, feats())
	if !errors.Is(err, engine.ErrCanceled) {
		t.Errorf("canceled latency: err = %v, want ErrCanceled", err)
	}
}

// TestSimulatedModeUnchanged: live == false keeps the instant
// manifestation, and Apply still reports hang/crash as plain errors.
func TestSimulatedModeUnchanged(t *testing.T) {
	for _, k := range []Kind{Crash, Hang, Exception} {
		b := &Bug{ID: "T-SIM", Kind: k, Latency: time.Hour} // latency ignored when not live
		start := time.Now()
		_, err := b.Apply(nil, feats())
		if time.Since(start) > time.Second {
			t.Fatalf("%v: simulated manifestation must be instant", k)
		}
		var be *BugError
		if !errors.As(err, &be) || be.Kind != k {
			t.Errorf("%v: err = %v", k, err)
		}
		if be.FaultKind() != k.String() {
			t.Errorf("FaultKind() = %q, want %q", be.FaultKind(), k)
		}
	}
}

// TestSelectMatchesApply: Select returns the same bug Apply attributes.
func TestSelectMatchesApply(t *testing.T) {
	s := Memgraph()
	f := metrics.Analyze(`WITH replace('x', '', 'y') AS a0 RETURN a0`)
	want := s.Select(f, nil)
	if want == nil || want.ID != "MG-O1" {
		t.Fatalf("Select = %v, want MG-O1", want)
	}
	_, _, got := s.Apply(f, nil, nil)
	if got != want {
		t.Errorf("Apply attributed %v, Select chose %v", got, want)
	}
	if s.Select(nil, nil) != nil || (*Set)(nil).Select(f, nil) != nil {
		t.Error("nil set/features must select nothing")
	}
}
