package faults

import (
	"testing"

	"gqs/internal/engine"
	"gqs/internal/metrics"
	"gqs/internal/value"
)

func TestCatalogMatchesTable3(t *testing.T) {
	want := map[string]struct {
		logic, other          int
		logicConf, logicFixed int
		otherConf, otherFixed int
	}{
		"neo4j":    {2, 3, 2, 2, 3, 3},
		"memgraph": {6, 1, 6, 1, 1, 0},
		"kuzu":     {5, 2, 5, 5, 2, 2},
		"falkordb": {13, 4, 4, 0, 2, 1},
	}
	total := 0
	for gdb, w := range want {
		set := Catalogs()[gdb]
		if set == nil {
			t.Fatalf("no catalog for %s", gdb)
		}
		var logic, other, lc, lf, oc, of int
		for _, b := range set.Bugs {
			if b.GDB != gdb {
				t.Errorf("%s: bug %s has GDB %s", gdb, b.ID, b.GDB)
			}
			if b.Kind.IsLogic() {
				logic++
				if b.Confirmed {
					lc++
				}
				if b.Fixed {
					lf++
				}
			} else {
				other++
				if b.Confirmed {
					oc++
				}
				if b.Fixed {
					of++
				}
			}
		}
		total += logic + other
		if logic != w.logic || other != w.other {
			t.Errorf("%s: %d logic + %d other, want %d + %d", gdb, logic, other, w.logic, w.other)
		}
		if lc != w.logicConf || lf != w.logicFixed {
			t.Errorf("%s logic confirmed/fixed = %d/%d, want %d/%d", gdb, lc, lf, w.logicConf, w.logicFixed)
		}
		if oc != w.otherConf || of != w.otherFixed {
			t.Errorf("%s other confirmed/fixed = %d/%d, want %d/%d", gdb, oc, of, w.otherConf, w.otherFixed)
		}
	}
	if total != 36 {
		t.Errorf("catalog size = %d, want 36", total)
	}
}

func TestBugIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, set := range Catalogs() {
		for _, b := range set.Bugs {
			if seen[b.ID] {
				t.Errorf("duplicate bug ID %s", b.ID)
			}
			seen[b.ID] = true
			if b.Description == "" {
				t.Errorf("%s has no description", b.ID)
			}
			if b.IntroducedYearsAgo <= 0 {
				t.Errorf("%s has no introduction age", b.ID)
			}
		}
	}
}

func TestTriggerMatching(t *testing.T) {
	f := metrics.Analyze(`WITH replace('a', '', 'b') AS x RETURN x`)
	mg := Memgraph()
	hang := mg.ByID("MG-O1")
	if !hang.Trigger.Matches(f) {
		t.Error("Figure 9 query must trigger MG-O1")
	}
	simple := metrics.Analyze(`MATCH (n) RETURN n.k0`)
	for _, set := range Catalogs() {
		for _, b := range set.Bugs {
			if b.Trigger.Matches(simple) {
				t.Errorf("trivial query triggers %s; triggers are too loose", b.ID)
			}
		}
	}
	if (Trigger{}).Matches(nil) {
		t.Error("nil features must never match")
	}
}

func TestFigure17Trigger(t *testing.T) {
	f := metrics.Analyze(`UNWIND [1,2,3] AS a0 MATCH (n2:L12)-[r1]-(n3) WHERE r1.id = 13 RETURN a0`)
	fk := FalkorDB()
	if !fk.ByID("FK-L2").Trigger.Matches(f) {
		t.Error("Figure 17 query must trigger FK-L2")
	}
}

func TestApplyManifestations(t *testing.T) {
	f := metrics.Analyze(`MATCH (n) RETURN n.k0`)
	res := &engine.Result{
		Columns: []string{"a"},
		Rows:    [][]value.Value{{value.Int(1)}, {value.Int(2)}},
	}
	check := func(m Manifestation) *engine.Result {
		b := &Bug{ID: "T", Kind: Logic, Manifest: m}
		out, err := b.Apply(res, f)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		return out
	}
	if out := check(EmptyResult); out.Len() != 0 {
		t.Error("EmptyResult broken")
	}
	if out := check(DropRows); out.Len() != 1 {
		t.Error("DropRows broken")
	}
	if out := check(DuplicateRow); out.Len() != 3 {
		t.Error("DuplicateRow broken")
	}
	if out := check(WrongValue); res.Equal(out) {
		t.Error("WrongValue must change the result")
	}
	if out := check(NullValue); res.Equal(out) {
		t.Error("NullValue must change the result")
	}
	// The original result is never mutated.
	if res.Rows[0][0].AsInt() != 1 || res.Len() != 2 {
		t.Error("Apply mutated the input result")
	}
}

func TestApplyDeterministicUnderRewrite(t *testing.T) {
	// Two different texts with the same coarse features must corrupt
	// identically — the root-cause model that defeats metamorphic
	// oracles (§5.4.3).
	f1 := metrics.Analyze(`MATCH (a)-[r]->(b) WHERE a.id = 1 RETURN a.k0`)
	f2 := metrics.Analyze(`MATCH (b)<-[r]-(a) WHERE a.id = 1 RETURN a.k0`)
	res := &engine.Result{Columns: []string{"x", "y"},
		Rows: [][]value.Value{{value.Int(1), value.Str("s")}, {value.Int(2), value.Str("t")}}}
	b := &Bug{ID: "T2", Kind: Logic, Manifest: WrongValue}
	o1, _ := b.Apply(res, f1)
	o2, _ := b.Apply(res, f2)
	if !o1.Equal(o2) {
		t.Error("equivalent rewrites must manifest identically")
	}
}

func TestNonLogicApply(t *testing.T) {
	f := metrics.Analyze(`MATCH (n) RETURN n`)
	for _, k := range []Kind{Crash, Hang, Exception} {
		b := &Bug{ID: "E", Kind: k}
		_, err := b.Apply(nil, f)
		be, ok := err.(*BugError)
		if !ok || be.BugID() != "E" || be.Kind != k {
			t.Errorf("kind %v: err = %v", k, err)
		}
	}
}

func TestSetApplyFirstTriggeredWins(t *testing.T) {
	f := metrics.Analyze(`WITH replace('a', '', 'b') AS x RETURN x`)
	set := Memgraph()
	res := &engine.Result{Columns: []string{"x"}, Rows: [][]value.Value{{value.Str("a")}}}
	out, err, bug := set.Apply(f, res, nil)
	if bug == nil || bug.ID != "MG-O1" {
		t.Fatalf("expected MG-O1, got %v", bug)
	}
	if err == nil || out != nil {
		t.Error("hang must be an error")
	}
	// An untriggered query passes through untouched.
	f2 := metrics.Analyze(`MATCH (n) RETURN n.k0`)
	out, err, bug = set.Apply(f2, res, nil)
	if bug != nil || err != nil || !out.Equal(res) {
		t.Error("untouched pass-through broken")
	}
	// A nil set is a no-op.
	var nilSet *Set
	if _, _, b := nilSet.Apply(f2, res, nil); b != nil {
		t.Error("nil set must be a no-op")
	}
}

func TestKindStrings(t *testing.T) {
	if Logic.String() != "logic" || Crash.String() != "crash" || Hang.String() != "hang" || Exception.String() != "exception" {
		t.Error("Kind.String broken")
	}
	if !Logic.IsLogic() || Crash.IsLogic() {
		t.Error("IsLogic broken")
	}
}
