// Package faults implements the injected-fault framework standing in for
// the 36 real bugs the GQS paper found (Table 3). Each fault models one
// of the bug classes the paper describes — wrong projected values
// (Figures 1 and 7), row loss from optimization combinations (Figure 8),
// UNWIND truncation (Figure 17), the replace(”, …) hang (Figure 9),
// unsafe binary-operator helpers, crashes, and exceptions — and carries:
//
//   - a trigger predicate over query features (clauses, patterns, nesting
//     depth, cross-clause references), so that the feature distributions
//     of bug-triggering queries (Figures 10–15) and the blind spots of
//     baseline oracles (§5.4.3) emerge from actually running each tester;
//   - a deterministic manifestation keyed on the query hash, so the same
//     query always fails the same way (required for differential and
//     metamorphic replay); and
//   - metadata (introduction date, confirmed/fixed status) reproducing
//     Tables 3 and 4.
package faults

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"gqs/internal/engine"
	"gqs/internal/metrics"
	"gqs/internal/value"
)

// Kind classifies a bug as the paper does: logic bugs silently corrupt
// results; the rest ("other bugs") crash, hang, or raise exceptions.
type Kind int

// Bug kinds.
const (
	Logic Kind = iota
	Crash
	Hang
	Exception
)

// IsLogic reports whether the kind is a logic bug.
func (k Kind) IsLogic() bool { return k == Logic }

func (k Kind) String() string {
	switch k {
	case Logic:
		return "logic"
	case Crash:
		return "crash"
	case Hang:
		return "hang"
	default:
		return "exception"
	}
}

// Manifestation is how a triggered logic bug corrupts the result.
type Manifestation int

// Logic-bug manifestations.
const (
	WrongValue   Manifestation = iota // one projected value replaced (Figures 1, 7)
	EmptyResult                       // all rows dropped (Figure 8)
	DropRows                          // only the first row survives (Figure 17)
	DuplicateRow                      // one row duplicated
	NullValue                         // one projected value nulled
)

// Trigger is a predicate over query features. All non-zero fields must
// hold; HashMod/HashEq adds deterministic pseudo-random rarity.
type Trigger struct {
	MinClauses  int
	MinPatterns int
	MinDepth    int
	MinRefs     int
	Clause      string // a clause name that must appear (e.g. "UNWIND")
	Func        string // a function that must appear
	// Special shapes.
	ReplaceEmpty      bool
	UnwindBeforeMatch bool
	OrderBy           bool
	Distinct          bool
	Union             bool
	// Rarity gate: CoarseSeed % HashMod == HashEq (ignored when HashMod
	// is 0). The gate is keyed on the coarse feature vector rather than
	// the query text, so equivalent rewrites of a triggering query still
	// trigger — the root-cause model behind the §5.4.3 blind spots —
	// while different fuzzing queries mostly do not.
	HashMod uint64
	HashEq  uint64
}

// Matches evaluates the trigger on a feature vector.
func (t Trigger) Matches(f *metrics.Features) bool {
	if f == nil {
		return false
	}
	switch {
	case f.Clauses < t.MinClauses,
		f.Patterns < t.MinPatterns,
		f.MaxExprDepth < t.MinDepth,
		f.CrossRefs < t.MinRefs:
		return false
	}
	if t.Clause != "" && f.ClauseCounts[t.Clause] == 0 {
		return false
	}
	// Function names are recorded lowercased by the metrics package.
	if t.Func != "" && f.Functions[strings.ToLower(t.Func)] == 0 {
		return false
	}
	if t.ReplaceEmpty && !f.HasReplaceEmptyString {
		return false
	}
	if t.UnwindBeforeMatch && !f.UnwindBeforeMatch {
		return false
	}
	if t.OrderBy && !f.HasOrderBy {
		return false
	}
	if t.Distinct && !f.HasDistinct {
		return false
	}
	if t.Union && !f.HasUnion {
		return false
	}
	if t.HashMod != 0 && f.CoarseSeed()%t.HashMod != t.HashEq {
		return false
	}
	return true
}

// Bug is one injected fault.
type Bug struct {
	ID          string
	GDB         string // neo4j, memgraph, kuzu, falkordb
	Kind        Kind
	Manifest    Manifestation
	Description string
	Trigger     Trigger

	// Latency is extra processing time a triggered execution spends
	// before the bug manifests. It is honoured only in live mode, where
	// the harness's timeout/watchdog path is exercised for real.
	Latency time.Duration

	// Metadata for Tables 3 and 4.
	IntroducedYearsAgo float64
	Confirmed          bool
	Fixed              bool
}

// BugError is the error a non-logic fault raises; it satisfies the
// interface{ BugID() string } contract the test runners use to attribute
// failures.
type BugError struct {
	ID   string
	Kind Kind
	Msg  string
}

func (e *BugError) Error() string { return fmt.Sprintf("[%s/%s] %s", e.ID, e.Kind, e.Msg) }

// BugID returns the fault identifier.
func (e *BugError) BugID() string { return e.ID }

// FaultKind names the bug class ("crash", "hang", "exception", "logic")
// so harness layers can pick a recovery strategy without importing the
// Kind type.
func (e *BugError) FaultKind() string { return e.Kind.String() }

// Apply manifests the bug on a query result, deterministically in the
// query hash. For non-logic bugs it returns the corresponding error. This
// is the instant "simulated" manifestation; ManifestCtx adds live mode.
func (b *Bug) Apply(res *engine.Result, f *metrics.Features) (*engine.Result, error) {
	return b.ManifestCtx(context.Background(), false, res, f)
}

// sleepCtx blocks for d or until the context is canceled, reporting
// whether it slept the full duration.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// ManifestCtx manifests the bug on a query result, deterministically in
// the query hash. In simulated mode (live == false) non-logic bugs return
// instantly with the corresponding error — cheap, for high-volume
// experiment campaigns. In live mode the bug behaves the way the real
// bug class does, so the harness's watchdog/recovery paths are exercised
// for real rather than pretended:
//
//   - Hang blocks until ctx is canceled (the Figure 9 non-termination),
//     then reports the hang error to the unwinding execution path;
//   - Crash panics with the *BugError, as a connector whose server
//     process died mid-call would;
//   - Exception and logic bugs manifest as usual, after the bug's
//     injected Latency (canceled early if ctx expires first).
func (b *Bug) ManifestCtx(ctx context.Context, live bool, res *engine.Result, f *metrics.Features) (*engine.Result, error) {
	if live {
		switch b.Kind {
		case Hang:
			<-ctx.Done()
			return nil, &BugError{ID: b.ID, Kind: Hang, Msg: "query did not terminate; canceled by watchdog"}
		case Crash:
			if !sleepCtx(ctx, b.Latency) {
				return nil, &BugError{ID: b.ID, Kind: Crash, Msg: "server process terminated unexpectedly"}
			}
			panic(&BugError{ID: b.ID, Kind: Crash, Msg: "server process terminated unexpectedly"})
		default:
			if !sleepCtx(ctx, b.Latency) {
				return nil, engine.ErrCanceled
			}
		}
	}
	switch b.Kind {
	case Crash:
		return nil, &BugError{ID: b.ID, Kind: Crash, Msg: "server process terminated unexpectedly (simulated)"}
	case Hang:
		return nil, &BugError{ID: b.ID, Kind: Hang, Msg: "query did not terminate within the timeout (simulated)"}
	case Exception:
		return nil, &BugError{ID: b.ID, Kind: Exception, Msg: "unexpected internal exception (simulated)"}
	}
	if res == nil {
		return nil, nil
	}
	out := &engine.Result{Columns: res.Columns}
	for _, row := range res.Rows {
		out.Rows = append(out.Rows, append([]value.Value(nil), row...))
	}
	rng := rand.New(rand.NewSource(b.seed(f)))
	switch b.Manifest {
	case EmptyResult:
		out.Rows = nil
	case DropRows:
		if len(out.Rows) > 1 {
			out.Rows = out.Rows[:1]
		}
	case DuplicateRow:
		if len(out.Rows) > 0 {
			i := rng.Intn(len(out.Rows))
			out.Rows = append(out.Rows, out.Rows[i])
		}
	case NullValue:
		perturbCell(out, rng, func(value.Value) value.Value { return value.Null })
	case WrongValue:
		perturbCell(out, rng, func(v value.Value) value.Value { return corrupt(rng, v) })
	}
	return out, nil
}

// seed derives the manifestation's random seed from the bug identity and
// the query's coarse feature vector — NOT from the query text. A faithful
// model of a real root cause: semantically equivalent rewrites of the
// query exercise the same broken code path and corrupt the result the
// same way, which is exactly why metamorphic oracles miss such bugs
// (§5.4.3, Figure 16).
func (b *Bug) seed(f *metrics.Features) int64 {
	var h uint64 = 1469598103934665603
	for _, c := range []byte(b.ID) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	h = h*31 + uint64(f.Patterns)
	h = h*31 + uint64(f.MaxExprDepth)
	h = h*31 + uint64(f.Clauses)
	h = h*31 + uint64(f.CrossRefs)
	return int64(h)
}

// perturbCell corrupts one cell; an empty result gains a spurious row, so
// the manifestation is never a silent no-op.
func perturbCell(r *engine.Result, rng *rand.Rand, f func(value.Value) value.Value) {
	if len(r.Rows) == 0 {
		row := make([]value.Value, len(r.Columns))
		for i := range row {
			row[i] = value.Int(int64(rng.Intn(100)))
		}
		r.Rows = append(r.Rows, row)
		return
	}
	if len(r.Columns) == 0 {
		return
	}
	i := rng.Intn(len(r.Rows))
	j := rng.Intn(len(r.Columns))
	r.Rows[i][j] = f(r.Rows[i][j])
}

// corrupt returns a same-typed but different value, like returning a
// different element's property (Figure 7).
func corrupt(rng *rand.Rand, v value.Value) value.Value {
	switch v.Kind() {
	case value.KindInt:
		return value.Int(v.AsInt() + 1 + int64(rng.Intn(7)))
	case value.KindFloat:
		return value.Float(v.AsFloat() + 1.5)
	case value.KindString:
		return value.Str(v.AsString() + "X")
	case value.KindBool:
		return value.Bool(!v.AsBool())
	case value.KindList:
		return value.List(append(v.AsList(), value.Int(0))...) // extra element
	case value.KindNull:
		return value.Int(int64(rng.Intn(1000)))
	default:
		return value.Int(int64(rng.Intn(1000)))
	}
}

// Set is the fault catalog of one simulated GDB.
type Set struct {
	GDB  string
	Bugs []*Bug
}

// Select returns the first catalog fault the query triggers (one root
// cause per execution, as real engines fail on the first broken code
// path), or nil. Logic bugs do not trigger on queries that already
// failed outright — there is no result to corrupt.
func (s *Set) Select(f *metrics.Features, execErr error) *Bug {
	if s == nil || f == nil {
		return nil
	}
	for _, b := range s.Bugs {
		if !b.Trigger.Matches(f) {
			continue
		}
		if b.Kind == Logic && execErr != nil {
			continue
		}
		return b
	}
	return nil
}

// Apply runs the catalog against a query in simulated mode: the first
// triggered fault manifests instantly. It returns the possibly-corrupted
// result, the possibly-injected error, and the triggered bug for
// attribution.
func (s *Set) Apply(f *metrics.Features, res *engine.Result, execErr error) (*engine.Result, error, *Bug) {
	return s.ApplyCtx(context.Background(), false, f, res, execErr)
}

// ApplyCtx runs the catalog against a query, manifesting the first
// triggered fault in simulated or live mode (see Bug.ManifestCtx). Note
// that in live mode a Crash fault panics out of this call — callers that
// need attribution across the panic should Select first, record the bug,
// then ManifestCtx themselves (as the gdb connectors do).
func (s *Set) ApplyCtx(ctx context.Context, live bool, f *metrics.Features, res *engine.Result, execErr error) (*engine.Result, error, *Bug) {
	b := s.Select(f, execErr)
	if b == nil {
		return res, execErr, nil
	}
	if b.Kind == Logic {
		out, merr := b.ManifestCtx(ctx, live, res, f)
		if merr != nil { // canceled mid-latency: not a manifested result
			return nil, merr, b
		}
		return out, nil, b
	}
	_, err := b.ManifestCtx(ctx, live, nil, f)
	return nil, err, b
}

// ByID finds a bug in the set.
func (s *Set) ByID(id string) *Bug {
	for _, b := range s.Bugs {
		if b.ID == id {
			return b
		}
	}
	return nil
}
