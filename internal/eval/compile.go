package eval

import (
	"fmt"

	"gqs/internal/cypher/ast"
	"gqs/internal/functions"
	"gqs/internal/value"
)

// Compiled is a compiled expression: a closure tree produced once at
// Prepare time and evaluated many times against slot-addressed frames
// (Ctx.Frame). Evaluation order, error identity, and error timing are
// byte-for-byte those of the tree-walking Eval — the compiler only
// removes per-evaluation dispatch, map lookups, and re-resolution of
// functions, operators, and variables. That equivalence is what lets the
// engine share one compiled plan across every oracle target without
// perturbing the canonical bug set (DESIGN.md §12).
type Compiled func(*Ctx) (value.Value, error)

// CompiledPred is a compiled predicate: Compiled plus the three-valued
// coercion EvalPredicate applies (non-boolean results are a type error).
type CompiledPred func(*Ctx) (value.Tri, error)

// Compiler lowers AST expressions to Compiled closures. The caller owns
// slot assignment: Lookup resolves the free variables of the expression
// being compiled, and Temp allocates scratch slots for comprehension and
// quantifier locals (the caller sizes its frames accordingly).
//
// A variable neither bound locally nor resolved by Lookup compiles to a
// closure that returns UnknownVariableError at evaluation time — not a
// compile error — because the interpreter, too, only raises the error if
// the expression is actually evaluated (a query producing zero rows
// never sees it).
type Compiler struct {
	// Lookup resolves a free variable to its frame slot. Nil means no
	// variables are in scope.
	Lookup func(name string) (int, bool)
	// Temp allocates a fresh frame slot for an expression-local variable
	// (list-comprehension or quantifier binder). Required if such
	// expressions can occur.
	Temp func() int
	// Special intercepts subexpressions the caller wants to compile
	// itself; the engine uses it to splice per-group aggregate results
	// into projection items. Checked before any other handling, and the
	// intercepted node's children are not compiled.
	Special func(ast.Expr) (Compiled, bool)

	// locals is the stack of expression-local binders currently in
	// scope, innermost last; it shadows Lookup.
	locals []localBinding
	// fctx is the scratch context constant folding evaluates in. Frames,
	// graph, parameters, and execution state are all nil: an expression
	// is only foldable when it touches none of them.
	fctx *Ctx
}

// slotReaders holds one shared closure per low-numbered frame slot: a
// slot read is position-only, so every reference to the same slot shares
// one immutable closure instead of allocating a capture per occurrence.
// The table is built once at init and only read afterwards, so sharing
// it across compilers and goroutines is race-free.
var slotReaders = func() [64]Compiled {
	var t [64]Compiled
	for i := range t {
		slot := i
		t[i] = func(ctx *Ctx) (value.Value, error) {
			return ctx.Frame[slot], nil
		}
	}
	return t
}()

func slotFn(slot int) Compiled {
	if slot < len(slotReaders) {
		return slotReaders[slot]
	}
	return func(ctx *Ctx) (value.Value, error) {
		return ctx.Frame[slot], nil
	}
}

type localBinding struct {
	name string
	slot int
}

// comp is the internal compilation result: the closure plus constant
// information for folding.
type comp struct {
	fn    Compiled
	val   value.Value
	konst bool
}

// Compile lowers the expression to a closure. The error return is
// reserved for AST node types the compiler does not know; every node the
// parser can produce compiles (semantic errors become closures that
// fail at evaluation time, exactly as the interpreter fails).
func (c *Compiler) Compile(e ast.Expr) (Compiled, error) {
	cp, err := c.compile(e)
	if err != nil {
		return nil, err
	}
	return cp.fn, nil
}

// CompilePred lowers the expression to a predicate, mirroring
// EvalPredicate's coercion and its exact type-error message.
func (c *Compiler) CompilePred(e ast.Expr) (CompiledPred, error) {
	cp, err := c.compile(e)
	if err != nil {
		return nil, err
	}
	return predOf(cp.fn), nil
}

func predOf(fn Compiled) CompiledPred {
	return func(ctx *Ctx) (value.Tri, error) {
		v, err := fn(ctx)
		if err != nil {
			return value.TriUnknown, err
		}
		t, ok := v.Truth()
		if !ok {
			return value.TriUnknown, fmt.Errorf("type error: expected a boolean predicate, got %s", v.Kind())
		}
		return t, nil
	}
}

func constComp(v value.Value) comp {
	return comp{fn: func(*Ctx) (value.Value, error) { return v, nil }, val: v, konst: true}
}

func errComp(err error) comp {
	return comp{fn: func(*Ctx) (value.Value, error) { return value.Null, err }}
}

// tryFold runs a closure whose operands are all constants once, at
// compile time, and replaces it with the resulting constant. A fold
// that errors keeps the closure: the error must surface at evaluation
// time (and only if evaluated), as the interpreter's would.
func (c *Compiler) tryFold(fn Compiled, allConst bool) comp {
	if !allConst {
		return comp{fn: fn}
	}
	if c.fctx == nil {
		c.fctx = &Ctx{}
	}
	v, err := fn(c.fctx)
	if err != nil {
		return comp{fn: fn}
	}
	return constComp(v)
}

func (c *Compiler) resolveVar(name string) (int, bool) {
	for i := len(c.locals) - 1; i >= 0; i-- {
		if c.locals[i].name == name {
			return c.locals[i].slot, true
		}
	}
	if c.Lookup != nil {
		return c.Lookup(name)
	}
	return 0, false
}

func (c *Compiler) compile(e ast.Expr) (comp, error) {
	if c.Special != nil {
		if fn, ok := c.Special(e); ok {
			return comp{fn: fn}, nil
		}
	}
	// Fold maximal constant subtrees before building their closure
	// trees: evaluating the AST directly yields the same value tryFold
	// would have produced (the closures mirror Eval exactly), without
	// allocating a closure per node only to discard the whole tree.
	// Skipped under Special — an interceptable node could hide anywhere
	// in the subtree — and for bare literals, which constComp below
	// already handles without an Eval walk. An erroring constant falls
	// through to normal compilation so the error keeps surfacing at
	// evaluation time, exactly as tryFold keeps erroring closures.
	if c.Special == nil {
		if _, lit := e.(*ast.Literal); !lit && constExpr(e) {
			if c.fctx == nil {
				c.fctx = &Ctx{}
			}
			if v, err := Eval(c.fctx, e); err == nil {
				return constComp(v), nil
			}
		}
	}
	switch e := e.(type) {
	case *ast.Literal:
		return constComp(e.Val), nil
	case *ast.Variable:
		if slot, ok := c.resolveVar(e.Name); ok {
			return comp{fn: slotFn(slot)}, nil
		}
		err := &UnknownVariableError{Name: e.Name}
		return errComp(err), nil
	case *ast.Parameter:
		name := e.Name
		return comp{fn: func(ctx *Ctx) (value.Value, error) {
			v, ok := ctx.Params[name]
			if !ok {
				return value.Null, fmt.Errorf("parameter $%s is not bound", name)
			}
			return v, nil
		}}, nil
	case *ast.PropAccess:
		return c.compilePropAccess(e)
	case *ast.Binary:
		return c.compileBinary(e)
	case *ast.Unary:
		return c.compileUnary(e)
	case *ast.FuncCall:
		return c.compileFuncCall(e)
	case *ast.ListLit:
		elems := make([]Compiled, len(e.Elems))
		allConst := true
		for i, el := range e.Elems {
			cp, err := c.compile(el)
			if err != nil {
				return comp{}, err
			}
			elems[i] = cp.fn
			allConst = allConst && cp.konst
		}
		fn := func(ctx *Ctx) (value.Value, error) {
			out := make([]value.Value, len(elems))
			for i, el := range elems {
				v, err := el(ctx)
				if err != nil {
					return value.Null, err
				}
				out[i] = v
			}
			return value.ListOf(out), nil
		}
		return c.tryFold(fn, allConst), nil
	case *ast.MapLit:
		keys := e.Keys
		vals := make([]Compiled, len(e.Vals))
		allConst := true
		for i, v := range e.Vals {
			cp, err := c.compile(v)
			if err != nil {
				return comp{}, err
			}
			vals[i] = cp.fn
			allConst = allConst && cp.konst
		}
		fn := func(ctx *Ctx) (value.Value, error) {
			out := make(map[string]value.Value, len(keys))
			for i, k := range keys {
				v, err := vals[i](ctx)
				if err != nil {
					return value.Null, err
				}
				out[k] = v
			}
			return value.Map(out), nil
		}
		return c.tryFold(fn, allConst), nil
	case *ast.IndexExpr:
		sub, err := c.compile(e.Subject)
		if err != nil {
			return comp{}, err
		}
		idx, err := c.compile(e.Index)
		if err != nil {
			return comp{}, err
		}
		fn := func(ctx *Ctx) (value.Value, error) {
			s, err := sub.fn(ctx)
			if err != nil {
				return value.Null, err
			}
			i, err := idx.fn(ctx)
			if err != nil {
				return value.Null, err
			}
			return value.Index(s, i)
		}
		return c.tryFold(fn, sub.konst && idx.konst), nil
	case *ast.SliceExpr:
		sub, err := c.compile(e.Subject)
		if err != nil {
			return comp{}, err
		}
		allConst := sub.konst
		var from, to comp
		if e.From != nil {
			if from, err = c.compile(e.From); err != nil {
				return comp{}, err
			}
			allConst = allConst && from.konst
		}
		if e.To != nil {
			if to, err = c.compile(e.To); err != nil {
				return comp{}, err
			}
			allConst = allConst && to.konst
		}
		fromFn, toFn := from.fn, to.fn
		fn := func(ctx *Ctx) (value.Value, error) {
			s, err := sub.fn(ctx)
			if err != nil {
				return value.Null, err
			}
			fromV, toV := value.Null, value.Null
			if fromFn != nil {
				if fromV, err = fromFn(ctx); err != nil {
					return value.Null, err
				}
			}
			if toFn != nil {
				if toV, err = toFn(ctx); err != nil {
					return value.Null, err
				}
			}
			return value.Slice(s, fromV, toV)
		}
		return c.tryFold(fn, allConst), nil
	case *ast.CaseExpr:
		return c.compileCase(e)
	case *ast.ListComprehension:
		return c.compileComprehension(e)
	case *ast.Quantifier:
		return c.compileQuantifier(e)
	default:
		// Mirror the interpreter: an unknown node type is a runtime
		// error, raised only if the expression is evaluated.
		err := fmt.Errorf("cannot evaluate %T", e)
		return errComp(err), nil
	}
}

func (c *Compiler) compilePropAccess(e *ast.PropAccess) (comp, error) {
	sub, err := c.compile(e.Subject)
	if err != nil {
		return comp{}, err
	}
	name := e.Name
	fn := func(ctx *Ctx) (value.Value, error) {
		s, err := sub.fn(ctx)
		if err != nil {
			return value.Null, err
		}
		switch s.Kind() {
		case value.KindNull:
			return value.Null, nil
		case value.KindMap:
			if v, ok := s.AsMap()[name]; ok {
				return v, nil
			}
			return value.Null, nil
		case value.KindNode, value.KindRel:
			props, ok := GraphCtx{G: ctx.Graph}.EntityProps(s.EntityID(), s.Kind() == value.KindRel)
			if !ok {
				return value.Null, fmt.Errorf("unknown entity %d", s.EntityID())
			}
			if v, ok := props[name]; ok {
				return v, nil
			}
			return value.Null, nil
		default:
			return value.Null, fmt.Errorf("type error: cannot access property %s of %s", name, s.Kind())
		}
	}
	// A constant subject can only be null, a map, or a scalar (entity
	// references never appear as parsed constants), none of which touch
	// the graph — safe to fold.
	return c.tryFold(fn, sub.konst), nil
}

func (c *Compiler) compileBinary(e *ast.Binary) (comp, error) {
	l, err := c.compile(e.L)
	if err != nil {
		return comp{}, err
	}
	r, err := c.compile(e.R)
	if err != nil {
		return comp{}, err
	}
	allConst := l.konst && r.konst
	// Logical operators interpret their operands as predicates, exactly
	// as evalBinary does via EvalPredicate.
	switch e.Op {
	case ast.OpAnd, ast.OpOr, ast.OpXor:
		lp, rp := predOf(l.fn), predOf(r.fn)
		op := e.Op
		fn := func(ctx *Ctx) (value.Value, error) {
			lt, err := lp(ctx)
			if err != nil {
				return value.Null, err
			}
			rt, err := rp(ctx)
			if err != nil {
				return value.Null, err
			}
			switch op {
			case ast.OpAnd:
				return lt.And(rt).Value(), nil
			case ast.OpOr:
				return lt.Or(rt).Value(), nil
			default:
				return lt.Xor(rt).Value(), nil
			}
		}
		return c.tryFold(fn, allConst), nil
	}
	var bin func(l, r value.Value) (value.Value, error)
	switch e.Op {
	case ast.OpAdd:
		bin = value.Add
	case ast.OpSub:
		bin = value.Sub
	case ast.OpMul:
		bin = value.Mul
	case ast.OpDiv:
		bin = value.Div
	case ast.OpMod:
		bin = value.Mod
	case ast.OpPow:
		bin = value.Pow
	case ast.OpEq:
		bin = func(l, r value.Value) (value.Value, error) { return value.Equal(l, r).Value(), nil }
	case ast.OpNeq:
		bin = func(l, r value.Value) (value.Value, error) { return value.NotEqual(l, r).Value(), nil }
	case ast.OpLt:
		bin = func(l, r value.Value) (value.Value, error) { return value.Less(l, r).Value(), nil }
	case ast.OpLe:
		bin = func(l, r value.Value) (value.Value, error) { return value.LessEq(l, r).Value(), nil }
	case ast.OpGt:
		bin = func(l, r value.Value) (value.Value, error) { return value.Greater(l, r).Value(), nil }
	case ast.OpGe:
		bin = func(l, r value.Value) (value.Value, error) { return value.GreaterEq(l, r).Value(), nil }
	case ast.OpStartsWith:
		bin = func(l, r value.Value) (value.Value, error) { return value.StartsWith(l, r).Value(), nil }
	case ast.OpEndsWith:
		bin = func(l, r value.Value) (value.Value, error) { return value.EndsWith(l, r).Value(), nil }
	case ast.OpContains:
		bin = func(l, r value.Value) (value.Value, error) { return value.Contains(l, r).Value(), nil }
	case ast.OpIn:
		bin = func(l, r value.Value) (value.Value, error) { return value.In(l, r).Value(), nil }
	case ast.OpRegex:
		bin = evalRegex
	default:
		op := e.Op
		bin = func(l, r value.Value) (value.Value, error) {
			return value.Null, fmt.Errorf("unknown binary operator %v", op)
		}
	}
	fn := func(ctx *Ctx) (value.Value, error) {
		lv, err := l.fn(ctx)
		if err != nil {
			return value.Null, err
		}
		rv, err := r.fn(ctx)
		if err != nil {
			return value.Null, err
		}
		return bin(lv, rv)
	}
	return c.tryFold(fn, allConst), nil
}

func (c *Compiler) compileUnary(e *ast.Unary) (comp, error) {
	x, err := c.compile(e.X)
	if err != nil {
		return comp{}, err
	}
	switch e.Op {
	case ast.OpNot:
		xp := predOf(x.fn)
		fn := func(ctx *Ctx) (value.Value, error) {
			t, err := xp(ctx)
			if err != nil {
				return value.Null, err
			}
			return t.Not().Value(), nil
		}
		return c.tryFold(fn, x.konst), nil
	case ast.OpNeg:
		fn := func(ctx *Ctx) (value.Value, error) {
			v, err := x.fn(ctx)
			if err != nil {
				return value.Null, err
			}
			return value.Neg(v)
		}
		return c.tryFold(fn, x.konst), nil
	case ast.OpIsNull, ast.OpIsNotNull:
		not := e.Op == ast.OpIsNotNull
		fn := func(ctx *Ctx) (value.Value, error) {
			v, err := x.fn(ctx)
			if err != nil {
				return value.Null, err
			}
			isNull := v.IsNull()
			if not {
				return value.Bool(!isNull), nil
			}
			return value.Bool(isNull), nil
		}
		return c.tryFold(fn, x.konst), nil
	default:
		op := e.Op
		fn := func(ctx *Ctx) (value.Value, error) {
			if _, err := x.fn(ctx); err != nil {
				return value.Null, err
			}
			return value.Null, fmt.Errorf("unknown unary operator %v", op)
		}
		return comp{fn: fn}, nil
	}
}

func (c *Compiler) compileFuncCall(e *ast.FuncCall) (comp, error) {
	// Aggregates in scalar position fail at evaluation time, mirroring
	// evalFuncCall's first check. (Projection items route their aggregate
	// calls through Special before reaching here.)
	if functions.IsAggregate(e.Name) {
		return errComp(ErrAggregateInScalar), nil
	}
	f := functions.Lookup(e.Name)
	if f == nil {
		return errComp(fmt.Errorf("unknown function %s", e.Name)), nil
	}
	args := make([]Compiled, len(e.Args))
	allConst := true
	for i, a := range e.Args {
		cp, err := c.compile(a)
		if err != nil {
			return comp{}, err
		}
		args[i] = cp.fn
		allConst = allConst && cp.konst
	}
	fn := func(ctx *Ctx) (value.Value, error) {
		base := len(ctx.argScratch)
		for _, a := range args {
			v, err := a(ctx)
			if err != nil {
				ctx.argScratch = ctx.argScratch[:base]
				return value.Null, err
			}
			ctx.argScratch = append(ctx.argScratch, v)
		}
		ctx.gctx.G, ctx.gctx.Exec = ctx.Graph, ctx.Exec
		res, err := functions.Invoke(f, &ctx.gctx, ctx.argScratch[base:])
		ctx.argScratch = ctx.argScratch[:base]
		return res, err
	}
	// Nondeterministic functions (rand, timestamp) draw from the
	// per-execution state; folding one would change how many draws later
	// evaluations see and desynchronize the stream from the interpreter.
	return c.tryFold(fn, allConst && !f.Nondeterministic), nil
}

func (c *Compiler) compileCase(e *ast.CaseExpr) (comp, error) {
	var test Compiled
	if e.Test != nil {
		cp, err := c.compile(e.Test)
		if err != nil {
			return comp{}, err
		}
		test = cp.fn
	}
	whens := make([]Compiled, len(e.Whens))
	whenPreds := make([]CompiledPred, len(e.Whens))
	thens := make([]Compiled, len(e.Thens))
	for i, w := range e.Whens {
		cp, err := c.compile(w)
		if err != nil {
			return comp{}, err
		}
		if e.Test != nil {
			whens[i] = cp.fn
		} else {
			whenPreds[i] = predOf(cp.fn)
		}
		tp, err := c.compile(e.Thens[i])
		if err != nil {
			return comp{}, err
		}
		thens[i] = tp.fn
	}
	var els Compiled
	if e.Else != nil {
		cp, err := c.compile(e.Else)
		if err != nil {
			return comp{}, err
		}
		els = cp.fn
	}
	fn := func(ctx *Ctx) (value.Value, error) {
		if test != nil {
			t, err := test(ctx)
			if err != nil {
				return value.Null, err
			}
			for i, w := range whens {
				wv, err := w(ctx)
				if err != nil {
					return value.Null, err
				}
				if value.Equal(t, wv) == value.TriTrue {
					return thens[i](ctx)
				}
			}
		} else {
			for i, w := range whenPreds {
				t, err := w(ctx)
				if err != nil {
					return value.Null, err
				}
				if t == value.TriTrue {
					return thens[i](ctx)
				}
			}
		}
		if els != nil {
			return els(ctx)
		}
		return value.Null, nil
	}
	return comp{fn: fn}, nil
}

func (c *Compiler) compileComprehension(e *ast.ListComprehension) (comp, error) {
	list, err := c.compile(e.List)
	if err != nil {
		return comp{}, err
	}
	slot := c.Temp()
	c.locals = append(c.locals, localBinding{name: e.Var, slot: slot})
	var where CompiledPred
	if e.Where != nil {
		cp, err := c.compile(e.Where)
		if err != nil {
			c.locals = c.locals[:len(c.locals)-1]
			return comp{}, err
		}
		where = predOf(cp.fn)
	}
	var mapFn Compiled
	if e.Map != nil {
		cp, err := c.compile(e.Map)
		if err != nil {
			c.locals = c.locals[:len(c.locals)-1]
			return comp{}, err
		}
		mapFn = cp.fn
	}
	c.locals = c.locals[:len(c.locals)-1]
	fn := func(ctx *Ctx) (value.Value, error) {
		lv, err := list.fn(ctx)
		if err != nil {
			return value.Null, err
		}
		if lv.IsNull() {
			return value.Null, nil
		}
		if lv.Kind() != value.KindList {
			return value.Null, fmt.Errorf("type error: list comprehension over %s", lv.Kind())
		}
		els := lv.AsList()
		out := make([]value.Value, 0, len(els))
		old := ctx.Frame[slot]
		for _, el := range els {
			ctx.Frame[slot] = el
			keep := value.TriTrue
			if where != nil {
				keep, err = where(ctx)
				if err != nil {
					ctx.Frame[slot] = old
					return value.Null, err
				}
			}
			if keep == value.TriTrue {
				mapped := el
				if mapFn != nil {
					mapped, err = mapFn(ctx)
					if err != nil {
						ctx.Frame[slot] = old
						return value.Null, err
					}
				}
				out = append(out, mapped)
			}
		}
		ctx.Frame[slot] = old
		return value.ListOf(out), nil
	}
	return comp{fn: fn}, nil
}

func (c *Compiler) compileQuantifier(e *ast.Quantifier) (comp, error) {
	list, err := c.compile(e.List)
	if err != nil {
		return comp{}, err
	}
	slot := c.Temp()
	c.locals = append(c.locals, localBinding{name: e.Var, slot: slot})
	pp, err := c.compile(e.Pred)
	c.locals = c.locals[:len(c.locals)-1]
	if err != nil {
		return comp{}, err
	}
	pred := predOf(pp.fn)
	kind := e.Kind
	fn := func(ctx *Ctx) (value.Value, error) {
		lv, err := list.fn(ctx)
		if err != nil {
			return value.Null, err
		}
		if lv.IsNull() {
			return value.Null, nil
		}
		if lv.Kind() != value.KindList {
			return value.Null, fmt.Errorf("type error: %s() over %s", kind, lv.Kind())
		}
		trues, falses, unknowns := 0, 0, 0
		old := ctx.Frame[slot]
		for _, el := range lv.AsList() {
			ctx.Frame[slot] = el
			t, err := pred(ctx)
			if err != nil {
				ctx.Frame[slot] = old
				return value.Null, err
			}
			switch t {
			case value.TriTrue:
				trues++
			case value.TriFalse:
				falses++
			default:
				unknowns++
			}
		}
		ctx.Frame[slot] = old
		switch kind {
		case ast.QuantAll:
			switch {
			case falses > 0:
				return value.False, nil
			case unknowns > 0:
				return value.Null, nil
			default:
				return value.True, nil
			}
		case ast.QuantAny:
			switch {
			case trues > 0:
				return value.True, nil
			case unknowns > 0:
				return value.Null, nil
			default:
				return value.False, nil
			}
		case ast.QuantNone:
			switch {
			case trues > 0:
				return value.False, nil
			case unknowns > 0:
				return value.Null, nil
			default:
				return value.True, nil
			}
		default: // single
			switch {
			case trues > 1:
				return value.False, nil
			case unknowns > 0:
				return value.Null, nil
			case trues == 1:
				return value.True, nil
			default:
				return value.False, nil
			}
		}
	}
	return comp{fn: fn}, nil
}

// constExpr reports whether an expression is constant under exactly the
// rules the per-node konst flags implement: literals compose through
// operators, property access, indexing, slicing, collection literals,
// and deterministic non-aggregate function calls; variables, parameters,
// CASE, comprehensions, and quantifiers do not participate (the last
// three never fold today, and this predicate preserves that). The walk
// allocates nothing, which is the point: it lets compile fold a maximal
// constant subtree by one Eval of the AST instead of building a closure
// per node first.
func constExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Literal:
		return true
	case *ast.PropAccess:
		return constExpr(e.Subject)
	case *ast.Binary:
		return constExpr(e.L) && constExpr(e.R)
	case *ast.Unary:
		switch e.Op {
		case ast.OpNot, ast.OpNeg, ast.OpIsNull, ast.OpIsNotNull:
			return constExpr(e.X)
		}
		// An unknown unary operator never folds (compileUnary returns
		// its closure unfolded), so it is not constant here either.
		return false
	case *ast.FuncCall:
		if functions.IsAggregate(e.Name) {
			return false
		}
		f := functions.Lookup(e.Name)
		if f == nil || f.Nondeterministic {
			return false
		}
		for _, a := range e.Args {
			if !constExpr(a) {
				return false
			}
		}
		return true
	case *ast.ListLit:
		for _, el := range e.Elems {
			if !constExpr(el) {
				return false
			}
		}
		return true
	case *ast.MapLit:
		for _, v := range e.Vals {
			if !constExpr(v) {
				return false
			}
		}
		return true
	case *ast.IndexExpr:
		return constExpr(e.Subject) && constExpr(e.Index)
	case *ast.SliceExpr:
		if !constExpr(e.Subject) {
			return false
		}
		if e.From != nil && !constExpr(e.From) {
			return false
		}
		if e.To != nil && !constExpr(e.To) {
			return false
		}
		return true
	}
	return false
}
