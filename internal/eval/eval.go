// Package eval implements Cypher expression evaluation against a labeled
// property graph and a variable environment. It is shared by the query
// engine's executor and by GQS's synthesizer, which evaluates candidate
// expressions while building queries (§3.4–3.5 of the paper).
package eval

import (
	"fmt"
	"regexp"

	"gqs/internal/cypher/ast"
	"gqs/internal/functions"
	"gqs/internal/graph"
	"gqs/internal/value"
)

// Ctx carries everything an expression evaluation needs: the graph (for
// property access and graph functions), the variable environment, query
// parameters, and the execution-scoped state behind the nondeterministic
// functions (rand(), timestamp()).
type Ctx struct {
	Graph  *graph.Graph
	Env    map[string]value.Value
	Params map[string]value.Value
	// Frame is the slot-addressed environment used by compiled
	// expressions (see Compile): closures produced by a Compiler read
	// variables as Frame[slot] instead of Env[name]. Tree-walking Eval
	// never touches it, so the two evaluation modes coexist on one Ctx.
	Frame []value.Value
	// Exec is the per-execution rand()/timestamp() state. Nil selects the
	// process-global fallback (race-free, not seed-reproducible).
	Exec *functions.ExecState
	// argScratch is the reusable argument stack of evalFuncCall. Nested
	// calls share it with strict stack discipline; it relies on no
	// function implementation retaining the args slice beyond the call
	// (they read values out of it, and values own their own storage).
	argScratch []value.Value
	// gctx is the cached functions.GraphContext adapter: passing &gctx
	// avoids re-boxing a GraphCtx into an interface on every call.
	gctx GraphCtx
}

// GraphCtx adapts a graph.Graph (plus optional execution state) to the
// functions.GraphContext interface.
type GraphCtx struct {
	G    *graph.Graph
	Exec *functions.ExecState
}

// ExecState implements functions.ExecStater.
func (c GraphCtx) ExecState() *functions.ExecState { return c.Exec }

// NodeLabels implements functions.GraphContext.
func (c GraphCtx) NodeLabels(id int64) ([]string, bool) {
	if c.G == nil {
		return nil, false
	}
	n := c.G.Node(id)
	if n == nil {
		return nil, false
	}
	return n.Labels, true
}

// RelType implements functions.GraphContext.
func (c GraphCtx) RelType(id int64) (string, bool) {
	if c.G == nil {
		return "", false
	}
	r := c.G.Rel(id)
	if r == nil {
		return "", false
	}
	return r.Type, true
}

// RelEndpoints implements functions.GraphContext.
func (c GraphCtx) RelEndpoints(id int64) (int64, int64, bool) {
	if c.G == nil {
		return 0, 0, false
	}
	r := c.G.Rel(id)
	if r == nil {
		return 0, 0, false
	}
	return r.Start, r.End, true
}

// EntityProps implements functions.GraphContext.
func (c GraphCtx) EntityProps(id int64, isRel bool) (map[string]value.Value, bool) {
	if c.G == nil {
		return nil, false
	}
	if isRel {
		r := c.G.Rel(id)
		if r == nil {
			return nil, false
		}
		return r.Props, true
	}
	n := c.G.Node(id)
	if n == nil {
		return nil, false
	}
	return n.Props, true
}

// UnknownVariableError reports a reference to a variable that is not in
// scope; in a real GDB this is a compile-time error.
type UnknownVariableError struct{ Name string }

func (e *UnknownVariableError) Error() string {
	return fmt.Sprintf("variable %s is not in scope", e.Name)
}

// ErrAggregateInScalar is returned when an aggregation operator appears
// where a scalar expression is required.
var ErrAggregateInScalar = fmt.Errorf("aggregation is not allowed in this context")

// Eval evaluates the expression in the context.
func Eval(ctx *Ctx, e ast.Expr) (value.Value, error) {
	switch e := e.(type) {
	case *ast.Literal:
		return e.Val, nil
	case *ast.Variable:
		v, ok := ctx.Env[e.Name]
		if !ok {
			return value.Null, &UnknownVariableError{Name: e.Name}
		}
		return v, nil
	case *ast.Parameter:
		v, ok := ctx.Params[e.Name]
		if !ok {
			return value.Null, fmt.Errorf("parameter $%s is not bound", e.Name)
		}
		return v, nil
	case *ast.PropAccess:
		return evalPropAccess(ctx, e)
	case *ast.Binary:
		return evalBinary(ctx, e)
	case *ast.Unary:
		return evalUnary(ctx, e)
	case *ast.FuncCall:
		return evalFuncCall(ctx, e)
	case *ast.ListLit:
		out := make([]value.Value, len(e.Elems))
		for i, el := range e.Elems {
			v, err := Eval(ctx, el)
			if err != nil {
				return value.Null, err
			}
			out[i] = v
		}
		return value.ListOf(out), nil
	case *ast.MapLit:
		out := make(map[string]value.Value, len(e.Keys))
		for i, k := range e.Keys {
			v, err := Eval(ctx, e.Vals[i])
			if err != nil {
				return value.Null, err
			}
			out[k] = v
		}
		return value.Map(out), nil
	case *ast.IndexExpr:
		s, err := Eval(ctx, e.Subject)
		if err != nil {
			return value.Null, err
		}
		i, err := Eval(ctx, e.Index)
		if err != nil {
			return value.Null, err
		}
		return value.Index(s, i)
	case *ast.SliceExpr:
		s, err := Eval(ctx, e.Subject)
		if err != nil {
			return value.Null, err
		}
		from, to := value.Null, value.Null
		if e.From != nil {
			if from, err = Eval(ctx, e.From); err != nil {
				return value.Null, err
			}
		}
		if e.To != nil {
			if to, err = Eval(ctx, e.To); err != nil {
				return value.Null, err
			}
		}
		return value.Slice(s, from, to)
	case *ast.CaseExpr:
		return evalCase(ctx, e)
	case *ast.ListComprehension:
		return evalComprehension(ctx, e)
	case *ast.Quantifier:
		return evalQuantifier(ctx, e)
	default:
		return value.Null, fmt.Errorf("cannot evaluate %T", e)
	}
}

// restoreLocal undoes a comprehension/quantifier variable binding. The
// save happens once before the element loop (the bound name is constant
// across elements), so the per-element hot path allocates no closures.
func restoreLocal(ctx *Ctx, name string, old value.Value, had bool) {
	if had {
		ctx.Env[name] = old
	} else {
		delete(ctx.Env, name)
	}
}

func evalComprehension(ctx *Ctx, e *ast.ListComprehension) (value.Value, error) {
	list, err := Eval(ctx, e.List)
	if err != nil {
		return value.Null, err
	}
	if list.IsNull() {
		return value.Null, nil
	}
	if list.Kind() != value.KindList {
		return value.Null, fmt.Errorf("type error: list comprehension over %s", list.Kind())
	}
	els := list.AsList()
	out := make([]value.Value, 0, len(els))
	old, had := ctx.Env[e.Var]
	defer restoreLocal(ctx, e.Var, old, had)
	for _, el := range els {
		ctx.Env[e.Var] = el
		keep := value.TriTrue
		if e.Where != nil {
			keep, err = EvalPredicate(ctx, e.Where)
			if err != nil {
				return value.Null, err
			}
		}
		if keep == value.TriTrue {
			mapped := el
			if e.Map != nil {
				mapped, err = Eval(ctx, e.Map)
				if err != nil {
					return value.Null, err
				}
			}
			out = append(out, mapped)
		}
	}
	return value.ListOf(out), nil
}

func evalQuantifier(ctx *Ctx, e *ast.Quantifier) (value.Value, error) {
	list, err := Eval(ctx, e.List)
	if err != nil {
		return value.Null, err
	}
	if list.IsNull() {
		return value.Null, nil
	}
	if list.Kind() != value.KindList {
		return value.Null, fmt.Errorf("type error: %s() over %s", e.Kind, list.Kind())
	}
	trues, falses, unknowns := 0, 0, 0
	old, had := ctx.Env[e.Var]
	defer restoreLocal(ctx, e.Var, old, had)
	for _, el := range list.AsList() {
		ctx.Env[e.Var] = el
		t, err := EvalPredicate(ctx, e.Pred)
		if err != nil {
			return value.Null, err
		}
		switch t {
		case value.TriTrue:
			trues++
		case value.TriFalse:
			falses++
		default:
			unknowns++
		}
	}
	// Three-valued quantifier semantics, as in openCypher.
	switch e.Kind {
	case ast.QuantAll:
		switch {
		case falses > 0:
			return value.False, nil
		case unknowns > 0:
			return value.Null, nil
		default:
			return value.True, nil
		}
	case ast.QuantAny:
		switch {
		case trues > 0:
			return value.True, nil
		case unknowns > 0:
			return value.Null, nil
		default:
			return value.False, nil
		}
	case ast.QuantNone:
		switch {
		case trues > 0:
			return value.False, nil
		case unknowns > 0:
			return value.Null, nil
		default:
			return value.True, nil
		}
	default: // single
		switch {
		case trues > 1:
			return value.False, nil
		case unknowns > 0:
			return value.Null, nil
		case trues == 1:
			return value.True, nil
		default:
			return value.False, nil
		}
	}
}

func evalPropAccess(ctx *Ctx, e *ast.PropAccess) (value.Value, error) {
	s, err := Eval(ctx, e.Subject)
	if err != nil {
		return value.Null, err
	}
	switch s.Kind() {
	case value.KindNull:
		return value.Null, nil
	case value.KindMap:
		if v, ok := s.AsMap()[e.Name]; ok {
			return v, nil
		}
		return value.Null, nil
	case value.KindNode, value.KindRel:
		props, ok := GraphCtx{G: ctx.Graph}.EntityProps(s.EntityID(), s.Kind() == value.KindRel)
		if !ok {
			return value.Null, fmt.Errorf("unknown entity %d", s.EntityID())
		}
		if v, ok := props[e.Name]; ok {
			return v, nil
		}
		return value.Null, nil
	default:
		return value.Null, fmt.Errorf("type error: cannot access property %s of %s", e.Name, s.Kind())
	}
}

func evalBinary(ctx *Ctx, e *ast.Binary) (value.Value, error) {
	// Logical operators first: they interpret operands as predicates.
	switch e.Op {
	case ast.OpAnd, ast.OpOr, ast.OpXor:
		lt, err := EvalPredicate(ctx, e.L)
		if err != nil {
			return value.Null, err
		}
		rt, err := EvalPredicate(ctx, e.R)
		if err != nil {
			return value.Null, err
		}
		switch e.Op {
		case ast.OpAnd:
			return lt.And(rt).Value(), nil
		case ast.OpOr:
			return lt.Or(rt).Value(), nil
		default:
			return lt.Xor(rt).Value(), nil
		}
	}
	l, err := Eval(ctx, e.L)
	if err != nil {
		return value.Null, err
	}
	r, err := Eval(ctx, e.R)
	if err != nil {
		return value.Null, err
	}
	switch e.Op {
	case ast.OpAdd:
		return value.Add(l, r)
	case ast.OpSub:
		return value.Sub(l, r)
	case ast.OpMul:
		return value.Mul(l, r)
	case ast.OpDiv:
		return value.Div(l, r)
	case ast.OpMod:
		return value.Mod(l, r)
	case ast.OpPow:
		return value.Pow(l, r)
	case ast.OpEq:
		return value.Equal(l, r).Value(), nil
	case ast.OpNeq:
		return value.NotEqual(l, r).Value(), nil
	case ast.OpLt:
		return value.Less(l, r).Value(), nil
	case ast.OpLe:
		return value.LessEq(l, r).Value(), nil
	case ast.OpGt:
		return value.Greater(l, r).Value(), nil
	case ast.OpGe:
		return value.GreaterEq(l, r).Value(), nil
	case ast.OpStartsWith:
		return value.StartsWith(l, r).Value(), nil
	case ast.OpEndsWith:
		return value.EndsWith(l, r).Value(), nil
	case ast.OpContains:
		return value.Contains(l, r).Value(), nil
	case ast.OpIn:
		return value.In(l, r).Value(), nil
	case ast.OpRegex:
		return evalRegex(l, r)
	default:
		return value.Null, fmt.Errorf("unknown binary operator %v", e.Op)
	}
}

func evalRegex(l, r value.Value) (value.Value, error) {
	if l.IsNull() || r.IsNull() {
		return value.Null, nil
	}
	if l.Kind() != value.KindString || r.Kind() != value.KindString {
		return value.Null, nil
	}
	re, err := regexp.Compile("^(?:" + r.AsString() + ")$")
	if err != nil {
		return value.Null, fmt.Errorf("invalid regular expression %q: %v", r.AsString(), err)
	}
	return value.Bool(re.MatchString(l.AsString())), nil
}

func evalUnary(ctx *Ctx, e *ast.Unary) (value.Value, error) {
	switch e.Op {
	case ast.OpNot:
		t, err := EvalPredicate(ctx, e.X)
		if err != nil {
			return value.Null, err
		}
		return t.Not().Value(), nil
	case ast.OpNeg:
		x, err := Eval(ctx, e.X)
		if err != nil {
			return value.Null, err
		}
		return value.Neg(x)
	case ast.OpIsNull, ast.OpIsNotNull:
		x, err := Eval(ctx, e.X)
		if err != nil {
			return value.Null, err
		}
		isNull := x.IsNull()
		if e.Op == ast.OpIsNotNull {
			return value.Bool(!isNull), nil
		}
		return value.Bool(isNull), nil
	default:
		return value.Null, fmt.Errorf("unknown unary operator %v", e.Op)
	}
}

func evalFuncCall(ctx *Ctx, e *ast.FuncCall) (value.Value, error) {
	if functions.IsAggregate(e.Name) {
		return value.Null, ErrAggregateInScalar
	}
	f := functions.Lookup(e.Name)
	if f == nil {
		return value.Null, fmt.Errorf("unknown function %s", e.Name)
	}
	base := len(ctx.argScratch)
	for _, a := range e.Args {
		v, err := Eval(ctx, a)
		if err != nil {
			ctx.argScratch = ctx.argScratch[:base]
			return value.Null, err
		}
		ctx.argScratch = append(ctx.argScratch, v)
	}
	ctx.gctx.G, ctx.gctx.Exec = ctx.Graph, ctx.Exec
	res, err := functions.Invoke(f, &ctx.gctx, ctx.argScratch[base:])
	ctx.argScratch = ctx.argScratch[:base]
	return res, err
}

func evalCase(ctx *Ctx, e *ast.CaseExpr) (value.Value, error) {
	if e.Test != nil {
		t, err := Eval(ctx, e.Test)
		if err != nil {
			return value.Null, err
		}
		for i, w := range e.Whens {
			wv, err := Eval(ctx, w)
			if err != nil {
				return value.Null, err
			}
			if value.Equal(t, wv) == value.TriTrue {
				return Eval(ctx, e.Thens[i])
			}
		}
	} else {
		for i, w := range e.Whens {
			t, err := EvalPredicate(ctx, w)
			if err != nil {
				return value.Null, err
			}
			if t == value.TriTrue {
				return Eval(ctx, e.Thens[i])
			}
		}
	}
	if e.Else != nil {
		return Eval(ctx, e.Else)
	}
	return value.Null, nil
}

// EvalPredicate evaluates an expression as a three-valued predicate, as
// WHERE subclauses do. Non-boolean results are a type error.
func EvalPredicate(ctx *Ctx, e ast.Expr) (value.Tri, error) {
	v, err := Eval(ctx, e)
	if err != nil {
		return value.TriUnknown, err
	}
	t, ok := v.Truth()
	if !ok {
		return value.TriUnknown, fmt.Errorf("type error: expected a boolean predicate, got %s", v.Kind())
	}
	return t, nil
}

// HasAggregate reports whether the expression contains an aggregation
// operator at any depth.
func HasAggregate(e ast.Expr) bool {
	found := false
	ast.WalkExprs(e, func(x ast.Expr) bool {
		if f, ok := x.(*ast.FuncCall); ok && (functions.IsAggregate(f.Name) || f.Star) {
			found = true
			return false
		}
		return true
	})
	return found
}
