package eval

import (
	"strings"
	"testing"

	"gqs/internal/cypher/parser"
	"gqs/internal/graph"
	"gqs/internal/value"
)

func testGraph(t *testing.T) (*graph.Graph, map[string]value.Value) {
	t.Helper()
	g := graph.New()
	a := g.NewNode("USER")
	a.Props["name"] = value.Str("Alice")
	a.Props["age"] = value.Int(30)
	b := g.NewNode("MOVIE")
	b.Props["name"] = value.Str("Heat")
	b.Props["genre"] = value.List(value.Str("Drama"), value.Str("Crime"))
	r, _ := g.NewRel(a.ID, b.ID, "LIKE")
	r.Props["rating"] = value.Int(10)
	env := map[string]value.Value{
		"p": value.Node(a.ID),
		"m": value.Node(b.ID),
		"r": value.Rel(r.ID),
		"x": value.Int(4),
	}
	return g, env
}

func evalStr(t *testing.T, src string) value.Value {
	t.Helper()
	g, env := testGraph(t)
	e, err := parser.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := Eval(&Ctx{Graph: g, Env: env}, e)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestEvalBasics(t *testing.T) {
	cases := map[string]value.Value{
		`1 + 2 * 3`:                   value.Int(7),
		`(1 + 2) * 3`:                 value.Int(9),
		`'a' + 'b'`:                   value.Str("ab"),
		`p.name`:                      value.Str("Alice"),
		`r.rating`:                    value.Int(10),
		`p.missing`:                   value.Null,
		`m.genre[0]`:                  value.Str("Drama"),
		`m.genre[0..1]`:               value.List(value.Str("Drama")),
		`x = 4`:                       value.True,
		`x < 3`:                       value.False,
		`p.name STARTS WITH 'Al'`:     value.True,
		`p.name ENDS WITH 'ce'`:       value.True,
		`p.name CONTAINS 'lic'`:       value.True,
		`x IN [1, 4, 9]`:              value.True,
		`NOT (x = 4)`:                 value.False,
		`x = 4 AND p.age = 30`:        value.True,
		`x = 4 OR 1 = 2`:              value.True,
		`x = 4 XOR x = 4`:             value.False,
		`p.missing IS NULL`:           value.True,
		`p.name IS NOT NULL`:          value.True,
		`-x`:                          value.Int(-4),
		`[x, 'a']`:                    value.List(value.Int(4), value.Str("a")),
		`{k: x}.k`:                    value.Int(4),
		`size(m.genre)`:               value.Int(2),
		`left(m.name, x)`:             value.Str("Heat"),
		`char_length(p.name) + 1`:     value.Int(6),
		`endNode(r) = m`:              value.True,
		`startNode(r).name`:           value.Str("Alice"),
		`labels(m)[0]`:                value.Str("MOVIE"),
		`type(r)`:                     value.Str("LIKE"),
		`id(p)`:                       value.Int(0),
		`coalesce(p.missing, 'dflt')`: value.Str("dflt"),
		`CASE WHEN x > 3 THEN 'big' ELSE 'small' END`: value.Str("big"),
		`CASE x WHEN 4 THEN 'four' ELSE 'other' END`:  value.Str("four"),
		`CASE x WHEN 5 THEN 'five' END`:               value.Null,
		`'Alice' =~ 'Al.*'`:                           value.True,
		`'Alice' =~ 'xx.*'`:                           value.False,
		`null + 1`:                                    value.Null,
		`null = null`:                                 value.Null,
	}
	for src, want := range cases {
		got := evalStr(t, src)
		if want.IsNull() {
			if !got.IsNull() {
				t.Errorf("%s = %v, want null", src, got)
			}
			continue
		}
		if !value.Equivalent(got, want) {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	g, env := testGraph(t)
	for _, src := range []string{
		`missing_var`,
		`1 + true`,
		`x.prop`,       // property access on integer
		`unknownFn(1)`, // unknown function
		`count(x)`,     // aggregate in scalar position
		`1 AND 2`,      // non-boolean predicate operand
		`'a' =~ '['`,   // invalid regex
		`$p`,           // unbound parameter
	} {
		e, err := parser.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Eval(&Ctx{Graph: g, Env: env}, e); err == nil {
			t.Errorf("expected error for %s", src)
		}
	}
}

func TestUnknownVariableError(t *testing.T) {
	e, _ := parser.ParseExpr(`zz`)
	_, err := Eval(&Ctx{Env: map[string]value.Value{}}, e)
	var uv *UnknownVariableError
	if err == nil || !strings.Contains(err.Error(), "zz") {
		t.Fatalf("err = %v", err)
	}
	if ok := errorsAs(err, &uv); !ok || uv.Name != "zz" {
		t.Errorf("expected UnknownVariableError, got %T", err)
	}
}

func errorsAs(err error, target **UnknownVariableError) bool {
	if e, ok := err.(*UnknownVariableError); ok {
		*target = e
		return true
	}
	return false
}

func TestParameters(t *testing.T) {
	e, _ := parser.ParseExpr(`$a + 1`)
	v, err := Eval(&Ctx{
		Env:    map[string]value.Value{},
		Params: map[string]value.Value{"a": value.Int(41)},
	}, e)
	if err != nil || v.AsInt() != 42 {
		t.Errorf("parameter eval = %v, %v", v, err)
	}
}

func TestNullPropagationThroughAccess(t *testing.T) {
	// OPTIONAL MATCH binds variables to null; property access on null
	// must yield null, not an error.
	e, _ := parser.ParseExpr(`n.k0`)
	v, err := Eval(&Ctx{Env: map[string]value.Value{"n": value.Null}}, e)
	if err != nil || !v.IsNull() {
		t.Errorf("null.k0 = %v, %v", v, err)
	}
}

func TestEvalPredicate(t *testing.T) {
	g, env := testGraph(t)
	ctx := &Ctx{Graph: g, Env: env}
	for src, want := range map[string]value.Tri{
		`x = 4`:         value.TriTrue,
		`x = 5`:         value.TriFalse,
		`p.missing = 1`: value.TriUnknown,
	} {
		e, _ := parser.ParseExpr(src)
		got, err := EvalPredicate(ctx, e)
		if err != nil || got != want {
			t.Errorf("predicate %s = %v (%v), want %v", src, got, err, want)
		}
	}
}

func TestHasAggregate(t *testing.T) {
	for src, want := range map[string]bool{
		`count(x)`:      true,
		`1 + sum(x)`:    true,
		`collect(x)[0]`: true,
		`count(*)`:      true,
		`size([1])`:     false,
		`abs(x) + 1`:    false,
	} {
		e, err := parser.ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		if got := HasAggregate(e); got != want {
			t.Errorf("HasAggregate(%s) = %v, want %v", src, got, want)
		}
	}
}

func TestGraphCtxMissingEntities(t *testing.T) {
	c := GraphCtx{}
	if _, ok := c.NodeLabels(0); ok {
		t.Error("nil graph must report !ok")
	}
	if _, ok := c.RelType(0); ok {
		t.Error("nil graph must report !ok")
	}
	if _, _, ok := c.RelEndpoints(0); ok {
		t.Error("nil graph must report !ok")
	}
	if _, ok := c.EntityProps(0, false); ok {
		t.Error("nil graph must report !ok")
	}
	g := graph.New()
	c = GraphCtx{G: g}
	if _, ok := c.NodeLabels(99); ok {
		t.Error("missing node must report !ok")
	}
	if _, ok := c.EntityProps(99, true); ok {
		t.Error("missing rel must report !ok")
	}
}
