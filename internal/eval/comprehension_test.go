package eval

import (
	"testing"

	"gqs/internal/cypher/parser"
	"gqs/internal/value"
)

func evalExprStr(t *testing.T, src string, env map[string]value.Value) (value.Value, error) {
	t.Helper()
	e, err := parser.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	if env == nil {
		env = map[string]value.Value{}
	}
	return Eval(&Ctx{Env: env}, e)
}

func TestListComprehensionEval(t *testing.T) {
	cases := map[string]value.Value{
		`[x IN [1, 2, 3] | x * 2]`:              value.List(value.Int(2), value.Int(4), value.Int(6)),
		`[x IN [1, 2, 3] WHERE x > 1]`:          value.List(value.Int(2), value.Int(3)),
		`[x IN [1, 2, 3] WHERE x > 1 | -x]`:     value.List(value.Int(-2), value.Int(-3)),
		`[x IN []]`:                             value.List(),
		`size([x IN [1, null, 3] WHERE x > 0])`: value.Int(2),
		`[x IN [[1], [2, 3]] | size(x)]`:        value.List(value.Int(1), value.Int(2)),
	}
	for src, want := range cases {
		got, err := evalExprStr(t, src, nil)
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		if !value.Equivalent(got, want) {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
	// Null list yields null.
	if got, err := evalExprStr(t, `[x IN null | x]`, nil); err != nil || !got.IsNull() {
		t.Errorf("comprehension over null = %v, %v", got, err)
	}
	// Non-list is a type error.
	if _, err := evalExprStr(t, `[x IN 5 | x]`, nil); err == nil {
		t.Error("comprehension over scalar must error")
	}
}

func TestComprehensionShadowing(t *testing.T) {
	env := map[string]value.Value{"x": value.Int(100)}
	got, err := evalExprStr(t, `[x IN [1, 2] | x] + x`, env)
	if err != nil {
		t.Fatal(err)
	}
	// [1,2] + 100 appends: [1, 2, 100]; the outer x must be restored.
	want := value.List(value.Int(1), value.Int(2), value.Int(100))
	if !value.Equivalent(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
	if env["x"].AsInt() != 100 {
		t.Error("outer binding not restored")
	}
}

func TestQuantifierEval(t *testing.T) {
	T, F := value.True, value.False
	cases := map[string]value.Value{
		`all(x IN [1, 2] WHERE x > 0)`:      T,
		`all(x IN [1, -2] WHERE x > 0)`:     F,
		`all(x IN [] WHERE x > 0)`:          T,
		`any(x IN [1, -2] WHERE x > 0)`:     T,
		`any(x IN [-1, -2] WHERE x > 0)`:    F,
		`any(x IN [] WHERE x > 0)`:          F,
		`none(x IN [-1] WHERE x > 0)`:       T,
		`none(x IN [1] WHERE x > 0)`:        F,
		`single(x IN [1, -2] WHERE x > 0)`:  T,
		`single(x IN [1, 2] WHERE x > 0)`:   F,
		`single(x IN [-1, -2] WHERE x > 0)`: F,
	}
	for src, want := range cases {
		got, err := evalExprStr(t, src, nil)
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		if !value.Equivalent(got, want) {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
	// Unknown propagation.
	for src, wantNull := range map[string]bool{
		`all(x IN [1, null] WHERE x > 0)`:    true,  // no false, one unknown
		`all(x IN [-1, null] WHERE x > 0)`:   false, // a false decides
		`any(x IN [null, 1] WHERE x > 0)`:    false, // a true decides
		`any(x IN [null, -1] WHERE x > 0)`:   true,
		`single(x IN [1, null] WHERE x > 0)`: true,
		`none(x IN [null] WHERE x > 0)`:      true,
	} {
		got, err := evalExprStr(t, src, nil)
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		if got.IsNull() != wantNull {
			t.Errorf("%s = %v, wantNull=%v", src, got, wantNull)
		}
	}
	// Quantifier over null list is null.
	if got, err := evalExprStr(t, `any(x IN null WHERE x = 1)`, nil); err != nil || !got.IsNull() {
		t.Errorf("quantifier over null = %v, %v", got, err)
	}
}

func TestComprehensionInQuery(t *testing.T) {
	// End to end through the engine-facing eval path: WHERE with a
	// quantifier over a stored list property.
	e, err := parser.ParseExpr(`any(g IN genres WHERE g = 'Drama')`)
	if err != nil {
		t.Fatal(err)
	}
	env := map[string]value.Value{"genres": value.List(value.Str("Drama"), value.Str("Crime"))}
	got, err := Eval(&Ctx{Env: env}, e)
	if err != nil || !got.AsBool() {
		t.Errorf("quantifier over property = %v, %v", got, err)
	}
}
