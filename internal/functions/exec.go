package functions

import (
	"math/rand"
	"sync/atomic"
)

// ExecState is the per-execution state behind the nondeterministic scalar
// functions: the RNG rand() draws from and the logical clock timestamp()
// increments. Each query execution owns one, threaded to the function
// implementations through the GraphContext (see ExecStater), so
// concurrent executions never share mutable state and a fixed seed
// reproduces the same values.
//
// A nil *ExecState is valid and selects the process-global fallback:
// rand() draws from the (internally locked) global math/rand source and
// timestamp() from an atomic counter — race-free, but not reproducible
// per seed.
type ExecState struct {
	seed int64
	rng  *rand.Rand
	ts   int64
}

// NewExecState creates execution state reproducible from seed. The RNG
// is seeded lazily on the first Rand call: seeding math/rand's source is
// far more expensive than a whole typical query execution, and most
// queries never call rand().
func NewExecState(seed int64) *ExecState {
	return &ExecState{seed: seed}
}

// Rand returns the next rand() draw.
func (s *ExecState) Rand() float64 {
	if s == nil {
		return rand.Float64()
	}
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(s.seed))
	}
	return s.rng.Float64()
}

// Timestamp returns the next timestamp() tick. A logical clock rather
// than wall time keeps runs reproducible.
func (s *ExecState) Timestamp() int64 {
	if s == nil {
		return fallbackTimestamp.Add(1)
	}
	s.ts++
	return s.ts
}

// fallbackTimestamp is the atomic logical clock for callers that do not
// supply an ExecState.
var fallbackTimestamp atomic.Int64

// ExecStater is implemented by GraphContexts that carry per-execution
// state. Contexts that don't (or that return nil) get the global
// fallback, so existing GraphContext implementations keep working.
type ExecStater interface{ ExecState() *ExecState }

// execOf extracts the execution state from a GraphContext; nil selects
// the fallback behaviour of the ExecState methods.
func execOf(ctx GraphContext) *ExecState {
	if es, ok := ctx.(ExecStater); ok {
		return es.ExecState()
	}
	return nil
}

// DeriveSeed derives the seed of an independent logical substream
// (a campaign shard, one execution's ExecState) from a base seed and the
// substream index, using the splitmix64 finalizer so that adjacent
// indices yield well-decorrelated streams.
func DeriveSeed(seed, stream int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(stream)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
