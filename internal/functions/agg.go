package functions

import (
	"math"
	"sort"
	"strings"

	"gqs/internal/value"
)

// Aggregator accumulates values of one group during WITH/RETURN
// aggregation. Implementations skip null inputs, as Cypher aggregates do.
type Aggregator interface {
	Add(v value.Value) error
	Result() value.Value
}

// AggSpec describes one aggregation operator.
type AggSpec struct {
	Name string
	// HasParam marks two-argument aggregates (percentileCont/Disc); the
	// second argument is evaluated once per group and passed to New.
	HasParam bool
	Return   TypeClass
	New      func(param value.Value) Aggregator
}

var aggRegistry = map[string]*AggSpec{}
var aggOrdered []*AggSpec

func registerAgg(s *AggSpec) {
	aggRegistry[strings.ToLower(s.Name)] = s
	// Canonical-spelling fast path, as in the scalar registry.
	aggRegistry[s.Name] = s
	aggOrdered = append(aggOrdered, s)
}

// LookupAgg returns the aggregation operator with the given name, or nil.
// The canonical spelling avoids the ToLower allocation.
func LookupAgg(name string) *AggSpec {
	if s, ok := aggRegistry[name]; ok {
		return s
	}
	return aggRegistry[strings.ToLower(name)]
}

// AllAggs returns every aggregation operator.
func AllAggs() []*AggSpec { return aggOrdered }

// IsAggregate reports whether name refers to an aggregation operator.
func IsAggregate(name string) bool { return LookupAgg(name) != nil }

func init() {
	registerAgg(&AggSpec{Name: "count", Return: TInt, New: func(value.Value) Aggregator { return &countAgg{} }})
	registerAgg(&AggSpec{Name: "collect", Return: TList, New: func(value.Value) Aggregator { return &collectAgg{} }})
	registerAgg(&AggSpec{Name: "sum", Return: TNum, New: func(value.Value) Aggregator { return &sumAgg{} }})
	registerAgg(&AggSpec{Name: "avg", Return: TFloat, New: func(value.Value) Aggregator { return &avgAgg{} }})
	registerAgg(&AggSpec{Name: "min", Return: TAny, New: func(value.Value) Aggregator { return &minMaxAgg{min: true} }})
	registerAgg(&AggSpec{Name: "max", Return: TAny, New: func(value.Value) Aggregator { return &minMaxAgg{} }})
	registerAgg(&AggSpec{Name: "stDev", Return: TFloat, New: func(value.Value) Aggregator { return &stdevAgg{sample: true} }})
	registerAgg(&AggSpec{Name: "stDevP", Return: TFloat, New: func(value.Value) Aggregator { return &stdevAgg{} }})
	registerAgg(&AggSpec{Name: "percentileCont", HasParam: true, Return: TFloat,
		New: func(p value.Value) Aggregator { return &percentileAgg{p: p, cont: true} }})
	registerAgg(&AggSpec{Name: "percentileDisc", HasParam: true, Return: TNum,
		New: func(p value.Value) Aggregator { return &percentileAgg{p: p} }})
}

type countAgg struct{ n int64 }

func (a *countAgg) Add(v value.Value) error {
	if !v.IsNull() {
		a.n++
	}
	return nil
}
func (a *countAgg) Result() value.Value { return value.Int(a.n) }

// CountStar returns an aggregator for count(*), which counts rows
// including nulls.
func CountStar() Aggregator { return &countStarAgg{} }

type countStarAgg struct{ n int64 }

func (a *countStarAgg) Add(value.Value) error { a.n++; return nil }
func (a *countStarAgg) Result() value.Value   { return value.Int(a.n) }

type collectAgg struct{ vs []value.Value }

func (a *collectAgg) Add(v value.Value) error {
	if !v.IsNull() {
		a.vs = append(a.vs, v)
	}
	return nil
}
func (a *collectAgg) Result() value.Value { return value.ListOf(a.vs) }

type sumAgg struct {
	i       int64
	f       float64
	isFloat bool
	saw     bool
}

func (a *sumAgg) Add(v value.Value) error {
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindInt:
		a.saw = true
		if a.isFloat {
			a.f += float64(v.AsInt())
		} else {
			a.i += v.AsInt()
		}
	case value.KindFloat:
		a.saw = true
		if !a.isFloat {
			a.isFloat = true
			a.f = float64(a.i)
		}
		a.f += v.AsFloat()
	default:
		return argErr("sum", "expected a number, got %s", v.Kind())
	}
	return nil
}

func (a *sumAgg) Result() value.Value {
	if a.isFloat {
		return value.Float(a.f)
	}
	return value.Int(a.i)
}

type avgAgg struct {
	sum float64
	n   int64
}

func (a *avgAgg) Add(v value.Value) error {
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindInt, value.KindFloat:
		a.sum += v.AsFloat()
		a.n++
		return nil
	}
	return argErr("avg", "expected a number, got %s", v.Kind())
}

func (a *avgAgg) Result() value.Value {
	if a.n == 0 {
		return value.Null
	}
	return value.Float(a.sum / float64(a.n))
}

type minMaxAgg struct {
	min  bool
	best value.Value
	saw  bool
}

func (a *minMaxAgg) Add(v value.Value) error {
	if v.IsNull() {
		return nil
	}
	if !a.saw {
		a.best, a.saw = v, true
		return nil
	}
	c := value.OrderCompare(v, a.best)
	if (a.min && c < 0) || (!a.min && c > 0) {
		a.best = v
	}
	return nil
}

func (a *minMaxAgg) Result() value.Value {
	if !a.saw {
		return value.Null
	}
	return a.best
}

type stdevAgg struct {
	sample bool
	vs     []float64
}

func (a *stdevAgg) Add(v value.Value) error {
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindInt, value.KindFloat:
		a.vs = append(a.vs, v.AsFloat())
		return nil
	}
	return argErr("stDev", "expected a number, got %s", v.Kind())
}

func (a *stdevAgg) Result() value.Value {
	n := len(a.vs)
	if n < 2 {
		return value.Float(0)
	}
	var mean float64
	for _, x := range a.vs {
		mean += x
	}
	mean /= float64(n)
	var ss float64
	for _, x := range a.vs {
		d := x - mean
		ss += d * d
	}
	div := float64(n)
	if a.sample {
		div = float64(n - 1)
	}
	return value.Float(math.Sqrt(ss / div))
}

type percentileAgg struct {
	p    value.Value
	cont bool
	vs   []float64
	// orig keeps the original elements for percentileDisc, which returns
	// one of its inputs unchanged — an integer input must yield an
	// integer, as Neo4j's percentileDisc does.
	orig []value.Value
}

func (a *percentileAgg) Add(v value.Value) error {
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindInt, value.KindFloat:
		a.vs = append(a.vs, v.AsFloat())
		if !a.cont {
			a.orig = append(a.orig, v)
		}
		return nil
	}
	return argErr("percentile", "expected a number, got %s", v.Kind())
}

func (a *percentileAgg) Result() value.Value {
	if len(a.vs) == 0 {
		return value.Null
	}
	if !a.p.IsNumber() {
		return value.Null
	}
	p := a.p.AsFloat()
	if p < 0 || p > 1 {
		return value.Null
	}
	sort.Float64s(a.vs)
	if a.cont {
		pos := p * float64(len(a.vs)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo == hi {
			return value.Float(a.vs[lo])
		}
		frac := pos - float64(lo)
		return value.Float(a.vs[lo]*(1-frac) + a.vs[hi]*frac)
	}
	// Discrete percentile returns the selected element itself, type
	// intact (a stable sort keeps numerically-equal ints and floats in
	// arrival order, so the pick is deterministic).
	sort.SliceStable(a.orig, func(i, j int) bool {
		return a.orig[i].AsFloat() < a.orig[j].AsFloat()
	})
	idx := int(math.Ceil(p*float64(len(a.orig)))) - 1
	if idx < 0 {
		idx = 0
	}
	return a.orig[idx]
}
