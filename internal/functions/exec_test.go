package functions

import (
	"sync"
	"testing"

	"gqs/internal/value"
)

// execCtx is a GraphContext stub carrying only an ExecState; the
// graph-dependent methods are never reached by rand()/timestamp().
type execCtx struct {
	GraphContext
	st *ExecState
}

func (c execCtx) ExecState() *ExecState { return c.st }

func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(7, 3) != DeriveSeed(7, 3) {
		t.Fatal("DeriveSeed must be a pure function")
	}
	seen := map[int64]bool{}
	for stream := int64(0); stream < 100; stream++ {
		s := DeriveSeed(42, stream)
		if seen[s] {
			t.Fatalf("stream %d collides with an earlier stream", stream)
		}
		seen[s] = true
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("different campaign seeds must derive different streams")
	}
	// seed 0, stream 0 must not degenerate to the zero state.
	if DeriveSeed(0, 0) == 0 {
		t.Fatal("DeriveSeed(0, 0) must mix to a nonzero seed")
	}
}

func TestExecStateReproducible(t *testing.T) {
	a, b := NewExecState(99), NewExecState(99)
	for i := 0; i < 10; i++ {
		if a.Rand() != b.Rand() {
			t.Fatal("same seed must replay the same rand() stream")
		}
		if a.Timestamp() != b.Timestamp() {
			t.Fatal("same seed must replay the same timestamp() stream")
		}
	}
	c := NewExecState(100)
	same := true
	for i := 0; i < 10; i++ {
		if a.Rand() != c.Rand() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds must diverge")
	}
}

func TestExecStateTimestampMonotonic(t *testing.T) {
	s := NewExecState(5)
	prev := s.Timestamp()
	for i := 0; i < 100; i++ {
		ts := s.Timestamp()
		if ts <= prev {
			t.Fatalf("timestamp() must advance: %d then %d", prev, ts)
		}
		prev = ts
	}
}

// TestExecStateNilFallbackConcurrent hammers the nil-receiver fallback
// from many goroutines; under -race this is the regression test for the
// unsynchronized package-global counter the fallback replaced.
func TestExecStateNilFallbackConcurrent(t *testing.T) {
	var nilState *ExecState
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := map[int64]bool{}
	dup := false
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = nilState.Rand()
				ts := nilState.Timestamp()
				mu.Lock()
				if seen[ts] {
					dup = true
				}
				seen[ts] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if dup {
		t.Fatal("fallback timestamps must be unique across goroutines")
	}
}

// TestRandTimestampUseExecState ties the scalar functions to the
// execution-scoped state: same seed, same values; no seed, no crash.
func TestRandTimestampUseExecState(t *testing.T) {
	call := func(name string, ctx GraphContext) value.Value {
		t.Helper()
		v, err := Invoke(Lookup(name), ctx, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return v
	}
	a := call("rand", execCtx{st: NewExecState(7)})
	b := call("rand", execCtx{st: NewExecState(7)})
	if a.AsFloat() != b.AsFloat() {
		t.Fatal("rand() must replay per execution seed")
	}
	t1 := call("timestamp", execCtx{st: NewExecState(7)})
	t2 := call("timestamp", execCtx{st: NewExecState(7)})
	if t1.AsInt() != t2.AsInt() {
		t.Fatal("timestamp() must replay per execution seed")
	}
	// A context without ExecState (and a nil context) falls back safely.
	if v := call("rand", execCtx{}); v.AsFloat() < 0 || v.AsFloat() >= 1 {
		t.Fatal("fallback rand() out of range")
	}
	if v := call("timestamp", nil); v.AsInt() <= 0 {
		t.Fatal("fallback timestamp() must be positive")
	}
}

func TestPercentileDiscPreservesType(t *testing.T) {
	feed := func(p float64, vs ...value.Value) value.Value {
		t.Helper()
		spec := LookupAgg("percentileDisc")
		a := spec.New(value.Float(p))
		for _, v := range vs {
			if err := a.Add(v); err != nil {
				t.Fatalf("percentileDisc: %v", err)
			}
		}
		return a.Result()
	}
	// Neo4j returns the original element, so integer inputs stay Int.
	if v := feed(0.5, value.Int(1), value.Int(2), value.Int(3)); v.Kind() != value.KindInt || v.AsInt() != 2 {
		t.Errorf("percentileDisc over ints = %v (%v), want Int 2", v, v.Kind())
	}
	if v := feed(0.5, value.Float(1.5), value.Float(2.5)); v.Kind() != value.KindFloat || v.AsFloat() != 1.5 {
		t.Errorf("percentileDisc over floats = %v (%v), want Float 1.5", v, v.Kind())
	}
	// Mixed input returns whichever original element sits at the rank.
	if v := feed(1.0, value.Int(1), value.Float(2.5)); v.Kind() != value.KindFloat || v.AsFloat() != 2.5 {
		t.Errorf("percentileDisc mixed = %v (%v), want Float 2.5", v, v.Kind())
	}
	if v := feed(0.0, value.Int(3), value.Int(1), value.Int(2)); v.Kind() != value.KindInt || v.AsInt() != 1 {
		t.Errorf("percentileDisc p=0 = %v (%v), want Int 1", v, v.Kind())
	}
}
