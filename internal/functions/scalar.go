package functions

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"gqs/internal/value"
)

// The scalar function library. The set mirrors §4 of the paper: 61
// functions commonly supported by Neo4j, Memgraph, Kùzu, and FalkorDB.
// A test pins the census at exactly 61.

func init() {
	registerMath()
	registerString()
	registerList()
	registerEntity()
}

func num1(name string, f func(float64) float64) *Func {
	return &Func{
		Name: name, Params: []TypeClass{TNum}, Return: TFloat,
		Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
			if !args[0].IsNumber() {
				return value.Null, argErr(name, "expected a number, got %s", args[0].Kind())
			}
			return value.Float(f(args[0].AsFloat())), nil
		},
	}
}

func registerMath() {
	register(&Func{
		Name: "abs", Params: []TypeClass{TNum}, Return: TNum,
		Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
			switch args[0].Kind() {
			case value.KindInt:
				i := args[0].AsInt()
				if i < 0 {
					i = -i
				}
				return value.Int(i), nil
			case value.KindFloat:
				return value.Float(math.Abs(args[0].AsFloat())), nil
			}
			return value.Null, argErr("abs", "expected a number, got %s", args[0].Kind())
		},
	})
	register(num1("ceil", math.Ceil))
	register(num1("floor", math.Floor))
	register(num1("round", func(f float64) float64 { return math.Floor(f + 0.5) }))
	register(&Func{
		Name: "sign", Params: []TypeClass{TNum}, Return: TInt,
		Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
			if !args[0].IsNumber() {
				return value.Null, argErr("sign", "expected a number, got %s", args[0].Kind())
			}
			f := args[0].AsFloat()
			switch {
			case f > 0:
				return value.Int(1), nil
			case f < 0:
				return value.Int(-1), nil
			default:
				return value.Int(0), nil
			}
		},
	})
	register(num1("sqrt", math.Sqrt))
	register(num1("exp", math.Exp))
	register(num1("log", math.Log))
	register(num1("log10", math.Log10))
	register(num1("log2", math.Log2))
	register(num1("sin", math.Sin))
	register(num1("cos", math.Cos))
	register(num1("tan", math.Tan))
	register(num1("cot", func(f float64) float64 { return 1 / math.Tan(f) }))
	register(num1("asin", math.Asin))
	register(num1("acos", math.Acos))
	register(num1("atan", math.Atan))
	register(&Func{
		Name: "atan2", Params: []TypeClass{TNum, TNum}, Return: TFloat,
		Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
			if !args[0].IsNumber() || !args[1].IsNumber() {
				return value.Null, argErr("atan2", "expected numbers")
			}
			return value.Float(math.Atan2(args[0].AsFloat(), args[1].AsFloat())), nil
		},
	})
	register(&Func{
		Name: "pi", Return: TFloat,
		Call: func(_ GraphContext, _ []value.Value) (value.Value, error) {
			return value.Float(math.Pi), nil
		},
	})
	register(&Func{
		Name: "e", Return: TFloat,
		Call: func(_ GraphContext, _ []value.Value) (value.Value, error) {
			return value.Float(math.E), nil
		},
	})
	register(&Func{
		Name: "rand", Return: TFloat, Nondeterministic: true,
		Call: func(ctx GraphContext, _ []value.Value) (value.Value, error) {
			// Draws from the execution-scoped RNG when the context carries
			// one (see ExecState); the global fallback is race-free but
			// not reproducible per seed.
			return value.Float(execOf(ctx).Rand()), nil
		},
	})
	register(&Func{
		Name: "timestamp", Return: TInt, Nondeterministic: true,
		Call: func(ctx GraphContext, _ []value.Value) (value.Value, error) {
			// A logical clock rather than wall time keeps runs
			// reproducible; execution-scoped when the context carries an
			// ExecState, an atomic global otherwise.
			return value.Int(execOf(ctx).Timestamp()), nil
		},
	})
	register(num1("degrees", func(f float64) float64 { return f * 180 / math.Pi }))
	register(num1("radians", func(f float64) float64 { return f * math.Pi / 180 }))
	register(&Func{
		Name: "pow", Params: []TypeClass{TNum, TNum}, Return: TFloat,
		Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
			return value.Pow(args[0], args[1])
		},
	})
	register(&Func{
		Name: "isNaN", Params: []TypeClass{TNum}, Return: TBool,
		Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
			if !args[0].IsNumber() {
				return value.Null, argErr("isNaN", "expected a number, got %s", args[0].Kind())
			}
			return value.Bool(args[0].Kind() == value.KindFloat && math.IsNaN(args[0].AsFloat())), nil
		},
	})
	register(&Func{
		Name: "toInteger", Params: []TypeClass{TAny}, Return: TInt,
		Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
			switch a := args[0]; a.Kind() {
			case value.KindInt:
				return a, nil
			case value.KindFloat:
				f := a.AsFloat()
				if math.IsNaN(f) || math.IsInf(f, 0) {
					return value.Null, nil
				}
				return value.Int(int64(f)), nil
			case value.KindBool:
				if a.AsBool() {
					return value.Int(1), nil
				}
				return value.Int(0), nil
			case value.KindString:
				if i, err := strconv.ParseInt(strings.TrimSpace(a.AsString()), 10, 64); err == nil {
					return value.Int(i), nil
				}
				if f, err := strconv.ParseFloat(strings.TrimSpace(a.AsString()), 64); err == nil {
					return value.Int(int64(f)), nil
				}
				return value.Null, nil
			}
			return value.Null, nil
		},
	})
	register(&Func{
		Name: "toFloat", Params: []TypeClass{TAny}, Return: TFloat,
		Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
			switch a := args[0]; a.Kind() {
			case value.KindInt:
				return value.Float(float64(a.AsInt())), nil
			case value.KindFloat:
				return a, nil
			case value.KindString:
				if f, err := strconv.ParseFloat(strings.TrimSpace(a.AsString()), 64); err == nil {
					return value.Float(f), nil
				}
				return value.Null, nil
			}
			return value.Null, nil
		},
	})
	register(&Func{
		Name: "toBoolean", Params: []TypeClass{TAny}, Return: TBool,
		Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
			switch a := args[0]; a.Kind() {
			case value.KindBool:
				return a, nil
			case value.KindString:
				switch strings.ToLower(strings.TrimSpace(a.AsString())) {
				case "true":
					return value.True, nil
				case "false":
					return value.False, nil
				}
				return value.Null, nil
			}
			return value.Null, nil
		},
	})
}

func str1(name string, f func(string) string) *Func {
	return &Func{
		Name: name, Params: []TypeClass{TStr}, Return: TStr,
		Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
			if args[0].Kind() != value.KindString {
				return value.Null, argErr(name, "expected a string, got %s", args[0].Kind())
			}
			return value.Str(f(args[0].AsString())), nil
		},
	}
}

func registerString() {
	register(&Func{
		Name: "toString", Params: []TypeClass{TAny}, Return: TStr,
		Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
			a := args[0]
			if a.Kind() == value.KindString {
				return a, nil
			}
			return value.Str(a.String()), nil
		},
	})
	lower := func(s string) string { return strings.ToLower(s) }
	upper := func(s string) string { return strings.ToUpper(s) }
	register(str1("toLower", lower))
	register(str1("toUpper", upper))
	// lCase/uCase are the RedisGraph/FalkorDB spellings.
	register(str1("lCase", lower))
	register(str1("uCase", upper))
	register(str1("trim", strings.TrimSpace))
	register(str1("lTrim", func(s string) string { return strings.TrimLeft(s, " \t\r\n") }))
	register(str1("rTrim", func(s string) string { return strings.TrimRight(s, " \t\r\n") }))
	register(&Func{
		Name: "reverse", Params: []TypeClass{TStr}, Return: TStr,
		Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
			switch a := args[0]; a.Kind() {
			case value.KindString:
				rs := []rune(a.AsString())
				for i, j := 0, len(rs)-1; i < j; i, j = i+1, j-1 {
					rs[i], rs[j] = rs[j], rs[i]
				}
				return value.Str(string(rs)), nil
			case value.KindList:
				l := a.AsList()
				out := make([]value.Value, len(l))
				for i, v := range l {
					out[len(l)-1-i] = v
				}
				return value.ListOf(out), nil
			}
			return value.Null, argErr("reverse", "expected a string or list, got %s", args[0].Kind())
		},
	})
	register(&Func{
		Name: "replace", Params: []TypeClass{TStr, TStr, TStr}, Return: TStr,
		Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
			for _, a := range args {
				if a.Kind() != value.KindString {
					return value.Null, argErr("replace", "expected strings")
				}
			}
			s, search, repl := args[0].AsString(), args[1].AsString(), args[2].AsString()
			// The behaviour for an empty search string is underspecified in
			// openCypher (the Figure 9 Memgraph bug hangs on it); the
			// reference semantics here is to return the subject unchanged.
			if search == "" {
				return value.Str(s), nil
			}
			return value.Str(strings.ReplaceAll(s, search, repl)), nil
		},
	})
	register(&Func{
		Name: "split", Params: []TypeClass{TStr, TStr}, Return: TList,
		Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
			if args[0].Kind() != value.KindString || args[1].Kind() != value.KindString {
				return value.Null, argErr("split", "expected strings")
			}
			parts := strings.Split(args[0].AsString(), args[1].AsString())
			out := make([]value.Value, len(parts))
			for i, p := range parts {
				out[i] = value.Str(p)
			}
			return value.ListOf(out), nil
		},
	})
	register(&Func{
		Name: "substring", Params: []TypeClass{TStr, TInt, TInt}, OptTail: 1, Return: TStr,
		Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
			if args[0].Kind() != value.KindString || args[1].Kind() != value.KindInt {
				return value.Null, argErr("substring", "expected (string, integer[, integer])")
			}
			rs := []rune(args[0].AsString())
			start := args[1].AsInt()
			if start < 0 {
				return value.Null, argErr("substring", "negative start %d", start)
			}
			if start > int64(len(rs)) {
				return value.Str(""), nil
			}
			end := int64(len(rs))
			if len(args) == 3 {
				if args[2].Kind() != value.KindInt {
					return value.Null, argErr("substring", "length must be an integer")
				}
				n := args[2].AsInt()
				if n < 0 {
					return value.Null, argErr("substring", "negative length %d", n)
				}
				if start+n < end {
					end = start + n
				}
			}
			return value.Str(string(rs[start:end])), nil
		},
	})
	register(&Func{
		Name: "left", Params: []TypeClass{TStr, TInt}, Return: TStr,
		Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
			return strSide("left", args, func(rs []rune, n int64) string { return string(rs[:n]) })
		},
	})
	register(&Func{
		Name: "right", Params: []TypeClass{TStr, TInt}, Return: TStr,
		Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
			return strSide("right", args, func(rs []rune, n int64) string { return string(rs[int64(len(rs))-n:]) })
		},
	})
	charLength := &Func{
		Name: "char_length", Params: []TypeClass{TStr}, Return: TInt,
		Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
			if args[0].Kind() != value.KindString {
				return value.Null, argErr("char_length", "expected a string, got %s", args[0].Kind())
			}
			return value.Int(int64(len([]rune(args[0].AsString())))), nil
		},
	}
	register(charLength)
	register(&Func{
		Name: "character_length", Params: []TypeClass{TStr}, Return: TInt,
		Call: charLength.Call,
	})
}

func strSide(name string, args []value.Value, f func([]rune, int64) string) (value.Value, error) {
	if args[0].Kind() != value.KindString || args[1].Kind() != value.KindInt {
		return value.Null, argErr(name, "expected (string, integer)")
	}
	n := args[1].AsInt()
	if n < 0 {
		return value.Null, argErr(name, "negative length %d", n)
	}
	rs := []rune(args[0].AsString())
	if n > int64(len(rs)) {
		n = int64(len(rs))
	}
	return value.Str(f(rs, n)), nil
}

func registerList() {
	sized := func(name string) *Func {
		return &Func{
			Name: name, Params: []TypeClass{TList}, Return: TInt,
			Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
				switch a := args[0]; a.Kind() {
				case value.KindList:
					return value.Int(int64(len(a.AsList()))), nil
				case value.KindString:
					return value.Int(int64(len([]rune(a.AsString())))), nil
				case value.KindMap:
					return value.Int(int64(len(a.AsMap()))), nil
				}
				return value.Null, argErr(name, "expected a list or string, got %s", args[0].Kind())
			},
		}
	}
	register(sized("size"))
	register(sized("length"))
	register(&Func{
		Name: "head", Params: []TypeClass{TList}, Return: TAny,
		Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
			l, err := wantList("head", args[0])
			if err != nil {
				return value.Null, err
			}
			if len(l) == 0 {
				return value.Null, nil
			}
			return l[0], nil
		},
	})
	register(&Func{
		Name: "last", Params: []TypeClass{TList}, Return: TAny,
		Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
			l, err := wantList("last", args[0])
			if err != nil {
				return value.Null, err
			}
			if len(l) == 0 {
				return value.Null, nil
			}
			return l[len(l)-1], nil
		},
	})
	register(&Func{
		Name: "tail", Params: []TypeClass{TList}, Return: TList,
		Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
			l, err := wantList("tail", args[0])
			if err != nil {
				return value.Null, err
			}
			if len(l) == 0 {
				return value.List(), nil
			}
			return value.ListOf(l[1:]), nil
		},
	})
	register(&Func{
		Name: "range", Params: []TypeClass{TInt, TInt, TInt}, OptTail: 1, Return: TList,
		Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
			for _, a := range args {
				if a.Kind() != value.KindInt {
					return value.Null, argErr("range", "expected integers")
				}
			}
			start, end := args[0].AsInt(), args[1].AsInt()
			step := int64(1)
			if len(args) == 3 {
				step = args[2].AsInt()
			}
			if step == 0 {
				return value.Null, argErr("range", "step must not be zero")
			}
			var out []value.Value
			if step > 0 {
				for i := start; i <= end && len(out) < 100000; i += step {
					out = append(out, value.Int(i))
				}
			} else {
				for i := start; i >= end && len(out) < 100000; i += step {
					out = append(out, value.Int(i))
				}
			}
			return value.ListOf(out), nil
		},
	})
	register(&Func{
		Name: "coalesce", Params: []TypeClass{TAny}, Return: TAny, Variadic: true,
		Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
			for _, a := range args {
				if !a.IsNull() {
					return a, nil
				}
			}
			return value.Null, nil
		},
	})
	register(&Func{
		Name: "keys", Params: []TypeClass{TEntity}, Return: TList, NeedsGraph: true,
		Call: func(ctx GraphContext, args []value.Value) (value.Value, error) {
			props, err := entityProps(ctx, "keys", args[0])
			if err != nil {
				return value.Null, err
			}
			names := make([]string, 0, len(props))
			for k := range props {
				names = append(names, k)
			}
			sort.Strings(names)
			out := make([]value.Value, len(names))
			for i, n := range names {
				out[i] = value.Str(n)
			}
			return value.ListOf(out), nil
		},
	})
	register(&Func{
		Name: "labels", Params: []TypeClass{TNode}, Return: TList, NeedsGraph: true,
		Call: func(ctx GraphContext, args []value.Value) (value.Value, error) {
			if args[0].Kind() != value.KindNode {
				return value.Null, argErr("labels", "expected a node, got %s", args[0].Kind())
			}
			ls, ok := ctx.NodeLabels(args[0].EntityID())
			if !ok {
				return value.Null, argErr("labels", "unknown node %d", args[0].EntityID())
			}
			out := make([]value.Value, len(ls))
			for i, l := range ls {
				out[i] = value.Str(l)
			}
			return value.ListOf(out), nil
		},
	})
	register(&Func{
		Name: "isEmpty", Params: []TypeClass{TList}, Return: TBool,
		Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
			switch a := args[0]; a.Kind() {
			case value.KindNull:
				return value.Null, nil
			case value.KindList:
				return value.Bool(len(a.AsList()) == 0), nil
			case value.KindString:
				return value.Bool(a.AsString() == ""), nil
			case value.KindMap:
				return value.Bool(len(a.AsMap()) == 0), nil
			}
			return value.Null, argErr("isEmpty", "expected a list, string, or map")
		},
	})
}

func wantList(name string, v value.Value) ([]value.Value, error) {
	if v.Kind() != value.KindList {
		return nil, argErr(name, "expected a list, got %s", v.Kind())
	}
	return v.AsList(), nil
}

func entityProps(ctx GraphContext, name string, v value.Value) (map[string]value.Value, error) {
	switch v.Kind() {
	case value.KindMap:
		return v.AsMap(), nil
	case value.KindNode, value.KindRel:
		props, ok := ctx.EntityProps(v.EntityID(), v.Kind() == value.KindRel)
		if !ok {
			return nil, argErr(name, "unknown entity %d", v.EntityID())
		}
		return props, nil
	}
	return nil, argErr(name, "expected a node, relationship, or map, got %s", v.Kind())
}

func registerEntity() {
	register(&Func{
		Name: "id", Params: []TypeClass{TEntity}, Return: TInt,
		Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
			if !args[0].IsEntity() {
				return value.Null, argErr("id", "expected a node or relationship, got %s", args[0].Kind())
			}
			return value.Int(args[0].EntityID()), nil
		},
	})
	register(&Func{
		Name: "type", Params: []TypeClass{TRel}, Return: TStr, NeedsGraph: true,
		Call: func(ctx GraphContext, args []value.Value) (value.Value, error) {
			if args[0].Kind() != value.KindRel {
				return value.Null, argErr("type", "expected a relationship, got %s", args[0].Kind())
			}
			t, ok := ctx.RelType(args[0].EntityID())
			if !ok {
				return value.Null, argErr("type", "unknown relationship %d", args[0].EntityID())
			}
			return value.Str(t), nil
		},
	})
	register(&Func{
		Name: "startNode", Params: []TypeClass{TRel}, Return: TNode, NeedsGraph: true,
		Call: func(ctx GraphContext, args []value.Value) (value.Value, error) {
			s, _, err := relEndpoints(ctx, "startNode", args[0])
			if err != nil {
				return value.Null, err
			}
			return value.Node(s), nil
		},
	})
	register(&Func{
		Name: "endNode", Params: []TypeClass{TRel}, Return: TNode, NeedsGraph: true,
		Call: func(ctx GraphContext, args []value.Value) (value.Value, error) {
			_, e, err := relEndpoints(ctx, "endNode", args[0])
			if err != nil {
				return value.Null, err
			}
			return value.Node(e), nil
		},
	})
	register(&Func{
		Name: "properties", Params: []TypeClass{TEntity}, Return: TMap, NeedsGraph: true,
		Call: func(ctx GraphContext, args []value.Value) (value.Value, error) {
			props, err := entityProps(ctx, "properties", args[0])
			if err != nil {
				return value.Null, err
			}
			out := make(map[string]value.Value, len(props))
			for k, v := range props {
				out[k] = v
			}
			return value.Map(out), nil
		},
	})
	register(&Func{
		Name: "exists", Params: []TypeClass{TAny}, Return: TBool,
		Call: func(_ GraphContext, args []value.Value) (value.Value, error) {
			return value.Bool(!args[0].IsNull()), nil
		},
	})
}

func relEndpoints(ctx GraphContext, name string, v value.Value) (int64, int64, error) {
	if v.Kind() != value.KindRel {
		return 0, 0, argErr(name, "expected a relationship, got %s", v.Kind())
	}
	s, e, ok := ctx.RelEndpoints(v.EntityID())
	if !ok {
		return 0, 0, argErr(name, "unknown relationship %d", v.EntityID())
	}
	return s, e, nil
}
