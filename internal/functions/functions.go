// Package functions implements the Cypher function library shared by the
// four GDBs the paper tests: 61 scalar functions plus the aggregation
// operators (§4, "Supported Cypher Features"). Each function carries type
// metadata (parameter and return type classes) that the GQS expression
// synthesizer uses to build well-typed nested expressions (§3.5).
package functions

import (
	"fmt"
	"strings"

	"gqs/internal/value"
)

// TypeClass is the coarse type lattice used for synthesis: it classifies
// function parameters and results so that Algorithm 2 can pick templates
// whose parameter type matches the current expression's type.
type TypeClass int

// Type classes.
const (
	TAny TypeClass = iota
	TNum           // integer or float
	TInt
	TFloat
	TStr
	TBool
	TList
	TNode
	TRel
	TEntity // node or relationship
	TMap
)

// String returns a short name for the type class.
func (t TypeClass) String() string {
	switch t {
	case TAny:
		return "any"
	case TNum:
		return "number"
	case TInt:
		return "integer"
	case TFloat:
		return "float"
	case TStr:
		return "string"
	case TBool:
		return "boolean"
	case TList:
		return "list"
	case TNode:
		return "node"
	case TRel:
		return "relationship"
	case TEntity:
		return "entity"
	case TMap:
		return "map"
	default:
		return "?"
	}
}

// ClassOf returns the type class of a concrete value.
func ClassOf(v value.Value) TypeClass {
	switch v.Kind() {
	case value.KindInt:
		return TInt
	case value.KindFloat:
		return TFloat
	case value.KindString:
		return TStr
	case value.KindBool:
		return TBool
	case value.KindList:
		return TList
	case value.KindMap:
		return TMap
	case value.KindNode:
		return TNode
	case value.KindRel:
		return TRel
	default:
		return TAny
	}
}

// Accepts reports whether a value of class got can be passed where class
// want is expected.
func (want TypeClass) Accepts(got TypeClass) bool {
	switch want {
	case TAny:
		return true
	case TNum:
		return got == TInt || got == TFloat || got == TNum
	case TEntity:
		return got == TNode || got == TRel || got == TEntity
	default:
		return want == got
	}
}

// GraphContext resolves graph-dependent functions (labels, type,
// startNode, ...). The engine's evaluator supplies an implementation;
// GQS's internal evaluator supplies one backed by the generated graph.
type GraphContext interface {
	NodeLabels(id int64) ([]string, bool)
	RelType(id int64) (string, bool)
	RelEndpoints(id int64) (start, end int64, ok bool)
	EntityProps(id int64, isRel bool) (map[string]value.Value, bool)
}

// Func describes one scalar function.
type Func struct {
	Name    string
	Params  []TypeClass // minimum formal parameters
	OptTail int         // number of trailing optional parameters (suffix of Params)
	Return  TypeClass
	// Variadic marks functions accepting any number of arguments of
	// Params[len(Params)-1]'s class (coalesce).
	Variadic bool
	// NeedsGraph marks functions that require a GraphContext.
	NeedsGraph bool
	// Nondeterministic marks functions excluded from synthesis (rand).
	Nondeterministic bool
	Call             func(ctx GraphContext, args []value.Value) (value.Value, error)
}

// MinArgs returns the minimum number of arguments.
func (f *Func) MinArgs() int { return len(f.Params) - f.OptTail }

// MaxArgs returns the maximum number of arguments (-1 for variadic).
func (f *Func) MaxArgs() int {
	if f.Variadic {
		return -1
	}
	return len(f.Params)
}

// ArgError is returned for a wrong number or type of arguments.
type ArgError struct {
	Func string
	Msg  string
}

func (e *ArgError) Error() string { return fmt.Sprintf("%s: %s", e.Func, e.Msg) }

func argErr(name, format string, args ...any) error {
	return &ArgError{Func: name, Msg: fmt.Sprintf(format, args...)}
}

// Lookup returns the scalar function with the given (case-insensitive)
// name, or nil. The canonical spelling hits the registry directly; only
// unusual casings pay the ToLower allocation.
func Lookup(name string) *Func {
	if f, ok := registry[name]; ok {
		return f
	}
	return registry[strings.ToLower(name)]
}

// All returns every registered scalar function, in registration order.
func All() []*Func { return ordered }

var (
	registry = map[string]*Func{}
	ordered  []*Func
)

func register(f *Func) {
	key := strings.ToLower(f.Name)
	if _, dup := registry[key]; dup {
		panic("functions: duplicate registration of " + f.Name)
	}
	registry[key] = f
	// Also index the canonical spelling so Lookup's exact-match fast
	// path covers camelCase names (a no-op for all-lowercase ones).
	registry[f.Name] = f
	ordered = append(ordered, f)
}

// Invoke validates the argument count and calls the function. A null
// argument yields null without calling the implementation, matching
// Cypher's null propagation for scalar functions (coalesce opts out by
// handling nulls itself).
func Invoke(f *Func, ctx GraphContext, args []value.Value) (value.Value, error) {
	if len(args) < f.MinArgs() || (f.MaxArgs() >= 0 && len(args) > f.MaxArgs()) {
		return value.Null, argErr(f.Name, "wrong number of arguments: %d", len(args))
	}
	if f.Name != "coalesce" && f.Name != "exists" {
		for _, a := range args {
			if a.IsNull() {
				return value.Null, nil
			}
		}
	}
	return f.Call(ctx, args)
}
