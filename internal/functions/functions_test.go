package functions

import (
	"math"
	"testing"

	"gqs/internal/value"
)

// fakeGraph implements GraphContext for the graph-dependent functions.
type fakeGraph struct{}

func (fakeGraph) NodeLabels(id int64) ([]string, bool) {
	if id == 1 {
		return []string{"L0", "L1"}, true
	}
	return nil, false
}

func (fakeGraph) RelType(id int64) (string, bool) {
	if id == 2 {
		return "T0", true
	}
	return "", false
}

func (fakeGraph) RelEndpoints(id int64) (int64, int64, bool) {
	if id == 2 {
		return 1, 3, true
	}
	return 0, 0, false
}

func (fakeGraph) EntityProps(id int64, isRel bool) (map[string]value.Value, bool) {
	if id == 1 && !isRel {
		return map[string]value.Value{"b": value.Int(2), "a": value.Int(1)}, true
	}
	return nil, false
}

func call(t *testing.T, name string, args ...value.Value) value.Value {
	t.Helper()
	f := Lookup(name)
	if f == nil {
		t.Fatalf("function %s not registered", name)
	}
	v, err := Invoke(f, fakeGraph{}, args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return v
}

func callErr(t *testing.T, name string, args ...value.Value) error {
	t.Helper()
	f := Lookup(name)
	if f == nil {
		t.Fatalf("function %s not registered", name)
	}
	_, err := Invoke(f, fakeGraph{}, args)
	return err
}

func TestCensusIs61(t *testing.T) {
	if got := len(All()); got != 61 {
		t.Errorf("scalar function census = %d, want 61 (the paper's library size)", got)
	}
	if got := len(AllAggs()); got != 10 {
		t.Errorf("aggregate census = %d, want 10", got)
	}
}

func TestLookupCaseInsensitive(t *testing.T) {
	if Lookup("ToUpper") == nil || Lookup("TOUPPER") == nil {
		t.Error("lookup must be case-insensitive")
	}
	if Lookup("no_such_fn") != nil {
		t.Error("unknown function must return nil")
	}
}

func TestMathFunctions(t *testing.T) {
	if v := call(t, "abs", value.Int(-5)); v.AsInt() != 5 {
		t.Error("abs int")
	}
	if v := call(t, "abs", value.Float(-2.5)); v.AsFloat() != 2.5 {
		t.Error("abs float")
	}
	if v := call(t, "ceil", value.Float(1.2)); v.AsFloat() != 2 {
		t.Error("ceil")
	}
	if v := call(t, "floor", value.Float(1.8)); v.AsFloat() != 1 {
		t.Error("floor")
	}
	if v := call(t, "round", value.Float(1.5)); v.AsFloat() != 2 {
		t.Error("round half up")
	}
	if v := call(t, "round", value.Float(-1.5)); v.AsFloat() != -1 {
		t.Error("round(-1.5) must be -1 under half-up")
	}
	if v := call(t, "sign", value.Int(-3)); v.AsInt() != -1 {
		t.Error("sign")
	}
	if v := call(t, "sqrt", value.Float(9)); v.AsFloat() != 3 {
		t.Error("sqrt")
	}
	if v := call(t, "exp", value.Int(0)); v.AsFloat() != 1 {
		t.Error("exp")
	}
	if v := call(t, "log", value.Float(math.E)); math.Abs(v.AsFloat()-1) > 1e-12 {
		t.Error("log")
	}
	if v := call(t, "log10", value.Int(100)); v.AsFloat() != 2 {
		t.Error("log10")
	}
	if v := call(t, "log2", value.Int(8)); v.AsFloat() != 3 {
		t.Error("log2")
	}
	if v := call(t, "atan2", value.Int(1), value.Int(1)); math.Abs(v.AsFloat()-math.Pi/4) > 1e-12 {
		t.Error("atan2")
	}
	if v := call(t, "pi"); v.AsFloat() != math.Pi {
		t.Error("pi")
	}
	if v := call(t, "e"); v.AsFloat() != math.E {
		t.Error("e")
	}
	if v := call(t, "degrees", value.Float(math.Pi)); math.Abs(v.AsFloat()-180) > 1e-9 {
		t.Error("degrees")
	}
	if v := call(t, "radians", value.Int(180)); math.Abs(v.AsFloat()-math.Pi) > 1e-12 {
		t.Error("radians")
	}
	if v := call(t, "pow", value.Int(2), value.Int(3)); v.AsFloat() != 8 {
		t.Error("pow")
	}
	if v := call(t, "isNaN", value.Float(math.NaN())); !v.AsBool() {
		t.Error("isNaN")
	}
	if v := call(t, "cot", value.Float(math.Pi/4)); math.Abs(v.AsFloat()-1) > 1e-12 {
		t.Error("cot")
	}
	for _, fn := range []string{"sin", "cos", "tan", "asin", "acos", "atan"} {
		if v := call(t, fn, value.Int(0)); v.Kind() != value.KindFloat {
			t.Errorf("%s must return float", fn)
		}
	}
	if err := callErr(t, "sqrt", value.Str("x")); err == nil {
		t.Error("sqrt of string must be a type error")
	}
}

func TestConversions(t *testing.T) {
	if v := call(t, "toInteger", value.Str("42")); v.AsInt() != 42 {
		t.Error("toInteger string")
	}
	if v := call(t, "toInteger", value.Float(3.9)); v.AsInt() != 3 {
		t.Error("toInteger truncates")
	}
	if v := call(t, "toInteger", value.Str("nope")); !v.IsNull() {
		t.Error("toInteger invalid must be null")
	}
	if v := call(t, "toInteger", value.Bool(true)); v.AsInt() != 1 {
		t.Error("toInteger bool")
	}
	if v := call(t, "toFloat", value.Str("1.5")); v.AsFloat() != 1.5 {
		t.Error("toFloat")
	}
	if v := call(t, "toBoolean", value.Str("TRUE")); !v.AsBool() {
		t.Error("toBoolean")
	}
	if v := call(t, "toBoolean", value.Int(1)); !v.IsNull() {
		t.Error("toBoolean of int must be null")
	}
	if v := call(t, "toString", value.Int(7)); v.AsString() != "7" {
		t.Error("toString")
	}
	if v := call(t, "toString", value.Null); !v.IsNull() {
		t.Error("toString(null) must be null")
	}
}

func TestStringFunctions(t *testing.T) {
	if v := call(t, "toUpper", value.Str("ab")); v.AsString() != "AB" {
		t.Error("toUpper")
	}
	if v := call(t, "lCase", value.Str("AB")); v.AsString() != "ab" {
		t.Error("lCase")
	}
	if v := call(t, "uCase", value.Str("ab")); v.AsString() != "AB" {
		t.Error("uCase")
	}
	if v := call(t, "trim", value.Str("  x ")); v.AsString() != "x" {
		t.Error("trim")
	}
	if v := call(t, "lTrim", value.Str("  x ")); v.AsString() != "x " {
		t.Error("lTrim")
	}
	if v := call(t, "rTrim", value.Str(" x  ")); v.AsString() != " x" {
		t.Error("rTrim")
	}
	if v := call(t, "reverse", value.Str("abc")); v.AsString() != "cba" {
		t.Error("reverse string")
	}
	if v := call(t, "reverse", value.List(value.Int(1), value.Int(2))); v.AsList()[0].AsInt() != 2 {
		t.Error("reverse list")
	}
	if v := call(t, "replace", value.Str("aXbX"), value.Str("X"), value.Str("y")); v.AsString() != "ayby" {
		t.Error("replace")
	}
	// The Figure 9 corner case: the reference semantics returns the
	// subject unchanged for an empty search string.
	if v := call(t, "replace", value.Str("ts15G"), value.Str(""), value.Str("U11sWFvRw")); v.AsString() != "ts15G" {
		t.Error("replace with empty search must return subject")
	}
	if v := call(t, "split", value.Str("a,b"), value.Str(",")); len(v.AsList()) != 2 {
		t.Error("split")
	}
	if v := call(t, "substring", value.Str("abcdef"), value.Int(2)); v.AsString() != "cdef" {
		t.Error("substring 2-arg")
	}
	if v := call(t, "substring", value.Str("abcdef"), value.Int(1), value.Int(3)); v.AsString() != "bcd" {
		t.Error("substring 3-arg")
	}
	if v := call(t, "substring", value.Str("ab"), value.Int(9)); v.AsString() != "" {
		t.Error("substring beyond end")
	}
	if err := callErr(t, "substring", value.Str("ab"), value.Int(-1)); err == nil {
		t.Error("negative substring start must error")
	}
	if v := call(t, "left", value.Str("abcdef"), value.Int(2)); v.AsString() != "ab" {
		t.Error("left")
	}
	if v := call(t, "right", value.Str("abcdef"), value.Int(2)); v.AsString() != "ef" {
		t.Error("right")
	}
	if v := call(t, "left", value.Str("ab"), value.Int(9)); v.AsString() != "ab" {
		t.Error("left clamps")
	}
	if v := call(t, "char_length", value.Str("abc")); v.AsInt() != 3 {
		t.Error("char_length")
	}
	if v := call(t, "character_length", value.Str("abc")); v.AsInt() != 3 {
		t.Error("character_length")
	}
}

func TestListFunctions(t *testing.T) {
	l := value.List(value.Int(1), value.Int(2), value.Int(3))
	if v := call(t, "size", l); v.AsInt() != 3 {
		t.Error("size list")
	}
	if v := call(t, "size", value.Str("abcd")); v.AsInt() != 4 {
		t.Error("size string")
	}
	if v := call(t, "length", l); v.AsInt() != 3 {
		t.Error("length")
	}
	if v := call(t, "head", l); v.AsInt() != 1 {
		t.Error("head")
	}
	if v := call(t, "head", value.List()); !v.IsNull() {
		t.Error("head of empty must be null")
	}
	if v := call(t, "last", l); v.AsInt() != 3 {
		t.Error("last")
	}
	if v := call(t, "tail", l); len(v.AsList()) != 2 {
		t.Error("tail")
	}
	if v := call(t, "tail", value.List()); len(v.AsList()) != 0 {
		t.Error("tail of empty must be empty")
	}
	if v := call(t, "range", value.Int(1), value.Int(5), value.Int(2)); len(v.AsList()) != 3 {
		t.Error("range with step")
	}
	if v := call(t, "range", value.Int(3), value.Int(1)); len(v.AsList()) != 0 {
		t.Error("range wrong direction must be empty")
	}
	if v := call(t, "range", value.Int(3), value.Int(1), value.Int(-1)); len(v.AsList()) != 3 {
		t.Error("descending range")
	}
	if err := callErr(t, "range", value.Int(1), value.Int(2), value.Int(0)); err == nil {
		t.Error("zero step must error")
	}
	if v := call(t, "coalesce", value.Null, value.Null, value.Int(7)); v.AsInt() != 7 {
		t.Error("coalesce")
	}
	if v := call(t, "coalesce", value.Null); !v.IsNull() {
		t.Error("coalesce all null")
	}
	if v := call(t, "isEmpty", value.List()); !v.AsBool() {
		t.Error("isEmpty")
	}
	if v := call(t, "isEmpty", value.Str("x")); v.AsBool() {
		t.Error("isEmpty non-empty")
	}
}

func TestEntityFunctions(t *testing.T) {
	n := value.Node(1)
	r := value.Rel(2)
	if v := call(t, "id", n); v.AsInt() != 1 {
		t.Error("id")
	}
	if v := call(t, "labels", n); len(v.AsList()) != 2 {
		t.Error("labels")
	}
	if v := call(t, "type", r); v.AsString() != "T0" {
		t.Error("type")
	}
	if v := call(t, "startNode", r); v.EntityID() != 1 {
		t.Error("startNode")
	}
	if v := call(t, "endNode", r); v.EntityID() != 3 {
		t.Error("endNode")
	}
	if v := call(t, "keys", n); len(v.AsList()) != 2 || v.AsList()[0].AsString() != "a" {
		t.Error("keys must be sorted")
	}
	if v := call(t, "properties", n); v.AsMap()["a"].AsInt() != 1 {
		t.Error("properties")
	}
	if v := call(t, "exists", value.Null); v.AsBool() {
		t.Error("exists(null) must be false")
	}
	if v := call(t, "exists", value.Int(1)); !v.AsBool() {
		t.Error("exists(non-null) must be true")
	}
	if err := callErr(t, "type", n); err == nil {
		t.Error("type of node must error")
	}
	if err := callErr(t, "labels", value.Node(99)); err == nil {
		t.Error("labels of unknown node must error")
	}
}

func TestNullPropagation(t *testing.T) {
	for _, name := range []string{"abs", "toUpper", "size", "head", "id", "split"} {
		f := Lookup(name)
		args := make([]value.Value, f.MinArgs())
		for i := range args {
			args[i] = value.Null
		}
		v, err := Invoke(f, fakeGraph{}, args)
		if err != nil || !v.IsNull() {
			t.Errorf("%s(null...) = %v, %v; want null", name, v, err)
		}
	}
}

func TestArgCountValidation(t *testing.T) {
	if err := callErr(t, "abs"); err == nil {
		t.Error("missing args must error")
	}
	if err := callErr(t, "abs", value.Int(1), value.Int(2)); err == nil {
		t.Error("extra args must error")
	}
	// substring has an optional third parameter.
	f := Lookup("substring")
	if f.MinArgs() != 2 || f.MaxArgs() != 3 {
		t.Errorf("substring arity: min %d max %d", f.MinArgs(), f.MaxArgs())
	}
	if Lookup("coalesce").MaxArgs() != -1 {
		t.Error("coalesce must be variadic")
	}
}

func TestAggregates(t *testing.T) {
	feed := func(name string, param value.Value, vs ...value.Value) value.Value {
		t.Helper()
		spec := LookupAgg(name)
		if spec == nil {
			t.Fatalf("aggregate %s not registered", name)
		}
		a := spec.New(param)
		for _, v := range vs {
			if err := a.Add(v); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		return a.Result()
	}
	if v := feed("count", value.Null, value.Int(1), value.Null, value.Int(2)); v.AsInt() != 2 {
		t.Error("count skips nulls")
	}
	if v := feed("sum", value.Null, value.Int(1), value.Int(2)); v.Kind() != value.KindInt || v.AsInt() != 3 {
		t.Error("sum stays integer")
	}
	if v := feed("sum", value.Null, value.Int(1), value.Float(0.5)); v.Kind() != value.KindFloat || v.AsFloat() != 1.5 {
		t.Error("sum promotes to float")
	}
	if v := feed("sum", value.Null); v.AsInt() != 0 {
		t.Error("empty sum is 0")
	}
	if v := feed("avg", value.Null, value.Int(1), value.Int(3)); v.AsFloat() != 2 {
		t.Error("avg")
	}
	if v := feed("avg", value.Null); !v.IsNull() {
		t.Error("empty avg is null")
	}
	if v := feed("min", value.Null, value.Int(3), value.Int(1), value.Null); v.AsInt() != 1 {
		t.Error("min")
	}
	if v := feed("max", value.Null, value.Int(3), value.Int(1)); v.AsInt() != 3 {
		t.Error("max")
	}
	if v := feed("min", value.Null); !v.IsNull() {
		t.Error("empty min is null")
	}
	if v := feed("collect", value.Null, value.Int(1), value.Null, value.Int(2)); len(v.AsList()) != 2 {
		t.Error("collect skips nulls")
	}
	if v := feed("stDev", value.Null, value.Int(1), value.Int(3)); math.Abs(v.AsFloat()-math.Sqrt2) > 1e-12 {
		t.Errorf("stDev sample = %v", v)
	}
	if v := feed("stDevP", value.Null, value.Int(1), value.Int(3)); v.AsFloat() != 1 {
		t.Errorf("stDevP population = %v", v)
	}
	if v := feed("stDev", value.Null, value.Int(5)); v.AsFloat() != 0 {
		t.Error("stDev of one element is 0")
	}
	if v := feed("percentileCont", value.Float(0.5), value.Int(1), value.Int(2), value.Int(3)); v.AsFloat() != 2 {
		t.Error("percentileCont median")
	}
	if v := feed("percentileCont", value.Float(0.25), value.Int(0), value.Int(10)); v.AsFloat() != 2.5 {
		t.Error("percentileCont interpolation")
	}
	if v := feed("percentileDisc", value.Float(0.5), value.Int(1), value.Int(2), value.Int(3), value.Int(4)); v.AsFloat() != 2 {
		t.Error("percentileDisc")
	}
	if v := feed("percentileCont", value.Float(0.5)); !v.IsNull() {
		t.Error("empty percentile is null")
	}
	cs := CountStar()
	cs.Add(value.Null)
	cs.Add(value.Int(1))
	if cs.Result().AsInt() != 2 {
		t.Error("count(*) counts nulls")
	}
	if !IsAggregate("COUNT") || IsAggregate("abs") {
		t.Error("IsAggregate broken")
	}
}

func TestTypeClass(t *testing.T) {
	if !TNum.Accepts(TInt) || !TNum.Accepts(TFloat) || TNum.Accepts(TStr) {
		t.Error("TNum acceptance broken")
	}
	if !TEntity.Accepts(TNode) || !TEntity.Accepts(TRel) || TEntity.Accepts(TList) {
		t.Error("TEntity acceptance broken")
	}
	if !TAny.Accepts(TMap) {
		t.Error("TAny must accept everything")
	}
	if ClassOf(value.Int(1)) != TInt || ClassOf(value.Str("x")) != TStr || ClassOf(value.Node(1)) != TNode {
		t.Error("ClassOf broken")
	}
	if TInt.String() != "integer" || TEntity.String() != "entity" {
		t.Error("TypeClass.String broken")
	}
}

func TestNondeterministicFlag(t *testing.T) {
	if !Lookup("rand").Nondeterministic || !Lookup("timestamp").Nondeterministic {
		t.Error("rand/timestamp must be flagged nondeterministic")
	}
	if Lookup("abs").Nondeterministic {
		t.Error("abs must be deterministic")
	}
}
