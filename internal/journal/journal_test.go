package journal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func tempPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "ckpt.journal")
}

func mustOpen(t *testing.T, path string, opts Options) (*Journal, [][]byte) {
	t.Helper()
	j, recs, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j, recs
}

func appendAll(t *testing.T, j *Journal, payloads ...string) {
	t.Helper()
	for _, p := range payloads {
		if err := j.Append([]byte(p)); err != nil {
			t.Fatalf("Append(%q): %v", p, err)
		}
	}
}

func TestAppendAndRecover(t *testing.T) {
	path := tempPath(t)
	j, recs := mustOpen(t, path, Options{})
	if len(recs) != 0 {
		t.Fatalf("fresh journal recovered %d records", len(recs))
	}
	appendAll(t, j, "one", "two", "three")
	if st := j.Stats(); st.Appends != 3 || st.Bytes == 0 {
		t.Fatalf("stats after 3 appends: %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, recs := mustOpen(t, path, Options{})
	defer j2.Close()
	if len(recs) != 3 || string(recs[0]) != "one" || string(recs[2]) != "three" {
		t.Fatalf("recovered %q", recs)
	}
	if st := j2.Stats(); st.RecoveredRecords != 3 || st.TornBytes != 0 {
		t.Fatalf("recovery stats: %+v", st)
	}
}

func TestTornTailTruncatedAndAppendable(t *testing.T) {
	path := tempPath(t)
	j, _ := mustOpen(t, path, Options{})
	appendAll(t, j, "alpha", "beta")
	goodSize := j.Size()
	j.Close()

	// A crash mid-append leaves a torn frame: garbage past the valid tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x00, 0x00, 0x00, 0x10, 0xde, 0xad}) //nolint:errcheck
	f.Close()

	j2, recs := mustOpen(t, path, Options{})
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2", len(recs))
	}
	if st := j2.Stats(); st.TornBytes != 6 {
		t.Fatalf("TornBytes = %d, want 6", st.TornBytes)
	}
	if fi, _ := os.Stat(path); fi.Size() != goodSize {
		t.Fatalf("file not truncated: %d bytes, want %d", fi.Size(), goodSize)
	}
	// Recovery self-heals: the journal keeps accepting appends.
	appendAll(t, j2, "gamma")
	j2.Close()
	_, recs = mustOpen(t, path, Options{})
	if len(recs) != 3 || string(recs[2]) != "gamma" {
		t.Fatalf("after heal recovered %q", recs)
	}
}

func TestTruncatedMidRecordDropsOnlyTail(t *testing.T) {
	path := tempPath(t)
	j, _ := mustOpen(t, path, Options{})
	appendAll(t, j, "first", "second-longer-record")
	size := j.Size()
	j.Close()
	// Cut into the last record's payload.
	if err := os.Truncate(path, size-3); err != nil {
		t.Fatal(err)
	}
	_, recs := mustOpen(t, path, Options{})
	if len(recs) != 1 || string(recs[0]) != "first" {
		t.Fatalf("recovered %q, want only the first record", recs)
	}
}

func TestCorruptRecordStopsScan(t *testing.T) {
	path := tempPath(t)
	j, _ := mustOpen(t, path, Options{})
	appendAll(t, j, "aaaa", "bbbb", "cccc")
	j.Close()
	data, _ := os.ReadFile(path)
	// Flip a payload byte of the middle record; the scan must stop there,
	// keeping the valid prefix and dropping everything after (prefix
	// durability, not per-record salvage).
	mid := len(magic) + (8 + 4) + 8 + 2
	data[mid] ^= 0xff
	os.WriteFile(path, data, 0o644) //nolint:errcheck
	_, recs := mustOpen(t, path, Options{})
	if len(recs) != 1 || string(recs[0]) != "aaaa" {
		t.Fatalf("recovered %q, want only the pre-corruption prefix", recs)
	}
}

func TestBadHeaderIsError(t *testing.T) {
	path := tempPath(t)
	os.WriteFile(path, []byte("NOTAJRNLgarbage"), 0o644) //nolint:errcheck
	if _, _, err := Open(path, Options{}); !errors.Is(err, ErrNotJournal) {
		t.Fatalf("err = %v, want ErrNotJournal", err)
	}
}

func TestPartialHeaderIsEmptyJournal(t *testing.T) {
	path := tempPath(t)
	os.WriteFile(path, []byte(magic[:3]), 0o644) //nolint:errcheck
	j, recs := mustOpen(t, path, Options{})
	defer j.Close()
	if len(recs) != 0 {
		t.Fatalf("recovered %q from a torn header", recs)
	}
	appendAll(t, j, "x")
}

func TestCompactKeepsOnlyGivenPayloads(t *testing.T) {
	path := tempPath(t)
	j, _ := mustOpen(t, path, Options{})
	appendAll(t, j, "s1", "s2", "s3", "s4")
	big := j.Size()
	if err := j.Compact([][]byte{[]byte("s4")}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if j.Size() >= big {
		t.Fatalf("compaction did not shrink: %d -> %d", big, j.Size())
	}
	appendAll(t, j, "s5") // the reopened handle must still append
	j.Close()
	_, recs := mustOpen(t, path, Options{})
	if len(recs) != 2 || string(recs[0]) != "s4" || string(recs[1]) != "s5" {
		t.Fatalf("after compact recovered %q", recs)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

// faultOpen returns an OpenFile hook injecting cfg into the first opened
// file (reopens after compaction get a clean file).
func faultOpen(cfg FaultConfig) func(string) (File, error) {
	first := true
	return func(path string) (File, error) {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
		if err != nil {
			return nil, err
		}
		if !first {
			return f, nil
		}
		first = false
		return NewFaultFile(f, cfg), nil
	}
}

func TestShortWriteBreaksJournalAndRecoveryHeals(t *testing.T) {
	path := tempPath(t)
	// Write 1 is the header, write 2 the first record, write 3 the second.
	j, _ := mustOpen(t, path, Options{OpenFile: faultOpen(FaultConfig{ShortWriteAt: 3})})
	appendAll(t, j, "intact")
	if err := j.Append([]byte("torn-record")); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected short write", err)
	}
	if err := j.Append([]byte("after")); !errors.Is(err, ErrBroken) {
		t.Fatalf("append after failure = %v, want ErrBroken", err)
	}
	if st := j.Stats(); st.AppendFailures != 1 || st.Appends != 1 {
		t.Fatalf("stats: %+v", st)
	}
	j.Close()

	j2, recs := mustOpen(t, path, Options{})
	defer j2.Close()
	if len(recs) != 1 || string(recs[0]) != "intact" {
		t.Fatalf("recovered %q, want the intact prefix", recs)
	}
	if st := j2.Stats(); st.TornBytes == 0 {
		t.Fatal("the short write's bytes were not detected as torn")
	}
}

func TestFsyncFailureBreaksJournal(t *testing.T) {
	path := tempPath(t)
	// Sync 1 covers the header, sync 2 the first record.
	j, _ := mustOpen(t, path, Options{OpenFile: faultOpen(FaultConfig{FailSyncAt: 2})})
	if err := j.Append([]byte("unsynced")); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected fsync failure", err)
	}
	if j.Err() == nil {
		t.Fatal("journal must record the sticky failure")
	}
	j.Close()
	// The record may or may not be durable; either way the journal must
	// reopen cleanly and keep whatever prefix validates.
	j2, recs := mustOpen(t, path, Options{})
	defer j2.Close()
	for _, r := range recs {
		if !strings.Contains("unsynced", string(r)) {
			t.Fatalf("recovered unexpected record %q", r)
		}
	}
	appendAll(t, j2, "healthy-again")
}

func TestKillAfterBytesLeavesRecoverablePrefix(t *testing.T) {
	path := tempPath(t)
	j, _ := mustOpen(t, path, Options{OpenFile: faultOpen(FaultConfig{KillAfterBytes: 64})})
	wrote := 0
	for i := 0; i < 100; i++ {
		if err := j.Append([]byte("payload-record")); err != nil {
			if !errors.Is(err, ErrKilled) && !errors.Is(err, ErrBroken) {
				t.Fatalf("append %d: %v", i, err)
			}
			break
		}
		wrote++
	}
	if wrote == 0 || wrote >= 100 {
		t.Fatalf("kill never fired usefully (wrote %d)", wrote)
	}
	j.Close()
	_, recs := mustOpen(t, path, Options{})
	if len(recs) != wrote {
		t.Fatalf("recovered %d records, want exactly the %d acknowledged", len(recs), wrote)
	}
}
