package journal

import (
	"errors"
	"fmt"
)

// This file is the fault-injection seam the durability tests drive the
// journal through: a File wrapper that tears writes, fails fsyncs, and
// "kills the process" mid-write — the failure modes a crash-safe journal
// must reduce to a clean torn tail.

// ErrInjected marks a scripted fault from a FaultFile.
var ErrInjected = errors.New("journal: injected fault")

// ErrKilled marks the injected process death: once a FaultFile is
// killed, every later write and sync fails with it, modeling a process
// that died mid-append and never touched the file again.
var ErrKilled = errors.New("journal: injected kill")

// FaultConfig scripts the failures a FaultFile injects. Indices are
// 1-based counts of calls on this file; zero disables each fault.
type FaultConfig struct {
	// ShortWriteAt makes the Nth Write persist only half its bytes and
	// return an error — an in-flight write torn by a full disk or a
	// signal. Later calls proceed normally (the journal is expected to
	// have marked itself broken regardless).
	ShortWriteAt int
	// FailSyncAt makes the Nth Sync return an error once. The preceding
	// write may or may not be durable — exactly the ambiguity a journal
	// must treat as "tail unknown".
	FailSyncAt int
	// KillAfterBytes kills the file once this many total bytes have been
	// written: the write in flight persists only up to the limit (a torn
	// frame reaches disk) and every later Write/Sync fails with
	// ErrKilled.
	KillAfterBytes int64
}

// FaultFile wraps a File with scripted write/sync failures.
type FaultFile struct {
	inner   File
	cfg     FaultConfig
	writes  int
	syncs   int
	written int64
	killed  bool
}

// NewFaultFile wraps inner with the scripted faults.
func NewFaultFile(inner File, cfg FaultConfig) *FaultFile {
	return &FaultFile{inner: inner, cfg: cfg}
}

// Killed reports whether the injected process death has happened.
func (f *FaultFile) Killed() bool { return f.killed }

// Write implements File with the scripted short-write and kill faults.
func (f *FaultFile) Write(p []byte) (int, error) {
	if f.killed {
		return 0, ErrKilled
	}
	f.writes++
	if f.cfg.ShortWriteAt == f.writes && len(p) > 1 {
		n, _ := f.inner.Write(p[:len(p)/2])
		f.written += int64(n)
		return n, fmt.Errorf("short write after %d bytes: %w", n, ErrInjected)
	}
	if f.cfg.KillAfterBytes > 0 && f.written+int64(len(p)) > f.cfg.KillAfterBytes {
		keep := f.cfg.KillAfterBytes - f.written
		if keep < 0 {
			keep = 0
		}
		n, _ := f.inner.Write(p[:keep])
		f.inner.Sync() //nolint:errcheck // worst case: the torn bytes reach disk
		f.written += int64(n)
		f.killed = true
		return n, ErrKilled
	}
	n, err := f.inner.Write(p)
	f.written += int64(n)
	return n, err
}

// Sync implements File with the scripted fsync fault.
func (f *FaultFile) Sync() error {
	if f.killed {
		return ErrKilled
	}
	f.syncs++
	if f.cfg.FailSyncAt == f.syncs {
		return fmt.Errorf("fsync: %w", ErrInjected)
	}
	return f.inner.Sync()
}

// Close implements File.
func (f *FaultFile) Close() error { return f.inner.Close() }
