// Package journal implements the append-only checkpoint journal behind
// durable campaigns (DESIGN.md §10): CRC32-framed records appended with
// an fsync per record, recovered with torn-tail tolerance, and compacted
// atomically (temp file + fsync + rename + directory fsync).
//
// The crash-consistency contract is prefix durability: after any crash —
// including one that tears the frame being written — reopening the
// journal yields exactly the records whose Append returned nil, in
// order, possibly followed by nothing. A torn or corrupt tail is
// detected by the length/CRC framing and truncated away; corruption of
// the header (the file is not a journal at all) is an error, never a
// silent empty campaign.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"
)

// magic identifies a journal file; a file that has one but doesn't start
// with it is rejected rather than treated as an empty campaign.
const magic = "GQSJRNL1"

// maxRecord bounds a single record; a frame declaring more than this is
// corruption (a torn length field), not a real record.
const maxRecord = 64 << 20

// ErrBroken is returned by Append after a write or sync failure: the
// journal's tail state on disk is unknown, so the handle refuses further
// appends and relies on the next Open's recovery scan to re-establish
// the valid prefix.
var ErrBroken = errors.New("journal: broken by a previous write failure")

// ErrNotJournal reports a file whose header is not a journal's.
var ErrNotJournal = errors.New("journal: bad magic header")

// WriteSyncer is the durable sink a journal writes frames to.
type WriteSyncer interface {
	io.Writer
	Sync() error
}

// File is an open journal backing file. The fault-injection tests swap
// in wrappers (see FaultFile) that tear writes and fail syncs.
type File interface {
	WriteSyncer
	io.Closer
}

// Options configures a journal.
type Options struct {
	// OpenFile opens the backing file for appending; nil selects
	// os.OpenFile(path, O_WRONLY|O_APPEND|O_CREATE). The hook is the
	// fault-injection seam: tests wrap the real file in a FaultFile.
	OpenFile func(path string) (File, error)
	// NoSync skips the per-append fsync (for tests and benchmarks that
	// measure framing cost without disk latency). Compaction still syncs.
	NoSync bool
}

// Stats counts what the journal did, for checkpoint accounting.
type Stats struct {
	Appends          int           // records appended successfully
	AppendFailures   int           // appends that failed (journal now broken)
	Bytes            int64         // framed bytes appended successfully
	Compactions      int           // atomic rewrites performed
	RecoveredRecords int           // valid records recovered by Open
	TornBytes        int64         // trailing bytes dropped by Open's recovery
	WriteTime        time.Duration // time spent in Write+Sync (incl. failures)
	LastAppend       time.Time     // wall time of the last successful append
}

// Journal is an open append-only record log. Methods are not
// goroutine-safe; the checkpoint layer serializes access.
type Journal struct {
	path     string
	opts     Options
	f        File
	size     int64 // bytes of valid header+frames on disk
	firstErr error
	stats    Stats
}

// Open opens (creating if absent) the journal at path and returns the
// valid records recovered from it, in append order. A torn or corrupt
// tail — a partial frame, a CRC mismatch, an absurd length — is
// truncated away before the append handle is opened, so recovery also
// self-heals the file. A valid prefix is never discarded.
func Open(path string, opts Options) (*Journal, [][]byte, error) {
	j := &Journal{path: path, opts: opts}
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, err
	}
	var records [][]byte
	if len(data) > 0 {
		var valid int64
		records, valid, err = scan(data)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		j.stats.RecoveredRecords = len(records)
		j.stats.TornBytes = int64(len(data)) - valid
		if valid < int64(len(data)) {
			if err := os.Truncate(path, valid); err != nil {
				return nil, nil, fmt.Errorf("journal: truncate torn tail: %w", err)
			}
		}
		j.size = valid
	}
	f, err := j.open()
	if err != nil {
		return nil, nil, err
	}
	j.f = f
	if j.size == 0 {
		if err := j.writeAll([]byte(magic)); err != nil {
			j.f.Close()
			return nil, nil, fmt.Errorf("journal: write header: %w", err)
		}
		j.size = int64(len(magic))
	}
	return j, records, nil
}

// scan validates data as header + frames and returns the decoded
// payloads plus the byte offset of the last valid frame end. Anything
// past that offset is a torn tail. A corrupt header is an error: the
// file is not (or no longer) a journal, and pretending it held zero
// records would silently restart the campaign.
func scan(data []byte) (records [][]byte, valid int64, err error) {
	if len(data) < len(magic) {
		// A crash during creation can leave a partial header; everything
		// is torn tail, nothing was ever durable.
		if string(data) == magic[:len(data)] {
			return nil, 0, nil
		}
		return nil, 0, ErrNotJournal
	}
	if string(data[:len(magic)]) != magic {
		return nil, 0, ErrNotJournal
	}
	off := int64(len(magic))
	for {
		rest := data[off:]
		if len(rest) < 8 {
			return records, off, nil // partial frame header: torn
		}
		n := binary.BigEndian.Uint32(rest[0:4])
		sum := binary.BigEndian.Uint32(rest[4:8])
		if n > maxRecord || int64(len(rest)) < 8+int64(n) {
			return records, off, nil // absurd length or partial payload: torn
		}
		payload := rest[8 : 8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return records, off, nil // corrupt record: torn from here on
		}
		records = append(records, append([]byte(nil), payload...))
		off += 8 + int64(n)
	}
}

// open opens the backing file for appending through the configured hook.
func (j *Journal) open() (File, error) {
	if j.opts.OpenFile != nil {
		return j.opts.OpenFile(j.path)
	}
	return os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
}

// writeAll writes b fully and syncs (unless NoSync), timing the I/O.
func (j *Journal) writeAll(b []byte) error {
	start := time.Now()
	defer func() { j.stats.WriteTime += time.Since(start) }()
	n, err := j.f.Write(b)
	if err != nil {
		return err
	}
	if n < len(b) {
		return io.ErrShortWrite
	}
	if j.opts.NoSync {
		return nil
	}
	return j.f.Sync()
}

// Append frames payload (length, CRC32, bytes), writes it, and syncs.
// On any failure — short write, write error, sync error — the on-disk
// tail state is unknown, so the journal marks itself broken and refuses
// further appends; the next Open recovers the valid prefix and truncates
// whatever the failed append left behind.
func (j *Journal) Append(payload []byte) error {
	if j.firstErr != nil {
		return ErrBroken
	}
	if len(payload) > maxRecord {
		return fmt.Errorf("journal: record of %d bytes exceeds the %d-byte limit", len(payload), maxRecord)
	}
	frame := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	if err := j.writeAll(frame); err != nil {
		j.firstErr = err
		j.stats.AppendFailures++
		return fmt.Errorf("journal: append: %w", err)
	}
	j.size += int64(len(frame))
	j.stats.Appends++
	j.stats.Bytes += int64(len(frame))
	j.stats.LastAppend = time.Now()
	return nil
}

// Compact atomically replaces the journal's contents with the given
// payloads (normally just the latest snapshot record): write a temp
// file, fsync it, rename it over the journal, fsync the directory, then
// reopen the append handle. A crash at any point leaves either the old
// journal or the new one — never a mix.
func (j *Journal) Compact(payloads [][]byte) error {
	if j.firstErr != nil {
		return ErrBroken
	}
	tmp := j.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	var size int64
	write := func(b []byte) {
		if err == nil {
			_, err = f.Write(b)
			size += int64(len(b))
		}
	}
	write([]byte(magic))
	for _, p := range payloads {
		frame := make([]byte, 8)
		binary.BigEndian.PutUint32(frame[0:4], uint32(len(p)))
		binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(p))
		write(frame)
		write(p)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: compact: %w", err)
	}
	syncDir(filepath.Dir(j.path))
	// The old handle points at the unlinked inode; swap to the new file.
	j.f.Close()
	nf, err := j.open()
	if err != nil {
		j.firstErr = err
		return fmt.Errorf("journal: compact reopen: %w", err)
	}
	j.f = nf
	j.size = size
	j.stats.Compactions++
	return nil
}

// syncDir fsyncs a directory so a rename is durable; best-effort, since
// some platforms reject fsync on directories.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() //nolint:errcheck // advisory on platforms without dir fsync
	d.Close()
}

// Size is the valid on-disk size in bytes (header + appended frames).
func (j *Journal) Size() int64 { return j.size }

// Path returns the backing file path.
func (j *Journal) Path() string { return j.path }

// Err returns the sticky first write failure, nil while healthy.
func (j *Journal) Err() error { return j.firstErr }

// Stats returns the journal's counters.
func (j *Journal) Stats() Stats { return j.stats }

// Close closes the backing file. Appended records were already synced
// individually, so Close adds no durability step.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
